// Ablation — adaptive guidance (src/adapt/): fixed movement strategies
// vs the online profiler + advisor + governor stack.  Two claims:
//
//  * on stationary workloads (the paper's stencil and matmul), the
//    governor must not hurt: adaptive stays within a few percent of the
//    best fixed strategy, because its escapes are signal-driven and it
//    starts from the paper's default (MultiIo, eager);
//  * on a phase-changing workload (streaming -> heavy reuse, the case
//    no fixed configuration handles well), adaptive beats the worst
//    fixed strategy by a wide margin, and when deliberately started
//    from SyncNoIo it detects the stall and escapes on its own.
//
// `--check` turns those claims into exit-code assertions.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "sim/matmul_workload.hpp"
#include "sim/stencil_workload.hpp"
#include "sim/synthetic_workload.hpp"
#include "telemetry/decision_log.hpp"

namespace {

using namespace hmr;

struct AdaptiveRun {
  sim::SimResult result;
  /// Decision provenance captured from the executor's DecisionLog —
  /// the --check gate reconstructs the governor's story from this
  /// alone, proving the log carries enough to explain the run.
  std::vector<telemetry::DecisionLog::Record> decisions;
};

AdaptiveRun run_adaptive(const hw::MachineModel& model,
                         const sim::Workload& w, ooc::Strategy start) {
  sim::SimConfig cfg;
  cfg.model = model;
  cfg.strategy = start;
  cfg.adaptive = true;
  // Track the whole block population: phase-summary unique_bytes feeds
  // the governor's refetch ratio, and an undercount there reads as
  // spurious refetching.
  cfg.profiler_cfg.top_k = 4096;
  sim::SimExecutor ex(cfg);
  AdaptiveRun out;
  out.result = ex.run(w);
  if (ex.decision_log()) out.decisions = ex.decision_log()->snapshot();
  return out;
}

/// Reconstruct the eager->lazy eviction flip from governor records
/// alone: walking the eager_evict sequence (initial state is eager)
/// must reach a record that (a) flips it off, (b) is marked changed,
/// and (c) carries a refetch_ratio above `threshold` — the input that
/// triggered it.  Returns false when the log tells no such story.
bool provenance_explains_flip(
    const std::vector<telemetry::DecisionLog::Record>& recs,
    double threshold) {
  bool eager = true; // GovernorConfig::initial_eager_evict in this bench
  for (const auto& r : recs) {
    if (r.ev.kind != adapt::DecisionKind::GovernorPhase) continue;
    if (eager && !r.ev.eager_evict) {
      return r.ev.changed && r.ev.refetch_ratio > threshold;
    }
    eager = r.ev.eager_evict;
  }
  return false;
}

} // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  bool check = false;
  ArgParser args("abl_adaptive",
                 "ablation: fixed strategies vs online adaptive guidance");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("check", "exit nonzero unless the adaptive bounds hold",
                &check);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Ablation: adaptive guidance vs fixed strategies",
                "extension beyond the paper; fixed MultiIo+eager is the "
                "paper's configuration");

  const auto model = hw::knl_flat_all_to_all();
  TextTable t({"workload", "config", "total (s)", "fetch GiB", "switches",
               "final"});
  bench::CsvSink csv(csv_path, {"workload", "config", "total_s",
                                "fetch_gib", "switches", "final"});

  auto emit = [&](const char* wname, const char* cname,
                  const sim::SimResult& r, bool adaptive) {
    const double fetch_gib =
        static_cast<double>(r.policy.fetch_bytes) / GiB;
    const std::string final_cfg =
        adaptive ? strfmt("%s/%s", ooc::strategy_name(r.final_strategy),
                          r.final_eager_evict ? "eager" : "lazy")
                 : "-";
    t.add_row({wname, cname, strfmt("%.3f", r.total_time),
               strfmt("%.1f", fetch_gib),
               adaptive ? strfmt("%llu", static_cast<unsigned long long>(
                                             r.governor_switches))
                        : "-",
               final_cfg});
    if (csv) {
      csv->field(std::string_view(wname))
          .field(std::string_view(cname))
          .field(r.total_time)
          .field(fetch_gib)
          .field(adaptive ? static_cast<double>(r.governor_switches) : 0.0)
          .field(std::string_view(final_cfg));
      csv->end_row();
    }
  };

  struct Outcome {
    double best_fixed = 0;
    double worst_fixed = 0;
    AdaptiveRun adaptive;
  };

  auto sweep = [&](const char* wname, const sim::Workload& w) {
    Outcome o;
    for (auto s : bench::movement_strategies()) {
      const auto r = bench::run_sim(model, s, w);
      emit(wname, ooc::strategy_name(s), r, false);
      if (o.best_fixed == 0 || r.total_time < o.best_fixed)
        o.best_fixed = r.total_time;
      o.worst_fixed = std::max(o.worst_fixed, r.total_time);
    }
    o.adaptive = run_adaptive(model, w, ooc::Strategy::MultiIo);
    emit(wname, "adaptive", o.adaptive.result, true);
    return o;
  };

  const auto sp = sim::StencilWorkload::params_for_reduced(
      32 * GiB, 4 * GiB, model.num_pes, /*iterations=*/10);
  const auto stencil = sweep("Stencil3D 32G", sim::StencilWorkload(sp));

  const auto mp =
      sim::MatmulWorkload::params_for(24 * GiB, 6 * GiB, model.num_pes);
  const auto matmul = sweep("MatMul 24G", sim::MatmulWorkload(mp));

  // Phase change: six streaming iterations (no reuse, working set >>
  // HBM), then six with heavy read-mostly reuse of a small window —
  // the streaming half wants eager eviction, the reuse half wants
  // lazy LRU parking.
  sim::SyntheticWorkload::Params pp;
  pp.num_blocks = 384;
  pp.block_bytes = 96 * MiB;
  pp.tasks_per_iteration = 256;
  pp.deps_per_task = 3;
  pp.num_pes = model.num_pes;
  pp.num_iterations = 12;
  pp.readonly_frac = 0.8;
  pp.reuse = 0.0;
  pp.flip_iteration = 6;
  pp.reuse_after = 0.9;
  pp.window_after = 48;
  const sim::SyntheticWorkload pw(pp);
  const auto phase = sweep("PhaseFlip 36G", pw);

  // Recovery: start adaptive from the worst fixed point (SyncNoIo) and
  // let the governor find its own way out.
  const auto rescue = run_adaptive(model, pw, ooc::Strategy::SyncNoIo);
  emit("PhaseFlip 36G", "adaptive(SyncNoIo)", rescue.result, true);

  t.print(std::cout);

  if (check) {
    int rc = 0;
    auto expect = [&](bool ok, const std::string& what) {
      if (!ok) {
        std::cerr << "CHECK FAILED: " << what << "\n";
        rc = 2;
      }
    };
    expect(stencil.adaptive.result.total_time <= 1.05 * stencil.best_fixed,
           strfmt("stencil adaptive %.3fs > 1.05 x best fixed %.3fs",
                  stencil.adaptive.result.total_time, stencil.best_fixed));
    expect(matmul.adaptive.result.total_time <= 1.05 * matmul.best_fixed,
           strfmt("matmul adaptive %.3fs > 1.05 x best fixed %.3fs",
                  matmul.adaptive.result.total_time, matmul.best_fixed));
    expect(phase.worst_fixed >= 1.3 * phase.adaptive.result.total_time,
           strfmt("phase-flip adaptive %.3fs not 1.3x faster than worst "
                  "fixed %.3fs",
                  phase.adaptive.result.total_time, phase.worst_fixed));
    expect(rescue.result.final_strategy != ooc::Strategy::SyncNoIo,
           "governor never escaped SyncNoIo on the phase-flip workload");
    expect(rescue.result.governor_switches > 0,
           "adaptive(SyncNoIo) made no governor switches");
    // Provenance gate: the phase-flip run's eager->lazy eviction flip
    // must be reconstructible from the DecisionLog alone — the flip
    // record exists, is marked as a change, and carries the
    // over-threshold refetch ratio that triggered it (the governor's
    // lazy_refetch_threshold default).
    expect(!phase.adaptive.decisions.empty(),
           "phase-flip adaptive run produced no decision records");
    expect(provenance_explains_flip(phase.adaptive.decisions, 1.5),
           "DecisionLog does not explain the eager->lazy flip (missing "
           "record, changed flag, or triggering refetch_ratio)");
    if (rc == 0) std::cout << "\nadaptive checks passed\n";
    return rc;
  }
  return 0;
}
