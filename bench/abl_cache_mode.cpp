// Ablation — flat mode + runtime prefetching vs KNL *cache mode*
// (paper §III-B; explicitly deferred: "An aspect we do not consider in
// our study is comparison with cache mode, which will be considered in
// the future").
//
// Cache mode lets the hardware use MCDRAM as a direct-mapped cache of
// DDR4: zero code changes, but conflict/capacity misses pay DDR4 read
// + MCDRAM fill on every miss.  The paper's premise is that a
// runtime-managed flat mode beats it once the working set overflows
// MCDRAM; this bench quantifies the crossover on the modeled node.

#include <iostream>

#include "bench_common.hpp"
#include "sim/stencil_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  ArgParser args("abl_cache_mode",
                 "ablation: flat+runtime vs KNL cache mode");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Ablation: flat mode + runtime vs KNL cache mode",
                "paper future work §VI — hardware caching wins inside "
                "MCDRAM, the runtime wins out of core");

  const auto model = hw::knl_flat_all_to_all();
  TextTable t({"total WSS", "cache hit", "cache mode (s)",
               "flat Naive (s)", "flat MultipleIO (s)",
               "MultipleIO vs cache"});
  bench::CsvSink csv(csv_path, {"wss_gib", "hit_ratio", "cache_s",
                                "naive_s", "multiio_s"});

  for (std::uint64_t wss_gib : {8, 12, 16, 24, 32, 48}) {
    const auto p = sim::StencilWorkload::params_for_reduced(
        wss_gib * GiB, 2 * GiB, model.num_pes, /*iterations=*/10);
    sim::StencilWorkload w(p);

    sim::SimConfig cache_cfg;
    cache_cfg.model = model;
    cache_cfg.cache_mode = true;
    const auto cache = sim::SimExecutor(cache_cfg).run(w);

    const auto naive = bench::run_sim(model, ooc::Strategy::Naive, w);
    const auto multi = bench::run_sim(model, ooc::Strategy::MultiIo, w);

    const double hit = model.cache_mode_hit_ratio(w.total_bytes());
    t.add_row({strfmt("%2llu GB", static_cast<unsigned long long>(wss_gib)),
               strfmt("%.0f%%", 100 * hit),
               strfmt("%.2f", cache.total_time),
               strfmt("%.2f", naive.total_time),
               strfmt("%.2f", multi.total_time),
               strfmt("%.2fx", cache.total_time / multi.total_time)});
    if (csv) {
      csv->field(wss_gib)
          .field(hit)
          .field(cache.total_time)
          .field(naive.total_time)
          .field(multi.total_time);
      csv->end_row();
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: cache mode ~MCDRAM speed while the set "
               "fits (<16 GB),\nthen degrades past flat-mode DDR4; the "
               "runtime-managed flat mode keeps\nits advantage out of "
               "core\n";
  return 0;
}
