// Ablation — eviction policy: eager (the paper's behaviour: a task's
// post-processing evicts its refcount-0 blocks immediately) vs lazy
// (our extension: park refcount-0 blocks in an LRU and reclaim only
// when admission needs space).  Lazy eviction converts temporal reuse
// that eager eviction misses into saved migrations — matmul benefits,
// stencil (no reuse) should be unaffected.

#include <iostream>

#include "bench_common.hpp"
#include "sim/matmul_workload.hpp"
#include "sim/stencil_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  ArgParser args("abl_evict_policy", "ablation: eager vs lazy eviction");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Ablation: eager vs lazy (LRU) eviction",
                "extension beyond the paper; eager is the paper's policy");

  const auto model = hw::knl_flat_all_to_all();
  TextTable t({"workload", "policy", "total (s)", "fetch GiB",
               "LRU warm hits"});
  bench::CsvSink csv(csv_path,
                     {"workload", "policy", "total_s", "fetch_gib"});

  auto report = [&](const char* name, const sim::Workload& w) {
    for (bool eager : {true, false}) {
      const auto r =
          bench::run_sim(model, ooc::Strategy::MultiIo, w, 0, false, 0,
                         /*eager_evict=*/eager);
      t.add_row({name, eager ? "eager (paper)" : "lazy LRU",
                 strfmt("%.3f", r.total_time),
                 strfmt("%.1f", static_cast<double>(r.policy.fetch_bytes) /
                                    GiB),
                 strfmt("%llu", static_cast<unsigned long long>(
                                    r.policy.lru_reclaims))});
      if (csv) {
        csv->field(std::string_view(name))
            .field(std::string_view(eager ? "eager" : "lazy"))
            .field(r.total_time)
            .field(static_cast<double>(r.policy.fetch_bytes) / GiB);
        csv->end_row();
      }
    }
  };

  const auto sp = sim::StencilWorkload::params_for_reduced(
      32 * GiB, 4 * GiB, model.num_pes, /*iterations=*/10);
  report("Stencil3D 32G", sim::StencilWorkload(sp));

  const auto mp =
      sim::MatmulWorkload::params_for(24 * GiB, 6 * GiB, model.num_pes);
  report("MatMul 24G", sim::MatmulWorkload(mp));

  t.print(std::cout);
  return 0;
}
