// Ablation — KNL hybrid mode (paper §III-B): part of MCDRAM stays flat
// (the runtime's prefetch budget), the rest serves as a hardware cache
// in front of DDR4.  "This avoids latency from misses for data in the
// flat mode portion of MCDRAM while also allowing memory node-agnostic
// allocation ... with the partial cache mode."
//
// Sweep the cache fraction from 0 (pure flat + runtime, the paper's
// configuration) to pure cache mode, for an out-of-core stencil.

#include <iostream>

#include "bench_common.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  std::uint64_t total_gib = 32;
  ArgParser args("abl_hybrid_mode",
                 "ablation: flat / hybrid / cache MCDRAM configurations");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("total-gib", "total working set (GiB)", &total_gib);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Ablation: KNL memory modes (flat / hybrid / cache)",
                "paper §III-B — how much MCDRAM should the runtime keep "
                "under explicit control?");

  const auto model = hw::knl_flat_all_to_all();
  const auto p = sim::StencilWorkload::params_for_reduced(
      total_gib * GiB, 2 * GiB, model.num_pes, /*iterations=*/10);
  sim::StencilWorkload w(p);

  TextTable t({"configuration", "flat MCDRAM", "cached MCDRAM",
               "total (s)", "vs pure flat"});
  bench::CsvSink csv(csv_path,
                     {"cache_fraction", "total_s", "vs_flat"});

  double flat_time = 0;
  for (double frac : {0.0, 0.25, 0.5, 0.75}) {
    sim::SimConfig cfg;
    cfg.model = model;
    cfg.strategy = ooc::Strategy::MultiIo;
    cfg.hybrid_cache_fraction = frac;
    const auto r = sim::SimExecutor(cfg).run(w);
    if (frac == 0.0) flat_time = r.total_time;
    const auto mcdram = model.tier(model.fast).capacity;
    t.add_row({frac == 0.0 ? "flat + MultipleIO (paper)"
                           : strfmt("hybrid %.0f%% cache + MultipleIO",
                                    100 * frac),
               fmt_bytes(static_cast<std::uint64_t>(
                   static_cast<double>(mcdram) * (1 - frac))),
               fmt_bytes(static_cast<std::uint64_t>(
                   static_cast<double>(mcdram) * frac)),
               strfmt("%.2f", r.total_time),
               strfmt("%.2fx", flat_time / r.total_time)});
    if (csv) {
      csv->field(frac).field(r.total_time).field(flat_time / r.total_time);
      csv->end_row();
    }
  }
  {
    sim::SimConfig cfg;
    cfg.model = model;
    cfg.cache_mode = true;
    const auto r = sim::SimExecutor(cfg).run(w);
    t.add_row({"pure cache mode (no runtime)", "0 B",
               fmt_bytes(model.tier(model.fast).capacity),
               strfmt("%.2f", r.total_time),
               strfmt("%.2fx", flat_time / r.total_time)});
    if (csv) {
      csv->field(1.0).field(r.total_time).field(flat_time / r.total_time);
      csv->end_row();
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: with every access annotated, the cache "
               "half of MCDRAM sits\nidle — performance is flat until the "
               "remaining prefetch budget can no longer\ncover the "
               "pipeline depth, then collapses toward pure cache mode.  "
               "The paper's\nall-flat choice wastes nothing for "
               "runtime-managed applications\n";
  return 0;
}
