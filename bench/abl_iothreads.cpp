// Ablation B — IO-thread count (the paper's §IV-B future work:
// "finding more optimal IO thread count such that one IO thread can be
// assigned to a subgroup of wait queues").
//
// MultiIo scheduling with k physical IO threads, k swept from 1 to one
// per PE.  Engine behaviour (per-PE wait queues, per-PE draining) is
// unchanged; only transfer parallelism varies.  This interpolates
// between SingleIO-like serialization and full MultiIO.

#include <iostream>

#include "bench_common.hpp"
#include "sim/stencil_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  ArgParser args("abl_iothreads",
                 "ablation: IO threads per wait-queue subgroup");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Ablation: IO-thread count (wait-queue subgroups)",
                "paper future work §IV-B — where between 1 and 64 IO "
                "threads does the benefit saturate?");

  const auto model = hw::knl_flat_all_to_all();
  const auto p = sim::StencilWorkload::params_for_reduced(
      32 * GiB, 4 * GiB, model.num_pes, /*iterations=*/10);
  const sim::StencilWorkload w(p);

  const auto naive = bench::run_sim(model, ooc::Strategy::Naive, w);

  TextTable t({"IO threads", "queues/thread", "total (s)",
               "speedup vs naive"});
  bench::CsvSink csv(csv_path, {"io_threads", "total_s", "speedup"});
  for (int k : {1, 2, 4, 8, 16, 32, 64}) {
    const auto r = bench::run_sim(model, ooc::Strategy::MultiIo, w,
                                  /*fast_capacity=*/0, /*trace=*/false,
                                  /*io_threads=*/k);
    const double sp = naive.total_time / r.total_time;
    t.add_row({strfmt("%d", k), strfmt("%d", model.num_pes / k),
               strfmt("%.3f", r.total_time), strfmt("%.2fx", sp)});
    if (csv) {
      csv->field(static_cast<std::int64_t>(k))
          .field(r.total_time)
          .field(sp);
      csv->end_row();
    }
  }
  t.print(std::cout);
  return 0;
}
