// Ablation — per-PE run queues vs a node-level run queue (paper
// §IV-B: "There is one run queue per PE, though we plan to use a
// node-level run queue in the future").
//
// Per-PE run queues pin a ready task to its chare's home PE; with
// variable task durations (and random chare placement) some PEs run
// long while others idle at the iteration barrier.  A node-level run
// queue lets any idle PE take any ready task, shrinking the makespan
// toward the work-conserving bound.  With perfectly uniform tasks the
// two are equivalent — the sweep shows the gain growing with task-time
// variance.

#include <iostream>

#include "bench_common.hpp"
#include "sim/sim_executor.hpp"
#include "sim/synthetic_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  ArgParser args("abl_nodequeue",
                 "ablation: per-PE vs node-level run queue");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Ablation: node-level run queue",
                "paper future work §IV-B — absorb task-time variance "
                "that per-PE run queues cannot");

  const auto model = hw::knl_flat_all_to_all();
  TextTable t({"task-time spread", "per-PE queues (s)", "node queue (s)",
               "gain"});
  bench::CsvSink csv(csv_path, {"wf_spread", "per_pe_s", "node_q_s",
                                "gain"});

  for (double spread : {1.0, 2.0, 4.0, 8.0}) {
    sim::SyntheticWorkload::Params p;
    p.num_blocks = 1024;
    p.block_bytes = 16 * MiB;
    p.tasks_per_iteration = 512;
    p.deps_per_task = 2;
    p.num_pes = model.num_pes;
    p.num_iterations = 4;
    p.wf_min = 4.0;
    p.wf_max = 4.0 * spread;
    p.seed = 17;
    sim::SyntheticWorkload w(p);

    auto run = [&](bool node_q) {
      sim::SimConfig cfg;
      cfg.model = model;
      cfg.strategy = ooc::Strategy::MultiIo;
      cfg.node_run_queue = node_q;
      return sim::SimExecutor(cfg).run(w).total_time;
    };
    const double per_pe = run(false);
    const double node = run(true);
    t.add_row({strfmt("%.0fx", spread), strfmt("%.3f", per_pe),
               strfmt("%.3f", node), strfmt("%.2fx", per_pe / node)});
    if (csv) {
      csv->field(spread).field(per_pe).field(node).field(per_pe / node);
      csv->end_row();
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: no gain for uniform tasks (1x spread), "
               "growing gain as task\ndurations spread out\n";
  return 0;
}
