// Ablation — per-tier memory pool (the paper's §IV-C future work:
// "the creating of space in destination memory could be avoided if we
// maintain a memory pool in each memory type").
//
// Real measurement on this host: round-trip migrations of uniformly
// sized blocks through MemoryManager with the pool off vs on.  The
// pool removes the arena alloc/free steps from every migration.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "mem/memory_manager.hpp"

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  std::uint64_t block_kib = 256;
  std::int64_t rounds = 200;
  ArgParser args("abl_pool_migrate",
                 "ablation: migration with/without per-tier pools");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("block-kib", "block size (KiB)", &block_kib);
  args.add_flag("rounds", "migration round trips per block", &rounds);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Ablation: per-tier buffer pool on migrate",
                "paper future work §IV-C — skip numa_alloc/numa_free "
                "on every move");

  TextTable t({"pool", "alloc us/move", "copy us/move", "free us/move",
               "total us/move", "pool hits"});
  bench::CsvSink csv(csv_path,
                     {"pool", "alloc_us", "copy_us", "free_us", "total_us"});

  for (bool pool : {false, true}) {
    mem::MemoryManager mm({{"DDR4", 64 * MiB}, {"MCDRAM", 64 * MiB}}, pool);
    constexpr int kBlocks = 8;
    std::vector<mem::BlockId> ids;
    for (int i = 0; i < kBlocks; ++i) {
      const auto b = mm.register_block(block_kib * KiB, 0);
      HMR_CHECK(b != mem::kInvalidBlock);
      ids.push_back(b);
    }
    double alloc_s = 0, copy_s = 0, free_s = 0;
    std::uint64_t moves = 0;
    const double t0 = now_s();
    for (std::int64_t r = 0; r < rounds; ++r) {
      for (const auto b : ids) {
        const auto fwd = mm.migrate(b, 1);
        const auto back = mm.migrate(b, 0);
        HMR_CHECK(fwd.ok && back.ok);
        alloc_s += fwd.alloc_s + back.alloc_s;
        copy_s += fwd.copy_s + back.copy_s;
        free_s += fwd.free_s + back.free_s;
        moves += 2;
      }
    }
    const double wall = now_s() - t0;
    const double n = static_cast<double>(moves);
    const auto ps0 = mm.pool_stats(0);
    const auto ps1 = mm.pool_stats(1);
    t.add_row({pool ? "on" : "off", strfmt("%.2f", alloc_s / n * 1e6),
               strfmt("%.2f", copy_s / n * 1e6),
               strfmt("%.2f", free_s / n * 1e6),
               strfmt("%.2f", wall / n * 1e6),
               pool ? strfmt("%llu", static_cast<unsigned long long>(
                                         ps0.hits + ps1.hits))
                    : std::string("-")});
    if (csv) {
      csv->field(std::string_view(pool ? "on" : "off"))
          .field(alloc_s / n * 1e6)
          .field(copy_s / n * 1e6)
          .field(free_s / n * 1e6)
          .field(wall / n * 1e6);
      csv->end_row();
    }
  }
  t.print(std::cout);
  return 0;
}
