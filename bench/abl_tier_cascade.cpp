// Ablation — demotion cascade on a three-tier node (HBM + DDR4 + NVM,
// hw::three_tier_hbm_ddr_nvm).  Three placement hierarchies run the
// same out-of-core stencil with zero application changes:
//
//  * two-tier: HBM fast, NVM far, DDR4 invisible — what the runtime
//    could express when placement was a fast/slow binary;
//  * direct: the engine sees all three levels but evicts straight to
//    the bottom (demote_cascade off), so DDR4 still never fills;
//  * cascade: HBM evictions land on DDR4 while it has room and only
//    overflow to NVM, so steady-state re-fetches stream over the
//    DDR4->HBM channel instead of the ~5x slower NVM->HBM one.
//
// A fourth phase exercises the threaded runtime's zero-copy admission
// (docs/PERF.md §4): the same read-heavy churn workload runs with
// shadow retention off and on, and must produce byte-identical block
// contents and an identical engine command stream -- the only
// difference zero-copy is allowed to make is physical (migrations
// admitted as pointer swaps instead of copies).
//
// `--check` asserts the cascade actually demoted through the middle
// tier and beat direct-to-NVM, and that the zero-copy run admitted
// swaps while staying equivalent; `--json` writes the result to
// BENCH_abl_tier_cascade.json for CI artifact upload.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "rt/runtime.hpp"
#include "sim/stencil_workload.hpp"
#include "telemetry/attrib.hpp"
#include "telemetry/critpath.hpp"
#include "telemetry/perfetto.hpp"

namespace {

using namespace hmr;

struct Outcome {
  std::string name;
  sim::SimResult result;
  trace::TraceSummary trace;
  std::vector<trace::Interval> intervals;
  telemetry::AttributionTable::Rollup attrib;
  /// Task -> bytes_by_tier, for the what-if compute re-costing.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> task_bytes;
};

struct Setup {
  const char* name;
  bool two_tier;
  bool cascade;
};

Outcome run_setup(const Setup& s, const hw::MachineModel& model,
                  const sim::StencilWorkload& w) {
  sim::SimConfig cfg;
  cfg.model = model;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.trace = true;
  cfg.attrib = true;
  cfg.attrib_keep_tasks = true;
  cfg.demote_cascade = s.cascade;
  if (s.two_tier) {
    cfg.tiers = {{model.fast, model.tier(model.fast).capacity, 1.0},
                 {model.slow, 0, 1.0}};
  }
  sim::SimExecutor ex(cfg);
  Outcome o;
  o.name = s.name;
  o.result = ex.run(w);
  o.trace = ex.tracer().summarize();
  o.intervals = ex.tracer().intervals();
  if (const auto* at = ex.attribution()) {
    o.attrib = at->rollup();
    for (const auto& a : at->tasks()) {
      o.task_bytes.emplace(a.task, a.bytes_by_tier);
    }
  }
  return o;
}

double pair_gib(const trace::TraceSummary& s, std::uint32_t src,
                std::uint32_t dst) {
  return static_cast<double>(s.migration_between(src, dst).bytes) / GiB;
}

/// One threaded-runtime run of the zero-copy churn workload: more
/// read-only blocks than the fast tier holds, cycled so steady state
/// is fetch/evict ping-pong -- exactly the pattern shadow retention
/// turns into pointer swaps.
struct ZcRun {
  std::vector<std::vector<unsigned char>> contents;
  ooc::PolicyEngine::Stats stats;
  std::uint64_t tasks = 0;
  std::uint64_t admissions = 0;
  std::uint64_t bytes_saved = 0;
};

ZcRun run_zero_copy(bool zero_copy) {
  rt::Runtime::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 2;
  // 16 GB KNL fast tier -> 1 MiB testbed: 16 of the 48 blocks fit.
  cfg.mem_scale = 1.0 / 16384;
  cfg.zero_copy = zero_copy;
  cfg.chunk_threshold = 0;
  rt::Runtime run(cfg);

  constexpr int kBlocks = 48;
  constexpr std::uint64_t kBytes = 64u << 10;
  std::vector<mem::BlockId> blocks;
  blocks.reserve(kBlocks);
  for (int i = 0; i < kBlocks; ++i) {
    blocks.push_back(run.alloc_block(kBytes));
  }
  // Deterministic per-block pattern, written before any migration (no
  // shadows exist yet, so no mark_dirty needed).
  for (int i = 0; i < kBlocks; ++i) {
    auto* p = static_cast<unsigned char*>(run.block_ptr(blocks[i]));
    for (std::uint64_t j = 0; j < kBytes; ++j) {
      p[j] = static_cast<unsigned char>(
          (static_cast<std::uint64_t>(i) * 2654435761u + j) >> 3);
    }
  }

  for (int r = 0; r < 6; ++r) {
    for (int pe = 0; pe < cfg.num_pes; ++pe) {
      std::vector<rt::Runtime::PrefetchMsg> batch;
      for (int t = 0; t < 24; ++t) {
        const std::size_t a =
            static_cast<std::size_t>(r * 7 + pe * 13 + t) % blocks.size();
        const std::size_t b = (a + 11) % blocks.size();
        rt::Runtime::PrefetchMsg m;
        m.deps = {{blocks[a], ooc::AccessMode::ReadOnly},
                  {blocks[b], ooc::AccessMode::ReadOnly}};
        m.body = [] {};
        batch.push_back(std::move(m));
      }
      run.send_prefetch_batch(pe, std::move(batch));
    }
    run.wait_idle();
  }

  ZcRun out;
  out.contents.reserve(kBlocks);
  for (const mem::BlockId b : blocks) {
    const auto* p = static_cast<const unsigned char*>(run.block_ptr(b));
    out.contents.emplace_back(p, p + kBytes);
  }
  out.stats = run.policy_stats();
  out.tasks = run.tasks_executed();
  out.admissions = run.memory().zero_copy_admissions();
  out.bytes_saved = run.memory().zero_copy_bytes();
  return out;
}

void write_json(const std::vector<Outcome>& outcomes,
                const hw::MachineModel& model, const ZcRun& zc,
                double predicted_speedup, double measured_speedup) {
  FILE* f = std::fopen("BENCH_abl_tier_cascade.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_abl_tier_cascade.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"abl_tier_cascade\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"model\": \"%s\",\n  \"configs\": [\n",
               model.name.c_str());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"total_s\": %.6f, "
                 "\"cascade_demotions\": %llu, \"fetch_bytes\": %llu, ",
                 o.name.c_str(), o.result.total_time,
                 static_cast<unsigned long long>(
                     o.result.policy.cascade_demotions),
                 static_cast<unsigned long long>(o.result.policy.fetch_bytes));
    std::fprintf(f, "\"attrib\": {");
    for (int b = 0; b < telemetry::kBucketCount; ++b) {
      std::fprintf(f, "%s\"%s_s\": %.6f", b ? ", " : "",
                   telemetry::bucket_name(static_cast<telemetry::Bucket>(b)),
                   o.attrib.seconds[b]);
    }
    std::fprintf(f, "}, \"migrations\": [");
    for (std::size_t j = 0; j < o.trace.migrations.size(); ++j) {
      const auto& m = o.trace.migrations[j];
      std::fprintf(f,
                   "%s{\"src_tier\": %u, \"dst_tier\": %u, "
                   "\"bytes\": %llu, \"count\": %llu}",
                   j ? ", " : "", m.src_tier, m.dst_tier,
                   static_cast<unsigned long long>(m.bytes),
                   static_cast<unsigned long long>(m.count));
    }
    std::fprintf(f, "]}%s\n", i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Deterministic (DES): the what-if gate's inputs, kept so baseline
  // drift in the estimator itself is visible in CI diffs.
  std::fprintf(f,
               "  \"whatif_fast2x\": {\"predicted_speedup\": %.6f, "
               "\"measured_speedup\": %.6f},\n",
               predicted_speedup, measured_speedup);
  // admissions / bytes_saved depend on thread interleaving; CI ignores
  // them (--ignore) and gates on the deterministic task count.
  std::fprintf(f,
               "  \"zero_copy\": {\"tasks\": %llu, "
               "\"admissions\": %llu, \"bytes_saved\": %llu}\n}\n",
               static_cast<unsigned long long>(zc.tasks),
               static_cast<unsigned long long>(zc.admissions),
               static_cast<unsigned long long>(zc.bytes_saved));
  std::fclose(f);
  std::cout << "\nwrote BENCH_abl_tier_cascade.json\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string perfetto_prefix;
  bool check = false;
  bool json = false;
  ArgParser args("abl_tier_cascade",
                 "ablation: demotion cascade on a three-tier node");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("json", "write BENCH_abl_tier_cascade.json", &json);
  args.add_flag("perfetto",
                "write one Perfetto JSON trace per config to "
                "<prefix>_<config>.json (feed them to hmr_explain)",
                &perfetto_prefix);
  args.add_flag("check",
                "exit nonzero unless the cascade demotes through the "
                "middle tier, beats direct-to-NVM, and the what-if "
                "estimator predicts the 2x-fast-bandwidth re-run within "
                "15%",
                &check);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Ablation: N-tier demotion cascade",
                "extension beyond the paper (its §VI future work: other "
                "heterogeneous memory architectures)");

  const auto model = hw::three_tier_hbm_ddr_nvm();
  const auto p = sim::StencilWorkload::params_for_reduced(
      32 * GiB, 4 * GiB, model.num_pes, /*iterations=*/5);
  const sim::StencilWorkload w(p);
  const hw::TierId nvm = model.slow, hbm = model.fast;
  const hw::TierId ddr = 2; // see hw::three_tier_hbm_ddr_nvm()

  const Setup setups[] = {
      {"two-tier", true, false},
      {"direct", false, false},
      {"cascade", false, true},
  };

  std::vector<Outcome> outcomes;
  for (const auto& s : setups) {
    outcomes.push_back(run_setup(s, model, w));
  }

  TextTable t({"config", "total (s)", "cascade demotions", "DDR4->HBM GiB",
               "NVM->HBM GiB", "HBM->DDR4 GiB", "HBM->NVM GiB"});
  bench::CsvSink csv(csv_path,
                     {"config", "total_s", "cascade_demotions",
                      "ddr_to_hbm_gib", "nvm_to_hbm_gib", "hbm_to_ddr_gib",
                      "hbm_to_nvm_gib"});
  for (const auto& o : outcomes) {
    const double d2h = pair_gib(o.trace, ddr, hbm);
    const double n2h = pair_gib(o.trace, nvm, hbm);
    const double h2d = pair_gib(o.trace, hbm, ddr);
    const double h2n = pair_gib(o.trace, hbm, nvm);
    t.add_row({o.name, strfmt("%.2f", o.result.total_time),
               strfmt("%llu", static_cast<unsigned long long>(
                                  o.result.policy.cascade_demotions)),
               strfmt("%.1f", d2h), strfmt("%.1f", n2h), strfmt("%.1f", h2d),
               strfmt("%.1f", h2n)});
    if (csv) {
      csv->field(std::string_view(o.name))
          .field(o.result.total_time)
          .field(static_cast<double>(o.result.policy.cascade_demotions))
          .field(d2h)
          .field(n2h)
          .field(h2d)
          .field(h2n);
      csv->end_row();
    }
  }
  t.print(std::cout);

  if (!perfetto_prefix.empty()) {
    for (const auto& o : outcomes) {
      const std::string path = perfetto_prefix + "_" + o.name + ".json";
      std::ofstream ofs(path);
      telemetry::PerfettoOptions po;
      po.worker_lanes = model.num_pes;
      telemetry::write_perfetto(ofs, o.intervals, po);
      std::cout << "wrote " << path << "\n";
    }
  }

  // Attribution verdicts + what-if validation: the critical-path
  // estimator predicts the speedup of doubling the fast tier's
  // bandwidth; the DES then actually re-runs the cascade config with
  // the modified MachineModel, and --check gates the prediction within
  // 15% relative error of the measured speedup.
  std::printf("\nbottleneck verdicts (critical path):\n");
  for (const auto& o : outcomes) {
    const auto cp = telemetry::critical_path(o.intervals);
    const auto v = telemetry::classify(cp, &model);
    std::printf("  %-9s %-18s %s\n", o.name.c_str(),
                telemetry::verdict_name(v.verdict), v.reason.c_str());
  }
  telemetry::HwDelta fast2x;
  fast2x.name = "2x fast-tier bandwidth";
  fast2x.fast_bw_scale = 2.0;
  const auto& cas = outcomes[2];
  const auto cas_cp = telemetry::critical_path(cas.intervals);
  const auto pred =
      telemetry::whatif(cas_cp, model, fast2x, &cas.task_bytes);
  const Outcome rerun =
      run_setup(setups[2], telemetry::apply_delta(model, fast2x), w);
  const double measured =
      cas.result.total_time / rerun.result.total_time;
  const double relerr =
      measured > 0 ? std::abs(pred.speedup - measured) / measured : 1.0;
  std::printf(
      "\nwhat-if: %s on the cascade config\n"
      "  predicted %.2fx (re-costed critical path), measured %.2fx "
      "(DES re-run: %.2fs -> %.2fs), relative error %.1f%%\n",
      fast2x.name.c_str(), pred.speedup, measured, cas.result.total_time,
      rerun.result.total_time, relerr * 100);

  // Zero-copy admission phase: same workload, shadow retention off/on.
  const ZcRun zc_off = run_zero_copy(false);
  const ZcRun zc_on = run_zero_copy(true);
  const bool zc_identical = zc_off.contents == zc_on.contents;
  // Fetch/evict counts depend on thread interleaving (two identical
  // runs differ by a few), so the byte-exact engine-stream equivalence
  // lives in the sequential refimpl test (test_tier_equivalence.cpp);
  // here we gate on what threading cannot change: every submitted
  // task ran, and the data is byte-identical.
  const bool zc_tasks_equal = zc_off.tasks == zc_on.tasks;
  std::printf(
      "\nzero-copy admission (threaded runtime, read-only churn):\n"
      "  off: %llu tasks, %llu fetches, %llu evicts\n"
      "  on:  %llu tasks, %llu fetches, %llu evicts, "
      "%llu swaps admitted (%.1f MiB of copies skipped)\n"
      "  contents %s, task count %s\n",
      static_cast<unsigned long long>(zc_off.tasks),
      static_cast<unsigned long long>(zc_off.stats.fetches),
      static_cast<unsigned long long>(zc_off.stats.evicts),
      static_cast<unsigned long long>(zc_on.tasks),
      static_cast<unsigned long long>(zc_on.stats.fetches),
      static_cast<unsigned long long>(zc_on.stats.evicts),
      static_cast<unsigned long long>(zc_on.admissions),
      static_cast<double>(zc_on.bytes_saved) / (1u << 20),
      zc_identical ? "byte-identical" : "DIVERGED",
      zc_tasks_equal ? "identical" : "DIVERGED");

  if (json) write_json(outcomes, model, zc_on, pred.speedup, measured);

  if (check) {
    int rc = 0;
    auto expect = [&](bool ok, const std::string& what) {
      if (!ok) {
        std::cerr << "CHECK FAILED: " << what << "\n";
        rc = 2;
      }
    };
    const auto& two = outcomes[0];
    const auto& direct = outcomes[1];
    const auto& cascade = outcomes[2];
    expect(cascade.result.policy.cascade_demotions > 0,
           "cascade run demoted nothing through the middle tier");
    expect(pair_gib(cascade.trace, ddr, hbm) >
               pair_gib(cascade.trace, nvm, hbm),
           "cascade run still re-fetched mostly from NVM");
    expect(cascade.result.total_time < direct.result.total_time,
           strfmt("cascade %.3fs not faster than direct-to-NVM %.3fs",
                  cascade.result.total_time, direct.result.total_time));
    // Without the cascade the third level only adds labels: the command
    // stream (and hence the simulated time) must match the two-tier
    // hierarchy exactly.
    expect(direct.result.total_time == two.result.total_time &&
               direct.result.policy.cascade_demotions == 0,
           strfmt("direct-to-NVM %.6fs != two-tier %.6fs",
                  direct.result.total_time, two.result.total_time));
    expect(zc_on.admissions > 0,
           "zero-copy run admitted no shadow swaps");
    expect(zc_off.admissions == 0,
           "zero-copy counted admissions while disabled");
    expect(zc_identical,
           "zero-copy run diverged from the copying run (contents)");
    expect(zc_tasks_equal,
           "zero-copy run diverged from the copying run (task count)");
    expect(relerr <= 0.15,
           strfmt("what-if estimator off by %.1f%% (predicted %.2fx, "
                  "measured %.2fx; bound 15%%)",
                  relerr * 100, pred.speedup, measured));
    // Per-task buckets must sum to wall time (1% tolerance) in every
    // config — the same invariant HMR_AUDIT enforces at quiescence.
    for (const auto& o : outcomes) {
      expect(o.attrib.sum_violations == 0,
             strfmt("%s: %llu attribution sum violations (worst %.2f%%)",
                    o.name.c_str(),
                    static_cast<unsigned long long>(o.attrib.sum_violations),
                    o.attrib.worst_rel_err * 100));
    }
    if (rc == 0) std::cout << "\ncascade + zero-copy checks passed\n";
    return rc;
  }
  return 0;
}
