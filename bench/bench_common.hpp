#pragma once
// Shared plumbing for the figure benches: standard flags, sim-run
// helpers, and uniform table/CSV output so each fig_* binary prints
// the same rows/series the paper reports.

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine_model.hpp"
#include "ooc/types.hpp"
#include "sim/sim_executor.hpp"
#include "sim/workload.hpp"
#include "util/argparse.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace hmr::bench {

/// Run one (strategy, workload) combination on a modeled node.
inline sim::SimResult run_sim(const hw::MachineModel& model,
                              ooc::Strategy strategy,
                              const sim::Workload& w,
                              std::uint64_t fast_capacity = 0,
                              bool trace = false, int io_threads = 0,
                              bool eager_evict = true) {
  sim::SimConfig cfg;
  cfg.model = model;
  cfg.strategy = strategy;
  cfg.fast_capacity = fast_capacity;
  cfg.trace = trace;
  cfg.io_threads = io_threads;
  cfg.eager_evict = eager_evict;
  sim::SimExecutor ex(cfg);
  return ex.run(w);
}

/// Standard bench preamble: prints what is being reproduced and where
/// the paper's numbers came from.
inline void banner(const std::string& what, const std::string& paper_says) {
  std::cout << "== " << what << " ==\n"
            << "paper: " << paper_says << "\n\n";
}

/// Optionally tee a CSV to --csv <path>.
class CsvSink {
public:
  CsvSink(const std::string& path, const std::vector<std::string>& cols) {
    if (path.empty()) return;
    out_.open(path);
    if (out_) {
      csv_ = std::make_unique<CsvWriter>(out_);
      csv_->header(cols);
    }
  }
  CsvWriter* operator->() { return csv_.get(); }
  explicit operator bool() const { return csv_ != nullptr; }

private:
  std::ofstream out_;
  std::unique_ptr<CsvWriter> csv_;
};

/// The movement strategies evaluated in the paper's figures 8 and 9.
inline const std::vector<ooc::Strategy>& movement_strategies() {
  static const std::vector<ooc::Strategy> v{
      ooc::Strategy::SingleIo, ooc::Strategy::SyncNoIo,
      ooc::Strategy::MultiIo};
  return v;
}

} // namespace hmr::bench
