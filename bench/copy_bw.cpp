// copy_bw: bandwidth + correctness sweep of the data-movement kernels
// (docs/PERF.md §4).
//
// For every implementation the host supports (scalar, SSE2, AVX2,
// AVX-512) x a size ladder from 4 KiB to 16 MiB, measures GB/s with
// streaming (non-temporal) stores forced on and off, against plain
// std::memcpy as the reference.  The headline number is the dispatched
// kernel vs scalar memcpy at >= 4 MiB with NT on: that is the regime
// MemoryManager::migrate and the ChunkRing live in, where NT stores
// stop the destination from evicting the source (and everything else)
// out of cache.  On hosts where the copy is bound far below the SIMD
// width (single hardware thread, small LLC), parity is the expected
// and documented outcome — see docs/PERF.md §4.
//
// --check runs the correctness sweep only (every impl x sizes x
// misalignments, memcmp vs memcpy) and exits nonzero on any mismatch;
// CI uses it as a ctest entry.  --json writes BENCH_copy_bw.json: the
// `supported` flags and `check` leaves are deterministic and gated,
// the gbps leaves are wall-clock and only recorded.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "mem/copy_kernel.hpp"
#include "util/argparse.hpp"
#include "util/check.hpp"

namespace {

using namespace hmr;
using mem::CopyImpl;
using mem::Stream;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr CopyImpl kImpls[] = {CopyImpl::Scalar, CopyImpl::SSE2,
                               CopyImpl::AVX2, CopyImpl::AVX512};

/// memcmp equivalence of one impl over a size ladder x misalignments.
/// Returns the number of failures (0 = all byte-identical).
int check_impl(CopyImpl impl) {
  constexpr std::size_t kMax = 1u << 20;
  std::vector<unsigned char> src(kMax + 128), dst(kMax + 128),
      ref(kMax + 128);
  std::mt19937 rng(7);
  for (auto& b : src) b = static_cast<unsigned char>(rng());
  int failures = 0;
  const std::size_t sizes[] = {1,    3,    64,   65,    255,   4096,
                               4097, 8191, 65536, 65599, kMax};
  for (const std::size_t n : sizes) {
    for (const std::size_t soff : {0u, 1u, 17u, 63u}) {
      for (const std::size_t doff : {0u, 9u, 32u}) {
        for (const Stream st : {Stream::Never, Stream::Always}) {
          std::memset(dst.data(), 0xEE, dst.size());
          std::memset(ref.data(), 0xEE, ref.size());
          mem::copy_with(impl, dst.data() + doff, src.data() + soff, n,
                         st);
          std::memcpy(ref.data() + doff, src.data() + soff, n);
          if (std::memcmp(dst.data(), ref.data(), dst.size()) != 0) {
            std::fprintf(stderr,
                         "MISMATCH impl=%s n=%zu soff=%zu doff=%zu "
                         "stream=%d\n",
                         mem::copy_impl_name(impl), n, soff, doff,
                         static_cast<int>(st));
            ++failures;
          }
        }
      }
    }
  }
  return failures;
}

struct Row {
  CopyImpl impl;
  std::uint64_t bytes = 0;
  double gbps_cached = 0; // Stream::Never
  double gbps_nt = 0;     // Stream::Always
};

/// Best-of-reps GB/s for one impl x size, NT off and on.
Row measure(CopyImpl impl, std::uint64_t bytes, int reps) {
  Row row;
  row.impl = impl;
  row.bytes = bytes;
  // 64-byte aligned buffers: the migrate path always hands the kernels
  // arena-aligned pointers, so that is the case worth measuring.
  struct Free {
    void operator()(void* p) const { ::operator delete[](
        p, std::align_val_t(64)); }
  };
  std::unique_ptr<unsigned char, Free> src(static_cast<unsigned char*>(
      ::operator new[](bytes, std::align_val_t(64))));
  std::unique_ptr<unsigned char, Free> dst(static_cast<unsigned char*>(
      ::operator new[](bytes, std::align_val_t(64))));
  std::memset(src.get(), 0xAB, bytes);
  std::memset(dst.get(), 0, bytes); // touch pages
  const double gb = static_cast<double>(bytes) / 1e9;
  for (const Stream st : {Stream::Never, Stream::Always}) {
    double best = 0;
    for (int r = 0; r < reps; ++r) {
      const double t0 = now_s();
      mem::copy_with(impl, dst.get(), src.get(), bytes, st);
      const double s = now_s() - t0;
      if (s > 0) best = std::max(best, gb / s);
    }
    (st == Stream::Never ? row.gbps_cached : row.gbps_nt) = best;
  }
  HMR_CHECK(dst.get()[0] == 0xAB && dst.get()[bytes - 1] == 0xAB);
  return row;
}

} // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool json = false;
  std::int64_t reps = 7;
  ArgParser ap("copy_bw",
               "bandwidth + correctness sweep of the mem::copy kernels "
               "(scalar/SSE2/AVX2/AVX-512, NT stores on/off)");
  ap.add_flag("check", "correctness sweep only (CI gate)", &check);
  ap.add_flag("json", "write BENCH_copy_bw.json", &json);
  ap.add_flag("reps", "best-of-N timing repetitions", &reps);
  if (!ap.parse(argc, argv)) return 1;

  int failures = 0;
  std::vector<CopyImpl> supported;
  for (const CopyImpl impl : kImpls) {
    if (!mem::copy_impl_supported(impl)) continue;
    supported.push_back(impl);
    failures += check_impl(impl);
  }
  std::printf("correctness: %zu impl(s) x sizes x misalignments -> %s\n",
              supported.size(), failures == 0 ? "all byte-identical"
                                              : "FAILURES");
  if (failures > 0) return 1;
  if (check && !json) {
    std::printf("dispatched kernel on this host: %s\n",
                mem::copy_impl_name(mem::copy_impl()));
    return 0;
  }

  const std::uint64_t sizes[] = {4u << 10, 64u << 10, 1u << 20, 4u << 20,
                                 16u << 20};
  std::printf("\n%-8s %12s %14s %14s\n", "impl", "size", "cached GB/s",
              "NT GB/s");
  std::vector<Row> rows;
  for (const CopyImpl impl : supported) {
    for (const std::uint64_t bytes : sizes) {
      const Row r = measure(impl, bytes, static_cast<int>(reps));
      rows.push_back(r);
      std::printf("%-8s %9llu KiB %14.2f %14.2f\n",
                  mem::copy_impl_name(impl),
                  static_cast<unsigned long long>(bytes >> 10),
                  r.gbps_cached, r.gbps_nt);
    }
  }

  // Headline: dispatched kernel vs scalar memcpy, >= 4 MiB, NT on.
  double dispatched_4mib = 0, scalar_4mib = 0;
  const CopyImpl dispatched = mem::copy_impl();
  for (const Row& r : rows) {
    if (r.bytes != 4u << 20) continue;
    if (r.impl == dispatched) dispatched_4mib = r.gbps_nt;
    if (r.impl == CopyImpl::Scalar) scalar_4mib = r.gbps_cached;
  }
  const double nt_speedup =
      scalar_4mib > 0 ? dispatched_4mib / scalar_4mib : 0;
  std::printf("\ndispatched (%s, NT) vs scalar memcpy at 4 MiB: %.2fx\n",
              mem::copy_impl_name(dispatched), nt_speedup);
  if (nt_speedup < 1.2) {
    std::printf("  (parity/regression on this host is expected when the "
                "copy is core-bound; see docs/PERF.md §4)\n");
  }

  if (json) {
    const char* path = "BENCH_copy_bw.json";
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"copy_bw\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"check\": {\"impls_verified\": %zu, "
                 "\"failures\": %d},\n",
                 supported.size(), failures);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s_%llukib\", \"bytes\": %llu, "
          "\"cached_gbps\": %.3f, \"nt_gbps\": %.3f}%s\n",
          mem::copy_impl_name(r.impl),
          static_cast<unsigned long long>(r.bytes >> 10),
          static_cast<unsigned long long>(r.bytes), r.gbps_cached,
          r.gbps_nt, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"dispatched\": \"%s\",\n",
                 mem::copy_impl_name(dispatched));
    std::fprintf(f, "  \"nt_speedup_vs_scalar_4mib\": %.3f\n}\n",
                 nt_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
