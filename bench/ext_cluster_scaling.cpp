// Extension — weak scaling on a multi-node cluster (paper §VI future
// work: "We will also perform comparisons ... in multi-node cluster
// settings").
//
// Every node holds a constant 32 GB stencil sub-domain (2x its MCDRAM)
// and exchanges halos over an Aries-class interconnect.  The question:
// does the within-node prefetch runtime's advantage survive at scale,
// and how much of the iteration does communication claim as nodes
// multiply?  (Weak scaling keeps per-node halo constant, so the comm
// fraction is flat beyond 1 node — the within-node win carries over
// undiminished.)

#include <iostream>

#include "bench_common.hpp"
#include "sim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  ArgParser args("ext_cluster_scaling",
                 "extension: multi-node weak scaling of the runtime");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Extension: multi-node weak scaling",
                "paper future work §VI — 32 GB stencil per node, halo "
                "exchange over a 12.5 GB/s interconnect");

  sim::ClusterParams base;
  base.bytes_per_node = 32ull << 30;
  base.reduced_bytes = 4ull << 30;
  base.iterations = 5;

  const std::vector<int> nodes{1, 2, 8, 64, 512};

  TextTable t({"nodes", "naive iter (s)", "MultiIO iter (s)", "speedup",
               "halo/iter", "comm frac (MultiIO)"});
  bench::CsvSink csv(csv_path, {"nodes", "naive_iter_s", "multiio_iter_s",
                                "speedup", "comm_fraction"});

  for (const int n : nodes) {
    sim::ClusterParams naive_p = base;
    naive_p.nodes = n;
    naive_p.strategy = ooc::Strategy::Naive;
    const auto naive = sim::run_cluster(naive_p);

    sim::ClusterParams multi_p = base;
    multi_p.nodes = n;
    multi_p.strategy = ooc::Strategy::MultiIo;
    const auto multi = sim::run_cluster(multi_p);

    t.add_row({strfmt("%d", n), strfmt("%.3f", naive.iteration_s),
               strfmt("%.3f", multi.iteration_s),
               strfmt("%.2fx", naive.iteration_s / multi.iteration_s),
               fmt_bytes(multi.halo_bytes_per_node),
               strfmt("%.1f%%", 100 * multi.comm_fraction)});
    if (csv) {
      csv->field(static_cast<std::int64_t>(n))
          .field(naive.iteration_s)
          .field(multi.iteration_s)
          .field(naive.iteration_s / multi.iteration_s)
          .field(multi.comm_fraction);
      csv->end_row();
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: the within-node speedup is preserved at "
               "every node count;\nhalo cost is constant per node under "
               "weak scaling (surface vs volume)\n";
  return 0;
}
