// Extension — multi-node cluster scaling on the real cluster DES
// (paper §VI future work: "We will also perform comparisons ... in
// multi-node cluster settings").
//
// Three phases, all through cluster::ClusterSim (a
// PlacementCoordinator homing objects onto per-node BlockStores, with
// a cluster-level event queue advancing the ring halo protocol):
//
//  * weak scaling — every node holds a constant 32 GB stencil
//    sub-domain (2x its MCDRAM) and exchanges halos over an
//    Aries-class interconnect; the within-node prefetch speedup must
//    survive at every node count;
//  * strong scaling — a fixed 64 GB global set split across nodes, so
//    per-node work shrinks while the halo shrinks only with the
//    sub-domain surface: time falls monotonically but sublinearly;
//  * disaggregated remote tier — nodes whose local home budget holds
//    only part of the sub-domain, the rest homed on a remote memory
//    pool behind latency/bandwidth/message-rate limits.  The
//    coordinator's promote-on-access + spill-to-remote cascade must
//    beat the naive all-remote placement by a measured margin.
//
// `--check` gates (CI, zero tolerance on the DES counters):
//  (a) the cascade beats naive all-remote placement,
//  (b) a single-node no-remote cluster is byte-identical to the
//      standalone single-node simulator (same virtual seconds, same
//      engine counters),
//  (c) remote-transfer counters byte-conserve against the
//      coordinator's ledgers (every audit/reconcile pass is empty).
// `--json` writes BENCH_ext_cluster_scaling.json for the
// hmr_bench_diff trend gate.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster_sim.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"

namespace {

using namespace hmr;

constexpr std::uint64_t kBytesPerNode = 32ull << 30;
constexpr std::uint64_t kReduced = 4ull << 30;
constexpr std::uint64_t kStrongTotal = 64ull << 30;
constexpr std::uint64_t kLocalBudget = 12ull << 30;
constexpr int kIters = 5;

cluster::ClusterConfig base_config() {
  cluster::ClusterConfig c;
  c.bytes_per_node = kBytesPerNode;
  c.reduced_bytes = kReduced;
  c.iterations = kIters;
  return c;
}

struct WeakRow {
  int nodes = 0;
  cluster::ClusterRunResult naive;
  cluster::ClusterRunResult multi;
};

struct StrongRow {
  int nodes = 0;
  cluster::ClusterRunResult r;
};

void write_json(const std::vector<WeakRow>& weak,
                const std::vector<StrongRow>& strong,
                const cluster::ClusterRunResult& cascade,
                const cluster::ClusterRunResult& allremote,
                std::size_t audit_violations) {
  FILE* f = std::fopen("BENCH_ext_cluster_scaling.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_ext_cluster_scaling.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_cluster_scaling\",\n");
  std::fprintf(f, "  \"weak\": [\n");
  for (std::size_t i = 0; i < weak.size(); ++i) {
    const auto& w = weak[i];
    std::fprintf(f,
                 "    {\"nodes\": %d, \"naive_iter_s\": %.6f, "
                 "\"multi_iter_s\": %.6f, \"comm_fraction\": %.6f, "
                 "\"halo_bytes\": %llu, \"halo_messages\": %llu}%s\n",
                 w.nodes, w.naive.iteration_s, w.multi.iteration_s,
                 w.multi.comm_fraction,
                 static_cast<unsigned long long>(w.multi.halo_bytes_per_node),
                 static_cast<unsigned long long>(w.multi.halo_messages),
                 i + 1 < weak.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"strong\": [\n");
  for (std::size_t i = 0; i < strong.size(); ++i) {
    const auto& s = strong[i];
    std::fprintf(f,
                 "    {\"nodes\": %d, \"total_s\": %.6f, "
                 "\"comm_fraction\": %.6f, "
                 "\"strong_halo_messages\": %llu}%s\n",
                 s.nodes, s.r.total_s, s.r.comm_fraction,
                 static_cast<unsigned long long>(s.r.halo_messages),
                 i + 1 < strong.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"remote\": {\"cascade_total_s\": %.6f, "
      "\"all_remote_total_s\": %.6f, \"margin\": %.3f,\n"
      "    \"remote_fetch_bytes\": %llu, \"remote_evict_bytes\": %llu, "
      "\"remote_fetches\": %llu, \"remote_evicts\": %llu,\n"
      "    \"remote_messages\": %llu, \"placements_local\": %llu, "
      "\"placements_remote\": %llu},\n",
      cascade.total_s, allremote.total_s,
      allremote.total_s / cascade.total_s,
      static_cast<unsigned long long>(cascade.remote_fetch_bytes),
      static_cast<unsigned long long>(cascade.remote_evict_bytes),
      static_cast<unsigned long long>(cascade.remote_fetches),
      static_cast<unsigned long long>(cascade.remote_evicts),
      static_cast<unsigned long long>(cascade.remote_messages),
      static_cast<unsigned long long>(cascade.placements_local),
      static_cast<unsigned long long>(cascade.placements_remote));
  std::fprintf(f, "  \"audit_violations\": %llu\n}\n",
               static_cast<unsigned long long>(audit_violations));
  std::fclose(f);
  std::printf("\nwrote BENCH_ext_cluster_scaling.json\n");
}

} // namespace

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  bool json = false;
  bool check = false;
  ArgParser args("ext_cluster_scaling",
                 "extension: multi-node cluster scaling (weak + strong + "
                 "disaggregated remote tier)");
  args.add_flag("csv", "write weak-scaling results to this CSV file",
                &csv_path);
  args.add_flag("json", "write BENCH_ext_cluster_scaling.json", &json);
  args.add_flag("check", "verify scaling/equivalence/conservation gates",
                &check);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Extension: multi-node cluster scaling",
                "paper future work §VI — placement coordinator + per-node "
                "block stores on a 12.5 GB/s interconnect");

  std::size_t audit_violations = 0;
  auto audited = [&](cluster::ClusterSim& sim) {
    auto r = sim.run();
    for (const auto& v : r.audit) {
      std::cerr << "LEDGER VIOLATION: " << v << "\n";
    }
    audit_violations += r.audit.size();
    return r;
  };

  // ---- weak scaling: constant 32 GB per node --------------------------
  const std::vector<int> weak_nodes{1, 2, 8, 64, 512};
  std::vector<WeakRow> weak;
  for (const int n : weak_nodes) {
    WeakRow row;
    row.nodes = n;
    auto naive_cfg = base_config();
    naive_cfg.nodes = n;
    naive_cfg.strategy = ooc::Strategy::Naive;
    cluster::ClusterSim naive_sim(naive_cfg);
    row.naive = audited(naive_sim);

    auto multi_cfg = base_config();
    multi_cfg.nodes = n;
    cluster::ClusterSim multi_sim(multi_cfg);
    row.multi = audited(multi_sim);
    weak.push_back(std::move(row));
  }

  TextTable wt({"nodes", "naive iter (s)", "MultiIO iter (s)", "speedup",
                "halo/iter", "halo msgs", "comm frac"});
  bench::CsvSink csv(csv_path, {"nodes", "naive_iter_s", "multiio_iter_s",
                                "speedup", "comm_fraction"});
  for (const auto& w : weak) {
    wt.add_row({strfmt("%d", w.nodes), strfmt("%.3f", w.naive.iteration_s),
                strfmt("%.3f", w.multi.iteration_s),
                strfmt("%.2fx", w.naive.iteration_s / w.multi.iteration_s),
                fmt_bytes(w.multi.halo_bytes_per_node),
                strfmt("%llu", static_cast<unsigned long long>(
                                   w.multi.halo_messages)),
                strfmt("%.1f%%", 100 * w.multi.comm_fraction)});
    if (csv) {
      csv->field(static_cast<std::int64_t>(w.nodes))
          .field(w.naive.iteration_s)
          .field(w.multi.iteration_s)
          .field(w.naive.iteration_s / w.multi.iteration_s)
          .field(w.multi.comm_fraction);
      csv->end_row();
    }
  }
  std::cout << "weak scaling (32 GB per node):\n";
  wt.print(std::cout);

  // ---- strong scaling: fixed 64 GB global set -------------------------
  const std::vector<int> strong_nodes{1, 2, 4, 8, 16};
  std::vector<StrongRow> strong;
  for (const int n : strong_nodes) {
    auto cfg = base_config();
    cfg.nodes = n;
    cfg.total_bytes = kStrongTotal;
    cluster::ClusterSim sim(cfg);
    strong.push_back({n, audited(sim)});
  }
  TextTable st({"nodes", "total (s)", "speedup", "efficiency", "comm frac"});
  for (const auto& s : strong) {
    const double sp = strong.front().r.total_s / s.r.total_s;
    st.add_row({strfmt("%d", s.nodes), strfmt("%.3f", s.r.total_s),
                strfmt("%.2fx", sp),
                strfmt("%.0f%%", 100 * sp / s.nodes),
                strfmt("%.1f%%", 100 * s.r.comm_fraction)});
  }
  std::cout << "\nstrong scaling (64 GB total):\n";
  st.print(std::cout);

  // ---- disaggregated remote tier: cascade vs all-remote ---------------
  auto cascade_cfg = base_config();
  cascade_cfg.nodes = 4;
  cascade_cfg.remote_tier = true;
  cascade_cfg.node_local_capacity = kLocalBudget;
  cluster::ClusterSim cascade_sim(cascade_cfg);
  const auto cascade = audited(cascade_sim);

  auto naive_remote_cfg = base_config();
  naive_remote_cfg.nodes = 4;
  naive_remote_cfg.all_remote = true;
  cluster::ClusterSim allremote_sim(naive_remote_cfg);
  const auto allremote = audited(allremote_sim);

  std::printf(
      "\ndisaggregated remote tier (4 nodes, 12 GB local home budget, "
      "32 GB sub-domain):\n"
      "  coordinator cascade: %.3f s  (placements %llu local / %llu "
      "remote,\n"
      "    remote fetch %.1f GiB in %llu transfers / %llu network msgs, "
      "spill %.1f GiB)\n"
      "  naive all-remote:    %.3f s  (everything streams from the "
      "pool)\n"
      "  margin: %.2fx\n",
      cascade.total_s,
      static_cast<unsigned long long>(cascade.placements_local),
      static_cast<unsigned long long>(cascade.placements_remote),
      static_cast<double>(cascade.remote_fetch_bytes) / GiB,
      static_cast<unsigned long long>(cascade.remote_fetches),
      static_cast<unsigned long long>(cascade.remote_messages),
      static_cast<double>(cascade.remote_evict_bytes) / GiB,
      allremote.total_s, allremote.total_s / cascade.total_s);

  // ---- single-node equivalence: cluster-of-one == standalone DES ------
  auto one_cfg = base_config();
  one_cfg.nodes = 1;
  cluster::ClusterSim one_sim(one_cfg);
  const auto one = audited(one_sim);

  const auto wp = sim::StencilWorkload::params_for_reduced(
      kBytesPerNode, kReduced, one_cfg.node.num_pes, kIters);
  const sim::StencilWorkload w(wp);
  sim::SimConfig scfg;
  scfg.model = one_cfg.node;
  scfg.strategy = one_cfg.strategy;
  sim::SimExecutor ex(scfg);
  const auto direct = ex.run(w);
  const bool equiv = one.total_s == direct.total_time &&
                     one.node_stats.size() == 1 &&
                     one.node_stats[0].policy.fetches ==
                         direct.policy.fetches &&
                     one.node_stats[0].policy.fetch_bytes ==
                         direct.policy.fetch_bytes &&
                     one.node_stats[0].policy.evicts == direct.policy.evicts;
  std::printf(
      "\nsingle-node equivalence: cluster %.6f s vs standalone %.6f s "
      "(%s)\n",
      one.total_s, direct.total_time, equiv ? "identical" : "DIVERGED");
  std::printf("ledger conservation: %llu violation(s) across %zu runs\n",
              static_cast<unsigned long long>(audit_violations),
              weak.size() * 2 + strong.size() + 3);

  if (json) {
    write_json(weak, strong, cascade, allremote, audit_violations);
  }

  if (check) {
    int rc = 0;
    auto expect = [&](bool ok, const std::string& what) {
      if (!ok) {
        std::cerr << "CHECK FAILED: " << what << "\n";
        rc = 2;
      }
    };
    // Weak scaling: within-node speedup survives at every node count,
    // comm fraction flat beyond one node.
    for (const auto& wr : weak) {
      expect(wr.naive.iteration_s / wr.multi.iteration_s > 1.2,
             strfmt("weak %d nodes: naive/multi speedup collapsed",
                    wr.nodes));
      expect(wr.nodes == 1 ? wr.multi.comm_fraction == 0
                           : wr.multi.comm_fraction > 0,
             strfmt("weak %d nodes: wrong comm fraction", wr.nodes));
    }
    // Strong scaling: more nodes never slower, and genuinely faster
    // end to end.
    for (std::size_t i = 1; i < strong.size(); ++i) {
      expect(strong[i].r.total_s <= strong[i - 1].r.total_s,
             strfmt("strong scaling not monotone at %d nodes",
                    strong[i].nodes));
    }
    expect(strong.back().r.total_s < 0.6 * strong.front().r.total_s,
           "strong scaling gained less than 1.67x at 16 nodes");
    // Gate (a): the placement cascade beats naive all-remote.
    expect(allremote.total_s > 1.2 * cascade.total_s,
           strfmt("cascade %.3fs not >=1.2x better than all-remote %.3fs",
                  cascade.total_s, allremote.total_s));
    expect(cascade.placements_remote > 0 && cascade.placements_local > 0,
           "cascade run did not split the working set across pools");
    expect(cascade.remote_fetch_bytes > 0 && cascade.remote_messages > 0,
           "cascade run moved no bytes over the network");
    // Gate (b): a cluster of one with no remote pool is the
    // single-node simulator, exactly.
    expect(equiv, "single-node cluster diverged from the standalone DES");
    // Gate (c): every coordinator ledger byte-conserved against its
    // node engine.
    expect(audit_violations == 0,
           "coordinator ledgers failed byte conservation");
    if (rc == 0) std::cout << "\ncluster scaling checks passed\n";
    return rc;
  }
  return 0;
}
