// Extension — barriered vs message-driven (pipelined) stencil
// iterations.
//
// The paper's §III-A sells over-decomposition on the overlap of
// communication and computation: "While a chare's entry method waits
// for its input data to arrive, the entry methods of other chares on
// the same PE whose input data is present, can be executed."  The
// figure benches use per-iteration barriers (simple and conservative);
// this bench quantifies what message-driven dependency release buys on
// top: each chare's iteration k starts as soon as its neighbourhood
// finished k-1, so the IO threads prefetch across the iteration
// boundary instead of idling at the barrier.

#include <iostream>

#include "bench_common.hpp"
#include "sim/pipelined_stencil_workload.hpp"
#include "sim/stencil_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  ArgParser args("ext_pipelined_overlap",
                 "extension: barriered vs message-driven iterations");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Extension: message-driven iteration pipelining",
                "paper §III-A overlap story — release each chare's next "
                "update from its neighbourhood, not a global barrier");

  const auto model = hw::knl_flat_all_to_all();
  constexpr std::uint64_t kTotal = 32ull << 30;
  constexpr int kIters = 10;
  // 8x8x16 = 1024 chares -> the fig-8 "2 GB reduced WSS" block size.
  sim::StencilWorkload barriered({.total_bytes = kTotal,
                                  .num_chares = 1024,
                                  .num_pes = model.num_pes,
                                  .iterations = kIters});
  sim::PipelinedStencilWorkload pipelined({.total_bytes = kTotal,
                                           .cx = 8,
                                           .cy = 8,
                                           .cz = 16,
                                           .num_pes = model.num_pes,
                                           .iterations = kIters});

  TextTable t({"strategy", "barriered (s)", "pipelined (s)", "gain"});
  bench::CsvSink csv(csv_path,
                     {"strategy", "barriered_s", "pipelined_s", "gain"});
  for (auto s : {ooc::Strategy::SingleIo, ooc::Strategy::SyncNoIo,
                 ooc::Strategy::MultiIo}) {
    const double tb = bench::run_sim(model, s, barriered).total_time;
    const double tp = bench::run_sim(model, s, pipelined).total_time;
    t.add_row({ooc::strategy_name(s), strfmt("%.2f", tb),
               strfmt("%.2f", tp), strfmt("%.2fx", tb / tp)});
    if (csv) {
      csv->field(std::string_view(ooc::strategy_name(s)))
          .field(tb)
          .field(tp)
          .field(tb / tp);
      csv->end_row();
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: pipelining never hurts; the biggest "
               "relief goes to the\nstrategies that suffer most at the "
               "barrier (SingleIO's serial ramp)\n";
  return 0;
}
