// Figure 1 — "Bandwidth comparison for stream".
//
// The paper measures the STREAM benchmark on a KNL in flat mode and
// finds MCDRAM delivering >4x the bandwidth of DDR4 across all four
// kernels.  We reproduce the table two ways:
//   (a) the modeled node's sustained STREAM bandwidth per tier, and
//   (b) a real STREAM run over this host's tier arenas (same buffers
//       the runtime migrates), which of course shows ~1x across tiers
//       on homogeneous host memory — printed to make the simulation
//       substitution explicit.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "mem/memory_manager.hpp"

namespace {

using namespace hmr;

struct Kernel {
  const char* name;
  int reads;
  int writes;
};

constexpr Kernel kKernels[] = {
    {"Copy", 1, 1}, {"Scale", 1, 1}, {"Add", 2, 1}, {"Triad", 2, 1}};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Real STREAM over an arena allocation: returns bytes moved per sec.
double real_stream(mem::MemoryManager& mm, hw::TierId tier,
                   const Kernel& k, std::uint64_t n) {
  auto* a = static_cast<double*>(mm.alloc_on_tier(n * 8, tier));
  auto* b = static_cast<double*>(mm.alloc_on_tier(n * 8, tier));
  auto* c = static_cast<double*>(mm.alloc_on_tier(n * 8, tier));
  HMR_CHECK(a && b && c);
  for (std::uint64_t i = 0; i < n; ++i) {
    a[i] = 1.0;
    b[i] = 2.0;
    c[i] = 0.0;
  }
  const double t0 = now_s();
  constexpr int kReps = 20;
  for (int r = 0; r < kReps; ++r) {
    if (k.reads == 1) { // Copy / Scale
      for (std::uint64_t i = 0; i < n; ++i) c[i] = 3.0 * a[i];
    } else { // Add / Triad
      for (std::uint64_t i = 0; i < n; ++i) c[i] = a[i] + 3.0 * b[i];
    }
  }
  const double dt = now_s() - t0;
  const double bytes =
      static_cast<double>(kReps) * (k.reads + k.writes) * n * 8;
  mm.free_on_tier(a, tier);
  mm.free_on_tier(b, tier);
  mm.free_on_tier(c, tier);
  return bytes / dt;
}

} // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::uint64_t real_elems = 1u << 20;
  hmr::ArgParser args("fig01_stream", "Fig 1: STREAM bandwidth per tier");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("real-elems", "elements per array for the host-memory run",
                &real_elems);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Figure 1: STREAM bandwidth, DDR4 vs MCDRAM",
                "MCDRAM sustains >4x the DDR4 bandwidth on KNL flat mode");

  const auto model = hw::knl_flat_all_to_all();
  TextTable t({"kernel", "DDR4 (GB/s)", "MCDRAM (GB/s)", "ratio"});
  bench::CsvSink csv(csv_path, {"kernel", "tier", "modeled_gbs"});
  for (const auto& k : kKernels) {
    const double ddr = model.stream_bw(model.slow, k.reads, k.writes);
    const double hbm = model.stream_bw(model.fast, k.reads, k.writes);
    t.add_row({k.name, strfmt("%.1f", ddr / GB), strfmt("%.1f", hbm / GB),
               strfmt("%.2fx", hbm / ddr)});
    if (csv) {
      csv->field(std::string_view(k.name))
          .field(std::string_view("DDR4"))
          .field(ddr / GB);
      csv->end_row();
      csv->field(std::string_view(k.name))
          .field(std::string_view("MCDRAM"))
          .field(hbm / GB);
      csv->end_row();
    }
  }
  std::cout << "modeled node (" << model.name << "):\n";
  t.print(std::cout);

  std::cout << "\nhost-memory sanity run over the tier arenas ("
            << fmt_bytes(real_elems * 8) << " per array;\nboth tiers are "
            << "plain host RAM here, so the ratio is ~1 — this is why\n"
            << "the figures use the modeled node):\n";
  mem::MemoryManager mm({{"DDR4", real_elems * 32}, {"MCDRAM", real_elems * 32}});
  TextTable rt({"kernel", "tier0 (GB/s)", "tier1 (GB/s)"});
  for (const auto& k : kKernels) {
    const double t0 = real_stream(mm, 0, k, real_elems);
    const double t1 = real_stream(mm, 1, k, real_elems);
    rt.add_row({k.name, strfmt("%.2f", t0 / GB), strfmt("%.2f", t1 / GB)});
  }
  rt.print(std::cout);
  return 0;
}
