// Figure 2 — "Comparison of performance of Stencil3D on HBM and DDR4,
// when the dataset size fits in HBM."
//
// The paper runs Stencil3D with a working set that fits in the 16 GB
// MCDRAM and reports total time and compute-kernel time for data
// allocated entirely on HBM vs entirely on DDR4; HBM is ~3x faster.
// We reproduce this with the HbmOnly vs DdrOnly placements at 64 PEs
// on the modeled node.

#include <iostream>

#include "bench_common.hpp"
#include "sim/stencil_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  std::uint64_t wss_gib = 8;
  std::int64_t iters = 20;
  bool check = false;
  ArgParser args("fig02_stencil_fit",
                 "Fig 2: Stencil3D on HBM vs DDR4 when the set fits");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("wss-gib", "total working set (GiB), must fit in HBM",
                &wss_gib);
  args.add_flag("iters", "stencil iterations", &iters);
  args.add_flag("check", "exit nonzero unless the paper's shape holds",
                &check);
  if (!args.parse(argc, argv)) return 1;

  bench::banner(
      "Figure 2: Stencil3D, dataset fits in HBM",
      "HBM-resident run is ~3x faster than DDR4-resident (64 threads)");

  const auto model = hw::knl_flat_all_to_all();
  const auto p = sim::StencilWorkload::params_for_reduced(
      wss_gib * GiB, 2 * GiB, model.num_pes, static_cast<int>(iters));
  sim::StencilWorkload w(p);

  // HbmOnly needs headroom for the full set (interiors + ghosts).
  const std::uint64_t cap = w.total_bytes() + GiB;

  const auto hbm = bench::run_sim(model, ooc::Strategy::HbmOnly, w, cap);
  const auto ddr = bench::run_sim(model, ooc::Strategy::DdrOnly, w, cap);

  TextTable t({"placement", "total time (s)", "compute kernel (s)",
               "per-iteration (s)"});
  auto row = [&](const char* name, const sim::SimResult& r) {
    t.add_row({name, strfmt("%.2f", r.total_time),
               strfmt("%.2f", r.compute_lane_seconds / model.num_pes),
               strfmt("%.3f", r.total_time / static_cast<double>(iters))});
  };
  row("HBM (MCDRAM)", hbm);
  row("DDR4", ddr);
  t.print(std::cout);
  std::cout << strfmt("\nDDR4 / HBM total-time ratio: %.2fx (paper: ~3x)\n",
                      ddr.total_time / hbm.total_time);

  bench::CsvSink csv(csv_path, {"placement", "total_s", "compute_s"});
  if (csv) {
    csv->field(std::string_view("HBM")).field(hbm.total_time)
        .field(hbm.compute_lane_seconds / model.num_pes);
    csv->end_row();
    csv->field(std::string_view("DDR4")).field(ddr.total_time)
        .field(ddr.compute_lane_seconds / model.num_pes);
    csv->end_row();
  }
  if (check) {
    const double ratio = ddr.total_time / hbm.total_time;
    if (ratio < 2.4 || ratio > 3.6) {
      std::cerr << "CHECK FAILED: DDR4/HBM ratio " << ratio
                << " outside the paper's ~3x band\n";
      return 2;
    }
    std::cout << "shape check passed\n";
  }
  return 0;
}
