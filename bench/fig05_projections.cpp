// Figure 5 — "Projections of Stencil3d comparing naive HBM allocation
// with Single and Multiple IO threads' asynchronous data prefetch".
//
// In the paper this is a Projections timeline screenshot: the red
// portion is wait time from scheduling, prefetch, eviction and lock
// delays, and the Single-IO-thread run shows far more red than the
// Multiple-IO-threads run.  We reproduce the quantity behind the
// picture — the fraction of worker-PE time that is not compute — plus
// an ASCII timeline render of a slice of each run.

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "telemetry/perfetto.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  std::string dump_csv; // optional interval dump prefix
  std::string perfetto; // Perfetto JSON of the MultiIo run
  bool timelines = true;
  ArgParser args("fig05_projections",
                 "Fig 5: worker wait/overhead by strategy (projections)");
  args.add_flag("csv", "write summary to this CSV file", &csv_path);
  args.add_flag("timelines", "render ASCII timelines", &timelines);
  args.add_flag("dump-csv",
                "dump each run's interval trace to <prefix>_<strategy>.csv "
                "(inspect with tools/hmr_trace)",
                &dump_csv);
  args.add_flag("perfetto",
                "write the MultiIo run's timeline as Chrome-trace JSON "
                "here (open in ui.perfetto.dev; causal task flows linked)",
                &perfetto);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Figure 5: projections — wait time by strategy",
                "single IO thread shows much more wait (red) than "
                "multiple IO threads");

  auto model = hw::knl_flat_all_to_all();
  // A 16-PE slice keeps the timeline legible; the contention ratios
  // are preserved by scaling the budget with the PE count.
  model.num_pes = 16;
  const std::uint64_t cap = 4 * GiB;
  const auto p = sim::StencilWorkload::params_for_reduced(
      8 * GiB, 1 * GiB, model.num_pes, /*iterations=*/3);
  sim::StencilWorkload w(p);

  TextTable t({"strategy", "total (s)", "compute frac", "non-compute frac",
               "mean task wait (ms)"});
  bench::CsvSink csv(csv_path, {"strategy", "total_s", "overhead_frac",
                                "mean_wait_ms"});

  for (auto s : {ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                 ooc::Strategy::MultiIo}) {
    sim::SimConfig cfg;
    cfg.model = model;
    cfg.strategy = s;
    cfg.fast_capacity = cap;
    cfg.trace = true;
    sim::SimExecutor ex(cfg);
    const auto r = ex.run(w);
    const double oh = r.worker_overhead_fraction(model.num_pes);
    t.add_row({ooc::strategy_name(s), strfmt("%.3f", r.total_time),
               strfmt("%.1f%%", 100 * (1 - oh)), strfmt("%.1f%%", 100 * oh),
               strfmt("%.2f", r.task_wait.mean() * 1e3)});
    if (csv) {
      csv->field(std::string_view(ooc::strategy_name(s)))
          .field(r.total_time)
          .field(oh)
          .field(r.task_wait.mean() * 1e3);
      csv->end_row();
    }
    if (timelines) {
      std::cout << "\n-- " << ooc::strategy_name(s)
                << " (worker lanes 0-7, full run) --\n";
      // Render only the first 8 worker lanes to keep output compact.
      trace::Tracer partial;
      for (const auto& iv : ex.tracer().intervals()) {
        if (iv.lane < 8) {
          partial.record(iv.lane, iv.cat, iv.start, iv.end, iv.task);
        }
      }
      partial.ascii_timeline(std::cout, 96, 0.0, r.total_time);
    }
    if (!dump_csv.empty()) {
      const std::string path =
          dump_csv + "_" + ooc::strategy_name(s) + ".csv";
      std::ofstream ofs(path);
      ex.tracer().write_csv(ofs);
      std::cout << "wrote " << path << "\n";
    }
    if (!perfetto.empty() && s == ooc::Strategy::MultiIo) {
      std::ofstream ofs(perfetto);
      telemetry::PerfettoOptions popt;
      popt.worker_lanes = model.num_pes;
      telemetry::write_perfetto(ofs, ex.tracer().intervals(), popt);
      std::cout << "wrote " << perfetto
                << " (open in ui.perfetto.dev)\n";
    }
  }
  std::cout << "\nsummary (the paper's 'red' = non-compute fraction):\n";
  t.print(std::cout);
  return 0;
}
