// Figure 6 — "Projections of Stencil3d comparing synchronous and
// asynchronous data prefetch".
//
// The paper zooms into the timelines and observes a ~20 ms
// pre-processing stall before each compute kernel under synchronous
// fetch (Multiple queues, No IO thread) that disappears under
// asynchronous fetch (Multiple IO threads), where transfers overlap
// compute.  We reproduce the per-task numbers behind the zoom: the
// worker-blocking transfer time per task and the arrival->start wait.

#include <iostream>

#include "bench_common.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  ArgParser args("fig06_sync_async",
                 "Fig 6: synchronous vs asynchronous prefetch overheads");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Figure 6: sync vs async data prefetch",
                "sync fetch stalls each task ~20 ms pre-kernel; async "
                "masks the fetch/evict almost entirely");

  const auto model = hw::knl_flat_all_to_all();
  const auto p = sim::StencilWorkload::params_for_reduced(
      32 * GiB, 2 * GiB, model.num_pes, /*iterations=*/5);
  sim::StencilWorkload w(p);

  TextTable t({"strategy", "fetch style", "pre-step fetch/task (ms)",
               "post-step evict/task (ms)", "total (s)"});
  bench::CsvSink csv(csv_path, {"strategy", "fetch_ms_per_task",
                                "evict_ms_per_task", "total_s"});

  struct Row {
    ooc::Strategy s;
    const char* style;
  };
  for (const Row row : {Row{ooc::Strategy::SyncNoIo, "synchronous"},
                        Row{ooc::Strategy::MultiIo, "asynchronous"}}) {
    sim::SimConfig cfg;
    cfg.model = model;
    cfg.strategy = row.s;
    cfg.trace = true;
    sim::SimExecutor ex(cfg);
    const auto r = ex.run(w);
    // Worker-lane transfer time = the stall the paper's Fig 6 zoom
    // shows before (fetch) and after (evict) each compute kernel.
    const auto ws = ex.tracer().summarize(model.num_pes);
    const auto tasks =
        static_cast<double>(std::max<std::uint64_t>(r.tasks_completed, 1));
    const double fetch_ms =
        ws.total_of(trace::Category::Prefetch) / tasks * 1e3;
    const double evict_ms =
        ws.total_of(trace::Category::Evict) / tasks * 1e3;
    t.add_row({ooc::strategy_name(row.s), row.style,
               strfmt("%.2f", fetch_ms), strfmt("%.2f", evict_ms),
               strfmt("%.3f", r.total_time)});
    if (csv) {
      csv->field(std::string_view(ooc::strategy_name(row.s)))
          .field(fetch_ms)
          .field(evict_ms)
          .field(r.total_time);
      csv->end_row();
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: tens of ms of synchronous per-task "
               "fetch/evict stall\n(the paper zooms in on ~20 ms) that "
               "vanish entirely under asynchronous IO threads\n";
  return 0;
}
