// Figure 7 — "memcpy cost for data migration".
//
// The paper stresses migration with 64 threads prefetching
// concurrently and plots the average memcpy seconds against the amount
// of data moved (1-16 GB), finding HBM->DDR slightly costlier than
// DDR->HBM.  We reproduce the sweep on the modeled channels (64
// concurrent flows) and, alongside, measure the real memcpy step of
// MemoryManager::migrate on this host at MiB scale.
//
// --json writes BENCH_fig07_memcpy.json.  The modeled sweep is
// deterministic (pure channel arithmetic) and CI gates on it exactly;
// the host table is wall-clock and only recorded.

#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "mem/memory_manager.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  bool json = false;
  ArgParser args("fig07_memcpy", "Fig 7: migration memcpy cost by size");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("json", "write BENCH_fig07_memcpy.json", &json);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Figure 7: memcpy cost for data migration",
                "linear in size; HBM->DDR slightly above DDR->HBM; "
                "~0.5 s at 16 GB under 64-thread stress");

  const auto model = hw::knl_flat_all_to_all();
  TextTable t({"total moved", "DDR->HBM (s)", "HBM->DDR (s)", "ratio"});
  bench::CsvSink csv(csv_path,
                     {"gib", "ddr_to_hbm_s", "hbm_to_ddr_s"});
  struct ModeledRow {
    std::uint64_t gib;
    double to_hbm, to_ddr;
  };
  std::vector<ModeledRow> modeled;
  for (std::uint64_t gib : {1, 2, 4, 8, 12, 16}) {
    // 64 threads move the total concurrently: each flow carries 1/64.
    const std::uint64_t per_flow = gib * GiB / 64;
    const double to_hbm =
        model.migrate_time(per_flow, model.slow, model.fast, 64);
    const double to_ddr =
        model.migrate_time(per_flow, model.fast, model.slow, 64);
    t.add_row({strfmt("%2llu GiB", static_cast<unsigned long long>(gib)),
               strfmt("%.3f", to_hbm), strfmt("%.3f", to_ddr),
               strfmt("%.2fx", to_ddr / to_hbm)});
    if (csv) {
      csv->field(gib).field(to_hbm).field(to_ddr);
      csv->end_row();
    }
    modeled.push_back({gib, to_hbm, to_ddr});
  }
  std::cout << "modeled 64-thread migration stress:\n";
  t.print(std::cout);

  // Real migrate() on host arenas: demonstrates the three-step
  // alloc/copy/free recipe and its measured breakdown.
  std::cout << "\nreal MemoryManager::migrate on this host "
            << "(single thread, MiB scale):\n";
  mem::MemoryManager mm({{"DDR4", 512 * MiB}, {"MCDRAM", 512 * MiB}});
  TextTable rt({"block", "alloc (us)", "copy (us)", "free (us)",
                "copy GB/s"});
  struct HostRow {
    std::uint64_t mib;
    double copy_gbps;
  };
  std::vector<HostRow> host;
  for (std::uint64_t mib : {1, 4, 16, 64, 128}) {
    const auto b = mm.register_block(mib * MiB, 0);
    HMR_CHECK(b != mem::kInvalidBlock);
    // Warm the pages.
    auto* p = static_cast<char*>(mm.block_ptr(b));
    for (std::uint64_t i = 0; i < mib * MiB; i += 4096) p[i] = 1;
    double alloc_s = 0, copy_s = 0, free_s = 0;
    constexpr int kReps = 6;
    for (int r = 0; r < kReps; ++r) {
      const auto fwd = mm.migrate(b, 1);
      const auto back = mm.migrate(b, 0);
      HMR_CHECK(fwd.ok && back.ok);
      alloc_s += fwd.alloc_s + back.alloc_s;
      copy_s += fwd.copy_s + back.copy_s;
      free_s += fwd.free_s + back.free_s;
    }
    const double n = 2.0 * kReps;
    rt.add_row({strfmt("%3llu MiB", static_cast<unsigned long long>(mib)),
                strfmt("%.1f", alloc_s / n * 1e6),
                strfmt("%.1f", copy_s / n * 1e6),
                strfmt("%.1f", free_s / n * 1e6),
                strfmt("%.2f",
                       static_cast<double>(mib * MiB) / (copy_s / n) / GB)});
    host.push_back(
        {mib, static_cast<double>(mib * MiB) / (copy_s / n) / GB});
    mm.unregister_block(b);
  }
  rt.print(std::cout);

  if (json) {
    const char* path = "BENCH_fig07_memcpy.json";
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig07_memcpy\",\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    // Modeled channel sweep: deterministic, gate with --tolerance 0.
    std::fprintf(f, "  \"modeled\": [\n");
    for (std::size_t i = 0; i < modeled.size(); ++i) {
      const auto& m = modeled[i];
      std::fprintf(f,
                   "    {\"name\": \"%llugib\", "
                   "\"ddr_to_hbm_s\": %.6f, \"hbm_to_ddr_s\": %.6f}%s\n",
                   static_cast<unsigned long long>(m.gib), m.to_hbm,
                   m.to_ddr, i + 1 < modeled.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Host memcpy bandwidth: wall-clock, recorded but not gated.
    std::fprintf(f, "  \"host\": [\n");
    for (std::size_t i = 0; i < host.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%llumib\", \"copy_gbps\": %.3f}%s\n",
                   static_cast<unsigned long long>(host[i].mib),
                   host[i].copy_gbps, i + 1 < host.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
