// Figure 8 — "Speedup from data movement in Stencil3D".
//
// The paper's headline stencil result: total working set 32 GB (2x the
// 16 GB MCDRAM), reduced working set varied over {2, 4, 8} GB via
// over-decomposition, 20 iterations, 64 PEs.  Application iteration
// time speedup is reported normalized to the Naive baseline
// (HBM-preferred allocation, overflow to DDR4, no movement):
//   * Single IO thread: considerable SLOWDOWN (<1x) — it must fetch
//     at least one chare's blocks per PE, serially, for all 64 PEs;
//   * Multiple queues, no IO thread: modest speedup;
//   * Multiple queues, multiple IO threads: best, up to ~2x.

#include <iostream>

#include "bench_common.hpp"
#include "sim/stencil_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  std::uint64_t total_gib = 32;
  std::int64_t iters = 20;
  bool check = false;
  ArgParser args("fig08_stencil_speedup",
                 "Fig 8: Stencil3D speedup vs Naive by strategy");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("total-gib", "total working set (GiB)", &total_gib);
  args.add_flag("iters", "stencil iterations", &iters);
  args.add_flag("check", "exit nonzero unless the paper's shape holds",
                &check);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Figure 8: Stencil3D speedup from data movement",
                "SingleIO < 1x; NoIOthread > 1x; MultipleIO best, ~2x; "
                "total 32 GB, reduced {2,4,8} GB, 20 iters, 64 PEs");

  const auto model = hw::knl_flat_all_to_all();
  TextTable t({"reduced WSS", "DDR4only", "SingleIO", "NoIOthread",
               "MultipleIO", "naive iter (s)"});
  bench::CsvSink csv(csv_path,
                     {"reduced_gib", "strategy", "speedup_vs_naive",
                      "total_s", "fetch_gib"});

  for (std::uint64_t reduced_gib : {2, 4, 8}) {
    const auto p = sim::StencilWorkload::params_for_reduced(
        total_gib * GiB, reduced_gib * GiB, model.num_pes,
        static_cast<int>(iters));
    sim::StencilWorkload w(p);

    const auto naive = bench::run_sim(model, ooc::Strategy::Naive, w);
    auto speedup = [&](ooc::Strategy s) {
      const auto r = bench::run_sim(model, s, w);
      if (csv) {
        csv->field(reduced_gib)
            .field(std::string_view(ooc::strategy_name(s)))
            .field(naive.total_time / r.total_time)
            .field(r.total_time)
            .field(static_cast<double>(r.policy.fetch_bytes) / GiB);
        csv->end_row();
      }
      return naive.total_time / r.total_time;
    };

    const double ddr = speedup(ooc::Strategy::DdrOnly);
    const double single = speedup(ooc::Strategy::SingleIo);
    const double noio = speedup(ooc::Strategy::SyncNoIo);
    const double multi = speedup(ooc::Strategy::MultiIo);
    if (check) {
      // Fig 8's ordering: MultipleIO > NoIOthread > 1 > SingleIO, DDR < 1.
      const bool ok = multi >= noio && noio > 1.0 && single < 1.0 &&
                      ddr < 1.0 && multi > 1.3;
      if (!ok) {
        std::cerr << "CHECK FAILED at reduced WSS " << reduced_gib
                  << " GB: multi=" << multi << " noio=" << noio
                  << " single=" << single << " ddr=" << ddr << "\n";
        return 2;
      }
    }
    t.add_row({strfmt("%llu GB", static_cast<unsigned long long>(reduced_gib)),
               strfmt("%.2fx", ddr), strfmt("%.2fx", single),
               strfmt("%.2fx", noio), strfmt("%.2fx", multi),
               strfmt("%.3f", naive.total_time / static_cast<double>(iters))});
  }
  std::cout << "speedup normalized to Naive (higher is better):\n";
  t.print(std::cout);
  std::cout << "\nexpected shape: MultipleIO > NoIOthread > 1x > SingleIO\n";
  if (check) std::cout << "shape check passed\n";
  return 0;
}
