// Figure 9 — "Speedup from data movement for Matrix Multiplication".
//
// Total working set (A, B, C) varied over ~{24, 39, 54} GB with the
// reduced working set held at 6 GB; 64 PEs.  Because the read-only A/B
// tiles are heavily reused across chares (and cached node-level), the
// single IO thread performs about as well as multiple IO threads; all
// movement strategies gain on Naive as the total set grows (more of
// the naive allocation spills to DDR4), reaching ~2x at 54 GB.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "sim/matmul_workload.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string csv_path;
  std::uint64_t reduced_gib = 6;
  bool check = false;
  ArgParser args("fig09_matmul_speedup",
                 "Fig 9: MatMul speedup vs Naive by strategy");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("reduced-gib", "reduced working set (GiB)", &reduced_gib);
  args.add_flag("check", "exit nonzero unless the paper's shape holds",
                &check);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Figure 9: MatMul speedup from data movement",
                "all strategies comparable (read-only reuse); speedup "
                "grows with total WSS, ~2x at 54 GB; reduced fixed 6 GB");

  const auto model = hw::knl_flat_all_to_all();
  TextTable t({"total WSS", "DDR4only", "SingleIO", "NoIOthread",
               "MultipleIO", "naive (s)", "fetch GiB (multi)"});
  bench::CsvSink csv(csv_path, {"total_gib", "strategy",
                                "speedup_vs_naive", "total_s"});

  for (std::uint64_t total_gib : {24, 39, 54}) {
    const auto p = sim::MatmulWorkload::params_for(
        total_gib * GiB, reduced_gib * GiB, model.num_pes);
    sim::MatmulWorkload w(p);

    const auto naive = bench::run_sim(model, ooc::Strategy::Naive, w);
    double fetch_gib_multi = 0;
    auto speedup = [&](ooc::Strategy s) {
      const auto r = bench::run_sim(model, s, w);
      if (s == ooc::Strategy::MultiIo) {
        fetch_gib_multi = static_cast<double>(r.policy.fetch_bytes) / GiB;
      }
      if (csv) {
        csv->field(total_gib)
            .field(std::string_view(ooc::strategy_name(s)))
            .field(naive.total_time / r.total_time)
            .field(r.total_time);
        csv->end_row();
      }
      return naive.total_time / r.total_time;
    };

    const double ddr = speedup(ooc::Strategy::DdrOnly);
    const double single = speedup(ooc::Strategy::SingleIo);
    const double noio = speedup(ooc::Strategy::SyncNoIo);
    const double multi = speedup(ooc::Strategy::MultiIo);
    if (check) {
      // Fig 9's shape: movement strategies > 1 and within ~25% of each
      // other (read-only reuse), DDR4only < 1.
      const double lo = std::min({single, noio, multi});
      const double hi = std::max({single, noio, multi});
      if (!(lo > 1.0 && hi / lo < 1.25 && ddr < 1.0)) {
        std::cerr << "CHECK FAILED at total WSS " << total_gib
                  << " GB: single=" << single << " noio=" << noio
                  << " multi=" << multi << " ddr=" << ddr << "\n";
        return 2;
      }
    }
    t.add_row(
        {strfmt("%llu GB (n=%llu, G=%d)",
                static_cast<unsigned long long>(total_gib),
                static_cast<unsigned long long>(w.params().n),
                w.params().grid),
         strfmt("%.2fx", ddr), strfmt("%.2fx", single),
         strfmt("%.2fx", noio), strfmt("%.2fx", multi),
         strfmt("%.2f", naive.total_time), strfmt("%.1f", fetch_gib_multi)});
  }
  std::cout << "speedup normalized to Naive (higher is better):\n";
  t.print(std::cout);
  std::cout << "\nexpected shape: SingleIO ~ NoIOthread ~ MultipleIO; "
               "all grow with total WSS\n";
  if (check) std::cout << "shape check passed\n";
  return 0;
}
