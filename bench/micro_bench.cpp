// Micro-benchmarks (google-benchmark) for the hot paths of the
// runtime: arena allocation, pooled buffers, real memcpy by size,
// policy-engine event handling, transfer-channel updates, and the
// event queue.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "adapt/block_profiler.hpp"
#include "adapt/placement_advisor.hpp"
#include "mem/arena.hpp"
#include "mem/chunked_copy.hpp"
#include "mem/copy_kernel.hpp"
#include "rt/ci_parser.hpp"
#include "rt/load_balancer.hpp"
#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "telemetry/attrib.hpp"
#include "telemetry/decision_log.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/history.hpp"
#include "telemetry/metrics.hpp"
#include "trace/tracer.hpp"
#include "mem/memory_manager.hpp"
#include "ooc/policy_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/transfer_channel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace hmr;

void BM_ArenaAllocFree(benchmark::State& state) {
  mem::TierArena arena("t", 64 * MiB);
  const auto sz = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    void* p = arena.alloc(sz);
    benchmark::DoNotOptimize(p);
    arena.free(p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ArenaAllocFree)->Arg(256)->Arg(4096)->Arg(1 << 20);

void BM_ArenaFragmentedAlloc(benchmark::State& state) {
  // Allocate through a checkerboard of live allocations.
  mem::TierArena arena("t", 64 * MiB);
  std::vector<void*> keep;
  for (int i = 0; i < 512; ++i) {
    void* a = arena.alloc(32 * KiB);
    void* b = arena.alloc(32 * KiB);
    keep.push_back(a);
    arena.free(b);
  }
  for (auto _ : state) {
    void* p = arena.alloc(16 * KiB);
    benchmark::DoNotOptimize(p);
    arena.free(p);
  }
  for (void* p : keep) arena.free(p);
}
BENCHMARK(BM_ArenaFragmentedAlloc);

void BM_ArenaLargestFreeRange(benchmark::State& state) {
  // Heavily fragmented arena: the pre-index implementation walked every
  // free range per query; the multiset max-hint answers from the back.
  mem::TierArena arena("t", 64 * MiB);
  std::vector<void*> keep;
  for (int i = 0; i < 512; ++i) {
    void* a = arena.alloc(32 * KiB);
    void* b = arena.alloc(32 * KiB);
    keep.push_back(a);
    arena.free(b);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.largest_free_range());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  for (void* p : keep) arena.free(p);
}
BENCHMARK(BM_ArenaLargestFreeRange);

void BM_MigrateRoundTrip(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  const bool pool = state.range(1) != 0;
  mem::MemoryManager mm({{"DDR4", 128 * MiB}, {"MCDRAM", 128 * MiB}}, pool);
  const auto b = mm.register_block(bytes, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mm.migrate(b, 1).ok);
    benchmark::DoNotOptimize(mm.migrate(b, 0).ok);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MigrateRoundTrip)
    ->Args({64 * KiB, 0})
    ->Args({64 * KiB, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1})
    ->Args({16 << 20, 0})
    ->Args({16 << 20, 1});

void BM_RawMemcpy(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<char> src(bytes, 1), dst(bytes);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_RawMemcpy)->Arg(4 * KiB)->Arg(256 * KiB)->Arg(16 << 20);

void BM_CopyKernel(benchmark::State& state) {
  // mem::copy dispatched kernel vs BM_RawMemcpy above; range(1) forces
  // streaming stores on/off so the NT threshold tradeoff is visible at
  // each size.
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto stream =
      state.range(1) != 0 ? mem::Stream::Always : mem::Stream::Never;
  std::vector<char> src(bytes, 1), dst(bytes);
  for (auto _ : state) {
    mem::copy(dst.data(), src.data(), bytes, stream);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(mem::copy_impl_name(mem::copy_impl()));
}
BENCHMARK(BM_CopyKernel)
    ->Args({4 * KiB, 0})
    ->Args({256 * KiB, 0})
    ->Args({256 * KiB, 1})
    ->Args({16 << 20, 0})
    ->Args({16 << 20, 1});

void BM_PolicyTaskCycle(benchmark::State& state) {
  // One full task lifecycle (arrive -> fetch -> run -> complete ->
  // evict) through the engine, MultiIo.
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 4;
  cfg.fast_capacity = 1 * GiB;
  ooc::PolicyEngine eng(cfg);
  eng.add_block(0, 1 * MiB);
  ooc::TaskId next = 1;
  for (auto _ : state) {
    ooc::TaskDesc t;
    t.id = next++;
    t.pe = 0;
    t.deps = {{0, ooc::AccessMode::ReadWrite}};
    auto c1 = eng.on_task_arrived(t);
    auto c2 = eng.on_fetch_complete(0);
    auto c3 = eng.on_task_complete(t.id);
    auto c4 = eng.on_evict_complete(0);
    benchmark::DoNotOptimize(c1.size() + c2.size() + c3.size() + c4.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PolicyTaskCycle);

void BM_PolicyTaskCycleBatched(benchmark::State& state) {
  // BM_PolicyTaskCycle's four events handed to the engine as one
  // step_batch call — the amortization the threaded runtime's PE/IO
  // loops use.  The delta against BM_PolicyTaskCycle is the per-call
  // dispatch overhead (the lock amortization on top of it only shows
  // under contention; bench/rt_contention measures that part).
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 4;
  cfg.fast_capacity = 1 * GiB;
  ooc::PolicyEngine eng(cfg);
  eng.add_block(0, 1 * MiB);
  ooc::TaskId next = 1;
  for (auto _ : state) {
    ooc::TaskDesc t;
    t.id = next++;
    t.pe = 0;
    t.deps = {{0, ooc::AccessMode::ReadWrite}};
    std::vector<ooc::PolicyEngine::Event> ev;
    ev.push_back(ooc::PolicyEngine::Event::arrived(t));
    ev.push_back(ooc::PolicyEngine::Event::fetched(0));
    ev.push_back(ooc::PolicyEngine::Event::completed(t.id));
    ev.push_back(ooc::PolicyEngine::Event::evicted(0));
    auto cmds = eng.step_batch(std::move(ev));
    benchmark::DoNotOptimize(cmds.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PolicyTaskCycleBatched);

void BM_ChunkedMigrateRoundTrip(benchmark::State& state) {
  // BM_MigrateRoundTrip with the copy streamed through the ChunkRing
  // (256 KiB chunks), with 0 or 2 helper threads assisting.  Compare
  // against BM_MigrateRoundTrip at the same size for the chunking
  // overhead / cooperation speedup.
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  const int n_helpers = static_cast<int>(state.range(1));
  mem::MemoryManager mm({{"DDR4", 128 * MiB}, {"MCDRAM", 128 * MiB}});
  mm.set_chunked_copy(/*threshold=*/1 * MiB, /*chunk=*/256 * KiB);
  const auto b = mm.register_block(bytes, 0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> helpers;
  for (int h = 0; h < n_helpers; ++h) {
    helpers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (mm.assist_copies() == 0) std::this_thread::yield();
      }
    });
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mm.migrate(b, 1).ok);
    benchmark::DoNotOptimize(mm.migrate(b, 0).ok);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : helpers) t.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ChunkedMigrateRoundTrip)
    ->Args({4 << 20, 0})
    ->Args({4 << 20, 2})
    ->Args({16 << 20, 0})
    ->Args({16 << 20, 2})
    ->UseRealTime();

void BM_BlockProfilerAccess(benchmark::State& state) {
  // Per-access cost of the hotness/reuse sketch, over more live blocks
  // than top_k so the space-saving takeover path is exercised too.
  adapt::BlockProfiler prof({.top_k = 256});
  Xoshiro256 rng(11);
  for (auto _ : state) {
    const auto b = static_cast<ooc::BlockId>(rng.below(1024));
    prof.on_access(b, 1 * MiB, ooc::AccessMode::ReadOnly);
    benchmark::DoNotOptimize(prof.ticks());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockProfilerAccess);

void BM_PolicyTaskCycleAdaptive(benchmark::State& state) {
  // BM_PolicyTaskCycle with the adaptive subsystem in the loop: the
  // profiler fed per arrival and a PlacementAdvisor installed on the
  // engine.  The delta against BM_PolicyTaskCycle is the guidance
  // overhead per engine step (acceptance: < 2%).
  ooc::PolicyEngine::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = 4;
  cfg.fast_capacity = 1 * GiB;
  ooc::PolicyEngine eng(cfg);
  eng.add_block(0, 1 * MiB);
  adapt::BlockProfiler prof({.top_k = 256});
  adapt::PlacementAdvisor advisor(
      prof, adapt::AdvisorConfig::from_model(hw::knl_flat_all_to_all()));
  eng.set_advisor(&advisor);
  ooc::TaskId next = 1;
  for (auto _ : state) {
    ooc::TaskDesc t;
    t.id = next++;
    t.pe = 0;
    t.deps = {{0, ooc::AccessMode::ReadWrite}};
    prof.on_task_arrived(t, [](ooc::BlockId) { return 1 * MiB; });
    auto c1 = eng.on_task_arrived(t);
    auto c2 = eng.on_fetch_complete(0);
    auto c3 = eng.on_task_complete(t.id);
    auto c4 = eng.on_evict_complete(0);
    benchmark::DoNotOptimize(c1.size() + c2.size() + c3.size() + c4.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PolicyTaskCycleAdaptive);

void BM_TransferChannelUpdate(benchmark::State& state) {
  const auto flows = static_cast<std::uint64_t>(state.range(0));
  sim::TransferChannel ch(10.0 * GB, 40.0 * GB);
  double t = 0;
  std::uint64_t id = 0;
  for (std::uint64_t i = 0; i < flows; ++i) {
    (void)ch.advance(t);
    ch.add_flow(id++, 1e18, t); // effectively never completes
  }
  for (auto _ : state) {
    t += 1e-6;
    benchmark::DoNotOptimize(ch.advance(t));
  }
}
BENCHMARK(BM_TransferChannelUpdate)->Arg(1)->Arg(16)->Arg(64);

void BM_EventQueue(benchmark::State& state) {
  sim::EventQueue eq;
  Xoshiro256 rng(1);
  double base = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      eq.at(base + rng.uniform(), [] {});
    }
    while (!eq.empty()) {
      auto [tt, fn] = eq.pop();
      fn();
      base = tt;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64);
}
BENCHMARK(BM_EventQueue);

void BM_CiParse(benchmark::State& state) {
  const std::string src = R"(
    module Stencil {
      entry [prefetch] void exchange() [readonly: cur, writeonly: ghosts];
      entry [prefetch] void update()
          [readonly: cur, readonly: ghosts, writeonly: next];
      entry void converged();
    };
  )";
  for (auto _ : state) {
    auto r = hmr::rt::parse_ci(src);
    benchmark::DoNotOptimize(r.file->modules.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_CiParse);

void BM_GreedyAssign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(7);
  std::vector<double> loads(n);
  for (auto& l : loads) l = rng.uniform(0.5, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmr::rt::greedy_assign(loads, 64));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GreedyAssign)->Arg(256)->Arg(4096);

void BM_TracerRecord(benchmark::State& state) {
  // The lock-free ring fast path (acceptance: <= ~50 ns/event).  The
  // ring is drained from the timed loop's own thread every 4k events —
  // the executor's windowed-summary cadence — so the steady state is
  // try_push succeeding, not the drop path.
  trace::Tracer t;
  double now = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    t.record(0, trace::Category::Compute, now, now + 1e-4, 1);
    now += 1e-4;
    if ((++i & 4095) == 0) t.clear();
  }
  if (t.dropped() > 0) {
    state.SkipWithError("ring dropped events on the fast path");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecord);

void BM_TracerRecordSerial(benchmark::State& state) {
  // The deprecated mutex + push_back path (Options::serial /
  // HMR_TRACE_SERIAL=1) for comparison with BM_TracerRecord.
  trace::Tracer::Options opt;
  opt.serial = true;
  trace::Tracer t(true, opt);
  double now = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    t.record(0, trace::Category::Compute, now, now + 1e-4, 1);
    now += 1e-4;
    if ((++i & 4095) == 0) t.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecordSerial);

void BM_TracerRecordDrop(benchmark::State& state) {
  // The overflow path: a tiny ring that is never drained, so every
  // record after the first few is a wait-free drop (one CAS-free
  // sequence load + one relaxed counter increment).
  trace::Tracer::Options opt;
  opt.ring_capacity = 8;
  trace::Tracer t(true, opt);
  double now = 0;
  for (auto _ : state) {
    t.record(0, trace::Category::Compute, now, now + 1e-4, 1);
    now += 1e-4;
  }
  // Calibration runs may be shorter than the ring; only a measured
  // run long enough to wrap proves the drop path engaged.
  if (state.iterations() > 64 && t.dropped() == 0) {
    state.SkipWithError("expected the drop path to engage");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecordDrop);

void BM_AttribRecord(benchmark::State& state) {
  // AttributionTable::record on an uncontended shard — the per-task
  // cost the executors add on top of the 22 ns trace record
  // (acceptance: <= ~30 ns/task).  The record carries the typical
  // shape of a stencil task: two covered tier pairs and two waited-on
  // blocks.
  telemetry::AttributionTable::Options opt;
  opt.shards = 1;
  telemetry::AttributionTable table(opt);
  telemetry::TaskAttribution a;
  a.pe = 0;
  a.phase = 3;
  a.arrive = 0;
  a.start = 1e-4;
  a.end = 3e-4;
  a.seconds[static_cast<int>(telemetry::Bucket::Compute)] = 2e-4;
  a.seconds[static_cast<int>(telemetry::Bucket::FetchWait)] = 6e-5;
  a.seconds[static_cast<int>(telemetry::Bucket::QueueWait)] = 4e-5;
  a.pairs = {{0, 1, 4e-5}, {2, 1, 2e-5}};
  a.blocks = {{7, 4e-5}, {9, 2e-5}};
  std::uint64_t id = 0;
  for (auto _ : state) {
    a.task = ++id;
    table.record(0, a);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AttribRecord);

void BM_TracerRecordMT(benchmark::State& state) {
  // Concurrent producers, one lane each (the executor's layout: no
  // cross-lane contention on the rings).  Thread 0 doubles as the
  // drain consumer.
  static trace::Tracer t; // shared across the benchmark's threads
  const auto lane = static_cast<std::int32_t>(state.thread_index());
  double now = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    t.record(lane, trace::Category::Compute, now, now + 1e-4, 1);
    now += 1e-4;
    if (state.thread_index() == 0 && (++i & 4095) == 0) t.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecordMT)->Threads(4)->UseRealTime();

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.observe(v);
    v = (v * 2862933555777941757ull + 3037000493ull) >> 8; // cheap lcg
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramObserve);

void BM_FlightRecorderRecord(benchmark::State& state) {
  telemetry::BlockFlightRecorder fr(8);
  Xoshiro256 rng(5);
  double now = 0;
  for (auto _ : state) {
    const auto b = static_cast<ooc::BlockId>(rng.below(512));
    fr.record(b, {now, 1, 0, 1, 1 * MiB, true});
    now += 1e-6;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_HistoryBufferSample(benchmark::State& state) {
  // One full registry sample into the history ring at a realistic
  // instrument population (the runtime's /metrics page is ~40 series).
  // Samples happen at quiescence ticks / iteration boundaries, so this
  // per-call cost bounds the history plane's overhead there.
  telemetry::MetricsRegistry reg;
  for (int i = 0; i < 32; ++i) {
    reg.counter("bench_counter_" + std::to_string(i), "").add(i);
    reg.gauge("bench_gauge_" + std::to_string(i), "").set(i * 1.5);
  }
  telemetry::Histogram& h = reg.histogram("bench_hist", "");
  for (int i = 0; i < 1000; ++i) h.observe(static_cast<std::uint64_t>(i));
  telemetry::HistoryBuffer hist(reg, 240);
  double now = 0;
  hist.set_clock([&now] { return now; });
  for (auto _ : state) {
    now += 0.1;
    hist.sample();
  }
  benchmark::DoNotOptimize(hist.total_samples());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistoryBufferSample);

void BM_DecisionLogRecord(benchmark::State& state) {
  // Seqlock-ring decision append — the cost the advisor/governor pay
  // per recorded decision (acceptance: history + decision logging
  // <= 2% on rt_contention).
  telemetry::DecisionLog log(1024);
  double now = 0;
  log.set_clock([&now] { return now; });
  adapt::DecisionEvent e;
  e.kind = adapt::DecisionKind::AdvisePin;
  e.bytes = 1 * MiB;
  e.hotness = 3.5;
  e.break_even = 2.0;
  e.pin = true;
  for (auto _ : state) {
    now += 1e-6;
    e.block = static_cast<ooc::BlockId>(log.total_recorded() % 512);
    log.record(e);
  }
  benchmark::DoNotOptimize(log.total_recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecisionLogRecord);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Xoshiro);

void BM_SimStencilIteration(benchmark::State& state) {
  // Wall-clock cost of simulating one full out-of-core stencil
  // iteration (events, channel updates, engine steps) — the DES's own
  // overhead, not the modeled time.
  for (auto _ : state) {
    sim::StencilWorkload w({.total_bytes = 256u << 20,
                            .num_chares = 128,
                            .num_pes = 16,
                            .iterations = 1});
    sim::SimConfig cfg;
    cfg.model = hmr::hw::knl_flat_all_to_all();
    cfg.model.num_pes = 16;
    cfg.strategy = hmr::ooc::Strategy::MultiIo;
    cfg.fast_capacity = 128u << 20;
    sim::SimExecutor ex(cfg);
    benchmark::DoNotOptimize(ex.run(w).total_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          128);
}
BENCHMARK(BM_SimStencilIteration);

void BM_SimStencilIterationAdaptive(benchmark::State& state) {
  // BM_SimStencilIteration with the full adaptive subsystem engaged
  // (profiler on every arrival, advisor on the engine, governor at
  // the iteration boundary).  The delta against the plain version is
  // the guidance overhead per simulated engine step (acceptance:
  // < 2% wall clock).
  for (auto _ : state) {
    sim::StencilWorkload w({.total_bytes = 256u << 20,
                            .num_chares = 128,
                            .num_pes = 16,
                            .iterations = 1});
    sim::SimConfig cfg;
    cfg.model = hmr::hw::knl_flat_all_to_all();
    cfg.model.num_pes = 16;
    cfg.strategy = hmr::ooc::Strategy::MultiIo;
    cfg.fast_capacity = 128u << 20;
    cfg.adaptive = true;
    cfg.profiler_cfg.top_k = 256;
    sim::SimExecutor ex(cfg);
    benchmark::DoNotOptimize(ex.run(w).total_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          128);
}
BENCHMARK(BM_SimStencilIterationAdaptive);

} // namespace

BENCHMARK_MAIN();
