// rt_contention: throughput + lock-contention bench for the threaded
// runtime's scheduler hot path.
//
// Two questions, answered on this host:
//   1. What does de-serializing the policy engine buy?  The same
//      fine-grained MultiIo workload runs against (a) the serial
//      engine under one global mutex with per-event locking (the
//      pre-sharding runtime: engine_shards=1, io_batch=1), (b) the
//      serial engine with batched event delivery, and (c) the sharded
//      engine (per-PE shards, striped block locks, work-stealing HBM
//      budget).  Reported per config: tasks/sec and the fraction of
//      thread-seconds spent blocked on scheduler locks.
//   2. What does chunking a large migration buy?  One big block is
//      copied tier-to-tier monolithically vs through the ChunkRing
//      with helper threads assisting, reporting GB/s and how many
//      chunks helpers carried.
//
// --json writes BENCH_rt_contention.json for the experiment harness.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "hw/machine_model.hpp"
#include "mem/chunked_copy.hpp"
#include "mem/memory_manager.hpp"
#include "rt/runtime.hpp"
#include "telemetry/perfetto.hpp"
#include "util/argparse.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace {

using namespace hmr;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::string name;
  double wall_s = 0;
  double tasks_per_sec = 0;
  std::uint64_t tasks = 0;
  std::uint64_t fetches = 0;
  std::uint64_t evicts = 0;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contended = 0;
  double lock_wait_s = 0;
  double lock_wait_fraction = 0; // of total thread-seconds
  std::uint64_t budget_steals = 0;
  std::uint64_t ctx_switches = 0; // voluntary + involuntary, process-wide
  int engine_shards = 1;
  int run_threads = 0; // PEs + IO threads actually spawned
};

std::uint64_t ctx_switch_count() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_nvcsw) +
         static_cast<std::uint64_t>(ru.ru_nivcsw);
}

struct BenchCfg {
  // 0 = auto-detect: one PE per hardware thread, floor 2 so the
  // scheduler contention being measured actually exists even on a
  // single-core host (threads then timeshare, which is still the
  // multi-thread code path).
  std::int64_t pes = 8;
  std::int64_t rounds = 40;
  std::int64_t tasks_per_round = 32; // per PE
  std::int64_t blocks_per_pe = 96;
  std::uint64_t block_bytes = 1ull << 10;
  // Fast tier sized well below the working set (~1/3) so tasks churn
  // the engine (fetch + eager evict), while the blocks are small
  // enough that the copies themselves are a minor cost: wall time is
  // scheduler bookkeeping, which is what this bench isolates.
  std::uint64_t fast_kib = 256;
  // Best-of-N per configuration: thread scheduling on a shared or
  // oversubscribed host adds multi-10% run-to-run noise.
  std::int64_t sched_reps = 3;
  bool evict_by_worker = false;
  bool pin = false; // pin PEs + IO siblings to cores (Linux only)
};

/// Fine-grained MultiIo workload: every PE cycles over its own block
/// pool with 2-dep tasks and a trivial body, so scheduler and
/// migration bookkeeping dominate wall time.
RunResult run_config(const std::string& name, const BenchCfg& bc,
                     int engine_shards, int io_batch, bool legacy) {
  rt::Runtime::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = static_cast<int>(bc.pes);
  cfg.mem_scale =
      static_cast<double>(bc.fast_kib << 10) /
      static_cast<double>(cfg.model.tier(cfg.model.fast).capacity);
  cfg.engine_shards = engine_shards;
  cfg.io_batch = io_batch;
  cfg.lock_stats = true;
  cfg.legacy_idle_notify = legacy;
  cfg.evict_by_worker = bc.evict_by_worker;
  cfg.pin_threads = bc.pin;
  cfg.chunk_threshold = 0; // blocks are tiny; isolate scheduler cost
  rt::Runtime run(cfg);

  std::vector<std::vector<mem::BlockId>> blocks(
      static_cast<std::size_t>(bc.pes));
  for (auto& pool : blocks) {
    for (std::int64_t i = 0; i < bc.blocks_per_pe; ++i) {
      pool.push_back(run.alloc_block(bc.block_bytes));
    }
  }

  std::atomic<std::uint64_t> bodies{0};
  const std::uint64_t cs0 = ctx_switch_count();
  const double t0 = now_s();
  for (std::int64_t r = 0; r < bc.rounds; ++r) {
    for (std::int64_t pe = 0; pe < bc.pes; ++pe) {
      std::vector<rt::Runtime::PrefetchMsg> batch;
      batch.reserve(static_cast<std::size_t>(bc.tasks_per_round));
      const auto& pool = blocks[static_cast<std::size_t>(pe)];
      for (std::int64_t t = 0; t < bc.tasks_per_round; ++t) {
        const std::size_t a =
            static_cast<std::size_t>(r + t) % pool.size();
        const std::size_t b =
            static_cast<std::size_t>(r + t + 7) % pool.size();
        rt::Runtime::PrefetchMsg m;
        m.deps = {{pool[a], ooc::AccessMode::ReadWrite}};
        if (b != a) m.deps.push_back({pool[b], ooc::AccessMode::ReadOnly});
        m.body = [&bodies] {
          bodies.fetch_add(1, std::memory_order_relaxed);
        };
        batch.push_back(std::move(m));
      }
      if (legacy) {
        // The pre-sharding runtime had no batched send: one queue
        // lock, one wakeup and one idle-counter lock per message.
        for (auto& m : batch) {
          run.send_prefetch(static_cast<int>(pe), std::move(m.deps),
                            std::move(m.body), m.work_factor);
        }
      } else {
        run.send_prefetch_batch(static_cast<int>(pe), std::move(batch));
      }
    }
    run.wait_idle();
  }
  const double wall = now_s() - t0;

  RunResult res;
  res.name = name;
  res.ctx_switches = ctx_switch_count() - cs0;
  res.wall_s = wall;
  res.tasks = run.tasks_executed();
  res.tasks_per_sec = wall > 0 ? static_cast<double>(res.tasks) / wall : 0;
  const auto st = run.policy_stats();
  res.fetches = st.fetches;
  res.evicts = st.evicts;
  res.engine_shards = run.engine_shards();
  res.budget_steals = run.budget_steals();
  res.run_threads = run.num_pes() + run.num_io_threads();
  if (const trace::ContentionStats* cs = run.lock_stats()) {
    const auto t = cs->totals();
    res.lock_acquisitions = t.acquisitions;
    res.lock_contended = t.contended;
    res.lock_wait_s = t.wait_s;
    const double thread_s =
        wall * static_cast<double>(run.num_pes() + run.num_io_threads());
    res.lock_wait_fraction = thread_s > 0 ? t.wait_s / thread_s : 0;
  }
  HMR_CHECK(bodies.load() == res.tasks);
  return res;
}

/// Best tasks/sec over bc.sched_reps runs of one configuration.
RunResult run_config_best(const std::string& name, const BenchCfg& bc,
                          int engine_shards, int io_batch, bool legacy) {
  RunResult best;
  for (std::int64_t i = 0; i < bc.sched_reps; ++i) {
    RunResult r = run_config(name, bc, engine_shards, io_batch, legacy);
    if (i == 0 || r.tasks_per_sec > best.tasks_per_sec) best = r;
  }
  return best;
}

struct MigrateResultRow {
  double mono_s = 0;
  double chunked_s = 0;
  double mono_gbps = 0;
  double chunked_gbps = 0;
  std::uint64_t chunks = 0;
  std::uint64_t assisted_chunks = 0;
  std::uint64_t bytes = 0;
};

/// One large block copied fast<->slow: monolithic memcpy vs ChunkRing
/// with helper threads assisting, averaged over `reps` round trips.
MigrateResultRow run_migrate(std::uint64_t block_bytes, int helpers,
                             int reps) {
  MigrateResultRow row;
  row.bytes = block_bytes;
  mem::MemoryManager mm({{"fast", block_bytes + (1u << 20)},
                         {"slow", block_bytes + (1u << 20)}});
  const mem::BlockId b = mm.register_block(block_bytes, 1);

  // Warm both arenas (first-touch page faults would otherwise be
  // charged entirely to the monolithic phase, which runs first).
  (void)mm.migrate(b, 0);
  (void)mm.migrate(b, 1);

  const double t0 = now_s();
  for (int i = 0; i < reps; ++i) {
    (void)mm.migrate(b, 0);
    (void)mm.migrate(b, 1);
  }
  row.mono_s = (now_s() - t0) / (2.0 * reps);

  mm.set_chunked_copy(/*threshold=*/1u << 20, /*chunk=*/256u << 10);
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (int h = 0; h < helpers; ++h) {
    pool.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (mm.assist_copies() == 0) std::this_thread::yield();
      }
    });
  }
  const double t1 = now_s();
  for (int i = 0; i < reps; ++i) {
    (void)mm.migrate(b, 0);
    (void)mm.migrate(b, 1);
  }
  row.chunked_s = (now_s() - t1) / (2.0 * reps);
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  row.chunks = mm.chunk_ring().chunks_copied();
  row.assisted_chunks = mm.chunk_ring().chunks_assisted();
  const double gb = static_cast<double>(block_bytes) / 1e9;
  row.mono_gbps = row.mono_s > 0 ? gb / row.mono_s : 0;
  row.chunked_gbps = row.chunked_s > 0 ? gb / row.chunked_s : 0;
  return row;
}

/// Separate traced run of the sharded configuration (tracing perturbs
/// the timed comparisons above, so it never piggybacks on them):
/// exports the timeline as Chrome-trace/Perfetto JSON with causal task
/// flows, and the wall-clock metrics registry as Prometheus text.
void run_traced(const BenchCfg& bc, const std::string& perfetto_path,
                const std::string& prom_path) {
  rt::Runtime::Config cfg;
  cfg.strategy = ooc::Strategy::MultiIo;
  cfg.num_pes = static_cast<int>(bc.pes);
  cfg.mem_scale =
      static_cast<double>(bc.fast_kib << 10) /
      static_cast<double>(cfg.model.tier(cfg.model.fast).capacity);
  cfg.engine_shards = 0;
  cfg.io_batch = 16;
  cfg.lock_stats = true;
  cfg.trace = true;
  cfg.metrics = true;
  cfg.chunk_threshold = 0;
  rt::Runtime run(cfg);

  std::vector<std::vector<mem::BlockId>> blocks(
      static_cast<std::size_t>(bc.pes));
  for (auto& pool : blocks) {
    for (std::int64_t i = 0; i < bc.blocks_per_pe; ++i) {
      pool.push_back(run.alloc_block(bc.block_bytes));
    }
  }
  std::atomic<std::uint64_t> bodies{0};
  const std::int64_t rounds = std::min<std::int64_t>(bc.rounds, 4);
  for (std::int64_t r = 0; r < rounds; ++r) {
    for (std::int64_t pe = 0; pe < bc.pes; ++pe) {
      std::vector<rt::Runtime::PrefetchMsg> batch;
      const auto& pool = blocks[static_cast<std::size_t>(pe)];
      for (std::int64_t t = 0; t < bc.tasks_per_round; ++t) {
        const std::size_t a = static_cast<std::size_t>(r + t) % pool.size();
        const std::size_t b =
            static_cast<std::size_t>(r + t + 7) % pool.size();
        rt::Runtime::PrefetchMsg m;
        m.deps = {{pool[a], ooc::AccessMode::ReadWrite}};
        if (b != a) m.deps.push_back({pool[b], ooc::AccessMode::ReadOnly});
        m.body = [&bodies] {
          bodies.fetch_add(1, std::memory_order_relaxed);
        };
        batch.push_back(std::move(m));
      }
      run.send_prefetch_batch(static_cast<int>(pe), std::move(batch));
    }
    run.wait_idle();
  }
  if (!perfetto_path.empty()) {
    std::ofstream ofs(perfetto_path);
    telemetry::PerfettoOptions popt;
    popt.worker_lanes = cfg.num_pes;
    telemetry::write_perfetto(ofs, run.tracer().intervals(), popt);
    std::printf("wrote %s (open in ui.perfetto.dev; %llu ring drops)\n",
                perfetto_path.c_str(),
                static_cast<unsigned long long>(run.tracer().dropped()));
  }
  if (!prom_path.empty()) {
    std::ofstream ofs(prom_path);
    telemetry::MetricsRegistry::write_prometheus(
        ofs, run.metrics()->snapshot());
    std::printf("wrote %s\n", prom_path.c_str());
  }
}

void print_result(const RunResult& r) {
  std::printf(
      "%-16s shards=%-2d  %9.0f tasks/s  wall %6.3fs  fetches %llu  "
      "evicts %llu\n"
      "%-16s locks: %llu acquisitions, %llu contended, wait %.4fs "
      "(%.1f%% of thread-time)  steals %llu  ctx-switches %llu\n",
      r.name.c_str(), r.engine_shards, r.tasks_per_sec, r.wall_s,
      static_cast<unsigned long long>(r.fetches),
      static_cast<unsigned long long>(r.evicts), "",
      static_cast<unsigned long long>(r.lock_acquisitions),
      static_cast<unsigned long long>(r.lock_contended), r.lock_wait_s,
      100.0 * r.lock_wait_fraction,
      static_cast<unsigned long long>(r.budget_steals),
      static_cast<unsigned long long>(r.ctx_switches));
}

void write_json(const std::string& path, const BenchCfg& bc,
                const std::vector<RunResult>& runs,
                const MigrateResultRow& mig) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"rt_contention\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"run_threads\": %d,\n",
               runs.empty() ? 0 : runs.back().run_threads);
  std::fprintf(
      f,
      "  \"workload\": {\"pes\": %lld, \"rounds\": %lld, "
      "\"tasks_per_round\": %lld, \"blocks_per_pe\": %lld, "
      "\"block_bytes\": %llu},\n",
      static_cast<long long>(bc.pes), static_cast<long long>(bc.rounds),
      static_cast<long long>(bc.tasks_per_round),
      static_cast<long long>(bc.blocks_per_pe),
      static_cast<unsigned long long>(bc.block_bytes));
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"engine_shards\": %d, \"wall_s\": %.6f, "
        "\"tasks\": %llu, \"tasks_per_sec\": %.1f, "
        "\"lock_acquisitions\": %llu, \"lock_contended\": %llu, "
        "\"lock_wait_s\": %.6f, \"lock_wait_fraction\": %.6f, "
        "\"budget_steals\": %llu, \"ctx_switches\": %llu}%s\n",
        r.name.c_str(), r.engine_shards, r.wall_s,
        static_cast<unsigned long long>(r.tasks), r.tasks_per_sec,
        static_cast<unsigned long long>(r.lock_acquisitions),
        static_cast<unsigned long long>(r.lock_contended), r.lock_wait_s,
        r.lock_wait_fraction,
        static_cast<unsigned long long>(r.budget_steals),
        static_cast<unsigned long long>(r.ctx_switches),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  const double speedup =
      runs.size() >= 2 && runs.front().tasks_per_sec > 0
          ? runs.back().tasks_per_sec / runs.front().tasks_per_sec
          : 0;
  std::fprintf(f, "  \"speedup_sharded_vs_global\": %.3f,\n", speedup);
  std::fprintf(
      f,
      "  \"migrate\": {\"bytes\": %llu, \"mono_s\": %.6f, "
      "\"chunked_s\": %.6f, \"mono_gbps\": %.3f, \"chunked_gbps\": %.3f, "
      "\"chunks_copied\": %llu, \"chunks_assisted\": %llu}\n}\n",
      static_cast<unsigned long long>(mig.bytes), mig.mono_s, mig.chunked_s,
      mig.mono_gbps, mig.chunked_gbps,
      static_cast<unsigned long long>(mig.chunks),
      static_cast<unsigned long long>(mig.assisted_chunks));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

} // namespace

int main(int argc, char** argv) {
  BenchCfg bc;
  bool json = false;
  std::int64_t helpers = 3;
  std::int64_t migrate_mib = 64;
  std::int64_t reps = 4;
  std::string perfetto;
  std::string prom;
  hmr::ArgParser ap("rt_contention",
                    "threaded-runtime scheduler contention bench: "
                    "global-lock vs sharded engine, monolithic vs "
                    "chunked migration");
  ap.add_flag("pes", "worker threads (0 = one per hardware thread)",
              &bc.pes);
  ap.add_flag("rounds", "wait_idle-separated rounds", &bc.rounds);
  ap.add_flag("tasks-per-round", "tasks per PE per round",
              &bc.tasks_per_round);
  ap.add_flag("blocks-per-pe", "private pool size", &bc.blocks_per_pe);
  ap.add_flag("block-bytes", "bytes per block", &bc.block_bytes);
  ap.add_flag("fast-kib", "fast-tier capacity (KiB)", &bc.fast_kib);
  ap.add_flag("sched-reps", "best-of-N runs per configuration",
              &bc.sched_reps);
  ap.add_flag("evict-by-worker", "run evictions inline on the worker",
              &bc.evict_by_worker);
  ap.add_flag("pin", "pin worker/IO threads to cores (best effort)",
              &bc.pin);
  ap.add_flag("helpers", "assist threads for the migrate phase", &helpers);
  ap.add_flag("migrate-mib", "large-block size (MiB)", &migrate_mib);
  ap.add_flag("reps", "round trips in the migrate phase", &reps);
  ap.add_flag("json", "write BENCH_rt_contention.json", &json);
  ap.add_flag("perfetto",
              "run the sharded config once more with tracing on and "
              "write its timeline as Chrome-trace JSON here",
              &perfetto);
  ap.add_flag("prom",
              "with the traced run, also write the metrics registry as "
              "Prometheus text here",
              &prom);
  if (!ap.parse(argc, argv)) return 1;
  if (bc.pes <= 0) {
    bc.pes = std::max(2u, std::thread::hardware_concurrency());
    std::printf("auto-detected %lld PEs (%u hardware threads)\n",
                static_cast<long long>(bc.pes),
                std::thread::hardware_concurrency());
  }

  std::printf("== rt_contention: %lld PEs, %lld rounds x %lld tasks/PE, "
              "%llu KiB blocks ==\n\n",
              static_cast<long long>(bc.pes),
              static_cast<long long>(bc.rounds),
              static_cast<long long>(bc.tasks_per_round),
              static_cast<unsigned long long>(bc.block_bytes >> 10));

  std::vector<RunResult> runs;
  // (a) the pre-sharding hot path: one engine, one mutex, one event
  // per lock acquisition, per-message sends, and the legacy idle
  // protocol (global idle lock + notify_all on every retirement).
  runs.push_back(run_config_best("global", bc, /*engine_shards=*/1,
                                 /*io_batch=*/1, /*legacy=*/true));
  print_result(runs.back());
  // (b) same global engine, but batched sends + step_batch delivery
  // and zero-transition idle wakeups.
  runs.push_back(run_config_best("global+batch", bc,
                                 /*engine_shards=*/1,
                                 /*io_batch=*/16, /*legacy=*/false));
  print_result(runs.back());
  // (c) the sharded engine (per-PE shards + striped blocks + budget).
  runs.push_back(run_config_best("sharded", bc, /*engine_shards=*/0,
                                 /*io_batch=*/16, /*legacy=*/false));
  print_result(runs.back());

  const double speedup = runs.front().tasks_per_sec > 0
                             ? runs.back().tasks_per_sec /
                                   runs.front().tasks_per_sec
                             : 0;
  std::printf("\nsharded vs global-lock: %.2fx tasks/sec\n\n", speedup);

  const MigrateResultRow mig =
      run_migrate(static_cast<std::uint64_t>(migrate_mib) << 20,
                  static_cast<int>(helpers), static_cast<int>(reps));
  std::printf(
      "migrate %lld MiB: mono %.2f GB/s, chunked %.2f GB/s "
      "(%llu chunks, %llu assisted)\n",
      static_cast<long long>(migrate_mib), mig.mono_gbps, mig.chunked_gbps,
      static_cast<unsigned long long>(mig.chunks),
      static_cast<unsigned long long>(mig.assisted_chunks));

  if (json) write_json("BENCH_rt_contention.json", bc, runs, mig);
  if (!perfetto.empty() || !prom.empty()) run_traced(bc, perfetto, prom);
  return 0;
}
