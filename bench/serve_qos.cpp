// Multi-tenant serving under contention (docs/SERVING.md).
//
// One latency-SLO stencil tenant shares a node with three best-effort
// streaming tenants at 4x fast-tier oversubscription, all fetches
// funneled through a single IO thread so dispatch order is the whole
// game.  Three runs:
//
//  * solo:     the SLO tenant alone — its achievable p99 fetch latency
//              with nobody else on the node;
//  * admission: all four tenants with QoS admission + priority
//              dispatch ON — best-effort prefetches are rate-limited
//              and displaced by SLO fetches;
//  * free-for-all: the same four tenants with admission and priority
//              dispatch OFF — every stream hits the engine FIFO.
//
// `--check` asserts the serving bound: with admission ON the SLO
// tenant's p99 fetch latency stays within 1.5x of its solo baseline
// while every best-effort tenant still completes work; with admission
// OFF the same bound is demonstrably violated.  `--json` writes
// BENCH_serve_qos.json for the CI trend gate.

#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/tenant_engine.hpp"

namespace {

using namespace hmr;

constexpr std::uint64_t MiB = 1ull << 20;

// Four job streams over one block namespace: tenant 0 owns blocks
// [0, kSloBlocks); best-effort tenant t owns the next kBeBlocks each.
constexpr int kSloBlocks = 4;
constexpr std::uint64_t kSloBlockBytes = 16 * MiB;
constexpr int kBeTenants = 3;
constexpr int kBeBlocks = 40;
constexpr std::uint64_t kBeBlockBytes = 8 * MiB;
constexpr int kIterations = 6;
constexpr int kNumPes = 8;

class ServeWorkload : public sim::Workload {
public:
  explicit ServeWorkload(bool slo_only) : slo_only_(slo_only) {
    ooc::BlockId id = 0;
    for (int b = 0; b < kSloBlocks; ++b) {
      blocks_.push_back({id++, kSloBlockBytes});
    }
    if (!slo_only_) {
      for (int t = 0; t < kBeTenants; ++t) {
        for (int b = 0; b < kBeBlocks; ++b) {
          blocks_.push_back({id++, kBeBlockBytes});
        }
      }
    }
  }

  std::string name() const override { return "serve_qos"; }
  int iterations() const override { return kIterations; }
  const std::vector<sim::BlockSpec>& blocks() const override {
    return blocks_;
  }

  std::vector<ooc::TaskDesc> iteration_tasks(int iter) const override {
    std::vector<ooc::TaskDesc> tasks;
    ooc::TaskId next = 1 + static_cast<ooc::TaskId>(iter) * 1000;
    // Best-effort tenants first: one streaming pass over all their
    // blocks per iteration on PEs [4, 8) — a burst of single-dependence
    // prefetch jobs already sitting on the (single) IO lane when the
    // latency-critical work shows up.  That head start is exactly what
    // admission + priority dispatch must neutralize.
    if (!slo_only_) {
      for (int t = 0; t < kBeTenants; ++t) {
        const int base = kSloBlocks + t * kBeBlocks;
        for (int c = 0; c < kBeBlocks; ++c) {
          ooc::TaskDesc d;
          d.id = next++;
          d.pe = 4 + (c % 4);
          d.tenant = static_cast<std::uint32_t>(1 + t);
          d.deps = {{static_cast<ooc::BlockId>(base + c),
                     ooc::AccessMode::ReadWrite}};
          tasks.push_back(std::move(d));
        }
      }
    }
    // SLO tenant: a stencil sweep over its blocks on PEs [0, 4) — each
    // task reads two neighbouring blocks, revisited every iteration.
    for (int c = 0; c < kSloBlocks; ++c) {
      ooc::TaskDesc d;
      d.id = next++;
      d.pe = c % 4;
      d.tenant = 0;
      d.work_factor = 4.0;
      d.deps = {{static_cast<ooc::BlockId>(c), ooc::AccessMode::ReadWrite},
                {static_cast<ooc::BlockId>((c + 1) % kSloBlocks),
                 ooc::AccessMode::ReadOnly}};
      tasks.push_back(std::move(d));
    }
    return tasks;
  }

private:
  bool slo_only_;
  std::vector<sim::BlockSpec> blocks_;
};

serve::ServeConfig serve_config(bool slo_only, bool admission) {
  serve::ServeConfig sc;
  serve::TenantDesc slo;
  slo.id = 0;
  slo.name = "slo";
  slo.qos = serve::QosClass::LatencySLO;
  // Attainable under admission (~12 ms window p99), demonstrably
  // burned in the free-for-all (~28 ms) — so the slo_burn gauge gates
  // cleanly on both sides of 1.0.
  slo.slo_p99_fetch_s = 0.02;
  slo.tier_reserve = {0.5};
  sc.tenants.push_back(std::move(slo));
  if (!slo_only) {
    for (int t = 0; t < kBeTenants; ++t) {
      serve::TenantDesc be;
      be.id = static_cast<serve::TenantId>(1 + t);
      be.name = "be-" + std::to_string(t);
      be.qos = serve::QosClass::BestEffort;
      be.rate_tasks_per_s = 50;
      be.burst_tasks = 4;
      be.tier_reserve = {0.125};
      sc.tenants.push_back(std::move(be));
    }
  }
  sc.admission.enabled = admission;
  sc.admission.priority_dispatch = admission;
  return sc;
}

struct Outcome {
  std::string name;
  sim::SimResult result;
  std::vector<serve::TenantSnapshot> tenants;
};

Outcome run_case(const std::string& name, bool slo_only, bool admission) {
  sim::SimConfig cfg;
  cfg.model = hw::knl_flat_all_to_all();
  cfg.model.num_pes = kNumPes;
  cfg.strategy = ooc::Strategy::MultiIo;
  // One IO thread: dispatch order on its queue decides who waits.
  cfg.io_threads = 1;
  // 4x oversubscription of the prefetch budget.
  const ServeWorkload probe(/*slo_only=*/false);
  cfg.fast_capacity = probe.total_bytes() / 4;
  cfg.serve = serve_config(slo_only, admission);
  sim::SimExecutor ex(cfg);
  const ServeWorkload w(slo_only);
  Outcome o;
  o.name = name;
  o.result = ex.run(w);
  o.tenants = ex.tenancy()->snapshots();
  return o;
}

void write_json(const std::vector<Outcome>& outcomes) {
  FILE* f = std::fopen("BENCH_serve_qos.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_serve_qos.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_qos\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    std::fprintf(f, "    {\"config\": \"%s\", \"total_s\": %.6f, "
                 "\"tenants\": [\n", o.name.c_str(), o.result.total_time);
    for (std::size_t j = 0; j < o.tenants.size(); ++j) {
      const auto& s = o.tenants[j];
      std::fprintf(
          f,
          "      {\"tenant\": \"%s\", \"qos\": \"%s\", "
          "\"submitted\": %llu, \"admitted\": %llu, \"deferred\": %llu, "
          "\"rejected\": %llu, \"completed\": %llu, \"fetches\": %llu, "
          "\"fetch_bytes\": %llu, \"borrows\": %llu, "
          "\"displaced\": %llu, \"displaced_by\": %llu, "
          "\"fetch_p50_s\": %.6f, \"fetch_p99_s\": %.6f, "
          "\"window_p99_s\": %.6f, \"slo_burn\": %.4f}%s\n",
          s.desc.name.c_str(), serve::qos_class_name(s.desc.qos),
          static_cast<unsigned long long>(s.submitted),
          static_cast<unsigned long long>(s.admitted),
          static_cast<unsigned long long>(s.deferred),
          static_cast<unsigned long long>(s.rejected),
          static_cast<unsigned long long>(s.completed),
          static_cast<unsigned long long>(s.fetches),
          static_cast<unsigned long long>(s.fetch_bytes),
          static_cast<unsigned long long>(s.borrows),
          static_cast<unsigned long long>(s.displaced),
          static_cast<unsigned long long>(s.displaced_by),
          s.fetch_p50_s, s.fetch_p99_s, s.window_p99_s, s.slo_burn,
          j + 1 < o.tenants.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cout << "\nwrote BENCH_serve_qos.json\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  bool check = false;
  bool json = false;
  ArgParser args("serve_qos",
                 "multi-tenant serving: SLO isolation under admission "
                 "control vs a free-for-all");
  args.add_flag("csv", "write results to this CSV file", &csv_path);
  args.add_flag("json", "write BENCH_serve_qos.json", &json);
  args.add_flag("check",
                "exit nonzero unless admission keeps the SLO tenant's "
                "p99 fetch latency within 1.5x of its solo baseline "
                "(and the free-for-all violates that bound)",
                &check);
  if (!args.parse(argc, argv)) return 1;

  bench::banner("Multi-tenant serving: QoS isolation",
                "extension beyond the paper (one bandwidth-sensitive app "
                "-> many concurrent job streams)");

  std::vector<Outcome> outcomes;
  outcomes.push_back(run_case("solo", /*slo_only=*/true, /*admission=*/true));
  outcomes.push_back(
      run_case("admission", /*slo_only=*/false, /*admission=*/true));
  outcomes.push_back(
      run_case("free-for-all", /*slo_only=*/false, /*admission=*/false));

  TextTable t({"config", "tenant", "qos", "completed", "deferred",
               "displaced", "fetch p50 (ms)", "fetch p99 (ms)",
               "slo burn"});
  bench::CsvSink csv(csv_path,
                     {"config", "tenant", "qos", "completed", "deferred",
                      "displaced", "fetch_p50_ms", "fetch_p99_ms",
                      "slo_burn"});
  for (const auto& o : outcomes) {
    for (const auto& s : o.tenants) {
      t.add_row({o.name, s.desc.name, serve::qos_class_name(s.desc.qos),
                 strfmt("%llu", static_cast<unsigned long long>(s.completed)),
                 strfmt("%llu", static_cast<unsigned long long>(s.deferred)),
                 strfmt("%llu", static_cast<unsigned long long>(s.displaced)),
                 strfmt("%.2f", s.fetch_p50_s * 1e3),
                 strfmt("%.2f", s.fetch_p99_s * 1e3),
                 s.desc.slo_p99_fetch_s > 0 ? strfmt("%.2f", s.slo_burn)
                                            : "-"});
      if (csv) {
        csv->field(std::string_view(o.name))
            .field(std::string_view(s.desc.name))
            .field(std::string_view(serve::qos_class_name(s.desc.qos)))
            .field(static_cast<double>(s.completed))
            .field(static_cast<double>(s.deferred))
            .field(static_cast<double>(s.displaced))
            .field(s.fetch_p50_s * 1e3)
            .field(s.fetch_p99_s * 1e3)
            .field(s.slo_burn);
        csv->end_row();
      }
    }
  }
  t.print(std::cout);

  if (json) write_json(outcomes);

  if (check) {
    int rc = 0;
    auto expect = [&](bool ok, const std::string& what) {
      if (!ok) {
        std::cerr << "CHECK FAILED: " << what << "\n";
        rc = 2;
      }
    };
    const auto& solo = outcomes[0].tenants[0];
    const auto& on = outcomes[1];
    const auto& off = outcomes[2];
    const double bound = 1.5 * solo.fetch_p99_s;
    expect(solo.fetch_samples > 0, "solo run recorded no fetches");
    expect(on.tenants[0].fetch_p99_s <= bound,
           strfmt("admission ON: SLO p99 %.2fms above 1.5x solo %.2fms",
                  on.tenants[0].fetch_p99_s * 1e3, bound * 1e3));
    expect(off.tenants[0].fetch_p99_s > bound,
           strfmt("admission OFF: SLO p99 %.2fms does not violate the "
                  "1.5x bound %.2fms — the ablation shows nothing",
                  off.tenants[0].fetch_p99_s * 1e3, bound * 1e3));
    for (std::size_t j = 1; j < on.tenants.size(); ++j) {
      expect(on.tenants[j].completed > 0,
             on.tenants[j].desc.name + " starved under admission");
    }
    expect(on.tenants[0].displaced > 0,
           "priority dispatch never displaced a best-effort prefetch");
    // SLO burn-rate gates: the rolling-window attained p99 over the
    // tenant's declared target.  Admission must keep the SLO tenant
    // out of burn (<= 1.0); the free-for-all must demonstrably burn
    // (> 1.0), or the gauge could never alert on anything.
    expect(on.tenants[0].slo_burn <= 1.0,
           strfmt("admission ON: SLO tenant burning at %.2f (window p99 "
                  "%.2fms over target %.2fms)",
                  on.tenants[0].slo_burn, on.tenants[0].window_p99_s * 1e3,
                  on.tenants[0].desc.slo_p99_fetch_s * 1e3));
    expect(off.tenants[0].slo_burn > 1.0,
           strfmt("admission OFF: SLO tenant burn %.2f not above 1.0 — "
                  "the burn gauge shows no contention signal",
                  off.tenants[0].slo_burn));
    for (const auto& s : on.tenants) {
      expect(s.completed == s.submitted,
             s.desc.name + " finished short of its submissions");
    }
    if (rc == 0) std::cout << "\nserve_qos checks passed\n";
    return rc;
  }
  return 0;
}
