// Conjugate-gradient demo: a full Krylov solver whose entire state
// (x, r, p, Ap and ghost rows) streams through the fast tier as
// annotated IoHandles — four waves of [prefetch] entry methods per
// iteration plus node-level reductions for the scalar recurrences.
//
//   ./build/examples/cg_solver_demo [--n 64] [--strips 8] [--pes 4]

#include <cmath>
#include <cstdio>
#include <iostream>

#include "apps/cg_solver.hpp"
#include "rt/runtime.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::int64_t n = 64, strips = 8, pes = 4;
  ArgParser args("cg_solver_demo", "CG Poisson solver on the runtime");
  args.add_flag("n", "grid points per side", &n);
  args.add_flag("strips", "chare strips (must divide n)", &strips);
  args.add_flag("pes", "worker threads", &pes);
  if (!args.parse(argc, argv)) return 1;

  apps::CgParams p;
  p.n = static_cast<int>(n);
  p.strips = static_cast<int>(strips);
  p.max_iterations = 500;
  p.tolerance = 1e-12;

  std::printf("CG on a %lldx%lld Poisson grid, %lld strips, %lld PEs\n\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(strips), static_cast<long long>(pes));

  TextTable t({"strategy", "iterations", "||r||^2", "tasks", "fetch"});
  for (auto s : {ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                 ooc::Strategy::MultiIo}) {
    rt::Runtime::Config cfg;
    cfg.strategy = s;
    cfg.num_pes = static_cast<int>(pes);
    cfg.mem_scale = 1.0 / 8192; // 2 MiB fast tier: vectors stream
    rt::Runtime rt(cfg);
    apps::CgSolver solver(rt, p);
    const auto res = solver.solve();

    // Independent residual check.
    std::vector<double> ax;
    apps::CgSolver::apply_laplacian(solver.solution(), ax, p.n);
    const auto b = solver.rhs();
    double err = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      err = std::max(err, std::fabs(ax[i] - b[i]));
    }
    if (!res.converged || err > 1e-5) {
      std::fprintf(stderr, "CG failed under %s (err %.2e)\n",
                   ooc::strategy_name(s), err);
      return 1;
    }
    const auto st = rt.policy_stats();
    t.add_row({ooc::strategy_name(s), strfmt("%d", res.iterations),
               strfmt("%.2e", res.residual_norm2),
               strfmt("%llu", static_cast<unsigned long long>(st.tasks_run)),
               fmt_bytes(st.fetch_bytes)});
  }
  t.print(std::cout);
  std::printf("\nall strategies converge to the same solution; only the "
              "data-movement traffic differs.\n");
  return 0;
}
