// Live introspection demo: a runtime with the status server and the
// stall watchdog on, kept busy long enough to curl.
//
//   ./build/examples/live_status_demo --port 18080 --seconds 20 &
//   curl -s localhost:18080/healthz
//   curl -s localhost:18080/status | python3 -m json.tool
//   curl -s localhost:18080/metrics | head
//   curl -s 'localhost:18080/blocks?id=0'
//
// The demo cycles [prefetch] tasks over more blocks than the fast
// tier holds, so /status shows live queue depths and tier occupancy
// and /metrics shows fetch/evict traffic accumulating.  Two tenants
// (an SLO "interactive" and a rate-limited "batch") are registered so
// /tenants serves real admission/quota counters.  --port 0 picks any
// free port (printed on stdout); CI's smoke test drives this binary.
// A line "serving on 127.0.0.1:<port>" is printed once the server is
// up.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"
#include "util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace hmr;

  std::int64_t port = 18080;
  std::int64_t seconds = 20;
  bool adaptive = false;
  ArgParser ap("live_status_demo",
               "Run a busy runtime with the status server for curling.");
  ap.add_flag("port", "status server port (0 = any free port)", &port);
  ap.add_flag("seconds", "how long to keep working", &seconds);
  ap.add_flag("adaptive",
              "run the adaptive stack instead of the two tenants "
              "(tenancy and adaptive are mutually exclusive) — /decisions "
              "and the hot-block panel serve live data",
              &adaptive);
  if (!ap.parse(argc, argv)) return 1;

  rt::Runtime::Config cfg;
  cfg.mem_scale = 1.0 / 1024; // 16 MiB fast / 96 MiB slow
  cfg.num_pes = 2;
  cfg.serve_port = static_cast<int>(port); // implies metrics
  cfg.watchdog = true;
  cfg.watchdog_cfg.stall_seconds = 5.0; // generous: demo never stalls

  // Two tenants so /tenants has real counters to serve: tenant 0 is
  // the latency-sensitive default, tenant 1 a rate-limited batch.
  if (adaptive) {
    cfg.adaptive = true;
  } else {
    serve::TenantDesc slo;
    slo.id = 0;
    slo.name = "interactive";
    slo.qos = serve::QosClass::LatencySLO;
    slo.slo_p99_fetch_s = 0.050;
    slo.tier_reserve = {0.5};
    serve::TenantDesc batch;
    batch.id = 1;
    batch.name = "batch";
    batch.qos = serve::QosClass::Batch;
    batch.rate_tasks_per_s = 200;
    batch.burst_tasks = 8;
    batch.tier_reserve = {0.25};
    cfg.serve.tenants = {slo, batch};
    cfg.serve.admission.enabled = true;
    cfg.serve.admission.priority_dispatch = true;
  }
  rt::Runtime rt(cfg);

  if (rt.serve_port() == 0) {
    std::fprintf(stderr, "status server failed to start\n");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", rt.serve_port());
  std::fflush(stdout);

  // A working set larger than the fast tier, so every round migrates.
  std::vector<rt::IoHandle<double>> blocks;
  for (int i = 0; i < 24; ++i) blocks.emplace_back(rt, 128 * 1024); // 1 MiB

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  std::uint64_t rounds = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      auto& blk = blocks[i];
      // Alternate submissions between the two tenants so /tenants
      // shows both making progress (and the batch bucket refilling).
      rt.send_prefetch(
          static_cast<int>(i) % cfg.num_pes,
          {blk.dep(ooc::AccessMode::ReadWrite)},
          [&blk] {
            for (std::uint64_t j = 0; j < blk.size(); j += 512) {
              blk[j] += 1.0;
            }
          },
          1.0, static_cast<std::uint32_t>(adaptive ? 0 : i % 2));
    }
    rt.wait_idle();
    ++rounds;
  }

  const auto st = rt.policy_stats();
  std::printf("done: %llu rounds, %llu tasks, %llu fetches\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(st.tasks_run),
              static_cast<unsigned long long>(st.fetches));
  return 0;
}
