// Blocked matrix multiplication demo (paper §V-B): C = A * B with
// tiles as migratable blocks, read-only tiles shared across chares.
// Shows the reuse effect in the policy counters (claims vs actual
// migrations) and validates against a naive serial dgemm.
//
//   ./build/examples/matmul_demo [--n 128] [--grid 4] [--pes 4]

#include <cmath>
#include <cstdio>
#include <iostream>

#include "apps/block_matmul.hpp"
#include "apps/reference.hpp"
#include "rt/runtime.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::int64_t n = 128, grid = 4, pes = 4;
  ArgParser args("matmul_demo", "blocked matmul on the threaded runtime");
  args.add_flag("n", "matrix dimension", &n);
  args.add_flag("grid", "tiles per side", &grid);
  args.add_flag("pes", "worker threads", &pes);
  if (!args.parse(argc, argv)) return 1;

  apps::MatmulParams p;
  p.n = static_cast<int>(n);
  p.grid = static_cast<int>(grid);

  std::printf("MatMul %lldx%lld, %lldx%lld tiles, %lld PEs\n\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(grid), static_cast<long long>(grid),
              static_cast<long long>(pes));

  std::vector<double> ref;
  TextTable t({"strategy", "claims", "fetches", "dedup hits", "max |err|"});
  for (auto s : {ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                 ooc::Strategy::MultiIo}) {
    rt::Runtime::Config cfg;
    cfg.strategy = s;
    cfg.num_pes = static_cast<int>(pes);
    cfg.mem_scale = 1.0 / 8192; // 2 MiB fast tier: tiles stream through
    rt::Runtime rt(cfg);
    apps::BlockMatmul app(rt, p);
    app.run();

    if (ref.empty()) {
      apps::serial_matmul(app.input_a(), app.input_b(), ref,
                          static_cast<int>(n));
    }
    const auto c = app.result();
    double max_err = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      max_err = std::max(max_err, std::fabs(c[i] - ref[i]));
    }
    const auto st = rt.policy_stats();
    const auto claims = st.tasks_run * 3; // 3 deps per gemm task
    t.add_row({ooc::strategy_name(s),
               strfmt("%llu", static_cast<unsigned long long>(claims)),
               strfmt("%llu", static_cast<unsigned long long>(st.fetches)),
               strfmt("%llu",
                      static_cast<unsigned long long>(st.fetch_dedup_hits)),
               strfmt("%.2e", max_err)});
    if (max_err > 1e-9) {
      std::fprintf(stderr, "numerical mismatch under %s\n",
                   ooc::strategy_name(s));
      return 1;
    }
  }
  t.print(std::cout);
  std::printf("\nread-only tile sharing keeps fetches far below claims — "
              "the effect that makes\neven a single IO thread competitive "
              "for matmul (paper Fig 9).\n");
  return 0;
}
