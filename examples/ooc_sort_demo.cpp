// Out-of-core sort demo: external K-way merge sort where each merge
// step is a [prefetch] task that computes its successor's dependences
// from the data (charm-style self-chaining).  Only K input blocks and
// one output block are resident per merge chain, no matter how large
// the dataset — the textbook out-of-core pattern on top of the
// paper's prefetch/evict runtime.
//
//   ./build/examples/ooc_sort_demo [--blocks 32] [--elems 16384]
//                                  [--fanin 4] [--pes 4]

#include <cstdio>
#include <iostream>

#include "apps/ooc_sort.hpp"
#include "rt/runtime.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::int64_t blocks = 32, elems = 16384, fanin = 4, pes = 4;
  ArgParser args("ooc_sort_demo", "out-of-core external merge sort");
  args.add_flag("blocks", "number of input blocks", &blocks);
  args.add_flag("elems", "doubles per block", &elems);
  args.add_flag("fanin", "merge fan-in K", &fanin);
  args.add_flag("pes", "worker threads", &pes);
  if (!args.parse(argc, argv)) return 1;

  apps::SortParams p;
  p.num_blocks = static_cast<int>(blocks);
  p.elems_per_block = static_cast<std::uint64_t>(elems);
  p.fanin = static_cast<int>(fanin);

  const auto total =
      static_cast<std::uint64_t>(blocks) * p.elems_per_block * 8;
  std::printf("sorting %s in %lld blocks, %lld-way merge, %lld PEs\n\n",
              fmt_bytes(total).c_str(), static_cast<long long>(blocks),
              static_cast<long long>(fanin), static_cast<long long>(pes));

  TextTable t({"configuration", "passes", "fetch traffic", "sorted"});
  struct Row {
    ooc::Strategy s;
    bool eager;
    const char* label;
  };
  for (const Row row : {Row{ooc::Strategy::Naive, true, "Naive"},
                        Row{ooc::Strategy::MultiIo, true,
                            "MultipleIO, eager evict"},
                        Row{ooc::Strategy::MultiIo, false,
                            "MultipleIO, lazy LRU"}}) {
    rt::Runtime::Config cfg;
    cfg.strategy = row.s;
    cfg.eager_evict = row.eager;
    cfg.num_pes = static_cast<int>(pes);
    cfg.mem_scale = 1.0 / 8192; // 2 MiB fast tier
    rt::Runtime rt(cfg);
    apps::OocSort sorter(rt, p);
    sorter.run();
    const bool ok = sorter.verify();
    const auto st = rt.policy_stats();
    t.add_row({row.label, strfmt("%d", sorter.passes_executed()),
               fmt_bytes(st.fetch_bytes), ok ? "yes" : "NO"});
    if (!ok) {
      std::fprintf(stderr, "sort verification failed (%s)\n", row.label);
      return 1;
    }
  }
  t.print(std::cout);
  std::printf("\nthe merge window (fanin+1 blocks) is the only resident "
              "state per chain —\nthe dataset can exceed the fast tier "
              "arbitrarily.  Eager eviction re-fetches\nthe window after "
              "every chained step; the lazy-LRU extension keeps it warm "
              "and\nhalves the traffic here.\n");
  return 0;
}
