// Projections demo: renders the paper's Figs 5-6 style timeline for a
// small out-of-core stencil under a chosen strategy, as ASCII art and
// (optionally) CSV for external plotting.
//
//   ./build/examples/projections_demo [--strategy multi|single|sync|naive]
//                                     [--csv timeline.csv]

#include <fstream>
#include <iostream>

#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::string strategy = "multi";
  std::string csv_path;
  ArgParser args("projections_demo", "ASCII projections timeline");
  args.add_flag("strategy", "multi | single | sync | naive", &strategy);
  args.add_flag("csv", "also dump the interval log to this CSV", &csv_path);
  if (!args.parse(argc, argv)) return 1;

  ooc::Strategy s;
  if (strategy == "multi") {
    s = ooc::Strategy::MultiIo;
  } else if (strategy == "single") {
    s = ooc::Strategy::SingleIo;
  } else if (strategy == "sync") {
    s = ooc::Strategy::SyncNoIo;
  } else if (strategy == "naive") {
    s = ooc::Strategy::Naive;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return 1;
  }

  // A small node (8 PEs) so the timeline fits a terminal.
  auto model = hw::knl_flat_all_to_all();
  model.num_pes = 8;
  sim::SimConfig cfg;
  cfg.model = model;
  cfg.strategy = s;
  cfg.fast_capacity = 2 * GiB;
  cfg.trace = true;

  sim::StencilWorkload w(sim::StencilWorkload::params_for_reduced(
      4 * GiB, 512 * MiB, model.num_pes, /*iterations=*/3));

  sim::SimExecutor ex(cfg);
  const auto r = ex.run(w);

  std::cout << "strategy " << ooc::strategy_name(s) << ": total "
            << fmt_seconds(r.total_time) << ", "
            << r.tasks_completed << " tasks, worker overhead "
            << strfmt("%.1f%%",
                      100 * r.worker_overhead_fraction(model.num_pes))
            << "\n\nlanes 0-" << model.num_pes - 1 << " are worker PEs; "
            << "lanes " << model.num_pes << "+ are IO threads\n\n";
  ex.tracer().ascii_timeline(std::cout, 100, 0.0, r.total_time);

  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    ex.tracer().write_csv(f);
    std::cout << "\ninterval log written to " << csv_path << "\n";
  }
  return 0;
}
