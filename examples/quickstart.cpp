// Quickstart: the smallest complete hmr program.
//
// Creates a two-tier runtime (a scaled-down KNL: MCDRAM-like fast tier
// + DDR4-like slow tier), declares two migratable data blocks through
// IoHandle, and runs a [prefetch]-annotated task whose dependences the
// runtime stages into the fast tier before execution — the hmr
// equivalent of the paper's
//
//   entry [prefetch] void compute_kernel() [readwrite: A, writeonly: B]
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"
#include "util/units.hpp"

int main() {
  using namespace hmr;

  rt::Runtime::Config cfg;
  cfg.model = hw::knl_flat_all_to_all(); // tier shapes and roles
  cfg.mem_scale = 1.0 / 1024;            // 16 MiB fast / 96 MiB slow
  cfg.strategy = ooc::Strategy::MultiIo; // async prefetch, 1 IO thread/PE
  cfg.num_pes = 2;
  rt::Runtime rt(cfg);

  // Two migratable blocks.  Movement strategies allocate them on the
  // slow tier; the runtime stages them into the fast tier on demand.
  rt::IoHandle<double> a(rt, 64 * 1024); // 512 KiB
  rt::IoHandle<double> b(rt, 64 * 1024);
  for (std::uint64_t i = 0; i < a.size(); ++i) a[i] = double(i);

  std::printf("block A starts on tier %u (%s)\n",
              rt.memory().block_tier(a.id()),
              cfg.model.tier(rt.memory().block_tier(a.id())).name.c_str());

  // The prefetch entry method: deps declared like the .ci annotation.
  rt.send_prefetch(
      /*pe=*/0,
      {a.dep(ooc::AccessMode::ReadOnly), b.dep(ooc::AccessMode::WriteOnly)},
      [&] {
        // Both blocks are now resident in the fast tier.
        std::printf("task runs with A on tier %u, B on tier %u\n",
                    rt.memory().block_tier(a.id()),
                    rt.memory().block_tier(b.id()));
        for (std::uint64_t i = 0; i < a.size(); ++i) b[i] = 2.0 * a[i];
      });
  rt.wait_idle();

  std::printf("after completion A is back on tier %u (evicted)\n",
              rt.memory().block_tier(a.id()));
  std::printf("B[42] = %.1f (expected 84.0)\n", b[42]);

  const auto st = rt.policy_stats();
  std::printf("policy: %llu tasks, %llu fetches (%s), %llu evicts (%s)\n",
              static_cast<unsigned long long>(st.tasks_run),
              static_cast<unsigned long long>(st.fetches),
              fmt_bytes(st.fetch_bytes).c_str(),
              static_cast<unsigned long long>(st.evicts),
              fmt_bytes(st.evict_bytes).c_str());
  return 0;
}
