// Stencil3D demo: the paper's first benchmark as a real application on
// the threaded runtime, with real data migrating between the two tier
// arenas of this host.  Runs the same grid under several scheduling
// strategies, validates the result against a serial reference, and
// prints the policy traffic each strategy generated.
//
//   ./build/examples/stencil3d_demo [--n 48] [--chares-per-dim 2]
//                                   [--iters 4] [--pes 4]

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/reference.hpp"
#include "apps/stencil3d.hpp"
#include "rt/runtime.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmr;
  std::int64_t n = 48, cdim = 2, iters = 4, pes = 4;
  ArgParser args("stencil3d_demo", "Stencil3D on the threaded runtime");
  args.add_flag("n", "grid points per dimension", &n);
  args.add_flag("chares-per-dim", "chare decomposition per dimension",
                &cdim);
  args.add_flag("iters", "Jacobi iterations", &iters);
  args.add_flag("pes", "worker threads", &pes);
  if (!args.parse(argc, argv)) return 1;

  apps::StencilParams p;
  p.nx = p.ny = p.nz = static_cast<int>(n);
  p.cx = p.cy = p.cz = static_cast<int>(cdim);
  p.iterations = static_cast<int>(iters);

  // Serial reference for validation.
  std::vector<double> ref(static_cast<std::size_t>(p.nx) * p.ny * p.nz);
  apps::fill_pattern(ref.data(), ref.size(), p.seed);
  apps::serial_stencil3d(ref, p.nx, p.ny, p.nz, p.iterations);
  double ref_sum = 0;
  for (double v : ref) ref_sum += v;

  std::printf("Stencil3D %lldx%lldx%lld, %lld^3 chares, %lld iterations, "
              "%lld PEs\n\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(n), static_cast<long long>(cdim),
              static_cast<long long>(iters), static_cast<long long>(pes));

  TextTable t({"strategy", "wall (ms)", "fetch", "evict", "checksum ok"});
  for (auto s : {ooc::Strategy::Naive, ooc::Strategy::SingleIo,
                 ooc::Strategy::SyncNoIo, ooc::Strategy::MultiIo}) {
    rt::Runtime::Config cfg;
    cfg.strategy = s;
    cfg.num_pes = static_cast<int>(pes);
    cfg.mem_scale = 1.0 / 4096; // 4 MiB fast tier: the grid overflows it
    rt::Runtime rt(cfg);
    apps::Stencil3D app(rt, p);

    const auto t0 = std::chrono::steady_clock::now();
    app.run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const bool ok = app.gather() == ref;
    const auto st = rt.policy_stats();
    t.add_row({ooc::strategy_name(s), strfmt("%.1f", wall * 1e3),
               fmt_bytes(st.fetch_bytes), fmt_bytes(st.evict_bytes),
               ok ? "yes (bitwise)" : "NO"});
    if (!ok) {
      std::fprintf(stderr, "checksum mismatch under %s\n",
                   ooc::strategy_name(s));
      return 1;
    }
  }
  t.print(std::cout);
  std::printf("\nreference checksum: %.6f\n", ref_sum);
  std::printf("note: wall times on this host do not show the HBM effect "
              "(both tiers are host RAM);\nthe modeled-node timings are "
              "what bench/fig08_stencil_speedup reproduces.\n");
  return 0;
}
