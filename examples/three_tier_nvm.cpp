// Three-tier generality demo (the paper's conclusion: "We plan to
// extend this implementation to other heterogeneous memory
// architectures ... heterogeneity in both latency and bandwidth would
// benefit even more").
//
// One modeled node — HBM (16 GB) + DDR4 (96 GB) + NVM (512 GB) — runs
// the same stencil workload under three placement hierarchies:
//   * two-tier emulation: HBM fast, NVM far, DDR4 idle — all the
//     runtime could express when placement was a fast/slow binary;
//   * three tiers, no cascade: the engine knows all three levels but
//     evictions go straight to NVM (the ablation baseline);
//   * three tiers + demotion cascade: HBM evictions land on DDR4
//     while it has room, so re-fetches stream from DDR4 (~36 GB/s
//     channel) instead of NVM (~7 GB/s).
// Zero application changes — only the SimConfig hierarchy differs.
//
//   ./build/examples/three_tier_nvm

#include <cstdio>
#include <iostream>

#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace hmr;

  const auto model = hw::three_tier_hbm_ddr_nvm();
  const auto p = sim::StencilWorkload::params_for_reduced(
      32 * GiB, 4 * GiB, model.num_pes, /*iterations=*/5);
  sim::StencilWorkload w(p);

  struct Setup {
    const char* name;
    bool two_tier;
    bool cascade;
  };
  const Setup setups[] = {
      {"two-tier emulation (DDR4 idle)", true, false},
      {"three tiers, no cascade", false, false},
      {"three tiers + cascade", false, true},
  };

  TextTable t({"hierarchy", "total (s)", "cascade demotions",
               "DDR4->HBM GiB", "NVM->HBM GiB"});
  for (const auto& s : setups) {
    sim::SimConfig cfg;
    cfg.model = model;
    cfg.strategy = ooc::Strategy::MultiIo;
    cfg.trace = true;
    cfg.demote_cascade = s.cascade;
    if (s.two_tier) {
      // The old fast/slow binary: HBM + NVM, the middle tier invisible.
      cfg.tiers = {{model.fast, model.tier(model.fast).capacity, 1.0},
                   {model.slow, 0, 1.0}};
    }
    sim::SimExecutor ex(cfg);
    const auto r = ex.run(w);
    const auto sum = ex.tracer().summarize();
    const auto ddr_hbm = sum.migration_between(2, 1); // DDR4 -> MCDRAM
    const auto nvm_hbm = sum.migration_between(0, 1); // NVM  -> MCDRAM
    t.add_row({s.name, strfmt("%.2f", r.total_time),
               strfmt("%llu", static_cast<unsigned long long>(
                                  r.policy.cascade_demotions)),
               strfmt("%.1f", static_cast<double>(ddr_hbm.bytes) / GiB),
               strfmt("%.1f", static_cast<double>(nvm_hbm.bytes) / GiB)});
  }

  std::printf("Stencil3D 32 GB, reduced 4 GB, 5 iterations, MultipleIO "
              "prefetch\non %s:\n\n",
              model.name.c_str());
  t.print(std::cout);
  std::printf(
      "\nwith the demotion cascade, HBM evictions land on DDR4 while it "
      "has room, so\nevery re-fetch streams from DDR4 instead of NVM — "
      "the fetch channel runs ~5x\nfaster and the evict channel ~12x.  "
      "The two-tier rows leave DDR4 idle: that\nis all the fast/slow "
      "binary could express.  No application change was needed;\nonly "
      "the placement hierarchy differs.\n");
  return 0;
}
