// Three-tier generality demo (the paper's conclusion: "We plan to
// extend this implementation to other heterogeneous memory
// architectures ... heterogeneity in both latency and bandwidth would
// benefit even more").
//
// Runs the same stencil workload on two modeled nodes:
//   * KNL flat:    DDR4 (slow) + MCDRAM (fast) — bandwidth-restricted,
//   * NVM node:    NVM  (slow) + MCDRAM (fast) — bandwidth- AND
//                  latency-restricted slow tier.
// The prefetch runtime's win grows on the NVM node exactly as the
// paper predicts, with zero application changes — only the machine
// model differs.
//
//   ./build/examples/three_tier_nvm

#include <cstdio>
#include <iostream>

#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace hmr;

  TextTable t({"node", "slow tier", "slow-only (s)", "Naive (s)",
               "MultipleIO (s)", "vs naive", "vs slow-only"});
  for (const auto& model :
       {hw::knl_flat_all_to_all(), hw::three_tier_hbm_ddr_nvm()}) {
    const auto p = sim::StencilWorkload::params_for_reduced(
        32 * GiB, 4 * GiB, model.num_pes, /*iterations=*/5);
    sim::StencilWorkload w(p);

    auto run = [&](ooc::Strategy s) {
      sim::SimConfig cfg;
      cfg.model = model;
      cfg.strategy = s;
      return sim::SimExecutor(cfg).run(w).total_time;
    };
    const double slow_only = run(ooc::Strategy::DdrOnly);
    const double naive = run(ooc::Strategy::Naive);
    const double multi = run(ooc::Strategy::MultiIo);
    t.add_row({model.name, model.tier(model.slow).name,
               strfmt("%.2f", slow_only), strfmt("%.2f", naive),
               strfmt("%.2f", multi), strfmt("%.2fx", naive / multi),
               strfmt("%.2fx", slow_only / multi)});
  }
  std::printf("Stencil3D 32 GB, reduced 4 GB, 5 iterations, MultipleIO "
              "prefetch:\n\n");
  t.print(std::cout);
  std::printf(
      "\nwith an NVM far tier the penalty for leaving data in the slow "
      "tier explodes\n(slow-only vs MultipleIO), so memory-aware "
      "scheduling matters even more; the\nNVM's thin transfer bandwidth "
      "also throttles the prefetcher itself, which is\nwhy the paper's "
      "conclusion flags latency+bandwidth heterogeneity as the next\n"
      "target.  No application change was needed: only the MachineModel "
      "differs.\n");
  return 0;
}
