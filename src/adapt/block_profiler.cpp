#include "adapt/block_profiler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmr::adapt {

BlockProfiler::BlockProfiler(ProfilerConfig cfg) : cfg_(cfg) {
  HMR_CHECK_MSG(cfg_.top_k > 0, "profiler needs a nonzero sketch size");
  HMR_CHECK(cfg_.hotness_alpha > 0 && cfg_.hotness_alpha <= 1.0);
  HMR_CHECK(cfg_.reuse_alpha > 0 && cfg_.reuse_alpha <= 1.0);
  HMR_CHECK(cfg_.evict_sample > 0);
  slots_.reserve(cfg_.top_k);
  touched_.reserve(cfg_.top_k);
}

std::size_t BlockProfiler::slot_for(ooc::BlockId b, std::uint64_t bytes) {
  if (const auto it = index_.find(b); it != index_.end()) return it->second;

  if (slots_.size() < cfg_.top_k) {
    const std::size_t s = slots_.size();
    BlockProfile p;
    p.block = b;
    p.bytes = bytes;
    slots_.push_back(p);
    touched_.push_back(0);
    index_.emplace(b, s);
    return s;
  }

  // Space-saving takeover: displace the lowest-count slot of a small
  // rotating sample.  The newcomer inherits the victim's count as its
  // error bound, so a genuine heavy hitter's (large) count protects it.
  std::size_t victim = evict_cursor_ % slots_.size();
  for (std::size_t i = 0; i < cfg_.evict_sample; ++i) {
    const std::size_t s = (evict_cursor_ + i) % slots_.size();
    if (slots_[s].accesses < slots_[victim].accesses) victim = s;
  }
  evict_cursor_ = (evict_cursor_ + cfg_.evict_sample) % slots_.size();

  BlockProfile& p = slots_[victim];
  index_.erase(p.block);
  const std::uint64_t inherited = p.accesses;
  p = BlockProfile{};
  p.block = b;
  p.bytes = bytes;
  p.accesses = inherited;
  p.count_error = inherited;
  index_.emplace(b, victim);
  touched_[victim] = 0;
  return victim;
}

void BlockProfiler::on_access(ooc::BlockId b, std::uint64_t bytes,
                              ooc::AccessMode mode) {
  ++tick_;
  ++cur_.accesses;
  const std::size_t s = slot_for(b, bytes);
  BlockProfile& p = slots_[s];
  p.bytes = bytes;
  if (p.accesses > p.count_error && p.last_tick > 0) {
    // A genuine repeat touch: fold the gap into the reuse EWMA.
    const auto gap = static_cast<double>(tick_ - p.last_tick);
    p.reuse_distance = p.reuse_distance < 0
                           ? gap
                           : cfg_.reuse_alpha * gap +
                                 (1.0 - cfg_.reuse_alpha) * p.reuse_distance;
  }
  ++p.accesses;
  ++p.phase_accesses;
  if (mode == ooc::AccessMode::ReadOnly) ++p.readonly_accesses;
  p.last_tick = tick_;
  if (!touched_[s]) {
    touched_[s] = 1;
    ++cur_.unique_blocks;
    cur_.unique_bytes += bytes;
  }
}

void BlockProfiler::on_fetch(ooc::BlockId b, std::uint64_t bytes) {
  (void)b;
  cur_.fetched_bytes += bytes;
}

PhaseSummary BlockProfiler::end_phase() {
  const PhaseSummary out = cur_;
  cur_ = PhaseSummary{};
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    BlockProfile& p = slots_[s];
    p.hotness = cfg_.hotness_alpha * static_cast<double>(p.phase_accesses) +
                (1.0 - cfg_.hotness_alpha) * p.hotness;
    p.phase_accesses = 0;
    touched_[s] = 0;
  }
  ++phases_;
  return out;
}

const BlockProfile* BlockProfiler::find(ooc::BlockId b) const {
  const auto it = index_.find(b);
  return it == index_.end() ? nullptr : &slots_[it->second];
}

} // namespace hmr::adapt
