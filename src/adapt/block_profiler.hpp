#pragma once
// BlockProfiler: bounded online profile of per-block access behaviour,
// the sensing half of the adaptive guidance subsystem (docs/ADAPTIVE.md).
//
// Fed from the engine events the executors already see — a task arrival
// touches each dependence block once; a Fetch command marks migrated
// bytes — the profiler maintains, per tracked block:
//   * an access count (and the read-only share of it),
//   * an EWMA hotness in accesses/phase, folded at end_phase(),
//   * an approximate reuse distance: the EWMA gap, in global accesses,
//     between consecutive touches of the block (recency stands in for
//     stack distance, the classic streaming approximation).
//
// Memory is bounded by construction: at most `top_k` blocks are
// tracked, via a space-saving heavy-hitter sketch (Metwally et al.).
// When the table is full, a new block takes over the slot of a
// low-count victim and inherits its count as `count_error`, so counts
// are upper bounds and true heavy hitters cannot be displaced by a
// stream of one-shot blocks.  Victim selection scans a small rotating
// sample of slots instead of the whole table, keeping the per-access
// cost O(1); the sketch stays a sketch either way.
//
// Like ooc::PolicyEngine, this is a pure state machine: no clock, no
// threads, no dependency on sim/ or rt/.  Callers serialize.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ooc/types.hpp"

namespace hmr::adapt {

struct ProfilerConfig {
  /// Sketch capacity: the hard bound on tracked blocks (the config
  /// knob the bounded-memory guarantee hangs off).
  std::size_t top_k = 256;
  /// EWMA weight of the newest phase's access count in `hotness`.
  double hotness_alpha = 0.3;
  /// EWMA weight of the newest access gap in `reuse_distance`.
  double reuse_alpha = 0.3;
  /// Victim-sample width for the space-saving takeover scan.
  std::size_t evict_sample = 8;
};

struct BlockProfile {
  ooc::BlockId block = mem::kInvalidBlock;
  std::uint64_t bytes = 0;
  /// Space-saving access count (an upper bound; see count_error).
  std::uint64_t accesses = 0;
  /// Overestimate inherited when this block took over a slot.
  std::uint64_t count_error = 0;
  std::uint64_t readonly_accesses = 0;
  /// Accesses in the phase currently being accumulated.
  std::uint64_t phase_accesses = 0;
  /// Global access tick of the most recent touch.
  std::uint64_t last_tick = 0;
  /// EWMA accesses per phase (0 until the first end_phase()).
  double hotness = 0;
  /// EWMA gap between touches in global accesses; negative until the
  /// block has been touched at least twice (never reused so far).
  double reuse_distance = -1.0;

  /// Hotness estimate usable mid-phase: the folded EWMA or, before the
  /// first fold, what the current phase has seen.
  double expected_accesses_per_phase() const {
    return hotness > 0 ? hotness : static_cast<double>(phase_accesses);
  }
  double readonly_fraction() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(readonly_accesses) /
                               static_cast<double>(accesses);
  }
};

/// What one phase (iteration) touched, returned by end_phase().
struct PhaseSummary {
  std::uint64_t accesses = 0;
  /// Distinct tracked blocks touched this phase and their bytes.  An
  /// under-approximation when more than top_k blocks are live — the
  /// sketch cannot see what it is not tracking (documented bias).
  std::uint64_t unique_blocks = 0;
  std::uint64_t unique_bytes = 0;
  /// Bytes reported via on_fetch this phase.
  std::uint64_t fetched_bytes = 0;
};

class BlockProfiler {
public:
  explicit BlockProfiler(ProfilerConfig cfg);

  const ProfilerConfig& config() const { return cfg_; }

  /// One task dependence touched `b`.  `mode` feeds the read-only
  /// share used by the advisor's pin rule.
  void on_access(ooc::BlockId b, std::uint64_t bytes, ooc::AccessMode mode);

  /// Convenience: one on_access per dependence of `t`, with bytes
  /// resolved by the caller-supplied table (executors know block
  /// sizes; the profiler does not keep its own registry).
  template <typename BytesFn>
  void on_task_arrived(const ooc::TaskDesc& t, BytesFn&& bytes_of) {
    for (const auto& d : t.deps) on_access(d.block, bytes_of(d.block), d.mode);
  }

  /// The executor issued (or observed) a fetch of `b`.
  void on_fetch(ooc::BlockId b, std::uint64_t bytes);

  /// Phase boundary: fold phase access counts into the hotness EWMAs,
  /// reset per-phase state, and return what the phase touched.
  PhaseSummary end_phase();

  /// Profile of `b`, or nullptr when the sketch is not tracking it
  /// (which itself is signal: not tracked => not a heavy hitter).
  const BlockProfile* find(ooc::BlockId b) const;

  /// Number of tracked blocks; <= config().top_k always.
  std::size_t tracked() const { return slots_.size(); }
  std::uint64_t ticks() const { return tick_; }
  int phases() const { return phases_; }

  /// All tracked profiles (tests, debugging dumps).
  const std::vector<BlockProfile>& profiles() const { return slots_; }

private:
  std::size_t slot_for(ooc::BlockId b, std::uint64_t bytes);

  ProfilerConfig cfg_;
  std::vector<BlockProfile> slots_;
  std::unordered_map<ooc::BlockId, std::size_t> index_;
  std::vector<std::uint8_t> touched_; // per-slot "seen this phase" flag
  std::uint64_t tick_ = 0;
  std::size_t evict_cursor_ = 0;
  int phases_ = 0;
  PhaseSummary cur_;
};

} // namespace hmr::adapt
