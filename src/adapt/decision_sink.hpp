#pragma once
// DecisionSink: the provenance tap of the adaptive guidance subsystem.
//
// The advisor and governor are pure state machines: they decide, the
// engine obeys, and afterwards nobody can say *why* a block was pinned
// or when (and on which inputs) the governor flipped eviction policy.
// Related work treats that as a first-class requirement — online
// guidance is only trustworthy when its inputs are observable and
// replayable (arXiv:2110.02150 §5, arXiv:2505.14294) — so every
// decision is mirrored, with the numbers that triggered it, into a
// caller-supplied sink.
//
// The sink is an abstract interface on purpose: adapt/ stays
// executor- and telemetry-free (it links only ooc/hw/util), while
// telemetry::DecisionLog implements the sink and the executors wire
// the two together.  A null sink costs one pointer test per decision.
//
// DecisionEvent is one flat POD covering both sources; unused fields
// stay zero.  Advisor events carry the per-block profile inputs
// (hotness, read-only fraction, reuse distance, break-even accesses);
// governor events carry the phase observation (wait fraction, refetch
// ratio, channel utilization, peak in-flight) plus the full Decision.
// Flat and trivially copyable so a lock-free log can seqlock-copy it.

#include <cstdint>

#include "ooc/types.hpp"

namespace hmr::adapt {

enum class DecisionKind : std::uint8_t {
  /// PlacementAdvisor advice for one block (recorded on change only —
  /// advise() runs on the engine's admission path).
  AdvisePin = 0,
  AdviseDemote = 1,
  AdviseBypass = 2,
  AdviseKeep = 3, // no special treatment (advice reverted to default)
  /// StrategyGovernor phase-boundary decision (one per phase).
  GovernorPhase = 4,
};

/// Printable name ("pin", "demote", "bypass", "keep", "governor").
const char* decision_kind_name(DecisionKind k);

struct DecisionEvent {
  DecisionKind kind = DecisionKind::GovernorPhase;

  // ---- advisor events ----
  ooc::BlockId block = 0; // 0 for governor events
  std::uint64_t bytes = 0;
  /// Profile inputs at decision time (expected accesses/phase, share
  /// of read-only touches, EWMA reuse gap, break-even accesses for
  /// this block's size under a loaded channel).
  double hotness = 0;
  double readonly_frac = 0;
  double reuse_distance = 0;
  double break_even = 0;
  /// Chosen advice bits (ooc::BlockAdvice mirrored flat).
  bool pin = false;
  bool demote_first = false;
  bool bypass_fetch = false;
  std::int32_t demote_level = 0; // ooc::kLevelAuto / kLevelFar / index

  // ---- governor events ----
  /// Phase index (1-based, == StrategyGovernor::phases_observed()).
  std::int32_t phase = 0;
  /// PhaseObservation inputs the rules fired on.
  double phase_seconds = 0;
  double wait_fraction = 0;
  double refetch_ratio = 0;
  double channel_util = 0;
  std::uint64_t peak_inflight = 0;
  std::uint64_t lru_reclaims = 0;
  bool in_cooldown = false;
  /// The resulting Decision.
  ooc::Strategy strategy = ooc::Strategy::MultiIo;
  bool eager_evict = true;
  bool fair_admission = true;
  double lru_watermark = 1.0;
  bool bypass_streaming = false;
  bool changed = false;
};

/// Receives every decision.  Implementations must be safe to call from
/// whatever thread drives the advisor/governor (the executors already
/// serialize both under the engine lock) and must not call back into
/// adapt/.
class DecisionSink {
public:
  virtual ~DecisionSink() = default;
  virtual void record(const DecisionEvent& e) = 0;
};

inline const char* decision_kind_name(DecisionKind k) {
  switch (k) {
    case DecisionKind::AdvisePin: return "pin";
    case DecisionKind::AdviseDemote: return "demote";
    case DecisionKind::AdviseBypass: return "bypass";
    case DecisionKind::AdviseKeep: return "keep";
    case DecisionKind::GovernorPhase: return "governor";
  }
  return "?";
}

} // namespace hmr::adapt
