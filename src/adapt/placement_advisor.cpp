#include "adapt/placement_advisor.hpp"

#include <limits>

#include "util/check.hpp"

namespace hmr::adapt {

AdvisorConfig AdvisorConfig::from_model(const hw::MachineModel& m) {
  AdvisorConfig c;
  const auto& fast = m.tier(m.fast);
  const auto& slow = m.tier(m.slow);
  const auto pes = static_cast<double>(m.num_pes);
  // Per-access saving per byte at full concurrency: each PE's share of
  // a tier's read bandwidth is bw/num_pes, so a byte read from the
  // fast tier instead of the slow one saves pes/slow_bw - pes/fast_bw
  // seconds (the compute_time2 roofline terms).
  c.saved_seconds_per_byte_access =
      pes / slow.read_bw - pes / fast.read_bw;
  // Loaded channel: when every PE's data is in flight, a flow gets
  // channel_capacity/num_pes — the regime where bypass matters.  With
  // headroom the governor never arms bypass, so the loaded rate is the
  // right cost basis.
  c.fetch_seconds_per_byte_loaded =
      pes / m.channel_capacity(m.slow, m.fast);
  c.evict_seconds_per_byte_loaded =
      pes / m.channel_capacity(m.fast, m.slow);
  c.migration_fixed_seconds = m.alloc_overhead;
  return c;
}

PlacementAdvisor::PlacementAdvisor(const BlockProfiler& profiler,
                                   AdvisorConfig cfg)
    : profiler_(&profiler), cfg_(cfg) {
  HMR_CHECK(cfg_.pin_min_hotness >= 0 && cfg_.demote_max_hotness >= 0);
  HMR_CHECK(cfg_.pin_min_readonly_frac >= 0 &&
            cfg_.pin_min_readonly_frac <= 1.0);
}

double PlacementAdvisor::break_even_accesses(std::uint64_t bytes) const {
  const auto b = static_cast<double>(bytes);
  const double saving = b * cfg_.saved_seconds_per_byte_access;
  if (saving <= 0) return std::numeric_limits<double>::infinity();
  // Round trip: the fetch now plus the evict eager mode pays later,
  // each with its fixed alloc/free overhead.
  const double cost = 2.0 * cfg_.migration_fixed_seconds +
                      b * (cfg_.fetch_seconds_per_byte_loaded +
                           cfg_.evict_seconds_per_byte_loaded);
  return cost / saving;
}

void PlacementAdvisor::record_advice(ooc::BlockId b, std::uint64_t bytes,
                                     const BlockProfile* p,
                                     const ooc::BlockAdvice& a) const {
  // Flat encoding of the advice for the per-block change test.
  const std::uint64_t key =
      (a.pin ? 1u : 0u) | (a.demote_first ? 2u : 0u) |
      (a.bypass_fetch ? 4u : 0u) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.demote_level))
       << 3);
  {
    std::lock_guard lk(dedup_mu_);
    auto [it, inserted] = last_advice_.emplace(b, key);
    if (!inserted) {
      if (it->second == key) return; // unchanged: do not flood the log
      it->second = key;
    }
  }
  DecisionEvent e;
  e.kind = a.pin            ? DecisionKind::AdvisePin
           : a.bypass_fetch ? DecisionKind::AdviseBypass
           : a.demote_first ? DecisionKind::AdviseDemote
                            : DecisionKind::AdviseKeep;
  e.block = b;
  e.bytes = bytes;
  if (p != nullptr) {
    e.hotness = p->expected_accesses_per_phase();
    e.readonly_frac = p->readonly_fraction();
    e.reuse_distance = p->reuse_distance;
  } else {
    e.reuse_distance = -1.0; // untracked: never observed reused
  }
  e.break_even = break_even_accesses(bytes);
  e.pin = a.pin;
  e.demote_first = a.demote_first;
  e.bypass_fetch = a.bypass_fetch;
  e.demote_level = a.demote_level;
  sink_->record(e);
}

ooc::BlockAdvice PlacementAdvisor::advise(ooc::BlockId b,
                                          std::uint64_t bytes) const {
  ooc::BlockAdvice a;
  const BlockProfile* p = profiler_->find(b);
  if (p == nullptr) {
    // Not in the top-K sketch: by construction not a heavy hitter, so
    // it is a fine early reclaim victim — but never bypass on no data.
    // On deep hierarchies it should not squat in a middle tier either:
    // its re-fetch savings cannot pay for the capacity it would hold.
    a.demote_first = cfg_.enable_demote;
    if (cfg_.enable_demote) a.demote_level = ooc::kLevelFar;
    if (sink_ != nullptr) record_advice(b, bytes, nullptr, a);
    return a;
  }

  const double hot = p->expected_accesses_per_phase();
  if (cfg_.enable_pin && hot >= cfg_.pin_min_hotness &&
      p->readonly_fraction() >= cfg_.pin_min_readonly_frac &&
      p->reuse_distance >= 0 &&
      p->reuse_distance <= cfg_.pin_max_reuse_distance) {
    a.pin = true;
    if (sink_ != nullptr) record_advice(b, bytes, p, a);
    return a;
  }

  if (cfg_.enable_demote && hot <= cfg_.demote_max_hotness) {
    // Cold: preferred reclaim victim, and on deep hierarchies demoted
    // past the middle tiers (a block this cold will not be re-promoted
    // soon enough to justify middle-tier residence).
    a.demote_first = true;
    a.demote_level = ooc::kLevelFar;
  }
  if (p->reuse_distance < 0) {
    // Never reused so far: streaming data.  Middle tiers are reserved
    // for blocks with a re-promotion future; let this one fall through
    // to the bottom when it is evicted.
    a.demote_level = ooc::kLevelFar;
    if (cfg_.enable_bypass && streaming_bypass_ &&
        hot < break_even_accesses(bytes)) {
      // Too few expected touches to amortise a loaded-channel round
      // trip: run it from the slow tier.
      a.bypass_fetch = true;
    }
  }
  if (sink_ != nullptr) record_advice(b, bytes, p, a);
  return a;
}

} // namespace hmr::adapt
