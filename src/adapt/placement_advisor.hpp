#pragma once
// PlacementAdvisor: turns BlockProfiler profiles into per-block advice
// the ooc::PolicyEngine consults at admission and eviction time
// (docs/ADAPTIVE.md).  Three calls it can make:
//
//  * pin — hot, high-reuse, read-mostly blocks stay resident when
//    their refcount drops to zero even under eager eviction (they are
//    parked warm instead of evicted, saving the round trip the next
//    consumer would otherwise pay);
//  * demote_first — cold blocks (or blocks the top-K sketch is not
//    even tracking) are preferred reclaim victims, ahead of plain LRU
//    order;
//  * bypass_fetch — stream-once blocks whose measured reuse never
//    amortises the migration cost run straight from the slow tier.
//
// On hierarchies deeper than two levels the advisor also sets
// BlockAdvice::demote_level: cold and streaming blocks are sent
// straight to the bottom level (ooc::kLevelFar) instead of being
// caught by a middle tier, which keeps middle-tier capacity for blocks
// with a re-promotion future.  Two-level engines ignore the field.
//
// The bypass break-even test comes from hw::MachineModel: migrating a
// block costs a fetch and (under eager eviction) an evict through the
// loaded migration channel, while each access from the fast tier saves
// the per-PE bandwidth-share difference between the tiers.  A block
// pays its way only if
//     expected accesses >= migration_cost / per_access_saving,
// the `bytes / (fast_bw - slow_bw)`-style test of the issue.  Because
// asynchronous prefetch hides migration cost while the channel has
// headroom, bypass only activates when the governor reports the fetch
// channel saturated (set_streaming_bypass) — with headroom, moving
// even single-use blocks wins, which is the paper's whole point.
//
// Pure state machine: no clock, no threads, no sim/rt dependency.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "adapt/block_profiler.hpp"
#include "adapt/decision_sink.hpp"
#include "hw/machine_model.hpp"
#include "ooc/types.hpp"

namespace hmr::adapt {

struct AdvisorConfig {
  bool enable_pin = true;
  bool enable_demote = true;
  bool enable_bypass = true;

  /// Pin rule: EWMA hotness at least this many accesses/phase...
  double pin_min_hotness = 3.0;
  /// ...mostly read-only (pinning a heavily written block would keep
  /// dirty state in the fast tier for no sharing payoff)...
  double pin_min_readonly_frac = 0.75;
  /// ...and re-touched within this many global accesses.
  double pin_max_reuse_distance = 1 << 16;

  /// Demote rule: tracked blocks at or below this hotness (plus all
  /// untracked blocks) are preferred reclaim victims.
  double demote_max_hotness = 1.0;

  // Machine-derived break-even inputs (from_model fills these).
  /// Seconds one access saves per byte when the block sits in the fast
  /// tier instead of the slow one, at full PE concurrency.
  double saved_seconds_per_byte_access = 0;
  /// Seconds per byte of a fetch when all PEs contend for the channel.
  double fetch_seconds_per_byte_loaded = 0;
  /// Same for the evict direction (eager eviction pays it too).
  double evict_seconds_per_byte_loaded = 0;
  /// Fixed per-migration cost (numa_alloc/free pair), seconds.
  double migration_fixed_seconds = 0;

  /// Thresholds keep their defaults; the bandwidth/channel fields are
  /// derived from the model's tier shapes at full concurrency.
  static AdvisorConfig from_model(const hw::MachineModel& m);

  /// Remote-backend costing: when the hierarchy's backing store is a
  /// disaggregated pool (ooc::TierBackendKind::Remote), migrations pay
  /// the network instead of the local copy channel.  Raises the
  /// migration cost fields to at least the network path's
  /// seconds-per-byte and adds its per-transfer latency to the fixed
  /// cost, so break_even_accesses demands more reuse before moving a
  /// block across the wire.  Plain numbers keep adapt sim-free; the
  /// caller derives them from its network model (executors pass
  /// 1/bandwidth and the message latency of the remote tier's
  /// ooc::RemoteTierParams).
  void apply_remote(double seconds_per_byte, double fixed_seconds) {
    if (seconds_per_byte > fetch_seconds_per_byte_loaded) {
      fetch_seconds_per_byte_loaded = seconds_per_byte;
    }
    if (seconds_per_byte > evict_seconds_per_byte_loaded) {
      evict_seconds_per_byte_loaded = seconds_per_byte;
    }
    migration_fixed_seconds += fixed_seconds;
  }
};

class PlacementAdvisor final : public ooc::AdviceProvider {
public:
  PlacementAdvisor(const BlockProfiler& profiler, AdvisorConfig cfg);

  const AdvisorConfig& config() const { return cfg_; }

  ooc::BlockAdvice advise(ooc::BlockId b,
                          std::uint64_t bytes) const override;

  /// No block gets bypass advice while the governor has not armed it:
  /// lets the engine skip the advise() lookup on its admission scans.
  bool may_bypass() const override {
    return cfg_.enable_bypass && streaming_bypass_;
  }

  /// Governor hook: bypass only fires while the fetch channel is
  /// reported saturated (see header comment).
  void set_streaming_bypass(bool on) { streaming_bypass_ = on; }
  bool streaming_bypass() const { return streaming_bypass_; }

  /// Accesses per phase a block of `bytes` must sustain before
  /// migrating it beats reading it from the slow tier, under a loaded
  /// channel.  +inf when the model fields make fast placement free.
  double break_even_accesses(std::uint64_t bytes) const;

  /// Mirror advice *changes* into a provenance sink (decision_sink.hpp;
  /// nullptr = off, the default).  advise() runs on the engine's
  /// admission path, so identical repeat advice for a block is
  /// deduplicated — the sink sees each block's advice only when it
  /// differs from the last advice recorded for that block.
  void set_decision_sink(DecisionSink* sink) { sink_ = sink; }
  DecisionSink* decision_sink() const { return sink_; }

private:
  void record_advice(ooc::BlockId b, std::uint64_t bytes,
                     const BlockProfile* p,
                     const ooc::BlockAdvice& a) const;

  const BlockProfiler* profiler_;
  AdvisorConfig cfg_;
  bool streaming_bypass_ = false;
  DecisionSink* sink_ = nullptr;
  /// Last advice recorded per block, encoded flat for the dedup test.
  /// Guarded by dedup_mu_; touched only when a sink is installed.
  mutable std::mutex dedup_mu_;
  mutable std::unordered_map<ooc::BlockId, std::uint64_t> last_advice_;
};

} // namespace hmr::adapt
