#include "adapt/strategy_governor.hpp"

#include "util/check.hpp"

namespace hmr::adapt {

StrategyGovernor::StrategyGovernor(GovernorConfig cfg) : cfg_(cfg) {
  HMR_CHECK_MSG(ooc::strategy_moves_data(cfg_.initial_strategy),
                "the governor only steers the movement strategies");
  HMR_CHECK(cfg_.cooldown_phases >= 0);
  HMR_CHECK(cfg_.initial_lru_watermark > 0 &&
            cfg_.initial_lru_watermark <= 1.0);
  cur_.strategy = cfg_.initial_strategy;
  cur_.eager_evict = cfg_.initial_eager_evict;
  cur_.fair_admission = cfg_.initial_fair_admission;
  cur_.lru_watermark = cfg_.initial_lru_watermark;
}

double StrategyGovernor::refetch_ratio(const PhaseObservation& obs) {
  if (obs.unique_bytes == 0) return 0;
  return static_cast<double>(obs.fetch_bytes) /
         static_cast<double>(obs.unique_bytes);
}

void StrategyGovernor::record_phase(const PhaseObservation& obs,
                                    double channel_util,
                                    bool in_cooldown) const {
  DecisionEvent e;
  e.kind = DecisionKind::GovernorPhase;
  e.phase = phases_;
  e.phase_seconds = obs.phase_seconds;
  e.wait_fraction = obs.wait_fraction;
  e.refetch_ratio = refetch_ratio(obs);
  e.channel_util = channel_util;
  e.peak_inflight = obs.peak_inflight_fetches;
  e.lru_reclaims = obs.lru_reclaims;
  e.in_cooldown = in_cooldown;
  e.strategy = cur_.strategy;
  e.eager_evict = cur_.eager_evict;
  e.fair_admission = cur_.fair_admission;
  e.lru_watermark = cur_.lru_watermark;
  e.bypass_streaming = cur_.bypass_streaming;
  e.changed = cur_.changed;
  sink_->record(e);
}

Decision StrategyGovernor::on_phase_end(const PhaseObservation& obs) {
  ++phases_;
  const Decision prev = cur_;
  cur_.changed = false;

  // Channel utilization drives bypass arming regardless of cooldown —
  // it is advice gating, not a policy flip, and must react fast when
  // the channel saturates.
  const double util =
      (cfg_.channel_bytes_per_second > 0 && obs.phase_seconds > 0)
          ? static_cast<double>(obs.fetch_bytes) /
                (cfg_.channel_bytes_per_second * obs.phase_seconds)
          : 0;
  cur_.bypass_streaming = util > cfg_.bypass_utilization_threshold;

  if (cooldown_ > 0) {
    --cooldown_;
    cur_.changed = cur_.bypass_streaming != prev.bypass_streaming;
    if (sink_ != nullptr) record_phase(obs, util, /*in_cooldown=*/true);
    return cur_;
  }

  const double refetch = refetch_ratio(obs);

  // -- strategy escapes ------------------------------------------------
  if (cur_.strategy == ooc::Strategy::SyncNoIo &&
      obs.wait_fraction > cfg_.sync_wait_threshold) {
    // Workers burn their own time on synchronous fetches: hand the
    // traffic to asynchronous per-PE IO agents.
    cur_.strategy = ooc::Strategy::MultiIo;
  } else if (cur_.strategy == ooc::Strategy::SingleIo &&
             static_cast<double>(obs.peak_inflight_fetches) >
                 cfg_.single_backlog_threshold) {
    // One IO thread is draining a deep backlog serially.
    cur_.strategy = ooc::Strategy::MultiIo;
  }

  // -- eviction policy from measured reuse -----------------------------
  if (cur_.eager_evict) {
    if (refetch > cfg_.lazy_refetch_threshold) {
      // The same bytes round-trip several times per phase: park
      // refcount-0 blocks warm instead.
      cur_.eager_evict = false;
      cur_.lru_watermark = cfg_.reuse_lru_watermark;
    }
  } else {
    // Reuse can hide from the refetch ratio: blocks held warm by live
    // refcounts (concurrent sharers) are never refetched and never
    // reclaimed from the LRU, they surface as fetch-dedup hits.
    const bool warm_hits =
        obs.lru_reclaims > 0 ||
        static_cast<double>(obs.fetch_dedup_hits) >
            cfg_.dedup_streaming_max * static_cast<double>(obs.fetches);
    if (!warm_hits && refetch >= cfg_.eager_return_min &&
        refetch <= cfg_.eager_return_threshold) {
      // Streaming at ratio ~1 with nothing ever reused warm: back to
      // the paper's eager mode.  (A ratio far below 1 is a warm
      // working set served from the fast tier — lazy mode winning.)
      cur_.eager_evict = true;
      cur_.lru_watermark = cfg_.initial_lru_watermark;
    } else if (refetch > cfg_.eager_return_threshold &&
               obs.lru_reclaims == 0) {
      // Still refetching but the parked blocks are not the ones coming
      // back: cap how much of the fast tier the LRU may hold.
      cur_.lru_watermark = cfg_.streaming_lru_watermark;
    } else {
      cur_.lru_watermark = cfg_.reuse_lru_watermark;
    }
  }

  // -- fair admission ---------------------------------------------------
  // Contended admission (tasks observed waiting, nonzero wait time)
  // needs the per-PE claim cap so one drain cannot starve the rest;
  // an uncontended phase does not.
  if (obs.admission_contended &&
      obs.wait_fraction > cfg_.fair_release_wait) {
    cur_.fair_admission = true;
  } else if (obs.wait_fraction <= cfg_.fair_release_wait) {
    cur_.fair_admission = false;
  }

  if (cur_.strategy != prev.strategy ||
      cur_.eager_evict != prev.eager_evict) {
    ++switches_;
    cooldown_ = cfg_.cooldown_phases;
  }
  cur_.changed = cur_.strategy != prev.strategy ||
                 cur_.eager_evict != prev.eager_evict ||
                 cur_.fair_admission != prev.fair_admission ||
                 cur_.lru_watermark != prev.lru_watermark ||
                 cur_.bypass_streaming != prev.bypass_streaming;
  if (sink_ != nullptr) record_phase(obs, util, /*in_cooldown=*/false);
  return cur_;
}

} // namespace hmr::adapt
