#pragma once
// StrategyGovernor: the control half of the adaptive guidance
// subsystem (docs/ADAPTIVE.md).  At every phase boundary (an
// application iteration, or a wait_idle barrier in the threaded
// runtime) the executor hands it one PhaseObservation — wait fraction
// and fetch-lane load from trace::Tracer per-phase summaries, policy
// counter deltas, and the profiler's phase summary — and gets back a
// Decision: which ooc::Strategy to run, eager vs lazy eviction, the
// fair-admission gate, the lazy-LRU watermark, and whether the
// placement advisor should arm stream-once bypass.
//
// The rules are deliberately threshold + hysteresis, not a learned
// policy — every transition is explainable from one phase's numbers:
//
//  * escape synchronous fetching: SyncNoIo with a high wait fraction
//    means workers stall in pre-processing -> switch to MultiIo;
//  * escape the single-IO bottleneck: SingleIo with a deep fetch
//    backlog (peak in-flight fetches >> one agent) -> MultiIo;
//  * exploit temporal reuse: refetch ratio (bytes fetched / distinct
//    bytes touched) well above 1 under eager eviction means the same
//    blocks round-trip repeatedly -> lazy LRU; when the reuse
//    disappears again (ratio ~1 and no warm hits), return to eager,
//    the paper's default;
//  * fair admission stays on while admission is contended (waiting
//    tasks observed) and relaxes when nothing ever waits;
//  * the advisor's bypass arms only while the fetch channel is
//    saturated (utilization above threshold) — with headroom,
//    prefetching even single-use blocks is free.
//
// A cooldown of `cooldown_phases` follows every change so one noisy
// phase cannot make the governor oscillate.  Pure state machine: no
// clock, no threads, no sim/rt dependency; the executors drive it.

#include <cstdint>

#include "adapt/decision_sink.hpp"
#include "ooc/types.hpp"

namespace hmr::adapt {

struct GovernorConfig {
  ooc::Strategy initial_strategy = ooc::Strategy::MultiIo;
  bool initial_eager_evict = true;
  bool initial_fair_admission = true;
  double initial_lru_watermark = 1.0;

  /// SyncNoIo wait-fraction above which workers are deemed stalled on
  /// synchronous fetches.
  double sync_wait_threshold = 0.30;
  /// SingleIo: peak in-flight fetches above this many per IO agent
  /// (it has exactly one) marks the agent as the bottleneck.
  double single_backlog_threshold = 4.0;
  /// Refetch ratio (fetched bytes / unique bytes touched) above which
  /// eager eviction is discarding reused blocks.
  double lazy_refetch_threshold = 1.5;
  /// Refetch ratio at or below which (with no warm LRU hits) lazy mode
  /// has nothing to keep warm and eager resumes.
  double eager_return_threshold = 1.05;
  /// ...but only from this ratio up: pure streaming fetches every
  /// touched byte exactly once (ratio ~1), while a ratio far below 1
  /// means the working set is already warm in the fast tier — the
  /// best case for lazy mode, not a reason to leave it.
  double eager_return_min = 0.9;
  /// Dedup hits per fetch above which concurrent tasks are sharing
  /// warm copies: reuse served by live refcounts never shows up in
  /// the refetch ratio or the LRU reclaim counter, so a phase can
  /// look perfectly streaming (ratio ~1, zero reclaims) while every
  /// fetch is amortized across several tasks.  Such a phase must not
  /// trigger the return to eager eviction.
  double dedup_streaming_max = 0.5;
  /// Fetch-channel utilization above which the advisor arms
  /// stream-once bypass.
  double bypass_utilization_threshold = 0.75;
  /// Lazy-LRU watermark while reuse is being harvested / while the
  /// phase looks streaming (cap parked bytes, leave admission room).
  double reuse_lru_watermark = 1.0;
  double streaming_lru_watermark = 0.5;
  /// Wait fraction below which admission is uncontended and the
  /// fair-admission gate relaxes.
  double fair_release_wait = 0.02;

  /// Phases to hold still after any change (hysteresis).
  int cooldown_phases = 1;

  /// Fetch-channel capacity in bytes/s (utilization denominator);
  /// executors fill it from hw::MachineModel::channel_capacity.
  double channel_bytes_per_second = 0;
  int num_pes = 1;
};

/// One phase as the executor measured it.  Counter fields are deltas
/// over the phase, not running totals.
struct PhaseObservation {
  double phase_seconds = 0;
  /// Fraction of worker lane-time that was not compute (from the
  /// tracer's per-phase summary, or the executor's compute delta).
  double wait_fraction = 0;
  std::uint64_t tasks = 0;
  std::uint64_t fetches = 0;
  std::uint64_t fetch_bytes = 0;
  std::uint64_t evict_bytes = 0;
  std::uint64_t fetch_dedup_hits = 0;
  std::uint64_t lru_reclaims = 0;
  /// High-water mark of in-flight fetches during the phase.
  std::size_t peak_inflight_fetches = 0;
  /// Distinct bytes touched (profiler PhaseSummary::unique_bytes).
  std::uint64_t unique_bytes = 0;
  /// Tasks observed waiting for admission at any point in the phase.
  bool admission_contended = false;
};

struct Decision {
  ooc::Strategy strategy = ooc::Strategy::MultiIo;
  bool eager_evict = true;
  bool fair_admission = true;
  double lru_watermark = 1.0;
  /// Arm the advisor's stream-once bypass for the next phase.
  bool bypass_streaming = false;
  /// True when anything above differs from the previous decision.
  bool changed = false;
};

class StrategyGovernor {
public:
  explicit StrategyGovernor(GovernorConfig cfg);

  const GovernorConfig& config() const { return cfg_; }

  /// Consume one phase, return the configuration for the next one.
  Decision on_phase_end(const PhaseObservation& obs);

  const Decision& current() const { return cur_; }
  /// Strategy or evict-policy changes made so far.
  std::uint64_t switches() const { return switches_; }
  int phases_observed() const { return phases_; }

  /// Refetch ratio helper (also used by tests and bench output).
  static double refetch_ratio(const PhaseObservation& obs);

  /// Mirror every phase decision (one GovernorPhase event per
  /// on_phase_end, inputs + resulting Decision) into a provenance sink
  /// (decision_sink.hpp; nullptr = off, the default).
  void set_decision_sink(DecisionSink* sink) { sink_ = sink; }
  DecisionSink* decision_sink() const { return sink_; }

private:
  void record_phase(const PhaseObservation& obs, double channel_util,
                    bool in_cooldown) const;

  GovernorConfig cfg_;
  Decision cur_;
  std::uint64_t switches_ = 0;
  int phases_ = 0;
  int cooldown_ = 0;
  DecisionSink* sink_ = nullptr;
};

} // namespace hmr::adapt
