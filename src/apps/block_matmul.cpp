#include "apps/block_matmul.hpp"

#include <cstring>

#include "apps/reference.hpp"
#include "util/check.hpp"

namespace hmr::apps {

BlockMatmul::BlockMatmul(rt::Runtime& rt, MatmulParams p)
    : rt_(&rt), p_(p) {
  HMR_CHECK(p_.n > 0 && p_.grid > 0);
  HMR_CHECK_MSG(p_.n % p_.grid == 0, "grid must divide n");
  t_ = p_.n / p_.grid;
  const auto g2 = static_cast<std::size_t>(p_.grid) * p_.grid;
  const auto tile_elems = static_cast<std::uint64_t>(t_) * t_;

  // Deterministic dense inputs, then scatter into tiles.
  const auto nn = static_cast<std::size_t>(p_.n) * p_.n;
  std::vector<double> da(nn), db(nn);
  fill_pattern(da.data(), nn, p_.seed);
  fill_pattern(db.data(), nn, p_.seed + 1);

  a_.reserve(g2);
  b_.reserve(g2);
  c_.reserve(g2);
  auto scatter = [&](const std::vector<double>& dense_m,
                     rt::IoHandle<double>& h, int ti, int tj) {
    double* dst = h.data();
    for (int r = 0; r < t_; ++r) {
      std::memcpy(dst + static_cast<std::size_t>(r) * t_,
                  dense_m.data() +
                      (static_cast<std::size_t>(ti) * t_ + r) * p_.n +
                      static_cast<std::size_t>(tj) * t_,
                  static_cast<std::size_t>(t_) * sizeof(double));
    }
  };
  for (int i = 0; i < p_.grid; ++i) {
    for (int j = 0; j < p_.grid; ++j) {
      auto& ha = a_.emplace_back(*rt_, tile_elems);
      scatter(da, ha, i, j);
      auto& hb = b_.emplace_back(*rt_, tile_elems);
      scatter(db, hb, i, j);
      auto& hc = c_.emplace_back(*rt_, tile_elems);
      std::memset(hc.data(), 0, tile_elems * sizeof(double));
    }
  }
}

void BlockMatmul::gemm_tile(const double* a, const double* b, double* c,
                            int t) {
  // i-k-j loop order: unit-stride access on B and C rows, scalar reuse
  // of A — the classic cache-friendly ordering the compiler can
  // vectorize along j.
  for (int i = 0; i < t; ++i) {
    const double* ai = a + static_cast<std::size_t>(i) * t;
    double* ci = c + static_cast<std::size_t>(i) * t;
    for (int k = 0; k < t; ++k) {
      const double aik = ai[k];
      const double* bk = b + static_cast<std::size_t>(k) * t;
      for (int j = 0; j < t; ++j) {
        ci[j] += aik * bk[j];
      }
    }
  }
}

void BlockMatmul::run() {
  const int g = p_.grid;
  for (int i = 0; i < g; ++i) {
    for (int j = 0; j < g; ++j) {
      const int chare = i * g + j;
      const int pe = chare % rt_->num_pes(); // round-robin map
      for (int k = 0; k < g; ++k) {
        const auto& ha = a(i, k);
        const auto& hb = b(k, j);
        const auto& hc = c(i, j);
        rt_->send_prefetch(
            pe,
            {ha.dep(ooc::AccessMode::ReadOnly),
             hb.dep(ooc::AccessMode::ReadOnly),
             hc.dep(ooc::AccessMode::ReadWrite)},
            [this, &ha, &hb, &hc] {
              gemm_tile(ha.data(), hb.data(), hc.data(), t_);
            },
            /*work_factor=*/8.0);
      }
    }
  }
  rt_->wait_idle();
}

std::vector<double> BlockMatmul::dense(
    const std::vector<rt::IoHandle<double>>& tiles) const {
  const auto nn = static_cast<std::size_t>(p_.n) * p_.n;
  std::vector<double> out(nn);
  for (int i = 0; i < p_.grid; ++i) {
    for (int j = 0; j < p_.grid; ++j) {
      const double* src =
          tiles[static_cast<std::size_t>(i) * p_.grid + j].data();
      for (int r = 0; r < t_; ++r) {
        std::memcpy(out.data() +
                        (static_cast<std::size_t>(i) * t_ + r) * p_.n +
                        static_cast<std::size_t>(j) * t_,
                    src + static_cast<std::size_t>(r) * t_,
                    static_cast<std::size_t>(t_) * sizeof(double));
      }
    }
  }
  return out;
}

std::vector<double> BlockMatmul::result() const { return dense(c_); }

} // namespace hmr::apps
