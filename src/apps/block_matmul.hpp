#pragma once
// Blocked matrix multiplication on the threaded runtime: the paper's
// second benchmark (§V-B).
//
// C = A * B over n x n doubles, tiled into a G x G grid.  A/B/C tiles
// are IoHandles held in a node-level table (the paper uses a Charm++
// nodegroup to cache the read-only A/B tiles node-wide; here the block
// table itself is node-visible and the runtime's refcounting provides
// the reuse).  Chare (i,j) receives one [prefetch] gemm task per
// k-step with dependences
//     [readonly: A_ik, readonly: B_kj, readwrite: C_ij]
// and accumulates C_ij += A_ik * B_kj with a register-blocked i-k-j
// micro-kernel (our stand-in for MKL cblas_dgemm, which the paper
// detunes anyway by pointing MEMKIND_HBW_NODES away from MCDRAM).
//
// k-steps of one chare land on its home PE in FIFO order; the PE
// serializes them, and '+=' is commutative across k, so any admission
// reordering by the prefetch engine is numerically harmless.

#include <memory>
#include <vector>

#include "rt/collectives.hpp"
#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"

namespace hmr::apps {

struct MatmulParams {
  int n = 128;  // matrix dimension (doubles)
  int grid = 4; // tiles per side; must divide n
  std::uint64_t seed = 7;
};

class BlockMatmul {
public:
  BlockMatmul(rt::Runtime& rt, MatmulParams p);

  /// Launch all G^3 gemm tasks and wait for completion.
  void run();

  /// Assemble the full C matrix (row-major).
  std::vector<double> result() const;

  /// The exact inputs (row-major), for validation against a reference.
  std::vector<double> input_a() const { return dense(a_); }
  std::vector<double> input_b() const { return dense(b_); }

  int tile() const { return t_; }
  const MatmulParams& params() const { return p_; }

  /// Tile handles (i, k are tile coordinates).
  const rt::IoHandle<double>& a(int i, int k) const {
    return a_[static_cast<std::size_t>(i) * p_.grid + k];
  }
  const rt::IoHandle<double>& b(int k, int j) const {
    return b_[static_cast<std::size_t>(k) * p_.grid + j];
  }
  const rt::IoHandle<double>& c(int i, int j) const {
    return c_[static_cast<std::size_t>(i) * p_.grid + j];
  }

  /// The micro-kernel: C += A * B over t x t row-major tiles.
  static void gemm_tile(const double* a, const double* b, double* c, int t);

private:
  std::vector<double> dense(const std::vector<rt::IoHandle<double>>&) const;

  rt::Runtime* rt_;
  MatmulParams p_;
  int t_ = 0; // tile dimension
  std::vector<rt::IoHandle<double>> a_, b_, c_;
};

} // namespace hmr::apps
