#include "apps/cg_solver.hpp"

#include <cmath>
#include <cstring>

#include "apps/reference.hpp"
#include "util/check.hpp"

namespace hmr::apps {

namespace {

double dot(const double* a, const double* b, std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

} // namespace

void CgSolver::apply_laplacian(const std::vector<double>& v,
                               std::vector<double>& y, int n) {
  HMR_CHECK(v.size() == static_cast<std::size_t>(n) * n);
  y.resize(v.size());
  auto at = [&](int row, int col) -> double {
    if (row < 0 || row >= n || col < 0 || col >= n) return 0.0;
    return v[static_cast<std::size_t>(row) * n + col];
  };
  for (int row = 0; row < n; ++row) {
    for (int col = 0; col < n; ++col) {
      y[static_cast<std::size_t>(row) * n + col] =
          4.0 * at(row, col) - at(row - 1, col) - at(row + 1, col) -
          at(row, col - 1) - at(row, col + 1);
    }
  }
}

CgSolver::CgSolver(rt::Runtime& rt, CgParams params)
    : rt_(&rt), p_(params) {
  HMR_CHECK(p_.n > 0 && p_.strips > 0);
  HMR_CHECK_MSG(p_.n % p_.strips == 0, "strips must divide n");
  const int rows = p_.n / p_.strips;
  HMR_CHECK_MSG(p_.strips <= rt.num_pes() * 64, "too many strips");

  b_.resize(static_cast<std::size_t>(p_.n) * p_.n);
  fill_pattern(b_.data(), b_.size(), p_.seed);

  strips_ = std::make_unique<rt::ChareArray<Strip>>(
      *rt_, p_.strips, [&](Strip& s) {
        s.row0 = s.index * rows;
        s.rows = rows;
        const auto elems =
            static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(p_.n);
        s.x = rt::IoHandle<double>(*rt_, elems);
        s.r = rt::IoHandle<double>(*rt_, elems);
        s.p = rt::IoHandle<double>(*rt_, elems);
        s.ap = rt::IoHandle<double>(*rt_, elems);
        s.ghost_up = rt::IoHandle<double>(*rt_, static_cast<std::uint64_t>(p_.n));
        s.ghost_down =
            rt::IoHandle<double>(*rt_, static_cast<std::uint64_t>(p_.n));
        // x = 0; r = p = b (the CG start with x0 = 0).
        std::memset(s.x.data(), 0, elems * sizeof(double));
        std::memcpy(s.r.data(),
                    b_.data() + static_cast<std::size_t>(s.row0) * p_.n,
                    elems * sizeof(double));
        std::memcpy(s.p.data(), s.r.data(), elems * sizeof(double));
        std::memset(s.ghost_up.data(), 0, p_.n * sizeof(double));
        std::memset(s.ghost_down.data(), 0, p_.n * sizeof(double));
      });

  kExchange_ = strips_->register_entry(
      "exchange", true, [this](Strip& s) { do_exchange(s); },
      [this](Strip& s) {
        rt::Runtime::DepList deps{s.p.dep(ooc::AccessMode::ReadOnly)};
        if (s.index > 0) {
          deps.push_back((*strips_)[s.index - 1].ghost_down.dep(
              ooc::AccessMode::WriteOnly));
        }
        if (s.index + 1 < p_.strips) {
          deps.push_back((*strips_)[s.index + 1].ghost_up.dep(
              ooc::AccessMode::WriteOnly));
        }
        return deps;
      });
  kMatvec_ = strips_->register_entry(
      "matvec", true, [this](Strip& s) { do_matvec(s); },
      [](Strip& s) {
        return rt::Runtime::DepList{
            s.p.dep(ooc::AccessMode::ReadOnly),
            s.ghost_up.dep(ooc::AccessMode::ReadOnly),
            s.ghost_down.dep(ooc::AccessMode::ReadOnly),
            s.ap.dep(ooc::AccessMode::WriteOnly)};
      },
      /*work_factor=*/5.0);
  kUpdate_ = strips_->register_entry(
      "update", true, [this](Strip& s) { do_update(s); },
      [](Strip& s) {
        return rt::Runtime::DepList{
            s.x.dep(ooc::AccessMode::ReadWrite),
            s.r.dep(ooc::AccessMode::ReadWrite),
            s.p.dep(ooc::AccessMode::ReadOnly),
            s.ap.dep(ooc::AccessMode::ReadOnly)};
      });
  kDirection_ = strips_->register_entry(
      "direction", true, [this](Strip& s) { do_direction(s); },
      [](Strip& s) {
        return rt::Runtime::DepList{s.p.dep(ooc::AccessMode::ReadWrite),
                                    s.r.dep(ooc::AccessMode::ReadOnly)};
      });
}

void CgSolver::do_exchange(Strip& s) {
  const double* p = s.p.data();
  if (s.index > 0) {
    double* g = (*strips_)[s.index - 1].ghost_down.data();
    std::memcpy(g, p, static_cast<std::size_t>(p_.n) * sizeof(double));
  }
  if (s.index + 1 < p_.strips) {
    double* g = (*strips_)[s.index + 1].ghost_up.data();
    std::memcpy(g,
                p + static_cast<std::size_t>(s.rows - 1) * p_.n,
                static_cast<std::size_t>(p_.n) * sizeof(double));
  }
}

void CgSolver::do_matvec(Strip& s) {
  const double* p = s.p.data();
  const double* up = s.ghost_up.data();     // row row0-1 (zeros at top)
  const double* down = s.ghost_down.data(); // row row0+rows
  double* ap = s.ap.data();
  const int n = p_.n;
  double pap = 0;
  for (int lr = 0; lr < s.rows; ++lr) {
    const double* row = p + static_cast<std::size_t>(lr) * n;
    const double* above =
        lr > 0 ? p + static_cast<std::size_t>(lr - 1) * n : up;
    const double* below =
        lr + 1 < s.rows ? p + static_cast<std::size_t>(lr + 1) * n : down;
    double* out = ap + static_cast<std::size_t>(lr) * n;
    for (int c = 0; c < n; ++c) {
      const double left = c > 0 ? row[c - 1] : 0.0;
      const double right = c + 1 < n ? row[c + 1] : 0.0;
      out[c] = 4.0 * row[c] - above[c] - below[c] - left - right;
      pap += row[c] * out[c];
    }
  }
  pap_red_->contribute(pap);
}

void CgSolver::do_update(Strip& s) {
  double* x = s.x.data();
  double* r = s.r.data();
  const double* p = s.p.data();
  const double* ap = s.ap.data();
  const auto elems =
      static_cast<std::size_t>(s.rows) * static_cast<std::size_t>(p_.n);
  for (std::size_t i = 0; i < elems; ++i) {
    x[i] += alpha_ * p[i];
    r[i] -= alpha_ * ap[i];
  }
  rr_red_->contribute(dot(r, r, elems));
}

void CgSolver::do_direction(Strip& s) {
  double* p = s.p.data();
  const double* r = s.r.data();
  const auto elems =
      static_cast<std::size_t>(s.rows) * static_cast<std::size_t>(p_.n);
  for (std::size_t i = 0; i < elems; ++i) {
    p[i] = r[i] + beta_ * p[i];
  }
}

CgResult CgSolver::solve() {
  const auto chares = static_cast<std::uint64_t>(p_.strips);
  auto sum = [](const double& a, const double& b) { return a + b; };

  double rr = dot(b_.data(), b_.data(), b_.size()); // r0 = b
  const double rr0 = rr;
  CgResult result;
  for (int it = 0; it < p_.max_iterations; ++it) {
    pap_red_ = std::make_unique<rt::Reduction<double>>(chares, 0.0, sum);
    rr_red_ = std::make_unique<rt::Reduction<double>>(chares, 0.0, sum);

    strips_->broadcast(kExchange_);
    rt_->wait_idle();
    strips_->broadcast(kMatvec_);
    const double pap = pap_red_->wait();
    rt_->wait_idle();

    alpha_ = rr / pap;
    strips_->broadcast(kUpdate_);
    const double rr_new = rr_red_->wait();
    rt_->wait_idle();

    result.iterations = it + 1;
    result.residual_norm2 = rr_new;
    if (rr_new <= p_.tolerance * rr0) {
      result.converged = true;
      return result;
    }
    beta_ = rr_new / rr;
    rr = rr_new;
    strips_->broadcast(kDirection_);
    rt_->wait_idle();
  }
  return result;
}

std::vector<double> CgSolver::solution() const {
  std::vector<double> out(static_cast<std::size_t>(p_.n) * p_.n);
  for (int i = 0; i < p_.strips; ++i) {
    const Strip& s = (*strips_)[i];
    std::memcpy(out.data() + static_cast<std::size_t>(s.row0) * p_.n,
                s.x.data(),
                static_cast<std::size_t>(s.rows) * p_.n * sizeof(double));
  }
  return out;
}

std::vector<double> CgSolver::rhs() const { return b_; }

CgResult CgSolver::serial_solve(const std::vector<double>& b, int n,
                                int max_iterations, double tolerance,
                                std::vector<double>& x_out) {
  const std::size_t nn = b.size();
  HMR_CHECK(nn == static_cast<std::size_t>(n) * n);
  x_out.assign(nn, 0.0);
  std::vector<double> r = b, p = b, ap;
  double rr = dot(r.data(), r.data(), nn);
  const double rr0 = rr;
  CgResult result;
  for (int it = 0; it < max_iterations; ++it) {
    apply_laplacian(p, ap, n);
    const double pap = dot(p.data(), ap.data(), nn);
    const double alpha = rr / pap;
    double rr_new = 0;
    for (std::size_t i = 0; i < nn; ++i) {
      x_out[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      rr_new += r[i] * r[i];
    }
    result.iterations = it + 1;
    result.residual_norm2 = rr_new;
    if (rr_new <= tolerance * rr0) {
      result.converged = true;
      return result;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < nn; ++i) p[i] = r[i] + beta * p[i];
  }
  return result;
}

} // namespace hmr::apps
