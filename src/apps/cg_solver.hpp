#pragma once
// Conjugate-gradient Poisson solver on the threaded runtime: a third
// bandwidth-sensitive application beyond the paper's two benchmarks.
//
// Solves A x = b for the 2D 5-point Laplacian (matrix-free) on an
// n x n grid, decomposed into horizontal strips of rows owned by
// chares.  Each CG iteration is four waves of entry methods:
//
//   1. exchange — send p's boundary rows into the neighbours' ghost
//      buffers                        [readonly: p, writeonly: ghosts]
//   2. matvec   — Ap = A p using the ghosts; contribute dot(p, Ap)
//                                     [readonly: p+ghosts, writeonly: Ap]
//   3. update   — x += a p; r -= a Ap; contribute dot(r, r)
//                                     [readwrite: x r, readonly: p Ap]
//   4. direction — p = r + b p        [readwrite: p, readonly: r]
//
// The scalar recurrences (alpha, beta) run on the driver thread from
// Reduction results, exactly like a Charm++ main chare.  Every vector
// lives in IoHandles, so the whole Krylov state streams through the
// fast tier under any scheduling strategy.

#include <memory>
#include <vector>

#include "rt/chare.hpp"
#include "rt/collectives.hpp"
#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"

namespace hmr::apps {

struct CgParams {
  int n = 64;          // grid points per side (unknowns: n*n)
  int strips = 4;      // chare count; must divide n
  int max_iterations = 200;
  double tolerance = 1e-10; // on ||r||^2 / ||b||^2
  std::uint64_t seed = 13;  // right-hand side fill
};

struct CgResult {
  int iterations = 0;
  double residual_norm2 = 0; // final ||r||^2
  bool converged = false;
};

class CgSolver {
public:
  struct Strip : rt::Chare {
    int row0 = 0, rows = 0;
    rt::IoHandle<double> x, r, p, ap;
    rt::IoHandle<double> ghost_up;   // neighbour row above (row0 - 1)
    rt::IoHandle<double> ghost_down; // neighbour row below
  };

  CgSolver(rt::Runtime& rt, CgParams params);

  /// Run CG to convergence or max_iterations.
  CgResult solve();

  /// Dense copies for validation.
  std::vector<double> solution() const;  // x
  std::vector<double> rhs() const;       // b (implied by the fill)

  const CgParams& params() const { return p_; }

  /// Serial reference: identical algorithm on one thread.
  static CgResult serial_solve(const std::vector<double>& b, int n,
                               int max_iterations, double tolerance,
                               std::vector<double>& x_out);

  /// y = A v for the 2D 5-point Laplacian (Dirichlet boundary).
  static void apply_laplacian(const std::vector<double>& v,
                              std::vector<double>& y, int n);

private:
  void do_exchange(Strip& s);
  void do_matvec(Strip& s);
  void do_update(Strip& s);
  void do_direction(Strip& s);

  rt::Runtime* rt_;
  CgParams p_;
  std::vector<double> b_; // dense right-hand side (driver-owned)
  std::unique_ptr<rt::ChareArray<Strip>> strips_;
  std::size_t kExchange_ = 0, kMatvec_ = 0, kUpdate_ = 0, kDirection_ = 0;

  // Scalars of the current iteration (read by entry methods).
  double alpha_ = 0;
  double beta_ = 0;
  std::unique_ptr<rt::Reduction<double>> pap_red_;
  std::unique_ptr<rt::Reduction<double>> rr_red_;
};

} // namespace hmr::apps
