#include "apps/ooc_sort.hpp"

#include <algorithm>

#include "apps/reference.hpp"
#include "util/check.hpp"

namespace hmr::apps {

struct OocSort::MergeChain {
  OocSort* app = nullptr;
  std::vector<Run> inputs;
  std::vector<std::size_t> blk;   // current block index per run
  std::vector<std::uint64_t> off; // offset within the current block
  Run output;
  std::size_t out_blk = 0;
  std::uint64_t out_off = 0;
  int pe = 0;
  rt::Reduction<int>* done = nullptr;
};

OocSort::OocSort(rt::Runtime& rt, SortParams p) : rt_(&rt), p_(p) {
  HMR_CHECK(p_.num_blocks > 0 && p_.elems_per_block > 0);
  HMR_CHECK(p_.fanin >= 2);

  input_copy_.reserve(static_cast<std::size_t>(p_.num_blocks) *
                      p_.elems_per_block);
  runs_.reserve(static_cast<std::size_t>(p_.num_blocks));
  for (int b = 0; b < p_.num_blocks; ++b) {
    const auto id = rt_->alloc_block(p_.elems_per_block * sizeof(double));
    auto* data = static_cast<double*>(rt_->block_ptr(id));
    fill_pattern(data, p_.elems_per_block,
                 p_.seed + static_cast<std::uint64_t>(b));
    input_copy_.insert(input_copy_.end(), data, data + p_.elems_per_block);
    runs_.push_back({id});
  }
}

void OocSort::launch_step(std::shared_ptr<MergeChain> chain) {
  // Dependences of this step: the current block of every unexhausted
  // run (readonly) plus the output block being filled (readwrite —
  // it may carry a partial fill from the previous step).
  rt::Runtime::DepList deps;
  for (std::size_t i = 0; i < chain->inputs.size(); ++i) {
    if (chain->blk[i] < chain->inputs[i].size()) {
      deps.push_back({chain->inputs[i][chain->blk[i]],
                      ooc::AccessMode::ReadOnly});
    }
  }
  deps.push_back(
      {chain->output[chain->out_blk], ooc::AccessMode::ReadWrite});

  rt_->send_prefetch(chain->pe, std::move(deps), [this, chain] {
    const std::uint64_t elems = p_.elems_per_block;
    auto* out = static_cast<double*>(
        rt_->block_ptr(chain->output[chain->out_blk]));
    bool need_new_deps = false;
    bool finished = false;
    while (!need_new_deps) {
      // Pick the smallest head among unexhausted runs.
      int best = -1;
      double best_v = 0;
      for (std::size_t i = 0; i < chain->inputs.size(); ++i) {
        if (chain->blk[i] >= chain->inputs[i].size()) continue;
        const auto* src = static_cast<const double*>(
            rt_->block_ptr(chain->inputs[i][chain->blk[i]]));
        const double v = src[chain->off[i]];
        if (best < 0 || v < best_v) {
          best = static_cast<int>(i);
          best_v = v;
        }
      }
      if (best < 0) {
        finished = true;
        break;
      }
      out[chain->out_off++] = best_v;
      auto bi = static_cast<std::size_t>(best);
      if (++chain->off[bi] == elems) {
        // This input block is drained: the next one needs a fetch.
        chain->off[bi] = 0;
        ++chain->blk[bi];
        need_new_deps = true;
      }
      if (chain->out_off == elems) {
        chain->out_off = 0;
        ++chain->out_blk;
        need_new_deps = true;
      }
    }
    if (!finished) {
      // The step ended on a block boundary; if that boundary was the
      // last input draining while the final output block filled, the
      // merge is complete and no further step exists.
      finished = true;
      for (std::size_t i = 0; i < chain->inputs.size(); ++i) {
        if (chain->blk[i] < chain->inputs[i].size()) {
          finished = false;
          break;
        }
      }
    }
    if (finished) {
      HMR_CHECK_MSG(chain->out_blk == chain->output.size() &&
                        chain->out_off == 0,
                    "merge ended before filling its output run");
      chain->done->contribute(1);
    } else {
      // Charm-style self-chaining with data-dependent dependences.
      launch_step(chain);
    }
  });
}

void OocSort::run() {
  auto sum = [](const int& a, const int& b) { return a + b; };

  // Phase 0: sort every block in place.
  for (const auto& run : runs_) {
    const auto id = run.front();
    rt_->send_prefetch(
        /*pe=*/static_cast<int>(id) % rt_->num_pes(),
        {ooc::Dep{id, ooc::AccessMode::ReadWrite}}, [this, id] {
          auto* d = static_cast<double*>(rt_->block_ptr(id));
          std::sort(d, d + p_.elems_per_block);
        });
  }
  rt_->wait_idle();

  // Merge passes.
  while (runs_.size() > 1) {
    ++passes_;
    std::vector<Run> next_runs;
    std::vector<std::shared_ptr<MergeChain>> chains;
    std::size_t n_chains = 0;
    for (std::size_t g = 0; g < runs_.size();
         g += static_cast<std::size_t>(p_.fanin)) {
      const std::size_t end =
          std::min(runs_.size(), g + static_cast<std::size_t>(p_.fanin));
      if (end - g == 1) {
        next_runs.push_back(runs_[g]); // odd group passes through
        continue;
      }
      ++n_chains;
    }
    rt::Reduction<int> done(std::max<std::uint64_t>(n_chains, 1), 0, sum);
    if (n_chains == 0) {
      runs_ = std::move(next_runs);
      break;
    }

    std::vector<Run> consumed;
    int chain_idx = 0;
    for (std::size_t g = 0; g < runs_.size();
         g += static_cast<std::size_t>(p_.fanin)) {
      const std::size_t end =
          std::min(runs_.size(), g + static_cast<std::size_t>(p_.fanin));
      if (end - g == 1) continue;
      auto chain = std::make_shared<MergeChain>();
      chain->app = this;
      std::size_t total_blocks = 0;
      for (std::size_t i = g; i < end; ++i) {
        chain->inputs.push_back(runs_[i]);
        consumed.push_back(runs_[i]);
        total_blocks += runs_[i].size();
      }
      chain->blk.assign(chain->inputs.size(), 0);
      chain->off.assign(chain->inputs.size(), 0);
      chain->output.reserve(total_blocks);
      for (std::size_t b = 0; b < total_blocks; ++b) {
        chain->output.push_back(
            rt_->alloc_block(p_.elems_per_block * sizeof(double)));
      }
      chain->pe = chain_idx++ % rt_->num_pes();
      chain->done = &done;
      next_runs.push_back(chain->output);
      chains.push_back(chain);
    }
    for (auto& c : chains) launch_step(c);
    (void)done.wait();
    rt_->wait_idle(); // claims released, evictions drained
    for (const auto& run : consumed) {
      for (const auto id : run) rt_->free_block(id);
    }
    // Keep ordering stable: pass-through runs were appended in group
    // order along with merged outputs; re-sort not needed for
    // correctness (runs are independent sorted sequences).
    runs_ = std::move(next_runs);
  }
}

std::vector<double> OocSort::result() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(p_.num_blocks) * p_.elems_per_block);
  for (const auto& run : runs_) {
    for (const auto id : run) {
      const auto* d = static_cast<const double*>(rt_->block_ptr(id));
      out.insert(out.end(), d, d + p_.elems_per_block);
    }
  }
  return out;
}

bool OocSort::verify() const {
  if (runs_.size() != 1) return false;
  auto expected = input_copy_;
  std::sort(expected.begin(), expected.end());
  return result() == expected;
}

} // namespace hmr::apps
