#pragma once
// Out-of-core external merge sort on the threaded runtime.
//
// A classic out-of-core workload with a *dynamic* task graph — unlike
// the stencil/matmul/CG apps, the dependence pattern here is data
// driven: which input block a merge needs next depends on the values.
// Each merge step is one [prefetch] entry method whose body, on
// completion, sends the *next* step with freshly computed dependences
// (charm-style self-chaining), so only a bounded window of blocks
// (K inputs + 1 output) is ever resident per chain.
//
// Algorithm:
//   phase 0:  sort each block in place       [readwrite: block]
//   passes:   merge groups of K sorted runs into one run, each group a
//             chain of step tasks            [readonly: K run heads,
//                                             readwrite: output block]
//   repeat until a single run remains.  Input blocks of a finished
//   pass are released with Runtime::free_block (the slow tier holds at
//   most two generations).

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/collectives.hpp"
#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"

namespace hmr::apps {

struct SortParams {
  int num_blocks = 16;             // initial blocks (runs of length 1)
  std::uint64_t elems_per_block = 4096; // doubles per block
  int fanin = 4;                   // K-way merge
  std::uint64_t seed = 101;
};

class OocSort {
public:
  OocSort(rt::Runtime& rt, SortParams p);

  /// Run all passes to a single sorted run.
  void run();

  /// The sorted result, gathered densely (valid after run()).
  std::vector<double> result() const;

  /// Sorted + same multiset as the input (checked via sorted copy).
  bool verify() const;

  int passes_executed() const { return passes_; }
  const SortParams& params() const { return p_; }

private:
  /// A run: consecutive sorted blocks (ascending across blocks).
  using Run = std::vector<mem::BlockId>;

  struct MergeChain; // one K-way merge in progress

  void launch_step(std::shared_ptr<MergeChain> chain);

  rt::Runtime* rt_;
  SortParams p_;
  std::vector<double> input_copy_; // for verify()
  std::vector<Run> runs_;
  int passes_ = 0;
};

} // namespace hmr::apps
