#include "apps/reference.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hmr::apps {

void serial_stencil3d(std::vector<double>& grid, int nx, int ny, int nz,
                      int iterations) {
  HMR_CHECK(grid.size() ==
            static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                static_cast<std::size_t>(nz));
  std::vector<double> next(grid.size());
  auto at = [&](const std::vector<double>& g, int x, int y, int z) {
    if (x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz) {
      return 0.0; // Dirichlet boundary
    }
    return g[(static_cast<std::size_t>(z) * ny + y) * nx + x];
  };
  for (int it = 0; it < iterations; ++it) {
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
          const double v = at(grid, x, y, z) + at(grid, x - 1, y, z) +
                           at(grid, x + 1, y, z) + at(grid, x, y - 1, z) +
                           at(grid, x, y + 1, z) + at(grid, x, y, z - 1) +
                           at(grid, x, y, z + 1);
          next[(static_cast<std::size_t>(z) * ny + y) * nx + x] = v / 7.0;
        }
      }
    }
    grid.swap(next);
  }
}

void serial_matmul(const std::vector<double>& a,
                   const std::vector<double>& b, std::vector<double>& c,
                   int n) {
  const auto nn = static_cast<std::size_t>(n);
  HMR_CHECK(a.size() == nn * nn && b.size() == nn * nn);
  c.assign(nn * nn, 0.0);
  for (std::size_t i = 0; i < nn; ++i) {
    for (std::size_t k = 0; k < nn; ++k) {
      const double aik = a[i * nn + k];
      for (std::size_t j = 0; j < nn; ++j) {
        c[i * nn + j] += aik * b[k * nn + j];
      }
    }
  }
}

void fill_pattern(double* data, std::uint64_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < count; ++i) {
    data[i] = rng.uniform(-1.0, 1.0);
  }
}

} // namespace hmr::apps
