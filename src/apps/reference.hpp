#pragma once
// Serial reference kernels used to validate the chare-based
// applications numerically.

#include <cstdint>
#include <vector>

namespace hmr::apps {

/// 7-point Jacobi sweep with zero (Dirichlet) boundary: out-of-domain
/// neighbours read as 0.  Runs `iterations` sweeps over an
/// nx * ny * nz grid (x fastest).
void serial_stencil3d(std::vector<double>& grid, int nx, int ny, int nz,
                      int iterations);

/// Naive n x n x n triple-loop dgemm: C = A * B (row-major).
void serial_matmul(const std::vector<double>& a,
                   const std::vector<double>& b, std::vector<double>& c,
                   int n);

/// Deterministic pseudo-random fill used by both the apps and the
/// references so their inputs match exactly.
void fill_pattern(double* data, std::uint64_t count, std::uint64_t seed);

} // namespace hmr::apps
