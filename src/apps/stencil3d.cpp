#include "apps/stencil3d.hpp"

#include <cstring>

#include "apps/reference.hpp"
#include "util/check.hpp"

namespace hmr::apps {

namespace {
int opposite(int face) { return face ^ 1; }
} // namespace

Stencil3D::Stencil3D(rt::Runtime& rt, StencilParams p) : rt_(&rt), p_(p) {
  HMR_CHECK(p_.nx > 0 && p_.ny > 0 && p_.nz > 0);
  HMR_CHECK(p_.cx > 0 && p_.cy > 0 && p_.cz > 0);
  HMR_CHECK_MSG(p_.nx % p_.cx == 0 && p_.ny % p_.cy == 0 &&
                    p_.nz % p_.cz == 0,
                "chare grid must divide the global grid");
  sx_ = p_.nx / p_.cx;
  sy_ = p_.ny / p_.cy;
  sz_ = p_.nz / p_.cz;

  // Initial condition: one deterministic global fill, scattered to the
  // owning chares so the serial reference sees identical input.
  std::vector<double> global(static_cast<std::size_t>(p_.nx) * p_.ny *
                             p_.nz);
  fill_pattern(global.data(), global.size(), p_.seed);

  const int n_chares = p_.cx * p_.cy * p_.cz;
  cells_ = std::make_unique<rt::ChareArray<Cell>>(
      *rt_, n_chares, [&](Cell& c) {
        c.app = this;
        c.ix = c.index % p_.cx;
        c.iy = (c.index / p_.cx) % p_.cy;
        c.iz = c.index / (p_.cx * p_.cy);
        const auto vol = static_cast<std::uint64_t>(sx_) * sy_ * sz_;
        c.cur = rt::IoHandle<double>(*rt_, vol);
        c.next = rt::IoHandle<double>(*rt_, vol);
        const std::uint64_t face_elems[6] = {
            static_cast<std::uint64_t>(sy_) * sz_,
            static_cast<std::uint64_t>(sy_) * sz_,
            static_cast<std::uint64_t>(sx_) * sz_,
            static_cast<std::uint64_t>(sx_) * sz_,
            static_cast<std::uint64_t>(sx_) * sy_,
            static_cast<std::uint64_t>(sx_) * sy_};
        for (int f = 0; f < 6; ++f) {
          c.ghost[static_cast<std::size_t>(f)] =
              rt::IoHandle<double>(*rt_, face_elems[f]);
          std::memset(c.ghost[static_cast<std::size_t>(f)].data(), 0,
                      face_elems[f] * sizeof(double));
        }
        std::memset(c.next.data(), 0, vol * sizeof(double));
        // Scatter this chare's portion of the initial grid.
        double* dst = c.cur.data();
        for (int z = 0; z < sz_; ++z) {
          for (int y = 0; y < sy_; ++y) {
            const int gz = c.iz * sz_ + z;
            const int gy = c.iy * sy_ + y;
            const int gx0 = c.ix * sx_;
            std::memcpy(
                dst + (static_cast<std::size_t>(z) * sy_ + y) * sx_,
                global.data() +
                    (static_cast<std::size_t>(gz) * p_.ny + gy) * p_.nx +
                    gx0,
                static_cast<std::size_t>(sx_) * sizeof(double));
          }
        }
      });

  kExchange_ = cells_->register_entry(
      "exchange", /*prefetch=*/true,
      [this](Cell& c) { do_exchange(c); },
      [this](Cell& c) { return exchange_deps(c); },
      /*work_factor=*/1.0);
  kUpdate_ = cells_->register_entry(
      "update", /*prefetch=*/true, [this](Cell& c) { do_update(c); },
      [this](Cell& c) { return update_deps(c); },
      /*work_factor=*/2.0);
}

rt::Runtime::DepList Stencil3D::exchange_deps(Cell& c) {
  rt::Runtime::DepList deps;
  deps.push_back(c.cur.dep(ooc::AccessMode::ReadOnly));
  const int dx[6] = {-1, 1, 0, 0, 0, 0};
  const int dy[6] = {0, 0, -1, 1, 0, 0};
  const int dz[6] = {0, 0, 0, 0, -1, 1};
  for (int f = 0; f < 6; ++f) {
    const int nix = c.ix + dx[f], niy = c.iy + dy[f], niz = c.iz + dz[f];
    if (!in_grid(nix, niy, niz)) continue;
    Cell& nb = (*cells_)[chare_at(nix, niy, niz)];
    deps.push_back(nb.ghost[static_cast<std::size_t>(opposite(f))].dep(
        ooc::AccessMode::WriteOnly));
  }
  return deps;
}

rt::Runtime::DepList Stencil3D::update_deps(Cell& c) {
  rt::Runtime::DepList deps;
  deps.push_back(c.cur.dep(ooc::AccessMode::ReadOnly));
  deps.push_back(c.next.dep(ooc::AccessMode::WriteOnly));
  for (auto& g : c.ghost) deps.push_back(g.dep(ooc::AccessMode::ReadOnly));
  return deps;
}

void Stencil3D::do_exchange(Cell& c) {
  const double* cur = c.cur.data();
  auto at = [&](int x, int y, int z) {
    return cur[(static_cast<std::size_t>(z) * sy_ + y) * sx_ + x];
  };
  const int dx[6] = {-1, 1, 0, 0, 0, 0};
  const int dy[6] = {0, 0, -1, 1, 0, 0};
  const int dz[6] = {0, 0, 0, 0, -1, 1};
  for (int f = 0; f < 6; ++f) {
    const int nix = c.ix + dx[f], niy = c.iy + dy[f], niz = c.iz + dz[f];
    if (!in_grid(nix, niy, niz)) continue;
    Cell& nb = (*cells_)[chare_at(nix, niy, niz)];
    double* g = nb.ghost[static_cast<std::size_t>(opposite(f))].data();
    switch (f) {
      case 0: // my x=0 plane -> left neighbour's +x ghost
      case 1: {
        const int x = (f == 0) ? 0 : sx_ - 1;
        for (int z = 0; z < sz_; ++z) {
          for (int y = 0; y < sy_; ++y) {
            g[static_cast<std::size_t>(z) * sy_ + y] = at(x, y, z);
          }
        }
        break;
      }
      case 2:
      case 3: {
        const int y = (f == 2) ? 0 : sy_ - 1;
        for (int z = 0; z < sz_; ++z) {
          for (int x = 0; x < sx_; ++x) {
            g[static_cast<std::size_t>(z) * sx_ + x] = at(x, y, z);
          }
        }
        break;
      }
      default: {
        const int z = (f == 4) ? 0 : sz_ - 1;
        for (int y = 0; y < sy_; ++y) {
          for (int x = 0; x < sx_; ++x) {
            g[static_cast<std::size_t>(y) * sx_ + x] = at(x, y, z);
          }
        }
        break;
      }
    }
  }
}

void Stencil3D::do_update(Cell& c) {
  const double* cur = c.cur.data();
  double* out = c.next.data();
  const double* gxm = c.ghost[0].data();
  const double* gxp = c.ghost[1].data();
  const double* gym = c.ghost[2].data();
  const double* gyp = c.ghost[3].data();
  const double* gzm = c.ghost[4].data();
  const double* gzp = c.ghost[5].data();
  auto at = [&](int x, int y, int z) {
    return cur[(static_cast<std::size_t>(z) * sy_ + y) * sx_ + x];
  };
  for (int z = 0; z < sz_; ++z) {
    for (int y = 0; y < sy_; ++y) {
      for (int x = 0; x < sx_; ++x) {
        const double xm =
            x > 0 ? at(x - 1, y, z)
                  : gxm[static_cast<std::size_t>(z) * sy_ + y];
        const double xp =
            x < sx_ - 1 ? at(x + 1, y, z)
                        : gxp[static_cast<std::size_t>(z) * sy_ + y];
        const double ym =
            y > 0 ? at(x, y - 1, z)
                  : gym[static_cast<std::size_t>(z) * sx_ + x];
        const double yp =
            y < sy_ - 1 ? at(x, y + 1, z)
                        : gyp[static_cast<std::size_t>(z) * sx_ + x];
        const double zm =
            z > 0 ? at(x, y, z - 1)
                  : gzm[static_cast<std::size_t>(y) * sx_ + x];
        const double zp =
            z < sz_ - 1 ? at(x, y, z + 1)
                        : gzp[static_cast<std::size_t>(y) * sx_ + x];
        out[(static_cast<std::size_t>(z) * sy_ + y) * sx_ + x] =
            (at(x, y, z) + xm + xp + ym + yp + zm + zp) / 7.0;
      }
    }
  }
}

void Stencil3D::step() {
  cells_->broadcast(kExchange_);
  rt_->wait_idle();
  cells_->broadcast(kUpdate_);
  rt_->wait_idle();
  for (int i = 0; i < cells_->size(); ++i) {
    Cell& c = (*cells_)[i];
    std::swap(c.cur, c.next);
  }
}

void Stencil3D::run() {
  for (int it = 0; it < p_.iterations; ++it) step();
}

std::vector<double> Stencil3D::gather() const {
  std::vector<double> out(static_cast<std::size_t>(p_.nx) * p_.ny * p_.nz);
  for (int i = 0; i < cells_->size(); ++i) {
    const Cell& c = (*cells_)[i];
    const double* src = c.cur.data();
    for (int z = 0; z < sz_; ++z) {
      for (int y = 0; y < sy_; ++y) {
        const int gz = c.iz * sz_ + z;
        const int gy = c.iy * sy_ + y;
        const int gx0 = c.ix * sx_;
        std::memcpy(out.data() +
                        (static_cast<std::size_t>(gz) * p_.ny + gy) * p_.nx +
                        gx0,
                    src + (static_cast<std::size_t>(z) * sy_ + y) * sx_,
                    static_cast<std::size_t>(sx_) * sizeof(double));
      }
    }
  }
  return out;
}

double Stencil3D::checksum() const {
  double sum = 0;
  for (double v : gather()) sum += v;
  return sum;
}

} // namespace hmr::apps
