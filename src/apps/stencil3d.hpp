#pragma once
// Stencil3D on the threaded runtime: the paper's first benchmark as a
// real chare application (paper §V-A, Algorithm 2).
//
// The global nx * ny * nz grid of doubles is decomposed into a
// cx * cy * cz grid of chares.  Each chare owns two interior blocks
// (current and next, swapped every iteration) and six ghost-face
// receive buffers — all IoHandles, i.e. migratable blocks the runtime
// may park in the slow tier between uses.
//
// One iteration is two waves of [prefetch] entry methods:
//   1. exchange — each chare copies its six boundary faces into its
//      neighbours' ghost buffers
//      (deps: own current readonly, neighbour ghosts writeonly);
//   2. update — 7-point Jacobi sweep from current + ghosts into next
//      (deps: current readonly, ghosts readonly, next writeonly).
// Zero Dirichlet boundary (missing neighbours read as 0), matching the
// serial reference in apps/reference.hpp, which the tests compare
// against bit-for-bit.

#include <array>
#include <memory>
#include <vector>

#include "rt/chare.hpp"
#include "rt/io_handle.hpp"
#include "rt/runtime.hpp"

namespace hmr::apps {

struct StencilParams {
  int nx = 32, ny = 32, nz = 32; // global grid (doubles)
  int cx = 2, cy = 2, cz = 2;    // chare decomposition
  int iterations = 4;
  std::uint64_t seed = 1;        // initial grid fill
};

class Stencil3D {
public:
  /// Face order used throughout: 0:-x 1:+x 2:-y 3:+y 4:-z 5:+z.
  struct Cell : rt::Chare {
    int ix = 0, iy = 0, iz = 0; // chare coordinates
    rt::IoHandle<double> cur;
    rt::IoHandle<double> next;
    std::array<rt::IoHandle<double>, 6> ghost;
    Stencil3D* app = nullptr;
  };

  Stencil3D(rt::Runtime& rt, StencilParams p);

  /// Run all iterations (exchange wave, update wave, swap) to
  /// completion.
  void run();

  /// Run a single iteration (for step-by-step tests).
  void step();

  /// Copy the distributed grid into a dense vector (x fastest).
  std::vector<double> gather() const;

  /// Sum of all grid cells.
  double checksum() const;

  const StencilParams& params() const { return p_; }
  int local_nx() const { return sx_; }
  int local_ny() const { return sy_; }
  int local_nz() const { return sz_; }

private:
  int chare_at(int ix, int iy, int iz) const {
    return (iz * p_.cy + iy) * p_.cx + ix;
  }
  bool in_grid(int ix, int iy, int iz) const {
    return ix >= 0 && ix < p_.cx && iy >= 0 && iy < p_.cy && iz >= 0 &&
           iz < p_.cz;
  }

  void do_exchange(Cell& c);
  void do_update(Cell& c);
  rt::Runtime::DepList exchange_deps(Cell& c);
  rt::Runtime::DepList update_deps(Cell& c);

  rt::Runtime* rt_;
  StencilParams p_;
  int sx_ = 0, sy_ = 0, sz_ = 0; // local block dims
  std::unique_ptr<rt::ChareArray<Cell>> cells_;
  std::size_t kExchange_ = 0;
  std::size_t kUpdate_ = 0;
};

} // namespace hmr::apps
