#include "cluster/block_store.hpp"

#include "util/check.hpp"

namespace hmr::cluster {

BlockStore::BlockStore(Config cfg)
    : node_(cfg.node), ex_(std::move(cfg.sim)) {}

const sim::SimResult& BlockStore::run(const sim::Workload& w) {
  HMR_CHECK_MSG(!ran_, "a BlockStore runs one workload");
  result_ = ex_.run(w);
  ran_ = true;
  return result_;
}

const sim::SimResult& BlockStore::result() const {
  HMR_CHECK_MSG(ran_, "BlockStore::result before run");
  return result_;
}

std::uint64_t BlockStore::local_resident_bytes() const {
  HMR_CHECK_MSG(ran_, "residency is read at quiescence, after run");
  const ooc::PolicyEngine& e = engine();
  std::uint64_t sum = 0;
  for (std::int32_t k = 0; k < e.num_levels(); ++k) {
    if (e.tiers()[static_cast<std::size_t>(k)].backend ==
        ooc::TierBackendKind::LocalArena) {
      sum += e.tier_used(k);
    }
  }
  return sum;
}

std::uint64_t BlockStore::remote_resident_bytes() const {
  HMR_CHECK_MSG(ran_, "residency is read at quiescence, after run");
  const ooc::PolicyEngine& e = engine();
  std::uint64_t sum = 0;
  for (std::int32_t k = 0; k < e.num_levels(); ++k) {
    if (e.tiers()[static_cast<std::size_t>(k)].backend ==
        ooc::TierBackendKind::Remote) {
      sum += e.tier_used(k);
    }
  }
  return sum;
}

} // namespace hmr::cluster
