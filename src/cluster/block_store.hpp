#pragma once
// BlockStore: the cluster's per-node storage/execution role (the
// "fst" to the PlacementCoordinator's "mgm").  One BlockStore owns one
// node's full single-node discrete-event simulation — PolicyEngine,
// tier hierarchy (local arenas plus, on disaggregated clusters, the
// Remote-backed pool level), IO agents, transfer channels — and
// exposes the engine's ground-truth residency and remote-traffic
// counters so the coordinator can byte-reconcile its ledgers against
// what the node actually did.

#include <cstdint>

#include "cluster/coordinator.hpp"
#include "sim/sim_executor.hpp"
#include "sim/workload.hpp"

namespace hmr::cluster {

class BlockStore {
public:
  struct Config {
    NodeId node = 0;
    /// Full per-node DES configuration (model, strategy, hierarchy —
    /// including any Remote tier appended by sim::add_remote_tier).
    sim::SimConfig sim;
  };

  explicit BlockStore(Config cfg);

  /// Run the node's workload to quiescence (once per instance).
  const sim::SimResult& run(const sim::Workload& w);

  NodeId node() const { return node_; }
  bool ran() const { return ran_; }
  const sim::SimResult& result() const;
  const sim::SimExecutor& executor() const { return ex_; }
  const ooc::PolicyEngine& engine() const { return ex_.engine(); }

  /// Engine ground truth at quiescence: bytes resident on the node's
  /// local (arena-backed) levels / on Remote-backed levels.  These are
  /// what PlacementCoordinator::reconcile checks its ledger against.
  std::uint64_t local_resident_bytes() const;
  std::uint64_t remote_resident_bytes() const;

private:
  NodeId node_;
  sim::SimExecutor ex_;
  sim::SimResult result_;
  bool ran_ = false;
};

} // namespace hmr::cluster
