#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/stencil_workload.hpp"
#include "util/check.hpp"

namespace hmr::cluster {

namespace {

/// A node's workload: the shared stencil generator with the
/// coordinator's homing decisions stamped onto the block table.
class PlacedWorkload final : public sim::Workload {
public:
  explicit PlacedWorkload(sim::StencilWorkload base)
      : base_(std::move(base)), blocks_(base_.blocks()) {}

  void set_home(std::size_t i, std::int32_t level) {
    blocks_.at(i).home_level = level;
  }

  std::string name() const override { return base_.name(); }
  int iterations() const override { return base_.iterations(); }
  const std::vector<sim::BlockSpec>& blocks() const override {
    return blocks_;
  }
  std::vector<ooc::TaskDesc> iteration_tasks(int iter) const override {
    return base_.iteration_tasks(iter);
  }

private:
  sim::StencilWorkload base_;
  std::vector<sim::BlockSpec> blocks_;
};

/// Nodes with equal byte shares are statistically identical, so they
/// share one BlockStore run (weak scaling: one group; strong scaling
/// with a remainder: two).
struct Group {
  std::uint64_t share = 0;
  std::vector<NodeId> members;
  std::unique_ptr<PlacedWorkload> w;
  std::unique_ptr<BlockStore> bs;
  std::vector<double> iter_s;   // per-iteration local time
  double mean_iter_s = 0;
  std::uint64_t halo = 0;       // halo bytes per iteration
  double halo_dur = 0;          // full exchange: latency chain + serialize
  std::uint64_t halo_msgs = 0;  // network messages per exchange
};

ObjectId object_id(NodeId n, std::size_t block) {
  return (static_cast<ObjectId>(static_cast<std::uint32_t>(n)) << 32) |
         static_cast<ObjectId>(block);
}

} // namespace

ClusterSim::ClusterSim(ClusterConfig cfg)
    : cfg_(std::move(cfg)), tracer_(cfg_.trace) {}

ClusterRunResult ClusterSim::run() {
  HMR_CHECK_MSG(!ran_, "a ClusterSim runs once");
  ran_ = true;
  HMR_CHECK(cfg_.nodes >= 1 && cfg_.iterations >= 1);
  const bool remote = cfg_.remote_tier || cfg_.all_remote;
  HMR_CHECK_MSG(cfg_.node_local_capacity == 0 || remote,
                "capping the local home budget needs the remote pool");
  HMR_CHECK_MSG(!remote || cfg_.all_remote ||
                    ooc::strategy_moves_data(cfg_.strategy),
                "a disaggregated cluster needs a movement strategy "
                "(the coordinator homes objects; only the engine's "
                "fetch/demote protocol can move them afterwards)");

  const int N = cfg_.nodes;
  result_.nodes = N;

  // Per-node byte shares (strong scaling: node 0 takes the remainder).
  std::vector<std::uint64_t> shares(static_cast<std::size_t>(N));
  if (cfg_.total_bytes > 0) {
    const std::uint64_t each =
        cfg_.total_bytes / static_cast<std::uint64_t>(N);
    const std::uint64_t rem =
        cfg_.total_bytes % static_cast<std::uint64_t>(N);
    for (int n = 0; n < N; ++n) {
      shares[static_cast<std::size_t>(n)] = each + (n == 0 ? rem : 0);
    }
  } else {
    for (auto& s : shares) s = cfg_.bytes_per_node;
  }
  for (const auto s : shares) {
    HMR_CHECK_MSG(s > 0, "a node needs a nonzero sub-domain");
  }

  // Node model and placement hierarchy.
  hw::MachineModel m = cfg_.node;
  std::vector<ooc::TierDesc> tiers; // empty = derive from model
  std::int32_t home = -1;           // lowest local level (local homes)
  std::uint64_t home_capacity = 0;  // its byte budget (placement ledger)
  if (remote) {
    sim::add_remote_tier(m, cfg_.net);
    tiers = sim::tiers_with_remote(m, cfg_.net);
    for (std::size_t k = 0; k < tiers.size(); ++k) {
      if (tiers[k].backend == ooc::TierBackendKind::LocalArena) {
        home = static_cast<std::int32_t>(k);
      }
    }
    HMR_CHECK_MSG(home >= 1,
                  "a disaggregated node needs a middle local level to "
                  "home objects on (level 0 is the prefetch budget)");
    if (cfg_.node_local_capacity > 0) {
      tiers[static_cast<std::size_t>(home)].capacity =
          cfg_.node_local_capacity;
    }
    home_capacity = tiers[static_cast<std::size_t>(home)].capacity;
  }

  PlacementCoordinator::Config ccfg;
  ccfg.nodes = N;
  ccfg.node_capacity = remote ? home_capacity : 0;
  ccfg.allow_remote = remote;
  ccfg.all_remote = cfg_.all_remote;
  coord_ = std::make_unique<PlacementCoordinator>(ccfg);

  // Group nodes by share and build each group's workload.
  std::vector<Group> groups;
  std::vector<std::size_t> group_of(static_cast<std::size_t>(N));
  for (int n = 0; n < N; ++n) {
    const std::uint64_t s = shares[static_cast<std::size_t>(n)];
    std::size_t g = groups.size();
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].share == s) { g = i; break; }
    }
    if (g == groups.size()) {
      Group grp;
      grp.share = s;
      const auto wp = sim::StencilWorkload::params_for_reduced(
          s, cfg_.reduced_bytes, cfg_.node.num_pes, cfg_.iterations);
      grp.w = std::make_unique<PlacedWorkload>(sim::StencilWorkload(wp));
      if (N > 1) {
        grp.halo = sim::halo_bytes(s);
        grp.halo_dur = sim::halo_time(cfg_.net, grp.halo);
        grp.halo_msgs =
            std::max<std::uint64_t>(6, cfg_.net.messages(grp.halo));
      }
      groups.push_back(std::move(grp));
    }
    group_of[static_cast<std::size_t>(n)] = g;
  }

  // Object placement: every node's blocks go through the coordinator
  // (sub-domain affinity pins ownership).  The group representative's
  // decisions are stamped onto the shared workload — identical shares
  // against identical budgets place identically.
  for (int n = 0; n < N; ++n) {
    Group& g = groups[group_of[static_cast<std::size_t>(n)]];
    const bool rep = g.members.empty();
    const auto& blocks = g.w->blocks();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const auto p = coord_->place(object_id(n, i), blocks[i].bytes, n);
      if (p.remote) {
        ++result_.placements_remote;
      } else {
        ++result_.placements_local;
      }
      // Local homes sit on the lowest local level; remote homes keep
      // the strategy default (the unbounded Remote bottom).
      if (rep && remote && !p.remote) g.w->set_home(i, home);
    }
    g.members.push_back(n);
  }

  // Per-node DES: one BlockStore per group.  Group registries live
  // only for the run; the federation keeps value snapshots.
  std::vector<std::unique_ptr<telemetry::MetricsRegistry>> regs;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    Group& g = groups[gi];
    BlockStore::Config bcfg;
    bcfg.node = g.members.front();
    bcfg.sim.model = m;
    bcfg.sim.strategy =
        cfg_.all_remote ? ooc::Strategy::DdrOnly : cfg_.strategy;
    bcfg.sim.tiers = tiers;
    if (cfg_.metrics) {
      regs.push_back(std::make_unique<telemetry::MetricsRegistry>());
      bcfg.sim.metrics = regs.back().get();
      bcfg.sim.history_depth = 0; // the federation snapshots instead
    }
    g.bs = std::make_unique<BlockStore>(std::move(bcfg));
    const sim::SimResult& r = g.bs->run(*g.w);
    g.iter_s = r.iteration_times;
    HMR_CHECK(static_cast<int>(g.iter_s.size()) == cfg_.iterations);
    g.mean_iter_s = r.total_time / static_cast<double>(cfg_.iterations);
    if (cfg_.metrics) {
      const std::string name =
          "node" + std::to_string(g.members.front());
      const auto weight =
          static_cast<std::uint64_t>(g.members.size());
      fed_.add(name, regs.back()->snapshot(), weight);
      if (const auto* at = g.bs->executor().attribution()) {
        attribs_.push_back({name, weight, at->rollup()});
      }
    }
  }

  // Reconcile the coordinator's ledgers against every node engine's
  // ground truth, then audit ledger conservation.
  for (int n = 0; n < N; ++n) {
    const Group& g = groups[group_of[static_cast<std::size_t>(n)]];
    const auto& st = g.bs->result().policy;
    coord_->record_promotions(n, st.remote_fetches, st.remote_fetch_bytes);
    coord_->record_spills(n, st.remote_evicts, st.remote_evict_bytes);
    const auto v = coord_->reconcile(n, g.bs->local_resident_bytes(),
                                     g.bs->remote_resident_bytes());
    result_.audit.insert(result_.audit.end(), v.begin(), v.end());

    NodeStats ns;
    ns.node = n;
    ns.bytes = shares[static_cast<std::size_t>(n)];
    ns.local_iteration_s = g.mean_iter_s;
    ns.remote_messages = g.bs->result().remote_messages;
    ns.policy = st;
    result_.node_stats.push_back(ns);
    result_.remote_messages += ns.remote_messages;
    result_.remote_fetches += st.remote_fetches;
    result_.remote_fetch_bytes += st.remote_fetch_bytes;
    result_.remote_evicts += st.remote_evicts;
    result_.remote_evict_bytes += st.remote_evict_bytes;
  }
  {
    const auto v = coord_->audit();
    result_.audit.insert(result_.audit.end(), v.begin(), v.end());
    for (int n = 0; n < N; ++n) {
      result_.ledgers.push_back(coord_->node(n));
    }
  }

  // Critical-path decomposition for the classic weak-scaling report.
  for (const Group& g : groups) {
    result_.node_iteration_s =
        std::max(result_.node_iteration_s, g.mean_iter_s);
    result_.halo_bytes_per_node =
        std::max(result_.halo_bytes_per_node, g.halo);
  }
  result_.halo_s =
      N > 1 ? sim::halo_time(cfg_.net, result_.halo_bytes_per_node) : 0.0;
  result_.iteration_s = result_.node_iteration_s + result_.halo_s;
  result_.comm_fraction =
      result_.iteration_s > 0 ? result_.halo_s / result_.iteration_s : 0.0;

  if (N == 1) {
    // Degenerate cluster: the node DES *is* the cluster (and must be
    // byte-identical to a standalone single-node simulation).
    result_.total_s = groups.front().bs->result().total_time;
    return result_;
  }

  // Cluster DES: nodes compute, inject halos, and advance in a ring
  // dependence — node n starts iteration i+1 only when its own halo
  // for i is injected and both ring neighbours' halos for i arrived.
  struct NodeState {
    int iter = 0;
    bool compute_done = false;
    bool halo_sent = false;
    std::vector<int> recv; // neighbour halos received, per iteration
    bool finished = false;
  };
  std::vector<NodeState> ns(static_cast<std::size_t>(N));
  for (auto& s : ns) s.recv.assign(static_cast<std::size_t>(cfg_.iterations), 0);

  auto neighbours = [N](int n) {
    std::vector<int> v;
    const int l = (n - 1 + N) % N;
    const int r = (n + 1) % N;
    if (l != n) v.push_back(l);
    if (r != n && r != l) v.push_back(r);
    return v;
  };

  sim::EventQueue eq;
  double now = 0;
  double end = 0;

  std::function<void(int)> start_iter;
  std::function<void(int)> compute_done;
  std::function<void(int)> halo_done;
  std::function<void(int)> try_advance;

  start_iter = [&](int n) {
    NodeState& s = ns[static_cast<std::size_t>(n)];
    const Group& g = groups[group_of[static_cast<std::size_t>(n)]];
    const double L = g.iter_s[static_cast<std::size_t>(s.iter)];
    if (cfg_.trace) {
      tracer_.record(n, trace::Category::Compute, now, now + L,
                     static_cast<std::uint64_t>(s.iter) + 1);
    }
    eq.at(now + L, [&, n] { compute_done(n); });
  };

  compute_done = [&](int n) {
    NodeState& s = ns[static_cast<std::size_t>(n)];
    const Group& g = groups[group_of[static_cast<std::size_t>(n)]];
    s.compute_done = true;
    result_.halo_messages += g.halo_msgs;
    if (cfg_.trace) {
      tracer_.record_migration(n, trace::Category::Prefetch, now,
                               now + g.halo_dur,
                               static_cast<std::uint64_t>(s.iter) + 1, 0, 0,
                               g.halo);
    }
    eq.at(now + g.halo_dur, [&, n] { halo_done(n); });
  };

  halo_done = [&](int n) {
    NodeState& s = ns[static_cast<std::size_t>(n)];
    s.halo_sent = true;
    for (const int nb : neighbours(n)) {
      ++ns[static_cast<std::size_t>(nb)].recv[static_cast<std::size_t>(s.iter)];
      try_advance(nb);
    }
    try_advance(n);
  };

  try_advance = [&](int n) {
    NodeState& s = ns[static_cast<std::size_t>(n)];
    if (s.finished || !s.compute_done || !s.halo_sent) return;
    const int need = static_cast<int>(neighbours(n).size());
    if (s.recv[static_cast<std::size_t>(s.iter)] < need) return;
    ++s.iter;
    s.compute_done = false;
    s.halo_sent = false;
    if (s.iter >= cfg_.iterations) {
      s.finished = true;
      end = std::max(end, now);
      return;
    }
    start_iter(n);
  };

  for (int n = 0; n < N; ++n) {
    eq.at(0.0, [&, n] { start_iter(n); });
  }
  while (!eq.empty()) {
    auto ev = eq.pop();
    now = ev.first;
    ev.second();
  }
  for (const auto& s : ns) {
    HMR_CHECK_MSG(s.finished, "cluster DES wedged: a node never reached "
                              "its final iteration");
  }
  if (cfg_.trace) tracer_.fill_idle(0.0, end);
  result_.total_s = end;
  return result_;
}

const PlacementCoordinator& ClusterSim::coordinator() const {
  HMR_CHECK_MSG(coord_ != nullptr, "coordinator exists after run()");
  return *coord_;
}

std::string ClusterSim::to_json() const {
  HMR_CHECK_MSG(ran_, "to_json after run()");
  std::ostringstream os;
  os << "{\"nodes\":" << result_.nodes << ",\"iteration_s\":"
     << result_.iteration_s << ",\"halo_s\":" << result_.halo_s
     << ",\"comm_fraction\":" << result_.comm_fraction
     << ",\"total_s\":" << result_.total_s
     << ",\"halo_messages\":" << result_.halo_messages
     << ",\"remote_messages\":" << result_.remote_messages
     << ",\"remote_fetch_bytes\":" << result_.remote_fetch_bytes
     << ",\"remote_evict_bytes\":" << result_.remote_evict_bytes
     << ",\"placements_local\":" << result_.placements_local
     << ",\"placements_remote\":" << result_.placements_remote
     << ",\"audit_violations\":" << result_.audit.size()
     << ",\"coordinator\":" << coord_->to_json() << "}";
  return os.str();
}

std::string ClusterSim::metrics_json() const {
  HMR_CHECK_MSG(ran_, "metrics_json after run()");
  HMR_CHECK_MSG(cfg_.metrics,
                "metrics_json needs ClusterConfig::metrics");
  std::ostringstream os;
  fed_.write_json(os);
  return os.str();
}

std::string ClusterSim::attrib_json() const {
  HMR_CHECK_MSG(ran_, "attrib_json after run()");
  HMR_CHECK_MSG(cfg_.metrics,
                "attrib_json needs ClusterConfig::metrics");
  std::ostringstream os;
  std::uint64_t total = 0;
  for (const auto& a : attribs_) total += a.weight;
  os << "{\"total_nodes\":" << total << ",\"nodes\":[";
  for (std::size_t i = 0; i < attribs_.size(); ++i) {
    if (i) os << ",";
    const NodeAttrib& a = attribs_[i];
    os << "{\"node\":\"";
    telemetry::json_escape(os, a.name);
    os << "\",\"weight\":" << a.weight << ",\"attrib\":";
    telemetry::AttributionTable::write_rollup_json(os, a.roll);
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

sim::ClusterResult ClusterRunResult::summary() const {
  sim::ClusterResult s;
  s.nodes = nodes;
  s.node_iteration_s = node_iteration_s;
  s.halo_s = halo_s;
  s.iteration_s = iteration_s;
  s.total_s = total_s;
  s.comm_fraction = comm_fraction;
  s.halo_bytes_per_node = halo_bytes_per_node;
  return s;
}

} // namespace hmr::cluster

namespace hmr::sim {

// Source-compatible fronts for the classic weak-scaling API, now
// backed by the genuine multi-node simulation (declared in
// sim/cluster.hpp, defined here so hmr_sim does not depend on
// hmr_cluster).

ClusterResult run_cluster(const ClusterParams& p) {
  cluster::ClusterConfig c;
  c.node = p.node;
  c.net = p.net;
  c.nodes = p.nodes;
  c.bytes_per_node = p.bytes_per_node;
  c.reduced_bytes = p.reduced_bytes;
  c.iterations = p.iterations;
  c.strategy = p.strategy;
  cluster::ClusterSim sim(std::move(c));
  return sim.run().summary();
}

std::vector<ClusterResult> weak_scaling_sweep(const ClusterParams& base,
                                              const std::vector<int>& nodes) {
  std::vector<ClusterResult> out;
  out.reserve(nodes.size());
  for (const int n : nodes) {
    ClusterParams p = base;
    p.nodes = n;
    out.push_back(run_cluster(p));
  }
  return out;
}

} // namespace hmr::sim
