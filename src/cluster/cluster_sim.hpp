#pragma once
// ClusterSim: a genuine multi-node discrete-event simulation built
// from the single-node DES (paper §VI: "comparisons ... in multi-node
// cluster settings").
//
// Architecture (docs/CLUSTER.md):
//   * a PlacementCoordinator (mgm role) places every data object —
//     node ownership plus local-pool vs disaggregated-remote-pool
//     homing under per-node capacity ledgers;
//   * per-node BlockStores (fst role) run the node-local work as the
//     full single-node DES, with the coordinator's homes threaded in
//     through sim::BlockSpec::home_level and the remote pool appearing
//     as a Remote-backed bottom hierarchy level (spill-to-remote and
//     promote-on-access then fall out of the engine's existing
//     demotion cascade and promote-to-top fetch protocol);
//   * a cluster-level event queue advances the iteration protocol:
//     each node computes, injects its halo onto the network (six face
//     messages: latency chain + serialization, message-rate-limited
//     for small faces), and starts the next iteration only when its
//     own halo is out and both ring neighbours' halos for the current
//     iteration have arrived.  Node skew therefore propagates one hop
//     per iteration instead of being averaged away analytically.
//
// After the run the coordinator's ledgers are reconciled against every
// node engine's ground-truth residency (placement bytes + promoted -
// spilled must equal what the node actually holds locally);
// ClusterRunResult::audit carries any violation, and CI gates on it
// staying empty.
//
// Identical nodes run one shared BlockStore per distinct per-node
// byte share (weak scaling: one; strong scaling with a remainder:
// two), so sweeping 512 nodes costs two node simulations, not 512.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/block_store.hpp"
#include "cluster/coordinator.hpp"
#include "sim/cluster.hpp"
#include "telemetry/attrib.hpp"
#include "telemetry/federate.hpp"
#include "trace/tracer.hpp"

namespace hmr::cluster {

struct ClusterConfig {
  hw::MachineModel node = hw::knl_flat_all_to_all();
  sim::NetworkModel net;
  int nodes = 8;
  /// Per-node working set (weak scaling keeps this constant).
  std::uint64_t bytes_per_node = 32ull << 30;
  /// Strong scaling: nonzero fixes the *global* working set, split
  /// evenly across nodes (node 0 takes the remainder).  Overrides
  /// bytes_per_node.
  std::uint64_t total_bytes = 0;
  std::uint64_t reduced_bytes = 2ull << 30;
  int iterations = 5;
  ooc::Strategy strategy = ooc::Strategy::MultiIo;

  /// Append the disaggregated remote pool (sim::add_remote_tier) to
  /// every node's hierarchy and let the coordinator home over-budget
  /// objects there.
  bool remote_tier = false;
  /// Local home budget per node in bytes — caps the lowest local
  /// hierarchy level so part of the working set must home remotely
  /// (0 = the model's own capacity, nothing spills at placement).
  /// Requires remote_tier.
  std::uint64_t node_local_capacity = 0;
  /// Ablation: home every object on the remote pool and never move it
  /// (ooc::Strategy::DdrOnly against the remote-augmented model) — the
  /// naive all-remote baseline the placement cascade must beat.
  bool all_remote = false;

  /// Record cluster-level lanes (lane n = node n: Compute bars and
  /// halo-injection Prefetch bars), readable via ClusterSim::tracer.
  bool trace = false;

  /// Give every share-group's node DES its own MetricsRegistry and
  /// stall-attribution table, and fold the per-node snapshots into a
  /// telemetry::Federation after the run (one snapshot per group,
  /// weighted by the nodes it stands for).  Read them back via
  /// federation() / metrics_json() / attrib_json() — the payloads of
  /// the /cluster/metrics and /cluster/attrib status routes.
  bool metrics = false;
};

/// Per-node outcome (nodes sharing a BlockStore report equal values).
struct NodeStats {
  NodeId node = 0;
  std::uint64_t bytes = 0; // per-node working set share
  double local_iteration_s = 0;
  std::uint64_t remote_messages = 0; // pool migrations, network msgs
  ooc::PolicyEngine::Stats policy;
};

struct ClusterRunResult {
  int nodes = 0;
  // Classic weak-scaling decomposition (node critical path).
  double node_iteration_s = 0;
  double halo_s = 0;
  double iteration_s = 0; // node_iteration_s + halo_s
  double comm_fraction = 0;
  /// Cluster DES end time (== the per-node DES total on one node; on
  /// heterogeneous shares skew pipelining makes it less than
  /// iteration_s * iterations).
  double total_s = 0;
  std::uint64_t halo_bytes_per_node = 0; // critical (largest) share

  // Deterministic counters (CI gates on them byte-for-byte).
  std::uint64_t halo_messages = 0;   // cluster DES network messages
  std::uint64_t remote_messages = 0; // pool-migration network messages
  std::uint64_t remote_fetches = 0, remote_fetch_bytes = 0;
  std::uint64_t remote_evicts = 0, remote_evict_bytes = 0;
  std::uint64_t placements_local = 0, placements_remote = 0;

  std::vector<NodeStats> node_stats;
  std::vector<NodeLedger> ledgers;
  /// Coordinator-ledger / engine-residency conservation violations
  /// (empty = every byte accounted for).
  std::vector<std::string> audit;

  /// The classic sim::ClusterResult view (run_cluster's return shape).
  sim::ClusterResult summary() const;
};

class ClusterSim {
public:
  explicit ClusterSim(ClusterConfig cfg);

  /// Run placement, the per-node DESs and the cluster DES to
  /// completion (once per instance).
  ClusterRunResult run();

  /// Valid after run().
  const PlacementCoordinator& coordinator() const;
  /// Cluster-level lanes when ClusterConfig::trace was set.
  const trace::Tracer& tracer() const { return tracer_; }
  /// JSON for the StatusServer /cluster route: coordinator ledgers
  /// plus the run's deterministic counters.
  std::string to_json() const;

  /// Federated per-node metrics (empty unless ClusterConfig::metrics).
  const telemetry::Federation& federation() const { return fed_; }
  /// The /cluster/metrics payload: per-group node snapshots plus the
  /// weighted aggregate (telemetry::Federation::write_json).
  std::string metrics_json() const;
  /// The /cluster/attrib payload: each group's stall-attribution
  /// rollup, weighted by the nodes it stands for.
  std::string attrib_json() const;

private:
  /// One share-group's attribution rollup (stands for `weight` nodes).
  struct NodeAttrib {
    std::string name;
    std::uint64_t weight = 1;
    telemetry::AttributionTable::Rollup roll;
  };

  ClusterConfig cfg_;
  std::unique_ptr<PlacementCoordinator> coord_;
  trace::Tracer tracer_;
  ClusterRunResult result_;
  telemetry::Federation fed_;
  std::vector<NodeAttrib> attribs_;
  bool ran_ = false;
};

} // namespace hmr::cluster
