#include "cluster/coordinator.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace hmr::cluster {

PlacementCoordinator::PlacementCoordinator(const Config& cfg) : cfg_(cfg) {
  HMR_CHECK_MSG(cfg.nodes >= 1, "a cluster has at least one node");
  ledgers_.resize(static_cast<std::size_t>(cfg.nodes));
  for (auto& l : ledgers_) l.capacity = cfg.node_capacity;
}

PlacementCoordinator::Placement PlacementCoordinator::place(
    ObjectId object, std::uint64_t bytes, NodeId preferred) {
  HMR_CHECK_MSG(map_.find(object) == map_.end(),
                "object placed twice");
  NodeId n = preferred;
  if (n == kAnyNode) {
    // Least-loaded by free local budget; unbounded nodes compare by
    // total placed bytes.  Ties go to the lowest id (determinism).
    n = 0;
    for (NodeId c = 1; c < nodes(); ++c) {
      const NodeLedger& best = ledgers_[static_cast<std::size_t>(n)];
      const NodeLedger& cand = ledgers_[static_cast<std::size_t>(c)];
      const std::uint64_t best_load = best.placed_local + best.placed_remote;
      const std::uint64_t cand_load = cand.placed_local + cand.placed_remote;
      if (cand_load < best_load) n = c;
    }
  }
  HMR_CHECK_MSG(n >= 0 && n < nodes(), "placement names an unknown node");
  NodeLedger& l = ledgers_[static_cast<std::size_t>(n)];

  Placement p;
  p.node = n;
  const bool fits_local =
      l.capacity == 0 || l.placed_local + bytes <= l.capacity;
  if (cfg_.all_remote) {
    p.remote = true;
  } else if (fits_local) {
    p.remote = false;
  } else {
    HMR_CHECK_MSG(cfg_.allow_remote,
                  "object exceeds the node's local budget and the "
                  "cluster has no remote pool to spill to");
    p.remote = true;
  }
  if (p.remote) {
    HMR_CHECK_MSG(cfg_.allow_remote || cfg_.all_remote,
                  "remote placement without a remote pool");
    l.placed_remote += bytes;
  } else {
    l.placed_local += bytes;
  }
  ++l.objects;
  total_bytes_ += bytes;
  map_.emplace(object, p);
  return p;
}

PlacementCoordinator::Placement PlacementCoordinator::placement_of(
    ObjectId object) const {
  auto it = map_.find(object);
  HMR_CHECK_MSG(it != map_.end(), "placement_of: unknown object");
  return it->second;
}

bool PlacementCoordinator::knows(ObjectId object) const {
  return map_.find(object) != map_.end();
}

void PlacementCoordinator::record_promotions(NodeId n, std::uint64_t count,
                                             std::uint64_t bytes) {
  NodeLedger& l = ledgers_.at(static_cast<std::size_t>(n));
  l.promotions += count;
  l.promoted_bytes += bytes;
}

void PlacementCoordinator::record_spills(NodeId n, std::uint64_t count,
                                         std::uint64_t bytes) {
  NodeLedger& l = ledgers_.at(static_cast<std::size_t>(n));
  l.spills += count;
  l.spilled_bytes += bytes;
}

const NodeLedger& PlacementCoordinator::node(NodeId n) const {
  return ledgers_.at(static_cast<std::size_t>(n));
}

std::int64_t PlacementCoordinator::pool_bytes() const {
  std::int64_t sum = 0;
  for (const auto& l : ledgers_) sum += l.remote_now();
  return sum;
}

std::vector<std::string> PlacementCoordinator::audit() const {
  std::vector<std::string> v;
  std::uint64_t objects = 0, bytes = 0;
  for (std::size_t n = 0; n < ledgers_.size(); ++n) {
    const NodeLedger& l = ledgers_[n];
    objects += l.objects;
    bytes += l.placed_local + l.placed_remote;
    std::ostringstream tag;
    tag << "node " << n << ": ";
    if (l.local_now() < 0) {
      v.push_back(tag.str() + "negative local residency (spilled more "
                              "bytes than it ever held)");
    }
    if (l.remote_now() < 0) {
      v.push_back(tag.str() + "negative remote residency (promoted more "
                              "bytes than the pool held)");
    }
    const std::int64_t placed =
        static_cast<std::int64_t>(l.placed_local + l.placed_remote);
    if (l.local_now() + l.remote_now() != placed) {
      v.push_back(tag.str() + "local+remote residency does not conserve "
                              "placed bytes");
    }
    if (l.capacity != 0 && l.placed_local > l.capacity) {
      v.push_back(tag.str() + "placed more local bytes than the budget");
    }
  }
  if (objects != map_.size()) {
    v.push_back("ledger object count disagrees with the object map");
  }
  if (bytes != total_bytes_) {
    v.push_back("ledger byte totals disagree with placed bytes");
  }
  return v;
}

std::vector<std::string> PlacementCoordinator::reconcile(
    NodeId n, std::uint64_t engine_local_bytes,
    std::uint64_t engine_remote_bytes) const {
  std::vector<std::string> v;
  const NodeLedger& l = ledgers_.at(static_cast<std::size_t>(n));
  std::ostringstream tag;
  tag << "node " << n << ": ";
  if (l.local_now() != static_cast<std::int64_t>(engine_local_bytes)) {
    std::ostringstream os;
    os << tag.str() << "ledger local residency " << l.local_now()
       << " != engine local residency " << engine_local_bytes;
    v.push_back(os.str());
  }
  if (l.remote_now() != static_cast<std::int64_t>(engine_remote_bytes)) {
    std::ostringstream os;
    os << tag.str() << "ledger remote residency " << l.remote_now()
       << " != engine remote residency " << engine_remote_bytes;
    v.push_back(os.str());
  }
  return v;
}

std::string PlacementCoordinator::to_json() const {
  std::ostringstream os;
  os << "{\"nodes\":" << nodes() << ",\"objects\":" << total_objects()
     << ",\"total_bytes\":" << total_bytes_
     << ",\"pool_bytes\":" << pool_bytes() << ",\"node_ledgers\":[";
  for (std::size_t n = 0; n < ledgers_.size(); ++n) {
    const NodeLedger& l = ledgers_[n];
    if (n) os << ",";
    os << "{\"node\":" << n << ",\"capacity\":" << l.capacity
       << ",\"objects\":" << l.objects
       << ",\"placed_local\":" << l.placed_local
       << ",\"placed_remote\":" << l.placed_remote
       << ",\"promotions\":" << l.promotions
       << ",\"promoted_bytes\":" << l.promoted_bytes
       << ",\"spills\":" << l.spills
       << ",\"spilled_bytes\":" << l.spilled_bytes
       << ",\"local_now\":" << l.local_now()
       << ",\"remote_now\":" << l.remote_now() << "}";
  }
  os << "]}";
  return os.str();
}

} // namespace hmr::cluster
