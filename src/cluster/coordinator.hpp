#pragma once
// PlacementCoordinator: the cluster's metadata/policy role — an
// object -> node map with per-node capacity ledgers, deciding for
// every data object whether it lives on its node's local memory or on
// the disaggregated remote pool (DOLMA-style object-level placement;
// architecture exemplar: the EOS mgm, a metadata manager directing
// many storage servers).  The coordinator never moves bytes itself:
// per-node BlockStores execute, and the coordinator's flow accounting
// (promotions pulled over the network, spills pushed out) must
// byte-conserve against each engine's ground-truth residency — the
// audit/reconcile pair below is the cluster analogue of the engine's
// invariant auditor.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ooc/types.hpp"

namespace hmr::cluster {

using ObjectId = std::uint64_t;
using NodeId = std::int32_t;

/// place(): let the coordinator pick the least-loaded node.
inline constexpr NodeId kAnyNode = -1;

/// Per-node capacity ledger.  Placement-time bytes are split into
/// local (homed on the node's local pools) and remote (homed on the
/// disaggregated pool, owned by this node); runtime flows move bytes
/// between the two sides.  Current residency is derived, never
/// stored, so the ledger cannot drift from its own flows:
///   local_now  = placed_local  + promoted_bytes - spilled_bytes
///   remote_now = placed_remote - promoted_bytes + spilled_bytes
struct NodeLedger {
  std::uint64_t capacity = 0;     // local home budget (0 = unbounded)
  std::uint64_t objects = 0;      // objects homed on this node
  std::uint64_t placed_local = 0; // bytes homed local at placement
  std::uint64_t placed_remote = 0;
  std::uint64_t promotions = 0;   // remote -> local transfers
  std::uint64_t promoted_bytes = 0;
  std::uint64_t spills = 0;       // local -> remote transfers
  std::uint64_t spilled_bytes = 0;

  std::int64_t local_now() const {
    return static_cast<std::int64_t>(placed_local) +
           static_cast<std::int64_t>(promoted_bytes) -
           static_cast<std::int64_t>(spilled_bytes);
  }
  std::int64_t remote_now() const {
    return static_cast<std::int64_t>(placed_remote) -
           static_cast<std::int64_t>(promoted_bytes) +
           static_cast<std::int64_t>(spilled_bytes);
  }
};

class PlacementCoordinator {
public:
  struct Config {
    int nodes = 1;
    /// Local home budget per node in bytes (0 = unbounded: everything
    /// homes locally, the degenerate no-remote cluster).
    std::uint64_t node_capacity = 0;
    /// Objects that exceed a node's free local budget start on the
    /// disaggregated pool.  When false, placement over budget aborts
    /// (a no-remote cluster must fit locally).
    bool allow_remote = true;
    /// Ablation policy: home every object on the remote pool (the
    /// naive all-remote baseline the cascade must beat).
    bool all_remote = false;
  };

  struct Placement {
    NodeId node = 0;
    bool remote = false; // homed on the disaggregated pool
  };

  explicit PlacementCoordinator(const Config& cfg);

  /// Place one object.  `preferred >= 0` pins ownership to that node
  /// (sub-domain affinity: a stencil block belongs to its node);
  /// kAnyNode picks the node with the most free local budget
  /// (least-loaded, ties to the lowest id for determinism).
  Placement place(ObjectId object, std::uint64_t bytes,
                  NodeId preferred = kAnyNode);

  /// The object -> node map.  Aborts on unknown objects.
  Placement placement_of(ObjectId object) const;
  bool knows(ObjectId object) const;

  /// Flow accounting from a node engine's remote-traffic counters
  /// (EngineStats::remote_fetches / remote_evicts after a run).
  void record_promotions(NodeId n, std::uint64_t count,
                         std::uint64_t bytes);
  void record_spills(NodeId n, std::uint64_t count, std::uint64_t bytes);

  int nodes() const { return static_cast<int>(ledgers_.size()); }
  const NodeLedger& node(NodeId n) const;
  std::uint64_t total_objects() const { return map_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }
  /// Bytes currently on the disaggregated pool across all owners.
  std::int64_t pool_bytes() const;

  /// Internal ledger-conservation audit: every node's derived
  /// residency non-negative, local+remote == placed bytes, totals
  /// match the object map.  Empty = conserved.
  std::vector<std::string> audit() const;

  /// Byte-conservation cross-check against one node engine's ground
  /// truth: the ledger's derived local residency must equal the bytes
  /// the engine actually holds on local levels at quiescence.  This
  /// ties two independent ledgers together — placement + network
  /// flow accounting here, per-command byte accounting in the engine.
  std::vector<std::string> reconcile(NodeId n,
                                     std::uint64_t engine_local_bytes,
                                     std::uint64_t engine_remote_bytes) const;

  /// JSON snapshot for the StatusServer /cluster route.
  std::string to_json() const;

private:
  Config cfg_;
  std::vector<NodeLedger> ledgers_;
  std::unordered_map<ObjectId, Placement> map_;
  std::uint64_t total_bytes_ = 0;
};

} // namespace hmr::cluster
