#include "hw/machine_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmr::hw {

const MemoryTier& MachineModel::tier(TierId t) const {
  HMR_CHECK_MSG(t < tiers.size(), "tier id out of range");
  return tiers[t];
}

double MachineModel::compute_time(
    const std::vector<std::uint64_t>& bytes_by_tier, int active_pes) const {
  HMR_CHECK(active_pes > 0);
  HMR_CHECK(bytes_by_tier.size() <= tiers.size());
  double t = task_overhead;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < bytes_by_tier.size(); ++i) {
    const std::uint64_t b = bytes_by_tier[i];
    if (b == 0) continue;
    total += b;
    const double share = tiers[i].read_bw / static_cast<double>(active_pes);
    t += static_cast<double>(b) / share + tiers[i].latency;
  }
  t += static_cast<double>(total) / compute_bw_per_pe;
  return t;
}

double MachineModel::compute_time2(std::uint64_t fast_bytes,
                                   std::uint64_t slow_bytes,
                                   int active_pes) const {
  std::vector<std::uint64_t> by(tiers.size(), 0);
  by[fast] = fast_bytes;
  by[slow] = slow_bytes;
  return compute_time(by, active_pes);
}

double MachineModel::copy_rate(TierId src, TierId dst) const {
  HMR_CHECK_MSG(src != dst, "migration within one tier");
  const double limit = std::min(tier(src).read_bw, tier(dst).write_bw);
  return limit * per_flow_copy_frac;
}

double MachineModel::channel_capacity(TierId src, TierId dst) const {
  HMR_CHECK_MSG(src != dst, "migration within one tier");
  const double limit = std::min(tier(src).read_bw, tier(dst).write_bw);
  return limit * channel_copy_frac;
}

double MachineModel::migrate_time(std::uint64_t bytes, TierId src, TierId dst,
                                  int concurrent) const {
  HMR_CHECK(concurrent >= 1);
  const double per_flow = copy_rate(src, dst);
  const double fair =
      channel_capacity(src, dst) / static_cast<double>(concurrent);
  const double rate = std::min(per_flow, std::max(fair, 1.0));
  return alloc_overhead + static_cast<double>(bytes) / rate +
         tier(src).latency + tier(dst).latency;
}

double MachineModel::stream_bw(TierId t, int reads, int writes) const {
  HMR_CHECK(reads >= 0 && writes >= 0 && reads + writes > 0);
  const MemoryTier& m = tier(t);
  // Per moved byte: reads/(r+w) of traffic hits the read path and
  // writes/(r+w) the write path; the sustained rate is the harmonic
  // combination (each path is a serial resource for the streams).
  const double r = static_cast<double>(reads);
  const double w = static_cast<double>(writes);
  const double time_per_byte =
      (r / m.read_bw + w / m.write_bw) / (r + w);
  return 1.0 / time_per_byte;
}

double MachineModel::cache_mode_hit_ratio(std::uint64_t wss) const {
  return cache_mode_hit_ratio(wss, tier(fast).capacity);
}

double MachineModel::cache_mode_hit_ratio(
    std::uint64_t wss, std::uint64_t cache_capacity) const {
  HMR_CHECK(wss > 0);
  const double effective =
      static_cast<double>(cache_capacity) * cache_conflict_factor;
  return std::min(1.0, effective / static_cast<double>(wss));
}

double MachineModel::cache_mode_bw(std::uint64_t wss) const {
  return cache_mode_bw(wss, tier(fast).capacity);
}

double MachineModel::cache_mode_bw(std::uint64_t wss,
                                   std::uint64_t cache_capacity) const {
  const double h = cache_mode_hit_ratio(wss, cache_capacity);
  const double hit_bw = tier(fast).read_bw;
  // A miss streams from DDR4 *and* spends MCDRAM write bandwidth on
  // the fill, with an extra penalty for miss-handling limits.
  const double miss_bw =
      1.0 / (cache_miss_penalty *
             (1.0 / tier(slow).read_bw + 1.0 / tier(fast).write_bw));
  return 1.0 / (h / hit_bw + (1.0 - h) / miss_bw);
}

double MachineModel::cache_mode_compute_time(std::uint64_t bytes,
                                             std::uint64_t wss,
                                             int active_pes) const {
  HMR_CHECK(active_pes > 0);
  const double share = cache_mode_bw(wss) / static_cast<double>(active_pes);
  return task_overhead + static_cast<double>(bytes) / share +
         static_cast<double>(bytes) / compute_bw_per_pe +
         tier(fast).latency;
}

MachineModel knl_flat_all_to_all() {
  MachineModel m;
  m.name = "KNL flat all-to-all (Stampede 2.0 node)";
  m.num_pes = 64;
  m.tiers = {
      // Tier 0 = DDR4: libnuma memory node 0 on KNL.
      {"DDR4", 96 * GiB, 90.0 * GB, 70.0 * GB, 130e-9, /*numa_node=*/0},
      // Tier 1 = MCDRAM: libnuma memory node 1; ~4-5x bandwidth,
      // comparable latency (paper §I).
      {"MCDRAM", 16 * GiB, 480.0 * GB, 380.0 * GB, 150e-9, /*numa_node=*/1},
  };
  m.slow = 0;
  m.fast = 1;
  return m;
}

MachineModel knl_ddr_only() {
  MachineModel m = knl_flat_all_to_all();
  m.name = "KNL DDR4-only";
  // Keep tier ids stable but zero out MCDRAM capacity so HBM-seeking
  // policies have nowhere to go.
  m.tiers[1].capacity = 0;
  return m;
}

MachineModel three_tier_hbm_ddr_nvm() {
  MachineModel m;
  m.name = "HBM + DDR + NVM three-tier node";
  m.num_pes = 64;
  m.tiers = {
      // Tier 0 = NVM: both bandwidth- and latency-restricted (paper §II
      // contrasts this with DDR4 which is only bandwidth-restricted).
      {"NVM", 512 * GiB, 18.0 * GB, 6.0 * GB, 1200e-9, /*numa_node=*/2},
      {"MCDRAM", 16 * GiB, 480.0 * GB, 380.0 * GB, 150e-9, /*numa_node=*/1},
      {"DDR4", 96 * GiB, 90.0 * GB, 70.0 * GB, 130e-9, /*numa_node=*/0},
  };
  m.slow = 0; // NVM is the overflow pool in this configuration
  m.fast = 1;
  return m;
}

MachineModel exascale_near_far() {
  MachineModel m;
  m.name = "Traleika-Glacier-style near/far node";
  m.num_pes = 128;
  m.tiers = {
      {"FarDRAM", 256 * GiB, 120.0 * GB, 100.0 * GB, 200e-9, /*numa_node=*/0},
      {"NearBSM", 8 * GiB, 1000.0 * GB, 800.0 * GB, 60e-9, /*numa_node=*/1},
  };
  m.slow = 0;
  m.fast = 1;
  return m;
}

MachineModel spr_hbm_flat() {
  MachineModel m;
  m.name = "Xeon Max (SPR) HBM flat mode";
  m.num_pes = 56;
  m.tiers = {
      // 8-channel DDR5-4800: ~300 GB/s read on a socket.
      {"DDR5", 512 * GiB, 300.0 * GB, 250.0 * GB, 100e-9, /*numa_node=*/0},
      // 4 HBM2e stacks: ~800 GB/s sustained.
      {"HBM2e", 64 * GiB, 800.0 * GB, 650.0 * GB, 120e-9, /*numa_node=*/1},
  };
  m.slow = 0;
  m.fast = 1;
  // SPR cores copy much faster than KNL's.
  m.per_flow_copy_frac = 0.10;
  m.compute_bw_per_pe = 12.0 * GB;
  return m;
}

} // namespace hmr::hw
