#pragma once
// Machine model: the memory tiers of a heterogeneous-memory node and the
// analytic cost model used by the discrete-event simulator.
//
// The paper's platform is an Intel Xeon Phi KNL in flat all-to-all mode:
// MCDRAM (16 GB, ~4x bandwidth) exposed as NUMA node 1 and DDR4 (96 GB)
// as NUMA node 0.  We model a node as an ordered list of MemoryTier
// descriptors plus a handful of calibrated scalar costs.  Calibration
// anchors (documented per field below and in DESIGN.md §5) come from the
// paper's own measurements: Fig 1 (STREAM), Fig 2 (3x stencil gap),
// Fig 7 (migration memcpy cost and its direction asymmetry).

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace hmr::hw {

/// Index of a tier within MachineModel::tiers.  Mirrors the paper's
/// libnuma node ids: on KNL, node 0 = DDR4 (slow), node 1 = MCDRAM
/// (fast), which is why the *slow* tier is conventionally index 0.
using TierId = std::uint32_t;

/// One memory pool of the node (MCDRAM, DDR4, NVM, ...).
struct MemoryTier {
  std::string name;

  /// Usable capacity in bytes.
  std::uint64_t capacity = 0;

  /// Aggregate read bandwidth in bytes/s when all PEs stream from this
  /// tier (STREAM-like saturated load).
  double read_bw = 0;

  /// Aggregate write bandwidth in bytes/s (typically below read_bw;
  /// the asymmetry produces Fig 7's HBM->DDR vs DDR->HBM gap).
  double write_bw = 0;

  /// Idle access latency in seconds.  The paper notes MCDRAM and DDR4
  /// have comparable latency; NVM-style tiers have much higher.
  double latency = 0;

  /// OS NUMA node exposing this pool (-1 = unknown/none).  On the
  /// paper's KNL flat mode DDR4 is node 0 and MCDRAM node 1; HMR_NUMA
  /// builds bind mmap-backed tier arenas to this node.
  int numa_node = -1;

  /// Disaggregated pool reached over the interconnect instead of the
  /// local memory bus.  read_bw/write_bw/latency then describe the
  /// network path (sim::add_remote_tier fills them from a
  /// NetworkModel); ooc::tiers_from_model turns the flag into a
  /// Remote tier backend so engines count network traffic separately
  /// and executors charge network messages instead of local copies.
  bool remote = false;
};

/// A node with heterogeneous memory and `num_pes` worker PEs.
struct MachineModel {
  std::string name;

  /// Worker PEs (the paper uses 64 of KNL's 68 cores, no SMT).
  int num_pes = 64;

  std::vector<MemoryTier> tiers;

  /// Conventional roles used by two-tier policies.  `slow` is where data
  /// overflows/starts (DDR4); `fast` is the prefetch target (MCDRAM).
  TierId slow = 0;
  TierId fast = 1;

  /// Per-PE non-memory compute throughput in bytes/s: the rate at which
  /// one PE would chew through a kernel's working bytes if memory were
  /// infinitely fast (vector ALU + L1/L2 reuse).  Calibrated so that the
  /// stencil kernel's HBM:DDR4 time ratio lands at the ~3x of Fig 2
  /// rather than the raw ~5x bandwidth ratio.
  double compute_bw_per_pe = 6.4 * GB;

  /// Fixed scheduling overhead charged per task execution (converse
  /// dequeue + delivery), seconds.
  double task_overhead = 3e-6;

  /// Fixed cost of one numa_alloc_onnode + numa_free pair, charged per
  /// migration (the paper's move = alloc dest + memcpy + free src).
  double alloc_overhead = 8e-6;

  /// Single-flow memcpy efficiency: one thread's memcpy cannot
  /// saturate a tier — and a single KNL core is weak, sustaining only
  /// a handful of GB/s.  A flow's rate is
  /// `per_flow_copy_frac * direction limit` (~7 GB/s DDR->HBM).
  double per_flow_copy_frac = 0.08;

  /// Aggregate copy efficiency under heavy concurrency (64 threads
  /// stressing migration reach ~40% of the direction limit; Fig 7).
  double channel_copy_frac = 0.40;

  /// KNL cache mode (paper §III-B): fraction of the fast tier's
  /// capacity that is effectively usable as a direct-mapped cache —
  /// conflict misses waste part of it even when the working set fits
  /// (the paper's motivation for bypassing hardware caching).
  double cache_conflict_factor = 0.80;

  /// Extra penalty on a cache-mode miss relative to a flat-mode DDR4
  /// access: the miss both reads DDR4 and writes the MCDRAM fill line,
  /// and in-flight-miss limits throttle further.  >1.
  double cache_miss_penalty = 1.30;

  // ---- cost queries (pure functions of the model) ----

  const MemoryTier& tier(TierId t) const;

  /// Time for one PE to execute a bandwidth-bound kernel that streams
  /// `bytes_by_tier[t]` bytes from tier t, while `active_pes` PEs share
  /// each tier's bandwidth.  Additive roofline:
  ///   t = task_overhead + sum_t bytes_t/(read_bw_t/active) + total/compute_bw.
  double compute_time(const std::vector<std::uint64_t>& bytes_by_tier,
                      int active_pes) const;

  /// Convenience for the common two-tier split.
  double compute_time2(std::uint64_t fast_bytes, std::uint64_t slow_bytes,
                       int active_pes) const;

  /// Single-flow migration rate (bytes/s) for a memcpy src -> dst,
  /// limited by min(src read, dst write) and the per-flow efficiency.
  double copy_rate(TierId src, TierId dst) const;

  /// Aggregate capacity (bytes/s) of the src -> dst migration channel
  /// when many flows run concurrently.
  double channel_capacity(TierId src, TierId dst) const;

  /// Modeled duration of one migration of `bytes` when `concurrent`
  /// flows share the channel (used by Fig 7 and non-DES call sites; the
  /// DES uses a fluid channel instead, see sim/transfer_channel.hpp).
  double migrate_time(std::uint64_t bytes, TierId src, TierId dst,
                      int concurrent = 1) const;

  /// Modeled STREAM bandwidth (bytes/s moved per wall second) for a
  /// kernel reading `reads` and writing `writes` arrays per element,
  /// with all PEs hammering tier `t` (Fig 1).
  double stream_bw(TierId t, int reads, int writes) const;

  // ---- KNL cache mode (paper §III-B / future work §VI) ----

  /// Expected hit ratio of the direct-mapped MCDRAM cache for a
  /// streamed working set of `wss` bytes: min(1, effective_capacity /
  /// wss) where conflict misses shave `cache_conflict_factor` off the
  /// nominal capacity.  The second overload uses an explicit cache
  /// capacity (hybrid mode dedicates only part of MCDRAM to caching).
  double cache_mode_hit_ratio(std::uint64_t wss) const;
  double cache_mode_hit_ratio(std::uint64_t wss,
                              std::uint64_t cache_capacity) const;

  /// Effective aggregate read bandwidth in cache mode for a streamed
  /// working set of `wss` bytes: the harmonic blend of MCDRAM hits and
  /// penalized DDR4 misses.  Below the fast capacity this approaches
  /// MCDRAM speed; far above it, it drops *below* flat-mode DDR4 —
  /// the regime where the paper's runtime-managed flat mode wins.
  double cache_mode_bw(std::uint64_t wss) const;
  double cache_mode_bw(std::uint64_t wss,
                       std::uint64_t cache_capacity) const;

  /// Per-PE execution time of a bandwidth-bound kernel over `bytes`
  /// under cache mode with the node-wide streamed working set `wss`
  /// (cache-mode analogue of compute_time2).
  double cache_mode_compute_time(std::uint64_t bytes, std::uint64_t wss,
                                 int active_pes) const;
};

// ---- presets ----

/// The paper's platform: KNL flat all-to-all, 64 worker PEs,
/// 16 GB MCDRAM @ ~480/380 GB/s, 96 GB DDR4 @ ~90/70 GB/s.
MachineModel knl_flat_all_to_all();

/// Same node restricted to DDR4 only (the paper's DDR4only baseline).
MachineModel knl_ddr_only();

/// A generality preset: three tiers HBM + DDR + NVM (the paper's
/// conclusion: architectures heterogeneous in latency *and* bandwidth).
MachineModel three_tier_hbm_ddr_nvm();

/// A Traleika-Glacier-style near/far exascale node (paper §I).
MachineModel exascale_near_far();

/// A modern heir of KNL: Intel Xeon Max (Sapphire Rapids + HBM2e) in
/// flat mode — 64 GB HBM at ~2.6x the eight-channel DDR5 aggregate.
/// Shows the runtime outliving its original platform.
MachineModel spr_hbm_flat();

} // namespace hmr::hw
