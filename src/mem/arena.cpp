#include "mem/arena.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmr::mem {

TierArena::TierArena(std::string name, std::uint64_t capacity,
                     std::size_t alignment)
    : name_(std::move(name)), capacity_(capacity), alignment_(alignment) {
  HMR_CHECK_MSG(alignment_ != 0 && (alignment_ & (alignment_ - 1)) == 0,
                "alignment must be a power of two");
  // Round the region itself so every offset-aligned pointer is aligned.
  if (capacity_ > 0) {
    base_.reset(new (std::align_val_t(alignment_)) std::byte[capacity_]);
    free_ranges_.emplace(0, capacity_);
  }
}

std::uint64_t TierArena::round_up(std::uint64_t bytes) const {
  const std::uint64_t a = alignment_;
  return (bytes + a - 1) / a * a;
}

void* TierArena::alloc(std::uint64_t bytes) {
  HMR_CHECK_MSG(bytes > 0, "zero-byte tier allocation");
  const std::uint64_t need = round_up(bytes);
  for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
    if (it->second < need) continue;
    const std::uint64_t off = it->first;
    const std::uint64_t len = it->second;
    free_ranges_.erase(it);
    if (len > need) free_ranges_.emplace(off + need, len - need);
    live_.emplace(off, need);
    used_ += need;
    high_water_ = std::max(high_water_, used_);
    ++total_allocs_;
    return base_.get() + off;
  }
  return nullptr;
}

void TierArena::free(void* p) {
  HMR_CHECK_MSG(p != nullptr, "freeing nullptr");
  const auto* bp = static_cast<const std::byte*>(p);
  HMR_CHECK_MSG(base_ && bp >= base_.get() && bp < base_.get() + capacity_,
                "pointer not from this arena");
  const std::uint64_t off = static_cast<std::uint64_t>(bp - base_.get());
  auto it = live_.find(off);
  HMR_CHECK_MSG(it != live_.end(), "double free or interior pointer");
  std::uint64_t len = it->second;
  live_.erase(it);
  used_ -= len;

  // Coalesce with successor, then predecessor.
  auto next = free_ranges_.lower_bound(off);
  if (next != free_ranges_.end() && off + len == next->first) {
    len += next->second;
    next = free_ranges_.erase(next);
  }
  std::uint64_t start = off;
  if (next != free_ranges_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == off) {
      start = prev->first;
      len += prev->second;
      free_ranges_.erase(prev);
    }
  }
  free_ranges_.emplace(start, len);
}

bool TierArena::owns(const void* p) const {
  if (!base_ || p == nullptr) return false;
  const auto* bp = static_cast<const std::byte*>(p);
  if (bp < base_.get() || bp >= base_.get() + capacity_) return false;
  return live_.count(static_cast<std::uint64_t>(bp - base_.get())) != 0;
}

std::uint64_t TierArena::largest_free_range() const {
  std::uint64_t best = 0;
  for (const auto& [off, len] : free_ranges_) best = std::max(best, len);
  return best;
}

} // namespace hmr::mem
