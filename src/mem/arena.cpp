#include "mem/arena.hpp"

#include <algorithm>
#include <new>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HMR_ARENA_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define HMR_ARENA_HAVE_MMAP 0
#endif

#if defined(HMR_HAVE_NUMA)
#include <numa.h>
#endif

namespace hmr::mem {

namespace {

void erase_one_len(std::multiset<std::uint64_t>& lens, std::uint64_t len) {
  const auto it = lens.find(len);
  HMR_CHECK_MSG(it != lens.end(), "free-range length index out of sync");
  lens.erase(it);
}

} // namespace

TierArena::TierArena(std::string name, std::uint64_t capacity,
                     std::size_t alignment, Options opts)
    : name_(std::move(name)), capacity_(capacity), alignment_(alignment) {
  HMR_CHECK_MSG(alignment_ != 0 && (alignment_ & (alignment_ - 1)) == 0,
                "alignment must be a power of two");
  // Round the region itself so every offset-aligned pointer is aligned.
  if (capacity_ > 0) {
    reserve_region(opts);
    free_ranges_.emplace(0, capacity_);
    free_lens_.insert(capacity_);
  }
}

TierArena::~TierArena() { release_region(); }

void TierArena::reserve_region(const Options& opts) {
#if HMR_ARENA_HAVE_MMAP
  const auto page = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  // mmap returns page-aligned memory; offsets are alignment_-rounded,
  // so the backing works whenever the alignment divides the page size.
  if (opts.backing == Backing::Mmap && page % alignment_ == 0) {
    region_len_ = (capacity_ + page - 1) / page * page;
    void* p = ::mmap(nullptr, region_len_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      base_ = static_cast<std::byte*>(p);
      actual_backing_ = Backing::Mmap;
#if defined(MADV_HUGEPAGE)
      // Transparent hugepages are advisory; ignore rejection (e.g.
      // THP disabled host-wide).
      if (opts.hugepage) (void)::madvise(p, region_len_, MADV_HUGEPAGE);
#endif
#if defined(HMR_HAVE_NUMA)
      if (opts.numa_node >= 0 && ::numa_available() != -1 &&
          opts.numa_node <= ::numa_max_node()) {
        ::numa_tonode_memory(p, region_len_, opts.numa_node);
        bound_node_ = opts.numa_node;
      }
#endif
      return;
    }
    region_len_ = 0; // mmap failed: fall through to the portable path
  }
#else
  (void)opts;
#endif
  base_ = static_cast<std::byte*>(
      ::operator new[](capacity_, std::align_val_t(alignment_)));
  actual_backing_ = Backing::NewDelete;
}

void TierArena::release_region() {
  if (base_ == nullptr) return;
#if HMR_ARENA_HAVE_MMAP
  if (actual_backing_ == Backing::Mmap) {
    ::munmap(base_, region_len_);
    base_ = nullptr;
    return;
  }
#endif
  ::operator delete[](base_, std::align_val_t(alignment_));
  base_ = nullptr;
}

const char* TierArena::backing_name() const {
  return actual_backing_ == Backing::Mmap ? "mmap" : "new[]";
}

std::uint64_t TierArena::round_up(std::uint64_t bytes) const {
  const std::uint64_t a = alignment_;
  return (bytes + a - 1) / a * a;
}

void* TierArena::alloc(std::uint64_t bytes) {
  HMR_CHECK_MSG(bytes > 0, "zero-byte tier allocation");
  const std::uint64_t need = round_up(bytes);
  // Cheap reject via the length index before the first-fit walk.
  if (free_lens_.empty() || *free_lens_.rbegin() < need) return nullptr;
  for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
    if (it->second < need) continue;
    const std::uint64_t off = it->first;
    const std::uint64_t len = it->second;
    free_ranges_.erase(it);
    erase_one_len(free_lens_, len);
    if (len > need) {
      free_ranges_.emplace(off + need, len - need);
      free_lens_.insert(len - need);
    }
    live_.emplace(off, need);
    used_ += need;
    high_water_ = std::max(high_water_, used_);
    ++total_allocs_;
    return base_ + off;
  }
  return nullptr;
}

void TierArena::free(void* p) {
  HMR_CHECK_MSG(p != nullptr, "freeing nullptr");
  const auto* bp = static_cast<const std::byte*>(p);
  HMR_CHECK_MSG(base_ != nullptr && bp >= base_ && bp < base_ + capacity_,
                "pointer not from this arena");
  const std::uint64_t off = static_cast<std::uint64_t>(bp - base_);
  auto it = live_.find(off);
  HMR_CHECK_MSG(it != live_.end(), "double free or interior pointer");
  std::uint64_t len = it->second;
  live_.erase(it);
  used_ -= len;

  // Coalesce with successor, then predecessor.
  auto next = free_ranges_.lower_bound(off);
  if (next != free_ranges_.end() && off + len == next->first) {
    len += next->second;
    erase_one_len(free_lens_, next->second);
    next = free_ranges_.erase(next);
  }
  std::uint64_t start = off;
  if (next != free_ranges_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == off) {
      start = prev->first;
      len += prev->second;
      erase_one_len(free_lens_, prev->second);
      free_ranges_.erase(prev);
    }
  }
  free_ranges_.emplace(start, len);
  free_lens_.insert(len);
}

bool TierArena::owns(const void* p) const {
  if (base_ == nullptr || p == nullptr) return false;
  const auto* bp = static_cast<const std::byte*>(p);
  if (bp < base_ || bp >= base_ + capacity_) return false;
  return live_.count(static_cast<std::uint64_t>(bp - base_)) != 0;
}

std::uint64_t TierArena::largest_free_range() const {
  return free_lens_.empty() ? 0 : *free_lens_.rbegin();
}

} // namespace hmr::mem
