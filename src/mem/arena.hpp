#pragma once
// TierArena: a first-fit free-list allocator over one contiguous
// reserved region, standing in for one libnuma memory node.
//
// The paper allocates with numa_alloc_onnode(size, node) and releases
// with numa_free; capacity of the node is a hard limit (16 GB MCDRAM).
// TierArena reproduces that interface shape on plain host memory: a
// fixed-capacity region per tier, allocation failure (nullptr) when the
// tier is full, and real pointers so migration can actually memcpy.
//
// Two backing modes (docs/PERF.md §4):
//   NewDelete — aligned operator new[], the portable default.
//   Mmap      — anonymous mmap with MADV_HUGEPAGE, and, when the build
//               has libnuma (-DHMR_NUMA=ON) and the tier's MachineModel
//               entry names a node, the region is bound to that NUMA
//               node the way the paper binds MCDRAM.  Every step
//               degrades gracefully (mmap -> new[], no THP, no NUMA).
//
// Not thread-safe by itself: MemoryManager serializes access.

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

namespace hmr::mem {

enum class ArenaBacking : std::uint8_t { NewDelete = 0, Mmap };

struct ArenaOptions {
  ArenaBacking backing = ArenaBacking::NewDelete;
  bool hugepage = true; ///< MADV_HUGEPAGE on Mmap backing
  int numa_node = -1;   ///< bind Mmap region to this node (-1 = none;
                        ///< needs an HMR_NUMA build + NUMA hardware)
};

class TierArena {
public:
  using Backing = ArenaBacking;
  using Options = ArenaOptions;

  /// Reserves `capacity` bytes of host memory up front.  All returned
  /// pointers are aligned to `alignment` (default one cache line).
  TierArena(std::string name, std::uint64_t capacity,
            std::size_t alignment = 64, Options opts = Options());
  ~TierArena();

  TierArena(const TierArena&) = delete;
  TierArena& operator=(const TierArena&) = delete;

  /// First-fit allocation.  Returns nullptr when no free range of
  /// `bytes` exists (capacity or fragmentation).  Zero-byte requests
  /// are rejected.
  void* alloc(std::uint64_t bytes);

  /// Releases a pointer previously returned by alloc().  Coalesces with
  /// adjacent free ranges.  Freeing a foreign or already-freed pointer
  /// aborts (HMR_CHECK) — this is an API-contract violation.
  void free(void* p);

  /// True if `p` is a live allocation from this arena.
  bool owns(const void* p) const;

  const std::string& name() const { return name_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }
  std::uint64_t high_water() const { return high_water_; }
  std::uint64_t live_allocations() const { return live_.size(); }

  /// Size of the largest single allocatable range (fragmentation
  /// probe).  O(1): the free-range lengths are mirrored in an ordered
  /// multiset maintained by alloc/free.
  std::uint64_t largest_free_range() const;

  /// Total allocations served over the arena's lifetime.
  std::uint64_t total_allocs() const { return total_allocs_; }

  /// Backing actually in effect ("new[]" or "mmap"); Mmap requests fall
  /// back to "new[]" when mmap is unavailable or fails.
  const char* backing_name() const;
  Backing backing() const { return actual_backing_; }
  /// NUMA node the region was bound to, or -1 (no binding requested,
  /// non-NUMA build, or no NUMA hardware at runtime).
  int bound_node() const { return bound_node_; }

private:
  std::uint64_t round_up(std::uint64_t bytes) const;
  void reserve_region(const Options& opts);
  void release_region();

  std::string name_;
  std::uint64_t capacity_;
  std::size_t alignment_;
  std::byte* base_ = nullptr;
  std::uint64_t region_len_ = 0; // page-rounded length of a Mmap region
  Backing actual_backing_ = Backing::NewDelete;
  int bound_node_ = -1;

  // Free ranges keyed by offset (ordered, for coalescing) -> length,
  // plus a multiset of the same lengths so largest_free_range() is the
  // max element instead of an O(ranges) scan.
  std::map<std::uint64_t, std::uint64_t> free_ranges_;
  std::multiset<std::uint64_t> free_lens_;
  // Live allocations: offset -> length.
  std::unordered_map<std::uint64_t, std::uint64_t> live_;

  std::uint64_t used_ = 0;
  std::uint64_t high_water_ = 0;
  std::uint64_t total_allocs_ = 0;
};

} // namespace hmr::mem
