#pragma once
// TierArena: a first-fit free-list allocator over one contiguous
// reserved region, standing in for one libnuma memory node.
//
// The paper allocates with numa_alloc_onnode(size, node) and releases
// with numa_free; capacity of the node is a hard limit (16 GB MCDRAM).
// TierArena reproduces that interface shape on plain host memory: a
// fixed-capacity region per tier, allocation failure (nullptr) when the
// tier is full, and real pointers so migration can actually memcpy.
//
// Not thread-safe by itself: MemoryManager serializes access.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace hmr::mem {

class TierArena {
public:
  /// Reserves `capacity` bytes of host memory up front.  All returned
  /// pointers are aligned to `alignment` (default one cache line).
  TierArena(std::string name, std::uint64_t capacity,
            std::size_t alignment = 64);

  TierArena(const TierArena&) = delete;
  TierArena& operator=(const TierArena&) = delete;

  /// First-fit allocation.  Returns nullptr when no free range of
  /// `bytes` exists (capacity or fragmentation).  Zero-byte requests
  /// are rejected.
  void* alloc(std::uint64_t bytes);

  /// Releases a pointer previously returned by alloc().  Coalesces with
  /// adjacent free ranges.  Freeing a foreign or already-freed pointer
  /// aborts (HMR_CHECK) — this is an API-contract violation.
  void free(void* p);

  /// True if `p` is a live allocation from this arena.
  bool owns(const void* p) const;

  const std::string& name() const { return name_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }
  std::uint64_t high_water() const { return high_water_; }
  std::uint64_t live_allocations() const { return live_.size(); }

  /// Size of the largest single allocatable range (fragmentation probe).
  std::uint64_t largest_free_range() const;

  /// Total allocations served over the arena's lifetime.
  std::uint64_t total_allocs() const { return total_allocs_; }

private:
  std::uint64_t round_up(std::uint64_t bytes) const;

  std::string name_;
  std::uint64_t capacity_;
  std::size_t alignment_;
  std::unique_ptr<std::byte[]> base_;

  // Free ranges keyed by offset (ordered, for coalescing) -> length.
  std::map<std::uint64_t, std::uint64_t> free_ranges_;
  // Live allocations: offset -> length.
  std::unordered_map<std::uint64_t, std::uint64_t> live_;

  std::uint64_t used_ = 0;
  std::uint64_t high_water_ = 0;
  std::uint64_t total_allocs_ = 0;
};

} // namespace hmr::mem
