#include "mem/chunked_copy.hpp"

#include <thread>

#include "mem/copy_kernel.hpp"
#include "util/check.hpp"

namespace hmr::mem {

ChunkRing::ChunkRing(std::uint64_t chunk_bytes)
    : chunk_bytes_(chunk_bytes) {
  HMR_CHECK_MSG(chunk_bytes_ > 0, "chunk size must be positive");
}

void ChunkRing::set_chunk_bytes(std::uint64_t chunk_bytes) {
  HMR_CHECK_MSG(chunk_bytes > 0, "chunk size must be positive");
  for (const auto& slot : slots_) {
    HMR_CHECK_MSG(slot.state.load(std::memory_order_acquire) == kEmpty,
                  "resizing chunks while a copy is in flight");
  }
  chunk_bytes_ = chunk_bytes;
}

std::uint32_t ChunkRing::work_on(Job& job) {
  std::uint32_t copied = 0;
  for (;;) {
    if (job.cancel != nullptr &&
        job.cancel->load(std::memory_order_acquire)) {
      break;
    }
    const std::uint32_t i =
        job.next.fetch_add(1, std::memory_order_acq_rel);
    if (i >= job.n_chunks) break;
    const std::uint64_t off = static_cast<std::uint64_t>(i) * chunk_bytes_;
    const std::uint64_t len =
        off + chunk_bytes_ <= job.bytes ? chunk_bytes_ : job.bytes - off;
    // NT policy is decided by the *job* size, not the chunk size: a
    // 16 MiB migration should stream even though each 256 KiB slice
    // sits below the threshold.
    const Stream stream =
        copy_nt_threshold() != 0 && job.bytes >= copy_nt_threshold()
            ? Stream::Always
            : Stream::Never;
    copy(job.dst + off, job.src + off, len, stream);
    job.done.fetch_add(1, std::memory_order_release);
    ++copied;
  }
  return copied;
}

CopyOutcome ChunkRing::run(void* dst, const void* src, std::uint64_t bytes,
                           const std::atomic<bool>* cancel) {
  CopyOutcome out;
  if (bytes == 0) return out;
  if (bytes <= chunk_bytes_) {
    copy(dst, src, bytes);
    out.chunks = 1;
    chunks_copied_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  // Claim a slot.  Contention here means kSlots large copies are
  // already in flight; an extra ring buys nothing at that point, so
  // degrade to a plain (still correct, just un-assisted) memcpy.
  Job* job = nullptr;
  for (auto& slot : slots_) {
    std::uint32_t expect = kEmpty;
    if (slot.state.compare_exchange_strong(expect, kSetup,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
      job = &slot;
      break;
    }
  }
  if (job == nullptr) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      out.cancelled = true;
      return out;
    }
    out.ring_fallback = true;
    ring_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    copy(dst, src, bytes);
    out.chunks = 1;
    chunks_copied_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  job->dst = static_cast<std::byte*>(dst);
  job->src = static_cast<const std::byte*>(src);
  job->bytes = bytes;
  job->n_chunks =
      static_cast<std::uint32_t>((bytes + chunk_bytes_ - 1) / chunk_bytes_);
  job->next.store(0, std::memory_order_relaxed);
  job->done.store(0, std::memory_order_relaxed);
  job->assisted.store(0, std::memory_order_relaxed);
  job->cancel = cancel;
  HMR_DCHECK(job->helpers.load(std::memory_order_relaxed) == 0);
  jobs_.fetch_add(1, std::memory_order_relaxed);
  job->state.store(kActive, std::memory_order_release); // publish

  const std::uint32_t own = work_on(*job);

  // Park the slot so no new helper walks in, then wait for the ones
  // already inside: each claimed chunk is always copied (cancel is
  // checked before claiming, never after), so helpers==0 implies
  // done == #claimed and the buffers can be released.
  job->state.store(kDraining, std::memory_order_release);
  while (job->helpers.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }

  out.chunks = job->done.load(std::memory_order_acquire);
  out.assisted_chunks = job->assisted.load(std::memory_order_relaxed);
  out.cancelled = out.chunks < job->n_chunks;
  HMR_DCHECK(out.cancelled <= (cancel != nullptr));
  chunks_copied_.fetch_add(own, std::memory_order_relaxed);

  job->src = nullptr;
  job->dst = nullptr;
  job->cancel = nullptr;
  job->state.store(kEmpty, std::memory_order_release); // recycle
  return out;
}

std::size_t ChunkRing::assist() {
  std::size_t copied = 0;
  for (auto& slot : slots_) {
    if (slot.state.load(std::memory_order_acquire) != kActive) continue;
    // Announce first, then re-check: the owner may have parked the
    // slot between our load and the fetch_add, in which case it is
    // already waiting for helpers to reach 0 — back out immediately.
    slot.helpers.fetch_add(1, std::memory_order_acq_rel);
    if (slot.state.load(std::memory_order_acquire) == kActive) {
      const std::uint32_t n = work_on(slot);
      if (n > 0) {
        slot.assisted.fetch_add(n, std::memory_order_relaxed);
        chunks_copied_.fetch_add(n, std::memory_order_relaxed);
        chunks_assisted_.fetch_add(n, std::memory_order_relaxed);
        copied += n;
      }
    }
    slot.helpers.fetch_sub(1, std::memory_order_acq_rel);
  }
  return copied;
}

bool ChunkRing::assist_pending() const {
  for (const auto& slot : slots_) {
    if (slot.state.load(std::memory_order_acquire) != kActive) continue;
    if (slot.next.load(std::memory_order_relaxed) < slot.n_chunks) {
      return true;
    }
  }
  return false;
}

} // namespace hmr::mem
