#pragma once
// ChunkRing: cooperative, chunked memcpy for large migrations.
//
// The paper's §IV-C migration recipe moves a block with one memcpy on
// one IO thread.  For multi-megabyte blocks that serializes the whole
// transfer behind a single core even when other IO threads are idle —
// on KNL one core cannot saturate either MCDRAM or DDR4 bandwidth.
// ChunkRing splits a copy above a threshold into fixed-size chunks
// published in a small ring of job slots; any idle IO thread can walk
// in and claim chunks (assist) until the job drains, so one large
// block is streamed by several cores cooperatively.
//
// Protocol per job slot (lock-free, no allocation on the copy path):
//   owner:   claim an Empty slot (CAS Empty->Setup), fill src/dst/
//            geometry, publish (Setup->Active), then claim and copy
//            chunks like any helper; when no chunk is left (or the
//            cancel flag trips) it parks the slot (Active->Draining),
//            waits for helpers to leave, and recycles it (->Empty).
//   helper:  assist() scans the slots; on an Active slot it announces
//            itself (helpers.fetch_add), re-checks the state (the slot
//            may have drained in between — then it backs straight
//            out), claims chunks via next.fetch_add, and leaves.
//
// Chunks are claimed in index order, so the copied region of a
// cancelled transfer is a prefix of fully-copied chunks plus at most
// (#participants) chunks that were already claimed when the flag
// tripped — every *claimed* chunk is always copied, which is what lets
// the owner reuse the slot immediately after helpers drain.
//
// Thread safety: fully concurrent.  Multiple owners can run different
// jobs through the same ring; helpers may assist any of them.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hmr::mem {

/// Outcome of one cooperative copy.
struct CopyOutcome {
  std::uint32_t chunks = 0;          // chunks copied (all, on success)
  std::uint32_t assisted_chunks = 0; // copied by helpers, not the owner
  bool cancelled = false;            // flag tripped before completion
  bool ring_fallback = false;        // all slots busy: un-assisted copy
};

class ChunkRing {
public:
  static constexpr std::size_t kSlots = 8;
  static constexpr std::uint64_t kDefaultChunkBytes = 256 * 1024;

  explicit ChunkRing(std::uint64_t chunk_bytes = kDefaultChunkBytes);

  ChunkRing(const ChunkRing&) = delete;
  ChunkRing& operator=(const ChunkRing&) = delete;

  std::uint64_t chunk_bytes() const { return chunk_bytes_; }

  /// Reconfigure the chunk size.  Only valid while no job is in
  /// flight (configure before the executor starts moving data).
  void set_chunk_bytes(std::uint64_t chunk_bytes);

  /// Copy `bytes` from `src` to `dst`, cooperatively.  Blocks until
  /// the copy is complete (or cancelled); the calling thread does the
  /// bulk of the work itself, helpers only add bandwidth.  Copies at
  /// or under one chunk (or when all slots are busy) degrade to a
  /// plain memcpy.  `cancel` (may be null) is polled between chunks;
  /// once it reads true no further chunk is claimed and the
  /// destination contents are indeterminate.
  CopyOutcome run(void* dst, const void* src, std::uint64_t bytes,
                  const std::atomic<bool>* cancel = nullptr);

  /// Called by idle threads: claim and copy chunks of any active job.
  /// Returns the number of chunks this call copied (0 = nothing to
  /// assist with).
  std::size_t assist();

  /// True when some job has unclaimed chunks — cheap enough for an IO
  /// thread's idle loop.
  bool assist_pending() const;

  // ---- counters (monotonic, for benches and tests) ----
  std::uint64_t jobs() const {
    return jobs_.load(std::memory_order_relaxed);
  }
  std::uint64_t chunks_copied() const {
    return chunks_copied_.load(std::memory_order_relaxed);
  }
  std::uint64_t chunks_assisted() const {
    return chunks_assisted_.load(std::memory_order_relaxed);
  }
  /// Large copies that found every slot busy and degraded to a single
  /// un-assisted copy (still correct, but no helper bandwidth).  A
  /// nonzero value means the ring is undersized for the migration
  /// concurrency — exported as hmr_copy_ring_fallbacks and flagged in
  /// hmr_trace summaries.
  std::uint64_t ring_fallbacks() const {
    return ring_fallbacks_.load(std::memory_order_relaxed);
  }

private:
  enum : std::uint32_t { kEmpty = 0, kSetup = 1, kActive = 2, kDraining = 3 };

  struct alignas(64) Job {
    std::atomic<std::uint32_t> state{kEmpty};
    std::atomic<std::uint32_t> next{0};    // next chunk index to claim
    std::atomic<std::uint32_t> done{0};    // chunks fully copied
    std::atomic<std::uint32_t> helpers{0}; // helpers currently inside
    std::atomic<std::uint32_t> assisted{0};
    std::byte* dst = nullptr;
    const std::byte* src = nullptr;
    std::uint64_t bytes = 0;
    std::uint32_t n_chunks = 0;
    const std::atomic<bool>* cancel = nullptr;
  };

  /// Claim-and-copy loop shared by owner and helpers.  Returns the
  /// number of chunks this thread copied.
  std::uint32_t work_on(Job& job);

  std::uint64_t chunk_bytes_;
  Job slots_[kSlots];
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> chunks_copied_{0};
  std::atomic<std::uint64_t> chunks_assisted_{0};
  std::atomic<std::uint64_t> ring_fallbacks_{0};
};

} // namespace hmr::mem
