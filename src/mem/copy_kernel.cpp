#include "mem/copy_kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define HMR_COPY_X86 1
#include <immintrin.h>
#else
#define HMR_COPY_X86 0
#endif

namespace hmr::mem {
namespace {

constexpr std::uint64_t kDefaultNtThreshold = 1ull << 20; // 1 MiB

std::atomic<std::uint64_t> g_nt_threshold{kDefaultNtThreshold};
std::atomic<std::uint64_t> g_nt_copies{0};
std::atomic<std::uint64_t> g_nt_bytes{0};

// ------------------------------------------------------ NT kernels
//
// Shared shape: a scalar head up to the destination's vector
// alignment, an unrolled body of unaligned loads + aligned streaming
// stores, a memcpy tail, and one sfence so the weakly-ordered NT
// stores are globally visible before the migration is declared done.
// The source is never assumed aligned — arenas align to 64 but chunk
// offsets and test harnesses do not.

#if HMR_COPY_X86

__attribute__((target("sse2"))) void nt_copy_sse2(std::byte* dst,
                                                  const std::byte* src,
                                                  std::size_t n) {
  std::size_t head =
      (-reinterpret_cast<std::uintptr_t>(dst)) & (sizeof(__m128i) - 1);
  if (head > n) head = n; // tiny copy: everything is "head"
  if (head != 0) {
    std::memcpy(dst, src, head);
    dst += head;
    src += head;
    n -= head;
  }
  while (n >= 4 * sizeof(__m128i)) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src) + 1);
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src) + 2);
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src) + 3);
    _mm_stream_si128(reinterpret_cast<__m128i*>(dst), a);
    _mm_stream_si128(reinterpret_cast<__m128i*>(dst) + 1, b);
    _mm_stream_si128(reinterpret_cast<__m128i*>(dst) + 2, c);
    _mm_stream_si128(reinterpret_cast<__m128i*>(dst) + 3, d);
    dst += 4 * sizeof(__m128i);
    src += 4 * sizeof(__m128i);
    n -= 4 * sizeof(__m128i);
  }
  while (n >= sizeof(__m128i)) {
    _mm_stream_si128(reinterpret_cast<__m128i*>(dst),
                     _mm_loadu_si128(reinterpret_cast<const __m128i*>(src)));
    dst += sizeof(__m128i);
    src += sizeof(__m128i);
    n -= sizeof(__m128i);
  }
  if (n != 0) std::memcpy(dst, src, n);
  _mm_sfence();
}

__attribute__((target("avx2"))) void nt_copy_avx2(std::byte* dst,
                                                  const std::byte* src,
                                                  std::size_t n) {
  std::size_t head =
      (-reinterpret_cast<std::uintptr_t>(dst)) & (sizeof(__m256i) - 1);
  if (head > n) head = n; // tiny copy: everything is "head"
  if (head != 0) {
    std::memcpy(dst, src, head);
    dst += head;
    src += head;
    n -= head;
  }
  while (n >= 4 * sizeof(__m256i)) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src) + 1);
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src) + 2);
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src) + 3);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst), a);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst) + 1, b);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst) + 2, c);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst) + 3, d);
    dst += 4 * sizeof(__m256i);
    src += 4 * sizeof(__m256i);
    n -= 4 * sizeof(__m256i);
  }
  while (n >= sizeof(__m256i)) {
    _mm256_stream_si256(
        reinterpret_cast<__m256i*>(dst),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
    dst += sizeof(__m256i);
    src += sizeof(__m256i);
    n -= sizeof(__m256i);
  }
  if (n != 0) std::memcpy(dst, src, n);
  _mm_sfence();
}

__attribute__((target("avx512f"))) void nt_copy_avx512(std::byte* dst,
                                                       const std::byte* src,
                                                       std::size_t n) {
  std::size_t head =
      (-reinterpret_cast<std::uintptr_t>(dst)) & (sizeof(__m512i) - 1);
  if (head > n) head = n; // tiny copy: everything is "head"
  if (head != 0) {
    std::memcpy(dst, src, head);
    dst += head;
    src += head;
    n -= head;
  }
  while (n >= 4 * sizeof(__m512i)) {
    const __m512i a = _mm512_loadu_si512(src);
    const __m512i b = _mm512_loadu_si512(src + sizeof(__m512i));
    const __m512i c = _mm512_loadu_si512(src + 2 * sizeof(__m512i));
    const __m512i d = _mm512_loadu_si512(src + 3 * sizeof(__m512i));
    _mm512_stream_si512(reinterpret_cast<__m512i*>(dst), a);
    _mm512_stream_si512(reinterpret_cast<__m512i*>(dst) + 1, b);
    _mm512_stream_si512(reinterpret_cast<__m512i*>(dst) + 2, c);
    _mm512_stream_si512(reinterpret_cast<__m512i*>(dst) + 3, d);
    dst += 4 * sizeof(__m512i);
    src += 4 * sizeof(__m512i);
    n -= 4 * sizeof(__m512i);
  }
  while (n >= sizeof(__m512i)) {
    _mm512_stream_si512(reinterpret_cast<__m512i*>(dst),
                        _mm512_loadu_si512(src));
    dst += sizeof(__m512i);
    src += sizeof(__m512i);
    n -= sizeof(__m512i);
  }
  if (n != 0) std::memcpy(dst, src, n);
  _mm_sfence();
}

#endif // HMR_COPY_X86

// ------------------------------------------------------- dispatch

bool impl_supported(CopyImpl impl) {
  switch (impl) {
    case CopyImpl::Scalar:
      return true;
#if HMR_COPY_X86
    case CopyImpl::SSE2:
      return __builtin_cpu_supports("sse2") != 0;
    case CopyImpl::AVX2:
      return __builtin_cpu_supports("avx2") != 0;
    case CopyImpl::AVX512:
      return __builtin_cpu_supports("avx512f") != 0;
#else
    default:
      return false;
#endif
  }
  return false;
}

CopyImpl pick_impl() {
  if (const char* env = std::getenv("HMR_COPY_IMPL")) {
    const std::string want(env);
    CopyImpl forced = CopyImpl::Scalar;
    bool known = true;
    if (want == "scalar") {
      forced = CopyImpl::Scalar;
    } else if (want == "sse2") {
      forced = CopyImpl::SSE2;
    } else if (want == "avx2") {
      forced = CopyImpl::AVX2;
    } else if (want == "avx512") {
      forced = CopyImpl::AVX512;
    } else {
      known = false;
    }
    if (known && impl_supported(forced)) return forced;
    // Unknown or unsupported override: fall through to auto-detection
    // rather than crashing a run over an env typo.
  }
  if (impl_supported(CopyImpl::AVX512)) return CopyImpl::AVX512;
  if (impl_supported(CopyImpl::AVX2)) return CopyImpl::AVX2;
  if (impl_supported(CopyImpl::SSE2)) return CopyImpl::SSE2;
  return CopyImpl::Scalar;
}

std::uint64_t pick_threshold() {
  if (const char* env = std::getenv("HMR_COPY_NT_THRESHOLD")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return v;
  }
  return kDefaultNtThreshold;
}

std::atomic<CopyImpl>& impl_slot() {
  static std::atomic<CopyImpl> slot{pick_impl()};
  return slot;
}

struct ThresholdEnvInit {
  ThresholdEnvInit() { g_nt_threshold.store(pick_threshold()); }
};
ThresholdEnvInit g_threshold_env_init;

void dispatch_nt(CopyImpl impl, std::byte* dst, const std::byte* src,
                 std::size_t n) {
  switch (impl) {
#if HMR_COPY_X86
    case CopyImpl::SSE2:
      nt_copy_sse2(dst, src, n);
      return;
    case CopyImpl::AVX2:
      nt_copy_avx2(dst, src, n);
      return;
    case CopyImpl::AVX512:
      nt_copy_avx512(dst, src, n);
      return;
#endif
    default:
      // Scalar has no NT-store form: plain memcpy, documented parity
      // (docs/PERF.md §4).
      std::memcpy(dst, src, n);
      return;
  }
}

void check_no_overlap(const void* dst, const void* src, std::size_t n) {
  const auto d = reinterpret_cast<std::uintptr_t>(dst);
  const auto s = reinterpret_cast<std::uintptr_t>(src);
  HMR_CHECK_MSG(d + n <= s || s + n <= d,
                "mem::copy ranges overlap (migrations move between "
                "distinct arenas; use memmove for aliasing copies)");
}

} // namespace

const char* copy_impl_name(CopyImpl impl) {
  switch (impl) {
    case CopyImpl::Scalar:
      return "scalar";
    case CopyImpl::SSE2:
      return "sse2";
    case CopyImpl::AVX2:
      return "avx2";
    case CopyImpl::AVX512:
      return "avx512";
  }
  return "?";
}

bool copy_impl_supported(CopyImpl impl) { return impl_supported(impl); }

CopyImpl copy_impl() { return impl_slot().load(std::memory_order_relaxed); }

void set_copy_impl(CopyImpl impl) {
  HMR_CHECK_MSG(impl_supported(impl),
                "forced copy impl not supported on this CPU");
  impl_slot().store(impl, std::memory_order_relaxed);
}

std::uint64_t copy_nt_threshold() {
  return g_nt_threshold.load(std::memory_order_relaxed);
}

void set_copy_nt_threshold(std::uint64_t bytes) {
  g_nt_threshold.store(bytes, std::memory_order_relaxed);
}

std::uint64_t copy_nt_copies() {
  return g_nt_copies.load(std::memory_order_relaxed);
}

std::uint64_t copy_nt_bytes() {
  return g_nt_bytes.load(std::memory_order_relaxed);
}

void copy_with(CopyImpl impl, void* dst, const void* src, std::size_t bytes,
               Stream stream) {
  if (bytes == 0) return;
  check_no_overlap(dst, src, bytes);
  const std::uint64_t threshold =
      g_nt_threshold.load(std::memory_order_relaxed);
  const bool nt = stream == Stream::Always ||
                  (stream == Stream::Auto && threshold != 0 &&
                   bytes >= threshold);
  if (!nt || impl == CopyImpl::Scalar) {
    std::memcpy(dst, src, bytes);
    return;
  }
  dispatch_nt(impl, static_cast<std::byte*>(dst),
              static_cast<const std::byte*>(src), bytes);
  g_nt_copies.fetch_add(1, std::memory_order_relaxed);
  g_nt_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void copy(void* dst, const void* src, std::size_t bytes, Stream stream) {
  copy_with(copy_impl(), dst, src, bytes, stream);
}

} // namespace hmr::mem
