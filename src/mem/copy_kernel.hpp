#pragma once

#include <cstddef>
#include <cstdint>

/// Data-movement kernel layer (docs/PERF.md §4).
///
/// `hmr::mem::copy` is the single copy primitive under every migration
/// path (`MemoryManager::migrate`, `ChunkRing::work_on`, the small-copy
/// fast path).  Below the non-temporal threshold it is `std::memcpy`;
/// at or above it the dispatched SIMD kernel uses streaming
/// (non-temporal) stores, so multi-MiB tier migrations stop evicting
/// the PEs' working sets from cache on the way through.
///
/// The implementation is picked once per process, at first use, from
/// what the CPU actually supports (AVX-512F > AVX2 > SSE2 > scalar) via
/// `__builtin_cpu_supports`.  Environment overrides for experiments:
///
///   HMR_COPY_IMPL=scalar|sse2|avx2|avx512   force an implementation
///   HMR_COPY_NT_THRESHOLD=<bytes>           NT-store cutover (0 = off)
namespace hmr::mem {

enum class CopyImpl : std::uint8_t { Scalar = 0, SSE2, AVX2, AVX512 };

/// Human-readable name ("scalar", "sse2", "avx2", "avx512").
const char* copy_impl_name(CopyImpl impl);

/// True when `impl` can run on this CPU (Scalar always can).
bool copy_impl_supported(CopyImpl impl);

/// The implementation `copy` dispatches to (resolved on first call).
CopyImpl copy_impl();

/// Force the dispatched implementation (tests/benches).  Aborts via
/// HMR_CHECK when the CPU does not support it.
void set_copy_impl(CopyImpl impl);

/// Byte size at which `copy` switches to non-temporal stores.  0 means
/// NT stores are disabled and every copy is a plain memcpy.
std::uint64_t copy_nt_threshold();
void set_copy_nt_threshold(std::uint64_t bytes);

/// Streaming-store policy for a single copy call.
enum class Stream : std::uint8_t {
  Auto,   ///< NT stores iff bytes >= copy_nt_threshold()
  Always, ///< force NT stores (caller knows the *job* is large, e.g. a
          ///< ChunkRing slice of a multi-MiB migration)
  Never,  ///< plain memcpy regardless of size
};

/// THE copy primitive.  [dst,dst+bytes) and [src,src+bytes) must not
/// overlap (HMR_CHECK'd — migrations move between distinct arenas).
void copy(void* dst, const void* src, std::size_t bytes,
          Stream stream = Stream::Auto);

/// Run a copy through a specific implementation (equivalence tests and
/// the copy_bw bench).  Same overlap contract as `copy`.
void copy_with(CopyImpl impl, void* dst, const void* src, std::size_t bytes,
               Stream stream = Stream::Auto);

/// Process-wide counters: copies that took the NT-store path, and the
/// bytes they moved.  Exported as hmr_copy_nt_* metrics.
std::uint64_t copy_nt_copies();
std::uint64_t copy_nt_bytes();

} // namespace hmr::mem
