#include "mem/memory_manager.hpp"

#include <chrono>
#include <cmath>

#include "mem/copy_kernel.hpp"
#include "util/check.hpp"

namespace hmr::mem {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

MemoryManager::MemoryManager(std::vector<TierSpec> tiers, bool enable_pool)
    : pool_enabled_(enable_pool) {
  HMR_CHECK_MSG(!tiers.empty(), "need at least one tier");
  arenas_.reserve(tiers.size());
  for (auto& spec : tiers) {
    auto ts = std::make_unique<TierState>();
    TierArena::Options opts;
    opts.backing = spec.backing;
    opts.hugepage = spec.hugepage;
    opts.numa_node = spec.numa_node;
    ts->arena = std::make_unique<TierArena>(spec.name, spec.capacity,
                                            /*alignment=*/64, opts);
    arenas_.push_back(std::move(ts));
  }
  stats_.resize(arenas_.size() * arenas_.size());
  shadow_bytes_.resize(arenas_.size(), 0);
}

std::vector<MemoryManager::TierSpec> MemoryManager::specs_from_model(
    const hw::MachineModel& model, double scale) {
  HMR_CHECK(scale > 0);
  std::vector<TierSpec> specs;
  specs.reserve(model.tiers.size());
  for (const auto& t : model.tiers) {
    TierSpec spec;
    spec.name = t.name;
    spec.capacity = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(t.capacity) * scale));
    spec.numa_node = t.numa_node;
    specs.push_back(std::move(spec));
  }
  return specs;
}

MemoryManager MemoryManager::from_model(const hw::MachineModel& model,
                                        double scale, bool enable_pool) {
  return MemoryManager(specs_from_model(model, scale), enable_pool);
}

void* MemoryManager::alloc_locked(TierState& ts, std::uint64_t bytes,
                                  bool* from_pool) {
  if (from_pool) *from_pool = false;
  if (pool_enabled_) {
    if (void* p = ts.pool.get(bytes)) {
      if (from_pool) *from_pool = true;
      return p;
    }
  }
  return ts.arena->alloc(bytes);
}

void MemoryManager::free_locked(TierState& ts, void* p,
                                std::uint64_t bytes) {
  if (pool_enabled_ && bytes > 0) {
    ts.pool.put(p, bytes);
  } else {
    ts.arena->free(p);
  }
}

void* MemoryManager::alloc_on_tier(std::uint64_t bytes, TierId t) {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  TierState& ts = *arenas_[t];
  std::lock_guard lock(ts.mu);
  return alloc_locked(ts, bytes, nullptr);
}

void MemoryManager::free_on_tier(void* p, TierId t) {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  TierState& ts = *arenas_[t];
  std::lock_guard lock(ts.mu);
  // Raw frees bypass the pool: callers of the numa-style API manage
  // exact lifetimes themselves.
  ts.arena->free(p);
}

BlockId MemoryManager::register_block(std::uint64_t bytes, TierId initial) {
  HMR_CHECK_MSG(initial < arenas_.size(), "bad tier id");
  HMR_CHECK_MSG(bytes > 0, "zero-byte block");
  void* p = nullptr;
  {
    TierState& ts = *arenas_[initial];
    std::lock_guard lock(ts.mu);
    p = alloc_locked(ts, bytes, nullptr);
  }
  if (!p && zero_copy_ && reclaim_shadows(initial) > 0) {
    TierState& ts = *arenas_[initial];
    std::lock_guard lock(ts.mu);
    p = alloc_locked(ts, bytes, nullptr);
  }
  if (!p) return kInvalidBlock;
  std::lock_guard lock(blocks_mu_);
  blocks_.push_back({p, bytes, initial, /*live=*/true, /*migrating=*/false});
  return static_cast<BlockId>(blocks_.size() - 1);
}

void MemoryManager::unregister_block(BlockId b) {
  void* p = nullptr;
  std::uint64_t bytes = 0;
  TierId tier = 0;
  void* shadow = nullptr;
  TierId shadow_tier = 0;
  {
    std::lock_guard lock(blocks_mu_);
    HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live,
                  "unregistering dead block");
    HMR_CHECK_MSG(!blocks_[b].migrating, "unregistering mid-migration");
    p = blocks_[b].ptr;
    bytes = blocks_[b].bytes;
    tier = blocks_[b].tier;
    shadow = blocks_[b].shadow;
    shadow_tier = blocks_[b].shadow_tier;
    blocks_[b].live = false;
    blocks_[b].ptr = nullptr;
    blocks_[b].shadow = nullptr;
    if (shadow != nullptr) shadow_bytes_[shadow_tier] -= bytes;
  }
  {
    TierState& ts = *arenas_[tier];
    std::lock_guard lock(ts.mu);
    free_locked(ts, p, bytes);
  }
  if (shadow != nullptr) {
    TierState& ts = *arenas_[shadow_tier];
    std::lock_guard lock(ts.mu);
    free_locked(ts, shadow, bytes);
  }
}

void* MemoryManager::block_ptr(BlockId b) const {
  std::lock_guard lock(blocks_mu_);
  HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
  return blocks_[b].ptr;
}

std::uint64_t MemoryManager::block_bytes(BlockId b) const {
  std::lock_guard lock(blocks_mu_);
  HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
  return blocks_[b].bytes;
}

TierId MemoryManager::block_tier(BlockId b) const {
  std::lock_guard lock(blocks_mu_);
  HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
  return blocks_[b].tier;
}

MigrateResult MemoryManager::migrate(BlockId b, TierId dst,
                                     bool copy_contents) {
  HMR_CHECK_MSG(dst < arenas_.size(), "bad tier id");
  MigrateResult r;

  void* src_ptr = nullptr;
  std::uint64_t bytes = 0;
  TierId src_tier = 0;
  void* old_shadow = nullptr;
  TierId old_shadow_tier = 0;
  {
    std::lock_guard lock(blocks_mu_);
    HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
    BlockRec& rec = blocks_[b];
    HMR_CHECK_MSG(!rec.migrating,
                  "concurrent migration of one block (policy bug)");
    if (rec.tier == dst) {
      r.ok = true;
      return r;
    }
    src_tier = rec.tier;
    bytes = rec.bytes;

    // Zero-copy admission: the destination still holds this block's
    // shadow — a byte-identical stale residence — so the migration is
    // a pointer swap.  No alloc, no copy, no free; the old primary
    // stays behind as the new shadow.  (With copy_contents == false
    // the writer is about to rewrite the block, so the swapped-out
    // primary is dropped instead of retained: its contents will no
    // longer match.)
    if (rec.shadow != nullptr && rec.shadow_tier == dst) {
      std::swap(rec.ptr, rec.shadow);
      rec.shadow_tier = src_tier;
      shadow_bytes_[dst] -= bytes;
      if (copy_contents) {
        shadow_bytes_[src_tier] += bytes;
      } else {
        old_shadow = rec.shadow;
        old_shadow_tier = src_tier;
        rec.shadow = nullptr;
      }
      rec.tier = dst;
      zero_copy_admissions_.fetch_add(1, std::memory_order_relaxed);
      zero_copy_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      r.ok = true;
      r.zero_copy = true;
    } else {
      rec.migrating = true;
      src_ptr = rec.ptr;
      // A single shadow per block: this migration will retain the
      // source buffer (or none), so any older shadow goes now — before
      // step 1, since it may be holding the very capacity the
      // destination alloc needs.
      if (rec.shadow != nullptr) {
        old_shadow = rec.shadow;
        old_shadow_tier = rec.shadow_tier;
        rec.shadow = nullptr;
        shadow_bytes_[old_shadow_tier] -= bytes;
      }
    }
  }
  if (old_shadow != nullptr) {
    TierState& ts = *arenas_[old_shadow_tier];
    std::lock_guard lock(ts.mu);
    free_locked(ts, old_shadow, bytes);
  }
  if (r.zero_copy) {
    std::lock_guard lock(stats_mu_);
    // The logical migration still happened: traffic stats stay
    // identical with zero-copy on or off (equivalence contract).
    MigrationStats& s = stats_[src_tier * arenas_.size() + dst];
    ++s.count;
    s.bytes += bytes;
    return r;
  }

  // Step 1: create space on the destination (numa_alloc_onnode).
  void* dst_ptr = nullptr;
  {
    const double t0 = now_s();
    TierState& ts = *arenas_[dst];
    std::lock_guard lock(ts.mu);
    dst_ptr = alloc_locked(ts, bytes, &r.pooled);
    r.alloc_s = now_s() - t0;
  }
  if (!dst_ptr && zero_copy_ && reclaim_shadows(dst) > 0) {
    // Shadows are a cache, not a reservation: other blocks' stale
    // residences on the destination yield to a real allocation.
    const double t0 = now_s();
    TierState& ts = *arenas_[dst];
    std::lock_guard lock(ts.mu);
    dst_ptr = alloc_locked(ts, bytes, &r.pooled);
    r.alloc_s += now_s() - t0;
  }
  if (!dst_ptr) {
    std::lock_guard lock(blocks_mu_);
    blocks_[b].migrating = false;
    r.ok = false;
    return r;
  }

  // Step 2: move the data, outside any lock so migrations of distinct
  // blocks overlap.  Skipped for write-only destinations.  Large
  // copies stream through the ChunkRing so idle IO threads can assist
  // (several cores cooperating on one block).
  if (copy_contents) {
    const double t0 = now_s();
    if (chunk_threshold_ > 0 && bytes >= chunk_threshold_) {
      const CopyOutcome co = ring_.run(dst_ptr, src_ptr, bytes);
      r.chunked = true;
      r.chunks = co.chunks;
      r.assisted_chunks = co.assisted_chunks;
    } else {
      copy(dst_ptr, src_ptr, bytes);
    }
    r.copy_s = now_s() - t0;
  }

  // Step 3: free the source buffer (numa_free) — unless zero-copy
  // retention keeps it as the block's shadow for a later swap back.
  const bool retain = zero_copy_ && copy_contents;
  if (!retain) {
    const double t0 = now_s();
    TierState& ts = *arenas_[src_tier];
    std::lock_guard lock(ts.mu);
    free_locked(ts, src_ptr, bytes);
    r.free_s = now_s() - t0;
  }

  {
    std::lock_guard lock(blocks_mu_);
    BlockRec& rec = blocks_[b];
    rec.ptr = dst_ptr;
    rec.tier = dst;
    rec.migrating = false;
    if (retain) {
      HMR_DCHECK(rec.shadow == nullptr);
      rec.shadow = src_ptr;
      rec.shadow_tier = src_tier;
      shadow_bytes_[src_tier] += bytes;
    }
  }
  {
    std::lock_guard lock(stats_mu_);
    MigrationStats& s = stats_[src_tier * arenas_.size() + dst];
    ++s.count;
    s.bytes += bytes;
  }
  r.ok = true;
  return r;
}

void MemoryManager::mark_dirty(BlockId b) {
  void* shadow = nullptr;
  TierId shadow_tier = 0;
  std::uint64_t bytes = 0;
  {
    std::lock_guard lock(blocks_mu_);
    HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
    BlockRec& rec = blocks_[b];
    if (rec.shadow == nullptr) return;
    shadow = rec.shadow;
    shadow_tier = rec.shadow_tier;
    bytes = rec.bytes;
    rec.shadow = nullptr;
    shadow_bytes_[shadow_tier] -= bytes;
  }
  shadow_invalidations_.fetch_add(1, std::memory_order_relaxed);
  TierState& ts = *arenas_[shadow_tier];
  std::lock_guard lock(ts.mu);
  free_locked(ts, shadow, bytes);
}

std::uint64_t MemoryManager::reclaim_shadows(TierId t) {
  std::vector<std::pair<void*, std::uint64_t>> victims;
  {
    std::lock_guard lock(blocks_mu_);
    for (BlockRec& rec : blocks_) {
      if (!rec.live || rec.shadow == nullptr || rec.shadow_tier != t) {
        continue;
      }
      victims.emplace_back(rec.shadow, rec.bytes);
      rec.shadow = nullptr;
      shadow_bytes_[t] -= rec.bytes;
    }
  }
  if (victims.empty()) return 0;
  std::uint64_t released = 0;
  TierState& ts = *arenas_[t];
  std::lock_guard lock(ts.mu);
  for (const auto& [p, bytes] : victims) {
    // Straight to the arena (bypassing the pool): reclaim exists to
    // release capacity, and a pooled buffer only helps same-size
    // requests.
    ts.arena->free(p);
    released += bytes;
  }
  shadow_invalidations_.fetch_add(victims.size(),
                                  std::memory_order_relaxed);
  return released;
}

void MemoryManager::set_chunked_copy(std::uint64_t threshold,
                                     std::uint64_t chunk) {
  chunk_threshold_ = threshold;
  if (threshold > 0) {
    HMR_CHECK_MSG(chunk > 0, "chunk size must be positive");
    ring_.set_chunk_bytes(chunk);
  }
}

std::size_t MemoryManager::assist_copies() { return ring_.assist(); }

bool MemoryManager::copy_assist_pending() const {
  return chunk_threshold_ > 0 && ring_.assist_pending();
}

TierUsage MemoryManager::usage(TierId t) const {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  TierUsage u;
  {
    const TierState& ts = *arenas_[t];
    std::lock_guard lock(ts.mu);
    u.capacity = ts.arena->capacity();
    u.used = ts.arena->used();
    u.pooled = ts.pool.pooled_bytes();
    u.high_water = ts.arena->high_water();
    u.live_blocks = ts.arena->live_allocations();
  }
  {
    std::lock_guard lock(blocks_mu_);
    u.shadow = shadow_bytes_[t];
  }
  return u;
}

const TierArena& MemoryManager::tier_arena(TierId t) const {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  return *arenas_[t]->arena;
}

MigrationStats MemoryManager::migration_stats(TierId src, TierId dst) const {
  HMR_CHECK(src < arenas_.size() && dst < arenas_.size());
  std::lock_guard lock(stats_mu_);
  return stats_[src * arenas_.size() + dst];
}

PoolStats MemoryManager::pool_stats(TierId t) const {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  const TierState& ts = *arenas_[t];
  std::lock_guard lock(ts.mu);
  return {ts.pool.hits(), ts.pool.misses()};
}

void MemoryManager::trim_pools() {
  for (auto& tsp : arenas_) {
    TierState& ts = *tsp;
    std::lock_guard lock(ts.mu);
    ts.pool.drain([&](void* p) { ts.arena->free(p); });
  }
}

} // namespace hmr::mem
