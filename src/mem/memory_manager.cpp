#include "mem/memory_manager.hpp"

#include <chrono>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace hmr::mem {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

MemoryManager::MemoryManager(std::vector<TierSpec> tiers, bool enable_pool)
    : pool_enabled_(enable_pool) {
  HMR_CHECK_MSG(!tiers.empty(), "need at least one tier");
  arenas_.reserve(tiers.size());
  for (auto& spec : tiers) {
    auto ts = std::make_unique<TierState>();
    ts->arena = std::make_unique<TierArena>(spec.name, spec.capacity);
    arenas_.push_back(std::move(ts));
  }
  stats_.resize(arenas_.size() * arenas_.size());
}

std::vector<MemoryManager::TierSpec> MemoryManager::specs_from_model(
    const hw::MachineModel& model, double scale) {
  HMR_CHECK(scale > 0);
  std::vector<TierSpec> specs;
  specs.reserve(model.tiers.size());
  for (const auto& t : model.tiers) {
    specs.push_back(
        {t.name, static_cast<std::uint64_t>(
                     std::llround(static_cast<double>(t.capacity) * scale))});
  }
  return specs;
}

MemoryManager MemoryManager::from_model(const hw::MachineModel& model,
                                        double scale, bool enable_pool) {
  return MemoryManager(specs_from_model(model, scale), enable_pool);
}

void* MemoryManager::alloc_locked(TierState& ts, std::uint64_t bytes,
                                  bool* from_pool) {
  if (from_pool) *from_pool = false;
  if (pool_enabled_) {
    if (void* p = ts.pool.get(bytes)) {
      if (from_pool) *from_pool = true;
      return p;
    }
  }
  return ts.arena->alloc(bytes);
}

void MemoryManager::free_locked(TierState& ts, void* p,
                                std::uint64_t bytes) {
  if (pool_enabled_ && bytes > 0) {
    ts.pool.put(p, bytes);
  } else {
    ts.arena->free(p);
  }
}

void* MemoryManager::alloc_on_tier(std::uint64_t bytes, TierId t) {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  TierState& ts = *arenas_[t];
  std::lock_guard lock(ts.mu);
  return alloc_locked(ts, bytes, nullptr);
}

void MemoryManager::free_on_tier(void* p, TierId t) {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  TierState& ts = *arenas_[t];
  std::lock_guard lock(ts.mu);
  // Raw frees bypass the pool: callers of the numa-style API manage
  // exact lifetimes themselves.
  ts.arena->free(p);
}

BlockId MemoryManager::register_block(std::uint64_t bytes, TierId initial) {
  HMR_CHECK_MSG(initial < arenas_.size(), "bad tier id");
  HMR_CHECK_MSG(bytes > 0, "zero-byte block");
  void* p = nullptr;
  {
    TierState& ts = *arenas_[initial];
    std::lock_guard lock(ts.mu);
    p = alloc_locked(ts, bytes, nullptr);
  }
  if (!p) return kInvalidBlock;
  std::lock_guard lock(blocks_mu_);
  blocks_.push_back({p, bytes, initial, /*live=*/true, /*migrating=*/false});
  return static_cast<BlockId>(blocks_.size() - 1);
}

void MemoryManager::unregister_block(BlockId b) {
  void* p = nullptr;
  std::uint64_t bytes = 0;
  TierId tier = 0;
  {
    std::lock_guard lock(blocks_mu_);
    HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live,
                  "unregistering dead block");
    HMR_CHECK_MSG(!blocks_[b].migrating, "unregistering mid-migration");
    p = blocks_[b].ptr;
    bytes = blocks_[b].bytes;
    tier = blocks_[b].tier;
    blocks_[b].live = false;
    blocks_[b].ptr = nullptr;
  }
  TierState& ts = *arenas_[tier];
  std::lock_guard lock(ts.mu);
  free_locked(ts, p, bytes);
}

void* MemoryManager::block_ptr(BlockId b) const {
  std::lock_guard lock(blocks_mu_);
  HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
  return blocks_[b].ptr;
}

std::uint64_t MemoryManager::block_bytes(BlockId b) const {
  std::lock_guard lock(blocks_mu_);
  HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
  return blocks_[b].bytes;
}

TierId MemoryManager::block_tier(BlockId b) const {
  std::lock_guard lock(blocks_mu_);
  HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
  return blocks_[b].tier;
}

MigrateResult MemoryManager::migrate(BlockId b, TierId dst,
                                     bool copy_contents) {
  HMR_CHECK_MSG(dst < arenas_.size(), "bad tier id");
  MigrateResult r;

  void* src_ptr = nullptr;
  std::uint64_t bytes = 0;
  TierId src_tier = 0;
  {
    std::lock_guard lock(blocks_mu_);
    HMR_CHECK_MSG(b < blocks_.size() && blocks_[b].live, "dead block");
    BlockRec& rec = blocks_[b];
    HMR_CHECK_MSG(!rec.migrating,
                  "concurrent migration of one block (policy bug)");
    if (rec.tier == dst) {
      r.ok = true;
      return r;
    }
    rec.migrating = true;
    src_ptr = rec.ptr;
    bytes = rec.bytes;
    src_tier = rec.tier;
  }

  // Step 1: create space on the destination (numa_alloc_onnode).
  void* dst_ptr = nullptr;
  {
    const double t0 = now_s();
    TierState& ts = *arenas_[dst];
    std::lock_guard lock(ts.mu);
    dst_ptr = alloc_locked(ts, bytes, &r.pooled);
    r.alloc_s = now_s() - t0;
  }
  if (!dst_ptr) {
    std::lock_guard lock(blocks_mu_);
    blocks_[b].migrating = false;
    r.ok = false;
    return r;
  }

  // Step 2: move the data, outside any lock so migrations of distinct
  // blocks overlap.  Skipped for write-only destinations.  Large
  // copies stream through the ChunkRing so idle IO threads can assist
  // (several cores cooperating on one block).
  if (copy_contents) {
    const double t0 = now_s();
    if (chunk_threshold_ > 0 && bytes >= chunk_threshold_) {
      const CopyOutcome co = ring_.run(dst_ptr, src_ptr, bytes);
      r.chunked = true;
      r.chunks = co.chunks;
      r.assisted_chunks = co.assisted_chunks;
    } else {
      std::memcpy(dst_ptr, src_ptr, bytes);
    }
    r.copy_s = now_s() - t0;
  }

  // Step 3: free the source buffer (numa_free).
  {
    const double t0 = now_s();
    TierState& ts = *arenas_[src_tier];
    std::lock_guard lock(ts.mu);
    free_locked(ts, src_ptr, bytes);
    r.free_s = now_s() - t0;
  }

  {
    std::lock_guard lock(blocks_mu_);
    BlockRec& rec = blocks_[b];
    rec.ptr = dst_ptr;
    rec.tier = dst;
    rec.migrating = false;
  }
  {
    std::lock_guard lock(stats_mu_);
    MigrationStats& s = stats_[src_tier * arenas_.size() + dst];
    ++s.count;
    s.bytes += bytes;
  }
  r.ok = true;
  return r;
}

void MemoryManager::set_chunked_copy(std::uint64_t threshold,
                                     std::uint64_t chunk) {
  chunk_threshold_ = threshold;
  if (threshold > 0) {
    HMR_CHECK_MSG(chunk > 0, "chunk size must be positive");
    ring_.set_chunk_bytes(chunk);
  }
}

std::size_t MemoryManager::assist_copies() { return ring_.assist(); }

bool MemoryManager::copy_assist_pending() const {
  return chunk_threshold_ > 0 && ring_.assist_pending();
}

TierUsage MemoryManager::usage(TierId t) const {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  const TierState& ts = *arenas_[t];
  std::lock_guard lock(ts.mu);
  TierUsage u;
  u.capacity = ts.arena->capacity();
  u.used = ts.arena->used();
  u.pooled = ts.pool.pooled_bytes();
  u.high_water = ts.arena->high_water();
  u.live_blocks = ts.arena->live_allocations();
  return u;
}

MigrationStats MemoryManager::migration_stats(TierId src, TierId dst) const {
  HMR_CHECK(src < arenas_.size() && dst < arenas_.size());
  std::lock_guard lock(stats_mu_);
  return stats_[src * arenas_.size() + dst];
}

PoolStats MemoryManager::pool_stats(TierId t) const {
  HMR_CHECK_MSG(t < arenas_.size(), "bad tier id");
  const TierState& ts = *arenas_[t];
  std::lock_guard lock(ts.mu);
  return {ts.pool.hits(), ts.pool.misses()};
}

void MemoryManager::trim_pools() {
  for (auto& tsp : arenas_) {
    TierState& ts = *tsp;
    std::lock_guard lock(ts.mu);
    ts.pool.drain([&](void* p) { ts.arena->free(p); });
  }
}

} // namespace hmr::mem
