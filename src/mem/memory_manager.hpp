#pragma once
// MemoryManager: the node-level heterogeneous-memory substrate.
//
// Owns one TierArena per memory tier plus a registry of *blocks* — the
// unit the runtime migrates (the paper's CkIOHandle-backed data blocks).
// Migration follows the paper's §IV-C recipe exactly:
//
//   1. numa_alloc_onnode on the destination tier   (alloc_on_tier)
//   2. memcpy src -> dst                           (real bytes move)
//   3. numa_free the source buffer                 (free_on_tier)
//
// An optional per-tier pooling allocator implements the paper's stated
// future optimization ("the creating of space in destination memory
// could be avoided if we maintain a memory pool in each memory type");
// bench/abl_pool_migrate measures what it buys.
//
// Thread safety: all metadata operations take an internal mutex.  The
// memcpy itself runs outside the lock, so concurrent migrations of
// *different* blocks proceed in parallel.  Callers (the ooc policy)
// guarantee a block is never migrated concurrently with itself or with
// a task reading it — that is precisely the refcount/state protocol the
// paper's runtime enforces.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hw/machine_model.hpp"
#include "mem/arena.hpp"
#include "mem/chunked_copy.hpp"
#include "mem/pool.hpp"

namespace hmr::mem {

using hw::TierId;

/// Handle for a registered, migratable data block.
using BlockId = std::uint64_t;
inline constexpr BlockId kInvalidBlock = ~0ull;

/// Timing breakdown of one migration (for bench/fig07 and abl_pool).
struct MigrateResult {
  bool ok = false;       // false: destination tier had no space
  double alloc_s = 0;    // step 1 (0 when served from the pool)
  double copy_s = 0;     // step 2
  double free_s = 0;     // step 3 (0 when returned to the pool)
  bool pooled = false;   // destination buffer came from the pool
  bool chunked = false;  // step 2 went through the ChunkRing
  bool zero_copy = false; // admitted via a retained shadow: no memcpy
  std::uint32_t chunks = 0;          // chunks copied (chunked only)
  std::uint32_t assisted_chunks = 0; // copied by assisting threads
  double total() const { return alloc_s + copy_s + free_s; }
};

struct TierUsage {
  std::uint64_t capacity = 0;
  std::uint64_t used = 0;        // live blocks + pooled buffers
  std::uint64_t pooled = 0;      // bytes parked in the pool
  std::uint64_t shadow = 0;      // bytes held by zero-copy shadows
  std::uint64_t high_water = 0;
  std::uint64_t live_blocks = 0;
};

struct MigrationStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

struct PoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class MemoryManager {
public:
  struct TierSpec {
    std::string name;
    std::uint64_t capacity = 0;
    TierArena::Backing backing = TierArena::Backing::NewDelete;
    bool hugepage = true; ///< MADV_HUGEPAGE when backing == Mmap
    int numa_node = -1;   ///< libnuma binding (HMR_NUMA builds only)
  };

  explicit MemoryManager(std::vector<TierSpec> tiers,
                         bool enable_pool = false);

  /// Tier specs shaped like `model`, scaled by `scale` (e.g. 1/1024
  /// turns the 16 GB / 96 GB KNL node into a 16 MiB / 96 MiB testbed).
  static std::vector<TierSpec> specs_from_model(const hw::MachineModel& model,
                                                double scale);

  /// Convenience: construct directly from a scaled model.
  static MemoryManager from_model(const hw::MachineModel& model,
                                  double scale, bool enable_pool = false);

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  std::size_t num_tiers() const { return arenas_.size(); }

  // ---- raw numa_alloc_onnode-shaped API ----

  /// Allocate `bytes` on tier `t`; nullptr when the tier is full.
  void* alloc_on_tier(std::uint64_t bytes, TierId t);
  void free_on_tier(void* p, TierId t);

  // ---- block registry (the unit of prefetch/eviction) ----

  /// Register a new block and allocate its storage on `initial`.
  /// Returns kInvalidBlock when the tier has no space.
  BlockId register_block(std::uint64_t bytes, TierId initial);

  /// Release a block's storage and forget it.
  void unregister_block(BlockId b);

  void* block_ptr(BlockId b) const;
  std::uint64_t block_bytes(BlockId b) const;
  TierId block_tier(BlockId b) const;

  /// Migrate block `b` to tier `dst` (alloc + memcpy + free).  Returns
  /// ok=false and leaves the block untouched when `dst` has no space.
  /// No-op success when the block already lives on `dst`.
  /// `copy_contents = false` skips the memcpy (valid only when the
  /// next access is write-only — the writeonly_nocopy optimization);
  /// the destination buffer's contents are then indeterminate.
  MigrateResult migrate(BlockId b, TierId dst, bool copy_contents = true);

  // ---- cooperative chunked copies ----
  //
  // With chunking enabled, migrate() streams copies of at least
  // `threshold` bytes through a ChunkRing in `chunk` -byte pieces, and
  // idle threads (the runtime's IO threads) can join in via
  // assist_copies() so several cores share one large transfer.

  /// Enable (threshold > 0) or disable (threshold = 0) chunked copies.
  /// Not thread-safe against concurrent migrate(): configure before
  /// the executor starts moving data.
  void set_chunked_copy(std::uint64_t threshold, std::uint64_t chunk);

  bool chunked_copy_enabled() const { return chunk_threshold_ > 0; }
  std::uint64_t chunk_threshold() const { return chunk_threshold_; }

  /// Copy chunks of any in-flight chunked migration; returns chunks
  /// copied (0 = nothing pending).  Safe from any thread.
  std::size_t assist_copies();

  /// Cheap poll for IO-thread idle loops.
  bool copy_assist_pending() const;

  /// The ring's monotonic counters (jobs / chunks / assisted chunks).
  const ChunkRing& chunk_ring() const { return ring_; }

  // ---- zero-copy admission (docs/PERF.md §4) ----
  //
  // With zero-copy enabled, a copying migration retains the *source*
  // buffer as the block's "shadow": a byte-identical stale residence.
  // A later migration whose destination still holds a valid shadow is
  // admitted by swapping primary and shadow — no alloc, no memcpy, no
  // free — which covers both a re-fetch of a block that was demoted
  // unmodified and a demotion returning to where the block came from.
  // Shadows are invalidated by writes (the runtime calls mark_dirty
  // after every writing task) and reclaimed transparently when their
  // tier runs out of space for real allocations.  One shadow per
  // block: a newer residence replaces an older one.

  /// Enable/disable shadow retention.  Configure before traffic;
  /// disabling does not free already-retained shadows.
  void set_zero_copy(bool on) { zero_copy_ = on; }
  bool zero_copy_enabled() const { return zero_copy_; }

  /// The block's contents changed: drop its shadow (if any).  Must be
  /// called between a write and the block's next migration; the
  /// runtime does this for every ReadWrite/WriteOnly dependency.
  void mark_dirty(BlockId b);

  /// Migrations admitted without a copy, and the bytes they skipped.
  std::uint64_t zero_copy_admissions() const {
    return zero_copy_admissions_.load(std::memory_order_relaxed);
  }
  std::uint64_t zero_copy_bytes() const {
    return zero_copy_bytes_.load(std::memory_order_relaxed);
  }
  /// Shadows dropped by mark_dirty (writes) and by capacity reclaim.
  std::uint64_t shadow_invalidations() const {
    return shadow_invalidations_.load(std::memory_order_relaxed);
  }

  // ---- introspection ----

  TierUsage usage(TierId t) const;
  /// Migration traffic observed from tier `src` to tier `dst`.
  MigrationStats migration_stats(TierId src, TierId dst) const;

  bool pool_enabled() const { return pool_enabled_; }
  /// Buffer-pool hit/miss counters for tier `t`.
  PoolStats pool_stats(TierId t) const;
  /// Drop all pooled buffers back to the arenas (frees their capacity).
  void trim_pools();

  /// The arena backing tier `t` (backing mode / NUMA introspection).
  const TierArena& tier_arena(TierId t) const;

private:
  struct BlockRec {
    void* ptr = nullptr;
    std::uint64_t bytes = 0;
    TierId tier = 0;
    bool live = false;
    bool migrating = false; // guards the paper's "one migration at a time"
    // Zero-copy shadow: a stale residence whose contents are
    // byte-identical to ptr's (or nullptr).  Guarded by blocks_mu_.
    void* shadow = nullptr;
    TierId shadow_tier = 0;
  };

  struct TierState {
    std::unique_ptr<TierArena> arena;
    BufferPool pool;
    mutable std::mutex mu;
  };

  void* alloc_locked(TierState& ts, std::uint64_t bytes, bool* from_pool);
  void free_locked(TierState& ts, void* p, std::uint64_t bytes);
  /// Free every retained shadow on tier `t` (capacity reclaim before
  /// failing a real allocation).  Returns bytes released.  Takes
  /// blocks_mu_ then t's tier mutex, never nested.
  std::uint64_t reclaim_shadows(TierId t);

  std::vector<std::unique_ptr<TierState>> arenas_;
  bool pool_enabled_;
  bool zero_copy_ = false;
  std::uint64_t chunk_threshold_ = 0; // 0 = chunking off
  ChunkRing ring_;

  std::atomic<std::uint64_t> zero_copy_admissions_{0};
  std::atomic<std::uint64_t> zero_copy_bytes_{0};
  std::atomic<std::uint64_t> shadow_invalidations_{0};

  mutable std::mutex blocks_mu_;
  std::vector<BlockRec> blocks_;
  std::vector<std::uint64_t> shadow_bytes_; // per tier, under blocks_mu_

  // stats_[src * num_tiers + dst]
  std::vector<MigrationStats> stats_;
  mutable std::mutex stats_mu_;
};

} // namespace hmr::mem
