#include "mem/pool.hpp"

#include "util/check.hpp"

namespace hmr::mem {

void BufferPool::put(void* p, std::uint64_t bytes) {
  HMR_CHECK(p != nullptr && bytes > 0);
  classes_[bytes].push_back(p);
  pooled_bytes_ += bytes;
}

void* BufferPool::get(std::uint64_t bytes) {
  auto it = classes_.find(bytes);
  if (it == classes_.end() || it->second.empty()) {
    ++misses_;
    return nullptr;
  }
  void* p = it->second.back();
  it->second.pop_back();
  pooled_bytes_ -= bytes;
  ++hits_;
  return p;
}

} // namespace hmr::mem
