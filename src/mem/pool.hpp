#pragma once
// BufferPool: size-class cache of freed tier buffers.
//
// Implements the paper's §IV-C future-work optimization: "the creating
// of space in destination memory could be avoided if we maintain a
// memory pool in each memory type".  Freed buffers are parked in
// per-size free lists instead of going back to the arena; a matching
// later allocation reuses one without touching the arena free list.
//
// Buffers are pooled by their exact rounded size.  HPC block sizes are
// highly repetitive (a chare's sub-grid, a matmul tile), so exact-size
// matching has a near-100% hit rate for the workloads in the paper.
//
// Not thread-safe: the owning MemoryManager serializes access per tier.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hmr::mem {

class BufferPool {
public:
  /// Park a buffer of `bytes` for reuse.
  void put(void* p, std::uint64_t bytes);

  /// Retrieve a parked buffer of exactly `bytes`; nullptr on miss.
  void* get(std::uint64_t bytes);

  /// Bytes currently parked.
  std::uint64_t pooled_bytes() const { return pooled_bytes_; }

  /// Remove every parked buffer, invoking `release(ptr)` on each.
  template <typename F>
  void drain(F&& release) {
    for (auto& [sz, list] : classes_) {
      for (void* p : list) release(p);
      pooled_bytes_ -= sz * list.size();
      list.clear();
    }
    classes_.clear();
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

private:
  std::unordered_map<std::uint64_t, std::vector<void*>> classes_;
  std::uint64_t pooled_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

} // namespace hmr::mem
