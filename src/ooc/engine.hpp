#pragma once
// Engine: the common interface of the prefetch/evict protocol
// implementations (the ROADMAP's "unify PolicyEngine and ShardedEngine"
// item).
//
// Two engines implement the paper's protocol today: the serial
// ooc::PolicyEngine (every strategy, advice, lazy eviction, watermark
// trims; callers serialize) and the concurrent rt::ShardedEngine
// (MultiIo + eager only; thread-safe).  They already agreed on the
// event vocabulary — this interface pins that agreement down so code
// that only *drives* an engine (executors, the multi-tenant serving
// decorator in src/serve) is written once and works against either.
//
// The interface is deliberately the intersection, not the union:
//   * on_task_complete carries the PE the task ran on.  The sharded
//     engine needs it to route the completion to the owning shard
//     without a global map; the serial engine ignores it (the task
//     record knows its PE).  Executors always know the PE, so the
//     wider signature costs them nothing.
//   * stats are returned by value as engine_stats() — the sharded
//     engine must sum over shards, so a reference is not available.
//     (The concrete classes keep their historical stats() accessors.)
//   * introspection is the subset both sides answer exactly enough
//     for decorators and telemetry: residency, per-level usage,
//     refcounts, waiting depth, quiescence, invariant audits.
//
// Thread safety follows the concrete engine: PolicyEngine callers
// serialize, ShardedEngine entry points are thread-safe.  Decorators
// must preserve the contract of whatever they wrap.

#include <cstdint>
#include <string>
#include <vector>

#include "ooc/types.hpp"

namespace hmr::ooc {

class Engine {
public:
  virtual ~Engine() = default;

  // ---- block registry ----

  /// Register a data block; returns the tier id its storage must be
  /// placed on.  Callers serialize registration against itself (both
  /// engines require it).
  virtual TierId add_block(BlockId b, std::uint64_t bytes) = 0;

  /// Forget a block.  Must be unreferenced and not in flight.
  virtual void remove_block(BlockId b) = 0;

  // ---- events (each returns the commands to execute) ----

  virtual std::vector<Command> on_task_arrived(const TaskDesc& task) = 0;
  virtual std::vector<Command> on_fetch_complete(BlockId b) = 0;
  virtual std::vector<Command> on_evict_complete(BlockId b) = 0;
  /// `pe` is the PE the task ran on (executors always know it; the
  /// sharded engine routes the completion by it).
  virtual std::vector<Command> on_task_complete(TaskId t,
                                                std::int32_t pe) = 0;

  // ---- introspection ----

  /// Aggregate counters (summed over shards where applicable).
  virtual EngineStats engine_stats() const = 0;

  /// True when every arrived task has completed and nothing is queued
  /// or in flight.
  virtual bool quiescent() const = 0;

  /// Tasks sitting in wait queues (admission not yet granted).
  virtual std::size_t total_waiting() const = 0;

  /// The placement hierarchy (levels, fastest first).
  virtual const std::vector<TierDesc>& tiers() const = 0;

  /// Bytes resident on (or in flight to) a hierarchy level.
  virtual std::uint64_t tier_used(std::int32_t level) const = 0;

  virtual BlockState block_state(BlockId b) const = 0;
  virtual std::int32_t block_level(BlockId b) const = 0;
  virtual std::uint32_t refcount(BlockId b) const = 0;

  /// Cross-check bookkeeping against ground truth; one human-readable
  /// line per violation (empty = clean).  Exactness caveats follow the
  /// concrete engine (the sharded audit is exact only at quiescence).
  virtual std::vector<std::string> audit_invariants(
      bool at_quiescence) const = 0;
};

} // namespace hmr::ooc
