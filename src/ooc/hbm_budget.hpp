#pragma once
// Deprecated compatibility shim: HbmBudget was generalized to the
// per-tier ooc::TierBudget when placement went N-tier.  Include
// ooc/tier_budget.hpp directly; this alias lasts one release.

#include "ooc/tier_budget.hpp"

namespace hmr::ooc {

using HbmBudget = TierBudget;

} // namespace hmr::ooc
