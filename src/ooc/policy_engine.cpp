#include "ooc/policy_engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmr::ooc {

const char* access_mode_name(AccessMode m) {
  switch (m) {
    case AccessMode::ReadOnly: return "readonly";
    case AccessMode::ReadWrite: return "readwrite";
    case AccessMode::WriteOnly: return "writeonly";
  }
  return "?";
}

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Naive: return "Naive";
    case Strategy::DdrOnly: return "DDR4only";
    case Strategy::HbmOnly: return "HBMonly";
    case Strategy::SingleIo: return "SingleIO";
    case Strategy::SyncNoIo: return "NoIOthread";
    case Strategy::MultiIo: return "MultipleIO";
  }
  return "?";
}

bool strategy_moves_data(Strategy s) {
  return s == Strategy::SingleIo || s == Strategy::SyncNoIo ||
         s == Strategy::MultiIo;
}

const char* block_state_name(BlockState s) {
  switch (s) {
    case BlockState::InSlow: return "INDDR";
    case BlockState::InFast: return "INHBM";
    case BlockState::FetchInFlight: return "FETCHING";
    case BlockState::EvictInFlight: return "EVICTING";
  }
  return "?";
}

const char* tier_backend_name(TierBackendKind k) {
  switch (k) {
    case TierBackendKind::LocalArena: return "local";
    case TierBackendKind::Remote: return "remote";
  }
  return "?";
}

std::vector<TierDesc> tiers_from_model(const hw::MachineModel& m) {
  HMR_CHECK_MSG(m.tiers.size() >= 2, "placement hierarchy needs >= 2 tiers");
  std::vector<std::size_t> order(m.tiers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Local tiers first (bandwidth order); remote pools always sit below
  // every local pool — a disaggregated tier is a backing store, not a
  // middle level, even when its nominal bandwidth beats local NVM.
  std::stable_sort(order.begin(), order.end(),
                   [&m](std::size_t a, std::size_t b) {
                     if (m.tiers[a].remote != m.tiers[b].remote) {
                       return !m.tiers[a].remote;
                     }
                     return m.tiers[a].read_bw > m.tiers[b].read_bw;
                   });
  std::vector<TierDesc> out;
  out.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const hw::MemoryTier& t = m.tiers[order[i]];
    TierDesc d;
    d.id = static_cast<TierId>(order[i]);
    // The slowest tier is the unbounded backing store (the paper's
    // "data always fits DDR" assumption, transplanted to the far end
    // of whatever hierarchy the model describes).
    d.capacity = i + 1 < order.size() ? t.capacity : 0;
    if (t.remote) {
      d.backend = TierBackendKind::Remote;
      if (t.read_bw > 0) d.remote.bandwidth = t.read_bw;
      if (t.latency > 0) d.remote.latency = t.latency;
    }
    out.push_back(d);
  }
  return out;
}

PolicyEngine::Event PolicyEngine::Event::arrived(TaskDesc t) {
  Event e;
  e.kind = Kind::TaskArrived;
  e.task = std::move(t);
  return e;
}

PolicyEngine::Event PolicyEngine::Event::fetched(BlockId b) {
  Event e;
  e.kind = Kind::FetchComplete;
  e.block = b;
  return e;
}

PolicyEngine::Event PolicyEngine::Event::evicted(BlockId b) {
  Event e;
  e.kind = Kind::EvictComplete;
  e.block = b;
  return e;
}

PolicyEngine::Event PolicyEngine::Event::completed(TaskId t) {
  Event e;
  e.kind = Kind::TaskComplete;
  e.task_id = t;
  return e;
}

std::vector<Command> PolicyEngine::step_batch(std::vector<Event> events) {
  std::vector<Command> cmds;
  for (Event& e : events) {
    std::vector<Command> step;
    switch (e.kind) {
      case Event::Kind::TaskArrived:
        step = on_task_arrived(e.task);
        break;
      case Event::Kind::FetchComplete:
        step = on_fetch_complete(e.block);
        break;
      case Event::Kind::EvictComplete:
        step = on_evict_complete(e.block);
        break;
      case Event::Kind::TaskComplete:
        step = on_task_complete(e.task_id);
        break;
    }
    if (cmds.empty()) {
      cmds = std::move(step);
    } else {
      cmds.insert(cmds.end(), step.begin(), step.end());
    }
  }
  return cmds;
}

PolicyEngine::PolicyEngine(Config cfg)
    : cfg_(std::move(cfg)), base_evict_by_worker_(cfg_.evict_by_worker) {
  HMR_CHECK(cfg_.num_pes > 0);
  HMR_CHECK(cfg_.lru_watermark > 0 && cfg_.lru_watermark <= 1.0);
  if (cfg_.strategy == Strategy::SyncNoIo) cfg_.evict_by_worker = true;
  if (cfg_.tiers.empty()) {
    // Classic two-level hierarchy; ids follow the hw preset convention
    // (tier 1 = fast, tier 0 = slow).
    TierDesc fast;
    fast.id = 1;
    fast.capacity = cfg_.fast_capacity;
    fast.watermark = cfg_.lru_watermark;
    TierDesc slow;
    slow.id = 0;
    tiers_ = {fast, slow};
  } else {
    tiers_ = cfg_.tiers;
    HMR_CHECK_MSG(tiers_.size() >= 2, "placement hierarchy needs >= 2 levels");
    for (const TierDesc& t : tiers_) {
      HMR_CHECK_MSG(t.watermark > 0 && t.watermark <= 1.0,
                    "tier watermark must be in (0,1]");
    }
    // The first level *is* the fast tier: keep the legacy knobs (and
    // every fast_capacity / lru_watermark consumer) in sync with it.
    cfg_.fast_capacity = tiers_.front().capacity;
    cfg_.lru_watermark = tiers_.front().watermark;
  }
  used_.resize(tiers_.size(), 0);
  outbound_.resize(tiers_.size(), 0);
  mid_lru_.resize(tiers_.size());
  wait_q_.resize(static_cast<std::size_t>(cfg_.num_pes));
  pe_claims_.resize(static_cast<std::size_t>(cfg_.num_pes), 0);
}

BlockAdvice PolicyEngine::advice_for(BlockId b, const BlockRec& br) const {
  if (cfg_.advisor == nullptr) return BlockAdvice{};
  return cfg_.advisor->advise(b, br.bytes);
}

bool PolicyEngine::dep_bypasses(BlockId b, const BlockRec& br) const {
  if (br.from_level >= 0 || br.level == 0) return false; // not resident-slow
  if (br.slow_claims > 0) return true; // forced: a task is reading it
  // may_bypass() keeps advise() off the admission scans while bypass
  // is unarmed — the scans run per queued head per wakeup, and the
  // per-block lookup dominated the adaptive overhead there.
  return cfg_.advisor != nullptr && cfg_.advisor->may_bypass() &&
         advice_for(b, br).bypass_fetch;
}

PolicyEngine::BlockRec& PolicyEngine::block(BlockId b) {
  auto it = blocks_.find(b);
  HMR_CHECK_MSG(it != blocks_.end(), "unknown block id");
  return it->second;
}

const PolicyEngine::BlockRec& PolicyEngine::block(BlockId b) const {
  auto it = blocks_.find(b);
  HMR_CHECK_MSG(it != blocks_.end(), "unknown block id");
  return it->second;
}

PolicyEngine::TaskRec& PolicyEngine::task(TaskId t) {
  auto it = tasks_.find(t);
  HMR_CHECK_MSG(it != tasks_.end(), "unknown task id");
  return it->second;
}

TierId PolicyEngine::add_block(BlockId b, std::uint64_t bytes) {
  HMR_CHECK_MSG(bytes > 0, "zero-byte block");
  HMR_CHECK_MSG(blocks_.find(b) == blocks_.end(), "duplicate block id");
  BlockRec rec;
  rec.bytes = bytes;
  std::int32_t level = bottom();
  switch (cfg_.strategy) {
    case Strategy::Naive:
      // Fast-preferred first-fit in speed order: pack each bounded
      // level until full, overflow to the next (paper §IV-B Baseline,
      // generalized from MCDRAM-then-DDR4 to the whole hierarchy).
      for (std::int32_t k = 0; k < bottom(); ++k) {
        const auto ku = static_cast<std::size_t>(k);
        if (used_[ku] + bytes <= tiers_[ku].capacity) {
          level = k;
          break;
        }
      }
      break;
    case Strategy::HbmOnly:
      HMR_CHECK_MSG(used_[0] + bytes <= cfg_.fast_capacity,
                    "HBMonly requires the working set to fit in HBM");
      level = 0;
      break;
    case Strategy::DdrOnly:
    case Strategy::SingleIo:
    case Strategy::SyncNoIo:
    case Strategy::MultiIo:
      // Movement strategies allocate everything on the bottom level
      // and fetch on demand (paper §V-B); DDR4only never moves at all.
      break;
  }
  rec.level = level;
  used_[static_cast<std::size_t>(level)] += bytes;
  blocks_.emplace(b, rec);
  return tiers_[static_cast<std::size_t>(level)].id;
}

TierId PolicyEngine::add_block(BlockId b, std::uint64_t bytes,
                               std::int32_t home_level) {
  if (home_level < 0 || !strategy_moves_data(cfg_.strategy) ||
      home_level >= bottom()) {
    return add_block(b, bytes);
  }
  HMR_CHECK_MSG(home_level > 0,
                "home_level 0 (the prefetch budget) is not a valid home");
  HMR_CHECK_MSG(bytes > 0, "zero-byte block");
  HMR_CHECK_MSG(blocks_.find(b) == blocks_.end(), "duplicate block id");
  const auto lvl = static_cast<std::size_t>(home_level);
  HMR_CHECK_MSG(used_[lvl] + bytes <= tiers_[lvl].capacity,
                "home_level placement overcommits the level");
  BlockRec rec;
  rec.bytes = bytes;
  rec.level = home_level;
  used_[lvl] += bytes;
  blocks_.emplace(b, rec);
  // Parked refcount-0 resident of a middle level: joins that level's
  // LRU so watermark trims and the demotion cascade can see it.
  mid_touch(b);
  return tiers_[lvl].id;
}

void PolicyEngine::remove_block(BlockId b) {
  BlockRec& br = block(b);
  HMR_CHECK_MSG(br.refcount == 0, "removing a claimed block");
  HMR_CHECK_MSG(br.from_level < 0, "removing a block mid-migration");
  const auto lvl = static_cast<std::size_t>(br.level);
  HMR_DCHECK(used_[lvl] >= br.bytes);
  used_[lvl] -= br.bytes;
  lru_unlink(b);
  mid_unlink(b, br);
  blocks_.erase(b);
}

std::uint64_t PolicyEngine::admission_bytes(const TaskRec& tr,
                                            bool* admissible) const {
  *admissible = true;
  std::uint64_t extra = 0;
  for (const Dep& d : tr.desc.deps) {
    const BlockRec& br = block(d.block);
    if (br.from_level >= 0) {
      // In flight: inbound migrations are already accounted in
      // used_[0]; a demotion (to any lower level) must land before
      // the block can be promoted back.
      if (br.level != 0) {
        *admissible = false;
        return 0;
      }
      continue;
    }
    if (br.level == 0) continue; // already accounted in used_[0]
    // Resident on a lower level: a bypass-advised dep is served in
    // place and claims no fast-tier budget.
    if (!dep_bypasses(d.block, br)) extra += br.bytes;
  }
  return extra;
}

bool PolicyEngine::can_admit(const TaskRec& tr) const {
  bool admissible = true;
  const std::uint64_t extra = admission_bytes(tr, &admissible);
  if (!admissible) return false;
  return used_[0] + extra <= cfg_.fast_capacity;
}

bool PolicyEngine::within_fair_share(const TaskRec& tr) const {
  if (!cfg_.fair_admission) return true;
  const auto pe = static_cast<std::size_t>(tr.desc.pe);
  if (pe_claims_[pe] == 0) return true; // progress guarantee
  bool admissible = true;
  const std::uint64_t extra = admission_bytes(tr, &admissible);
  const std::uint64_t share =
      cfg_.fast_capacity / static_cast<std::uint64_t>(cfg_.num_pes);
  return pe_claims_[pe] + extra <= share;
}

void PolicyEngine::lru_touch(BlockId b) {
  BlockRec& br = block(b);
  if (br.in_lru) return;
  lru_.push_back(b);
  br.in_lru = true;
  lru_bytes_ += br.bytes;
}

void PolicyEngine::lru_unlink(BlockId b) {
  BlockRec& br = block(b);
  if (!br.in_lru) return;
  auto it = std::find(lru_.begin(), lru_.end(), b);
  HMR_DCHECK(it != lru_.end());
  lru_.erase(it);
  br.in_lru = false;
  HMR_DCHECK(lru_bytes_ >= br.bytes);
  lru_bytes_ -= br.bytes;
}

void PolicyEngine::mid_touch(BlockId b) {
  BlockRec& br = block(b);
  HMR_DCHECK(br.from_level < 0 && br.level > 0 && br.level < bottom());
  if (br.in_mid) return;
  mid_lru_[static_cast<std::size_t>(br.level)].push_back(b);
  br.in_mid = true;
}

void PolicyEngine::mid_unlink(BlockId b, BlockRec& br) {
  if (!br.in_mid) return;
  auto& q = mid_lru_[static_cast<std::size_t>(br.level)];
  auto it = std::find(q.begin(), q.end(), b);
  HMR_DCHECK(it != q.end());
  q.erase(it);
  br.in_mid = false;
}

void PolicyEngine::admit(TaskId t, std::int32_t fetch_agent,
                         std::vector<Command>& cmds) {
  TaskRec& tr = task(t);
  HMR_DCHECK(tr.state == TaskState::Waiting);
  tr.missing = 0;
  tr.claim_bytes = 0;
  for (const Dep& d : tr.desc.deps) {
    BlockRec& br = block(d.block);
    ++br.refcount;
    if (br.in_lru) {
      // Lazy mode: a parked warm block gets reused without a round
      // trip through DDR4 — the payoff the LRU extension measures.
      lru_unlink(d.block);
      ++stats_.lru_reclaims;
    }
    if (br.from_level >= 0) {
      HMR_CHECK_MSG(br.level == 0,
                    "admitted task depends on a demoting block");
      // Another admitted task is already pulling this block in; just
      // wait for the same fetch (no duplicate traffic).
      br.fetch_waiters.push_back(t);
      ++tr.missing;
      ++stats_.fetch_dedup_hits;
    } else if (br.level > 0) {
      if (dep_bypasses(d.block, br)) {
        // Bypass: the task will read the slow-tier copy in place.
        // No migration, no fast-tier claim, not a missing dep.
        ++br.slow_claims;
        tr.bypassed.push_back(d.block);
        ++stats_.advised_bypasses;
        continue;
      }
      // Promote to the top level from wherever the block resides.
      const std::int32_t src = br.level;
      mid_unlink(d.block, br);
      br.from_level = src;
      br.level = 0;
      used_[0] += br.bytes;
      outbound_[static_cast<std::size_t>(src)] += br.bytes;
      tr.claim_bytes += br.bytes;
      HMR_CHECK_MSG(used_[0] <= cfg_.fast_capacity,
                    "admission overcommitted the fast tier");
      ++n_inflight_fetch_;
      ++stats_.fetches;
      stats_.fetch_bytes += br.bytes;
      if (tiers_[static_cast<std::size_t>(src)].backend ==
          TierBackendKind::Remote) {
        ++stats_.remote_fetches;
        stats_.remote_fetch_bytes += br.bytes;
      }
      br.fetch_waiters.push_back(t);
      ++tr.missing;
      Command c;
      c.kind = Command::Kind::Fetch;
      c.block = d.block;
      c.task = t;
      c.agent = fetch_agent;
      c.pe = tr.desc.pe;
      c.nocopy = cfg_.writeonly_nocopy && d.mode == AccessMode::WriteOnly;
      c.src_tier = tiers_[static_cast<std::size_t>(src)].id;
      c.dst_tier = tiers_[0].id;
      cmds.push_back(c);
    }
    // else: already resident on the top level — nothing to do.
  }
  tr.state = TaskState::Admitted;
  ++n_live_tasks_;
  pe_claims_[static_cast<std::size_t>(tr.desc.pe)] += tr.claim_bytes;
  if (tr.missing == 0) mark_ready(t, cmds);
}

void PolicyEngine::mark_ready(TaskId t, std::vector<Command>& cmds) {
  TaskRec& tr = task(t);
  HMR_DCHECK(tr.state == TaskState::Admitted);
  tr.state = TaskState::Ready;
  Command c;
  c.kind = Command::Kind::Run;
  c.task = t;
  c.pe = tr.desc.pe;
  cmds.push_back(c);
}

std::uint64_t PolicyEngine::reclaim_lru(std::uint64_t need,
                                        std::int32_t agent, std::int32_t pe,
                                        std::vector<Command>& cmds) {
  std::uint64_t freed = 0;
  // Victim priority: demote-advised blocks first, then plain LRU order
  // (coldest first), then pinned blocks as a progress guarantee — a
  // pin is a preference, not a reservation.  Without an advisor every
  // block falls in the middle pass, preserving pure LRU behaviour.
  // Without an advisor every block scores the middle pass — run only
  // that one, preserving pure LRU behaviour.
  const int first_pass = cfg_.advisor != nullptr ? 0 : 1;
  const int last_pass = cfg_.advisor != nullptr ? 2 : 1;
  for (int pass = first_pass; pass <= last_pass && freed < need; ++pass) {
    const std::vector<BlockId> snapshot(lru_.begin(), lru_.end());
    for (const BlockId victim : snapshot) {
      if (freed >= need) break;
      const BlockRec& br = block(victim);
      if (!br.in_lru) continue;
      const BlockAdvice adv = advice_for(victim, br);
      const int victim_pass = adv.demote_first ? 0 : (adv.pin ? 2 : 1);
      if (victim_pass != pass) continue;
      freed += br.bytes;
      if (pass == 0) ++stats_.advised_demotions;
      evict_block(victim, agent, pe, cmds);
    }
  }
  return freed;
}

void PolicyEngine::flush_lru_over(std::uint64_t limit, std::int32_t agent,
                                  std::int32_t pe, bool evict_pinned,
                                  std::vector<Command>& cmds) {
  const std::vector<BlockId> snapshot(lru_.begin(), lru_.end());
  for (const BlockId victim : snapshot) {
    if (lru_bytes_ <= limit) return;
    const BlockRec& br = block(victim);
    if (!evict_pinned && advice_for(victim, br).pin) continue;
    evict_block(victim, agent, pe, cmds);
  }
}

std::int32_t PolicyEngine::demote_target(std::int32_t src,
                                         std::uint64_t bytes,
                                         std::int32_t advised) const {
  const std::int32_t bot = bottom();
  if (!cfg_.demote_cascade) return bot;
  std::int32_t start = src + 1;
  if (advised >= 0) start = std::max(start, std::min(advised, bot));
  for (std::int32_t k = start; k < bot; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    if (used_[ku] + bytes <= tiers_[ku].capacity) return k;
  }
  return bot; // unbounded: the cascade can always make progress
}

void PolicyEngine::demote_block(BlockId b, std::int32_t dst,
                                std::int32_t agent, std::int32_t pe,
                                std::vector<Command>& cmds) {
  BlockRec& br = block(b);
  const std::int32_t src = br.level;
  HMR_DCHECK(br.from_level < 0 && br.refcount == 0 && dst > src);
  lru_unlink(b);
  mid_unlink(b, br);
  br.from_level = src;
  br.level = dst;
  used_[static_cast<std::size_t>(dst)] += br.bytes;
  outbound_[static_cast<std::size_t>(src)] += br.bytes;
  ++n_inflight_evict_;
  ++stats_.evicts;
  stats_.evict_bytes += br.bytes;
  if (src > 0) ++stats_.tier_trims;
  if (dst < bottom()) ++stats_.cascade_demotions;
  if (tiers_[static_cast<std::size_t>(dst)].backend ==
      TierBackendKind::Remote) {
    ++stats_.remote_evicts;
    stats_.remote_evict_bytes += br.bytes;
  }
  Command c;
  c.kind = Command::Kind::Evict;
  c.block = b;
  c.task = evict_cause_; // telemetry: the task that triggered this
  c.agent = agent;
  c.pe = pe;
  c.src_tier = tiers_[static_cast<std::size_t>(src)].id;
  c.dst_tier = tiers_[static_cast<std::size_t>(dst)].id;
  cmds.push_back(c);
  // A demotion into a middle level may push it over its watermark:
  // trim it right away so the onward traffic overlaps this migration.
  if (dst < bottom()) cascade_from(dst, agent, pe, cmds);
}

void PolicyEngine::cascade_from(std::int32_t k, std::int32_t agent,
                                std::int32_t pe, std::vector<Command>& cmds) {
  if (k <= 0 || k >= bottom()) return;
  const auto ku = static_cast<std::size_t>(k);
  const auto limit = static_cast<std::uint64_t>(
      tiers_[ku].watermark * static_cast<double>(tiers_[ku].capacity));
  while (used_[ku] - outbound_[ku] > limit) {
    // Coldest refcount-0 resident; bypass-claimed blocks (refcount
    // held while a task reads them in place) stay parked.
    BlockId victim = mem::kInvalidBlock;
    for (const BlockId cand : mid_lru_[ku]) {
      if (block(cand).refcount == 0) {
        victim = cand;
        break;
      }
    }
    if (victim == mem::kInvalidBlock) return;
    BlockRec& vr = block(victim);
    const std::int32_t advised =
        cfg_.advisor != nullptr ? advice_for(victim, vr).demote_level
                                : kLevelAuto;
    demote_block(victim, demote_target(k, vr.bytes, advised), agent, pe,
                 cmds);
  }
}

void PolicyEngine::evict_block(BlockId b, std::int32_t agent,
                               std::int32_t pe, std::vector<Command>& cmds) {
  BlockRec& br = block(b);
  HMR_DCHECK(br.level == 0 && br.from_level < 0 && br.refcount == 0);
  const std::int32_t advised =
      cfg_.advisor != nullptr ? advice_for(b, br).demote_level : kLevelAuto;
  demote_block(b, demote_target(0, br.bytes, advised), agent, pe, cmds);
}

void PolicyEngine::io_step_single(std::vector<Command>& cmds) {
  // The single IO thread cycles over all wait queues, serving at most
  // one task per queue per pass so every PE is served equally
  // (paper §IV-B "Multiple queues, Single IO thread").
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::int32_t i = 0; i < cfg_.num_pes; ++i) {
      const auto pe =
          static_cast<std::size_t>((rr_cursor_ + i) % cfg_.num_pes);
      auto& q = wait_q_[pe];
      if (q.empty()) continue;
      TaskRec& head = task(q.front());
      if (can_admit(head)) {
        const TaskId t = q.front();
        q.pop_front();
        --n_waiting_;
        admit(t, /*fetch_agent=*/0, cmds);
        progressed = true;
      } else if (lru_enabled()) {
        bool adm = true;
        const std::uint64_t extra = admission_bytes(head, &adm);
        if (adm && used_[0] + extra > cfg_.fast_capacity) {
          const std::uint64_t deficit =
              used_[0] + extra - cfg_.fast_capacity;
          evict_cause_ = q.front(); // reclaiming on behalf of the head
          if (reclaim_lru(deficit, 0, static_cast<std::int32_t>(pe), cmds) > 0) {
            progressed = true;
          }
          evict_cause_ = kInvalidTask;
        }
      }
    }
    rr_cursor_ = (rr_cursor_ + 1) % cfg_.num_pes;
  }
}

void PolicyEngine::io_step_multi(std::int32_t agent,
                                 std::vector<Command>& cmds) {
  // One IO thread per PE, draining its own queue until HBM is full
  // (paper §IV-B "Multiple queues, Multiple IO threads").
  auto& q = wait_q_[static_cast<std::size_t>(agent)];
  while (!q.empty()) {
    TaskRec& head = task(q.front());
    if (can_admit(head) && within_fair_share(head)) {
      const TaskId t = q.front();
      q.pop_front();
      --n_waiting_;
      admit(t, agent, cmds);
      continue;
    }
    if (lru_enabled()) {
      bool adm = true;
      const std::uint64_t extra = admission_bytes(head, &adm);
      if (adm && used_[0] + extra > cfg_.fast_capacity) {
        const std::uint64_t deficit =
            used_[0] + extra - cfg_.fast_capacity;
        evict_cause_ = q.front(); // reclaiming on behalf of the head
        reclaim_lru(deficit, agent, agent, cmds);
        evict_cause_ = kInvalidTask;
      }
    }
    break; // FIFO: the head blocks the queue
  }
}

void PolicyEngine::io_step_sync(std::int32_t pe, std::vector<Command>& cmds) {
  // No IO thread: the worker itself fetches synchronously.  Fetch
  // commands carry agent=kWorkerInline and pe = the task's home PE so
  // executors charge the stall to the right lane.
  auto& q = wait_q_[static_cast<std::size_t>(pe)];
  while (!q.empty()) {
    TaskRec& head = task(q.front());
    if (can_admit(head) && within_fair_share(head)) {
      const TaskId t = q.front();
      q.pop_front();
      --n_waiting_;
      admit(t, kWorkerInline, cmds);
      continue;
    }
    if (lru_enabled()) {
      bool adm = true;
      const std::uint64_t extra = admission_bytes(head, &adm);
      if (adm && used_[0] + extra > cfg_.fast_capacity) {
        const std::uint64_t deficit =
            used_[0] + extra - cfg_.fast_capacity;
        evict_cause_ = q.front(); // reclaiming on behalf of the head
        reclaim_lru(deficit, kWorkerInline, pe, cmds);
        evict_cause_ = kInvalidTask;
      }
    }
    break;
  }
}

std::vector<Command> PolicyEngine::on_task_arrived(const TaskDesc& desc) {
  HMR_CHECK_MSG(desc.id != kInvalidTask, "task needs a valid id");
  HMR_CHECK_MSG(desc.pe >= 0 && desc.pe < cfg_.num_pes,
                "task pe out of range");
  HMR_CHECK_MSG(tasks_.find(desc.id) == tasks_.end(), "duplicate task id");
  for (std::size_t i = 0; i < desc.deps.size(); ++i) {
    HMR_CHECK_MSG(blocks_.find(desc.deps[i].block) != blocks_.end(),
                  "task depends on an unregistered block");
    for (std::size_t j = i + 1; j < desc.deps.size(); ++j) {
      HMR_CHECK_MSG(desc.deps[i].block != desc.deps[j].block,
                    "duplicate dependence on one block");
    }
  }

  std::vector<Command> cmds;
  TaskRec rec;
  rec.desc = desc;
  auto [it, inserted] = tasks_.emplace(desc.id, std::move(rec));
  (void)inserted;
  TaskRec& tr = it->second;

  if (!desc.prefetch || !strategy_moves_data(cfg_.strategy)) {
    // Non-annotated entry methods, and the static-placement baselines:
    // the converse scheduler delivers the message directly.
    tr.state = TaskState::Ready;
    ++n_live_tasks_;
    Command c;
    c.kind = Command::Kind::Run;
    c.task = desc.id;
    c.pe = desc.pe;
    cmds.push_back(c);
    return cmds;
  }

  switch (cfg_.strategy) {
    case Strategy::SingleIo: {
      bool adm = true;
      if (admission_bytes(tr, &adm) == 0 && adm &&
          used_[0] <= cfg_.fast_capacity) {
        // Paper fast path: all dependences already INHBM -> straight
        // to the run queue without bothering the IO thread.
        admit(desc.id, /*fetch_agent=*/0, cmds);
      } else {
        wait_q_[static_cast<std::size_t>(desc.pe)].push_back(desc.id);
        ++n_waiting_;
        io_step_single(cmds); // the worker signals the IO thread
      }
      break;
    }
    case Strategy::MultiIo: {
      bool adm = true;
      if (admission_bytes(tr, &adm) == 0 && adm) {
        admit(desc.id, desc.pe, cmds);
      } else {
        // Paper: the task "simply adds itself to the corresponding
        // PE's wait queue" and wakes that PE's IO thread.
        wait_q_[static_cast<std::size_t>(desc.pe)].push_back(desc.id);
        ++n_waiting_;
        io_step_multi(desc.pe, cmds);
      }
      break;
    }
    case Strategy::SyncNoIo: {
      auto& q = wait_q_[static_cast<std::size_t>(desc.pe)];
      if (q.empty() && can_admit(tr) && within_fair_share(tr)) {
        admit(desc.id, kWorkerInline, cmds);
      } else {
        q.push_back(desc.id);
        ++n_waiting_;
        if (lru_enabled()) io_step_sync(desc.pe, cmds);
      }
      break;
    }
    default:
      HMR_CHECK_MSG(false, "unreachable strategy");
  }
  check_progress();
  return cmds;
}

std::vector<Command> PolicyEngine::on_fetch_complete(BlockId b) {
  BlockRec& br = block(b);
  HMR_CHECK_MSG(br.from_level >= 0 && br.level == 0,
                "fetch completion for a block not being fetched");
  const auto src = static_cast<std::size_t>(br.from_level);
  br.from_level = -1;
  HMR_DCHECK(used_[src] >= br.bytes && outbound_[src] >= br.bytes);
  used_[src] -= br.bytes; // the source copy is released on landing
  outbound_[src] -= br.bytes;
  --n_inflight_fetch_;
  std::vector<Command> cmds;
  for (const TaskId t : br.fetch_waiters) {
    TaskRec& tr = task(t);
    HMR_DCHECK(tr.missing > 0);
    if (--tr.missing == 0) mark_ready(t, cmds);
  }
  br.fetch_waiters.clear();
  return cmds;
}

std::vector<Command> PolicyEngine::on_evict_complete(BlockId b) {
  BlockRec& br = block(b);
  HMR_CHECK_MSG(br.from_level >= 0 && br.level > 0,
                "evict completion for a block not being evicted");
  const auto src = static_cast<std::size_t>(br.from_level);
  br.from_level = -1;
  HMR_DCHECK(used_[src] >= br.bytes && outbound_[src] >= br.bytes);
  used_[src] -= br.bytes;
  outbound_[src] -= br.bytes;
  --n_inflight_evict_;
  // A demotion caught by a middle level parks there, coldest-first:
  // the level's watermark trim picks its victims from this list.
  if (br.level < bottom()) mid_touch(b);

  // Freed capacity can unblock any PE's queue head — and a block that
  // just landed on a middle level is promotable again, so every
  // landing (bottom or middle) retries the queues.
  std::vector<Command> cmds;
  switch (cfg_.strategy) {
    case Strategy::SingleIo:
      io_step_single(cmds);
      break;
    case Strategy::MultiIo:
      for (std::int32_t a = 0; a < cfg_.num_pes; ++a) {
        if (!wait_q_[static_cast<std::size_t>(a)].empty()) {
          io_step_multi(a, cmds);
        }
      }
      break;
    case Strategy::SyncNoIo:
      for (std::int32_t pe = 0; pe < cfg_.num_pes; ++pe) {
        if (!wait_q_[static_cast<std::size_t>(pe)].empty()) {
          io_step_sync(pe, cmds);
        }
      }
      break;
    default:
      break; // static strategies never evict
  }
  check_progress();
  return cmds;
}

std::vector<Command> PolicyEngine::on_task_complete(TaskId t) {
  TaskRec& tr = task(t);
  HMR_CHECK_MSG(tr.state == TaskState::Ready,
                "completion for a task that was never made runnable");
  tr.state = TaskState::Done;
  HMR_DCHECK(n_live_tasks_ > 0);
  --n_live_tasks_;
  ++stats_.tasks_run;
  {
    auto& pc = pe_claims_[static_cast<std::size_t>(tr.desc.pe)];
    HMR_DCHECK(pc >= tr.claim_bytes);
    pc -= tr.claim_bytes;
    tr.claim_bytes = 0;
  }

  std::vector<Command> cmds;
  if (!tr.desc.prefetch || !strategy_moves_data(cfg_.strategy)) {
    return cmds; // static strategies: no claims were taken
  }

  // Post-processing: release claims; blocks that drop to refcount 0
  // are evicted (eager, paper behaviour) or parked warm (lazy).
  evict_cause_ = t; // evictions below are triggered by this completion
  const std::int32_t evict_agent =
      cfg_.evict_by_worker
          ? kWorkerInline
          : (cfg_.strategy == Strategy::SingleIo ? 0 : tr.desc.pe);
  bool parked = false;
  for (const Dep& d : tr.desc.deps) {
    BlockRec& br = block(d.block);
    HMR_CHECK_MSG(br.refcount > 0, "refcount underflow");
    --br.refcount;
    if (std::find(tr.bypassed.begin(), tr.bypassed.end(), d.block) !=
        tr.bypassed.end()) {
      // Bypass claim: the block never left the slow tier.
      HMR_DCHECK(br.from_level < 0 && br.level > 0 && br.slow_claims > 0);
      --br.slow_claims;
      continue;
    }
    if (br.refcount == 0 && br.level == 0 && br.from_level < 0) {
      if (!cfg_.eager_evict) {
        lru_touch(d.block);
        parked = true;
      } else if (advice_for(d.block, br).pin) {
        // Pinned: skip the eager evict, park warm instead.
        lru_touch(d.block);
        parked = true;
        ++stats_.advised_pins;
      } else {
        evict_block(d.block, evict_agent, tr.desc.pe, cmds);
      }
    }
  }
  tr.bypassed.clear();
  if (lru_enabled() && cfg_.lru_watermark < 1.0) {
    const auto limit = static_cast<std::uint64_t>(
        cfg_.lru_watermark * static_cast<double>(cfg_.fast_capacity));
    flush_lru_over(limit, evict_agent, tr.desc.pe,
                   /*evict_pinned=*/false, cmds);
  }
  evict_cause_ = kInvalidTask;

  // "It then wakes up the IO thread ... so that more data can be
  // prefetched" — some queued task may now be admissible (shared
  // blocks became resident, or lazy reclaim can run).
  switch (cfg_.strategy) {
    case Strategy::SingleIo:
      io_step_single(cmds);
      break;
    case Strategy::MultiIo:
      if (cfg_.eager_evict && !parked) {
        // Eager with nothing parked: freed budget arrives via
        // on_evict_complete, which retries every queue; waking only
        // our own is enough.  (An advisor alone must not force the
        // broad scan below — it dominated the adaptive overhead.)
        io_step_multi(tr.desc.pe, cmds);
      } else {
        // Lazy mode, or a pin just parked a block: this completion
        // may be the only future event (released blocks parked in the
        // LRU, claims released, no eviction pending), so every queue
        // whose head needs an LRU reclaim or claim headroom must get
        // its chance now or the node wedges.
        for (std::int32_t a = 0; a < cfg_.num_pes; ++a) {
          if (!wait_q_[static_cast<std::size_t>(a)].empty()) {
            io_step_multi(a, cmds);
          }
        }
      }
      break;
    case Strategy::SyncNoIo:
      if (cfg_.eager_evict && !parked) {
        io_step_sync(tr.desc.pe, cmds);
      } else {
        for (std::int32_t pe = 0; pe < cfg_.num_pes; ++pe) {
          if (!wait_q_[static_cast<std::size_t>(pe)].empty()) {
            io_step_sync(pe, cmds);
          }
        }
      }
      break;
    default:
      break;
  }
  check_progress();
  return cmds;
}

void PolicyEngine::set_advisor(const AdviceProvider* advisor) {
  cfg_.advisor = advisor;
}

void PolicyEngine::set_strategy(Strategy s) {
  if (s == cfg_.strategy) return;
  HMR_CHECK_MSG(strategy_moves_data(cfg_.strategy) && strategy_moves_data(s),
                "online strategy switch is only defined between the "
                "movement strategies");
  HMR_CHECK_MSG(quiescent(), "strategy switch requires a quiescent engine");
  cfg_.strategy = s;
  cfg_.evict_by_worker =
      s == Strategy::SyncNoIo ? true : base_evict_by_worker_;
}

std::vector<Command> PolicyEngine::set_eager_evict(bool eager) {
  std::vector<Command> cmds;
  if (eager == cfg_.eager_evict) return cmds;
  cfg_.eager_evict = eager;
  if (eager) {
    // Flush the parked LRU back to the slow tier; pin-advised blocks
    // stay (with an advisor they park there even under eager mode).
    const std::int32_t agent =
        cfg_.strategy == Strategy::SyncNoIo ? kWorkerInline : 0;
    flush_lru_over(0, agent, /*pe=*/0, /*evict_pinned=*/false, cmds);
  }
  return cmds;
}

void PolicyEngine::set_fair_admission(bool fair) {
  cfg_.fair_admission = fair;
}

std::vector<Command> PolicyEngine::set_lru_watermark(double frac) {
  HMR_CHECK_MSG(frac > 0 && frac <= 1.0, "lru watermark must be in (0,1]");
  cfg_.lru_watermark = frac;
  tiers_.front().watermark = frac;
  std::vector<Command> cmds;
  if (!lru_enabled() || frac >= 1.0) return cmds;
  const auto limit = static_cast<std::uint64_t>(
      frac * static_cast<double>(cfg_.fast_capacity));
  const std::int32_t agent =
      cfg_.strategy == Strategy::SyncNoIo ? kWorkerInline : 0;
  flush_lru_over(limit, agent, /*pe=*/0, /*evict_pinned=*/false, cmds);
  return cmds;
}

std::size_t PolicyEngine::waiting_tasks(std::int32_t pe) const {
  HMR_CHECK(pe >= 0 && pe < cfg_.num_pes);
  return wait_q_[static_cast<std::size_t>(pe)].size();
}

std::size_t PolicyEngine::total_waiting() const { return n_waiting_; }

BlockState PolicyEngine::block_state(BlockId b) const {
  return state_of(block(b));
}

std::uint32_t PolicyEngine::refcount(BlockId b) const {
  return block(b).refcount;
}

bool PolicyEngine::quiescent() const {
  return n_waiting_ == 0 && n_live_tasks_ == 0 && n_inflight_fetch_ == 0 &&
         n_inflight_evict_ == 0;
}

void PolicyEngine::debug_dump(std::FILE* out) const {
  std::size_t resident0 = 0;
  std::uint64_t resident0_bytes = 0;
  std::size_t by_state[4] = {0, 0, 0, 0};
  for (const auto& [id, br] : blocks_) {
    const BlockState st = state_of(br);
    ++by_state[static_cast<int>(st)];
    if (st == BlockState::InFast && br.refcount == 0) {
      ++resident0;
      resident0_bytes += br.bytes;
    }
  }
  std::fprintf(out,
               "engine: slow=%zu fast=%zu fetching=%zu evicting=%zu "
               "fast&ref0=%zu (%llu bytes) lru=%zu\n",
               by_state[0], by_state[1], by_state[2], by_state[3], resident0,
               static_cast<unsigned long long>(resident0_bytes),
               lru_.size());
  for (std::size_t pe = 0; pe < wait_q_.size(); ++pe) {
    if (wait_q_[pe].empty()) continue;
    const auto it = tasks_.find(wait_q_[pe].front());
    bool adm = true;
    const std::uint64_t extra = admission_bytes(it->second, &adm);
    std::fprintf(out,
                 "  pe %zu: %zu waiting; head extra=%llu admissible=%d "
                 "can_admit=%d fair=%d claims=%llu\n",
                 pe, wait_q_[pe].size(),
                 static_cast<unsigned long long>(extra), adm,
                 can_admit(it->second), within_fair_share(it->second),
                 static_cast<unsigned long long>(pe_claims_[pe]));
    if (pe > 4) break;
  }
}

void PolicyEngine::check_progress() const {
  if (n_waiting_ == 0 || n_live_tasks_ > 0 || n_inflight_fetch_ > 0 ||
      n_inflight_evict_ > 0) {
    return;
  }
  // Nothing is running or in flight yet tasks wait.  If no queue head
  // is admissible and nothing is reclaimable, no future event can make
  // progress: the reduced working set does not fit in the fast tier.
  for (const auto& q : wait_q_) {
    if (q.empty()) continue;
    auto it = tasks_.find(q.front());
    HMR_DCHECK(it != tasks_.end());
    if (can_admit(it->second)) return; // will be admitted on next drain
  }
  if (lru_enabled() && !lru_.empty()) return;
  HMR_CHECK_MSG(false,
                "scheduling wedge: a waiting task's dependences exceed the "
                "fast-tier capacity (reduced working set must fit in HBM)");
}

std::vector<std::string> PolicyEngine::audit_invariants(
    bool at_quiescence) const {
  std::vector<std::string> v;
  const auto fail = [&v](std::string msg) { v.push_back(std::move(msg)); };
  const std::size_t levels = tiers_.size();

  // Ground truth recomputed from the block records.  A migrating block
  // holds budget on both ends: its bytes were claimed on the
  // destination at schedule time and are released from the source only
  // when the copy lands (mirrors when numa_free returns the bytes).
  std::vector<std::uint64_t> want_used(levels, 0);
  std::vector<std::uint64_t> want_outbound(levels, 0);
  std::uint64_t want_lru_bytes = 0;
  std::size_t want_lru_count = 0, want_mid_count = 0;
  std::size_t want_fetch = 0, want_evict = 0;
  std::unordered_map<BlockId, std::uint32_t> want_ref;
  std::unordered_map<BlockId, std::uint32_t> want_slow;

  for (const auto& [id, br] : blocks_) {
    const std::string tag = "block " + std::to_string(id) + ": ";
    if (br.level < 0 || br.level >= static_cast<std::int32_t>(levels) ||
        br.from_level < -1 ||
        br.from_level >= static_cast<std::int32_t>(levels) ||
        br.from_level == br.level) {
      fail(tag + "bad level pair " + std::to_string(br.level) + " <- " +
           std::to_string(br.from_level));
      continue;
    }
    want_used[static_cast<std::size_t>(br.level)] += br.bytes;
    if (br.from_level >= 0) {
      want_used[static_cast<std::size_t>(br.from_level)] += br.bytes;
      want_outbound[static_cast<std::size_t>(br.from_level)] += br.bytes;
      if (br.level == 0) {
        ++want_fetch;
      } else {
        ++want_evict;
      }
    }
    if (br.in_lru) {
      if (br.level != 0 || br.from_level >= 0) {
        fail(tag + "parked in the level-0 LRU but not resident there");
      }
      want_lru_bytes += br.bytes;
      ++want_lru_count;
    }
    if (br.in_mid) {
      if (br.level <= 0 || br.level >= bottom() || br.from_level >= 0) {
        fail(tag + "on a mid-level cold list but not a middle resident");
      }
      ++want_mid_count;
    }
    if (!br.fetch_waiters.empty() &&
        state_of(br) != BlockState::FetchInFlight) {
      fail(tag + "has fetch waiters but no fetch in flight");
    }
    if (at_quiescence) {
      if (br.refcount != 0) {
        fail(tag + "refcount " + std::to_string(br.refcount) +
             " at quiescence (no task can be holding it)");
      }
      if (br.slow_claims != 0) fail(tag + "slow claims at quiescence");
      if (br.from_level >= 0) fail(tag + "still migrating at quiescence");
      if (!br.fetch_waiters.empty()) {
        fail(tag + "waiter list not empty at quiescence");
      }
    }
  }

  // Ground truth from the task records: live (admitted / ready) tasks
  // hold one refcount per dependence, one waiter entry per missing
  // dep, one slow claim per bypassed dep, and their fresh claim bytes
  // make up the per-PE fair-share ledger.
  std::vector<std::uint64_t> want_claims(pe_claims_.size(), 0);
  std::size_t want_live = 0;
  for (const auto& [id, tr] : tasks_) {
    if (tr.state != TaskState::Admitted && tr.state != TaskState::Ready) {
      continue;
    }
    ++want_live;
    want_claims[static_cast<std::size_t>(tr.desc.pe)] += tr.claim_bytes;
    // Only admitted prefetch tasks under a movement strategy claimed
    // their deps; non-annotated tasks and the static baselines run
    // without touching refcounts.
    if (!tr.desc.prefetch || !strategy_moves_data(cfg_.strategy)) {
      continue;
    }
    for (const Dep& d : tr.desc.deps) ++want_ref[d.block];
    for (const BlockId b : tr.bypassed) ++want_slow[b];
  }
  for (const auto& [id, br] : blocks_) {
    for (const TaskId t : br.fetch_waiters) {
      auto it = tasks_.find(t);
      if (it == tasks_.end() ||
          it->second.state != TaskState::Admitted) {
        fail("block " + std::to_string(id) +
             ": waiter task " + std::to_string(t) + " is not admitted");
      }
    }
    const auto ref = want_ref.find(id);
    const std::uint32_t wr = ref == want_ref.end() ? 0 : ref->second;
    if (br.refcount != wr) {
      fail("block " + std::to_string(id) + ": refcount " +
           std::to_string(br.refcount) + " but live tasks reference it " +
           std::to_string(wr) + "x");
    }
    const auto slow = want_slow.find(id);
    const std::uint32_t ws = slow == want_slow.end() ? 0 : slow->second;
    if (br.slow_claims != ws) {
      fail("block " + std::to_string(id) + ": slow_claims " +
           std::to_string(br.slow_claims) + " != " + std::to_string(ws) +
           " bypassed live deps");
    }
  }
  for (const auto& [id, tr] : tasks_) {
    if (tr.state != TaskState::Admitted) continue;
    std::uint32_t waits = 0;
    for (const Dep& d : tr.desc.deps) {
      const auto it = blocks_.find(d.block);
      if (it == blocks_.end()) continue;
      for (const TaskId t : it->second.fetch_waiters) {
        if (t == id) ++waits;
      }
    }
    if (tr.missing != waits) {
      fail("task " + std::to_string(id) + ": missing " +
           std::to_string(tr.missing) + " != " + std::to_string(waits) +
           " waiter entries");
    }
  }

  // Counters and ledgers vs the recomputation.
  for (std::size_t k = 0; k < levels; ++k) {
    if (used_[k] != want_used[k]) {
      fail("level " + std::to_string(k) + ": used " +
           std::to_string(used_[k]) + " != " + std::to_string(want_used[k]) +
           " summed over block records");
    }
    if (outbound_[k] != want_outbound[k]) {
      fail("level " + std::to_string(k) + ": outbound " +
           std::to_string(outbound_[k]) + " != " +
           std::to_string(want_outbound[k]));
    }
  }
  if (used_[0] > cfg_.fast_capacity) {
    fail("level 0 overcommitted: " + std::to_string(used_[0]) + " > " +
         std::to_string(cfg_.fast_capacity));
  }
  if (lru_bytes_ != want_lru_bytes || lru_.size() != want_lru_count) {
    fail("LRU ledger: " + std::to_string(lru_.size()) + " entries / " +
         std::to_string(lru_bytes_) + " bytes, block flags say " +
         std::to_string(want_lru_count) + " / " +
         std::to_string(want_lru_bytes));
  }
  std::size_t mid_entries = 0;
  for (const auto& q : mid_lru_) mid_entries += q.size();
  if (mid_entries != want_mid_count) {
    fail("mid-level cold lists hold " + std::to_string(mid_entries) +
         " entries, block flags say " + std::to_string(want_mid_count));
  }
  std::size_t queued = 0;
  for (std::size_t pe = 0; pe < wait_q_.size(); ++pe) {
    for (const TaskId t : wait_q_[pe]) {
      ++queued;
      const auto it = tasks_.find(t);
      if (it == tasks_.end() || it->second.state != TaskState::Waiting) {
        fail("queued task " + std::to_string(t) + " on pe " +
             std::to_string(pe) + " is not in Waiting state");
      }
    }
  }
  if (queued != n_waiting_) {
    fail("n_waiting " + std::to_string(n_waiting_) + " != " +
         std::to_string(queued) + " queued tasks");
  }
  if (want_live != n_live_tasks_) {
    fail("n_live_tasks " + std::to_string(n_live_tasks_) + " != " +
         std::to_string(want_live) + " admitted/ready records");
  }
  if (want_fetch != n_inflight_fetch_ || want_evict != n_inflight_evict_) {
    fail("in-flight counters fetch=" + std::to_string(n_inflight_fetch_) +
         "/evict=" + std::to_string(n_inflight_evict_) +
         " != block records fetch=" + std::to_string(want_fetch) +
         "/evict=" + std::to_string(want_evict));
  }
  for (std::size_t pe = 0; pe < pe_claims_.size(); ++pe) {
    if (pe_claims_[pe] != want_claims[pe]) {
      fail("pe " + std::to_string(pe) + ": claim ledger " +
           std::to_string(pe_claims_[pe]) + " != " +
           std::to_string(want_claims[pe]) + " over live tasks");
    }
  }
  if (at_quiescence) {
    if (!quiescent()) fail("quiescent() false at claimed quiescence");
    if (queued != 0) fail("wait queues not empty at quiescence");
  }
  return v;
}

} // namespace hmr::ooc
