#pragma once
// PolicyEngine: the paper's prefetch/evict scheduling protocol as a
// deterministic, executor-agnostic state machine.
//
// The same engine is driven by two executors:
//   * hmr::rt  — real threads, real memcpy between tier arenas;
//   * hmr::sim — a discrete-event simulator with virtual time.
// The engine owns all policy state (wait queues, block residency, ref
// counts, per-tier budgets) and returns Commands; it never blocks and
// never measures time, which is what makes it testable in isolation
// and reusable across executors.
//
// Placement is an N-level hierarchy (Config::tiers, fastest first).
// The engine reasons in *levels* (vector positions); executors see
// tier ids on the commands.  Fetches promote a block from its resident
// level to level 0; evictions demote along a cascade: the victim lands
// on the first lower level with room (per-level capacity), overflowing
// to the unbounded bottom level.  Intermediate levels are trimmed back
// to their watermark (coldest resident first) whenever a demotion is
// scheduled into them.  With two levels the cascade degenerates to the
// classic fast/slow protocol below and the command stream is
// bit-identical to the pre-tier engine (tests/test_tier_equivalence
// pins this down).
//
// Protocol (paper §IV-B, Algorithm 1):
//  * every PE has a FIFO wait queue for tasks whose data is not yet in
//    HBM, and a run queue of ready tasks;
//  * a task *claims* (refcount++) all its dependence blocks when it is
//    admitted; a block is evictable only at refcount 0;
//  * admission is all-or-nothing: a task is admitted only when the HBM
//    budget can hold *all* of its non-resident dependences.  (The
//    paper's Algorithm 1 fetches block-by-block; all-or-nothing is the
//    deadlock-free refinement — partial claims by two tasks could
//    otherwise wedge the node.  DESIGN.md §5 records this choice.)
//  * on completion a task releases its claims; blocks that drop to
//    refcount 0 are evicted back to DDR4 (eager mode, the paper's
//    behaviour) or parked in an LRU from which space is reclaimed on
//    demand (lazy mode, our ablation extension);
//  * HBM budget accounting covers blocks InFast, FetchInFlight and
//    EvictInFlight — capacity is released only when an eviction has
//    finished, mirroring when numa_free actually returns the bytes.
//
// Thread safety: none.  Callers serialize (the rt executor wraps every
// call in one mutex; the DES is single-threaded).

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "ooc/engine.hpp"
#include "ooc/types.hpp"

namespace hmr::ooc {

class PolicyEngine : public Engine {
public:
  struct Config {
    Strategy strategy = Strategy::MultiIo;
    std::int32_t num_pes = 1;
    /// Budget for blocks resident in (or in flight to) the fast tier.
    std::uint64_t fast_capacity = 0;
    /// Evict refcount-0 blocks immediately on task completion (paper
    /// behaviour).  false = lazy: keep them warm in an LRU and evict
    /// on demand when admission needs space (ablation extension).
    bool eager_evict = true;
    /// Worker evicts its own blocks synchronously in post-processing
    /// (paper text for SyncNoIo).  When false, evictions are queued on
    /// the responsible IO agent.  Ignored for SyncNoIo (always true).
    bool evict_by_worker = false;
    /// Write-only dependences get a fast-tier buffer without copying
    /// the stale contents (extension; the paper always copies).
    bool writeonly_nocopy = false;
    /// Fair admission: a PE's outstanding admission claims may not
    /// exceed fast_capacity / num_pes (unless it has none at all, so
    /// progress is always possible).  Models the physical reality that
    /// each IO thread allocates HBM one memcpy at a time, which
    /// rate-limits how much budget any one PE can grab; without it a
    /// greedy per-PE drain lets low-numbered PEs fill MCDRAM with
    /// far-future blocks and starve the rest.  SingleIo's round-robin
    /// is already fair and ignores this.
    bool fair_admission = true;
    /// Optional per-block guidance (adaptive subsystem).  Not owned;
    /// must outlive the engine.  When set, the LRU machinery is active
    /// even in eager mode (pinned blocks park there), advice can skip
    /// fetches entirely, and reclaim prefers demote-advised victims.
    const AdviceProvider* advisor = nullptr;
    /// Lazy/pinned LRU cap as a fraction of fast_capacity: parking a
    /// block that pushes parked bytes beyond the watermark evicts the
    /// coldest unpinned parked blocks until back under.  1.0 = no cap.
    double lru_watermark = 1.0;
    /// Placement hierarchy, fastest level first.  Empty = the classic
    /// two-level hierarchy {fast_capacity/lru_watermark, unbounded
    /// slow} with tier ids 1 (fast) and 0 (slow).  When set, it must
    /// have >= 2 levels; the last level is always unbounded (its
    /// capacity field is ignored, use 0 by convention) and
    /// fast_capacity / lru_watermark are taken from the first level.
    std::vector<TierDesc> tiers;
    /// Demotion cascade: evicted blocks land on the first lower level
    /// with room instead of going straight to the bottom.  false =
    /// always demote to the bottom level (the ablation baseline).
    /// No effect on two-level hierarchies.
    bool demote_cascade = true;
  };

  /// Historical name for the shared counter struct (ooc/types.hpp).
  using Stats = EngineStats;

  /// One engine event, reified so executors can hand the engine a
  /// whole batch under a single lock acquisition (the threaded
  /// runtime's IO/PE loops drain queues in batches; the DES keeps
  /// calling the per-event entry points).
  struct Event {
    enum class Kind : std::uint8_t {
      TaskArrived,
      FetchComplete,
      EvictComplete,
      TaskComplete,
    };
    Kind kind = Kind::TaskArrived;
    TaskDesc task;                      // TaskArrived
    BlockId block = mem::kInvalidBlock; // Fetch/EvictComplete
    TaskId task_id = kInvalidTask;      // TaskComplete

    static Event arrived(TaskDesc t);
    static Event fetched(BlockId b);
    static Event evicted(BlockId b);
    static Event completed(TaskId t);
  };

  explicit PolicyEngine(Config cfg);

  const Config& config() const { return cfg_; }

  // ---- block registry ----

  /// Register a data block; returns the tier id its storage must be
  /// placed on (strategy-dependent: movement strategies start
  /// everything on the bottom level; Naive packs the bounded levels
  /// first-fit in speed order; HbmOnly requires it to fit on level 0).
  TierId add_block(BlockId b, std::uint64_t bytes) override;

  /// Register a block with an explicit home: under a movement
  /// strategy the block starts on hierarchy level `home_level`
  /// instead of the bottom (a placement coordinator homing objects on
  /// a node's local pool rather than the disaggregated remote tier —
  /// DOLMA-style object-level placement).  Only middle levels are
  /// valid homes: level 0 is the prefetch budget and the bottom is
  /// the default.  `home_level < 0` or a non-movement strategy falls
  /// back to the plain overload.
  TierId add_block(BlockId b, std::uint64_t bytes,
                   std::int32_t home_level);

  /// Deprecated: collapse a tier id returned by add_block onto the old
  /// two-tier vocabulary (Fast == the hierarchy's top level).  Kept
  /// one release for downstream callers.
  Placement placement_of(TierId t) const {
    return t == tiers_.front().id ? Placement::Fast : Placement::Slow;
  }

  /// Forget a block.  Must be unreferenced and not in flight.
  void remove_block(BlockId b) override;

  // ---- events (each returns the commands to execute) ----

  /// A message for a [prefetch] entry method arrived at the converse
  /// scheduler (pre-processing step).
  std::vector<Command> on_task_arrived(const TaskDesc& task) override;

  /// The executor finished migrating `b` slow -> fast.
  std::vector<Command> on_fetch_complete(BlockId b) override;

  /// The executor finished migrating `b` fast -> slow.
  std::vector<Command> on_evict_complete(BlockId b) override;

  /// A task previously issued via Command::Run finished executing
  /// (post-processing step).
  std::vector<Command> on_task_complete(TaskId t);

  /// ooc::Engine signature: this engine's task records know their PE,
  /// so the hint is unused.
  std::vector<Command> on_task_complete(TaskId t, std::int32_t) override {
    return on_task_complete(t);
  }

  /// Process a batch of events in order, concatenating the resulting
  /// commands.  Exactly equivalent to calling the per-event entry
  /// points one by one; exists so a threaded executor can amortize one
  /// engine-lock acquisition over the whole batch.
  std::vector<Command> step_batch(std::vector<Event> events);

  // ---- online reconfiguration (adaptive governor) ----
  //
  // The governor retunes a quiescent engine between phases; each
  // setter is also safe to call when the value does not change.

  /// Install / replace / remove (nullptr) the advice provider.
  void set_advisor(const AdviceProvider* advisor);

  /// Switch the scheduling strategy online.  Only defined between the
  /// movement strategies (they share block placement: everything
  /// starts on the slow tier); the engine must be quiescent.
  void set_strategy(Strategy s);

  /// Flip eager/lazy eviction.  Turning eager on flushes the parked
  /// LRU (pinned blocks stay when an advisor is installed) — execute
  /// the returned eviction commands.
  std::vector<Command> set_eager_evict(bool eager);

  void set_fair_admission(bool fair);

  /// Retune the parked-LRU watermark; returns the evictions needed to
  /// get under the new cap (unpinned victims only).
  std::vector<Command> set_lru_watermark(double frac);

  // ---- introspection (tests, executors, tracing) ----

  BlockState block_state(BlockId b) const override;
  std::uint32_t refcount(BlockId b) const override;
  std::uint64_t fast_used() const { return used_.front(); }
  std::uint64_t fast_capacity() const { return cfg_.fast_capacity; }

  /// The placement hierarchy (levels, fastest first).
  const std::vector<TierDesc>& tiers() const override { return tiers_; }
  std::int32_t num_levels() const {
    return static_cast<std::int32_t>(tiers_.size());
  }
  /// Hierarchy level the block occupies (for an in-flight block, the
  /// migration destination).
  std::int32_t block_level(BlockId b) const override {
    return block(b).level;
  }
  /// Tier id of block_level(b) — what executors key arenas/channels by.
  TierId block_tier(BlockId b) const {
    return tiers_[static_cast<std::size_t>(block(b).level)].id;
  }
  /// Bytes resident on (or in flight to) a hierarchy level.
  std::uint64_t tier_used(std::int32_t level) const override {
    return used_[static_cast<std::size_t>(level)];
  }
  std::size_t waiting_tasks(std::int32_t pe) const;
  std::size_t total_waiting() const override;
  std::size_t live_tasks() const { return n_live_tasks_; }
  std::size_t inflight_fetches() const { return n_inflight_fetch_; }
  std::size_t inflight_evicts() const { return n_inflight_evict_; }
  std::size_t lru_size() const { return lru_.size(); }
  std::uint64_t lru_bytes() const { return lru_bytes_; }
  const Stats& stats() const { return stats_; }
  EngineStats engine_stats() const override { return stats_; }

  /// True when every arrived task has completed and nothing is queued
  /// or in flight — used by executors to assert quiescence.
  bool quiescent() const override;

  /// Debug: number of fast-resident blocks with refcount 0 (should be
  /// none at quiescence under eager eviction) and the first waiting
  /// task's admissibility, dumped by executors on wedge detection.
  void debug_dump(std::FILE* out) const;

  /// Cross-check the incremental bookkeeping against ground truth
  /// recomputed from the block/task records: per-level used_/outbound_
  /// bytes (a migrating block is counted on both its source and
  /// destination level until it lands), LRU membership and byte
  /// counts, waiting/live/in-flight counters, per-PE claims, block
  /// refcounts vs live-task dependence lists, waiter-list sanity.
  /// Returns one human-readable line per violation (empty = clean).
  /// `at_quiescence` adds the idle-only invariants: nothing queued, in
  /// flight, referenced or claimed.  O(blocks + tasks); callers
  /// serialize like every other entry point.
  std::vector<std::string> audit_invariants(
      bool at_quiescence) const override;

private:
  enum class TaskState : std::uint8_t { Waiting, Admitted, Ready, Done };

  struct BlockRec {
    std::uint64_t bytes = 0;
    /// Hierarchy level the block occupies; while migrating, the
    /// destination level (budget is reserved there up front).
    std::int32_t level = 0;
    /// Migration source level, or -1 when the block is resident.  The
    /// pair encodes the old four BlockStates: resident level 0 =
    /// InFast, resident lower = InSlow, migrating to 0 =
    /// FetchInFlight, migrating downward = EvictInFlight.
    std::int32_t from_level = -1;
    std::uint32_t refcount = 0;
    std::vector<TaskId> fetch_waiters; // admitted tasks awaiting fetch
    bool in_lru = false; // level-0 parking LRU (lazy / pinned)
    bool in_mid = false; // mid_lru_[level] cold list (middle levels)
    /// Admitted tasks reading this block from the slow tier on bypass
    /// advice.  While nonzero, no fetch may be issued for the block
    /// (the executors' migration would free the copy being read), so
    /// later admissions are forced onto the bypass path too.
    std::uint32_t slow_claims = 0;
  };

  struct TaskRec {
    TaskDesc desc;
    TaskState state = TaskState::Waiting;
    std::uint32_t missing = 0;      // deps not yet InFast
    std::uint64_t claim_bytes = 0;  // fresh fast-tier bytes it claimed
    std::vector<BlockId> bypassed;  // deps claimed in the slow tier
  };

  BlockRec& block(BlockId b);
  const BlockRec& block(BlockId b) const;
  TaskRec& task(TaskId t);

  /// The old four-state view of a block, derived from level/from_level.
  static BlockState state_of(const BlockRec& br) {
    if (br.from_level >= 0) {
      return br.level == 0 ? BlockState::FetchInFlight
                           : BlockState::EvictInFlight;
    }
    return br.level == 0 ? BlockState::InFast : BlockState::InSlow;
  }

  std::int32_t bottom() const {
    return static_cast<std::int32_t>(tiers_.size()) - 1;
  }

  /// Advice for `b`, or all-defaults when no advisor is installed.
  BlockAdvice advice_for(BlockId b, const BlockRec& br) const;

  /// True when this dependence is (or must be) served from the slow
  /// tier: bypass advice, or an already-active slow claim.
  bool dep_bypasses(BlockId b, const BlockRec& br) const;

  /// The LRU can hold blocks: lazy mode, or an advisor that pins.
  bool lru_enabled() const {
    return !cfg_.eager_evict || cfg_.advisor != nullptr;
  }

  /// Evict parked blocks (coldest first, unpinned unless
  /// `evict_pinned`) until parked bytes are <= `limit`.
  void flush_lru_over(std::uint64_t limit, std::int32_t agent,
                      std::int32_t pe, bool evict_pinned,
                      std::vector<Command>& cmds);

  /// Bytes of additional fast-tier space task admission would claim.
  /// Returns false via `admissible` when a dep is mid-eviction (must
  /// wait for it to land before it can be re-fetched).
  std::uint64_t admission_bytes(const TaskRec& tr, bool* admissible) const;

  bool can_admit(const TaskRec& tr) const;

  /// Fair-admission gate for the per-PE drains (MultiIo / SyncNoIo).
  bool within_fair_share(const TaskRec& tr) const;

  /// Claim deps, plan fetches, emit Run when already resident.
  void admit(TaskId t, std::int32_t fetch_agent,
             std::vector<Command>& cmds);

  void mark_ready(TaskId t, std::vector<Command>& cmds);

  /// Drain admissible tasks.  SingleIo: round-robin one task per PE
  /// queue per pass over all queues.  MultiIo: drain agent's own queue.
  /// SyncNoIo: drain `pe`'s queue with inline fetches.
  void io_step_single(std::vector<Command>& cmds);
  void io_step_multi(std::int32_t agent, std::vector<Command>& cmds);
  void io_step_sync(std::int32_t pe, std::vector<Command>& cmds);

  /// Lazy mode: schedule evictions of LRU refcount-0 blocks until
  /// `need` bytes will become free.  Returns bytes scheduled.
  std::uint64_t reclaim_lru(std::uint64_t need, std::int32_t agent,
                            std::int32_t pe, std::vector<Command>& cmds);

  /// Evict a refcount-0 level-0 block: picks the demotion destination
  /// (advice, then cascade fit search) and schedules the migration.
  /// `pe` identifies the worker lane that performs the eviction when
  /// `agent` is kWorkerInline (executors charge the stall there).
  void evict_block(BlockId b, std::int32_t agent, std::int32_t pe,
                   std::vector<Command>& cmds);

  /// Demotion landing level for a block leaving `src`: the advised
  /// level if any, else the first lower bounded level with room, else
  /// the unbounded bottom (which keeps the cascade deadlock-free).
  std::int32_t demote_target(std::int32_t src, std::uint64_t bytes,
                             std::int32_t advised) const;

  /// Schedule the migration src(=block's level) -> dst, reserving dst
  /// budget and recording in-flight outbound bytes on src, then trim
  /// dst back under its watermark if it is a middle level.
  void demote_block(BlockId b, std::int32_t dst, std::int32_t agent,
                    std::int32_t pe, std::vector<Command>& cmds);

  /// Watermark trim for middle level `k`: demote the coldest
  /// refcount-0 residents onward until (resident - outbound) bytes
  /// fall under watermark * capacity.
  void cascade_from(std::int32_t k, std::int32_t agent, std::int32_t pe,
                    std::vector<Command>& cmds);

  void lru_touch(BlockId b);
  void lru_unlink(BlockId b);
  void mid_touch(BlockId b);
  void mid_unlink(BlockId b, BlockRec& br);

  /// Wedge detection: waiting tasks but nothing live, in flight or
  /// reclaimable means the head task can never be admitted.
  void check_progress() const;

  Config cfg_;
  bool base_evict_by_worker_ = false; // Config value before strategy
                                      // overrides (restored on switch)
  std::vector<TierDesc> tiers_; // resolved hierarchy (>= 2 levels)
  std::unordered_map<BlockId, BlockRec> blocks_;
  std::unordered_map<TaskId, TaskRec> tasks_;
  std::vector<std::deque<TaskId>> wait_q_;
  std::deque<BlockId> lru_; // front = coldest (lazy / pinned parking)
  std::uint64_t lru_bytes_ = 0;
  /// Middle-level cold lists (front = coldest): refcount-0 residents
  /// of each intermediate level, the watermark trim's victim order.
  /// Unused for levels 0 (the parking LRU) and bottom.
  std::vector<std::deque<BlockId>> mid_lru_;

  /// Bytes resident on or in flight to each level — level 0 is the
  /// old fast_used_: budget covers InFast + FetchInFlight +
  /// EvictInFlight, released only when the outbound migration lands.
  std::vector<std::uint64_t> used_;
  /// In-flight bytes leaving each level (subset of used_): the
  /// watermark trim targets (used_ - outbound_) so bytes already on
  /// their way out are not demoted twice.
  std::vector<std::uint64_t> outbound_;
  std::size_t n_live_tasks_ = 0; // Admitted + Ready (not yet completed)
  std::size_t n_waiting_ = 0;
  std::size_t n_inflight_fetch_ = 0;
  std::size_t n_inflight_evict_ = 0;
  std::int32_t rr_cursor_ = 0; // SingleIo fairness cursor
  std::vector<std::uint64_t> pe_claims_; // outstanding claims per PE
  Stats stats_;
  /// Telemetry annotation: the task whose completion (eager eviction)
  /// or attempted admission (LRU reclaim) triggered the eviction being
  /// built.  Stamped into Command::task on Evict commands so the trace
  /// exporter can stitch fetch -> execute -> evict causal chains;
  /// never read by the policy itself.  kInvalidTask = untriggered
  /// (governor flushes, watermark trims at reconfiguration).
  TaskId evict_cause_ = kInvalidTask;
};

} // namespace hmr::ooc
