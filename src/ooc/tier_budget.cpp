#include "ooc/tier_budget.hpp"

#include "util/check.hpp"

namespace hmr::ooc {

TierBudget::TierBudget(std::uint64_t capacity, std::int32_t num_shards)
    : capacity_(capacity), shards_(static_cast<std::size_t>(num_shards)) {
  HMR_CHECK(num_shards > 0);
  const std::uint64_t n = static_cast<std::uint64_t>(num_shards);
  const std::uint64_t share = capacity / n;
  for (auto& s : shards_) s.avail.store(share, std::memory_order_relaxed);
  // Remainder goes to shard 0 so the shares sum to the capacity.
  shards_[0].avail.fetch_add(capacity - share * n, std::memory_order_relaxed);
}

std::uint64_t TierBudget::take(Shard& s, std::uint64_t want) {
  std::uint64_t cur = s.avail.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t got = cur < want ? cur : want;
    if (got == 0) return 0;
    if (s.avail.compare_exchange_weak(cur, cur - got,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return got;
    }
  }
}

bool TierBudget::try_claim(std::int32_t shard, std::uint64_t bytes) {
  if (bytes == 0) return true;
  auto& home = shards_[static_cast<std::size_t>(shard)];
  // Fast path: the home sub-budget covers the claim.
  {
    std::uint64_t cur = home.avail.load(std::memory_order_relaxed);
    while (cur >= bytes) {
      if (home.avail.compare_exchange_weak(cur, cur - bytes,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
  }
  // Slow path: pull slack from every shard (home included) under the
  // steal mutex.  Serializing stealers makes the claim exact: two
  // concurrent slow-path claims cannot both fail after splitting slack
  // that would have satisfied either one alone.
  std::lock_guard lk(steal_mu_);
  std::uint64_t got = 0;
  got += take(home, bytes);
  for (std::size_t i = 0; i < shards_.size() && got < bytes; ++i) {
    if (static_cast<std::int32_t>(i) == shard) continue;
    got += take(shards_[i], bytes - got);
  }
  if (got < bytes) {
    // Not enough node-wide: put back what was gathered.
    if (got > 0) home.avail.fetch_add(got, std::memory_order_acq_rel);
    return false;
  }
  // Steal in bulk: pull up to half a shard's nominal slice of extra
  // slack into the home shard so the next few claims there hit the
  // CAS fast path instead of re-entering this mutex.  When capacity
  // is tight relative to claim size the per-claim steal rate would
  // otherwise approach 100% and the slow path becomes a global lock.
  std::uint64_t bonus_want = capacity_ / shards_.size() / 2;
  std::uint64_t bonus = 0;
  for (std::size_t i = 0; i < shards_.size() && bonus < bonus_want; ++i) {
    if (static_cast<std::int32_t>(i) == shard) continue;
    bonus += take(shards_[i], bonus_want - bonus);
  }
  if (bonus > 0) home.avail.fetch_add(bonus, std::memory_order_acq_rel);
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TierBudget::release(std::int32_t shard, std::uint64_t bytes) {
  if (bytes == 0) return;
  shards_[static_cast<std::size_t>(shard)].avail.fetch_add(
      bytes, std::memory_order_acq_rel);
}

std::uint64_t TierBudget::used() const {
  std::uint64_t avail = 0;
  for (const auto& s : shards_) {
    avail += s.avail.load(std::memory_order_relaxed);
  }
  return capacity_ >= avail ? capacity_ - avail : 0;
}

std::uint64_t TierBudget::available(std::int32_t shard) const {
  return shards_[static_cast<std::size_t>(shard)].avail.load(
      std::memory_order_relaxed);
}

} // namespace hmr::ooc
