#pragma once
// TierBudget: a sharded, mostly lock-free byte budget for one bounded
// memory tier (née HbmBudget, generalized when placement went N-tier:
// the sharded engine keeps one TierBudget per bounded hierarchy
// level).
//
// The PolicyEngine accounts HBM capacity with a single counter that its
// caller serializes.  The threaded runtime's sharded engine instead
// splits the capacity into per-shard sub-budgets with atomic
// claim/release, so admissions on different PE groups never touch the
// same cache line.  When a shard's local slack is insufficient, the
// claim falls back to a serialized work-stealing pass that pulls slack
// from the other shards — a claim therefore fails only when the whole
// node genuinely lacks the bytes, exactly like the single-counter
// engine, while the common case stays contention-free.
//
// Invariant: sum over shards of available() never exceeds capacity, and
// claimed bytes are always returned to some shard via release().

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hmr::ooc {

class TierBudget {
public:
  TierBudget(std::uint64_t capacity, std::int32_t num_shards);

  TierBudget(const TierBudget&) = delete;
  TierBudget& operator=(const TierBudget&) = delete;

  /// Claim `bytes` on behalf of `shard`.  Tries the shard's local
  /// sub-budget first; on a miss it steals slack from the other shards
  /// under a mutex (slow path).  All-or-nothing: false means the claim
  /// left every sub-budget untouched.
  bool try_claim(std::int32_t shard, std::uint64_t bytes);

  /// Return `bytes` to `shard`'s sub-budget.
  void release(std::int32_t shard, std::uint64_t bytes);

  std::uint64_t capacity() const { return capacity_; }
  std::int32_t num_shards() const {
    return static_cast<std::int32_t>(shards_.size());
  }

  /// Bytes currently claimed node-wide (approximate under concurrency:
  /// each term is read atomically but not the sum).
  std::uint64_t used() const;

  /// Bytes available in one shard's sub-budget.
  std::uint64_t available(std::int32_t shard) const;

  /// Slow-path claims that had to steal slack from other shards.
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> avail{0};
  };

  /// Atomically take up to `want` bytes from `s`; returns bytes taken.
  static std::uint64_t take(Shard& s, std::uint64_t want);

  std::uint64_t capacity_;
  std::vector<Shard> shards_;
  std::mutex steal_mu_; // serializes the cross-shard slow path
  std::atomic<std::uint64_t> steals_{0};
};

} // namespace hmr::ooc
