#pragma once
// Core vocabulary of the memory-heterogeneity-aware runtime layer:
// access modes, data-dependence declarations, task descriptors, the
// scheduling strategies of the paper, and the command protocol between
// the policy engine and an executor.

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_manager.hpp" // for mem::BlockId

namespace hmr::ooc {

using mem::BlockId;
using TaskId = std::uint64_t;
inline constexpr TaskId kInvalidTask = ~0ull;

/// Access modes of the paper's .ci data-dependence annotations
/// (`[readwrite: A, writeonly: B]` on a `[prefetch]` entry method).
enum class AccessMode : std::uint8_t { ReadOnly, ReadWrite, WriteOnly };

const char* access_mode_name(AccessMode m);

/// One declared data dependence of a task.
struct Dep {
  BlockId block = mem::kInvalidBlock;
  AccessMode mode = AccessMode::ReadWrite;
};

/// A unit of schedulable work: one entry-method invocation of one chare
/// (the paper's OOCTask).  `pe` is the chare's home PE — tasks never
/// migrate, matching Charm++ semantics outside load balancing.
struct TaskDesc {
  TaskId id = kInvalidTask;
  std::int32_t pe = 0;
  std::vector<Dep> deps;

  /// Kernel intensity: how many times the kernel streams over its
  /// dependence bytes (tiling-style repeated passes raise this).
  double work_factor = 1.0;

  /// False for entry methods without the [prefetch] attribute: the
  /// converse scheduler delivers them directly, no interception.
  bool prefetch = true;

  /// Message dependences: this task's message is only *sent* (arrives
  /// at the converse scheduler) after these tasks completed — how
  /// Charm++ applications express per-chare iteration order without a
  /// global barrier.  Enforced by the executor (delivery order), not
  /// the PolicyEngine (which, like the paper's runtime, only sees
  /// messages that have arrived).
  std::vector<TaskId> predecessors;
};

/// Scheduling strategies evaluated in the paper (§IV-B / §V).
enum class Strategy : std::uint8_t {
  /// HBM-preferred static allocation, overflow to DDR4, no movement.
  Naive,
  /// Everything on DDR4 (the DDR4only bar of Fig 9).
  DdrOnly,
  /// Everything on HBM; only valid when the working set fits (Fig 2).
  HbmOnly,
  /// Multiple wait queues (one per PE), a single IO thread fetching
  /// and evicting for everyone, asynchronously.
  SingleIo,
  /// Multiple wait queues, no IO thread: each worker fetches/evicts
  /// its own data synchronously in the pre/post-processing steps.
  SyncNoIo,
  /// Multiple wait queues, one IO thread per PE, asynchronous.
  MultiIo,
};

const char* strategy_name(Strategy s);

/// True for the strategies that move data (prefetch/evict protocol).
bool strategy_moves_data(Strategy s);

/// Where a block's storage should be placed at registration time.
enum class Placement : std::uint8_t { Fast, Slow };

/// Logical block residency, the paper's INHBM / INDDR states plus the
/// two in-flight states of the asynchronous protocol.
enum class BlockState : std::uint8_t {
  InSlow,        // INDDR
  InFast,        // INHBM
  FetchInFlight, // slow -> fast migration running
  EvictInFlight, // fast -> slow migration running
};

const char* block_state_name(BlockState s);

/// The executor-facing command protocol.  The policy engine never
/// blocks, sleeps, or touches real memory; it returns a list of
/// commands the executor performs (really, with threads and memcpy, or
/// virtually, in the DES).
struct Command {
  enum class Kind : std::uint8_t {
    /// Migrate `block` slow -> fast.  `agent` is the IO thread that
    /// must perform it (kWorkerInline = the worker in whose event
    /// context this command was returned, i.e. a synchronous fetch).
    /// Executor must call PolicyEngine::on_fetch_complete when done.
    Fetch,
    /// Migrate `block` fast -> slow; report via on_evict_complete.
    Evict,
    /// `task` has all dependences resident: append it to PE `pe`'s run
    /// queue.  Executor must call on_task_complete after it runs.
    Run,
  };

  Kind kind = Kind::Run;
  BlockId block = mem::kInvalidBlock; // Fetch / Evict
  TaskId task = kInvalidTask;         // Run; for Fetch: first requester
  std::int32_t agent = 0;             // IO agent id, or kWorkerInline
  std::int32_t pe = 0;                // Run: target PE
  /// Fetch only: destination buffer need not receive the old contents
  /// (write-only dependence with the writeonly_nocopy optimization).
  bool nocopy = false;
};

/// Agent id meaning "the worker thread handling the current event".
inline constexpr std::int32_t kWorkerInline = -1;

/// Per-block guidance the PolicyEngine consults at admission and
/// eviction time when an AdviceProvider is installed (the adaptive
/// subsystem's adapt::PlacementAdvisor is the real producer; the
/// engine only sees this interface so ooc stays executor- and
/// profiler-agnostic).
struct BlockAdvice {
  /// Keep the block resident when its refcount drops to zero, even
  /// under eager eviction: park it warm in the LRU instead.
  bool pin = false;
  /// Preferred reclaim victim: evict ahead of plain LRU order.
  bool demote_first = false;
  /// Do not migrate: the task runs reading the slow-tier copy (the
  /// block's measured reuse never amortises the migration cost).
  bool bypass_fetch = false;
};

class AdviceProvider {
public:
  virtual ~AdviceProvider() = default;
  /// Must be deterministic between engine events: the engine may ask
  /// several times while deciding one admission and assumes the
  /// answers agree.
  virtual BlockAdvice advise(BlockId b, std::uint64_t bytes) const = 0;
  /// Cheap gate the engine checks before consulting advise() on the
  /// admission scan path (which runs for every queued head on every
  /// wakeup): when no block could possibly receive bypass_fetch
  /// advice, return false and the scans skip the per-block lookup
  /// entirely.  Pin / demote advice is unaffected.
  virtual bool may_bypass() const { return true; }
};

} // namespace hmr::ooc
