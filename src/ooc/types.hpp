#pragma once
// Core vocabulary of the memory-heterogeneity-aware runtime layer:
// access modes, data-dependence declarations, task descriptors, the
// scheduling strategies of the paper, and the command protocol between
// the policy engine and an executor.

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_manager.hpp" // for mem::BlockId

namespace hmr::ooc {

using mem::BlockId;
using mem::TierId;
using TaskId = std::uint64_t;
inline constexpr TaskId kInvalidTask = ~0ull;

/// Access modes of the paper's .ci data-dependence annotations
/// (`[readwrite: A, writeonly: B]` on a `[prefetch]` entry method).
enum class AccessMode : std::uint8_t { ReadOnly, ReadWrite, WriteOnly };

const char* access_mode_name(AccessMode m);

/// One declared data dependence of a task.
struct Dep {
  BlockId block = mem::kInvalidBlock;
  AccessMode mode = AccessMode::ReadWrite;
};

/// A unit of schedulable work: one entry-method invocation of one chare
/// (the paper's OOCTask).  `pe` is the chare's home PE — tasks never
/// migrate, matching Charm++ semantics outside load balancing.
struct TaskDesc {
  TaskId id = kInvalidTask;
  std::int32_t pe = 0;
  std::vector<Dep> deps;

  /// Kernel intensity: how many times the kernel streams over its
  /// dependence bytes (tiling-style repeated passes raise this).
  double work_factor = 1.0;

  /// False for entry methods without the [prefetch] attribute: the
  /// converse scheduler delivers them directly, no interception.
  bool prefetch = true;

  /// Message dependences: this task's message is only *sent* (arrives
  /// at the converse scheduler) after these tasks completed — how
  /// Charm++ applications express per-chare iteration order without a
  /// global barrier.  Enforced by the executor (delivery order), not
  /// the PolicyEngine (which, like the paper's runtime, only sees
  /// messages that have arrived).
  std::vector<TaskId> predecessors;

  /// Owning tenant for multi-tenant serving (src/serve).  Ignored by
  /// the core engines; the serve::TenantEngine decorator keys
  /// admission, quotas and per-tenant stats on it.  0 is the default
  /// tenant, so single-tenant callers never have to set it.
  std::uint32_t tenant = 0;
};

/// Scheduling strategies evaluated in the paper (§IV-B / §V).
enum class Strategy : std::uint8_t {
  /// HBM-preferred static allocation, overflow to DDR4, no movement.
  Naive,
  /// Everything on DDR4 (the DDR4only bar of Fig 9).
  DdrOnly,
  /// Everything on HBM; only valid when the working set fits (Fig 2).
  HbmOnly,
  /// Multiple wait queues (one per PE), a single IO thread fetching
  /// and evicting for everyone, asynchronously.
  SingleIo,
  /// Multiple wait queues, no IO thread: each worker fetches/evicts
  /// its own data synchronously in the pre/post-processing steps.
  SyncNoIo,
  /// Multiple wait queues, one IO thread per PE, asynchronous.
  MultiIo,
};

const char* strategy_name(Strategy s);

/// True for the strategies that move data (prefetch/evict protocol).
bool strategy_moves_data(Strategy s);

/// Where a block's storage should be placed at registration time.
/// Deprecated two-tier vocabulary, kept one release for downstream
/// callers: new code uses the TierId returned by
/// PolicyEngine::add_block (Fast == the hierarchy's top level).
enum class Placement : std::uint8_t { Fast, Slow };

/// How a hierarchy level's bytes are physically realized.  The engine
/// treats every backend identically for placement (capacity, cascade,
/// watermark); the distinction is what a migration touching the level
/// *costs* — executors charge a Remote level's transfers against a
/// network channel (latency + bandwidth + message rate) instead of a
/// local copy channel, and engines count the traffic separately
/// (EngineStats::remote_*).
enum class TierBackendKind : std::uint8_t {
  LocalArena, // node-local memory pool (the classic tier)
  Remote,     // disaggregated pool reached over the interconnect
};

const char* tier_backend_name(TierBackendKind k);

/// Cost parameters of the network path behind a Remote tier backend.
/// Plain numbers (no sim dependency): sim::NetworkModel::tier_params
/// produces them, and the DES reconstructs message timing from them.
/// A transfer of B bytes is segmented into ceil(B / max_msg_bytes)
/// messages and costs
///   latency + max(B / bandwidth, messages / msg_rate)
/// — the message-rate term dominates in the small-message regime.
struct RemoteTierParams {
  double latency = 2e-6;     // per transfer, seconds (message chain setup)
  double bandwidth = 10.0e9; // serialization bytes/s (link/injection min)
  double msg_rate = 2.5e7;   // messages/s the NIC can issue
  std::uint64_t max_msg_bytes = 64ull << 10; // segmentation unit

  std::uint64_t messages(std::uint64_t bytes) const {
    if (max_msg_bytes == 0) return 1;
    const std::uint64_t n = (bytes + max_msg_bytes - 1) / max_msg_bytes;
    return n > 0 ? n : 1;
  }
  double serialize_seconds(std::uint64_t bytes) const {
    const double bw_term = static_cast<double>(bytes) / bandwidth;
    const double msg_term =
        static_cast<double>(messages(bytes)) / msg_rate;
    return bw_term > msg_term ? bw_term : msg_term;
  }
  double transfer_seconds(std::uint64_t bytes) const {
    return latency + serialize_seconds(bytes);
  }
};

/// One level of the engine's placement hierarchy, ordered fastest
/// first.  `id` is the executor-facing tier id (the hw/mem tier
/// index); the engine itself reasons in hierarchy levels (vector
/// positions) and only uses `id` to label commands.  `capacity == 0`
/// means unbounded and is required on the last (bottom) level, which
/// backs the paper's assumption that data always fits the far tier.
/// `watermark` is the fraction of `capacity` the level is trimmed
/// back to: on level 0 it bounds the parked (refcount-0) LRU bytes
/// exactly like the old `lru_watermark`; on intermediate levels it is
/// the demotion-cascade trigger (resident bytes above it are demoted
/// onward, coldest first).
struct TierDesc {
  TierId id = 0;
  std::uint64_t capacity = 0;
  double watermark = 1.0;
  /// Pluggable backend: LocalArena behaves exactly as before (the
  /// default keeps every existing hierarchy byte-identical); Remote
  /// marks the level as a disaggregated pool and `remote` carries its
  /// network cost parameters.
  TierBackendKind backend = TierBackendKind::LocalArena;
  RemoteTierParams remote; // read only when backend == Remote

  TierDesc() = default;
  TierDesc(TierId id_, std::uint64_t capacity_ = 0, double watermark_ = 1.0)
      : id(id_), capacity(capacity_), watermark(watermark_) {}
};

/// Placement hierarchy for a machine model: every memory tier, local
/// tiers first sorted by read bandwidth descending, then remote tiers
/// (a disaggregated pool is always below every local pool, whatever
/// its nominal bandwidth), capacities taken from the model and the
/// slowest tier left unbounded.  Tiers flagged hw::MemoryTier::remote
/// become Remote backends with bandwidth/latency from the model tier
/// (sim::tiers_with_remote refines the message-rate parameters from a
/// full NetworkModel).  This is how executors hand an N-tier node to
/// the engine with zero application changes.
std::vector<TierDesc> tiers_from_model(const hw::MachineModel& m);

/// Counters every engine implementation maintains (one struct so the
/// serial and sharded engines — and decorators over either — report
/// through the same telemetry plumbing).  Historically nested as
/// PolicyEngine::Stats; that name remains as an alias.
struct EngineStats {
  std::uint64_t tasks_run = 0;
  std::uint64_t fetches = 0;
  std::uint64_t fetch_bytes = 0;
  std::uint64_t evicts = 0;
  std::uint64_t evict_bytes = 0;
  std::uint64_t fetch_dedup_hits = 0; // dep already in/inbound to HBM
  std::uint64_t lru_reclaims = 0;     // lazy mode: warm block reused
  std::uint64_t advised_pins = 0;      // eager evict skipped on advice
  std::uint64_t advised_bypasses = 0;  // dep claimed in the slow tier
  std::uint64_t advised_demotions = 0; // demote-advised reclaim victim
  std::uint64_t cascade_demotions = 0; // evictions caught by a middle level
  std::uint64_t tier_trims = 0;        // watermark demotions off middle levels
  // Remote tier backend traffic (zero on all-local hierarchies).
  std::uint64_t remote_fetches = 0;     // promotions sourced from a Remote level
  std::uint64_t remote_fetch_bytes = 0; // bytes pulled over the network
  std::uint64_t remote_evicts = 0;      // demotions landing on a Remote level
  std::uint64_t remote_evict_bytes = 0; // bytes spilled over the network
};

/// Logical block residency, the paper's INHBM / INDDR states plus the
/// two in-flight states of the asynchronous protocol.
enum class BlockState : std::uint8_t {
  InSlow,        // INDDR
  InFast,        // INHBM
  FetchInFlight, // slow -> fast migration running
  EvictInFlight, // fast -> slow migration running
};

const char* block_state_name(BlockState s);

/// The executor-facing command protocol.  The policy engine never
/// blocks, sleeps, or touches real memory; it returns a list of
/// commands the executor performs (really, with threads and memcpy, or
/// virtually, in the DES).
struct Command {
  enum class Kind : std::uint8_t {
    /// Migrate `block` src_tier -> dst_tier, a promotion to the top
    /// level.  `agent` is the IO thread that must perform it
    /// (kWorkerInline = the worker in whose event context this
    /// command was returned, i.e. a synchronous fetch).  Executor
    /// must call PolicyEngine::on_fetch_complete when done.
    Fetch,
    /// Migrate `block` src_tier -> dst_tier, a demotion to a lower
    /// level (top -> middle, middle -> bottom, or straight to the
    /// bottom); report via on_evict_complete.
    Evict,
    /// `task` has all dependences resident: append it to PE `pe`'s run
    /// queue.  Executor must call on_task_complete after it runs.
    Run,
  };

  Kind kind = Kind::Run;
  BlockId block = mem::kInvalidBlock; // Fetch / Evict
  TaskId task = kInvalidTask;         // Run; for Fetch: first requester
  std::int32_t agent = 0;             // IO agent id, or kWorkerInline
  std::int32_t pe = 0;                // Run: target PE
  /// Fetch only: destination buffer need not receive the old contents
  /// (write-only dependence with the writeonly_nocopy optimization).
  bool nocopy = false;
  /// Fetch / Evict: the migration endpoints as executor-facing tier
  /// ids (TierDesc::id values of the source and destination levels).
  TierId src_tier = 0;
  TierId dst_tier = 0;
};

/// Agent id meaning "the worker thread handling the current event".
inline constexpr std::int32_t kWorkerInline = -1;

/// Per-block guidance the PolicyEngine consults at admission and
/// eviction time when an AdviceProvider is installed (the adaptive
/// subsystem's adapt::PlacementAdvisor is the real producer; the
/// engine only sees this interface so ooc stays executor- and
/// profiler-agnostic).
/// BlockAdvice::demote_level: let the engine's demotion cascade pick
/// the landing level (first lower level with room, else bottom).
inline constexpr std::int32_t kLevelAuto = -1;
/// BlockAdvice::demote_level: send the block straight to the bottom
/// level, skipping intermediate tiers (cold / streaming data whose
/// re-fetch savings never pay for occupying middle-tier capacity).
inline constexpr std::int32_t kLevelFar = 1 << 30;

struct BlockAdvice {
  /// Keep the block resident when its refcount drops to zero, even
  /// under eager eviction: park it warm in the LRU instead.
  bool pin = false;
  /// Preferred reclaim victim: evict ahead of plain LRU order.
  bool demote_first = false;
  /// Do not migrate: the task runs reading the slow-tier copy (the
  /// block's measured reuse never amortises the migration cost).
  bool bypass_fetch = false;
  /// Preferred demotion landing level (hierarchy level index, not
  /// tier id): kLevelAuto defers to the cascade, kLevelFar forces the
  /// bottom, any other value starts the cascade's fit search at that
  /// level.  Ignored on two-level hierarchies, where the only
  /// destination is the bottom — which is what keeps two-tier
  /// command streams bit-identical to the pre-tier engine.
  std::int32_t demote_level = kLevelAuto;
};

class AdviceProvider {
public:
  virtual ~AdviceProvider() = default;
  /// Must be deterministic between engine events: the engine may ask
  /// several times while deciding one admission and assumes the
  /// answers agree.
  virtual BlockAdvice advise(BlockId b, std::uint64_t bytes) const = 0;
  /// Cheap gate the engine checks before consulting advise() on the
  /// admission scan path (which runs for every queued head on every
  /// wakeup): when no block could possibly receive bypass_fetch
  /// advice, return false and the scans skip the per-block lookup
  /// entirely.  Pin / demote advice is unaffected.
  virtual bool may_bypass() const { return true; }
};

} // namespace hmr::ooc
