#pragma once
// Chare arrays: over-decomposed work units block-mapped onto PEs.
//
// ChareArray<C> owns `n` instances of a user chare type C and provides
// Charm++-flavoured entry-method delivery:
//
//   struct MyChare : hmr::rt::Chare {
//     hmr::rt::IoHandle<double> grid;
//     void compute() { ... }
//   };
//
//   ChareArray<MyChare> arr(rt, 16, init_fn);
//   auto kCompute = arr.register_entry(
//       "compute", /*prefetch=*/true,
//       [](MyChare& c) { c.compute(); },
//       [](MyChare& c) { return hmr::rt::Runtime::DepList{
//           c.grid.dep(hmr::ooc::AccessMode::ReadWrite)}; });
//   arr.broadcast(kCompute);   // or arr.send(idx, kCompute)
//   rt.wait_idle();
//
// The deps callback is the analogue of the `.ci` annotation
// `entry [prefetch] void compute() [readwrite: grid]`: it names which
// IoHandles the method touches and how.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rt/runtime.hpp"
#include "util/check.hpp"

namespace hmr::rt {

/// Base class for user chares (index and home PE, assigned by the
/// array; chares never migrate, matching the paper's setting).
struct Chare {
  int index = -1;
  int pe = -1;
};

template <typename C>
class ChareArray {
public:
  using EntryId = std::size_t;
  using EntryBody = std::function<void(C&)>;
  using EntryDeps = std::function<Runtime::DepList(C&)>;

  /// Create `n` chares, block-mapped over the runtime's PEs, invoking
  /// `init` on each (allocate IoHandles there).
  ChareArray(Runtime& rt, int n, const std::function<void(C&)>& init)
      : rt_(&rt) {
    HMR_CHECK(n > 0);
    static_assert(std::is_base_of_v<Chare, C>,
                  "chare types must derive from hmr::rt::Chare");
    chares_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto c = std::make_unique<C>();
      c->index = i;
      // Round-robin map (Charm++ default): spreads chares — and the
      // Naive strategy's HBM-resident ones — evenly over PEs.
      c->pe = i % rt.num_pes();
      if (init) init(*c);
      chares_.push_back(std::move(c));
    }
  }

  int size() const { return static_cast<int>(chares_.size()); }
  C& operator[](int i) {
    HMR_CHECK(i >= 0 && i < size());
    return *chares_[static_cast<std::size_t>(i)];
  }
  const C& operator[](int i) const {
    HMR_CHECK(i >= 0 && i < size());
    return *chares_[static_cast<std::size_t>(i)];
  }

  /// Register an entry method.  `prefetch` selects interception; for
  /// prefetch entries `deps` must name every IoHandle the body reads
  /// or writes (the paper's data-dependence annotation).
  /// `work_factor` is a hint recorded with the task (kernel passes).
  EntryId register_entry(std::string name, bool prefetch, EntryBody body,
                         EntryDeps deps = nullptr,
                         double work_factor = 1.0) {
    HMR_CHECK_MSG(!prefetch || deps,
                  "prefetch entry methods must declare dependences");
    entries_.push_back({std::move(name), prefetch, std::move(body),
                        std::move(deps), work_factor});
    return entries_.size() - 1;
  }

  /// Deliver entry `e` to chare `idx` (async, any thread).
  void send(int idx, EntryId e) {
    HMR_CHECK(idx >= 0 && idx < size());
    HMR_CHECK(e < entries_.size());
    C& c = *chares_[static_cast<std::size_t>(idx)];
    const Entry& entry = entries_[e];
    if (entry.prefetch) {
      rt_->send_prefetch(
          c.pe, entry.deps(c), [&entry, &c] { entry.body(c); },
          entry.work_factor);
    } else {
      rt_->send(c.pe, [&entry, &c] { entry.body(c); });
    }
  }

  /// Deliver entry `e` to every chare.
  void broadcast(EntryId e) {
    for (int i = 0; i < size(); ++i) send(i, e);
  }

private:
  struct Entry {
    std::string name;
    bool prefetch;
    EntryBody body;
    EntryDeps deps;
    double work_factor;
  };

  Runtime* rt_;
  std::vector<std::unique_ptr<C>> chares_;
  std::vector<Entry> entries_;
};

} // namespace hmr::rt
