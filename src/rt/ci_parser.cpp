#include "rt/ci_parser.hpp"

#include <cctype>
#include <sstream>

namespace hmr::rt {

namespace {

/// Minimal recursive-descent tokenizer/parser with position tracking.
class Parser {
public:
  explicit Parser(std::string_view src) : src_(src) {}

  CiParseResult run() {
    CiFile file;
    skip_ws();
    while (!eof()) {
      auto m = parse_module();
      if (!ok_) return fail_result();
      file.modules.push_back(std::move(m));
      skip_ws();
    }
    if (file.modules.empty()) {
      error("expected at least one module");
      return fail_result();
    }
    CiParseResult r;
    r.file = std::move(file);
    return r;
  }

private:
  // ---- character stream ----
  bool eof() const { return pos_ >= src_.size(); }
  char peek() const { return eof() ? '\0' : src_[pos_]; }
  char get() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        get();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          while (!eof() && peek() != '\n') get();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          get();
          get();
          while (!eof()) {
            if (get() == '*' && !eof() && peek() == '/') {
              get();
              break;
            }
          }
          continue;
        }
      }
      break;
    }
  }

  void error(const std::string& msg) {
    if (ok_) {
      ok_ = false;
      err_ = msg;
      err_line_ = line_;
      err_col_ = col_;
    }
  }

  CiParseResult fail_result() const {
    CiParseResult r;
    r.error = err_;
    r.line = err_line_;
    r.column = err_col_;
    return r;
  }

  // ---- tokens ----
  std::string ident() {
    skip_ws();
    std::string out;
    if (!eof() &&
        (std::isalpha(static_cast<unsigned char>(peek())) || peek() == '_')) {
      while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_')) {
        out.push_back(get());
      }
    }
    if (out.empty()) error("expected identifier");
    return out;
  }

  bool expect(char c, const char* what) {
    skip_ws();
    if (peek() == c) {
      get();
      return true;
    }
    error(std::string("expected '") + c + "' " + what);
    return false;
  }

  bool accept(char c) {
    skip_ws();
    if (peek() == c) {
      get();
      return true;
    }
    return false;
  }

  bool keyword(const char* kw) {
    skip_ws();
    const std::size_t save = pos_;
    const int sl = line_, sc = col_;
    for (const char* p = kw; *p; ++p) {
      if (eof() || peek() != *p) {
        pos_ = save;
        line_ = sl;
        col_ = sc;
        return false;
      }
      get();
    }
    // must not be a prefix of a longer identifier
    if (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_')) {
      pos_ = save;
      line_ = sl;
      col_ = sc;
      return false;
    }
    return true;
  }

  // ---- grammar ----
  CiModule parse_module() {
    CiModule m;
    if (!keyword("module")) {
      error("expected 'module'");
      return m;
    }
    m.name = ident();
    if (!ok_) return m;
    if (!expect('{', "after module name")) return m;
    skip_ws();
    while (ok_ && peek() != '}') {
      m.entries.push_back(parse_entry());
      skip_ws();
    }
    if (!expect('}', "to close module")) return m;
    accept(';'); // trailing semicolon optional
    return m;
  }

  CiEntry parse_entry() {
    CiEntry e;
    if (!keyword("entry")) {
      error("expected 'entry'");
      return e;
    }
    // optional attribute list: [prefetch, ...]
    if (accept('[')) {
      for (;;) {
        const std::string a = ident();
        if (!ok_) return e;
        if (a == "prefetch") e.prefetch = true;
        e.attrs.push_back(a);
        if (accept(']')) break;
        if (!expect(',', "in attribute list")) return e;
      }
    }
    if (!keyword("void")) {
      error("only 'void' entry methods are supported");
      return e;
    }
    e.name = ident();
    if (!ok_) return e;
    if (!expect('(', "after entry name")) return e;
    if (!expect(')', "entry parameters are not supported")) return e;
    // optional dependence list: [readwrite: A, writeonly: B]
    if (accept('[')) {
      for (;;) {
        CiDep d;
        const std::string mode = ident();
        if (!ok_) return e;
        if (mode == "readonly") {
          d.mode = ooc::AccessMode::ReadOnly;
        } else if (mode == "readwrite") {
          d.mode = ooc::AccessMode::ReadWrite;
        } else if (mode == "writeonly") {
          d.mode = ooc::AccessMode::WriteOnly;
        } else {
          error("unknown access mode '" + mode + "'");
          return e;
        }
        if (!expect(':', "after access mode")) return e;
        d.name = ident();
        if (!ok_) return e;
        e.deps.push_back(std::move(d));
        if (accept(']')) break;
        if (!expect(',', "in dependence list")) return e;
      }
    }
    if (e.prefetch && e.deps.empty()) {
      error("[prefetch] entry '" + e.name + "' declares no dependences");
      return e;
    }
    if (!expect(';', "after entry declaration")) return e;
    return e;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool ok_ = true;
  std::string err_;
  int err_line_ = 0;
  int err_col_ = 0;
};

} // namespace

const CiEntry* CiFile::find(const std::string& module_name,
                            const std::string& entry_name) const {
  for (const auto& m : modules) {
    if (m.name != module_name) continue;
    for (const auto& e : m.entries) {
      if (e.name == entry_name) return &e;
    }
  }
  return nullptr;
}

CiParseResult parse_ci(std::string_view source) {
  return Parser(source).run();
}

std::string generate_stubs(const CiModule& module) {
  std::ostringstream os;
  os << "// Generated by hmr-charmxi from module " << module.name << "\n";
  for (const auto& e : module.entries) {
    if (!e.prefetch) continue;
    os << "\n// ---- entry [prefetch] " << e.name << " ----\n";
    os << "void " << module.name << "::_" << e.name
       << "_preprocess(Message* msg) {\n"
       << "  // Wrap the message and annotated handles as an OOCTask\n"
       << "  // (paper SIV-B); the converse scheduler delivers the entry\n"
       << "  // only after all dependences reach INHBM.\n"
       << "  OOCTask task(this, msg);\n";
    for (const auto& d : e.deps) {
      os << "  task.add_dependence(" << d.name << ", AccessMode::"
         << (d.mode == ooc::AccessMode::ReadOnly    ? "ReadOnly"
             : d.mode == ooc::AccessMode::ReadWrite ? "ReadWrite"
                                                    : "WriteOnly")
         << ");\n";
    }
    os << "  runtime()->on_task_arrived(std::move(task));\n"
       << "}\n";
    os << "void " << module.name << "::_" << e.name
       << "_postprocess() {\n"
       << "  // Release claims; refcount-0 blocks are evicted to DDR4.\n"
       << "  runtime()->on_task_complete(current_task());\n"
       << "}\n";
  }
  return os.str();
}

} // namespace hmr::rt
