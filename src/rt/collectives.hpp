#pragma once
// Node-level collectives: NodeGroup (one shared instance per node,
// the paper's vehicle for caching read-only matmul blocks node-wide)
// and Reduction (contribute/combine across chares, used by iterative
// applications to detect convergence).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>

#include "util/check.hpp"

namespace hmr::rt {

/// One instance of T shared by all chares on the node, with a mutex
/// for the rare mutating accesses (reads of immutable state are free).
template <typename T>
class NodeGroup {
public:
  template <typename... Args>
  explicit NodeGroup(Args&&... args) : value_(std::forward<Args>(args)...) {}

  /// Run `fn` with exclusive access to the shared instance.
  template <typename F>
  auto with(F&& fn) {
    std::lock_guard lk(mu_);
    return fn(value_);
  }

  /// Unsynchronized access — only for state that is immutable while
  /// entry methods run (e.g. handles installed before the first send).
  T& unsafe_get() { return value_; }

private:
  std::mutex mu_;
  T value_;
};

/// Sum/max reduction over a fixed number of contributions.  The
/// combining is associative and commutative, so contribution order
/// (which varies across PE threads) does not affect the result.
template <typename T>
class Reduction {
public:
  using Combine = std::function<T(const T&, const T&)>;

  Reduction(std::uint64_t expected, T identity, Combine combine)
      : expected_(expected), value_(std::move(identity)),
        combine_(std::move(combine)) {
    HMR_CHECK(expected_ > 0);
  }

  /// Contribute one value (thread-safe; callable from entry methods).
  void contribute(const T& v) {
    std::lock_guard lk(mu_);
    HMR_CHECK_MSG(received_ < expected_, "too many contributions");
    value_ = combine_(value_, v);
    if (++received_ == expected_) cv_.notify_all();
  }

  /// Block until all contributions arrived; returns the combined value
  /// and resets for the next round.
  T wait() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return received_ == expected_; });
    received_ = 0;
    return std::exchange(value_, T{});
  }

  std::uint64_t pending() const {
    std::lock_guard lk(mu_);
    return expected_ - received_;
  }

private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t expected_;
  std::uint64_t received_ = 0;
  T value_;
  Combine combine_;
};

} // namespace hmr::rt
