#pragma once
// IoHandle<T>: the typed handle to a migratable data block — the
// paper's CkIOHandle.
//
// Declaring chare data through IoHandle is the "trivial code change"
// the paper asks of applications: the handle lets the runtime store
// and query metadata about the block (size, residency, refcount) and
// migrate its storage between tiers.  Application code accesses the
// payload through data()/span(), which always resolves the *current*
// location — valid whenever the surrounding entry method declared the
// dependence (the runtime pins the block resident for its duration).

#include <cstdint>
#include <span>

#include "ooc/types.hpp"
#include "rt/runtime.hpp"
#include "util/check.hpp"

namespace hmr::rt {

template <typename T>
class IoHandle {
public:
  IoHandle() = default;

  /// Allocate a block of `count` elements through the runtime.
  IoHandle(Runtime& rt, std::uint64_t count)
      : rt_(&rt), count_(count),
        block_(rt.alloc_block(count * sizeof(T))) {}

  bool valid() const { return rt_ != nullptr; }
  mem::BlockId id() const { return block_; }
  std::uint64_t size() const { return count_; }
  std::uint64_t bytes() const { return count_ * sizeof(T); }

  /// Pointer to the block's current storage (moves across tiers).
  T* data() const {
    HMR_DCHECK(rt_ != nullptr);
    return static_cast<T*>(rt_->block_ptr(block_));
  }

  std::span<T> span() const { return {data(), count_}; }

  T& operator[](std::uint64_t i) const {
    HMR_DCHECK(i < count_);
    return data()[i];
  }

  /// Build a dependence record for an entry-method declaration, e.g.
  ///   rt.send_prefetch(pe, {A.dep(ReadWrite), B.dep(WriteOnly)}, ...)
  ooc::Dep dep(ooc::AccessMode mode) const { return {block_, mode}; }

private:
  Runtime* rt_ = nullptr;
  std::uint64_t count_ = 0;
  mem::BlockId block_ = mem::kInvalidBlock;
};

} // namespace hmr::rt
