#include "rt/load_balancer.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace hmr::rt {

std::vector<int> greedy_assign(const std::vector<double>& loads,
                               int num_pes) {
  HMR_CHECK(num_pes > 0);
  std::vector<std::size_t> order(loads.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (loads[a] != loads[b]) return loads[a] > loads[b];
    return a < b; // deterministic tie break
  });

  // Min-heap of (pe_load, pe).
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (int pe = 0; pe < num_pes; ++pe) heap.emplace(0.0, pe);

  std::vector<int> assign(loads.size(), 0);
  for (const std::size_t i : order) {
    auto [load, pe] = heap.top();
    heap.pop();
    assign[i] = pe;
    heap.emplace(load + loads[i], pe);
  }
  return assign;
}

std::vector<double> pe_loads(const std::vector<double>& loads,
                             const std::vector<int>& assignment,
                             int num_pes) {
  HMR_CHECK(loads.size() == assignment.size());
  std::vector<double> out(static_cast<std::size_t>(num_pes), 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const int pe = assignment[i];
    HMR_CHECK(pe >= 0 && pe < num_pes);
    out[static_cast<std::size_t>(pe)] += loads[i];
  }
  return out;
}

} // namespace hmr::rt
