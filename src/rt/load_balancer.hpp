#pragma once
// Measurement-based greedy load balancing for chare arrays.
//
// The paper leans on Charm++'s over-decomposition story (§III-A):
// "Over-decomposition with migratability allows for load balancing of
// chares ... Objects do not migrate at anytime, they migrate only when
// load balancing explicitly moves them to a different PE."  This
// header provides that explicit move: a greedy
// longest-processing-time assignment from measured per-chare loads,
// applied between iterations while the runtime is quiescent.

#include <vector>

#include "rt/chare.hpp"
#include "util/check.hpp"

namespace hmr::rt {

struct LbResult {
  /// Heaviest PE load before/after, in the units of the input loads.
  double max_before = 0;
  double max_after = 0;
  /// Sum of loads / num_pes: the balance lower bound.
  double ideal = 0;
  /// Chares whose home PE changed.
  int migrations = 0;

  double imbalance_before() const {
    return ideal > 0 ? max_before / ideal : 1.0;
  }
  double imbalance_after() const {
    return ideal > 0 ? max_after / ideal : 1.0;
  }
};

/// Greedy LPT assignment: sort chares by descending load, place each on
/// the currently lightest PE.  Returns the new chare -> PE map.
/// Guarantees max_after <= (4/3 - 1/(3 num_pes)) * optimum (Graham).
std::vector<int> greedy_assign(const std::vector<double>& loads,
                               int num_pes);

/// Compute the per-PE load vector of an assignment.
std::vector<double> pe_loads(const std::vector<double>& loads,
                             const std::vector<int>& assignment,
                             int num_pes);

/// Rebalance a chare array in place from measured per-chare loads.
/// Must be called at quiescence (e.g. between iterations, after
/// Runtime::wait_idle); messages sent afterwards follow the new map.
template <typename C>
LbResult rebalance(ChareArray<C>& arr, const std::vector<double>& loads,
                   int num_pes) {
  HMR_CHECK(static_cast<int>(loads.size()) == arr.size());
  HMR_CHECK(num_pes > 0);

  LbResult r;
  std::vector<int> before(loads.size());
  for (int i = 0; i < arr.size(); ++i) {
    before[static_cast<std::size_t>(i)] = arr[i].pe;
  }
  const auto after = greedy_assign(loads, num_pes);

  double sum = 0;
  for (double l : loads) sum += l;
  r.ideal = sum / num_pes;
  for (double l : pe_loads(loads, before, num_pes)) {
    r.max_before = std::max(r.max_before, l);
  }
  for (double l : pe_loads(loads, after, num_pes)) {
    r.max_after = std::max(r.max_after, l);
  }
  for (int i = 0; i < arr.size(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (after[idx] != before[idx]) {
      arr[i].pe = after[idx];
      ++r.migrations;
    }
  }
  return r;
}

} // namespace hmr::rt
