#include "rt/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "telemetry/bridge.hpp"
#include "telemetry/crash.hpp"
#include "util/check.hpp"

namespace hmr::rt {

namespace {

/// The runtime's placement hierarchy: the Config override verbatim, or
/// the model's tiers in bandwidth order with non-bottom budgets equal
/// to the *scaled* arenas (the engine must not admit bytes the
/// MemoryManager cannot physically hold) and the bottom unbounded.
std::vector<ooc::TierDesc> resolve_tiers(const Runtime::Config& cfg,
                                         const mem::MemoryManager& mm) {
  std::vector<ooc::TierDesc> tiers = cfg.tiers;
  if (tiers.empty()) {
    tiers = ooc::tiers_from_model(cfg.model);
    for (std::size_t k = 0; k + 1 < tiers.size(); ++k) {
      tiers[k].capacity = mm.usage(tiers[k].id).capacity;
    }
  }
  tiers.back().capacity = 0;
  return tiers;
}

ooc::PolicyEngine::Config engine_config(const Runtime::Config& cfg,
                                        const mem::MemoryManager& mm) {
  ooc::PolicyEngine::Config ec;
  ec.strategy = cfg.strategy;
  ec.num_pes = cfg.num_pes;
  ec.tiers = resolve_tiers(cfg, mm);
  ec.fast_capacity = ec.tiers.front().capacity;
  ec.eager_evict = cfg.eager_evict;
  ec.evict_by_worker = cfg.evict_by_worker;
  ec.writeonly_nocopy = cfg.writeonly_nocopy;
  ec.demote_cascade = cfg.demote_cascade;
  return ec;
}

/// The ShardedEngine covers exactly the MultiIo + eager-eviction hot
/// path; everything global (SingleIo round-robin, SyncNoIo, the lazy
/// LRU, the adaptive advisor) stays on the serial engine.
bool sharded_eligible(const Runtime::Config& cfg) {
  return cfg.engine_shards != 1 &&
         cfg.strategy == ooc::Strategy::MultiIo && cfg.eager_evict &&
         !cfg.adaptive;
}

int io_thread_count(const Runtime::Config& cfg) {
  // Adaptive runs may switch to MultiIo mid-run: give them the full
  // complement (commands route via agent % io_.size()).
  if (cfg.adaptive) return cfg.num_pes;
  switch (cfg.strategy) {
    case ooc::Strategy::SingleIo:
      return 1;
    case ooc::Strategy::MultiIo:
      return cfg.num_pes;
    default:
      return 0;
  }
}

/// Best-effort CPU pinning; silently ignored off-Linux or when the
/// machine has fewer cores than threads.
void pin_to_core(std::thread& t, int core) {
#ifdef __linux__
  const int n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0 || core >= n) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)core;
#endif
}

std::vector<mem::MemoryManager::TierSpec> tier_specs(
    const Runtime::Config& cfg) {
  auto specs =
      mem::MemoryManager::specs_from_model(cfg.model, cfg.mem_scale);
  if (cfg.mmap_arenas) {
    for (auto& spec : specs) spec.backing = mem::ArenaBacking::Mmap;
  }
  return specs;
}

} // namespace

Runtime::Runtime(Config cfg)
    : cfg_(std::move(cfg)),
      mm_(std::make_unique<mem::MemoryManager>(tier_specs(cfg_),
                                               cfg_.memory_pool)),
      engine_(engine_config(cfg_, *mm_)),
      pending_(static_cast<std::size_t>(std::max(1, cfg_.num_pes))),
      tasks_done_(static_cast<std::size_t>(std::max(1, cfg_.num_pes))),
      tracer_(cfg_.trace, cfg_.trace_opts),
      t0_(std::chrono::steady_clock::now()) {
  HMR_CHECK(cfg_.num_pes > 0);
  cfg_.io_batch = std::max(1, cfg_.io_batch);
  if (cfg_.serve_port >= 0) cfg_.metrics = true; // /metrics needs them
  if (cfg_.metrics) {
    metrics_ = std::make_unique<telemetry::MetricsRegistry>();
    mh_.fetch_ns = &metrics_->histogram(
        "hmr_fetch_latency_ns", "", "Fetch migration wall time (ns)");
    mh_.evict_ns = &metrics_->histogram(
        "hmr_evict_latency_ns", "", "Evict migration wall time (ns)");
    mh_.task_wait_ns = &metrics_->histogram(
        "hmr_task_wait_ns", "",
        "Interception-to-execution wait per prefetch task (ns)");
    mh_.run_q_depth = &metrics_->histogram(
        "hmr_run_queue_depth", "",
        "Ready-queue depth observed per PE wakeup");
    telemetry::AttributionTable::Options ao;
    ao.shards = static_cast<std::size_t>(cfg_.num_pes);
    attrib_ = std::make_unique<telemetry::AttributionTable>(ao);
  }
  if (cfg_.metrics && cfg_.history_depth > 0) {
    history_ = std::make_unique<telemetry::HistoryBuffer>(
        *metrics_, cfg_.history_depth);
    history_->set_clock([this] { return now(); });
  }
  cfg_.flight_depth = telemetry::flight_depth_from_env(cfg_.flight_depth);
  if (cfg_.flight_depth > 0) {
    flight_ = std::make_unique<telemetry::BlockFlightRecorder>(
        cfg_.flight_depth);
  }
  if (cfg_.chunk_threshold > 0) {
    mm_->set_chunked_copy(cfg_.chunk_threshold, cfg_.chunk_bytes);
  }
  if (cfg_.zero_copy) mm_->set_zero_copy(true);
  if (sharded_eligible(cfg_)) {
    ShardedEngine::Config sc;
    sc.num_pes = cfg_.num_pes;
    sc.num_shards = std::max(0, cfg_.engine_shards);
    sc.tiers = resolve_tiers(cfg_, *mm_);
    sc.fast_capacity = sc.tiers.front().capacity;
    sc.writeonly_nocopy = cfg_.writeonly_nocopy;
    sc.evict_by_worker = cfg_.evict_by_worker;
    sc.demote_cascade = cfg_.demote_cascade;
    if (cfg_.lock_stats) {
      const auto n = sc.num_shards > 0
                         ? std::min(sc.num_shards, sc.num_pes)
                         : sc.num_pes;
      lock_stats_ = std::make_unique<trace::ContentionStats>(
          static_cast<std::size_t>(n));
    }
    sharded_ = std::make_unique<ShardedEngine>(sc, lock_stats_.get());
  } else if (cfg_.lock_stats) {
    lock_stats_ = std::make_unique<trace::ContentionStats>(1);
  }
  if (cfg_.adaptive) {
    HMR_CHECK_MSG(ooc::strategy_moves_data(cfg_.strategy),
                  "adaptive guidance requires a movement strategy");
    profiler_ = std::make_unique<adapt::BlockProfiler>(cfg_.profiler_cfg);
    adapt::AdvisorConfig ac = adapt::AdvisorConfig::from_model(cfg_.model);
    advisor_ = std::make_unique<adapt::PlacementAdvisor>(*profiler_, ac);
    adapt::GovernorConfig gc = cfg_.governor_cfg;
    gc.initial_strategy = cfg_.strategy;
    gc.initial_eager_evict = cfg_.eager_evict;
    gc.num_pes = cfg_.num_pes;
    gc.channel_bytes_per_second =
        cfg_.model.channel_capacity(cfg_.model.slow, cfg_.model.fast);
    governor_ = std::make_unique<adapt::StrategyGovernor>(gc);
    engine_.set_advisor(advisor_.get()); // before any thread starts
    if (cfg_.decision_log_depth > 0) {
      decisions_ =
          std::make_unique<telemetry::DecisionLog>(cfg_.decision_log_depth);
      decisions_->set_clock([this] { return now(); });
      advisor_->set_decision_sink(decisions_.get());
      governor_->set_decision_sink(decisions_.get());
    }
  }
  if (cfg_.serve.enabled()) {
    HMR_CHECK_MSG(!cfg_.adaptive,
                  "multi-tenant serving and adaptive guidance both claim "
                  "the engine's advisor slot; enable one");
    ooc::Engine& inner = sharded_ ? static_cast<ooc::Engine&>(*sharded_)
                                  : static_cast<ooc::Engine&>(engine_);
    tenancy_ =
        std::make_unique<serve::TenantEngine>(inner, cfg_.serve, now());
    tenancy_->set_clock([this] { return now(); });
    if (!sharded_) {
      // Quota-aware victim selection; the sharded engine takes no
      // advisor, its tenancy lever is priority dispatch alone.
      if (auto* adv = tenancy_->advisor()) engine_.set_advisor(adv);
    }
  }
  pes_.reserve(static_cast<std::size_t>(cfg_.num_pes));
  for (int pe = 0; pe < cfg_.num_pes; ++pe) {
    pes_.push_back(std::make_unique<PeWorker>());
  }
  const int n_io = io_thread_count(cfg_);
  io_.reserve(static_cast<std::size_t>(n_io));
  for (int i = 0; i < n_io; ++i) {
    io_.push_back(std::make_unique<IoWorker>());
  }
  pe_beats_ =
      std::vector<telemetry::Heartbeat>(static_cast<std::size_t>(cfg_.num_pes));
  io_beats_ =
      std::vector<telemetry::Heartbeat>(static_cast<std::size_t>(n_io));
  // Launch only after all structures exist.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (int pe = 0; pe < cfg_.num_pes; ++pe) {
    auto& th = pes_[static_cast<std::size_t>(pe)]->thread;
    th = std::thread([this, pe] { pe_loop(pe); });
    if (cfg_.pin_threads) pin_to_core(th, pe);
  }
  for (int i = 0; i < n_io; ++i) {
    auto& th = io_[static_cast<std::size_t>(i)]->thread;
    th = std::thread([this, i] { io_loop(i); });
    // The SMT sibling of worker i sits num_pes cores later in the
    // common Linux enumeration; fall back to sharing the core.
    if (cfg_.pin_threads) {
      const int sibling = i + cfg_.num_pes < hw ? i + cfg_.num_pes : i;
      pin_to_core(th, sibling);
    }
  }
  start_introspection();
}

Runtime::~Runtime() {
  stop_introspection();
  wait_idle();
  stop_.store(true);
  for (auto& w : pes_) {
    std::lock_guard lk(w->mu);
    w->cv.notify_all();
  }
  for (auto& w : io_) {
    std::lock_guard lk(w->mu);
    w->cv.notify_all();
  }
  for (auto& w : pes_) w->thread.join();
  for (auto& w : io_) w->thread.join();
}

double Runtime::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0_)
      .count();
}

mem::BlockId Runtime::alloc_block(std::uint64_t bytes) {
  // One small lock keeps the engine's and the MemoryManager's dense
  // sequential id spaces aligned under concurrent allocation.
  std::lock_guard alk(alloc_mu_);
  const mem::BlockId expected = blocks_created_++;
  hw::TierId tier;
  if (tenancy_) {
    // Serial inner engine still wants engine_mu_ held around every
    // visit (lock order: engine_mu_ -> TenantEngine's mutex).
    std::unique_lock<std::mutex> elk;
    if (!sharded_) elk = std::unique_lock(engine_mu_);
    tier = tenancy_->add_block(expected, bytes);
  } else if (sharded_) {
    tier = sharded_->add_block(expected, bytes);
  } else {
    std::lock_guard elk(engine_mu_);
    tier = engine_.add_block(expected, bytes);
  }
  const mem::BlockId b = mm_->register_block(bytes, tier);
  HMR_CHECK_MSG(b != mem::kInvalidBlock,
                "tier out of memory while allocating a block");
  HMR_CHECK_MSG(b == expected, "block id spaces diverged");
  return b;
}

void Runtime::free_block(mem::BlockId b) {
  {
    std::lock_guard alk(alloc_mu_);
    if (tenancy_) {
      std::unique_lock<std::mutex> elk;
      if (!sharded_) elk = std::unique_lock(engine_mu_);
      tenancy_->remove_block(b);
    } else if (sharded_) {
      sharded_->remove_block(b);
    } else {
      std::lock_guard elk(engine_mu_);
      engine_.remove_block(b);
    }
  }
  mm_->unregister_block(b);
}

void Runtime::send(int pe, Body body) {
  HMR_CHECK(pe >= 0 && pe < cfg_.num_pes);
  msgs_add(1);
  PeWorker& w = *pes_[static_cast<std::size_t>(pe)];
  std::lock_guard lk(w.mu);
  Msg m;
  m.body = std::move(body);
  m.prefetch = false;
  w.msgs.push_back(std::move(m));
  w.cv.notify_one();
}

void Runtime::send_prefetch(int pe, DepList deps, Body body,
                            double work_factor, std::uint32_t tenant) {
  HMR_CHECK(pe >= 0 && pe < cfg_.num_pes);
  msgs_add(1);
  PeWorker& w = *pes_[static_cast<std::size_t>(pe)];
  std::lock_guard lk(w.mu);
  Msg m;
  m.body = std::move(body);
  m.deps = std::move(deps);
  m.work_factor = work_factor;
  m.prefetch = true;
  m.tenant = tenant;
  w.msgs.push_back(std::move(m));
  w.cv.notify_one();
}

void Runtime::send_batch(int pe, std::vector<Body> bodies) {
  HMR_CHECK(pe >= 0 && pe < cfg_.num_pes);
  if (bodies.empty()) return;
  msgs_add(bodies.size());
  PeWorker& w = *pes_[static_cast<std::size_t>(pe)];
  std::lock_guard lk(w.mu);
  for (auto& body : bodies) {
    Msg m;
    m.body = std::move(body);
    m.prefetch = false;
    w.msgs.push_back(std::move(m));
  }
  w.cv.notify_one();
}

void Runtime::send_prefetch_batch(int pe, std::vector<PrefetchMsg> msgs) {
  HMR_CHECK(pe >= 0 && pe < cfg_.num_pes);
  if (msgs.empty()) return;
  msgs_add(msgs.size());
  PeWorker& w = *pes_[static_cast<std::size_t>(pe)];
  std::lock_guard lk(w.mu);
  for (auto& pm : msgs) {
    Msg m;
    m.body = std::move(pm.body);
    m.deps = std::move(pm.deps);
    m.work_factor = pm.work_factor;
    m.prefetch = true;
    m.tenant = pm.tenant;
    w.msgs.push_back(std::move(m));
  }
  w.cv.notify_one();
}

void Runtime::pe_loop(int pe) {
  PeWorker& w = *pes_[static_cast<std::size_t>(pe)];
  const auto depth = static_cast<std::size_t>(cfg_.io_batch);
  std::vector<ReadyTask> tasks;
  std::vector<Msg> msgs;
  telemetry::Heartbeat& hb = pe_beats_[static_cast<std::size_t>(pe)];
  for (;;) {
    // Liveness stamp for /status and the watchdog.  A parked thread
    // stops beating — that is the signal, not a bug: the watchdog only
    // reads heartbeats while work is outstanding.
    hb.beat(now_ns());
    tasks.clear();
    msgs.clear();
    {
      std::unique_lock lk(w.mu);
      w.cv.wait(lk, [&] {
        return stop_.load() || !w.run_q.empty() || !w.msgs.empty();
      });
      // Ready tasks (data resident) run before new messages are
      // intercepted, keeping the PE's pipeline full.  Draining a
      // batch amortizes the queue lock and, on the serial-engine
      // path, the engine lock over the whole batch.
      while (!w.run_q.empty() && tasks.size() < depth) {
        tasks.push_back(std::move(w.run_q.front()));
        w.run_q.pop_front();
      }
      if (metrics_ && !tasks.empty()) {
        mh_.run_q_depth->observe(tasks.size() + w.run_q.size());
      }
      if (tasks.empty()) {
        while (!w.msgs.empty() && msgs.size() < depth) {
          msgs.push_back(std::move(w.msgs.front()));
          w.msgs.pop_front();
        }
      }
      if (tasks.empty() && msgs.empty()) {
        return; // stop requested and nothing left to do
      }
    }
    if (!tasks.empty()) {
      run_ready_batch(pe, tasks);
    } else {
      intercept_batch(pe, msgs);
    }
  }
}

void Runtime::io_loop(int io) {
  IoWorker& w = *io_[static_cast<std::size_t>(io)];
  const int lane = cfg_.num_pes + io;
  const auto depth = static_cast<std::size_t>(cfg_.io_batch);
  std::vector<ooc::Command> batch;
  telemetry::Heartbeat& hb = io_beats_[static_cast<std::size_t>(io)];
  for (;;) {
    hb.beat(now_ns());
    batch.clear();
    {
      std::unique_lock lk(w.mu);
      for (;;) {
        if (!w.cmds.empty() || stop_.load()) break;
        if (mm_->copy_assist_pending()) {
          // Idle with a large chunked copy in flight somewhere: lend
          // this core to it instead of sleeping.
          lk.unlock();
          mm_->assist_copies();
          lk.lock();
          continue;
        }
        w.cv.wait(lk, [&] {
          return stop_.load() || !w.cmds.empty() ||
                 mm_->copy_assist_pending();
        });
      }
      if (w.cmds.empty()) return; // stop requested, queue drained
      while (!w.cmds.empty() && batch.size() < depth) {
        batch.push_back(w.cmds.front());
        w.cmds.pop_front();
      }
    }
    perform_transfer_batch(batch, lane);
  }
}

void Runtime::intercept_batch(int pe, std::vector<Msg>& msgs) {
  std::vector<ooc::TaskDesc> arrivals;
  arrivals.reserve(msgs.size());
  auto flush = [&] {
    if (arrivals.empty()) return;
    process(ev_arrivals(std::move(arrivals)), pe);
    arrivals.clear();
  };
  for (auto& msg : msgs) {
    if (!msg.prefetch) {
      // Plain entry method: the converse scheduler delivers it
      // directly.  Flush queued arrivals first to keep delivery order.
      flush();
      const double ts = now();
      msg.body();
      tracer_.record(pe, trace::Category::Compute, ts, now());
      note_done(1);
      continue;
    }
    // Pre-processing step of a [prefetch] entry method: wrap it as an
    // OOCTask and hand it to the policy engine.
    const ooc::TaskId id = next_task_.fetch_add(1);
    std::vector<mem::BlockId> writes;
    if (cfg_.zero_copy) {
      for (const auto& d : msg.deps) {
        if (d.mode != ooc::AccessMode::ReadOnly) writes.push_back(d.block);
      }
    }
    {
      ReadyTask rt;
      rt.id = id;
      rt.body = std::move(msg.body);
      rt.t_arrive = metrics_ ? now() : 0;
      rt.tenant = msg.tenant;
      rt.writes = std::move(writes);
      PendingShard& ps = pending_[static_cast<std::size_t>(pe)];
      std::lock_guard lk(ps.mu);
      ps.map.emplace(id, std::move(rt));
    }
    ooc::TaskDesc desc;
    desc.id = id;
    desc.pe = pe;
    desc.deps = std::move(msg.deps);
    desc.work_factor = msg.work_factor;
    desc.tenant = msg.tenant;
    arrivals.push_back(std::move(desc));
  }
  flush();
}

void Runtime::run_ready_batch(int pe, std::vector<ReadyTask>& tasks) {
  for (const auto& task : tasks) {
    const double ts = now();
    if (metrics_) {
      mh_.task_wait_ns->observe(
          static_cast<std::uint64_t>((ts - task.t_arrive) * 1e9));
    }
    task.body();
    // Zero-copy runs: written blocks' shadows are stale now.  Safe
    // here — the engine still holds this task's claims, so none of
    // these blocks can be mid-migration until the completion event
    // below releases them.
    for (const mem::BlockId b : task.writes) mm_->mark_dirty(b);
    const double te = now();
    tracer_.record(pe, trace::Category::Compute, ts, te, task.id);
    if (attrib_) {
      telemetry::TaskAttribution a;
      a.task = task.id;
      a.pe = pe;
      a.tenant = task.tenant;
      a.arrive = task.t_arrive;
      a.start = ts;
      a.end = te;
      const double window = std::max(0.0, ts - a.arrive);
      const double fetch =
          std::clamp(task.t_ready - a.arrive, 0.0, window);
      a.seconds[static_cast<int>(telemetry::Bucket::Compute)] = te - ts;
      a.seconds[static_cast<int>(telemetry::Bucket::FetchWait)] = fetch;
      a.seconds[static_cast<int>(telemetry::Bucket::QueueWait)] =
          window - fetch;
      attrib_->record(static_cast<std::size_t>(pe), a);
    }
  }
  tasks_done_[static_cast<std::size_t>(pe)].v.fetch_add(
      tasks.size(), std::memory_order_relaxed);
  // Post-processing step: release claims, trigger evictions — one
  // engine visit for the whole batch.
  process(ev_completions(tasks, pe), pe);
  note_done(tasks.size());
}

std::vector<ooc::Command> Runtime::ev_arrivals(
    std::vector<ooc::TaskDesc> descs) {
  if (tenancy_) {
    // Per-event visits through the decorator (admission may defer or
    // reorder, so batching buys nothing).  Serial inner engine keeps
    // engine_mu_ as the outer lock; the adaptive profiler is excluded
    // by construction.
    std::unique_lock<std::mutex> elk;
    if (!sharded_) {
      trace::lock_counted(engine_mu_, lock_stats_.get(), 0);
      elk = std::unique_lock(engine_mu_, std::adopt_lock);
    }
    std::vector<ooc::Command> cmds;
    for (auto& d : descs) {
      auto c = tenancy_->on_task_arrived(d);
      cmds.insert(cmds.end(), std::make_move_iterator(c.begin()),
                  std::make_move_iterator(c.end()));
    }
    return cmds;
  }
  if (sharded_) {
    std::vector<ooc::Command> cmds;
    for (auto& d : descs) {
      auto c = sharded_->on_task_arrived(d);
      cmds.insert(cmds.end(), std::make_move_iterator(c.begin()),
                  std::make_move_iterator(c.end()));
    }
    return cmds;
  }
  std::vector<ooc::PolicyEngine::Event> evs;
  evs.reserve(descs.size());
  for (auto& d : descs) {
    evs.push_back(ooc::PolicyEngine::Event::arrived(std::move(d)));
  }
  std::vector<ooc::Command> cmds;
  trace::lock_counted(engine_mu_, lock_stats_.get(), 0);
  std::lock_guard elk(engine_mu_, std::adopt_lock);
  if (profiler_) {
    for (const auto& e : evs) {
      profiler_->on_task_arrived(
          e.task, [this](mem::BlockId b) { return mm_->block_bytes(b); });
    }
  }
  cmds = engine_.step_batch(std::move(evs));
  observe_locked(cmds);
  return cmds;
}

std::vector<ooc::Command> Runtime::ev_completions(
    const std::vector<ReadyTask>& tasks, int pe) {
  if (tenancy_) {
    std::unique_lock<std::mutex> elk;
    if (!sharded_) {
      trace::lock_counted(engine_mu_, lock_stats_.get(), 0);
      elk = std::unique_lock(engine_mu_, std::adopt_lock);
    }
    std::vector<ooc::Command> cmds;
    for (const auto& t : tasks) {
      auto c = tenancy_->on_task_complete(t.id, pe);
      cmds.insert(cmds.end(), std::make_move_iterator(c.begin()),
                  std::make_move_iterator(c.end()));
    }
    return cmds;
  }
  if (sharded_) {
    std::vector<ooc::Command> cmds;
    for (const auto& t : tasks) {
      auto c = sharded_->on_task_complete(t.id, pe);
      cmds.insert(cmds.end(), std::make_move_iterator(c.begin()),
                  std::make_move_iterator(c.end()));
    }
    return cmds;
  }
  std::vector<ooc::PolicyEngine::Event> evs;
  evs.reserve(tasks.size());
  for (const auto& t : tasks) {
    evs.push_back(ooc::PolicyEngine::Event::completed(t.id));
  }
  std::vector<ooc::Command> cmds;
  trace::lock_counted(engine_mu_, lock_stats_.get(), 0);
  std::lock_guard elk(engine_mu_, std::adopt_lock);
  cmds = engine_.step_batch(std::move(evs));
  observe_locked(cmds);
  return cmds;
}

void Runtime::do_migrate(const ooc::Command& cmd, int trace_lane) {
  const bool fetch = cmd.kind == ooc::Command::Kind::Fetch;
  const double ts = now();
  // A write-only dependence's old contents are dead: skip the memcpy
  // (the paper's migration always copies; this is the optional
  // writeonly_nocopy extension).
  if (mm_->chunked_copy_enabled() && !cmd.nocopy &&
      mm_->block_bytes(cmd.block) >= mm_->chunk_threshold()) {
    poke_io_for_assist(); // idle IO threads join the chunked copy
  }
  const auto res = mm_->migrate(cmd.block, cmd.dst_tier,
                                /*copy_contents=*/!cmd.nocopy);
  HMR_CHECK_MSG(res.ok,
                "migration failed: tier fragmentation exceeded the policy "
                "engine's byte budget");
  const double te = now();
  // Interval.task == 0 means "not task-bound"; the engine uses
  // kInvalidTask for untriggered evictions.
  const ooc::TaskId cause = cmd.task == ooc::kInvalidTask ? 0 : cmd.task;
  // Traced traffic is *physical* bytes: nocopy skips the copy by
  // contract, zero-copy admissions skip it via a shadow swap.
  const std::uint64_t bytes =
      cmd.nocopy || res.zero_copy ? 0 : mm_->block_bytes(cmd.block);
  tracer_.record_migration(
      trace_lane, fetch ? trace::Category::Prefetch : trace::Category::Evict,
      ts, te, cause, cmd.src_tier, cmd.dst_tier, bytes);
  if (metrics_) {
    (fetch ? mh_.fetch_ns : mh_.evict_ns)
        ->observe(static_cast<std::uint64_t>((te - ts) * 1e9));
  }
  if (flight_) {
    flight_->record(cmd.block,
                    {te, cause, cmd.src_tier, cmd.dst_tier, bytes, fetch});
  }
  if (fetch) {
    fetch_last_ns_.store(now_ns(), std::memory_order_relaxed);
    fetch_completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Runtime::perform_transfer(const ooc::Command& cmd, int trace_lane) {
  do_migrate(cmd, trace_lane);
  std::vector<ooc::Command> cmds;
  const bool fetch = cmd.kind == ooc::Command::Kind::Fetch;
  if (tenancy_) {
    std::unique_lock<std::mutex> elk;
    if (!sharded_) {
      trace::lock_counted(engine_mu_, lock_stats_.get(), 0);
      elk = std::unique_lock(engine_mu_, std::adopt_lock);
    }
    cmds = fetch ? tenancy_->on_fetch_complete(cmd.block)
                 : tenancy_->on_evict_complete(cmd.block);
  } else if (sharded_) {
    cmds = fetch ? sharded_->on_fetch_complete(cmd.block)
                 : sharded_->on_evict_complete(cmd.block);
  } else {
    trace::lock_counted(engine_mu_, lock_stats_.get(), 0);
    std::lock_guard elk(engine_mu_, std::adopt_lock);
    cmds = fetch ? engine_.on_fetch_complete(cmd.block)
                 : engine_.on_evict_complete(cmd.block);
    observe_locked(cmds);
  }
  process(std::move(cmds), trace_lane);
  ops_sub(1);
}

void Runtime::perform_transfer_batch(const std::vector<ooc::Command>& cmds,
                                     int trace_lane) {
  if (cmds.size() == 1) {
    perform_transfer(cmds.front(), trace_lane);
    return;
  }
  for (const auto& cmd : cmds) do_migrate(cmd, trace_lane);
  std::vector<ooc::Command> out;
  if (tenancy_) {
    std::unique_lock<std::mutex> elk;
    if (!sharded_) {
      trace::lock_counted(engine_mu_, lock_stats_.get(), 0);
      elk = std::unique_lock(engine_mu_, std::adopt_lock);
    }
    for (const auto& cmd : cmds) {
      auto c = cmd.kind == ooc::Command::Kind::Fetch
                   ? tenancy_->on_fetch_complete(cmd.block)
                   : tenancy_->on_evict_complete(cmd.block);
      out.insert(out.end(), std::make_move_iterator(c.begin()),
                 std::make_move_iterator(c.end()));
    }
  } else if (sharded_) {
    for (const auto& cmd : cmds) {
      auto c = cmd.kind == ooc::Command::Kind::Fetch
                   ? sharded_->on_fetch_complete(cmd.block)
                   : sharded_->on_evict_complete(cmd.block);
      out.insert(out.end(), std::make_move_iterator(c.begin()),
                 std::make_move_iterator(c.end()));
    }
  } else {
    std::vector<ooc::PolicyEngine::Event> evs;
    evs.reserve(cmds.size());
    for (const auto& cmd : cmds) {
      evs.push_back(cmd.kind == ooc::Command::Kind::Fetch
                        ? ooc::PolicyEngine::Event::fetched(cmd.block)
                        : ooc::PolicyEngine::Event::evicted(cmd.block));
    }
    trace::lock_counted(engine_mu_, lock_stats_.get(), 0);
    std::lock_guard elk(engine_mu_, std::adopt_lock);
    out = engine_.step_batch(std::move(evs));
    observe_locked(out);
  }
  process(std::move(out), trace_lane);
  ops_sub(cmds.size());
}

void Runtime::process(std::vector<ooc::Command> cmds, int context_lane) {
  for (auto& c : cmds) {
    switch (c.kind) {
      case ooc::Command::Kind::Run: {
        ReadyTask task;
        {
          PendingShard& ps = pending_[static_cast<std::size_t>(c.pe)];
          std::lock_guard lk(ps.mu);
          auto it = ps.map.find(c.task);
          HMR_CHECK_MSG(it != ps.map.end(), "run of unknown task");
          task = std::move(it->second);
          ps.map.erase(it);
        }
        // Deps are resident from here; start - t_ready is pure run
        // queue wait, t_ready - t_arrive is the fetch wait.
        if (attrib_) task.t_ready = now();
        PeWorker& w = *pes_[static_cast<std::size_t>(c.pe)];
        std::lock_guard lk(w.mu);
        w.run_q.push_back(std::move(task));
        w.cv.notify_one();
        break;
      }
      case ooc::Command::Kind::Fetch:
      case ooc::Command::Kind::Evict: {
        ops_add(1);
        if (c.kind == ooc::Command::Kind::Fetch) {
          fetch_last_ns_.store(now_ns(), std::memory_order_relaxed);
          fetch_dispatched_.fetch_add(1, std::memory_order_relaxed);
        }
        if (c.agent == ooc::kWorkerInline) {
          // Synchronous pre/post-processing on the current thread.
          perform_transfer(c, context_lane);
        } else {
          HMR_CHECK(!io_.empty());
          IoWorker& w =
              *io_[static_cast<std::size_t>(c.agent) % io_.size()];
          std::lock_guard lk(w.mu);
          if (tenancy_ && tenancy_->priority_dispatch()) {
            // QoS preemption of not-yet-started transfers: slot ahead
            // of every queued command with a worse dispatch rank.
            const int rank = tenancy_->dispatch_rank(c);
            auto pos = w.cmds.end();
            for (auto it = w.cmds.begin(); it != w.cmds.end(); ++it) {
              if (tenancy_->dispatch_rank(*it) > rank) {
                pos = it;
                break;
              }
            }
            if (pos != w.cmds.end() &&
                c.kind == ooc::Command::Kind::Fetch) {
              const auto winner = tenancy_->command_tenant(c);
              for (auto it = pos; it != w.cmds.end(); ++it) {
                if (it->kind == ooc::Command::Kind::Fetch) {
                  tenancy_->note_displacement(winner,
                                              tenancy_->command_tenant(*it));
                }
              }
            }
            w.cmds.insert(pos, c);
          } else {
            w.cmds.push_back(c);
          }
          w.cv.notify_one();
        }
        break;
      }
    }
  }
}

void Runtime::observe_locked(const std::vector<ooc::Command>& cmds) {
  if (!governor_) return;
  for (const auto& c : cmds) {
    if (c.kind == ooc::Command::Kind::Fetch) {
      profiler_->on_fetch(c.block, mm_->block_bytes(c.block));
    }
  }
  peak_inflight_ = std::max(peak_inflight_, engine_.inflight_fetches());
  if (engine_.total_waiting() > 0) phase_contended_ = true;
}

void Runtime::governor_phase_end() {
  const double t_now = now();
  std::vector<ooc::Command> cmds;
  {
    std::lock_guard elk(engine_mu_);
    adapt::PhaseObservation obs;
    obs.phase_seconds = t_now - phase_start_;
    const ooc::PolicyEngine::Stats& st = engine_.stats();
    obs.tasks = st.tasks_run - phase_base_.tasks_run;
    obs.fetches = st.fetches - phase_base_.fetches;
    obs.fetch_bytes = st.fetch_bytes - phase_base_.fetch_bytes;
    obs.evict_bytes = st.evict_bytes - phase_base_.evict_bytes;
    obs.fetch_dedup_hits =
        st.fetch_dedup_hits - phase_base_.fetch_dedup_hits;
    obs.lru_reclaims = st.lru_reclaims - phase_base_.lru_reclaims;
    obs.peak_inflight_fetches = peak_inflight_;
    obs.admission_contended = phase_contended_;
    obs.unique_bytes = profiler_->end_phase().unique_bytes;
    if (tracer_.enabled() && obs.phase_seconds > 0) {
      const double compute =
          tracer_.summarize(cfg_.num_pes, phase_start_, t_now)
              .total_of(trace::Category::Compute);
      obs.wait_fraction = std::clamp(
          1.0 - compute / (obs.phase_seconds * cfg_.num_pes), 0.0, 1.0);
    }
    phase_base_ = st;
    peak_inflight_ = 0;
    phase_contended_ = false;

    const adapt::Decision d = governor_->on_phase_end(obs);
    advisor_->set_streaming_bypass(d.bypass_streaming);
    engine_.set_fair_admission(d.fair_admission);
    engine_.set_strategy(d.strategy);
    auto flush = engine_.set_eager_evict(d.eager_evict);
    cmds.insert(cmds.end(), flush.begin(), flush.end());
    auto trim = engine_.set_lru_watermark(d.lru_watermark);
    cmds.insert(cmds.end(), trim.begin(), trim.end());
  }
  phase_start_ = t_now;
  if (cmds.empty()) return;
  // Any LRU-flush evictions count as outstanding ops; push them and
  // wait for the node to settle again before the next phase starts.
  process(std::move(cmds), /*context_lane=*/0);
  std::unique_lock lk(idle_mu_);
  idle_cv_.wait(lk, [&] {
    if (outstanding_msgs_.load(std::memory_order_acquire) != 0 ||
        outstanding_ops_.load(std::memory_order_acquire) != 0) {
      return false;
    }
    return engine_quiescent();
  });
}

void Runtime::msgs_add(std::uint64_t n) {
  if (cfg_.legacy_idle_notify) {
    // Pre-sharding protocol: the counter was a plain int guarded by
    // the global idle lock, so every send serialized on it.
    std::lock_guard lk(idle_mu_);
    outstanding_msgs_.fetch_add(n, std::memory_order_acq_rel);
    return;
  }
  outstanding_msgs_.fetch_add(n, std::memory_order_acq_rel);
}

void Runtime::note_done(std::uint64_t n) {
  if (n == 0) return;
  retired_.fetch_add(n, std::memory_order_relaxed);
  if (cfg_.legacy_idle_notify) {
    // Pre-sharding protocol: lock + notify_all on every retirement,
    // waking the idle waiter (usually the main thread) each time.
    {
      std::lock_guard lk(idle_mu_);
      outstanding_msgs_.fetch_sub(n, std::memory_order_acq_rel);
    }
    idle_cv_.notify_all();
    return;
  }
  // Wake idle waiters only on the transition to zero: the hot path
  // never touches idle_mu_.  Taking the mutex before notifying closes
  // the race with a waiter that just evaluated its predicate.
  if (outstanding_msgs_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    std::lock_guard lk(idle_mu_);
    idle_cv_.notify_all();
  }
}

void Runtime::ops_add(std::uint64_t n) {
  outstanding_ops_.fetch_add(n, std::memory_order_acq_rel);
}

void Runtime::ops_sub(std::uint64_t n) {
  retired_.fetch_add(n, std::memory_order_relaxed);
  if (cfg_.legacy_idle_notify) {
    {
      std::lock_guard lk(idle_mu_);
      outstanding_ops_.fetch_sub(n, std::memory_order_acq_rel);
    }
    idle_cv_.notify_all();
    return;
  }
  if (outstanding_ops_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    std::lock_guard lk(idle_mu_);
    idle_cv_.notify_all();
  }
}

bool Runtime::engine_quiescent() {
  if (tenancy_) {
    // Deferred submissions parked in the decorator count as pending
    // work; its quiescent() folds them in with the inner engine's.
    std::unique_lock<std::mutex> elk;
    if (!sharded_) elk = std::unique_lock(engine_mu_);
    return tenancy_->quiescent();
  }
  if (sharded_) return sharded_->quiescent();
  std::lock_guard elk(engine_mu_);
  return engine_.quiescent();
}

void Runtime::poke_io_for_assist() {
  for (auto& w : io_) {
    std::lock_guard lk(w->mu);
    w->cv.notify_all();
  }
}

void Runtime::wait_idle() {
  {
    std::unique_lock lk(idle_mu_);
    idle_cv_.wait(lk, [&] {
      if (outstanding_msgs_.load(std::memory_order_acquire) != 0 ||
          outstanding_ops_.load(std::memory_order_acquire) != 0) {
        return false;
      }
      return engine_quiescent();
    });
  }
  // Each wait_idle barrier is a phase boundary for the governor.
  if (governor_) governor_phase_end();
  sample_metrics();
  // ...and a history tick: the bridged counters were just refreshed,
  // so the snapshot that lands in the ring is coherent.
  if (history_) history_->sample();
  // Quiescence is the one point where every ledger must reconcile
  // exactly — audit here, and refresh the crash bundle while the
  // state is consistent.
  if (telemetry::audit_enabled(cfg_.audit)) run_wait_idle_audit();
  if (crash_installed_) publish_crash_bundle();
}

void Runtime::sample_metrics() {
  if (!metrics_) return;
  telemetry::export_policy_stats(*metrics_, policy_stats());
  if (attrib_) attrib_->export_metrics(*metrics_);
  if (sharded_) {
    for (std::int32_t s = 0; s < sharded_->num_shards(); ++s) {
      telemetry::export_policy_stats(
          *metrics_, sharded_->shard_stats(s),
          telemetry::prom_label("shard", std::to_string(s)));
    }
  }
  if (tenancy_) tenancy_->export_metrics(*metrics_);
  if (lock_stats_) telemetry::export_contention(*metrics_, *lock_stats_);
  if (mm_->chunked_copy_enabled()) {
    telemetry::export_chunk_ring(*metrics_, mm_->chunk_ring());
    // Mirror the cumulative fallback count onto the tracer so trace
    // summaries / CSV dumps carry it next to the timing data.
    tracer_.note_copy_fallbacks(mm_->chunk_ring().ring_fallbacks());
  }
  telemetry::export_data_movement(*metrics_, *mm_);
  metrics_
      ->counter("hmr_trace_events_dropped_total", "",
                "Trace intervals lost to ring overflow")
      .set(tracer_.dropped());
  const auto tier_gauges = [&](std::int32_t level, std::uint64_t used,
                               std::uint64_t cap) {
    const std::string labels =
        telemetry::prom_label("level", std::to_string(level));
    metrics_
        ->gauge("hmr_tier_used_bytes", labels,
                "Bytes claimed on the hierarchy level")
        .set(static_cast<double>(used));
    metrics_
        ->gauge("hmr_tier_capacity_bytes", labels,
                "Level budget (0 = unbounded bottom)")
        .set(static_cast<double>(cap));
  };
  if (sharded_) {
    const auto& tiers = sharded_->tiers();
    for (std::int32_t k = 0; k < sharded_->num_levels(); ++k) {
      tier_gauges(k, sharded_->tier_used(k),
                  tiers[static_cast<std::size_t>(k)].capacity);
    }
  } else {
    std::lock_guard elk(engine_mu_);
    const auto& tiers = engine_.tiers();
    for (std::int32_t k = 0; k < engine_.num_levels(); ++k) {
      tier_gauges(k, engine_.tier_used(k),
                  tiers[static_cast<std::size_t>(k)].capacity);
    }
  }
}

ooc::PolicyEngine::Stats Runtime::policy_stats() {
  if (sharded_) return sharded_->stats();
  std::lock_guard elk(engine_mu_);
  return engine_.stats();
}

std::uint64_t Runtime::tasks_executed() const {
  std::uint64_t n = 0;
  for (const auto& c : tasks_done_) {
    n += c.v.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Runtime::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

double Runtime::fetch_p99_seconds() const {
  if (!metrics_) return 0;
  const telemetry::Histogram& h = *mh_.fetch_ns;
  const std::uint64_t n = h.count();
  if (n == 0) return 0;
  const std::uint64_t rank = n - n / 100; // the p99 sample, 1-based
  std::uint64_t cum = 0;
  for (int i = 0; i < telemetry::Histogram::kBuckets; ++i) {
    cum += h.bucket_count(i);
    if (cum >= rank) {
      return static_cast<double>(telemetry::Histogram::bucket_upper(i)) *
             1e-9;
    }
  }
  return 0;
}

telemetry::AuditReport Runtime::audit_now() {
  telemetry::AuditReport r;
  r.time = now();
  if (tenancy_) {
    // Tenancy audit = inner audit + quota-ledger conservation +
    // admitted/completed bookkeeping, under the same quiescence rules
    // as the wrapped engine.
    std::unique_lock<std::mutex> elk;
    if (!sharded_) elk = std::unique_lock(engine_mu_);
    if (sharded_ && !tenancy_->quiescent()) return r;
    r.at_quiescence = tenancy_->quiescent();
    r.violations = tenancy_->audit_invariants(r.at_quiescence);
    return r;
  }
  if (sharded_) {
    // The sharded ledgers only reconcile exactly at quiescence
    // (budget releases commit outside the stripe critical sections),
    // so off-quiescence calls report nothing rather than guess.
    if (!sharded_->quiescent()) return r;
    r.at_quiescence = true;
    r.violations = sharded_->audit_invariants(true);
  } else {
    std::lock_guard elk(engine_mu_);
    r.at_quiescence = engine_.quiescent();
    r.violations = engine_.audit_invariants(r.at_quiescence);
  }
  return r;
}

std::uint64_t Runtime::audit_runs() const {
  std::lock_guard lk(audit_mu_);
  return audit_runs_;
}

void Runtime::run_wait_idle_audit() {
  telemetry::AuditReport r = audit_now();
  {
    std::lock_guard lk(audit_mu_);
    last_audit_ = r;
    ++audit_runs_;
  }
  telemetry::check_audit(r); // aborts on violations
}

std::string Runtime::status_json() {
  std::ostringstream os;
  const auto num = [&os](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    os << buf;
  };
  const std::uint64_t t = now_ns();
  os << "{\"time_s\":";
  num(static_cast<double>(t) * 1e-9);
  os << ",\"strategy\":\"" << ooc::strategy_name(cfg_.strategy) << "\""
     << ",\"sharded\":" << (sharded_ ? "true" : "false")
     << ",\"engine_shards\":" << engine_shards()
     << ",\"num_pes\":" << cfg_.num_pes
     << ",\"num_io_threads\":" << io_.size() << ",\"outstanding_msgs\":"
     << outstanding_msgs_.load(std::memory_order_acquire)
     << ",\"outstanding_ops\":"
     << outstanding_ops_.load(std::memory_order_acquire)
     << ",\"tasks_executed\":" << tasks_executed()
     << ",\"retired\":" << retired_.load(std::memory_order_relaxed);

  const auto beat_json = [&](const telemetry::Heartbeat& hb) {
    const std::uint64_t beats = hb.beats.load(std::memory_order_relaxed);
    const std::uint64_t last = hb.last_ns.load(std::memory_order_relaxed);
    os << "\"beats\":" << beats << ",\"beat_age_s\":";
    if (beats == 0) {
      os << "-1"; // never woke up (or just launched)
    } else {
      num(t > last ? static_cast<double>(t - last) * 1e-9 : 0.0);
    }
  };
  os << ",\"pes\":[";
  for (std::size_t pe = 0; pe < pes_.size(); ++pe) {
    if (pe) os << ",";
    std::size_t msgs = 0, run_q = 0;
    {
      std::lock_guard lk(pes_[pe]->mu);
      msgs = pes_[pe]->msgs.size();
      run_q = pes_[pe]->run_q.size();
    }
    os << "{\"msgs\":" << msgs << ",\"run_q\":" << run_q << ",";
    beat_json(pe_beats_[pe]);
    os << "}";
  }
  os << "],\"io_threads\":[";
  for (std::size_t i = 0; i < io_.size(); ++i) {
    if (i) os << ",";
    std::size_t cmds = 0;
    {
      std::lock_guard lk(io_[i]->mu);
      cmds = io_[i]->cmds.size();
    }
    os << "{\"cmds\":" << cmds << ",";
    beat_json(io_beats_[i]);
    os << "}";
  }
  os << "],\"tiers\":[";
  const auto tier_json = [&](std::int32_t level, std::uint64_t used,
                             std::uint64_t cap) {
    if (level) os << ",";
    os << "{\"level\":" << level << ",\"used_bytes\":" << used
       << ",\"capacity_bytes\":" << cap << "}";
  };
  if (sharded_) {
    const auto& tiers = sharded_->tiers();
    for (std::int32_t k = 0; k < sharded_->num_levels(); ++k) {
      tier_json(k, sharded_->tier_used(k),
                tiers[static_cast<std::size_t>(k)].capacity);
    }
  } else {
    std::lock_guard elk(engine_mu_);
    const auto& tiers = engine_.tiers();
    for (std::int32_t k = 0; k < engine_.num_levels(); ++k) {
      tier_json(k, engine_.tier_used(k),
                tiers[static_cast<std::size_t>(k)].capacity);
    }
  }
  os << "]";

  // Top-N hottest tracked blocks (adaptive runs; [] otherwise) — the
  // hmr_top dashboard's hot-block panel.
  os << ",\"hot_blocks\":[";
  if (profiler_) {
    std::lock_guard elk(engine_mu_);
    std::vector<adapt::BlockProfile> profs = profiler_->profiles();
    std::sort(profs.begin(), profs.end(),
              [](const adapt::BlockProfile& a, const adapt::BlockProfile& b) {
                return a.expected_accesses_per_phase() >
                       b.expected_accesses_per_phase();
              });
    const std::size_t n = std::min<std::size_t>(profs.size(), 8);
    for (std::size_t i = 0; i < n; ++i) {
      const adapt::BlockProfile& p = profs[i];
      if (i) os << ",";
      os << "{\"block\":" << p.block << ",\"bytes\":" << p.bytes
         << ",\"hotness\":";
      num(p.expected_accesses_per_phase());
      os << ",\"readonly_frac\":";
      num(p.readonly_fraction());
      os << ",\"reuse_distance\":";
      num(p.reuse_distance);
      os << "}";
    }
  }
  os << "]";

  os << ",\"governor\":";
  if (governor_) {
    // The governor only mutates under engine_mu_ (phase boundaries).
    std::lock_guard elk(engine_mu_);
    const adapt::Decision& d = governor_->current();
    os << "{\"strategy\":\"" << ooc::strategy_name(d.strategy) << "\""
       << ",\"eager_evict\":" << (d.eager_evict ? "true" : "false")
       << ",\"fair_admission\":" << (d.fair_admission ? "true" : "false")
       << ",\"lru_watermark\":";
    num(d.lru_watermark);
    os << ",\"bypass_streaming\":"
       << (d.bypass_streaming ? "true" : "false")
       << ",\"switches\":" << governor_->switches()
       << ",\"phases\":" << governor_->phases_observed() << "}";
  } else {
    os << "null";
  }

  os << ",\"watchdog\":";
  if (watchdog_) {
    os << "{\"trips\":" << watchdog_->trips()
       << ",\"stalled\":" << (watchdog_->stalled() ? "true" : "false")
       << ",\"last_reason\":\"";
    telemetry::json_escape(os, watchdog_->last_reason());
    os << "\"}";
  } else {
    os << "null";
  }

  {
    std::lock_guard lk(audit_mu_);
    os << ",\"audit_runs\":" << audit_runs_ << ",\"audit\":";
    if (audit_runs_ == 0) {
      os << "null";
    } else {
      telemetry::write_audit_json(os, last_audit_);
    }
  }
  os << "}";
  return os.str();
}

void Runtime::write_diagnostics(std::ostream& os) {
  os << "==== status ====\n" << status_json() << "\n";
  if (metrics_) {
    sample_metrics();
    os << "==== metrics ====\n";
    telemetry::MetricsRegistry::write_prometheus(os, metrics_->snapshot());
  }
  if (flight_) {
    os << "==== flight recorder ====\n";
    flight_->dump(os);
  }
  os << "==== trace ====\n";
  if (tracer_.enabled()) {
    const trace::TraceSummary s = tracer_.summarize(cfg_.num_pes);
    os << "span_s=" << s.span
       << " compute_s=" << s.total_of(trace::Category::Compute)
       << " prefetch_s=" << s.total_of(trace::Category::Prefetch)
       << " evict_s=" << s.total_of(trace::Category::Evict)
       << " dropped=" << s.dropped << "\n";
  } else {
    os << "(tracing off)\n";
  }
}

void Runtime::publish_crash_bundle() {
  std::ostringstream os;
  write_diagnostics(os);
  telemetry::CrashDumper::instance().publish(os.str());
}

void Runtime::start_introspection() {
  if (cfg_.crash_dump) {
    telemetry::CrashDumper::instance().install(cfg_.crash_dump_path);
    crash_installed_ = true;
    publish_crash_bundle(); // something to dump even before first idle
  }
  if (cfg_.watchdog) {
    telemetry::Watchdog::Hooks h;
    h.under_load = [this] {
      return outstanding_msgs_.load(std::memory_order_acquire) != 0 ||
             outstanding_ops_.load(std::memory_order_acquire) != 0;
    };
    h.progress = [this] {
      // Retirements plus engine events: admissions count as progress
      // even while no task has finished yet.
      std::uint64_t p = retired_.load(std::memory_order_relaxed);
      if (sharded_) p += sharded_->events_processed();
      return p;
    };
    h.fetch_age = [this]() -> double {
      const auto done = fetch_completed_.load(std::memory_order_relaxed);
      const auto sent = fetch_dispatched_.load(std::memory_order_relaxed);
      if (done >= sent) return -1; // nothing in flight
      const auto last = fetch_last_ns_.load(std::memory_order_relaxed);
      const std::uint64_t t = now_ns();
      return t > last ? static_cast<double>(t - last) * 1e-9 : 0.0;
    };
    h.fetch_p99 = [this] { return fetch_p99_seconds(); };
    h.trace_drops = [this] { return tracer_.dropped(); };
    h.remote_fetches = [this] {
      // hmr_remote_fetches_total's source counter (engine stats); the
      // monitor tick cadence makes the engine-lock grab negligible.
      return policy_stats().remote_fetches;
    };
    h.dump = [this](std::ostream& os) { write_diagnostics(os); };
    h.tick = [this] {
      if (crash_installed_) publish_crash_bundle();
    };
    watchdog_ = std::make_unique<telemetry::Watchdog>(cfg_.watchdog_cfg,
                                                      std::move(h));
    watchdog_->start();
  }
  if (cfg_.serve_port >= 0) {
    using Request = telemetry::StatusServer::Request;
    using Response = telemetry::StatusServer::Response;
    auto srv = std::make_unique<telemetry::StatusServer>();
    srv->route("/healthz", [this](const Request&) {
      Response r;
      if (watchdog_ && watchdog_->stalled()) {
        r.status = 503;
        r.body = "stalled: " + watchdog_->last_reason() + "\n";
      } else {
        r.body = "ok\n";
      }
      return r;
    });
    srv->route("/metrics", [this](const Request&) {
      sample_metrics();
      Response r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      std::ostringstream body;
      telemetry::MetricsRegistry::write_prometheus(body,
                                                   metrics_->snapshot());
      r.body = body.str();
      return r;
    });
    srv->route("/status", [this](const Request&) {
      Response r;
      r.content_type = "application/json";
      r.body = status_json();
      return r;
    });
    srv->route("/tenants", [this](const Request&) {
      Response r;
      if (!tenancy_) {
        r.status = 404;
        r.body = "multi-tenant serving disabled (Config::serve empty)\n";
        return r;
      }
      r.content_type = "application/json";
      std::ostringstream body;
      tenancy_->write_json(body);
      r.body = body.str();
      return r;
    });
    srv->route("/cluster", [this](const Request&) {
      Response r;
      if (!cfg_.cluster_json) {
        r.status = 404;
        r.body = "no cluster attached (Config::cluster_json unset)\n";
        return r;
      }
      r.content_type = "application/json";
      r.body = cfg_.cluster_json();
      return r;
    });
    srv->route("/cluster/metrics", [this](const Request&) {
      Response r;
      if (!cfg_.cluster_metrics_json) {
        r.status = 404;
        r.body = "no federated metrics attached "
                 "(Config::cluster_metrics_json unset)\n";
        return r;
      }
      r.content_type = "application/json";
      r.body = cfg_.cluster_metrics_json();
      return r;
    });
    srv->route("/cluster/attrib", [this](const Request&) {
      Response r;
      if (!cfg_.cluster_attrib_json) {
        r.status = 404;
        r.body = "no federated attribution attached "
                 "(Config::cluster_attrib_json unset)\n";
        return r;
      }
      r.content_type = "application/json";
      r.body = cfg_.cluster_attrib_json();
      return r;
    });
    srv->route("/attrib", [this](const Request&) {
      Response r;
      r.content_type = "application/json";
      std::ostringstream body;
      attrib_->write_json(body); // serve_port forces metrics on
      r.body = body.str();
      return r;
    });
    srv->route("/blocks", [this](const Request& rq) {
      Response r;
      if (!flight_) {
        r.status = 404;
        r.body = "flight recorder disabled (Config::flight_depth=0)\n";
        return r;
      }
      const auto it = rq.query.find("id");
      if (it == rq.query.end()) {
        r.status = 400;
        r.body = "usage: /blocks?id=<block id>\n";
        return r;
      }
      char* end = nullptr;
      const unsigned long long id =
          std::strtoull(it->second.c_str(), &end, 10);
      if (end == it->second.c_str() || *end != '\0') {
        r.status = 400;
        r.body = "bad block id: " + it->second + "\n";
        return r;
      }
      const auto hist = flight_->history(static_cast<mem::BlockId>(id));
      std::ostringstream body;
      body << "{\"block\":" << id << ",\"transitions\":[";
      for (std::size_t i = 0; i < hist.size(); ++i) {
        if (i) body << ",";
        char tbuf[32];
        std::snprintf(tbuf, sizeof tbuf, "%.6f", hist[i].time);
        body << "{\"time_s\":" << tbuf << ",\"task\":" << hist[i].task
             << ",\"src_tier\":" << hist[i].src_tier
             << ",\"dst_tier\":" << hist[i].dst_tier
             << ",\"bytes\":" << hist[i].bytes
             << ",\"fetch\":" << (hist[i].fetch ? "true" : "false")
             << "}";
      }
      body << "]}";
      r.content_type = "application/json";
      r.body = body.str();
      return r;
    });
    srv->route("/history", [this](const Request& rq) {
      Response r;
      if (!history_) {
        r.status = 404;
        r.body = "history disabled (Config::history_depth=0)\n";
        return r;
      }
      std::string metric;
      double window = 0;
      if (const auto it = rq.query.find("metric"); it != rq.query.end()) {
        metric = it->second;
      }
      if (const auto it = rq.query.find("window"); it != rq.query.end()) {
        char* end = nullptr;
        window = std::strtod(it->second.c_str(), &end);
        // !isfinite catches "nan"/"inf", which strtod accepts.
        if (end == it->second.c_str() || *end != '\0' ||
            !std::isfinite(window) || window < 0) {
          r.status = 400;
          r.body = "bad window (seconds): " + it->second +
                   "\nusage: /history?metric=<name>&window=<finite "
                   "seconds >= 0>\n";
          return r;
        }
      }
      r.content_type = "application/json";
      std::ostringstream body;
      history_->write_json(body, metric, window);
      r.body = body.str();
      return r;
    });
    srv->route("/decisions", [this](const Request& rq) {
      Response r;
      if (!decisions_) {
        r.status = 404;
        r.body = "no decision log (Config::adaptive off or "
                 "decision_log_depth=0)\n";
        return r;
      }
      std::vector<telemetry::DecisionLog::Record> recs;
      if (const auto it = rq.query.find("block"); it != rq.query.end()) {
        char* end = nullptr;
        const unsigned long long id =
            std::strtoull(it->second.c_str(), &end, 10);
        if (end == it->second.c_str() || *end != '\0') {
          r.status = 400;
          r.body = "bad block id: " + it->second + "\n";
          return r;
        }
        recs = decisions_->snapshot_block(static_cast<mem::BlockId>(id));
      } else {
        recs = decisions_->snapshot();
      }
      std::ostringstream body;
      if (const auto it = rq.query.find("format");
          it != rq.query.end() && it->second == "csv") {
        telemetry::DecisionLog::write_csv(body, recs);
        r.content_type = "text/csv; charset=utf-8";
      } else {
        telemetry::DecisionLog::write_json(body, recs,
                                           decisions_->total_recorded(),
                                           decisions_->overwritten());
        r.content_type = "application/json";
      }
      r.body = body.str();
      return r;
    });
    std::string err;
    if (!srv->start(static_cast<std::uint16_t>(cfg_.serve_port), &err)) {
      // Diagnostics must never kill the job: warn and run without.
      std::fprintf(stderr, "hmr: status server disabled: %s\n",
                   err.c_str());
    } else {
      server_ = std::move(srv);
    }
  }
}

void Runtime::stop_introspection() {
  if (server_) server_->stop();
  if (watchdog_) watchdog_->stop();
  if (crash_installed_) {
    telemetry::CrashDumper::instance().uninstall();
    crash_installed_ = false;
  }
}

} // namespace hmr::rt
