#include "rt/runtime.hpp"

#include <algorithm>
#include <chrono>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.hpp"

namespace hmr::rt {

namespace {

ooc::PolicyEngine::Config engine_config(const Runtime::Config& cfg,
                                        std::uint64_t fast_capacity) {
  ooc::PolicyEngine::Config ec;
  ec.strategy = cfg.strategy;
  ec.num_pes = cfg.num_pes;
  ec.fast_capacity = fast_capacity;
  ec.eager_evict = cfg.eager_evict;
  ec.evict_by_worker = cfg.evict_by_worker;
  ec.writeonly_nocopy = cfg.writeonly_nocopy;
  return ec;
}

int io_thread_count(const Runtime::Config& cfg) {
  // Adaptive runs may switch to MultiIo mid-run: give them the full
  // complement (commands route via agent % io_.size()).
  if (cfg.adaptive) return cfg.num_pes;
  switch (cfg.strategy) {
    case ooc::Strategy::SingleIo:
      return 1;
    case ooc::Strategy::MultiIo:
      return cfg.num_pes;
    default:
      return 0;
  }
}

/// Best-effort CPU pinning; silently ignored off-Linux or when the
/// machine has fewer cores than threads.
void pin_to_core(std::thread& t, int core) {
#ifdef __linux__
  const int n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0 || core >= n) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)core;
#endif
}

} // namespace

Runtime::Runtime(Config cfg)
    : cfg_(std::move(cfg)),
      fast_tier_(cfg_.model.fast),
      slow_tier_(cfg_.model.slow),
      mm_(std::make_unique<mem::MemoryManager>(
          mem::MemoryManager::specs_from_model(cfg_.model, cfg_.mem_scale),
          cfg_.memory_pool)),
      engine_(engine_config(cfg_, mm_->usage(cfg_.model.fast).capacity)),
      tracer_(cfg_.trace),
      t0_(std::chrono::steady_clock::now()) {
  HMR_CHECK(cfg_.num_pes > 0);
  if (cfg_.adaptive) {
    HMR_CHECK_MSG(ooc::strategy_moves_data(cfg_.strategy),
                  "adaptive guidance requires a movement strategy");
    profiler_ = std::make_unique<adapt::BlockProfiler>(cfg_.profiler_cfg);
    adapt::AdvisorConfig ac = adapt::AdvisorConfig::from_model(cfg_.model);
    advisor_ = std::make_unique<adapt::PlacementAdvisor>(*profiler_, ac);
    adapt::GovernorConfig gc = cfg_.governor_cfg;
    gc.initial_strategy = cfg_.strategy;
    gc.initial_eager_evict = cfg_.eager_evict;
    gc.num_pes = cfg_.num_pes;
    gc.channel_bytes_per_second =
        cfg_.model.channel_capacity(cfg_.model.slow, cfg_.model.fast);
    governor_ = std::make_unique<adapt::StrategyGovernor>(gc);
    engine_.set_advisor(advisor_.get()); // before any thread starts
  }
  pes_.reserve(static_cast<std::size_t>(cfg_.num_pes));
  for (int pe = 0; pe < cfg_.num_pes; ++pe) {
    pes_.push_back(std::make_unique<PeWorker>());
  }
  const int n_io = io_thread_count(cfg_);
  io_.reserve(static_cast<std::size_t>(n_io));
  for (int i = 0; i < n_io; ++i) {
    io_.push_back(std::make_unique<IoWorker>());
  }
  // Launch only after all structures exist.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (int pe = 0; pe < cfg_.num_pes; ++pe) {
    auto& th = pes_[static_cast<std::size_t>(pe)]->thread;
    th = std::thread([this, pe] { pe_loop(pe); });
    if (cfg_.pin_threads) pin_to_core(th, pe);
  }
  for (int i = 0; i < n_io; ++i) {
    auto& th = io_[static_cast<std::size_t>(i)]->thread;
    th = std::thread([this, i] { io_loop(i); });
    // The SMT sibling of worker i sits num_pes cores later in the
    // common Linux enumeration; fall back to sharing the core.
    if (cfg_.pin_threads) {
      const int sibling = i + cfg_.num_pes < hw ? i + cfg_.num_pes : i;
      pin_to_core(th, sibling);
    }
  }
}

Runtime::~Runtime() {
  wait_idle();
  stop_.store(true);
  for (auto& w : pes_) {
    std::lock_guard lk(w->mu);
    w->cv.notify_all();
  }
  for (auto& w : io_) {
    std::lock_guard lk(w->mu);
    w->cv.notify_all();
  }
  for (auto& w : pes_) w->thread.join();
  for (auto& w : io_) w->thread.join();
}

double Runtime::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0_)
      .count();
}

mem::BlockId Runtime::alloc_block(std::uint64_t bytes) {
  std::lock_guard elk(engine_mu_);
  // MemoryManager hands out dense sequential ids, so the engine can
  // share the id space; the CHECK below pins that assumption.
  const mem::BlockId expected = blocks_created_++;
  const ooc::Placement p = engine_.add_block(expected, bytes);
  const hw::TierId tier =
      p == ooc::Placement::Fast ? fast_tier_ : slow_tier_;
  const mem::BlockId b = mm_->register_block(bytes, tier);
  HMR_CHECK_MSG(b != mem::kInvalidBlock,
                "tier out of memory while allocating a block");
  HMR_CHECK_MSG(b == expected, "block id spaces diverged");
  return b;
}

void Runtime::free_block(mem::BlockId b) {
  {
    std::lock_guard elk(engine_mu_);
    engine_.remove_block(b);
  }
  mm_->unregister_block(b);
}

void Runtime::send(int pe, Body body) {
  HMR_CHECK(pe >= 0 && pe < cfg_.num_pes);
  {
    std::lock_guard lk(idle_mu_);
    ++outstanding_msgs_;
  }
  PeWorker& w = *pes_[static_cast<std::size_t>(pe)];
  std::lock_guard lk(w.mu);
  Msg m;
  m.body = std::move(body);
  m.prefetch = false;
  w.msgs.push_back(std::move(m));
  w.cv.notify_one();
}

void Runtime::send_prefetch(int pe, DepList deps, Body body,
                            double work_factor) {
  HMR_CHECK(pe >= 0 && pe < cfg_.num_pes);
  {
    std::lock_guard lk(idle_mu_);
    ++outstanding_msgs_;
  }
  PeWorker& w = *pes_[static_cast<std::size_t>(pe)];
  std::lock_guard lk(w.mu);
  Msg m;
  m.body = std::move(body);
  m.deps = std::move(deps);
  m.work_factor = work_factor;
  m.prefetch = true;
  w.msgs.push_back(std::move(m));
  w.cv.notify_one();
}

void Runtime::pe_loop(int pe) {
  PeWorker& w = *pes_[static_cast<std::size_t>(pe)];
  for (;;) {
    ReadyTask task;
    Msg msg;
    int kind = 0;
    {
      std::unique_lock lk(w.mu);
      w.cv.wait(lk, [&] {
        return stop_.load() || !w.run_q.empty() || !w.msgs.empty();
      });
      if (!w.run_q.empty()) {
        // Ready tasks (data resident) run before new messages are
        // intercepted, keeping the PE's pipeline full.
        task = std::move(w.run_q.front());
        w.run_q.pop_front();
        kind = 1;
      } else if (!w.msgs.empty()) {
        msg = std::move(w.msgs.front());
        w.msgs.pop_front();
        kind = 2;
      } else {
        return; // stop requested and nothing left to do
      }
    }
    if (kind == 1) {
      execute_task(pe, task);
    } else {
      intercept(pe, std::move(msg));
    }
  }
}

void Runtime::io_loop(int io) {
  IoWorker& w = *io_[static_cast<std::size_t>(io)];
  const int lane = cfg_.num_pes + io;
  for (;;) {
    ooc::Command cmd;
    {
      std::unique_lock lk(w.mu);
      w.cv.wait(lk, [&] { return stop_.load() || !w.cmds.empty(); });
      if (w.cmds.empty()) return;
      cmd = w.cmds.front();
      w.cmds.pop_front();
    }
    perform_transfer(cmd, lane);
  }
}

void Runtime::intercept(int pe, Msg msg) {
  if (!msg.prefetch) {
    // Plain entry method: the converse scheduler delivers it directly.
    const double ts = now();
    msg.body();
    tracer_.record(pe, trace::Category::Compute, ts, now());
    note_done();
    return;
  }
  // Pre-processing step of a [prefetch] entry method: wrap it as an
  // OOCTask and hand it to the policy engine.
  const ooc::TaskId id = next_task_.fetch_add(1);
  {
    std::lock_guard lk(tasks_mu_);
    pending_.emplace(id, ReadyTask{id, std::move(msg.body)});
  }
  ooc::TaskDesc desc;
  desc.id = id;
  desc.pe = pe;
  desc.deps = std::move(msg.deps);
  desc.work_factor = msg.work_factor;
  std::vector<ooc::Command> cmds;
  {
    std::lock_guard elk(engine_mu_);
    if (profiler_) {
      profiler_->on_task_arrived(
          desc, [this](mem::BlockId b) { return mm_->block_bytes(b); });
    }
    cmds = engine_.on_task_arrived(desc);
    observe_locked(cmds);
  }
  process(std::move(cmds), pe);
}

void Runtime::execute_task(int pe, const ReadyTask& task) {
  const double ts = now();
  task.body();
  tracer_.record(pe, trace::Category::Compute, ts, now(), task.id);
  tasks_done_.fetch_add(1);
  // Post-processing step: release claims, trigger evictions.
  std::vector<ooc::Command> cmds;
  {
    std::lock_guard elk(engine_mu_);
    cmds = engine_.on_task_complete(task.id);
    observe_locked(cmds);
  }
  process(std::move(cmds), pe);
  note_done();
}

void Runtime::perform_transfer(const ooc::Command& cmd, int trace_lane) {
  const bool fetch = cmd.kind == ooc::Command::Kind::Fetch;
  const double ts = now();
  // A write-only dependence's old contents are dead: skip the memcpy
  // (the paper's migration always copies; this is the optional
  // writeonly_nocopy extension).
  const auto res = mm_->migrate(cmd.block, fetch ? fast_tier_ : slow_tier_,
                                /*copy_contents=*/!cmd.nocopy);
  HMR_CHECK_MSG(res.ok,
                "migration failed: tier fragmentation exceeded the policy "
                "engine's byte budget");
  tracer_.record(trace_lane,
                 fetch ? trace::Category::Prefetch : trace::Category::Evict,
                 ts, now(), cmd.task);
  std::vector<ooc::Command> cmds;
  {
    std::lock_guard elk(engine_mu_);
    cmds = fetch ? engine_.on_fetch_complete(cmd.block)
                 : engine_.on_evict_complete(cmd.block);
    observe_locked(cmds);
  }
  process(std::move(cmds), trace_lane);
  {
    std::lock_guard lk(idle_mu_);
    --outstanding_ops_;
  }
  idle_cv_.notify_all();
}

void Runtime::process(std::vector<ooc::Command> cmds, int context_lane) {
  for (auto& c : cmds) {
    switch (c.kind) {
      case ooc::Command::Kind::Run: {
        ReadyTask task;
        {
          std::lock_guard lk(tasks_mu_);
          auto it = pending_.find(c.task);
          HMR_CHECK_MSG(it != pending_.end(), "run of unknown task");
          task = std::move(it->second);
          pending_.erase(it);
        }
        PeWorker& w = *pes_[static_cast<std::size_t>(c.pe)];
        std::lock_guard lk(w.mu);
        w.run_q.push_back(std::move(task));
        w.cv.notify_one();
        break;
      }
      case ooc::Command::Kind::Fetch:
      case ooc::Command::Kind::Evict: {
        {
          std::lock_guard lk(idle_mu_);
          ++outstanding_ops_;
        }
        if (c.agent == ooc::kWorkerInline) {
          // Synchronous pre/post-processing on the current thread.
          perform_transfer(c, context_lane);
        } else {
          HMR_CHECK(!io_.empty());
          IoWorker& w =
              *io_[static_cast<std::size_t>(c.agent) % io_.size()];
          std::lock_guard lk(w.mu);
          w.cmds.push_back(c);
          w.cv.notify_one();
        }
        break;
      }
    }
  }
}

void Runtime::observe_locked(const std::vector<ooc::Command>& cmds) {
  if (!governor_) return;
  for (const auto& c : cmds) {
    if (c.kind == ooc::Command::Kind::Fetch) {
      profiler_->on_fetch(c.block, mm_->block_bytes(c.block));
    }
  }
  peak_inflight_ = std::max(peak_inflight_, engine_.inflight_fetches());
  if (engine_.total_waiting() > 0) phase_contended_ = true;
}

void Runtime::governor_phase_end() {
  const double t_now = now();
  std::vector<ooc::Command> cmds;
  {
    std::lock_guard elk(engine_mu_);
    adapt::PhaseObservation obs;
    obs.phase_seconds = t_now - phase_start_;
    const ooc::PolicyEngine::Stats& st = engine_.stats();
    obs.tasks = st.tasks_run - phase_base_.tasks_run;
    obs.fetches = st.fetches - phase_base_.fetches;
    obs.fetch_bytes = st.fetch_bytes - phase_base_.fetch_bytes;
    obs.evict_bytes = st.evict_bytes - phase_base_.evict_bytes;
    obs.fetch_dedup_hits =
        st.fetch_dedup_hits - phase_base_.fetch_dedup_hits;
    obs.lru_reclaims = st.lru_reclaims - phase_base_.lru_reclaims;
    obs.peak_inflight_fetches = peak_inflight_;
    obs.admission_contended = phase_contended_;
    obs.unique_bytes = profiler_->end_phase().unique_bytes;
    if (tracer_.enabled() && obs.phase_seconds > 0) {
      const double compute =
          tracer_.summarize(cfg_.num_pes, phase_start_, t_now)
              .total_of(trace::Category::Compute);
      obs.wait_fraction = std::clamp(
          1.0 - compute / (obs.phase_seconds * cfg_.num_pes), 0.0, 1.0);
    }
    phase_base_ = st;
    peak_inflight_ = 0;
    phase_contended_ = false;

    const adapt::Decision d = governor_->on_phase_end(obs);
    advisor_->set_streaming_bypass(d.bypass_streaming);
    engine_.set_fair_admission(d.fair_admission);
    engine_.set_strategy(d.strategy);
    auto flush = engine_.set_eager_evict(d.eager_evict);
    cmds.insert(cmds.end(), flush.begin(), flush.end());
    auto trim = engine_.set_lru_watermark(d.lru_watermark);
    cmds.insert(cmds.end(), trim.begin(), trim.end());
  }
  phase_start_ = t_now;
  if (cmds.empty()) return;
  // Any LRU-flush evictions count as outstanding ops; push them and
  // wait for the node to settle again before the next phase starts.
  process(std::move(cmds), /*context_lane=*/0);
  std::unique_lock lk(idle_mu_);
  idle_cv_.wait(lk, [&] {
    if (outstanding_msgs_ != 0 || outstanding_ops_ != 0) return false;
    std::lock_guard elk(engine_mu_);
    return engine_.quiescent();
  });
}

void Runtime::note_done() {
  {
    std::lock_guard lk(idle_mu_);
    --outstanding_msgs_;
  }
  idle_cv_.notify_all();
}

void Runtime::wait_idle() {
  {
    std::unique_lock lk(idle_mu_);
    idle_cv_.wait(lk, [&] {
      if (outstanding_msgs_ != 0 || outstanding_ops_ != 0) return false;
      std::lock_guard elk(engine_mu_);
      return engine_.quiescent();
    });
  }
  // Each wait_idle barrier is a phase boundary for the governor.
  if (governor_) governor_phase_end();
}

ooc::PolicyEngine::Stats Runtime::policy_stats() {
  std::lock_guard elk(engine_mu_);
  return engine_.stats();
}

} // namespace hmr::rt
