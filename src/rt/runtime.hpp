#pragma once
// Runtime: a charm-lite threaded runtime with memory-heterogeneity
// aware scheduling — the real-execution counterpart of hmr::sim.
//
// Shape (paper §III-A / §IV):
//   * work is over-decomposed into chares, block-mapped onto PE worker
//     threads; chares never migrate;
//   * entry methods are delivered as messages through a per-PE
//     converse-style scheduler loop;
//   * entry methods annotated `prefetch` are *intercepted*: instead of
//     executing, the runtime registers an OOCTask with the policy
//     engine, whose commands drive real block migrations between two
//     host-memory tier arenas (MemoryManager) before the method is
//     queued on the PE's run queue;
//   * IO threads (0, 1 or one per PE, by strategy) perform the
//     asynchronous fetches and evictions; synchronous strategies run
//     them inline on the worker, exactly like the paper's
//     pre/post-processing steps.
//
// Scheduling hot path: the default MultiIo + eager-eviction
// configuration drives a ShardedEngine — per-PE-group engine shards,
// striped block locks and a work-stealing HBM budget — so admission
// and completion on different PEs never serialize.  Every other
// configuration (SingleIo, SyncNoIo, lazy eviction, adaptive) drives
// the serial ooc::PolicyEngine under one mutex, amortized by handing
// it whole event batches (PolicyEngine::step_batch).  Both paths share
// the same policy semantics; hmr::sim always uses the serial engine.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adapt/block_profiler.hpp"
#include "adapt/placement_advisor.hpp"
#include "adapt/strategy_governor.hpp"
#include "hw/machine_model.hpp"
#include "mem/memory_manager.hpp"
#include "ooc/policy_engine.hpp"
#include "rt/sharded_engine.hpp"
#include "serve/tenant_engine.hpp"
#include "telemetry/attrib.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/decision_log.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/history.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/serve.hpp"
#include "telemetry/watchdog.hpp"
#include "trace/contention.hpp"
#include "trace/tracer.hpp"

namespace hmr::rt {

class Runtime {
public:
  struct Config {
    /// Node model: tier shapes and roles (capacities get scaled).
    hw::MachineModel model = hw::knl_flat_all_to_all();
    /// Scale factor applied to tier capacities (1/1024 turns the
    /// 16 GB/96 GB KNL into a 16 MiB/96 MiB testbed).
    double mem_scale = 1.0 / 1024;
    ooc::Strategy strategy = ooc::Strategy::MultiIo;
    int num_pes = 4;
    bool eager_evict = true;
    bool evict_by_worker = false;
    bool writeonly_nocopy = false;
    /// Pool freed tier buffers (paper §IV-C future-work optimization).
    bool memory_pool = false;
    /// Record per-PE execution intervals.
    bool trace = false;
    /// Tracer knobs (ring capacity, deprecated serial fallback).
    trace::Tracer::Options trace_opts;
    /// Maintain a MetricsRegistry: latency/wait/queue-depth histograms
    /// updated inline, engine/lock/chunk counters mirrored at each
    /// wait_idle() (and on demand via sample_metrics()).  Read it
    /// through metrics().
    bool metrics = false;
    /// Block flight recorder depth: keep the last N residency
    /// transitions per block for post-mortem debugging (0 disables).
    /// Cheap — one striped-map update per migration — so it stays on
    /// by default.  The HMR_FLIGHT_DEPTH environment variable
    /// overrides this at construction (clamped to [0, 1024]).
    std::size_t flight_depth = 8;
    /// Metrics history ring: keep the last N registry snapshots, one
    /// sampled at every wait_idle() quiescence tick, served via
    /// /history and tools/hmr_top (0 disables; needs `metrics`).
    std::size_t history_depth = 240;
    /// Decision provenance ring (adaptive runs): keep the last N
    /// advisor/governor decisions with their triggering inputs, served
    /// via /decisions and hmr_trace --decisions (0 disables).
    std::size_t decision_log_depth = 1024;
    /// Pin threads to cores (Linux): PE i on core i, its IO thread on
    /// the SMT sibling when one exists — the paper's placement ("the
    /// IO threads are scheduled on the hyperthread cores corresponding
    /// to the worker threads, so as to not increase the usage of the
    /// number of physical cores").  No-op when cores are scarce.
    bool pin_threads = false;
    /// Online adaptive guidance (src/adapt/): same components as
    /// hmr::sim, driven here under the engine lock.  Phase boundaries
    /// are wait_idle() calls (one governor step per call).  Requires a
    /// movement strategy; `strategy` / `eager_evict` above are the
    /// starting point.  Wait fraction is read from the tracer when
    /// tracing is on (0 otherwise — the thresholds that depend on it
    /// simply never fire).
    bool adaptive = false;
    adapt::ProfilerConfig profiler_cfg;
    adapt::GovernorConfig governor_cfg;

    /// Engine sharding for the MultiIo + eager-eviction hot path:
    /// 0 = one shard per PE (default), 1 = the serial global-lock
    /// engine (the de-serialization baseline), N = N shards.  Other
    /// strategies, lazy eviction and adaptive runs always use the
    /// serial engine (their policies are inherently global).
    int engine_shards = 0;
    /// Max engine events a PE/IO thread hands the engine per lock
    /// acquisition (serial-engine path) and the per-wakeup drain depth
    /// of the worker loops.
    int io_batch = 16;
    /// Chunked cooperative migration: block copies of at least
    /// `chunk_threshold` bytes stream through the MemoryManager's
    /// ChunkRing in `chunk_bytes` pieces so idle IO threads can assist
    /// on one large transfer.  0 disables chunking.
    std::uint64_t chunk_threshold = 1ull << 20;
    std::uint64_t chunk_bytes = 256ull << 10;
    /// Zero-copy admission (docs/PERF.md §4): copying migrations
    /// retain their source buffer as a byte-identical shadow, and a
    /// later migration whose destination still holds a valid shadow is
    /// admitted as a pointer swap — no alloc, no memcpy, no free.  The
    /// runtime invalidates a block's shadow after every task that
    /// declared it ReadWrite/WriteOnly; code writing through
    /// block_ptr() outside a declared dependency must call
    /// memory().mark_dirty() itself.  Policy-inert: engine decisions
    /// and migration stats are identical with this on or off.
    bool zero_copy = false;
    /// Back tier arenas with mmap + MADV_HUGEPAGE instead of new[];
    /// HMR_NUMA builds additionally bind each arena to its model
    /// tier's numa_node.  Graceful fallback at every step.
    bool mmap_arenas = false;
    /// Collect scheduler lock-contention counters (bench/rt_contention
    /// reads them via lock_stats()).
    bool lock_stats = false;
    /// Reproduce the pre-sharding quiescence protocol: every message
    /// send and every message/op retirement takes the global idle lock
    /// and wakes all idle waiters, instead of notifying only on the
    /// counter's zero transition.  Exists solely so bench/rt_contention
    /// can measure the old runtime's bookkeeping cost; leave off.
    bool legacy_idle_notify = false;

    /// Placement hierarchy override, fastest level first (same contract
    /// as ooc::PolicyEngine::Config::tiers, with capacities in
    /// *post-mem_scale* bytes).  Empty = derive from `model`: levels in
    /// bandwidth order, non-bottom budgets equal to the scaled arenas,
    /// bottom unbounded.  A two-tier model therefore behaves exactly
    /// like the classic fast/slow runtime.
    std::vector<ooc::TierDesc> tiers;
    /// Demotion cascade on >2-level hierarchies: evicted blocks land on
    /// the first lower level with room instead of going straight to the
    /// bottom.  No effect on two-level hierarchies.
    bool demote_cascade = true;

    // ---- live introspection & self-diagnosis (src/telemetry/) ----

    /// Status server port: -1 = off (default), 0 = any free loopback
    /// port (read it back with serve_port()), >0 = that port.  The
    /// server binds 127.0.0.1 only and serves /healthz, /metrics,
    /// /status, /cluster and /blocks?id=N.  Enabling it forces
    /// `metrics` on so /metrics has something to say.
    int serve_port = -1;
    /// /cluster route payload provider.  Kept as a plain callable so
    /// rt does not link the cluster library: wire in
    /// cluster::ClusterSim::to_json (or any JSON producer) after the
    /// sim has run.  Unset, the route answers 404.
    std::function<std::string()> cluster_json;
    /// Same pattern for the federated cluster views: /cluster/metrics
    /// (per-node + aggregate registry snapshots) and /cluster/attrib
    /// (per-node stall attribution).  Wire in ClusterSim's
    /// metrics_json / attrib_json after a run; unset = 404.
    std::function<std::string()> cluster_metrics_json;
    std::function<std::string()> cluster_attrib_json;
    /// Stall watchdog: a monitor thread that trips when outstanding
    /// work stops retiring (see telemetry::Watchdog).  Off by default
    /// so tests and benches stay byte-identical in output.
    bool watchdog = false;
    telemetry::Watchdog::Config watchdog_cfg;
    /// Engine invariant audits at every wait_idle(): -1 = auto (on in
    /// debug / sanitizer builds, HMR_AUDIT env overrides), 0 = off,
    /// 1 = on.  A failed audit aborts (telemetry::check_audit).
    int audit = -1;
    /// Install SIGSEGV/SIGBUS/SIGABRT handlers that append the last
    /// pre-rendered diagnostic bundle before re-raising.
    bool crash_dump = false;
    std::string crash_dump_path; // empty = stderr

    /// Multi-tenant serving (src/serve/): registering tenants wraps
    /// the active engine (serial or sharded) in a serve::TenantEngine
    /// — QoS-aware admission, per-tenant placement quotas, priority
    /// dispatch on the IO queues, a /tenants status route and
    /// tenant-labeled metrics.  Tag work via send_prefetch's tenant
    /// argument.  Note the decorator serializes engine events, so the
    /// sharded path loses shard concurrency while tenancy is on
    /// (docs/SERVING.md).  Incompatible with `adaptive` (both claim
    /// the engine's advisor slot).  With no tenants registered the
    /// runtime is byte-identical to the pre-tenancy build.
    serve::ServeConfig serve;
  };

  explicit Runtime(Config cfg);
  ~Runtime(); // drains and joins all threads

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const Config& config() const { return cfg_; }
  int num_pes() const { return cfg_.num_pes; }
  int num_io_threads() const { return static_cast<int>(io_.size()); }

  mem::MemoryManager& memory() { return *mm_; }
  trace::Tracer& tracer() { return tracer_; }

  /// Metrics registry (nullptr unless Config::metrics).  Histograms
  /// are live; mirrored counters are refreshed by sample_metrics().
  telemetry::MetricsRegistry* metrics() { return metrics_.get(); }
  /// Refresh every bridged counter/gauge (engine stats, per-shard
  /// stats, lock contention, chunk ring, tier occupancy, trace drops)
  /// into the registry.  Called from wait_idle(); also usable as a
  /// SnapshotSampler pre-sample callback.  No-op when metrics are off.
  void sample_metrics();

  /// Block flight recorder (nullptr when Config::flight_depth == 0).
  const telemetry::BlockFlightRecorder* flight_recorder() const {
    return flight_.get();
  }

  /// Metrics history ring (nullptr unless metrics + history_depth).
  /// One sample per wait_idle() quiescence tick.
  const telemetry::HistoryBuffer* history() const { return history_.get(); }
  /// Decision provenance log (nullptr unless adaptive +
  /// decision_log_depth).  Snapshot reads are safe from any thread.
  const telemetry::DecisionLog* decisions() const {
    return decisions_.get();
  }

  /// Per-task stall attribution (nullptr unless Config::metrics):
  /// fetch-wait / queue-wait / compute per retired prefetch task,
  /// rolled up per tenant and served via /attrib.  Sharded per PE;
  /// read rollup() at quiescence for exact totals.
  const telemetry::AttributionTable* attribution() const {
    return attrib_.get();
  }

  // ---- data blocks ----

  /// Allocate a migratable data block of `bytes`.  Placement follows
  /// the strategy (movement strategies: the bottom hierarchy level;
  /// Naive: fastest level with room).  Dies if the placement tier
  /// cannot hold it.
  mem::BlockId alloc_block(std::uint64_t bytes);

  /// Current storage of a block (moves as the runtime migrates it).
  void* block_ptr(mem::BlockId b) { return mm_->block_ptr(b); }

  /// Release a block.  It must be idle: no outstanding task depends on
  /// it and no migration is in flight (call at quiescence).
  void free_block(mem::BlockId b);

  // ---- messaging ----

  using Body = std::function<void()>;
  using DepList = std::vector<ooc::Dep>;

  /// Deliver a plain (non-prefetch) entry method invocation to `pe`.
  void send(int pe, Body body);

  /// Deliver a [prefetch]-annotated entry method invocation: the
  /// converse scheduler on `pe` will intercept it, ensure `deps` are
  /// resident in the fast tier under the configured strategy, and only
  /// then execute `body`.
  /// `tenant` keys tenancy admission/quotas/stats when Config::serve
  /// registered tenants (ignored — and must stay 0 — otherwise).
  void send_prefetch(int pe, DepList deps, Body body,
                     double work_factor = 1.0, std::uint32_t tenant = 0);

  /// Batched enqueue: one idle-counter update, one queue lock and one
  /// wakeup for the whole vector (senders that fan out thousands of
  /// fine-grained messages otherwise pay that per message).
  void send_batch(int pe, std::vector<Body> bodies);

  struct PrefetchMsg {
    DepList deps;
    Body body;
    double work_factor = 1.0;
    std::uint32_t tenant = 0;
  };
  void send_prefetch_batch(int pe, std::vector<PrefetchMsg> msgs);

  /// Block until every delivered message has executed and all
  /// fetch/evict traffic has drained (quiescence detection).
  void wait_idle();

  /// Seconds since runtime start (the tracer's clock).
  double now() const;

  // ---- introspection ----

  ooc::PolicyEngine::Stats policy_stats();
  std::uint64_t tasks_executed() const;

  /// True when this configuration runs the sharded engine.
  bool sharded() const { return sharded_ != nullptr; }
  /// Shards of the active engine (1 on the serial path).
  int engine_shards() const {
    return sharded_ ? sharded_->num_shards() : 1;
  }
  /// TierBudget work-stealing rebalances (sharded path; 0 otherwise).
  std::uint64_t budget_steals() const {
    return sharded_ ? sharded_->budget_steals() : 0;
  }
  /// Scheduler-lock contention counters; nullptr unless
  /// Config::lock_stats.  Slot i = engine shard i (serial path: one
  /// slot for the global engine mutex).
  const trace::ContentionStats* lock_stats() const {
    return lock_stats_.get();
  }

  /// Adaptive runs: the guidance components (nullptr otherwise).
  /// Read only at quiescence — the PE/IO threads feed them.
  const adapt::BlockProfiler* profiler() const { return profiler_.get(); }
  const adapt::StrategyGovernor* governor() const { return governor_.get(); }

  /// Multi-tenant serving decorator (nullptr unless Config::serve
  /// registered tenants).  Snapshot/JSON reads are safe from any
  /// thread.
  const serve::TenantEngine* tenancy() const { return tenancy_.get(); }

  // ---- live introspection & self-diagnosis ----

  /// Bound status-server port (0 when Config::serve_port was -1 or the
  /// bind failed; the failure is a one-line stderr warning, not fatal).
  std::uint16_t serve_port() const {
    return server_ ? server_->port() : 0;
  }
  /// Stall watchdog (nullptr unless Config::watchdog).
  const telemetry::Watchdog* watchdog() const { return watchdog_.get(); }

  /// Run the engine invariant audit now.  The serial engine audits at
  /// any time (under its lock); the sharded engine's ledgers are only
  /// exact at quiescence, so off-quiescence sharded calls return an
  /// empty report with at_quiescence=false rather than false-positive.
  telemetry::AuditReport audit_now();
  /// wait_idle() audits completed so far (0 when audits are disabled).
  std::uint64_t audit_runs() const;

  /// The /status document: one JSON object with queue depths,
  /// heartbeat ages, tier occupancy, governor and watchdog state and
  /// the last audit report.  Safe from any thread.
  std::string status_json();
  /// Full diagnostic bundle: status + metrics snapshot + flight
  /// recorder + trace summary.  Shared by watchdog trips, crash dumps
  /// and operators holding a core file.
  void write_diagnostics(std::ostream& os);

private:
  struct Msg {
    Body body;
    DepList deps;
    double work_factor = 1.0;
    bool prefetch = false;
    std::uint32_t tenant = 0;
  };

  struct ReadyTask {
    ooc::TaskId id;
    Body body;
    double t_arrive = 0; // interception time (metrics runs only)
    double t_ready = 0;  // Run-command time: deps resident, queued
    std::uint32_t tenant = 0;
    // Blocks this task declared writable (zero-copy runs only): their
    // shadows are invalidated right after the body executes.
    std::vector<mem::BlockId> writes;
  };

  struct PeWorker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Msg> msgs;          // converse message queue
    std::deque<ReadyTask> run_q;   // tasks with resident data
    std::thread thread;
  };

  struct IoWorker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<ooc::Command> cmds;
    std::thread thread;
  };

  /// Pending (intercepted, not yet runnable) task bodies, sharded per
  /// PE: a task is inserted by its home PE and removed when its Run
  /// command (always targeted at the same PE) arrives, so two PEs
  /// never contend on one map.
  struct alignas(64) PendingShard {
    std::mutex mu;
    std::unordered_map<ooc::TaskId, ReadyTask> map;
  };

  struct alignas(64) PadCounter {
    std::atomic<std::uint64_t> v{0};
  };

  void pe_loop(int pe);
  void io_loop(int io);
  void run_ready_batch(int pe, std::vector<ReadyTask>& tasks);
  void intercept_batch(int pe, std::vector<Msg>& msgs);
  void perform_transfer(const ooc::Command& cmd, int trace_lane);
  void perform_transfer_batch(const std::vector<ooc::Command>& cmds,
                              int trace_lane);
  /// Execute one migration (step 1-3) and record its trace interval.
  void do_migrate(const ooc::Command& cmd, int trace_lane);
  void process(std::vector<ooc::Command> cmds, int context_lane);
  /// Batch of arrival events against the active engine.
  std::vector<ooc::Command> ev_arrivals(std::vector<ooc::TaskDesc> descs);
  /// Batch of completion events for tasks that ran on `pe`.
  std::vector<ooc::Command> ev_completions(
      const std::vector<ReadyTask>& tasks, int pe);
  /// `outstanding_msgs_` -= n, waking idle waiters on the final one.
  void msgs_add(std::uint64_t n);
  void note_done(std::uint64_t n);
  void ops_add(std::uint64_t n);
  void ops_sub(std::uint64_t n);
  bool engine_quiescent();
  /// Wake every IO thread so idle ones can assist a chunked copy.
  void poke_io_for_assist();
  /// Called with engine_mu_ held after an engine event: feed the
  /// profiler the fetches just issued and sample governor signals.
  void observe_locked(const std::vector<ooc::Command>& cmds);
  /// One governor step; called from wait_idle at quiescence.
  void governor_phase_end();
  /// Steady-clock ns since t0_ (heartbeat / fetch-age timebase).
  std::uint64_t now_ns() const;
  /// Fetch-latency p99 in seconds from the metrics histogram (<= 0 =
  /// unknown: metrics off or no fetches observed yet).
  double fetch_p99_seconds() const;
  /// Start status server / watchdog / crash handlers (constructor
  /// tail, after the worker threads exist) and stop them (destructor
  /// head, while the workers are still alive to answer hooks).
  void start_introspection();
  void stop_introspection();
  /// wait_idle() audit step: run, record for /status, fail-stop.
  void run_wait_idle_audit();
  /// Re-render the crash bundle into the CrashDumper's buffers.
  void publish_crash_bundle();

  Config cfg_;
  std::unique_ptr<mem::MemoryManager> mm_;

  /// Serial-engine path (every configuration the ShardedEngine does
  /// not cover); all access under engine_mu_.
  std::mutex engine_mu_;
  ooc::PolicyEngine engine_;

  /// Sharded hot path (MultiIo + eager eviction, engine_shards != 1).
  std::unique_ptr<trace::ContentionStats> lock_stats_;
  std::unique_ptr<ShardedEngine> sharded_;

  /// Tenancy decorator over the active engine (null = single-tenant:
  /// events go straight to the engine, exactly as before).  Serial
  /// path: event calls still hold engine_mu_ (lock order engine_mu_
  /// -> TenantEngine's mutex; the decorator never locks back).
  std::unique_ptr<serve::TenantEngine> tenancy_;

  /// Serializes block id allocation across the engine and the
  /// MemoryManager so their dense id spaces stay aligned.
  std::mutex alloc_mu_;
  std::uint64_t blocks_created_ = 0; // guarded by alloc_mu_

  // Adaptive guidance; all state guarded by engine_mu_ (the advisor is
  // only read by the engine, which is itself driven under that lock).
  std::unique_ptr<adapt::BlockProfiler> profiler_;
  std::unique_ptr<adapt::PlacementAdvisor> advisor_;
  std::unique_ptr<adapt::StrategyGovernor> governor_;
  ooc::PolicyEngine::Stats phase_base_;
  std::size_t peak_inflight_ = 0;
  bool phase_contended_ = false;
  double phase_start_ = 0;

  std::vector<std::unique_ptr<PeWorker>> pes_;
  std::vector<std::unique_ptr<IoWorker>> io_;

  std::vector<PendingShard> pending_;
  std::atomic<ooc::TaskId> next_task_{1};

  // Quiescence detection: contention-free atomic counters; the
  // condvar is only touched on a counter's final decrement.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  alignas(64) std::atomic<std::uint64_t> outstanding_msgs_{0};
  alignas(64) std::atomic<std::uint64_t> outstanding_ops_{0};

  std::vector<PadCounter> tasks_done_; // per PE, padded
  std::atomic<bool> stop_{false};

  trace::Tracer tracer_;
  std::chrono::steady_clock::time_point t0_;

  // Telemetry (src/telemetry/): registry + cached instrument handles
  // (so hot paths skip the name lookup), and the block flight
  // recorder.  All thread-safe by construction.
  std::unique_ptr<telemetry::MetricsRegistry> metrics_;
  struct MetricHandles {
    telemetry::Histogram* fetch_ns = nullptr;
    telemetry::Histogram* evict_ns = nullptr;
    telemetry::Histogram* task_wait_ns = nullptr;
    telemetry::Histogram* run_q_depth = nullptr;
  } mh_;
  std::unique_ptr<telemetry::BlockFlightRecorder> flight_;
  std::unique_ptr<telemetry::HistoryBuffer> history_;
  std::unique_ptr<telemetry::DecisionLog> decisions_;
  std::unique_ptr<telemetry::AttributionTable> attrib_;

  // Live introspection: per-thread heartbeats (stamped each loop
  // wakeup; parked threads do not beat, the watchdog only reads them
  // under load), a monotonic retirement counter as the watchdog's
  // progress signal, fetch-age tracking (dispatch/complete counts +
  // last-activity stamp), and the server / watchdog / audit state.
  std::vector<telemetry::Heartbeat> pe_beats_;
  std::vector<telemetry::Heartbeat> io_beats_;
  alignas(64) std::atomic<std::uint64_t> retired_{0};
  alignas(64) std::atomic<std::uint64_t> fetch_dispatched_{0};
  alignas(64) std::atomic<std::uint64_t> fetch_completed_{0};
  std::atomic<std::uint64_t> fetch_last_ns_{0};
  std::unique_ptr<telemetry::Watchdog> watchdog_;
  std::unique_ptr<telemetry::StatusServer> server_;
  bool crash_installed_ = false;
  mutable std::mutex audit_mu_; // guards the two fields below
  telemetry::AuditReport last_audit_;
  std::uint64_t audit_runs_ = 0;
};

} // namespace hmr::rt
