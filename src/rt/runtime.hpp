#pragma once
// Runtime: a charm-lite threaded runtime with memory-heterogeneity
// aware scheduling — the real-execution counterpart of hmr::sim.
//
// Shape (paper §III-A / §IV):
//   * work is over-decomposed into chares, block-mapped onto PE worker
//     threads; chares never migrate;
//   * entry methods are delivered as messages through a per-PE
//     converse-style scheduler loop;
//   * entry methods annotated `prefetch` are *intercepted*: instead of
//     executing, the runtime registers an OOCTask with the
//     PolicyEngine, whose commands drive real block migrations between
//     two host-memory tier arenas (MemoryManager) before the method is
//     queued on the PE's run queue;
//   * IO threads (0, 1 or one per PE, by strategy) perform the
//     asynchronous fetches and evictions; synchronous strategies run
//     them inline on the worker, exactly like the paper's
//     pre/post-processing steps.
//
// The same PolicyEngine state machine used by the simulator makes the
// scheduling decisions here, so policy behaviour is identical across
// both executors; only time and memory are real in this one.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adapt/block_profiler.hpp"
#include "adapt/placement_advisor.hpp"
#include "adapt/strategy_governor.hpp"
#include "hw/machine_model.hpp"
#include "mem/memory_manager.hpp"
#include "ooc/policy_engine.hpp"
#include "trace/tracer.hpp"

namespace hmr::rt {

class Runtime {
public:
  struct Config {
    /// Node model: tier shapes and roles (capacities get scaled).
    hw::MachineModel model = hw::knl_flat_all_to_all();
    /// Scale factor applied to tier capacities (1/1024 turns the
    /// 16 GB/96 GB KNL into a 16 MiB/96 MiB testbed).
    double mem_scale = 1.0 / 1024;
    ooc::Strategy strategy = ooc::Strategy::MultiIo;
    int num_pes = 4;
    bool eager_evict = true;
    bool evict_by_worker = false;
    bool writeonly_nocopy = false;
    /// Pool freed tier buffers (paper §IV-C future-work optimization).
    bool memory_pool = false;
    /// Record per-PE execution intervals.
    bool trace = false;
    /// Pin threads to cores (Linux): PE i on core i, its IO thread on
    /// the SMT sibling when one exists — the paper's placement ("the
    /// IO threads are scheduled on the hyperthread cores corresponding
    /// to the worker threads, so as to not increase the usage of the
    /// number of physical cores").  No-op when cores are scarce.
    bool pin_threads = false;
    /// Online adaptive guidance (src/adapt/): same components as
    /// hmr::sim, driven here under the engine lock.  Phase boundaries
    /// are wait_idle() calls (one governor step per call).  Requires a
    /// movement strategy; `strategy` / `eager_evict` above are the
    /// starting point.  Wait fraction is read from the tracer when
    /// tracing is on (0 otherwise — the thresholds that depend on it
    /// simply never fire).
    bool adaptive = false;
    adapt::ProfilerConfig profiler_cfg;
    adapt::GovernorConfig governor_cfg;
  };

  explicit Runtime(Config cfg);
  ~Runtime(); // drains and joins all threads

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const Config& config() const { return cfg_; }
  int num_pes() const { return cfg_.num_pes; }
  int num_io_threads() const { return static_cast<int>(io_.size()); }

  mem::MemoryManager& memory() { return *mm_; }
  trace::Tracer& tracer() { return tracer_; }

  // ---- data blocks ----

  /// Allocate a migratable data block of `bytes`.  Placement follows
  /// the strategy (movement strategies: slow tier; Naive: HBM-first).
  /// Dies if the placement tier cannot hold it.
  mem::BlockId alloc_block(std::uint64_t bytes);

  /// Current storage of a block (moves as the runtime migrates it).
  void* block_ptr(mem::BlockId b) { return mm_->block_ptr(b); }

  /// Release a block.  It must be idle: no outstanding task depends on
  /// it and no migration is in flight (call at quiescence).
  void free_block(mem::BlockId b);

  // ---- messaging ----

  using Body = std::function<void()>;
  using DepList = std::vector<ooc::Dep>;

  /// Deliver a plain (non-prefetch) entry method invocation to `pe`.
  void send(int pe, Body body);

  /// Deliver a [prefetch]-annotated entry method invocation: the
  /// converse scheduler on `pe` will intercept it, ensure `deps` are
  /// resident in the fast tier under the configured strategy, and only
  /// then execute `body`.
  void send_prefetch(int pe, DepList deps, Body body,
                     double work_factor = 1.0);

  /// Block until every delivered message has executed and all
  /// fetch/evict traffic has drained (quiescence detection).
  void wait_idle();

  /// Seconds since runtime start (the tracer's clock).
  double now() const;

  // ---- introspection ----

  ooc::PolicyEngine::Stats policy_stats();
  std::uint64_t tasks_executed() const { return tasks_done_.load(); }

  /// Adaptive runs: the guidance components (nullptr otherwise).
  /// Read only at quiescence — the PE/IO threads feed them.
  const adapt::BlockProfiler* profiler() const { return profiler_.get(); }
  const adapt::StrategyGovernor* governor() const { return governor_.get(); }

private:
  struct Msg {
    Body body;
    DepList deps;
    double work_factor = 1.0;
    bool prefetch = false;
  };

  struct ReadyTask {
    ooc::TaskId id;
    Body body;
  };

  struct PeWorker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Msg> msgs;          // converse message queue
    std::deque<ReadyTask> run_q;   // tasks with resident data
    std::thread thread;
  };

  struct IoWorker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<ooc::Command> cmds;
    std::thread thread;
  };

  void pe_loop(int pe);
  void io_loop(int io);
  void intercept(int pe, Msg msg);
  void execute_task(int pe, const ReadyTask& task);
  void perform_transfer(const ooc::Command& cmd, int trace_lane);
  void process(std::vector<ooc::Command> cmds, int context_lane);
  void note_done();
  /// Called with engine_mu_ held after an engine event: feed the
  /// profiler the fetches just issued and sample governor signals.
  void observe_locked(const std::vector<ooc::Command>& cmds);
  /// One governor step; called from wait_idle at quiescence.
  void governor_phase_end();

  Config cfg_;
  hw::TierId fast_tier_;
  hw::TierId slow_tier_;
  std::unique_ptr<mem::MemoryManager> mm_;

  std::mutex engine_mu_;
  ooc::PolicyEngine engine_;
  std::uint64_t blocks_created_ = 0; // guarded by engine_mu_

  // Adaptive guidance; all state guarded by engine_mu_ (the advisor is
  // only read by the engine, which is itself driven under that lock).
  std::unique_ptr<adapt::BlockProfiler> profiler_;
  std::unique_ptr<adapt::PlacementAdvisor> advisor_;
  std::unique_ptr<adapt::StrategyGovernor> governor_;
  ooc::PolicyEngine::Stats phase_base_;
  std::size_t peak_inflight_ = 0;
  bool phase_contended_ = false;
  double phase_start_ = 0;

  std::vector<std::unique_ptr<PeWorker>> pes_;
  std::vector<std::unique_ptr<IoWorker>> io_;

  std::mutex tasks_mu_;
  std::unordered_map<ooc::TaskId, ReadyTask> pending_;
  std::atomic<ooc::TaskId> next_task_{1};

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::uint64_t outstanding_msgs_ = 0; // delivered, not yet executed
  std::uint64_t outstanding_ops_ = 0;  // fetch/evict in flight

  std::atomic<std::uint64_t> tasks_done_{0};
  std::atomic<bool> stop_{false};

  trace::Tracer tracer_;
  std::chrono::steady_clock::time_point t0_;
};

} // namespace hmr::rt
