#include "rt/sharded_engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmr::rt {

using ooc::BlockState;
using ooc::Command;

namespace {

std::int32_t resolve_shard_count(const ShardedEngine::Config& cfg) {
  return cfg.num_shards > 0 ? std::min(cfg.num_shards, cfg.num_pes)
                            : cfg.num_pes;
}

} // namespace

ShardedEngine::ShardedEngine(Config cfg, trace::ContentionStats* lock_stats)
    : cfg_(std::move(cfg)),
      lock_stats_(lock_stats),
      shards_(static_cast<std::size_t>(resolve_shard_count(cfg_))),
      pe_claims_(static_cast<std::size_t>(cfg_.num_pes)),
      chunks_(kMaxChunks) {
  HMR_CHECK(cfg_.num_pes > 0);
  if (cfg_.tiers.empty()) {
    tiers_ = {ooc::TierDesc{1, cfg_.fast_capacity, 1.0},
              ooc::TierDesc{0, 0, 1.0}};
  } else {
    tiers_ = cfg_.tiers;
    HMR_CHECK_MSG(tiers_.size() >= 2, "placement hierarchy needs >= 2 levels");
    cfg_.fast_capacity = tiers_.front().capacity;
  }
  const auto n_shards = static_cast<std::int32_t>(shards_.size());
  budgets_.resize(tiers_.size());
  for (std::size_t k = 0; k + 1 < tiers_.size(); ++k) {
    budgets_[k] =
        std::make_unique<ooc::TierBudget>(tiers_[k].capacity, n_shards);
  }
  pes_per_shard_ = (cfg_.num_pes + n_shards - 1) / n_shards;
  for (std::int32_t s = 0; s < n_shards; ++s) {
    const std::int32_t first = s * pes_per_shard_;
    const std::int32_t count =
        std::min(pes_per_shard_, cfg_.num_pes - first);
    shards_[static_cast<std::size_t>(s)].wait_q.resize(
        static_cast<std::size_t>(count));
  }
  for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
}

ShardedEngine::~ShardedEngine() {
  for (auto& c : chunks_) {
    delete[] c.load(std::memory_order_relaxed);
  }
}

ShardedEngine::BlockRec& ShardedEngine::block(ooc::BlockId b) const {
  HMR_DCHECK(b < n_blocks_.load(std::memory_order_acquire));
  BlockRec* chunk =
      chunks_[static_cast<std::size_t>(b) >> kChunkShift].load(
          std::memory_order_acquire);
  HMR_CHECK_MSG(chunk != nullptr, "unknown block id");
  return chunk[static_cast<std::size_t>(b) & (kChunkSize - 1)];
}

ooc::TierId ShardedEngine::add_block(ooc::BlockId b, std::uint64_t bytes) {
  HMR_CHECK_MSG(bytes > 0, "zero-byte block");
  std::lock_guard lk(registry_mu_);
  const std::size_t ci = static_cast<std::size_t>(b) >> kChunkShift;
  HMR_CHECK_MSG(ci < kMaxChunks, "block id space exhausted");
  BlockRec* chunk = chunks_[ci].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new BlockRec[kChunkSize];
    chunks_[ci].store(chunk, std::memory_order_release);
  }
  BlockRec& rec = chunk[static_cast<std::size_t>(b) & (kChunkSize - 1)];
  {
    std::lock_guard slk(stripe(b).mu);
    HMR_CHECK_MSG(!rec.live, "duplicate block id");
    rec.bytes = bytes;
    rec.level = bottom(); // movement strategies start on the far tier
    rec.from_level = -1;
    rec.refcount = 0;
    rec.claim_shard = 0;
    rec.src_claim_shard = 0;
    rec.live = true;
    rec.waiters.clear();
  }
  std::uint64_t n = n_blocks_.load(std::memory_order_relaxed);
  while (n <= b &&
         !n_blocks_.compare_exchange_weak(n, b + 1,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
  }
  return tiers_.back().id;
}

void ShardedEngine::remove_block(ooc::BlockId b) {
  std::lock_guard lk(registry_mu_);
  BlockRec& rec = block(b);
  std::lock_guard slk(stripe(b).mu);
  HMR_CHECK_MSG(rec.live, "unknown block id");
  HMR_CHECK_MSG(rec.refcount == 0, "removing a claimed block");
  HMR_CHECK_MSG(rec.from_level < 0, "removing a block mid-migration");
  if (rec.level < bottom()) {
    budgets_[static_cast<std::size_t>(rec.level)]->release(rec.claim_shard,
                                                           rec.bytes);
  }
  rec.live = false;
}

// Locks the stripes of a task's dependences in ascending stripe order
// (deadlock-free against concurrent multi-stripe admissions).
class ShardedEngine::StripeLockSet {
public:
  StripeLockSet(ShardedEngine& eng, const std::vector<ooc::Dep>& deps) {
    ids_.reserve(deps.size());
    for (const auto& d : deps) {
      ids_.push_back(static_cast<std::size_t>(d.block) % kStripes);
    }
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
    for (const std::size_t s : ids_) eng.stripes_[s].mu.lock();
    eng_ = &eng;
  }
  ~StripeLockSet() {
    for (auto it = ids_.rbegin(); it != ids_.rend(); ++it) {
      eng_->stripes_[*it].mu.unlock();
    }
  }
  StripeLockSet(const StripeLockSet&) = delete;
  StripeLockSet& operator=(const StripeLockSet&) = delete;

private:
  ShardedEngine* eng_ = nullptr;
  std::vector<std::size_t> ids_;
};

bool ShardedEngine::try_admit(Shard& sh, TaskRec& tr, bool only_if_free,
                              std::vector<Command>& cmds) {
  const std::int32_t pe = tr.desc.pe;
  const std::int32_t shard_idx = shard_of(pe);
  StripeLockSet locks(*this, tr.desc.deps);

  // Pass 1: the all-or-nothing admission decision.
  std::uint64_t extra = 0;
  for (const auto& d : tr.desc.deps) {
    const BlockRec& br = block(d.block);
    if (br.from_level >= 0) {
      // A demotion must land before the block can be re-fetched; an
      // inbound promotion is already claimed in the level-0 budget.
      if (br.level != 0) return false;
      continue;
    }
    if (br.level > 0) extra += br.bytes;
  }
  if (only_if_free) {
    // Arrival fast path (paper: all deps already INHBM): no fresh
    // bytes, no queue, no fairness gate.
    if (extra != 0) return false;
  } else {
    if (cfg_.fair_admission) {
      const auto& pc = pe_claims_[static_cast<std::size_t>(pe)];
      const std::uint64_t held = pc.bytes.load(std::memory_order_relaxed);
      const std::uint64_t share =
          cfg_.fast_capacity / static_cast<std::uint64_t>(cfg_.num_pes);
      if (held != 0 && held + extra > share) return false;
    }
    if (extra > 0 && !budgets_[0]->try_claim(shard_idx, extra)) {
      HMR_CHECK_MSG(extra <= cfg_.fast_capacity,
                    "scheduling wedge: a waiting task's dependences exceed "
                    "the fast-tier capacity (reduced working set must fit "
                    "in HBM)");
      return false;
    }
  }

  // Pass 2: commit — claim every dependence and plan the fetches.
  std::uint32_t missing = 0;
  for (const auto& d : tr.desc.deps) {
    BlockRec& br = block(d.block);
    ++br.refcount;
    if (br.from_level >= 0) {
      // Another admitted task is already pulling this block in; wait
      // for the same fetch (no duplicate traffic).
      HMR_CHECK_MSG(br.level == 0,
                    "admitted task depends on a demoting block");
      br.waiters.push_back(&tr);
      ++missing;
      ++sh.stats.fetch_dedup_hits;
    } else if (br.level > 0) {
      const std::int32_t src = br.level;
      br.from_level = src;
      br.level = 0;
      // The source-level claim (if the source is bounded) is released
      // when the promotion lands; the level-0 bytes were claimed in
      // `extra` above.
      br.src_claim_shard = br.claim_shard;
      br.claim_shard = shard_idx;
      br.waiters.push_back(&tr);
      ++missing;
      n_inflight_fetch_.fetch_add(1, std::memory_order_acq_rel);
      ++sh.stats.fetches;
      sh.stats.fetch_bytes += br.bytes;
      if (tiers_[static_cast<std::size_t>(src)].backend ==
          ooc::TierBackendKind::Remote) {
        ++sh.stats.remote_fetches;
        sh.stats.remote_fetch_bytes += br.bytes;
      }
      Command c;
      c.kind = Command::Kind::Fetch;
      c.block = d.block;
      c.task = tr.desc.id;
      c.agent = pe; // MultiIo: the PE's own IO thread
      c.pe = pe;
      c.nocopy =
          cfg_.writeonly_nocopy && d.mode == ooc::AccessMode::WriteOnly;
      c.src_tier = tiers_[static_cast<std::size_t>(src)].id;
      c.dst_tier = tiers_[0].id;
      cmds.push_back(c);
    }
    // else: already resident on the top level — nothing to plan.
  }
  tr.claim_bytes = only_if_free ? 0 : extra;
  pe_claims_[static_cast<std::size_t>(pe)].bytes.fetch_add(
      tr.claim_bytes, std::memory_order_relaxed);
  n_live_.fetch_add(1, std::memory_order_acq_rel);
  // Store while the stripes are held: any fetch completion that could
  // decrement this counter serializes behind the stripe locks above.
  tr.missing.store(missing, std::memory_order_release);
  if (missing == 0) {
    Command c;
    c.kind = Command::Kind::Run;
    c.task = tr.desc.id;
    c.pe = pe;
    cmds.push_back(c);
  }
  return true;
}

void ShardedEngine::drain_locked(Shard& sh, std::vector<Command>& cmds) {
  for (auto& q : sh.wait_q) {
    while (!q.empty()) {
      TaskRec& head = *sh.tasks.at(q.front());
      if (!try_admit(sh, head, /*only_if_free=*/false, cmds)) {
        break; // FIFO: the head blocks its queue
      }
      q.pop_front();
      n_waiting_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

void ShardedEngine::drain_shard(std::size_t s, std::vector<Command>& cmds) {
  Shard& sh = shards_[s];
  lock_shard(s);
  std::lock_guard lk(sh.mu, std::adopt_lock);
  drain_locked(sh, cmds);
}

std::vector<Command> ShardedEngine::on_task_arrived(
    const ooc::TaskDesc& desc) {
  HMR_CHECK_MSG(desc.id != ooc::kInvalidTask, "task needs a valid id");
  HMR_CHECK_MSG(desc.pe >= 0 && desc.pe < cfg_.num_pes,
                "task pe out of range");
  for (std::size_t i = 0; i < desc.deps.size(); ++i) {
    for (std::size_t j = i + 1; j < desc.deps.size(); ++j) {
      HMR_CHECK_MSG(desc.deps[i].block != desc.deps[j].block,
                    "duplicate dependence on one block");
    }
  }

  events_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Command> cmds;
  const auto s = static_cast<std::size_t>(shard_of(desc.pe));
  Shard& sh = shards_[s];
  const auto local_pe =
      static_cast<std::size_t>(desc.pe - shard_of(desc.pe) * pes_per_shard_);

  lock_shard(s);
  std::lock_guard lk(sh.mu, std::adopt_lock);

  auto rec = std::make_unique<TaskRec>();
  rec->desc = desc;
  rec->shard = static_cast<std::int32_t>(s);
  TaskRec& tr = *rec;
  HMR_CHECK_MSG(sh.tasks.emplace(desc.id, std::move(rec)).second,
                "duplicate task id");

  if (!desc.prefetch) {
    // Non-annotated entry method: deliver directly.
    n_live_.fetch_add(1, std::memory_order_acq_rel);
    Command c;
    c.kind = Command::Kind::Run;
    c.task = desc.id;
    c.pe = desc.pe;
    cmds.push_back(c);
    return cmds;
  }

  if (try_admit(sh, tr, /*only_if_free=*/true, cmds)) {
    return cmds;
  }
  sh.wait_q[local_pe].push_back(desc.id);
  n_waiting_.fetch_add(1, std::memory_order_acq_rel);
  // Drain this PE's queue (the paper: the arriving task wakes its PE's
  // IO thread, which admits FIFO heads until HBM is full).
  auto& q = sh.wait_q[local_pe];
  while (!q.empty()) {
    TaskRec& head = *sh.tasks.at(q.front());
    if (!try_admit(sh, head, /*only_if_free=*/false, cmds)) break;
    q.pop_front();
    n_waiting_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return cmds;
}

std::vector<Command> ShardedEngine::on_fetch_complete(ooc::BlockId b) {
  events_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Command> cmds;
  std::vector<TaskRec*> ready;
  std::int32_t src = -1;
  std::int32_t src_shard = 0;
  std::uint64_t bytes = 0;
  {
    std::lock_guard slk(stripe(b).mu);
    BlockRec& br = block(b);
    HMR_CHECK_MSG(br.from_level >= 0 && br.level == 0,
                  "fetch completion for a block not being fetched");
    src = br.from_level;
    src_shard = br.src_claim_shard;
    bytes = br.bytes;
    br.from_level = -1;
    for (TaskRec* w : br.waiters) {
      if (w->missing.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ready.push_back(w);
      }
    }
    br.waiters.clear();
  }
  // The source copy is released on landing — a promotion out of a
  // bounded middle level frees that level's budget here.
  if (src < bottom()) {
    budgets_[static_cast<std::size_t>(src)]->release(src_shard, bytes);
  }
  n_inflight_fetch_.fetch_sub(1, std::memory_order_acq_rel);
  for (TaskRec* w : ready) {
    Command c;
    c.kind = Command::Kind::Run;
    c.task = w->desc.id;
    c.pe = w->desc.pe;
    cmds.push_back(c);
  }
  return cmds;
}

std::vector<Command> ShardedEngine::on_evict_complete(ooc::BlockId b) {
  events_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bytes = 0;
  std::int32_t src = -1;
  std::int32_t src_shard = 0;
  {
    std::lock_guard slk(stripe(b).mu);
    BlockRec& br = block(b);
    HMR_CHECK_MSG(br.from_level >= 0 && br.level > 0,
                  "evict completion for a block not being evicted");
    src = br.from_level;
    src_shard = br.src_claim_shard;
    bytes = br.bytes;
    br.from_level = -1;
  }
  if (src < bottom()) {
    budgets_[static_cast<std::size_t>(src)]->release(src_shard, bytes);
  }
  n_inflight_evict_.fetch_sub(1, std::memory_order_acq_rel);

  // Freed capacity can unblock any PE's queue head (the serial engine
  // retries every queue here too).
  std::vector<Command> cmds;
  if (n_waiting_.load(std::memory_order_acquire) > 0) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      drain_shard(s, cmds);
    }
  }
  return cmds;
}

std::vector<Command> ShardedEngine::on_task_complete(ooc::TaskId t,
                                                     std::int32_t pe) {
  events_.fetch_add(1, std::memory_order_relaxed);
  HMR_CHECK(pe >= 0 && pe < cfg_.num_pes);
  const auto s = static_cast<std::size_t>(shard_of(pe));
  Shard& sh = shards_[s];
  std::vector<Command> cmds;

  lock_shard(s);
  std::lock_guard lk(sh.mu, std::adopt_lock);
  auto it = sh.tasks.find(t);
  HMR_CHECK_MSG(it != sh.tasks.end(), "completion for an unknown task");
  std::unique_ptr<TaskRec> tr = std::move(it->second);
  sh.tasks.erase(it);
  HMR_CHECK_MSG(tr->missing.load(std::memory_order_acquire) == 0,
                "completion for a task that was never made runnable");

  ++sh.stats.tasks_run;
  pe_claims_[static_cast<std::size_t>(pe)].bytes.fetch_sub(
      tr->claim_bytes, std::memory_order_relaxed);

  // Post-processing: release claims; blocks that drop to refcount 0
  // are eagerly evicted (paper behaviour).  Non-annotated entry
  // methods never claimed their deps, so there is nothing to release.
  const std::int32_t evict_agent =
      cfg_.evict_by_worker ? ooc::kWorkerInline : pe;
  const std::int32_t shard_idx = static_cast<std::int32_t>(s);
  const auto deps_held =
      tr->desc.prefetch ? tr->desc.deps : std::vector<ooc::Dep>{};
  for (const auto& d : deps_held) {
    std::lock_guard slk(stripe(d.block).mu);
    BlockRec& br = block(d.block);
    HMR_CHECK_MSG(br.refcount > 0, "refcount underflow");
    --br.refcount;
    if (br.refcount == 0 && br.level == 0 && br.from_level < 0) {
      // Demotion cascade: probe the middle levels' budgets in speed
      // order (try_claim doubles as an exact concurrent fit check);
      // overflow to the unbounded bottom.
      std::int32_t dst = bottom();
      if (cfg_.demote_cascade) {
        for (std::int32_t k = 1; k < bottom(); ++k) {
          if (budgets_[static_cast<std::size_t>(k)]->try_claim(shard_idx,
                                                               br.bytes)) {
            dst = k;
            break;
          }
        }
      }
      br.from_level = 0;
      br.level = dst;
      br.src_claim_shard = br.claim_shard; // level-0 claim, freed on landing
      br.claim_shard = shard_idx;          // dst claim (bounded dst only)
      n_inflight_evict_.fetch_add(1, std::memory_order_acq_rel);
      ++sh.stats.evicts;
      sh.stats.evict_bytes += br.bytes;
      if (dst < bottom()) ++sh.stats.cascade_demotions;
      if (tiers_[static_cast<std::size_t>(dst)].backend ==
          ooc::TierBackendKind::Remote) {
        ++sh.stats.remote_evicts;
        sh.stats.remote_evict_bytes += br.bytes;
      }
      Command c;
      c.kind = Command::Kind::Evict;
      c.block = d.block;
      c.task = t; // telemetry: the completion that triggered this
      c.agent = evict_agent;
      c.pe = pe;
      c.src_tier = tiers_[0].id;
      c.dst_tier = tiers_[static_cast<std::size_t>(dst)].id;
      cmds.push_back(c);
    }
  }
  n_live_.fetch_sub(1, std::memory_order_acq_rel);

  // Wake our own queues: shared blocks may have become resident.  The
  // budget this completion frees arrives via on_evict_complete, which
  // retries every shard.
  drain_locked(sh, cmds);
  return cmds;
}

ooc::PolicyEngine::Stats ShardedEngine::stats() const {
  ooc::PolicyEngine::Stats out;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    auto& sh = const_cast<Shard&>(shards_[s]);
    std::lock_guard lk(sh.mu);
    out.tasks_run += sh.stats.tasks_run;
    out.fetches += sh.stats.fetches;
    out.fetch_bytes += sh.stats.fetch_bytes;
    out.evicts += sh.stats.evicts;
    out.evict_bytes += sh.stats.evict_bytes;
    out.fetch_dedup_hits += sh.stats.fetch_dedup_hits;
    out.cascade_demotions += sh.stats.cascade_demotions;
    out.remote_fetches += sh.stats.remote_fetches;
    out.remote_fetch_bytes += sh.stats.remote_fetch_bytes;
    out.remote_evicts += sh.stats.remote_evicts;
    out.remote_evict_bytes += sh.stats.remote_evict_bytes;
  }
  return out;
}

ooc::PolicyEngine::Stats ShardedEngine::shard_stats(std::int32_t s) const {
  HMR_CHECK(s >= 0 && static_cast<std::size_t>(s) < shards_.size());
  auto& sh = const_cast<Shard&>(shards_[static_cast<std::size_t>(s)]);
  std::lock_guard lk(sh.mu);
  return sh.stats;
}

bool ShardedEngine::quiescent() const {
  return n_waiting_.load(std::memory_order_acquire) == 0 &&
         n_live_.load(std::memory_order_acquire) == 0 &&
         n_inflight_fetch_.load(std::memory_order_acquire) == 0 &&
         n_inflight_evict_.load(std::memory_order_acquire) == 0;
}

ooc::BlockState ShardedEngine::block_state(ooc::BlockId b) const {
  std::lock_guard slk(stripe(b).mu);
  return state_of(block(b));
}

std::int32_t ShardedEngine::block_level(ooc::BlockId b) const {
  std::lock_guard slk(stripe(b).mu);
  return block(b).level;
}

std::uint32_t ShardedEngine::refcount(ooc::BlockId b) const {
  std::lock_guard slk(stripe(b).mu);
  return block(b).refcount;
}

std::vector<std::string> ShardedEngine::audit_invariants(
    bool at_quiescence) const {
  std::vector<std::string> v;
  const auto fail = [&v](std::string msg) { v.push_back(std::move(msg)); };
  auto* self = const_cast<ShardedEngine*>(this);

  // Lock the world in the canonical order (shard mutexes, then the
  // registry, then every stripe ascending) so the cross-check sees one
  // consistent cut.  Event paths take shard -> stripes or registry ->
  // stripe, never the reverse.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size() + 1 + kStripes);
  for (auto& sh : self->shards_) locks.emplace_back(sh.mu);
  locks.emplace_back(self->registry_mu_);
  for (auto& st : self->stripes_) locks.emplace_back(st.mu);

  const std::size_t levels = tiers_.size();
  std::vector<std::uint64_t> want_used(levels, 0);
  std::size_t want_fetch = 0, want_evict = 0;

  // Task-side ground truth: queued ids per shard, and per-PE claims /
  // per-block refcounts held by admitted prefetch tasks.
  std::unordered_map<const TaskRec*, std::uint32_t> want_waits;
  std::unordered_map<ooc::BlockId, std::uint32_t> want_ref;
  std::vector<std::uint64_t> want_claims(pe_claims_.size(), 0);
  std::size_t queued = 0, records = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = shards_[s];
    std::unordered_map<ooc::TaskId, std::size_t> in_q;
    for (const auto& q : sh.wait_q) {
      for (const ooc::TaskId t : q) {
        ++queued;
        ++in_q[t];
        if (sh.tasks.find(t) == sh.tasks.end()) {
          fail("shard " + std::to_string(s) + ": queued task " +
               std::to_string(t) + " has no record");
        }
      }
    }
    records += sh.tasks.size();
    for (const auto& [id, tr] : sh.tasks) {
      if (in_q.count(id)) continue; // waiting: holds nothing yet
      want_claims[static_cast<std::size_t>(tr->desc.pe)] += tr->claim_bytes;
      if (tr->missing.load(std::memory_order_relaxed) > 0) {
        want_waits.emplace(tr.get(), 0);
      }
      if (!tr->desc.prefetch) continue;
      for (const auto& d : tr->desc.deps) ++want_ref[d.block];
    }
  }

  const std::uint64_t n = n_blocks_.load(std::memory_order_acquire);
  for (std::uint64_t b = 0; b < n; ++b) {
    BlockRec* chunk =
        chunks_[static_cast<std::size_t>(b) >> kChunkShift].load(
            std::memory_order_acquire);
    if (chunk == nullptr) continue;
    const BlockRec& br =
        chunk[static_cast<std::size_t>(b) & (kChunkSize - 1)];
    if (!br.live) continue;
    const std::string tag = "block " + std::to_string(b) + ": ";
    if (br.level < 0 || br.level >= static_cast<std::int32_t>(levels) ||
        br.from_level < -1 ||
        br.from_level >= static_cast<std::int32_t>(levels) ||
        br.from_level == br.level) {
      fail(tag + "bad level pair " + std::to_string(br.level) + " <- " +
           std::to_string(br.from_level));
      continue;
    }
    want_used[static_cast<std::size_t>(br.level)] += br.bytes;
    if (br.from_level >= 0) {
      want_used[static_cast<std::size_t>(br.from_level)] += br.bytes;
      if (br.level == 0) {
        ++want_fetch;
      } else {
        ++want_evict;
      }
    }
    if (!br.waiters.empty() &&
        state_of(br) != ooc::BlockState::FetchInFlight) {
      fail(tag + "has fetch waiters but no fetch in flight");
    }
    for (const TaskRec* w : br.waiters) {
      auto it = want_waits.find(w);
      if (it == want_waits.end()) {
        fail(tag + "waiter is not an admitted task with missing deps");
      } else {
        ++it->second;
      }
    }
    const auto ref = want_ref.find(b);
    const std::uint32_t wr = ref == want_ref.end() ? 0 : ref->second;
    if (br.refcount != wr) {
      fail(tag + "refcount " + std::to_string(br.refcount) +
           " but admitted tasks reference it " + std::to_string(wr) + "x");
    }
    if (at_quiescence) {
      if (br.refcount != 0) fail(tag + "refcount held at quiescence");
      if (br.from_level >= 0) fail(tag + "still migrating at quiescence");
      if (!br.waiters.empty()) fail(tag + "waiters at quiescence");
    }
  }

  for (const auto& [tr, seen] : want_waits) {
    const std::uint32_t missing =
        tr->missing.load(std::memory_order_relaxed);
    if (missing != seen) {
      fail("task " + std::to_string(tr->desc.id) + ": missing " +
           std::to_string(missing) + " != " + std::to_string(seen) +
           " waiter entries");
    }
  }

  // Budgets: TierBudget::used() must equal the block-record sum for
  // every bounded level (exact here — all mutators are locked out).
  for (std::size_t k = 0; k + 1 < levels; ++k) {
    const std::uint64_t used = budgets_[k]->used();
    if (used != want_used[k]) {
      fail("level " + std::to_string(k) + ": budget used " +
           std::to_string(used) + " != " + std::to_string(want_used[k]) +
           " summed over block records");
    }
  }

  if (queued != n_waiting_.load(std::memory_order_acquire)) {
    fail("n_waiting " + std::to_string(n_waiting_.load()) + " != " +
         std::to_string(queued) + " queued tasks");
  }
  const std::size_t live = records - queued;
  if (live != n_live_.load(std::memory_order_acquire)) {
    fail("n_live " + std::to_string(n_live_.load()) + " != " +
         std::to_string(live) + " admitted task records");
  }
  if (want_fetch != n_inflight_fetch_.load(std::memory_order_acquire) ||
      want_evict != n_inflight_evict_.load(std::memory_order_acquire)) {
    fail("in-flight counters fetch=" +
         std::to_string(n_inflight_fetch_.load()) + "/evict=" +
         std::to_string(n_inflight_evict_.load()) +
         " != block records fetch=" + std::to_string(want_fetch) +
         "/evict=" + std::to_string(want_evict));
  }
  for (std::size_t pe = 0; pe < pe_claims_.size(); ++pe) {
    const std::uint64_t held =
        pe_claims_[pe].bytes.load(std::memory_order_relaxed);
    if (held != want_claims[pe]) {
      fail("pe " + std::to_string(pe) + ": claim ledger " +
           std::to_string(held) + " != " + std::to_string(want_claims[pe]) +
           " over admitted tasks");
    }
  }
  if (at_quiescence && !quiescent()) {
    fail("quiescent() false at claimed quiescence");
  }
  return v;
}

} // namespace hmr::rt
