#pragma once
// ShardedEngine: a concurrent, sharded implementation of the
// PolicyEngine protocol for the threaded runtime's hot path.
//
// The single ooc::PolicyEngine is a serial state machine: the runtime
// wraps every event (task arrival, fetch/evict completion, task
// completion) in one global mutex, so with many PEs the scheduler
// itself becomes the bottleneck — exactly the overhead the paper's
// runtime is supposed to avoid.  This engine de-serializes it:
//
//   * PEs are partitioned into shards; each shard owns the wait queues
//     and task records of its PEs behind its own mutex, so admission
//     and completion on different PE groups never contend;
//   * block records live in a global table behind *striped* mutexes
//     (stripe = block id mod 64); an admission locks only the stripes
//     of its dependences, in sorted order, making the all-or-nothing
//     claim atomic without any global lock;
//   * every bounded hierarchy level has its own ooc::TierBudget:
//     per-shard sub-budgets with atomic claim/release and a
//     work-stealing slow path, so a claim fails only when the node
//     genuinely lacks the bytes;
//   * idle/quiescence counters and per-PE fairness claims are padded
//     atomics.
//
// N-tier placement: fetches promote from any level to level 0;
// evictions probe the middle levels' budgets in speed order
// (try_claim = an exact, concurrent fit check) and land on the first
// with room, overflowing to the unbounded bottom.  Unlike the serial
// engine there is no watermark trim of middle levels — a middle tier
// fills, then overflows; it drains when its blocks are promoted back.
// The trade keeps every eviction a single-stripe operation (a trim
// would lock victim stripes from a completion context).  Two-level
// configs behave exactly like the PR 2 engine.
//
// Scope: the MultiIo strategy with eager eviction (the paper's best
// configuration and the runtime's default).  SingleIo's round-robin,
// SyncNoIo, lazy eviction's shared LRU and the adaptive advisor are
// inherently global and stay on the single-engine path; the Runtime
// picks per configuration.  Policy semantics mirror the serial engine:
// all-or-nothing admission, per-PE FIFO wait queues, fair-admission
// share gate, fetch dedup via waiter lists, refcount-guarded eviction,
// and capacity released only when an eviction has finished.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ooc/engine.hpp"
#include "ooc/policy_engine.hpp"
#include "ooc/tier_budget.hpp"
#include "ooc/types.hpp"
#include "trace/contention.hpp"

namespace hmr::rt {

class ShardedEngine : public ooc::Engine {
public:
  struct Config {
    std::int32_t num_pes = 1;
    /// Number of shards (<= num_pes); 0 = one shard per PE.
    std::int32_t num_shards = 0;
    std::uint64_t fast_capacity = 0;
    bool fair_admission = true;
    bool writeonly_nocopy = false;
    /// Evictions run inline on the completing worker (kWorkerInline)
    /// instead of being queued on the PE's IO agent.
    bool evict_by_worker = false;
    /// Placement hierarchy, fastest level first (same contract as
    /// ooc::PolicyEngine::Config::tiers).  Empty = the classic
    /// two-level hierarchy from fast_capacity with tier ids 1/0.
    std::vector<ooc::TierDesc> tiers;
    /// Probe middle-level budgets before overflowing demotions to the
    /// bottom.  false = always demote to the bottom level.
    bool demote_cascade = true;
  };

  explicit ShardedEngine(Config cfg,
                         trace::ContentionStats* lock_stats = nullptr);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  const Config& config() const { return cfg_; }
  std::int32_t num_shards() const {
    return static_cast<std::int32_t>(shards_.size());
  }

  // ---- block registry ----
  // Registration/removal may race with events on *other* blocks but
  // callers serialize add/remove themselves (the Runtime allocates
  // under one small mutex to keep id spaces aligned with the
  // MemoryManager).  Movement strategies always place fresh blocks on
  // the bottom level; the returned tier id says which one that is.

  ooc::TierId add_block(ooc::BlockId b, std::uint64_t bytes) override;
  void remove_block(ooc::BlockId b) override;

  // ---- events (thread-safe; each returns commands to execute) ----

  std::vector<ooc::Command> on_task_arrived(
      const ooc::TaskDesc& task) override;
  std::vector<ooc::Command> on_fetch_complete(ooc::BlockId b) override;
  std::vector<ooc::Command> on_evict_complete(ooc::BlockId b) override;
  /// `pe` is the PE the task ran on (the executor always knows it; it
  /// routes the completion to the right shard without a global map).
  std::vector<ooc::Command> on_task_complete(ooc::TaskId t,
                                             std::int32_t pe) override;

  // ---- introspection ----

  ooc::PolicyEngine::Stats stats() const; // summed over shards
  ooc::EngineStats engine_stats() const override { return stats(); }
  /// One shard's counters (telemetry export labels them shard="s").
  ooc::PolicyEngine::Stats shard_stats(std::int32_t s) const;
  bool quiescent() const override;
  std::uint64_t fast_used() const { return budgets_[0]->used(); }
  std::uint64_t fast_capacity() const { return cfg_.fast_capacity; }
  std::uint64_t budget_steals() const { return budgets_[0]->steals(); }
  std::size_t total_waiting() const override {
    return n_waiting_.load(std::memory_order_acquire);
  }
  const std::vector<ooc::TierDesc>& tiers() const override {
    return tiers_;
  }
  std::int32_t num_levels() const {
    return static_cast<std::int32_t>(tiers_.size());
  }
  /// Bytes claimed on a bounded hierarchy level (approximate under
  /// concurrency, like TierBudget::used).
  std::uint64_t tier_used(std::int32_t level) const override {
    const auto& b = budgets_[static_cast<std::size_t>(level)];
    return b ? b->used() : 0;
  }
  ooc::BlockState block_state(ooc::BlockId b) const override;
  std::int32_t block_level(ooc::BlockId b) const override;
  std::uint32_t refcount(ooc::BlockId b) const override;

  /// Engine events processed since construction (any kind).  The stall
  /// watchdog reads this as a progress signal: outstanding work with
  /// this counter frozen means the protocol is wedged, not slow.
  std::uint64_t events_processed() const {
    return events_.load(std::memory_order_relaxed);
  }

  /// Cross-check the bookkeeping against ground truth recomputed from
  /// the block/task records: per-level TierBudget used-bytes vs the
  /// sum of resident + in-flight block sizes, waiting/live/in-flight
  /// counters, per-PE claim ledgers, refcounts vs admitted tasks'
  /// dependence lists, waiter-list sanity.  Returns one line per
  /// violation (empty = clean).  Takes every shard, registry and
  /// stripe lock; exact only at quiescence (budget releases commit
  /// outside the stripe critical sections), which is when the Runtime
  /// calls it — from wait_idle with `at_quiescence = true`.
  std::vector<std::string> audit_invariants(
      bool at_quiescence) const override;

private:
  static constexpr std::size_t kStripes = 64;
  static constexpr std::size_t kChunkShift = 9; // 512 blocks per chunk
  static constexpr std::size_t kChunkSize = 1u << kChunkShift;
  static constexpr std::size_t kMaxChunks = 1u << 15; // 16M blocks

  struct TaskRec {
    ooc::TaskDesc desc;
    std::int32_t shard = 0;
    std::uint64_t claim_bytes = 0;
    std::atomic<std::uint32_t> missing{0};
  };

  struct BlockRec {
    std::uint64_t bytes = 0;
    /// Hierarchy level the block occupies; while migrating, the
    /// destination (same encoding as the serial engine's BlockRec).
    std::int32_t level = 0;
    std::int32_t from_level = -1; // migration source, -1 = resident
    std::uint32_t refcount = 0;
    /// Sub-budget shard charged for the block's `level` claim.
    std::int32_t claim_shard = 0;
    /// Sub-budget shard charged for the `from_level` claim, released
    /// when the migration lands (valid while from_level >= 0).
    std::int32_t src_claim_shard = 0;
    bool live = false;
    std::vector<TaskRec*> waiters; // admitted tasks awaiting the fetch
  };

  static ooc::BlockState state_of(const BlockRec& br) {
    if (br.from_level >= 0) {
      return br.level == 0 ? ooc::BlockState::FetchInFlight
                           : ooc::BlockState::EvictInFlight;
    }
    return br.level == 0 ? ooc::BlockState::InFast
                         : ooc::BlockState::InSlow;
  }

  struct alignas(64) Shard {
    std::mutex mu;
    /// Wait queues of the shard's PEs, indexed by (pe - first_pe).
    std::vector<std::deque<ooc::TaskId>> wait_q;
    std::unordered_map<ooc::TaskId, std::unique_ptr<TaskRec>> tasks;
    ooc::PolicyEngine::Stats stats;
  };

  struct alignas(64) Stripe {
    std::mutex mu;
  };

  struct alignas(64) PeClaim {
    std::atomic<std::uint64_t> bytes{0};
  };

  std::int32_t shard_of(std::int32_t pe) const {
    return pe / pes_per_shard_;
  }

  BlockRec& block(ooc::BlockId b) const;
  Stripe& stripe(ooc::BlockId b) const {
    return stripes_[static_cast<std::size_t>(b) % kStripes];
  }

  /// Lock the stripes of every dependence of `t`, in sorted order.
  class StripeLockSet;

  /// Attempt to admit `tr` (FIFO head or arrival fast path).  With
  /// `only_if_free`, admits only when no fresh fast-tier bytes are
  /// needed (the paper's arrival fast path, which skips the queue and
  /// the fairness gate).  Caller holds tr's shard mutex.
  bool try_admit(Shard& sh, TaskRec& tr, bool only_if_free,
                 std::vector<ooc::Command>& cmds);

  /// Admit admissible FIFO heads of every wait queue in `sh`.
  /// Caller holds sh.mu.
  void drain_locked(Shard& sh, std::vector<ooc::Command>& cmds);

  /// Lock shard `s` (counted) and drain it.
  void drain_shard(std::size_t s, std::vector<ooc::Command>& cmds);

  void lock_shard(std::size_t s) {
    trace::lock_counted(shards_[s].mu, lock_stats_, s);
  }

  std::int32_t bottom() const {
    return static_cast<std::int32_t>(tiers_.size()) - 1;
  }

  Config cfg_;
  std::int32_t pes_per_shard_ = 1;
  std::vector<ooc::TierDesc> tiers_; // resolved hierarchy
  /// One budget per bounded level (index = level); nullptr for the
  /// unbounded bottom level.
  std::vector<std::unique_ptr<ooc::TierBudget>> budgets_;
  trace::ContentionStats* lock_stats_;

  std::vector<Shard> shards_;
  mutable std::array<Stripe, kStripes> stripes_;
  std::vector<PeClaim> pe_claims_;

  // Block table: chunked stable storage so readers index without a
  // registry lock while add_block appends.
  std::mutex registry_mu_;
  std::vector<std::atomic<BlockRec*>> chunks_;
  std::atomic<std::uint64_t> n_blocks_{0};

  alignas(64) std::atomic<std::uint64_t> events_{0};
  alignas(64) std::atomic<std::size_t> n_waiting_{0};
  alignas(64) std::atomic<std::size_t> n_live_{0};
  alignas(64) std::atomic<std::size_t> n_inflight_fetch_{0};
  alignas(64) std::atomic<std::size_t> n_inflight_evict_{0};
};

} // namespace hmr::rt
