#include "serve/admission.hpp"

#include "util/check.hpp"

namespace hmr::serve {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Admit: return "admit";
    case Verdict::Defer: return "defer";
    case Verdict::Reject: return "reject";
  }
  return "?";
}

AdmissionController::AdmissionController(const TenantRegistry& reg,
                                         AdmissionConfig cfg, double now)
    : reg_(reg),
      cfg_(cfg),
      order_(reg.by_priority()),
      q_(reg.size()),
      skips_(reg.size(), 0),
      last_rel_(reg.size(), 0) {
  buckets_.reserve(reg.size());
  for (const auto& d : reg.all()) {
    buckets_.emplace_back(d.rate_tasks_per_s, d.burst_tasks, now);
  }
}

Verdict AdmissionController::decide(TenantId t, double now,
                                    bool would_borrow, bool contended,
                                    bool engine_idle) {
  if (!cfg_.enabled) return Verdict::Admit;
  const auto& d = reg_.desc(t);
  // Queue-depth backpressure fires first: a tenant that cannot even
  // park more work gets the Reject verdict, not a longer queue.
  if (d.max_queued > 0 && queued(t) >= d.max_queued) {
    return Verdict::Reject;
  }
  // Tasks of one tenant admit in submission order.
  if (queued(t) > 0) return Verdict::Defer;
  if (engine_idle) return Verdict::Admit; // work conserving
  // Quota gate: a borrower yields only while someone with unused
  // reservation is actually waiting — otherwise idle capacity flows.
  if (would_borrow && contended) return Verdict::Defer;
  if (!buckets_[static_cast<std::size_t>(t)].try_take(now)) {
    return Verdict::Defer;
  }
  return Verdict::Admit;
}

void AdmissionController::push(TenantId t, ooc::TaskDesc task) {
  q_[static_cast<std::size_t>(t)].push_back(std::move(task));
  ++n_queued_;
}

bool AdmissionController::pop(double now, bool engine_idle,
                              ooc::TaskDesc& out, bool& forced) {
  forced = false;
  if (n_queued_ == 0) return false;

  std::size_t pick = q_.size();
  // Starvation guard: an aged head outranks everyone.
  if (cfg_.starvation_limit > 0) {
    for (const TenantId t : order_) {
      const std::size_t s = static_cast<std::size_t>(t);
      if (!q_[s].empty() && skips_[s] >= cfg_.starvation_limit) {
        pick = s;
        forced = true;
        break;
      }
    }
  }
  if (pick == q_.size()) {
    // Strict QoS-rank order; round-robin (least recently released
    // first) among equal ranks.  Buckets gate unless the engine is
    // idle — pacing shapes contention, never idles the machine.
    int best_rank = 0;
    std::uint64_t best_seq = 0;
    for (const TenantId t : order_) {
      const std::size_t s = static_cast<std::size_t>(t);
      const int rank = qos_rank(reg_.desc(t).qos);
      // order_ is rank-sorted: with a candidate in hand, later
      // entries can only rank worse.
      if (pick != q_.size() && rank > best_rank) break;
      if (q_[s].empty()) continue;
      // Peek, don't take: only the picked tenant pays a token.
      if (!engine_idle && buckets_[s].tokens(now) < 1.0) continue;
      if (pick == q_.size() || rank < best_rank ||
          (rank == best_rank && last_rel_[s] < best_seq)) {
        pick = s;
        best_rank = rank;
        best_seq = last_rel_[s];
      }
    }
    if (pick == q_.size()) return false;
    if (!engine_idle) {
      buckets_[pick].try_take(now);
    }
  }

  // Everyone of lower priority who still waits was just passed over.
  const int picked_rank = qos_rank(reg_.desc(
      static_cast<TenantId>(pick)).qos);
  for (std::size_t s = 0; s < q_.size(); ++s) {
    if (s != pick && !q_[s].empty() &&
        qos_rank(reg_.desc(static_cast<TenantId>(s)).qos) >=
            picked_rank) {
      ++skips_[s];
    }
  }
  skips_[pick] = 0;
  last_rel_[pick] = ++seq_;

  out = std::move(q_[pick].front());
  q_[pick].pop_front();
  --n_queued_;
  return true;
}

} // namespace hmr::serve
