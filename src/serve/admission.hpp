#pragma once
// QoS-aware admission control for multi-tenant serving.
//
// The AdmissionController fronts the engine's own wait queues with a
// per-tenant gate: a token bucket paces each tenant's arrival rate, a
// queue-depth bound gives backpressure verdicts, and deferred work is
// released in QoS-priority order with a starvation guard so best-
// effort tenants always make progress.  Verdicts are advisory — the
// caller (serve::TenantEngine) executes them: Admit forwards to the
// inner engine immediately, Defer parks the task here, Reject tells a
// verdict-aware submitter to drop it (fire-and-forget paths degrade
// Reject to Defer; the rejection is still counted by the caller).
//
// Work conserving by design: when the inner engine has no live work,
// decide() always admits and release() ignores empty buckets — pacing
// must shape contention, never idle the machine.
//
// Not thread-safe; TenantEngine guards it with its event mutex.

#include <cstdint>
#include <deque>
#include <vector>

#include "ooc/types.hpp"
#include "serve/tenant.hpp"

namespace hmr::serve {

enum class Verdict : std::uint8_t { Admit = 0, Defer = 1, Reject = 2 };

const char* verdict_name(Verdict v);

struct AdmissionConfig {
  /// Master switch.  Off = every submission admits straight through
  /// (quotas still account, dispatch still prioritizes if enabled).
  bool enabled = true;
  /// Executors order queued (not-yet-started) fetches by tenant QoS
  /// rank, letting an SLO tenant's fetch displace a best-effort
  /// tenant's queued prefetch.
  bool priority_dispatch = true;
  /// Force-release a deferred head after this many higher-priority
  /// releases passed it over (0 = never force).  The aging guard that
  /// turns priority order into mere preference, not starvation.
  std::uint32_t starvation_limit = 64;
};

/// Standard token bucket; time comes from the caller so the sim can
/// feed virtual seconds.
class TokenBucket {
public:
  TokenBucket() = default;
  TokenBucket(double rate_per_s, double burst, double now)
      : rate_(rate_per_s), burst_(burst), tokens_(burst), last_(now) {}

  bool try_take(double now) {
    if (rate_ <= 0) return true; // unlimited
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens(double now) {
    refill(now);
    return rate_ <= 0 ? burst_ : tokens_;
  }

private:
  void refill(double now) {
    if (now > last_) {
      tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
      last_ = now;
    }
  }

  double rate_ = 0;
  double burst_ = 0;
  double tokens_ = 0;
  double last_ = 0;
};

class AdmissionController {
public:
  AdmissionController(const TenantRegistry& reg, AdmissionConfig cfg,
                      double now);

  const AdmissionConfig& config() const { return cfg_; }

  /// Verdict for one submission by tenant `t` at time `now`.
  /// `would_borrow`: the tenant is over its top-level reservation;
  /// `contended`: an under-reserve tenant has deferred work waiting;
  /// `engine_idle`: the inner engine has nothing live (always admit).
  Verdict decide(TenantId t, double now, bool would_borrow,
                 bool contended, bool engine_idle);

  /// Park a deferred (or degraded-rejected) task.
  void push(TenantId t, ooc::TaskDesc task);

  /// Pop the next releasable deferred task: tenants in (QoS rank, id)
  /// order, bucket-gated unless `engine_idle`, with the starvation
  /// guard force-releasing an aged head (`forced` reports it).
  /// False = nothing releasable right now.
  bool pop(double now, bool engine_idle, ooc::TaskDesc& out,
           bool& forced);

  std::size_t queued(TenantId t) const {
    return q_[static_cast<std::size_t>(t)].size();
  }
  std::size_t total_queued() const { return n_queued_; }
  /// Any tenant under its reservation with deferred work?  The caller
  /// supplies the per-tenant over-reserve test.
  template <typename OverReserveFn>
  bool underreserve_waiter(OverReserveFn over_reserve) const {
    for (std::size_t t = 0; t < q_.size(); ++t) {
      if (!q_[t].empty() && !over_reserve(static_cast<TenantId>(t))) {
        return true;
      }
    }
    return false;
  }

private:
  const TenantRegistry& reg_;
  AdmissionConfig cfg_;
  std::vector<TenantId> order_; // by (qos rank, id)
  std::vector<std::deque<ooc::TaskDesc>> q_;
  /// Times a lower-priority head was passed over by a release.
  std::vector<std::uint32_t> skips_;
  std::vector<TokenBucket> buckets_;
  std::size_t n_queued_ = 0;
  /// Release sequence stamps: least-recently-released wins ties
  /// among equal QoS ranks (round-robin fairness).
  std::vector<std::uint64_t> last_rel_;
  std::uint64_t seq_ = 0;
};

} // namespace hmr::serve
