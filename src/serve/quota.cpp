#include "serve/quota.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/check.hpp"

namespace hmr::serve {

QuotaLedger::QuotaLedger(const TenantRegistry& reg,
                         const std::vector<ooc::TierDesc>& tiers)
    : n_tenants_(reg.size()) {
  capacity_.reserve(tiers.size());
  for (const auto& td : tiers) capacity_.push_back(td.capacity);
  const std::size_t levels = capacity_.size();
  used_.assign((n_tenants_ + 1) * levels, 0);
  reserved_.assign(n_tenants_ * levels, 0);
  // Reservation fractions must leave the level coherent: sum <= 1.
  for (std::size_t l = 0; l < levels; ++l) {
    double sum = 0;
    for (const auto& d : reg.all()) {
      sum += d.reserve_for(l);
      reserved_[d.id * levels + l] = static_cast<std::uint64_t>(
          d.reserve_for(l) * static_cast<double>(capacity_[l]));
    }
    HMR_CHECK_MSG(sum <= 1.0 + 1e-9,
                  "tenant tier_reserve fractions exceed 1 on a level");
  }
}

bool QuotaLedger::transfer(TenantId prev_owner, TenantId owner,
                           std::int32_t from_level, std::int32_t to_level,
                           std::uint64_t bytes) {
  release(prev_owner, from_level, bytes);
  charge(owner, to_level, bytes);
  return over_reserve(owner, to_level);
}

void QuotaLedger::move(TenantId owner, std::int32_t from_level,
                       std::int32_t to_level, std::uint64_t bytes) {
  release(owner, from_level, bytes);
  charge(owner, to_level, bytes);
}

void QuotaLedger::charge(TenantId owner, std::int32_t level,
                         std::uint64_t bytes) {
  used_[slot(owner) * capacity_.size() +
        static_cast<std::size_t>(level)] += bytes;
}

void QuotaLedger::release(TenantId owner, std::int32_t level,
                          std::uint64_t bytes) {
  auto& u = used_[slot(owner) * capacity_.size() +
                  static_cast<std::size_t>(level)];
  HMR_CHECK_MSG(u >= bytes, "quota release exceeds tenant balance");
  u -= bytes;
}

std::uint64_t QuotaLedger::used(TenantId t, std::int32_t level) const {
  return used_[slot(t) * capacity_.size() +
               static_cast<std::size_t>(level)];
}

std::uint64_t QuotaLedger::reserved(TenantId t,
                                    std::int32_t level) const {
  if (t == kUnowned) return 0;
  return reserved_[static_cast<std::size_t>(t) * capacity_.size() +
                   static_cast<std::size_t>(level)];
}

std::uint64_t QuotaLedger::level_total(std::int32_t level) const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s <= n_tenants_; ++s) {
    sum += used_[s * capacity_.size() + static_cast<std::size_t>(level)];
  }
  return sum;
}

std::vector<std::string> QuotaLedger::audit(const ooc::Engine& inner,
                                            bool at_quiescence) const {
  std::vector<std::string> out;
  char buf[192];
  for (std::int32_t l = 0; l < num_levels(); ++l) {
    const std::uint64_t cap = capacity_[static_cast<std::size_t>(l)];
    const std::uint64_t total = level_total(l);
    if (cap != 0 && total > cap) {
      std::snprintf(buf, sizeof(buf),
                    "ledger level %d holds %" PRIu64
                    " B over its %" PRIu64 " B capacity",
                    l, total, cap);
      out.emplace_back(buf);
    }
    // In-flight migrations are charged here at command time but land
    // in the engine's books at completion; the sums only meet at rest.
    // Unbounded levels are skipped when the engine reports nothing for
    // them: the sharded engine keeps no budget (hence no used counter)
    // for its bottom level, so there is nothing to reconcile against.
    if (cap == 0 && inner.tier_used(l) == 0) continue;
    if (at_quiescence && total != inner.tier_used(l)) {
      std::snprintf(buf, sizeof(buf),
                    "ledger level %d: %" PRIu64
                    " B charged vs engine tier_used %" PRIu64 " B",
                    l, total, inner.tier_used(l));
      out.emplace_back(buf);
    }
  }
  return out;
}

} // namespace hmr::serve
