#pragma once
// QuotaLedger: per-tenant byte accounting over the placement
// hierarchy, driven purely by observing the commands an ooc::Engine
// emits (serve::TenantEngine is the observer).
//
// Every block has exactly one owner at a time: the tenant whose fetch
// last promoted it (blocks start life unowned on the bottom level).
// A Fetch command moves the block's bytes from the previous owner's
// source-level balance to the requester's top-level balance; an Evict
// command moves them between the owner's levels; remove_block releases
// them.  Because each transition is a single move, the per-level sum
// over owners is conserved by construction — `audit` cross-checks it
// against the inner engine's tier_used at quiescence (in-flight
// migrations make the comparison approximate otherwise, exactly like
// Engine::audit_invariants).
//
// A tenant's *reservation* on a bounded level is its TenantDesc
// fraction of that level's capacity.  Usage beyond it is *borrowing*
// — allowed (idle capacity must not go to waste) but revocable: the
// admission gate defers over-reserve tenants while an under-reserve
// tenant waits, and QuotaAdvisor marks over-reserve tenants' blocks
// demote-first so reclaim preys on borrowers.
//
// Not thread-safe; TenantEngine guards it with its event mutex.

#include <cstdint>
#include <string>
#include <vector>

#include "ooc/engine.hpp"
#include "ooc/types.hpp"
#include "serve/tenant.hpp"

namespace hmr::serve {

class QuotaLedger {
public:
  /// Owner id for bytes no tenant has claimed yet (fresh blocks).
  static constexpr TenantId kUnowned = ~TenantId{0};

  QuotaLedger(const TenantRegistry& reg,
              const std::vector<ooc::TierDesc>& tiers);

  // ---- transitions (bytes must match the block's size) ----

  /// Fetch observed: `bytes` leave (`prev_owner`, from_level) and are
  /// charged to (`owner`, to_level).  Returns true when the charge
  /// pushed `owner` past its reservation on `to_level` (a borrow).
  bool transfer(TenantId prev_owner, TenantId owner,
                std::int32_t from_level, std::int32_t to_level,
                std::uint64_t bytes);
  /// Evict observed: the owner's bytes move between levels.
  void move(TenantId owner, std::int32_t from_level,
            std::int32_t to_level, std::uint64_t bytes);
  /// Block registered: charge the unowned balance on `level`.
  void charge(TenantId owner, std::int32_t level, std::uint64_t bytes);
  /// Block removed: release from the owner's `level` balance.
  void release(TenantId owner, std::int32_t level, std::uint64_t bytes);

  // ---- balances ----

  std::uint64_t used(TenantId t, std::int32_t level) const;
  /// reserve fraction * level capacity; 0 on the unbounded bottom.
  std::uint64_t reserved(TenantId t, std::int32_t level) const;
  bool over_reserve(TenantId t, std::int32_t level) const {
    return used(t, level) > reserved(t, level);
  }
  /// Sum over all owners (tenants + unowned) on `level`.
  std::uint64_t level_total(std::int32_t level) const;
  std::int32_t num_levels() const {
    return static_cast<std::int32_t>(capacity_.size());
  }

  /// Internal consistency plus (at quiescence) conservation against
  /// the engine the observed commands came from.  One line per
  /// violation; empty = clean.
  std::vector<std::string> audit(const ooc::Engine& inner,
                                 bool at_quiescence) const;

private:
  std::size_t slot(TenantId t) const {
    return t == kUnowned ? n_tenants_ : static_cast<std::size_t>(t);
  }

  std::size_t n_tenants_;
  std::vector<std::uint64_t> capacity_; // per level; 0 = unbounded
  /// used_[slot(t) * levels + level]; the extra slot is kUnowned.
  std::vector<std::uint64_t> used_;
  std::vector<std::uint64_t> reserved_; // same layout, tenants only
};

} // namespace hmr::serve
