#include "serve/tenant.hpp"

#include <algorithm>

namespace hmr::serve {

const char* qos_class_name(QosClass q) {
  switch (q) {
    case QosClass::LatencySLO: return "latency_slo";
    case QosClass::BestEffort: return "best_effort";
    case QosClass::Batch: return "batch";
  }
  return "?";
}

std::vector<TenantId> TenantRegistry::by_priority() const {
  std::vector<TenantId> ids(descs_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<TenantId>(i);
  }
  std::stable_sort(ids.begin(), ids.end(), [&](TenantId a, TenantId b) {
    return qos_rank(descs_[a].qos) < qos_rank(descs_[b].qos);
  });
  return ids;
}

} // namespace hmr::serve
