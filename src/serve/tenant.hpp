#pragma once
// Tenant model for multi-tenant serving (docs/SERVING.md).
//
// The paper's runtime assumes one bandwidth-sensitive application owns
// the memory hierarchy; the serving subsystem fields many concurrent
// job streams over it.  A *tenant* is one such stream: a QoS class, an
// optional latency SLO, a token-bucket arrival rate, and a guaranteed
// share of each bounded placement level.  Tenant descriptors are fixed
// at registration time (before the engine starts taking events); all
// mutable per-tenant state lives in serve::TenantEngine, which guards
// it with its own mutex.

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hmr::serve {

using TenantId = std::uint32_t;

/// Priority classes, highest first.  Admission releases deferred work
/// in rank order and the executors' priority dispatch lets a
/// higher-rank tenant's fetch displace a lower-rank tenant's queued
/// (not-yet-started) prefetch.
enum class QosClass : std::uint8_t {
  LatencySLO = 0, // interactive / latency-bound: admitted first
  BestEffort = 1, // throughput jobs: admitted when SLO demand is met
  Batch = 2,      // background: admitted last
};

const char* qos_class_name(QosClass q);

/// Lower = more important.
inline int qos_rank(QosClass q) { return static_cast<int>(q); }

struct TenantDesc {
  /// Dense ids starting at 0 (TaskDesc::tenant defaults to 0, so the
  /// first registered tenant is the default tenant).
  TenantId id = 0;
  std::string name;
  QosClass qos = QosClass::BestEffort;

  /// Informational SLO: target p99 fetch latency in seconds (virtual
  /// seconds under the DES).  0 = no SLO.  Exported with the tenant's
  /// stats so operators and benches can compare attained vs target;
  /// admission uses the QoS class, not this number.
  double slo_p99_fetch_s = 0;

  /// Token-bucket rate limit on task admission: sustained tasks per
  /// second (0 = unlimited) with `burst_tasks` of depth.  Work
  /// conserving: the bucket only defers work while the engine has
  /// other live work to run.
  double rate_tasks_per_s = 0;
  double burst_tasks = 32;

  /// Queue-depth backpressure: a submission whose tenant already has
  /// this many deferred tasks gets a Reject verdict (0 = unbounded).
  /// Fire-and-forget submission paths (rt::Runtime::send_prefetch)
  /// cannot drop work and degrade Reject to Defer; the rejection is
  /// still counted.
  std::size_t max_queued = 0;

  /// Guaranteed fraction of each bounded placement level's capacity,
  /// indexed by hierarchy level (missing levels = 0).  The sum over
  /// tenants must be <= 1 per level.  Usage beyond the reservation is
  /// *borrowing*: allowed while the pool has free bytes and no
  /// under-reserve tenant is waiting, and revocable — quota-aware
  /// demotion prefers victim blocks owned by over-quota tenants.
  std::vector<double> tier_reserve;

  double reserve_for(std::size_t level) const {
    return level < tier_reserve.size() ? tier_reserve[level] : 0.0;
  }
};

/// Immutable tenant table: descriptors + priority order.  Mutable
/// per-tenant state (queues, counters, quota usage) lives in
/// TenantEngine / QuotaLedger.
class TenantRegistry {
public:
  /// Register a tenant; ids must arrive dense and in order (0, 1, …).
  void add(TenantDesc d) {
    HMR_CHECK_MSG(d.id == descs_.size(),
                  "tenant ids must be dense and registered in order");
    HMR_CHECK_MSG(!d.name.empty(), "tenant needs a name");
    for (std::size_t l = 0; l < d.tier_reserve.size(); ++l) {
      HMR_CHECK_MSG(d.tier_reserve[l] >= 0 && d.tier_reserve[l] <= 1.0,
                    "tier_reserve fractions must be within [0, 1]");
    }
    descs_.push_back(std::move(d));
  }

  std::size_t size() const { return descs_.size(); }
  bool empty() const { return descs_.empty(); }

  const TenantDesc& desc(TenantId t) const {
    HMR_CHECK_MSG(t < descs_.size(), "unknown tenant id");
    return descs_[t];
  }

  const std::vector<TenantDesc>& all() const { return descs_; }

  /// Tenant ids sorted by (qos rank, id): the admission release order.
  std::vector<TenantId> by_priority() const;

private:
  std::vector<TenantDesc> descs_;
};

/// Per-tenant observable state, snapshotted by TenantEngine for the
/// /tenants route, metrics export and the serve_qos bench.
struct TenantSnapshot {
  TenantDesc desc;

  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;  // handed to the inner engine
  std::uint64_t deferred = 0;  // total Defer verdicts
  std::uint64_t rejected = 0;  // queue-depth backpressure verdicts
  std::uint64_t forced = 0;    // starvation-guard force admissions
  std::uint64_t completed = 0;
  std::uint64_t queued_now = 0; // currently deferred

  std::uint64_t fetches = 0;
  std::uint64_t fetch_bytes = 0;
  std::uint64_t evicts = 0;
  std::uint64_t evict_bytes = 0;

  /// Executor priority dispatch: queued prefetches of other tenants
  /// this tenant's fetches jumped ahead of / times this tenant's
  /// queued prefetches were jumped.
  std::uint64_t displaced = 0;
  std::uint64_t displaced_by = 0;

  /// Level-0 claims made beyond the tenant's reservation.
  std::uint64_t borrows = 0;

  /// Bytes currently charged per hierarchy level.
  std::vector<std::uint64_t> quota_used;
  std::vector<std::uint64_t> quota_reserved;

  /// Fetch command-to-completion latency (queueing included).
  std::uint64_t fetch_samples = 0;
  double fetch_p50_s = 0;
  double fetch_p99_s = 0;
  double fetch_max_s = 0;

  /// Attained fetch p99 over the rolling ServeConfig::burn_window_s
  /// window, and the SLO burn rate (window p99 / slo_p99_fetch_s).
  /// Burn > 1 = the tenant is currently missing its SLO; 0 when the
  /// tenant has no SLO target or no completions in the window.
  double window_p99_s = 0;
  double slo_burn = 0;

  double first_completion_s = 0; // clock() at first/last completion
  double last_completion_s = 0;
};

} // namespace hmr::serve
