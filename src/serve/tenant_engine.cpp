#include "serve/tenant_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "telemetry/metrics.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace hmr::serve {

namespace {

double steady_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point t0 = clock::now();
  return std::chrono::duration<double>(clock::now() - t0).count();
}

} // namespace

/// Quota-aware demotion preference: blocks whose owner borrows beyond
/// its top-level reservation are marked demote-first and sent straight
/// to the bottom level, so reclaim preys on over-quota tenants before
/// touching anyone's guaranteed share.  Called by the inner serial
/// engine from within TenantEngine's critical section — it reads the
/// ledger without locking (and must not try to lock mu_).
class TenantEngine::Advisor : public ooc::AdviceProvider {
public:
  explicit Advisor(const TenantEngine& te) : te_(te) {}

  ooc::BlockAdvice advise(ooc::BlockId b,
                          std::uint64_t /*bytes*/) const override {
    ooc::BlockAdvice adv;
    const auto it = te_.blocks_.find(b);
    if (it == te_.blocks_.end()) return adv;
    const TenantId owner = it->second.owner;
    if (owner == QuotaLedger::kUnowned) return adv;
    if (te_.ledger_.over_reserve(owner, 0)) {
      adv.demote_first = true;
      adv.demote_level = ooc::kLevelFar;
    }
    return adv;
  }

  bool may_bypass() const override { return false; }

private:
  const TenantEngine& te_;
};

TenantEngine::TenantEngine(ooc::Engine& inner, ServeConfig cfg,
                           double now)
    : inner_(inner),
      reg_([&] {
        TenantRegistry r;
        for (auto& d : cfg.tenants) r.add(std::move(d));
        return r;
      }()),
      clock_(steady_seconds),
      ledger_(reg_, inner.tiers()),
      adm_(reg_, cfg.admission, now),
      tenants_(reg_.size()) {
  burn_window_s_ = cfg.burn_window_s;
  HMR_CHECK_MSG(!reg_.empty(),
                "TenantEngine needs at least one tenant");
  const auto& tiers = inner_.tiers();
  for (std::size_t l = 0; l < tiers.size(); ++l) {
    tier_level_[tiers[l].id] = static_cast<std::int32_t>(l);
  }
  if (reg_.size() >= 2) advisor_ = std::make_unique<Advisor>(*this);
}

TenantEngine::~TenantEngine() = default;

void TenantEngine::set_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lk(mu_);
  clock_ = std::move(clock);
}

ooc::AdviceProvider* TenantEngine::advisor() { return advisor_.get(); }

std::int32_t TenantEngine::level_of(ooc::TierId tid) const {
  const auto it = tier_level_.find(tid);
  HMR_CHECK_MSG(it != tier_level_.end(),
                "command names a tier id outside the hierarchy");
  return it->second;
}

// ---- block registry ----

ooc::TierId TenantEngine::add_block(ooc::BlockId b,
                                    std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  const ooc::TierId tid = inner_.add_block(b, bytes);
  blocks_[b] = BlockInfo{bytes, QuotaLedger::kUnowned};
  ledger_.charge(QuotaLedger::kUnowned, level_of(tid), bytes);
  return tid;
}

void TenantEngine::remove_block(ooc::BlockId b) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = blocks_.find(b);
  HMR_CHECK_MSG(it != blocks_.end(), "remove of unregistered block");
  ledger_.release(it->second.owner, inner_.block_level(b),
                  it->second.bytes);
  blocks_.erase(it);
  fetch_inflight_.erase(b);
  inner_.remove_block(b);
}

// ---- admission ----

Verdict TenantEngine::submit(const ooc::TaskDesc& task,
                             std::vector<ooc::Command>& cmds) {
  std::lock_guard<std::mutex> lk(mu_);
  return submit_locked(task, /*degrade_reject=*/false, cmds);
}

std::vector<ooc::Command> TenantEngine::on_task_arrived(
    const ooc::TaskDesc& task) {
  std::vector<ooc::Command> cmds;
  std::lock_guard<std::mutex> lk(mu_);
  submit_locked(task, /*degrade_reject=*/true, cmds);
  return cmds;
}

Verdict TenantEngine::submit_locked(const ooc::TaskDesc& task,
                                    bool degrade_reject,
                                    std::vector<ooc::Command>& cmds) {
  const TenantId t = task.tenant;
  HMR_CHECK_MSG(t < reg_.size(), "task names an unregistered tenant");
  TenantState& st = tenants_[t];
  ++st.submitted;

  const double now = now_locked();
  const bool would_borrow = ledger_.over_reserve(t, 0);
  const bool contended = adm_.underreserve_waiter(
      [&](TenantId u) { return ledger_.over_reserve(u, 0); });
  const Verdict v = adm_.decide(t, now, would_borrow, contended,
                                inner_live_ == 0);
  switch (v) {
    case Verdict::Admit:
      ++st.admitted;
      admit_locked(task, cmds);
      break;
    case Verdict::Defer:
      ++st.deferred;
      adm_.push(t, task);
      break;
    case Verdict::Reject:
      ++st.rejected;
      if (degrade_reject) {
        ++st.deferred;
        adm_.push(t, task);
      }
      break;
  }
  return v;
}

void TenantEngine::admit_locked(const ooc::TaskDesc& task,
                                std::vector<ooc::Command>& cmds) {
  task_tenant_[task.id] = task.tenant;
  ++inner_live_;
  const std::vector<ooc::Command> inner = inner_.on_task_arrived(task);
  observe_locked(inner);
  cmds.insert(cmds.end(), inner.begin(), inner.end());
}

void TenantEngine::pump_locked(std::vector<ooc::Command>& cmds) {
  ooc::TaskDesc task;
  bool forced = false;
  while (adm_.pop(now_locked(), inner_live_ == 0, task, forced)) {
    TenantState& st = tenants_[task.tenant];
    ++st.admitted;
    if (forced) ++st.forced;
    admit_locked(task, cmds);
  }
}

// ---- engine events ----

std::vector<ooc::Command> TenantEngine::on_fetch_complete(
    ooc::BlockId b) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = fetch_inflight_.find(b);
  if (it != fetch_inflight_.end()) {
    TenantState& st = tenants_[it->second.tenant];
    const double now = now_locked();
    const double s = now - it->second.issued_s;
    ++st.fetch_samples;
    if (st.samples.size() < kMaxSamples) st.samples.push_back(s);
    st.fetch_max_s = std::max(st.fetch_max_s, s);
    if (burn_window_s_ > 0) {
      st.window_samples.emplace_back(now, s);
      const double cutoff = now - burn_window_s_;
      while (!st.window_samples.empty() &&
             st.window_samples.front().first < cutoff) {
        st.window_samples.pop_front();
      }
    }
    fetch_inflight_.erase(it);
  }
  std::vector<ooc::Command> cmds = inner_.on_fetch_complete(b);
  observe_locked(cmds);
  pump_locked(cmds);
  return cmds;
}

std::vector<ooc::Command> TenantEngine::on_evict_complete(
    ooc::BlockId b) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ooc::Command> cmds = inner_.on_evict_complete(b);
  observe_locked(cmds);
  pump_locked(cmds);
  return cmds;
}

std::vector<ooc::Command> TenantEngine::on_task_complete(
    ooc::TaskId t, std::int32_t pe) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = task_tenant_.find(t);
  HMR_CHECK_MSG(it != task_tenant_.end(),
                "completion for a task tenancy never admitted");
  TenantState& st = tenants_[it->second];
  ++st.completed;
  const double now = now_locked();
  if (st.completed == 1) st.first_completion_s = now;
  st.last_completion_s = now;
  task_tenant_.erase(it);
  HMR_CHECK_MSG(inner_live_ > 0, "completion with no live task");
  --inner_live_;

  std::vector<ooc::Command> cmds = inner_.on_task_complete(t, pe);
  observe_locked(cmds);
  pump_locked(cmds);
  return cmds;
}

void TenantEngine::observe_locked(
    const std::vector<ooc::Command>& cmds) {
  for (const auto& c : cmds) {
    if (c.kind == ooc::Command::Kind::Run) continue;
    const auto bit = blocks_.find(c.block);
    HMR_CHECK_MSG(bit != blocks_.end(),
                  "command on a block tenancy never saw");
    BlockInfo& bi = bit->second;
    const std::int32_t from = level_of(c.src_tier);
    const std::int32_t to = level_of(c.dst_tier);
    if (c.kind == ooc::Command::Kind::Fetch) {
      // The fetch's first requester names the owning tenant.
      const auto tit = task_tenant_.find(c.task);
      const TenantId t =
          tit != task_tenant_.end() ? tit->second : TenantId{0};
      TenantState& st = tenants_[t];
      ++st.fetches;
      st.fetch_bytes += bi.bytes;
      if (ledger_.transfer(bi.owner, t, from, to, bi.bytes)) {
        ++st.borrows;
      }
      bi.owner = t;
      fetch_inflight_[c.block] = FetchInFlight{now_locked(), t};
    } else { // Evict
      ledger_.move(bi.owner, from, to, bi.bytes);
      if (bi.owner != QuotaLedger::kUnowned) {
        TenantState& st = tenants_[bi.owner];
        ++st.evicts;
        st.evict_bytes += bi.bytes;
      }
    }
  }
}

// ---- forwarding introspection ----

ooc::EngineStats TenantEngine::engine_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inner_.engine_stats();
}

bool TenantEngine::quiescent() const {
  std::lock_guard<std::mutex> lk(mu_);
  return adm_.total_queued() == 0 && inner_.quiescent();
}

std::size_t TenantEngine::total_waiting() const {
  std::lock_guard<std::mutex> lk(mu_);
  return adm_.total_queued() + inner_.total_waiting();
}

const std::vector<ooc::TierDesc>& TenantEngine::tiers() const {
  return inner_.tiers(); // immutable after construction
}

std::uint64_t TenantEngine::tier_used(std::int32_t level) const {
  std::lock_guard<std::mutex> lk(mu_);
  return inner_.tier_used(level);
}

ooc::BlockState TenantEngine::block_state(ooc::BlockId b) const {
  std::lock_guard<std::mutex> lk(mu_);
  return inner_.block_state(b);
}

std::int32_t TenantEngine::block_level(ooc::BlockId b) const {
  std::lock_guard<std::mutex> lk(mu_);
  return inner_.block_level(b);
}

std::uint32_t TenantEngine::refcount(ooc::BlockId b) const {
  std::lock_guard<std::mutex> lk(mu_);
  return inner_.refcount(b);
}

std::vector<std::string> TenantEngine::audit_invariants(
    bool at_quiescence) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out =
      inner_.audit_invariants(at_quiescence);
  for (auto& line : ledger_.audit(inner_, at_quiescence)) {
    out.push_back(std::move(line));
  }
  std::uint64_t admitted = 0, completed = 0;
  for (const auto& st : tenants_) {
    admitted += st.admitted;
    completed += st.completed;
  }
  char buf[160];
  if (admitted - completed != inner_live_ ||
      task_tenant_.size() != inner_live_) {
    std::snprintf(buf, sizeof(buf),
                  "tenancy live mismatch: admitted %" PRIu64
                  " - completed %" PRIu64 " vs live %zu (tracked %zu)",
                  admitted, completed, inner_live_,
                  task_tenant_.size());
    out.emplace_back(buf);
  }
  return out;
}

// ---- priority dispatch ----

int TenantEngine::dispatch_rank(const ooc::Command& c) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (c.kind == ooc::Command::Kind::Evict) return -1;
  if (c.kind != ooc::Command::Kind::Fetch) return 0;
  const auto it = fetch_inflight_.find(c.block);
  if (it == fetch_inflight_.end()) return 0;
  return qos_rank(reg_.desc(it->second.tenant).qos);
}

TenantId TenantEngine::command_tenant(const ooc::Command& c) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (c.kind == ooc::Command::Kind::Fetch) {
    const auto it = fetch_inflight_.find(c.block);
    if (it != fetch_inflight_.end()) return it->second.tenant;
  }
  return QuotaLedger::kUnowned;
}

void TenantEngine::note_displacement(TenantId winner, TenantId loser) {
  std::lock_guard<std::mutex> lk(mu_);
  if (winner < tenants_.size()) ++tenants_[winner].displaced;
  if (loser < tenants_.size()) ++tenants_[loser].displaced_by;
}

// ---- observability ----

std::vector<TenantSnapshot> TenantEngine::snapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(reg_.size());
  for (TenantId t = 0; t < reg_.size(); ++t) {
    const TenantState& st = tenants_[t];
    TenantSnapshot s;
    s.desc = reg_.desc(t);
    s.submitted = st.submitted;
    s.admitted = st.admitted;
    s.deferred = st.deferred;
    s.rejected = st.rejected;
    s.forced = st.forced;
    s.completed = st.completed;
    s.queued_now = adm_.queued(t);
    s.fetches = st.fetches;
    s.fetch_bytes = st.fetch_bytes;
    s.evicts = st.evicts;
    s.evict_bytes = st.evict_bytes;
    s.displaced = st.displaced;
    s.displaced_by = st.displaced_by;
    s.borrows = st.borrows;
    const std::int32_t levels = ledger_.num_levels();
    for (std::int32_t l = 0; l < levels; ++l) {
      s.quota_used.push_back(ledger_.used(t, l));
      s.quota_reserved.push_back(ledger_.reserved(t, l));
    }
    s.fetch_samples = st.fetch_samples;
    if (!st.samples.empty()) {
      s.fetch_p50_s = hmr::percentile(st.samples, 0.50);
      s.fetch_p99_s = hmr::percentile(st.samples, 0.99);
    }
    s.fetch_max_s = st.fetch_max_s;
    if (burn_window_s_ > 0 && !st.window_samples.empty()) {
      // Re-filter against *now* (trimming happens on completions, so
      // an idle tenant's stale samples age out here too).
      const double cutoff = now_locked() - burn_window_s_;
      std::vector<double> w;
      w.reserve(st.window_samples.size());
      for (const auto& [at, lat] : st.window_samples) {
        if (at >= cutoff) w.push_back(lat);
      }
      if (!w.empty()) s.window_p99_s = hmr::percentile(w, 0.99);
    }
    if (s.desc.slo_p99_fetch_s > 0 && s.window_p99_s > 0) {
      s.slo_burn = s.window_p99_s / s.desc.slo_p99_fetch_s;
    }
    s.first_completion_s = st.first_completion_s;
    s.last_completion_s = st.last_completion_s;
    out.push_back(std::move(s));
  }
  return out;
}

void TenantEngine::write_json(std::ostream& os) const {
  const std::vector<TenantSnapshot> snaps = snapshots();
  os << "{\"tenants\":[";
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const TenantSnapshot& s = snaps[i];
    if (i) os << ",";
    os << "{\"id\":" << s.desc.id << ",\"name\":\"" << s.desc.name
       << "\",\"qos\":\"" << qos_class_name(s.desc.qos)
       << "\",\"slo_p99_fetch_s\":" << s.desc.slo_p99_fetch_s
       << ",\"submitted\":" << s.submitted
       << ",\"admitted\":" << s.admitted
       << ",\"deferred\":" << s.deferred
       << ",\"rejected\":" << s.rejected << ",\"forced\":" << s.forced
       << ",\"completed\":" << s.completed
       << ",\"queued_now\":" << s.queued_now
       << ",\"fetches\":" << s.fetches
       << ",\"fetch_bytes\":" << s.fetch_bytes
       << ",\"evicts\":" << s.evicts
       << ",\"evict_bytes\":" << s.evict_bytes
       << ",\"displaced\":" << s.displaced
       << ",\"displaced_by\":" << s.displaced_by
       << ",\"borrows\":" << s.borrows << ",\"quota_used\":[";
    for (std::size_t l = 0; l < s.quota_used.size(); ++l) {
      if (l) os << ",";
      os << s.quota_used[l];
    }
    os << "],\"quota_reserved\":[";
    for (std::size_t l = 0; l < s.quota_reserved.size(); ++l) {
      if (l) os << ",";
      os << s.quota_reserved[l];
    }
    os << "],\"fetch_samples\":" << s.fetch_samples
       << ",\"fetch_p50_s\":" << s.fetch_p50_s
       << ",\"fetch_p99_s\":" << s.fetch_p99_s
       << ",\"fetch_max_s\":" << s.fetch_max_s
       << ",\"window_p99_s\":" << s.window_p99_s
       << ",\"slo_burn\":" << s.slo_burn << "}";
  }
  os << "]}";
}

void TenantEngine::export_metrics(telemetry::MetricsRegistry& reg) const {
  const std::vector<TenantSnapshot> snaps = snapshots();
  for (const TenantSnapshot& s : snaps) {
    const std::string labels = "tenant=\"" + s.desc.name + "\"";
    reg.counter("hmr_tenant_submitted_total", labels).set(s.submitted);
    reg.counter("hmr_tenant_admitted_total", labels).set(s.admitted);
    reg.counter("hmr_tenant_deferred_total", labels).set(s.deferred);
    reg.counter("hmr_tenant_rejected_total", labels).set(s.rejected);
    reg.counter("hmr_tenant_forced_total", labels).set(s.forced);
    reg.counter("hmr_tenant_completed_total", labels).set(s.completed);
    reg.counter("hmr_tenant_fetches_total", labels).set(s.fetches);
    reg.counter("hmr_tenant_fetch_bytes_total", labels)
        .set(s.fetch_bytes);
    reg.counter("hmr_tenant_evict_bytes_total", labels)
        .set(s.evict_bytes);
    reg.counter("hmr_tenant_borrows_total", labels).set(s.borrows);
    reg.counter("hmr_tenant_displaced_total", labels).set(s.displaced);
    reg.gauge("hmr_tenant_queued", labels).set(
        static_cast<double>(s.queued_now));
    reg.gauge("hmr_tenant_fetch_p99_seconds", labels)
        .set(s.fetch_p99_s);
    reg.gauge("hmr_tenant_window_p99_seconds", labels,
              "Attained fetch p99 over the rolling burn window")
        .set(s.window_p99_s);
    reg.gauge("hmr_tenant_slo_burn", labels,
              "Window p99 over SLO target (>1 = missing the SLO)")
        .set(s.slo_burn);
    for (std::size_t l = 0; l < s.quota_used.size(); ++l) {
      const std::string ll =
          labels + ",level=\"" + std::to_string(l) + "\"";
      reg.gauge("hmr_tenant_quota_used_bytes", ll)
          .set(static_cast<double>(s.quota_used[l]));
      reg.gauge("hmr_tenant_quota_reserved_bytes", ll)
          .set(static_cast<double>(s.quota_reserved[l]));
    }
  }
}

} // namespace hmr::serve
