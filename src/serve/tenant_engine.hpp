#pragma once
// TenantEngine: the multi-tenant serving decorator over any
// ooc::Engine (docs/SERVING.md).
//
// Implemented once against the Engine interface, so the sim executor
// (serial PolicyEngine), the runtime's serial path and the sharded
// path all inherit tenancy from the same ~600 lines:
//
//   submission ──> admission verdict (token bucket, queue depth,
//                  quota gate, QoS priority + starvation aging)
//        admitted ──> inner engine ──> commands observed:
//            Fetch:  QuotaLedger transfer to requester, latency stamp
//            Evict:  QuotaLedger move between the owner's levels
//        deferred ──> parked here, released on engine events in
//                     (QoS rank, round-robin) order
//
// Locking: one mutex serializes every entry point *including* the
// wrapped inner calls.  Over a PolicyEngine this adds exactly the
// serialization the caller already owed it; over a ShardedEngine it
// does give up shard concurrency while tenancy is enabled — the
// honest tradeoff for exact quota/admission bookkeeping, measured in
// bench/serve_qos and called out in docs/SERVING.md.  With tenancy
// disabled the runtime does not construct a TenantEngine at all, so
// single-tenant paths are untouched (and stats stay byte-identical).
//
// Time is injected (set_clock): the sim feeds virtual seconds so
// token buckets and latency percentiles are deterministic; the
// runtime feeds a steady_clock (the default).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ooc/engine.hpp"
#include "ooc/types.hpp"
#include "serve/admission.hpp"
#include "serve/quota.hpp"
#include "serve/tenant.hpp"

namespace hmr::telemetry {
class MetricsRegistry;
}

namespace hmr::serve {

struct ServeConfig {
  std::vector<TenantDesc> tenants;
  AdmissionConfig admission;
  /// Rolling window (seconds; virtual under the DES) for the SLO
  /// burn-rate gauge: attained fetch p99 over this window divided by
  /// the tenant's slo_p99_fetch_s target.  Burn > 1 means the tenant
  /// is *currently* missing its SLO — unlike the lifetime percentiles,
  /// a recovered tenant's burn falls back under 1.  0 disables.
  double burn_window_s = 30.0;
  bool enabled() const { return !tenants.empty(); }
};

class TenantEngine : public ooc::Engine {
public:
  /// Wrap `inner` (not owned; must outlive this).  `now` seeds the
  /// token buckets; pass the injected clock's current value.
  TenantEngine(ooc::Engine& inner, ServeConfig cfg, double now = 0);
  ~TenantEngine() override;

  /// Replace the time source (seconds, monotonic).  Call before the
  /// first event; the sim passes its virtual clock.
  void set_clock(std::function<double()> clock);

  const TenantRegistry& registry() const { return reg_; }
  const AdmissionConfig& admission_config() const {
    return adm_.config();
  }

  /// Should executors order their IO queues by dispatch_rank?  Off by
  /// config, and off below two tenants: with one tenant the only
  /// possible reordering is evict-before-fetch, which would make the
  /// single-tenant configuration diverge from the pre-tenancy FIFO
  /// (that configuration must stay byte-identical).
  bool priority_dispatch() const {
    return adm_.config().priority_dispatch && reg_.size() > 1;
  }

  /// Quota-aware demotion advice (demote_first + kLevelFar for blocks
  /// whose owner borrows beyond its reservation), or nullptr when
  /// fewer than two tenants are registered — with one tenant the
  /// advisor could only change victim order for no benefit, and
  /// installing it would flip the serial engine onto its LRU
  /// bookkeeping path (single-tenant runs must stay byte-identical).
  /// Only the serial PolicyEngine accepts advisors; the sharded
  /// engine's preemption lever is priority dispatch alone.
  ooc::AdviceProvider* advisor();

  // ---- verdict-aware submission (sim executor) ----

  /// Run one submission through admission.  Admit: forwards to the
  /// inner engine, appending its commands.  Defer: parked here until
  /// an engine event releases it.  Reject: dropped — the caller owns
  /// telling the submitter.  task.tenant must be registered.
  Verdict submit(const ooc::TaskDesc& task,
                 std::vector<ooc::Command>& cmds);

  // ---- ooc::Engine (fire-and-forget paths; thread-safe) ----

  ooc::TierId add_block(ooc::BlockId b, std::uint64_t bytes) override;
  void remove_block(ooc::BlockId b) override;
  /// submit() with Reject degraded to Defer (this path cannot drop
  /// work); the rejection is still counted.
  std::vector<ooc::Command> on_task_arrived(
      const ooc::TaskDesc& task) override;
  std::vector<ooc::Command> on_fetch_complete(ooc::BlockId b) override;
  std::vector<ooc::Command> on_evict_complete(ooc::BlockId b) override;
  std::vector<ooc::Command> on_task_complete(ooc::TaskId t,
                                             std::int32_t pe) override;

  ooc::EngineStats engine_stats() const override;
  /// Inner quiescence AND no deferred work parked here.
  bool quiescent() const override;
  std::size_t total_waiting() const override;
  const std::vector<ooc::TierDesc>& tiers() const override;
  std::uint64_t tier_used(std::int32_t level) const override;
  ooc::BlockState block_state(ooc::BlockId b) const override;
  std::int32_t block_level(ooc::BlockId b) const override;
  std::uint32_t refcount(ooc::BlockId b) const override;
  /// Inner audit + ledger conservation + tenancy bookkeeping.
  std::vector<std::string> audit_invariants(
      bool at_quiescence) const override;

  // ---- priority dispatch (executors) ----

  /// Dispatch rank of a queued IO command: lower runs first.  Evicts
  /// outrank every fetch (they free capacity someone is waiting on);
  /// fetches rank by their tenant's QoS class.
  int dispatch_rank(const ooc::Command& c) const;
  /// Executor inserted a `winner`-tenant fetch ahead of a queued
  /// `loser`-tenant fetch (both from dispatch_rank's tenant lookup).
  void note_displacement(TenantId winner, TenantId loser);
  /// Tenant a queued Fetch command belongs to (kUnowned for Evict or
  /// unknown): the executor's key for dispatch ordering and lanes.
  TenantId command_tenant(const ooc::Command& c) const;

  // ---- observability ----

  std::vector<TenantSnapshot> snapshots() const;
  /// {"tenants":[...]} — the StatusServer /tenants route body.
  void write_json(std::ostream& os) const;
  /// Per-tenant counters/gauges, labeled tenant="name".
  void export_metrics(telemetry::MetricsRegistry& reg) const;

private:
  struct TenantState {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t deferred = 0;
    std::uint64_t rejected = 0;
    std::uint64_t forced = 0;
    std::uint64_t completed = 0;
    std::uint64_t fetches = 0;
    std::uint64_t fetch_bytes = 0;
    std::uint64_t evicts = 0;
    std::uint64_t evict_bytes = 0;
    std::uint64_t displaced = 0;
    std::uint64_t displaced_by = 0;
    std::uint64_t borrows = 0;
    std::uint64_t fetch_samples = 0;
    /// Exact samples up to a cap (kMaxSamples); beyond it only the
    /// count grows and percentiles describe the prefix.
    std::vector<double> samples;
    /// (completion time, latency) pairs inside the burn window —
    /// trimmed on every completion, so the deque stays bounded by the
    /// window's arrival rate.
    std::deque<std::pair<double, double>> window_samples;
    double fetch_max_s = 0;
    double first_completion_s = 0;
    double last_completion_s = 0;
  };

  struct BlockInfo {
    std::uint64_t bytes = 0;
    TenantId owner = QuotaLedger::kUnowned;
  };

  struct FetchInFlight {
    double issued_s = 0;
    TenantId tenant = 0;
  };

  class Advisor;

  static constexpr std::size_t kMaxSamples = 1u << 16;

  std::int32_t level_of(ooc::TierId tid) const;
  Verdict submit_locked(const ooc::TaskDesc& task, bool degrade_reject,
                        std::vector<ooc::Command>& cmds);
  void admit_locked(const ooc::TaskDesc& task,
                    std::vector<ooc::Command>& cmds);
  /// Release deferred work the latest event may have unblocked.
  void pump_locked(std::vector<ooc::Command>& cmds);
  /// Account the quota/stat effects of inner-engine commands.
  void observe_locked(const std::vector<ooc::Command>& cmds);
  double now_locked() const { return clock_(); }

  ooc::Engine& inner_;
  TenantRegistry reg_;
  double burn_window_s_ = 30.0;
  mutable std::mutex mu_;
  std::function<double()> clock_;
  QuotaLedger ledger_;
  AdmissionController adm_;
  std::unique_ptr<Advisor> advisor_;
  std::vector<TenantState> tenants_;
  std::unordered_map<ooc::TaskId, TenantId> task_tenant_;
  std::unordered_map<ooc::BlockId, BlockInfo> blocks_;
  std::unordered_map<ooc::BlockId, FetchInFlight> fetch_inflight_;
  /// TierDesc::id -> hierarchy level, resolved from inner_.tiers().
  std::unordered_map<ooc::TierId, std::int32_t> tier_level_;
  std::size_t inner_live_ = 0;
};

} // namespace hmr::serve
