#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hmr::sim {

std::uint64_t halo_bytes(std::uint64_t bytes_per_node) {
  HMR_CHECK(bytes_per_node > 0);
  const double elems = static_cast<double>(bytes_per_node) / 8.0;
  const double edge = std::cbrt(elems);
  return static_cast<std::uint64_t>(
      std::llround(6.0 * edge * edge * 8.0));
}

double halo_time(const NetworkModel& net, std::uint64_t bytes) {
  // Six face messages pipelined onto the NIC: latency for the message
  // chain plus serialization at the injection/link bandwidth — or the
  // NIC message rate when the faces fragment into many small messages.
  return 6.0 * net.latency + net.serialize_seconds(bytes);
}

hw::TierId add_remote_tier(hw::MachineModel& m, const NetworkModel& net,
                           std::uint64_t capacity) {
  hw::MemoryTier t;
  t.name = "remote";
  t.capacity = capacity;
  // Streaming compute from the remote pool and migration channel
  // sizing both key off read_bw/write_bw: the network path is the
  // bottleneck in both directions.
  t.read_bw = std::min(net.link_bw, net.injection_bw);
  t.write_bw = t.read_bw;
  t.latency = net.latency;
  t.numa_node = -1;
  t.remote = true;
  m.tiers.push_back(std::move(t));
  return static_cast<hw::TierId>(m.tiers.size() - 1);
}

std::vector<ooc::TierDesc> tiers_with_remote(const hw::MachineModel& m,
                                             const NetworkModel& net) {
  std::vector<ooc::TierDesc> tiers = ooc::tiers_from_model(m);
  for (auto& t : tiers) {
    if (t.backend == ooc::TierBackendKind::Remote) {
      t.remote = net.tier_params();
    }
  }
  return tiers;
}

} // namespace hmr::sim
