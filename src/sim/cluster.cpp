#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "sim/sim_executor.hpp"
#include "sim/stencil_workload.hpp"
#include "util/check.hpp"

namespace hmr::sim {

std::uint64_t halo_bytes(std::uint64_t bytes_per_node) {
  HMR_CHECK(bytes_per_node > 0);
  const double elems = static_cast<double>(bytes_per_node) / 8.0;
  const double edge = std::cbrt(elems);
  return static_cast<std::uint64_t>(
      std::llround(6.0 * edge * edge * 8.0));
}

double halo_time(const NetworkModel& net, std::uint64_t bytes) {
  // Six face messages pipelined onto the NIC: latency for the message
  // chain plus serialization at the injection/link bandwidth.
  const double bw = std::min(net.link_bw, net.injection_bw);
  return 6.0 * net.latency + static_cast<double>(bytes) / bw;
}

ClusterResult run_cluster(const ClusterParams& p) {
  HMR_CHECK(p.nodes >= 1);
  ClusterResult r;
  r.nodes = p.nodes;

  // Node-local part: the usual single-node DES on the per-node set.
  const auto wp = StencilWorkload::params_for_reduced(
      p.bytes_per_node, p.reduced_bytes, p.node.num_pes, p.iterations);
  StencilWorkload w(wp);
  SimConfig cfg;
  cfg.model = p.node;
  cfg.strategy = p.strategy;
  SimExecutor ex(cfg);
  const auto local = ex.run(w);
  r.node_iteration_s =
      local.total_time / static_cast<double>(p.iterations);

  // Inter-node part: halo exchange each iteration (none for 1 node).
  r.halo_bytes_per_node = p.nodes > 1 ? halo_bytes(p.bytes_per_node) : 0;
  r.halo_s = p.nodes > 1 ? halo_time(p.net, r.halo_bytes_per_node) : 0.0;

  r.iteration_s = r.node_iteration_s + r.halo_s;
  r.total_s = r.iteration_s * static_cast<double>(p.iterations);
  r.comm_fraction = r.iteration_s > 0 ? r.halo_s / r.iteration_s : 0.0;
  return r;
}

std::vector<ClusterResult> weak_scaling_sweep(const ClusterParams& base,
                                              const std::vector<int>& nodes) {
  std::vector<ClusterResult> out;
  out.reserve(nodes.size());
  for (const int n : nodes) {
    ClusterParams p = base;
    p.nodes = n;
    out.push_back(run_cluster(p));
  }
  return out;
}

} // namespace hmr::sim
