#pragma once
// Multi-node cluster extension (paper §VI: "We will also perform
// comparisons ... in multi-node cluster settings").
//
// Weak-scaling model for the Stencil3D workload: every node owns an
// equal sub-domain and runs the single-node discrete-event simulation
// for its local work (compute + prefetch/evict traffic), while the
// inter-node halo exchange is charged against a network model.  Nodes
// are homogeneous and the stencil is perfectly balanced, so the
// cluster iteration time is
//
//   T_iter = T_node_iter (from the DES) + T_halo(network, subdomain)
//
// with T_halo = max(per-message latency chain, halo bytes / injection
// bandwidth).  Halo traffic scales with the sub-domain's surface while
// local work scales with its volume, so the communication fraction
// falls as per-node working sets grow — the standard weak-scaling
// story the within-node runtime must not disturb.

#include <cstdint>
#include <vector>

#include "hw/machine_model.hpp"
#include "ooc/types.hpp"

namespace hmr::sim {

/// Interconnect between nodes (Aries/Omni-Path-like defaults).
struct NetworkModel {
  double latency = 2e-6;          // per message, seconds
  double link_bw = 12.5e9;        // bytes/s per direction
  double injection_bw = 10.0e9;   // bytes/s a node can source
};

struct ClusterParams {
  hw::MachineModel node = hw::knl_flat_all_to_all();
  NetworkModel net;
  int nodes = 8;
  /// Per-node stencil working set (weak scaling keeps this constant).
  std::uint64_t bytes_per_node = 32ull << 30;
  std::uint64_t reduced_bytes = 2ull << 30;
  int iterations = 5;
  ooc::Strategy strategy = ooc::Strategy::MultiIo;
};

struct ClusterResult {
  int nodes = 0;
  double node_iteration_s = 0; // local work per iteration (DES)
  double halo_s = 0;           // inter-node exchange per iteration
  double iteration_s = 0;      // node_iteration_s + halo_s
  double total_s = 0;
  double comm_fraction = 0;    // halo_s / iteration_s
  std::uint64_t halo_bytes_per_node = 0;
};

/// Bytes a node sends per iteration: six faces of its sub-domain of
/// `bytes_per_node` bytes of doubles (boundary nodes send fewer; this
/// models the interior worst case, which sets the critical path).
std::uint64_t halo_bytes(std::uint64_t bytes_per_node);

/// Halo exchange time for one iteration on the given network.
double halo_time(const NetworkModel& net, std::uint64_t bytes);

/// Run the weak-scaling estimate (one DES run for the node-local part).
ClusterResult run_cluster(const ClusterParams& p);

/// Sweep node counts with everything else fixed.
std::vector<ClusterResult> weak_scaling_sweep(const ClusterParams& base,
                                              const std::vector<int>& nodes);

} // namespace hmr::sim
