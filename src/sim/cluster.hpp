#pragma once
// Multi-node cluster vocabulary (paper §VI: "We will also perform
// comparisons ... in multi-node cluster settings").
//
// This header holds the network model, the per-node halo-exchange cost
// functions, and the classic weak-scaling parameter/result structs.
// The cluster *simulation* behind run_cluster — a genuine multi-node
// discrete-event simulation built from a PlacementCoordinator and
// per-node BlockStores — lives in src/cluster/ (library hmr_cluster);
// run_cluster / the sweep helpers are declared here for source
// compatibility but defined there, so callers must link hmr_cluster.
//
// Weak-scaling semantics for the Stencil3D workload: every node owns
// an equal sub-domain and runs the single-node discrete-event
// simulation for its local work (compute + prefetch/evict traffic),
// while the inter-node halo exchange rides the network model.  Halo
// traffic scales with the sub-domain's surface while local work scales
// with its volume, so the communication fraction falls as per-node
// working sets grow — the standard weak-scaling story the within-node
// runtime must not disturb.

#include <cstdint>
#include <vector>

#include "hw/machine_model.hpp"
#include "ooc/types.hpp"

namespace hmr::sim {

/// Interconnect between nodes (Aries/Omni-Path-like defaults): per
/// message latency, serialization bandwidth, and a NIC message-rate
/// ceiling that dominates in the small-message regime (ROADMAP names
/// all three).  Transfers are segmented into max_msg_bytes messages;
/// serialization takes max(bytes / bw, messages / msg_rate).
struct NetworkModel {
  double latency = 2e-6;          // per message, seconds
  double link_bw = 12.5e9;        // bytes/s per direction
  double injection_bw = 10.0e9;   // bytes/s a node can source
  double msg_rate = 2.5e7;        // messages/s a NIC can issue
  std::uint64_t max_msg_bytes = 64ull << 10; // transfer segmentation

  /// Messages a transfer of `bytes` is segmented into (>= 1).
  std::uint64_t messages(std::uint64_t bytes) const {
    return tier_params().messages(bytes);
  }
  /// Serialization time: bandwidth- or message-rate-bound, whichever
  /// is worse (no latency term — that is per message chain).
  double serialize_seconds(std::uint64_t bytes) const {
    return tier_params().serialize_seconds(bytes);
  }
  /// One point-to-point transfer: latency + serialization.
  double transfer_seconds(std::uint64_t bytes) const {
    return latency + serialize_seconds(bytes);
  }
  /// Rate the transfer actually sustains (< min(link, injection) when
  /// the message-rate term dominates).
  double effective_bw(std::uint64_t bytes) const {
    const double s = serialize_seconds(bytes);
    return s > 0 ? static_cast<double>(bytes) / s : 0.0;
  }
  /// The same path expressed as a Remote tier backend's parameters.
  ooc::RemoteTierParams tier_params() const {
    ooc::RemoteTierParams p;
    p.latency = latency;
    p.bandwidth = link_bw < injection_bw ? link_bw : injection_bw;
    p.msg_rate = msg_rate;
    p.max_msg_bytes = max_msg_bytes;
    return p;
  }
};

/// Append a disaggregated remote tier to a node model: a pool reached
/// over `net` instead of the memory bus.  read_bw/write_bw become the
/// network's large-transfer effective bandwidth and latency the
/// network latency, so compute_time and copy_rate stay meaningful for
/// remote-resident bytes; MemoryTier::remote is set so
/// ooc::tiers_from_model sorts it below every local tier and stamps
/// the Remote backend.  `capacity` sizes the pool for bounded callers
/// (rt arenas); the engine's bottom level is unbounded regardless.
/// Returns the new tier's id.
hw::TierId add_remote_tier(hw::MachineModel& m, const NetworkModel& net,
                           std::uint64_t capacity = 1ull << 40);

/// Placement hierarchy for a remote-augmented model with the Remote
/// levels' message-rate parameters refined from the full NetworkModel
/// (tiers_from_model alone only sees bandwidth and latency).
std::vector<ooc::TierDesc> tiers_with_remote(const hw::MachineModel& m,
                                             const NetworkModel& net);

struct ClusterParams {
  hw::MachineModel node = hw::knl_flat_all_to_all();
  NetworkModel net;
  int nodes = 8;
  /// Per-node stencil working set (weak scaling keeps this constant).
  std::uint64_t bytes_per_node = 32ull << 30;
  std::uint64_t reduced_bytes = 2ull << 30;
  int iterations = 5;
  ooc::Strategy strategy = ooc::Strategy::MultiIo;
};

struct ClusterResult {
  int nodes = 0;
  double node_iteration_s = 0; // local work per iteration (DES)
  double halo_s = 0;           // inter-node exchange per iteration
  double iteration_s = 0;      // node_iteration_s + halo_s
  double total_s = 0;
  double comm_fraction = 0;    // halo_s / iteration_s
  std::uint64_t halo_bytes_per_node = 0;
};

/// Bytes a node sends per iteration: six faces of its sub-domain of
/// `bytes_per_node` bytes of doubles (boundary nodes send fewer; this
/// models the interior worst case, which sets the critical path).
std::uint64_t halo_bytes(std::uint64_t bytes_per_node);

/// Halo exchange time for one iteration on the given network.
double halo_time(const NetworkModel& net, std::uint64_t bytes);

/// Run the weak-scaling cluster simulation (the per-node DES for local
/// work, a cluster-level DES for the halo exchange).  Defined in
/// hmr_cluster (src/cluster/cluster_sim.cpp) — link hmr_cluster.
ClusterResult run_cluster(const ClusterParams& p);

/// Sweep node counts with everything else fixed (weak scaling: the
/// per-node working set stays constant).  Defined in hmr_cluster.
std::vector<ClusterResult> weak_scaling_sweep(const ClusterParams& base,
                                              const std::vector<int>& nodes);

} // namespace hmr::sim
