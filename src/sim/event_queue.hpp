#pragma once
// Discrete-event queue: (time, insertion-seq) ordered callbacks.
// Ties break by insertion order so simulations are deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace hmr::sim {

class EventQueue {
public:
  using Fn = std::function<void()>;

  /// Schedule `fn` at absolute time `t` (must not be in the past
  /// relative to the last popped event).
  void at(double t, Fn fn) {
    HMR_DCHECK(t >= last_popped_);
    heap_.push(Ev{t, seq_++, std::move(fn)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event.
  double next_time() const {
    HMR_CHECK(!heap_.empty());
    return heap_.top().t;
  }

  /// Pop and return the earliest event.
  std::pair<double, Fn> pop() {
    HMR_CHECK(!heap_.empty());
    // top() is const; the handle must be moved out via const_cast on
    // the mutable fn (standard priority_queue idiom).
    const Ev& top = heap_.top();
    std::pair<double, Fn> out{top.t, std::move(top.fn)};
    last_popped_ = top.t;
    heap_.pop();
    return out;
  }

private:
  struct Ev {
    double t;
    std::uint64_t seq;
    mutable Fn fn;
    bool operator>(const Ev& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  double last_popped_ = 0;
};

} // namespace hmr::sim
