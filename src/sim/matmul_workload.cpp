#include "sim/matmul_workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hmr::sim {

MatmulWorkload::Params MatmulWorkload::params_for(
    std::uint64_t total_bytes, std::uint64_t reduced_bytes, int num_pes,
    std::uint64_t hbm_budget) {
  Params p;
  p.num_pes = num_pes;
  // total = 3 * n^2 * 8  ->  n = sqrt(total / 24).
  const double n_exact = std::sqrt(static_cast<double>(total_bytes) / 24.0);
  // One task per PE touches two n x T panels and one T x T tile:
  //   reduced = num_pes * (16 n T + 8 T^2)  ->  solve for T.
  const double per_task =
      static_cast<double>(reduced_bytes) / static_cast<double>(num_pes);
  // 8 T^2 + 16 n T - per_task = 0.
  const double disc = 256.0 * n_exact * n_exact + 32.0 * per_task;
  const double t_exact = (-16.0 * n_exact + std::sqrt(disc)) / 16.0;
  HMR_CHECK(t_exact >= 1.0);
  const int grid = std::max(
      1, static_cast<int>(std::llround(n_exact / t_exact)));
  p.grid = grid;
  const auto tile = static_cast<std::uint64_t>(std::llround(t_exact));
  p.n = static_cast<std::uint64_t>(grid) * tile;
  // Traversal tile: keep 2 * S panels within ~60% of the HBM budget so
  // the refcount chain (plus prefetch-ahead) never forces panel churn.
  const double panel = static_cast<double>(p.n) * 8.0 * t_exact;
  const auto s = static_cast<int>(0.6 * static_cast<double>(hbm_budget) /
                                  (2.0 * panel));
  p.superblock = std::clamp(s, 1, grid);
  return p;
}

MatmulWorkload::MatmulWorkload(Params p) : p_(p) {
  HMR_CHECK(p_.n > 0 && p_.grid > 0);
  HMR_CHECK_MSG(p_.n % static_cast<std::uint64_t>(p_.grid) == 0,
                "grid must divide n");
  if (p_.superblock <= 0 || p_.superblock > p_.grid) {
    p_.superblock = p_.grid;
  }
  const std::uint64_t tile = p_.n / static_cast<std::uint64_t>(p_.grid);
  tile_bytes_ = tile * tile * 8;
  panel_bytes_ = tile * p_.n * 8;

  // Interleaved id layout: per grid row i, [Arow_i, Bcol_i, C_i0..].
  const auto g = static_cast<std::uint64_t>(p_.grid);
  blocks_.reserve(g * (g + 2));
  for (std::uint64_t i = 0; i < g; ++i) {
    blocks_.push_back({i * (g + 2), panel_bytes_});      // Arow_i
    blocks_.push_back({i * (g + 2) + 1, panel_bytes_});  // Bcol_i
    for (std::uint64_t j = 0; j < g; ++j) {
      blocks_.push_back({i * (g + 2) + 2 + j, tile_bytes_}); // C_ij
    }
  }
}

ooc::BlockId MatmulWorkload::a_row(int i) const {
  return static_cast<ooc::BlockId>(i) *
         (static_cast<ooc::BlockId>(p_.grid) + 2);
}

ooc::BlockId MatmulWorkload::b_col(int j) const {
  return static_cast<ooc::BlockId>(j) *
             (static_cast<ooc::BlockId>(p_.grid) + 2) +
         1;
}

ooc::BlockId MatmulWorkload::c_block(int i, int j) const {
  return static_cast<ooc::BlockId>(i) *
             (static_cast<ooc::BlockId>(p_.grid) + 2) +
         2 + static_cast<ooc::BlockId>(j);
}

std::vector<ooc::TaskDesc> MatmulWorkload::iteration_tasks(int iter) const {
  HMR_CHECK(iter == 0);
  const int g = p_.grid;
  const int s = p_.superblock;
  std::vector<ooc::TaskDesc> tasks;
  tasks.reserve(static_cast<std::size_t>(g) * g);
  ooc::TaskId next = 0;
  for (int bi = 0; bi < g; bi += s) {
    for (int bj = 0; bj < g; bj += s) {
      for (int i = bi; i < std::min(bi + s, g); ++i) {
        for (int j = bj; j < std::min(bj + s, g); ++j) {
          ooc::TaskDesc t;
          t.id = next++;
          // Round-robin in *traversal* order, not grid order: when G is
          // a multiple of the PE count, (i*G+j) % P collapses to j % P
          // and whole superblock phases overload a PE subset 2:1.
          t.pe = static_cast<std::int32_t>(
              t.id % static_cast<ooc::TaskId>(p_.num_pes));
          t.work_factor = p_.work_factor;
          t.deps.push_back({a_row(i), ooc::AccessMode::ReadOnly});
          t.deps.push_back({b_col(j), ooc::AccessMode::ReadOnly});
          t.deps.push_back({c_block(i, j), ooc::AccessMode::ReadWrite});
          tasks.push_back(std::move(t));
        }
      }
    }
  }
  return tasks;
}

} // namespace hmr::sim
