#pragma once
// MatMul: the paper's second benchmark (§V-B).
//
// "Matrix multiplication divides the work units into a 2 dimensional
// array of chares.  The data is divided such that the entire 2D grid
// of elements for input matrices A and B and output matrix C are
// distributed into blocks of sub-rows X sub-columns across the 2D
// array of chares."  Chare (i,j) computes its T x T output tile C_ij
// from A's row panel i (T x n) and B's column panel j (n x T); the
// read-only panels are shared by a whole chare row/column and cached
// node-level through a Charm++ nodegroup.  One [prefetch] dgemm task
// per chare:
//     [readonly: Arow_i, readonly: Bcol_j, readwrite: C_ij]
//
// Task order: the chare grid is traversed in `superblock`-sized 2D
// tiles (row-major within a tile).  Within one tile only `superblock`
// A-panels and `superblock` B-panels are live, so the refcount chain
// keeps every panel resident across its consumers even when a full
// row of B panels (~18 GB at the 54 GB point) would overflow MCDRAM.
// A plain row-major sweep has no such bound and thrashes B — any
// sane blocked-matmul driver tiles its traversal; DESIGN.md records
// this as part of the nodegroup-cache substitution.
//
// Block ids are interleaved per grid row (Arow_i, Bcol_i, C_i*), so
// the Naive strategy's first-fit HBM packing captures a realistic mix
// of A, B and C rather than, say, both whole input matrices.

#include "sim/workload.hpp"

namespace hmr::sim {

class MatmulWorkload final : public Workload {
public:
  struct Params {
    /// Matrix dimension n (elements per side; doubles).
    std::uint64_t n = 0;
    /// Chare grid dimension G (output tiles per side); must divide n.
    int grid = 0;
    int num_pes = 64;
    /// Traversal tile side (chares); 0 = whole grid (plain row-major).
    int superblock = 0;
    /// Effective passes per dependence byte.  dgemm has high
    /// arithmetic intensity but cache blocking is imperfect; 8 passes
    /// models an MKL-like kernel that stays bandwidth-sensitive when
    /// 64 threads hammer memory (paper §V-B).
    double work_factor = 8.0;
  };

  /// Pick n, G and the traversal tile so the three matrices total
  /// about `total_bytes`, one task per PE occupies about
  /// `reduced_bytes` of HBM (paper: total 24-54 GB, reduced fixed at
  /// 6 GB), and a traversal tile's live panels fit in `hbm_budget`.
  static Params params_for(std::uint64_t total_bytes,
                           std::uint64_t reduced_bytes, int num_pes,
                           std::uint64_t hbm_budget = 16ull << 30);

  explicit MatmulWorkload(Params p);

  std::string name() const override { return "MatMul"; }
  int iterations() const override { return 1; }
  const std::vector<BlockSpec>& blocks() const override { return blocks_; }
  std::vector<ooc::TaskDesc> iteration_tasks(int iter) const override;

  const Params& params() const { return p_; }
  std::uint64_t tile_bytes() const { return tile_bytes_; }   // C_ij
  std::uint64_t panel_bytes() const { return panel_bytes_; } // Arow/Bcol

  ooc::BlockId a_row(int i) const;
  ooc::BlockId b_col(int j) const;
  ooc::BlockId c_block(int i, int j) const;

private:
  Params p_;
  std::uint64_t tile_bytes_ = 0;
  std::uint64_t panel_bytes_ = 0;
  std::vector<BlockSpec> blocks_;
};

} // namespace hmr::sim
