#include "sim/pipelined_stencil_workload.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hmr::sim {

PipelinedStencilWorkload::PipelinedStencilWorkload(Params p) : p_(p) {
  HMR_CHECK(p_.total_bytes > 0);
  HMR_CHECK(p_.cx > 0 && p_.cy > 0 && p_.cz > 0);
  HMR_CHECK(p_.num_pes > 0 && p_.iterations > 0);
  const int chares = num_chares();
  interior_bytes_ = p_.total_bytes / static_cast<std::uint64_t>(chares);
  HMR_CHECK_MSG(interior_bytes_ > 0, "more chares than grid bytes");
  const double elems = static_cast<double>(interior_bytes_) / 8.0;
  const double edge = std::cbrt(elems);
  ghost_bytes_ = static_cast<std::uint64_t>(
      std::llround(std::max(edge * edge * 8.0, 8.0)));

  blocks_.reserve(static_cast<std::size_t>(chares) * 7);
  ooc::BlockId next = 0;
  for (int c = 0; c < chares; ++c) {
    blocks_.push_back({next++, interior_bytes_});
    for (int f = 0; f < 6; ++f) blocks_.push_back({next++, ghost_bytes_});
  }
}

ooc::TaskId PipelinedStencilWorkload::task_id(int iteration,
                                              int chare) const {
  return static_cast<ooc::TaskId>(iteration) *
             static_cast<ooc::TaskId>(num_chares()) +
         static_cast<ooc::TaskId>(chare);
}

std::vector<ooc::TaskDesc> PipelinedStencilWorkload::iteration_tasks(
    int iter) const {
  HMR_CHECK(iter == 0);
  const int chares = num_chares();
  std::vector<ooc::TaskDesc> tasks;
  tasks.reserve(static_cast<std::size_t>(chares) * p_.iterations);
  const int dx[6] = {-1, 1, 0, 0, 0, 0};
  const int dy[6] = {0, 0, -1, 1, 0, 0};
  const int dz[6] = {0, 0, 0, 0, -1, 1};
  for (int k = 0; k < p_.iterations; ++k) {
    for (int z = 0; z < p_.cz; ++z) {
      for (int y = 0; y < p_.cy; ++y) {
        for (int x = 0; x < p_.cx; ++x) {
          const int c = chare_at(x, y, z);
          ooc::TaskDesc t;
          t.id = task_id(k, c);
          t.pe = c % p_.num_pes;
          t.work_factor = p_.work_factor;
          const auto base = static_cast<ooc::BlockId>(c) * 7;
          t.deps.push_back({base, ooc::AccessMode::ReadWrite});
          for (int f = 1; f <= 6; ++f) {
            t.deps.push_back({base + static_cast<ooc::BlockId>(f),
                              ooc::AccessMode::ReadOnly});
          }
          if (k > 0) {
            // Message-driven release: own k-1 plus neighbours' k-1.
            t.predecessors.push_back(task_id(k - 1, c));
            for (int f = 0; f < 6; ++f) {
              const int nx = x + dx[f], ny = y + dy[f], nz = z + dz[f];
              if (nx < 0 || nx >= p_.cx || ny < 0 || ny >= p_.cy ||
                  nz < 0 || nz >= p_.cz) {
                continue;
              }
              t.predecessors.push_back(task_id(k - 1, chare_at(nx, ny, nz)));
            }
          }
          tasks.push_back(std::move(t));
        }
      }
    }
  }
  return tasks;
}

} // namespace hmr::sim
