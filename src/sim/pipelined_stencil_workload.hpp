#pragma once
// PipelinedStencilWorkload: Stencil3D without the global iteration
// barrier.
//
// The barriered StencilWorkload injects each iteration's tasks only
// after the previous iteration fully drains — simple, but a single
// straggler idles the whole node, and the prefetcher cannot work
// across the boundary.  Real Charm++ stencils are message-driven: a
// chare updates iteration k as soon as it has its own k-1 result and
// its six neighbours' k-1 halos.  This workload expresses exactly that
// with TaskDesc::predecessors:
//
//   task(k, c).predecessors = { task(k-1, c) } ∪
//                             { task(k-1, n) : n face-neighbour of c }
//
// so the executor releases each chare's next update the moment its
// neighbourhood is ready, and the IO threads prefetch iteration k+1
// blocks while stragglers still finish k — the paper's §III-A
// "overlap of communication and computation" story, measurable with
// bench/ext_pipelined_overlap.
//
// Blocks are identical to StencilWorkload: per chare one interior
// (readwrite) and six private ghost-receive faces (readonly).

#include "sim/workload.hpp"

namespace hmr::sim {

class PipelinedStencilWorkload final : public Workload {
public:
  struct Params {
    std::uint64_t total_bytes = 0;
    int cx = 4, cy = 4, cz = 4; // chare grid
    int num_pes = 64;
    int iterations = 20;
    double work_factor = 20.0;
  };

  explicit PipelinedStencilWorkload(Params p);

  std::string name() const override { return "Stencil3D-pipelined"; }
  /// One logical "iteration": the whole dependency DAG.
  int iterations() const override { return 1; }
  const std::vector<BlockSpec>& blocks() const override { return blocks_; }
  std::vector<ooc::TaskDesc> iteration_tasks(int iter) const override;

  const Params& params() const { return p_; }
  int num_chares() const { return p_.cx * p_.cy * p_.cz; }
  std::uint64_t interior_bytes() const { return interior_bytes_; }

  ooc::TaskId task_id(int iteration, int chare) const;

private:
  int chare_at(int x, int y, int z) const {
    return (z * p_.cy + y) * p_.cx + x;
  }

  Params p_;
  std::uint64_t interior_bytes_ = 0;
  std::uint64_t ghost_bytes_ = 0;
  std::vector<BlockSpec> blocks_;
};

} // namespace hmr::sim
