#include "sim/sim_executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "telemetry/audit.hpp"
#include "telemetry/bridge.hpp"
#include "util/check.hpp"

namespace hmr::sim {

namespace {

ooc::PolicyEngine::Config engine_config(const SimConfig& cfg) {
  ooc::PolicyEngine::Config ec;
  // Cache mode is a hardware configuration, not a scheduling strategy:
  // every block stays in DDR4 and MCDRAM caches transparently.
  ec.strategy =
      cfg.cache_mode ? ooc::Strategy::DdrOnly : cfg.strategy;
  ec.num_pes = cfg.model.num_pes;
  ec.tiers = cfg.tiers.empty() ? ooc::tiers_from_model(cfg.model) : cfg.tiers;
  ec.tiers.back().capacity = 0;
  // Cache/hybrid mode model the two-tier KNL's MCDRAM-in-front-of-DDR4
  // hardware; they have no N-level analogue here.
  HMR_CHECK_MSG(ec.tiers.size() == 2 ||
                    (!cfg.cache_mode && cfg.hybrid_cache_fraction == 0),
                "cache/hybrid modes require a two-tier hierarchy");
  if (cfg.fast_capacity) ec.tiers.front().capacity = cfg.fast_capacity;
  // Hybrid mode: only the flat part of MCDRAM is the prefetch budget.
  if (cfg.hybrid_cache_fraction > 0) {
    HMR_CHECK(cfg.hybrid_cache_fraction < 1.0);
    ec.tiers.front().capacity = static_cast<std::uint64_t>(
        static_cast<double>(ec.tiers.front().capacity) *
        (1.0 - cfg.hybrid_cache_fraction));
  }
  ec.fast_capacity = ec.tiers.front().capacity;
  ec.eager_evict = cfg.eager_evict;
  ec.evict_by_worker = cfg.evict_by_worker;
  ec.writeonly_nocopy = cfg.writeonly_nocopy;
  ec.demote_cascade = cfg.demote_cascade;
  return ec;
}

int default_agents(const SimConfig& cfg) {
  // Adaptive runs can switch strategy mid-run; provision one agent per
  // PE so every movement strategy has its lanes (commands route via
  // agent % num_agents, so SingleIo still funnels through agent 0).
  if (cfg.adaptive) return cfg.model.num_pes;
  switch (cfg.strategy) {
    case ooc::Strategy::SingleIo:
      return 1;
    case ooc::Strategy::MultiIo:
      return cfg.io_threads > 0 ? cfg.io_threads : cfg.model.num_pes;
    default:
      return 0;
  }
}

} // namespace

SimExecutor::SimExecutor(SimConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(engine_config(cfg_)),
      num_agents_(default_agents(cfg_)),
      tracer_(cfg_.trace, cfg_.trace_opts) {
  if (cfg_.metrics) {
    // Same names as the rt executor; values are virtual time.
    mh_.fetch_ns = &cfg_.metrics->histogram(
        "hmr_fetch_latency_ns", "", "Fetch migration time (virtual ns)");
    mh_.evict_ns = &cfg_.metrics->histogram(
        "hmr_evict_latency_ns", "", "Evict migration time (virtual ns)");
    mh_.task_wait_ns = &cfg_.metrics->histogram(
        "hmr_task_wait_ns", "",
        "Arrival-to-execution wait per task (virtual ns)");
    mh_.run_q_depth = &cfg_.metrics->histogram(
        "hmr_run_queue_depth", "",
        "PE job-queue depth observed per task start");
  }
  if (cfg_.metrics && cfg_.history_depth > 0) {
    history_ = std::make_unique<telemetry::HistoryBuffer>(
        *cfg_.metrics, cfg_.history_depth);
    history_->set_clock([this] { return now_; }); // virtual seconds
  }
  cfg_.flight_depth = telemetry::flight_depth_from_env(cfg_.flight_depth);
  if (cfg_.flight_depth > 0) {
    flight_ = std::make_unique<telemetry::BlockFlightRecorder>(
        cfg_.flight_depth);
  }
  if (cfg_.attrib || cfg_.metrics) {
    telemetry::AttributionTable::Options ao;
    ao.shards = 1; // the DES is single-threaded
    ao.keep_tasks = cfg_.attrib_keep_tasks;
    attrib_ = std::make_unique<telemetry::AttributionTable>(ao);
  }
  pes_.resize(static_cast<std::size_t>(cfg_.model.num_pes));
  agents_.resize(static_cast<std::size_t>(num_agents_));
  const auto& m = cfg_.model;
  for (const auto& t : engine_.tiers()) {
    // exec_duration buckets resident bytes by tier id, so every level
    // must name a model tier (a remote level requires the model to be
    // augmented too — sim::add_remote_tier does both together).
    HMR_CHECK_MSG(t.id < m.tiers.size(),
                  "hierarchy level names a tier the model lacks");
    if (t.backend == ooc::TierBackendKind::Remote) {
      remote_params_.emplace(t.id, t.remote);
    }
  }
  if (cfg_.adaptive) {
    HMR_CHECK_MSG(ooc::strategy_moves_data(cfg_.strategy) && !cfg_.cache_mode,
                  "adaptive guidance requires a movement strategy");
    profiler_ = std::make_unique<adapt::BlockProfiler>(cfg_.profiler_cfg);
    adapt::AdvisorConfig acfg = adapt::AdvisorConfig::from_model(m);
    if (!remote_params_.empty()) {
      // The backing store is a remote pool: re-fetching a bypassed
      // block pays the network, raising the bypass break-even.  The
      // loaded basis matches from_model: every PE's flow sharing the
      // NIC leaves each pes/bandwidth seconds per byte.
      const auto& rp = remote_params_.begin()->second;
      acfg.apply_remote(static_cast<double>(m.num_pes) / rp.bandwidth,
                        rp.latency);
    }
    advisor_ = std::make_unique<adapt::PlacementAdvisor>(*profiler_, acfg);
    adapt::GovernorConfig gc = cfg_.governor_cfg;
    gc.initial_strategy = cfg_.strategy;
    gc.initial_eager_evict = cfg_.eager_evict;
    gc.num_pes = m.num_pes;
    gc.channel_bytes_per_second = m.channel_capacity(m.slow, m.fast);
    governor_ = std::make_unique<adapt::StrategyGovernor>(gc);
    engine_.set_advisor(advisor_.get());
    if (cfg_.decision_log_depth > 0) {
      decisions_ =
          std::make_unique<telemetry::DecisionLog>(cfg_.decision_log_depth);
      decisions_->set_clock([this] { return now_; }); // virtual seconds
      advisor_->set_decision_sink(decisions_.get());
      governor_->set_decision_sink(decisions_.get());
    }
  }
  if (cfg_.serve.enabled()) {
    HMR_CHECK_MSG(!cfg_.adaptive,
                  "tenancy and adaptive guidance are mutually exclusive "
                  "(both claim the engine's advisor slot)");
    tenancy_ =
        std::make_unique<serve::TenantEngine>(engine_, cfg_.serve, 0.0);
    // Token buckets and latency percentiles run on virtual time.
    tenancy_->set_clock([this] { return now_; });
    if (auto* adv = tenancy_->advisor()) engine_.set_advisor(adv);
  }
}

/// End-of-run invariant audit: the DES drives the serial engine from
/// one thread and both run() exits require quiescence first, so the
/// audit is always exact here.  Aborts on violation (check_audit).
/// Under tenancy the decorator's audit adds ledger conservation and
/// admission bookkeeping on top of the inner engine's.
void SimExecutor::final_audit() {
  if (!telemetry::audit_enabled(cfg_.audit)) return;
  telemetry::AuditReport r;
  r.time = now_;
  r.at_quiescence = true;
  r.violations = tenancy_ ? tenancy_->audit_invariants(true)
                          : engine_.audit_invariants(true);
  if (attrib_) {
    const auto roll = attrib_->rollup();
    if (roll.sum_violations > 0) {
      r.violations.push_back(
          "attribution buckets fail to sum to wall time on " +
          std::to_string(roll.sum_violations) + " tasks (worst rel err " +
          std::to_string(roll.worst_rel_err) + ")");
    }
  }
  telemetry::check_audit(r);
}

void SimExecutor::dispatch_arrival(const ooc::TaskDesc& desc) {
  if (!tenancy_) {
    process(engine_.on_task_arrived(desc));
    return;
  }
  std::vector<ooc::Command> cmds;
  const serve::Verdict v = tenancy_->submit(desc, cmds);
  if (v == serve::Verdict::Reject) {
    // The verdict dropped the task (counted in its tenant's stats).
    // A dropped task must not gate successors forever.
    HMR_CHECK_MSG(dependents_.find(desc.id) == dependents_.end(),
                  "task with dependents rejected by admission; raise the "
                  "tenant's max_queued");
  }
  process(std::move(cmds));
}

const ooc::RemoteTierParams* SimExecutor::remote_path(
    ooc::TierId src, ooc::TierId dst) const {
  if (const auto it = remote_params_.find(src);
      it != remote_params_.end()) {
    return &it->second;
  }
  if (const auto it = remote_params_.find(dst);
      it != remote_params_.end()) {
    return &it->second;
  }
  return nullptr;
}

TransferChannel& SimExecutor::channel_for(ooc::TierId src,
                                          ooc::TierId dst) {
  auto& slot = channels_[pair_key(src, dst)];
  if (!slot) {
    if (const auto* rp = remote_path(src, dst)) {
      // Remote migration: the NIC serializes every flow of this
      // direction at the network bandwidth — per-flow and aggregate
      // limits coincide (one NIC, no per-thread memcpy inefficiency).
      slot = std::make_unique<TransferChannel>(rp->bandwidth,
                                               rp->bandwidth);
    } else {
      const auto& m = cfg_.model;
      slot = std::make_unique<TransferChannel>(
          m.copy_rate(src, dst), m.channel_capacity(src, dst));
    }
  }
  return *slot;
}

void SimExecutor::drain_channel(std::uint64_t key) {
  for (const auto flow : channels_.at(key)->advance(now_)) {
    finish_transfer(flow);
  }
}

void SimExecutor::schedule_tick(std::uint64_t key) {
  TransferChannel& ch = *channels_.at(key);
  const double t = ch.next_completion(now_);
  if (!std::isfinite(t)) return;
  eq_.at(t, [this, key] {
    drain_channel(key);
    if (channels_.at(key)->has_flows()) schedule_tick(key);
  });
}

double SimExecutor::exec_duration(const ooc::TaskDesc& desc) const {
  if (cfg_.cache_mode) {
    std::uint64_t bytes = 0;
    for (const auto& d : desc.deps) bytes += wl_->blocks()[d.block].bytes;
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(bytes) * desc.work_factor);
    return cfg_.model.cache_mode_compute_time(scaled, wss_,
                                              cfg_.model.num_pes);
  }
  // Bytes stream from whichever tier each dependence is resident on —
  // on a two-tier model this collapses to the classic fast/slow split.
  const auto& m = cfg_.model;
  std::vector<std::uint64_t> by_tier(m.tiers.size(), 0);
  for (const auto& d : desc.deps) {
    const auto st = engine_.block_state(d.block);
    HMR_CHECK_MSG(st == ooc::BlockState::InFast ||
                      st == ooc::BlockState::InSlow,
                  "running task depends on an in-flight block");
    by_tier[engine_.block_tier(d.block)] += wl_->blocks()[d.block].bytes;
  }
  const auto scale = [&](std::uint64_t b) {
    return static_cast<std::uint64_t>(static_cast<double>(b) *
                                      desc.work_factor);
  };
  if (cfg_.hybrid_cache_fraction > 0 && by_tier[m.slow] > 0) {
    // Hybrid (two-tier only, enforced at construction): slow-resident
    // accesses go through the cached part of MCDRAM at the cache-mode
    // effective bandwidth.
    const double t_fast =
        m.compute_time2(scale(by_tier[m.fast]), 0, m.num_pes);
    const double share =
        hybrid_slow_bw_ / static_cast<double>(m.num_pes);
    const double sb = static_cast<double>(scale(by_tier[m.slow]));
    return t_fast + sb / share + sb / m.compute_bw_per_pe;
  }
  for (auto& b : by_tier) b = scale(b);
  return m.compute_time(by_tier, m.num_pes);
}

void SimExecutor::process(std::vector<ooc::Command> cmds) {
  for (const auto& c : cmds) {
    switch (c.kind) {
      case ooc::Command::Kind::Run: {
        if (cfg_.node_run_queue) {
          // Shared run queue: any idle PE may execute the task.
          node_q_.push_back(c.task);
          pump_node_queue();
          break;
        }
        const auto pe = static_cast<std::size_t>(c.pe);
        Job j;
        j.is_task = true;
        j.task = c.task;
        pes_[pe].q.push_back(std::move(j));
        pump_pe(pe);
        break;
      }
      case ooc::Command::Kind::Fetch:
      case ooc::Command::Kind::Evict: {
        if (profiler_ && c.kind == ooc::Command::Kind::Fetch) {
          profiler_->on_fetch(c.block, wl_->blocks()[c.block].bytes);
        }
        Job j;
        j.cmd = c;
        if (c.agent == ooc::kWorkerInline) {
          // Synchronous pre/post-processing work: jumps ahead of any
          // queued tasks on the worker (it happens inside the current
          // entry-method boundary, before the scheduler moves on).
          const auto pe = static_cast<std::size_t>(c.pe);
          pes_[pe].q.push_front(std::move(j));
          pump_pe(pe);
        } else {
          enqueue_agent(c);
        }
        break;
      }
    }
  }
  if (governor_) {
    peak_inflight_ = std::max(peak_inflight_, engine_.inflight_fetches());
    if (engine_.total_waiting() > 0) phase_contended_ = true;
  }
}

void SimExecutor::enqueue_agent(const ooc::Command& c) {
  HMR_CHECK(num_agents_ > 0);
  const auto a = static_cast<std::size_t>(c.agent % num_agents_);
  Job j;
  j.cmd = c;
  auto& q = agents_[a].q;
  if (tenancy_ && tenancy_->priority_dispatch()) {
    // Priority-aware preemption of queued work: this command enters
    // ahead of every queued command of worse dispatch rank (evicts
    // outrank fetches; fetches rank by tenant QoS).  In-progress
    // transfers are never interrupted.
    const int rank = tenancy_->dispatch_rank(c);
    auto pos = q.end();
    for (auto qit = q.begin(); qit != q.end(); ++qit) {
      if (tenancy_->dispatch_rank(qit->cmd) > rank) {
        pos = qit;
        break;
      }
    }
    if (pos != q.end() && c.kind == ooc::Command::Kind::Fetch) {
      const serve::TenantId w = tenancy_->command_tenant(c);
      for (auto qit = pos; qit != q.end(); ++qit) {
        if (qit->cmd.kind == ooc::Command::Kind::Fetch) {
          tenancy_->note_displacement(
              w, tenancy_->command_tenant(qit->cmd));
        }
      }
    }
    q.insert(pos, std::move(j));
  } else {
    q.push_back(std::move(j));
  }
  pump_agent(a);
}

void SimExecutor::pump_node_queue() {
  // Hand shared ready tasks to idle PEs (lowest index first, like a
  // converse scheduler polling the node queue).
  for (std::size_t pe = 0; pe < pes_.size() && !node_q_.empty(); ++pe) {
    Lane& lane = pes_[pe];
    if (lane.busy || !lane.q.empty()) continue;
    Job j;
    j.is_task = true;
    j.task = node_q_.front();
    node_q_.pop_front();
    lane.q.push_back(std::move(j));
    pump_pe(pe);
  }
}

void SimExecutor::pump_pe(std::size_t pe) {
  Lane& lane = pes_[pe];
  if (lane.busy || lane.q.empty()) {
    if (cfg_.node_run_queue && !lane.busy && !node_q_.empty()) {
      pump_node_queue();
    }
    return;
  }
  Job job = std::move(lane.q.front());
  lane.q.pop_front();
  lane.busy = true;
  if (job.is_task) {
    const auto it = descs_.find(job.task);
    HMR_CHECK(it != descs_.end());
    const double dur = exec_duration(it->second);
    const double start = now_;
    const auto arrive_it = arrive_.find(job.task);
    HMR_CHECK(arrive_it != arrive_.end());
    result_.task_wait.add(start - arrive_it->second);
    result_.task_exec.add(dur);
    if (mh_.task_wait_ns) {
      mh_.task_wait_ns->observe(static_cast<std::uint64_t>(
          (start - arrive_it->second) * 1e9));
      mh_.run_q_depth->observe(lane.q.size() + 1);
    }
    eq_.at(now_ + dur, [this, id = job.task, pe, start, dur] {
      finish_task(id, pe, start, dur);
    });
  } else {
    start_transfer(job.cmd, pe, /*on_worker=*/true);
  }
}

void SimExecutor::pump_agent(std::size_t a) {
  Lane& lane = agents_[a];
  if (lane.busy || lane.q.empty()) return;
  Job job = std::move(lane.q.front());
  lane.q.pop_front();
  lane.busy = true;
  HMR_DCHECK(!job.is_task);
  start_transfer(job.cmd, a, /*on_worker=*/false);
}

void SimExecutor::start_transfer(const ooc::Command& cmd,
                                 std::size_t lane_index, bool on_worker) {
  const bool fetch = cmd.kind == ooc::Command::Kind::Fetch;
  const double t0 = now_;
  const std::int32_t trace_lane =
      on_worker ? static_cast<std::int32_t>(lane_index)
                : cfg_.model.num_pes + static_cast<std::int32_t>(lane_index);
  // Step 1 of the paper's migration: numa_alloc_onnode on the
  // destination (plus the numa_free at the end) — a fixed overhead
  // before the copy proper starts.  A remote endpoint adds the
  // network's per-transfer latency (the message chain setup) before
  // the serialization phase.
  const ooc::RemoteTierParams* rp =
      remote_path(cmd.src_tier, cmd.dst_tier);
  const double start_delay =
      cfg_.model.alloc_overhead + (rp != nullptr ? rp->latency : 0.0);
  eq_.at(now_ + start_delay,
         [this, cmd, rp, lane_index, on_worker, fetch, t0, trace_lane] {
           if (fetch && cmd.nocopy) {
             // writeonly_nocopy: the buffer exists, no bytes move.
             tracer_.record(trace_lane, trace::Category::Prefetch, t0, now_,
                            cmd.task == ooc::kInvalidTask ? 0 : cmd.task);
             if (cmd.task != ooc::kInvalidTask) {
               note_wait(cmd.task, t0, cmd);
             }
             Lane& lane = on_worker ? pes_[lane_index] : agents_[lane_index];
             lane.busy = false;
             if (on_worker) result_.worker_transfer_seconds += now_ - t0;
             process(tenancy_ ? tenancy_->on_fetch_complete(cmd.block)
                              : engine_.on_fetch_complete(cmd.block));
             if (on_worker) {
               pump_pe(lane_index);
             } else {
               pump_agent(lane_index);
             }
             return;
           }
           const std::uint64_t key = pair_key(cmd.src_tier, cmd.dst_tier);
           TransferChannel& ch = channel_for(cmd.src_tier, cmd.dst_tier);
           drain_channel(key);
           const std::uint64_t id = next_flow_++;
           const std::uint64_t raw = wl_->blocks()[cmd.block].bytes;
           // Remote flow: scale the bytes so a solo flow takes exactly
           // the network's serialize time — when the message-rate term
           // dominates (small blocks), the flow occupies the NIC
           // longer than bytes/bandwidth would.
           const double bytes =
               rp != nullptr
                   ? rp->serialize_seconds(raw) * rp->bandwidth
                   : static_cast<double>(raw);
           ch.add_flow(id, bytes, now_);
           FlowCtx ctx;
           ctx.cmd = cmd;
           ctx.trace_lane = trace_lane;
           ctx.on_worker = on_worker;
           ctx.lane_index = lane_index;
           ctx.t0 = t0;
           flows_.emplace(id, ctx);
           schedule_tick(key);
         });
}

void SimExecutor::finish_transfer(std::uint64_t flow_id) {
  const auto it = flows_.find(flow_id);
  HMR_CHECK(it != flows_.end());
  const FlowCtx ctx = it->second;
  flows_.erase(it);

  const bool fetch = ctx.cmd.kind == ooc::Command::Kind::Fetch;
  // Interval.task == 0 means "not task-bound" (kInvalidTask = an
  // untriggered eviction).
  const ooc::TaskId cause =
      ctx.cmd.task == ooc::kInvalidTask ? 0 : ctx.cmd.task;
  const std::uint64_t bytes = wl_->blocks()[ctx.cmd.block].bytes;
  tracer_.record_migration(
      ctx.trace_lane,
      fetch ? trace::Category::Prefetch : trace::Category::Evict, ctx.t0,
      now_, cause, ctx.cmd.src_tier, ctx.cmd.dst_tier, bytes);
  if (mh_.fetch_ns) {
    (fetch ? mh_.fetch_ns : mh_.evict_ns)
        ->observe(static_cast<std::uint64_t>((now_ - ctx.t0) * 1e9));
  }
  if (flight_) {
    flight_->record(ctx.cmd.block, {now_, cause, ctx.cmd.src_tier,
                                    ctx.cmd.dst_tier, bytes, fetch});
  }
  if (const auto* rp = remote_path(ctx.cmd.src_tier, ctx.cmd.dst_tier)) {
    result_.remote_messages += rp->messages(bytes);
  }
  if (cause != 0) note_wait(cause, ctx.t0, ctx.cmd);
  Lane& lane = ctx.on_worker ? pes_[ctx.lane_index] : agents_[ctx.lane_index];
  lane.busy = false;
  if (ctx.on_worker) result_.worker_transfer_seconds += now_ - ctx.t0;

  if (tenancy_) {
    process(fetch ? tenancy_->on_fetch_complete(ctx.cmd.block)
                  : tenancy_->on_evict_complete(ctx.cmd.block));
  } else {
    process(fetch ? engine_.on_fetch_complete(ctx.cmd.block)
                  : engine_.on_evict_complete(ctx.cmd.block));
  }
  if (ctx.on_worker) {
    pump_pe(ctx.lane_index);
    if (cfg_.node_run_queue) pump_node_queue();
  } else {
    pump_agent(ctx.lane_index);
  }
}

/// Remember one migration the task caused; decomposed into stall
/// buckets when the task retires.  Dedup'd fetches attribute to their
/// causing task only — other tasks behind the same block count the
/// time as queue wait.
void SimExecutor::note_wait(ooc::TaskId cause, double t0,
                            const ooc::Command& cmd) {
  if (!attrib_) return;
  telemetry::WaitSegment s;
  s.t0 = t0;
  s.t1 = now_;
  s.src = cmd.src_tier;
  s.dst = cmd.dst_tier;
  s.remote = remote_path(cmd.src_tier, cmd.dst_tier) != nullptr;
  s.evict = cmd.kind == ooc::Command::Kind::Evict;
  s.block = cmd.block;
  waits_[cause].push_back(s);
}

void SimExecutor::finish_task(ooc::TaskId id, std::size_t pe, double t_start,
                              double duration) {
  tracer_.record(static_cast<std::int32_t>(pe), trace::Category::Compute,
                 t_start, now_, id);
  if (attrib_) {
    telemetry::TaskAttribution a;
    a.task = id;
    a.pe = static_cast<std::int32_t>(pe);
    a.phase = attrib_phase_;
    const auto dit = descs_.find(id);
    if (dit != descs_.end()) {
      a.tenant = dit->second.tenant;
      if (attrib_->keep_tasks() && !cfg_.cache_mode) {
        // Residency at retirement == residency at launch: dependency
        // pins keep the blocks in place while the task runs.
        a.bytes_by_tier.assign(cfg_.model.tiers.size(), 0);
        for (const auto& d : dit->second.deps) {
          a.bytes_by_tier[engine_.block_tier(d.block)] +=
              wl_->blocks()[d.block].bytes;
        }
        // Store what exec_duration fed the roofline (work_factor in).
        for (auto& b : a.bytes_by_tier) {
          b = static_cast<std::uint64_t>(static_cast<double>(b) *
                                         dit->second.work_factor);
        }
      }
    }
    const auto ait = arrive_.find(id);
    a.arrive = ait != arrive_.end() ? ait->second : t_start;
    a.start = t_start;
    a.end = now_;
    std::vector<telemetry::WaitSegment> segs;
    if (const auto wit = waits_.find(id); wit != waits_.end()) {
      segs = std::move(wit->second);
      waits_.erase(wit);
    }
    telemetry::decompose_wait(a, std::move(segs));
    attrib_->record(0, a);
  }
  result_.compute_lane_seconds += duration;
  ++result_.tasks_completed;
  pes_[pe].busy = false;
  if (tenancy_) {
    // Mirror the compute interval onto the task's tenant lane (lanes
    // after the workers and IO agents) for per-tenant timelines.
    // Tracer::summarize(worker_lanes) clips to the worker lanes, so
    // utilization figures are unaffected.
    if (tracer_.enabled()) {
      const auto dit = descs_.find(id);
      if (dit != descs_.end()) {
        tracer_.record(
            cfg_.model.num_pes + num_agents_ +
                static_cast<std::int32_t>(dit->second.tenant),
            trace::Category::Compute, t_start, now_, id);
      }
    }
    process(tenancy_->on_task_complete(id, static_cast<std::int32_t>(pe)));
  } else {
    process(engine_.on_task_complete(id));
  }
  // DAG delivery: completion releases successor messages.
  if (const auto it = dependents_.find(id); it != dependents_.end()) {
    for (const auto succ : it->second) {
      auto pit = pending_preds_.find(succ);
      HMR_DCHECK(pit != pending_preds_.end() && pit->second > 0);
      if (--pit->second == 0) {
        const auto dit = descs_.find(succ);
        HMR_CHECK(dit != descs_.end());
        ++dag_injected_;
        arrive_[succ] = now_;
        profile_arrival(dit->second);
        dispatch_arrival(dit->second);
      }
    }
  }
  pump_pe(pe);
  if (cfg_.node_run_queue) pump_node_queue();
}

void SimExecutor::inject_task(const ooc::TaskDesc& desc) {
  ++dag_injected_;
  arrive_[desc.id] = now_;
  profile_arrival(desc);
  dispatch_arrival(desc);
}

void SimExecutor::profile_arrival(const ooc::TaskDesc& desc) {
  if (!profiler_) return;
  profiler_->on_task_arrived(
      desc, [this](ooc::BlockId b) { return wl_->blocks()[b].bytes; });
}

void SimExecutor::export_metrics() {
  if (!cfg_.metrics) return;
  telemetry::MetricsRegistry& reg = *cfg_.metrics;
  telemetry::export_policy_stats(reg, engine_.stats());
  if (attrib_) attrib_->export_metrics(reg);
  if (tenancy_) tenancy_->export_metrics(reg);
  reg.counter("hmr_trace_events_dropped_total", "",
              "Trace intervals lost to ring overflow")
      .set(tracer_.dropped());
  const auto& tiers = engine_.tiers();
  for (std::int32_t k = 0; k < engine_.num_levels(); ++k) {
    const std::string labels =
        telemetry::prom_label("level", std::to_string(k));
    reg.gauge("hmr_tier_used_bytes", labels,
              "Bytes claimed on the hierarchy level")
        .set(static_cast<double>(engine_.tier_used(k)));
    reg.gauge("hmr_tier_capacity_bytes", labels,
              "Level budget (0 = unbounded bottom)")
        .set(static_cast<double>(
            tiers[static_cast<std::size_t>(k)].capacity));
  }
}

void SimExecutor::governor_phase_end(double t_iter) {
  const double phase_seconds = now_ - t_iter;
  adapt::PhaseObservation obs;
  obs.phase_seconds = phase_seconds;
  const ooc::PolicyEngine::Stats& st = engine_.stats();
  obs.tasks = st.tasks_run - phase_base_.tasks_run;
  obs.fetches = st.fetches - phase_base_.fetches;
  obs.fetch_bytes = st.fetch_bytes - phase_base_.fetch_bytes;
  obs.evict_bytes = st.evict_bytes - phase_base_.evict_bytes;
  obs.fetch_dedup_hits = st.fetch_dedup_hits - phase_base_.fetch_dedup_hits;
  obs.lru_reclaims = st.lru_reclaims - phase_base_.lru_reclaims;
  obs.peak_inflight_fetches = peak_inflight_;
  obs.admission_contended = phase_contended_;
  obs.unique_bytes = profiler_->end_phase().unique_bytes;
  if (phase_seconds > 0) {
    // Wait fraction from the trace when one is being recorded (the
    // per-phase summary window), else from the compute-seconds delta.
    const double compute =
        tracer_.enabled()
            ? tracer_.summarize(cfg_.model.num_pes, t_iter, now_)
                  .total_of(trace::Category::Compute)
            : result_.compute_lane_seconds - phase_compute_base_;
    const double lane_seconds = phase_seconds * cfg_.model.num_pes;
    obs.wait_fraction =
        std::clamp(1.0 - compute / lane_seconds, 0.0, 1.0);
  }
  phase_base_ = st;
  phase_compute_base_ = result_.compute_lane_seconds;
  peak_inflight_ = 0;
  phase_contended_ = false;

  const adapt::Decision d = governor_->on_phase_end(obs);
  advisor_->set_streaming_bypass(d.bypass_streaming);
  engine_.set_fair_admission(d.fair_admission);
  engine_.set_strategy(d.strategy);
  process(engine_.set_eager_evict(d.eager_evict));
  process(engine_.set_lru_watermark(d.lru_watermark));
  // Drain any LRU-flush evictions so the next phase starts clean.
  while (!eq_.empty()) {
    auto [t, fn] = eq_.pop();
    now_ = t;
    fn();
  }
  HMR_CHECK_MSG(engine_.quiescent(),
                "governor reconfiguration left transfers outstanding");
}

SimResult SimExecutor::run(const Workload& w) {
  HMR_CHECK_MSG(!ran_, "SimExecutor::run may only be called once");
  ran_ = true;
  wl_ = &w;

  const auto& blocks = w.blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    HMR_CHECK_MSG(blocks[i].id == i, "workload block ids must be dense");
    if (tenancy_) {
      HMR_CHECK_MSG(blocks[i].home_level < 0,
                    "home_level placement is not supported under tenancy");
      tenancy_->add_block(blocks[i].id, blocks[i].bytes);
    } else {
      engine_.add_block(blocks[i].id, blocks[i].bytes,
                        blocks[i].home_level);
    }
    wss_ += blocks[i].bytes;
  }

  if (cfg_.hybrid_cache_fraction > 0) {
    const auto mcdram = cfg_.model.tier(cfg_.model.fast).capacity;
    hybrid_cache_ = static_cast<std::uint64_t>(
        static_cast<double>(mcdram) * cfg_.hybrid_cache_fraction);
    // The cache serves whatever does not fit the flat budget.
    const std::uint64_t flat = mcdram - hybrid_cache_;
    const std::uint64_t slow_wss = wss_ > flat ? wss_ - flat : 1;
    hybrid_slow_bw_ = cfg_.model.cache_mode_bw(slow_wss, hybrid_cache_);
  }

  // Dependency-DAG mode: any task with predecessors switches delivery
  // from per-iteration barriers to completion-triggered injection.
  bool dag = false;
  for (int iter = 0; iter < w.iterations() && !dag; ++iter) {
    for (const auto& t : w.iteration_tasks(iter)) {
      if (!t.predecessors.empty()) {
        dag = true;
        break;
      }
    }
  }
  if (dag) {
    HMR_CHECK_MSG(w.iterations() == 1,
                  "dependency-DAG workloads must present all tasks as one "
                  "iteration");
    std::vector<ooc::TaskId> roots;
    for (auto& t : w.iteration_tasks(0)) {
      const auto id = t.id;
      const auto preds = t.predecessors;
      auto [it, ins] = descs_.emplace(id, std::move(t));
      HMR_CHECK_MSG(ins, "duplicate task id");
      if (preds.empty()) {
        roots.push_back(id);
      } else {
        pending_preds_[id] = preds.size();
        for (const auto p : preds) dependents_[p].push_back(id);
      }
    }
    for (const auto& [id, n_preds] : pending_preds_) {
      (void)n_preds;
      for (const auto pred : descs_.at(id).predecessors) {
        HMR_CHECK_MSG(descs_.count(pred),
                      "task depends on an unknown predecessor");
      }
    }
    for (const auto id : roots) inject_task(descs_.at(id));
    while (!eq_.empty()) {
      auto [t, fn] = eq_.pop();
      now_ = t;
      fn();
    }
    HMR_CHECK_MSG(dag_injected_ == descs_.size(),
                  "dependency cycle: some tasks were never released");
    HMR_CHECK_MSG(engine_quiescent(),
                  "DAG run ended with tasks or transfers outstanding");
    result_.iteration_times.push_back(now_);
    result_.total_time = now_;
    result_.policy = engine_.stats();
    result_.final_strategy = engine_.config().strategy;
    result_.final_eager_evict = engine_.config().eager_evict;
    if (tracer_.enabled()) tracer_.fill_idle(0, now_);
    final_audit();
    export_metrics();
    return result_;
  }

  for (int iter = 0; iter < w.iterations(); ++iter) {
    const double t_iter = now_;
    attrib_phase_ = iter;
    for (auto& t : w.iteration_tasks(iter)) {
      arrive_[t.id] = now_;
      auto [it, ins] = descs_.emplace(t.id, std::move(t));
      HMR_CHECK_MSG(ins, "duplicate task id across iterations");
      profile_arrival(it->second);
      dispatch_arrival(it->second);
    }
    while (!eq_.empty()) {
      auto [t, fn] = eq_.pop();
      now_ = t;
      fn();
    }
    if (!engine_quiescent()) {
      if (tenancy_) {
        std::fprintf(stderr, "hmr: sim wedge: tenancy deferred=%zu\n",
                     tenancy_->total_waiting() - engine_.total_waiting());
      }
      std::fprintf(stderr,
                   "hmr: sim wedge: waiting=%zu live=%zu inflight_fetch=%zu "
                   "inflight_evict=%zu fast=%llu/%llu\n",
                   engine_.total_waiting(), engine_.live_tasks(),
                   engine_.inflight_fetches(), engine_.inflight_evicts(),
                   static_cast<unsigned long long>(engine_.fast_used()),
                   static_cast<unsigned long long>(engine_.fast_capacity()));
      for (const auto& [key, ch] : channels_) {
        if (ch->flow_count() == 0) continue;
        std::fprintf(stderr, "  channel %u->%u flows=%zu\n",
                     static_cast<unsigned>(key >> 32),
                     static_cast<unsigned>(key & 0xffffffffu),
                     ch->flow_count());
      }
      for (std::size_t pe = 0; pe < pes_.size(); ++pe) {
        if (pes_[pe].busy || !pes_[pe].q.empty()) {
          std::fprintf(stderr, "  pe %zu busy=%d jobs=%zu\n", pe,
                       pes_[pe].busy, pes_[pe].q.size());
        }
      }
      for (std::size_t a = 0; a < agents_.size(); ++a) {
        if (agents_[a].busy || !agents_[a].q.empty()) {
          std::fprintf(stderr, "  agent %zu busy=%d jobs=%zu\n", a,
                       agents_[a].busy, agents_[a].q.size());
        }
      }
      engine_.debug_dump(stderr);
      HMR_CHECK_MSG(false,
                    "iteration ended with tasks or transfers outstanding");
    }
    HMR_CHECK(node_q_.empty());
    for (const auto& lane : pes_) {
      HMR_CHECK(!lane.busy && lane.q.empty());
    }
    for (const auto& lane : agents_) {
      HMR_CHECK(!lane.busy && lane.q.empty());
    }
    result_.iteration_times.push_back(now_ - t_iter);
    // Phase boundary: the governor observes the finished iteration and
    // retunes the engine for the next one (no point after the last).
    if (governor_ && iter + 1 < w.iterations()) governor_phase_end(t_iter);
    if (history_) {
      // Refresh the registry (the DES otherwise exports only at the
      // end of run()) so each sample carries current engine counters.
      export_metrics();
      history_->sample();
    }
  }

  result_.total_time = now_;
  result_.policy = engine_.stats();
  result_.final_strategy = engine_.config().strategy;
  result_.final_eager_evict = engine_.config().eager_evict;
  if (governor_) result_.governor_switches = governor_->switches();
  if (tracer_.enabled()) tracer_.fill_idle(0, now_);
  final_audit();
  export_metrics();
  return result_;
}

} // namespace hmr::sim
