#pragma once
// SimExecutor: discrete-event execution of a Workload under one
// scheduling Strategy on a modeled heterogeneous-memory node.
//
// This is the paper-scale executor: it runs the PolicyEngine protocol
// on a virtual KNL (64 PEs, 16 GB MCDRAM, 96 GB DDR4) with virtual
// time, so the figure benches can sweep working sets of tens of GB on
// any host.  Timing comes from hw::MachineModel:
//   * task execution: bandwidth-shared roofline (compute_time) over
//     the tier each dependence is resident on,
//   * migrations: one fluid TransferChannel per ordered tier pair
//     (created on first use), each capped per-flow and in aggregate —
//     a two-tier model gets exactly the classic fetch (slow->fast) and
//     evict (fast->slow) channels,
//   * fixed overheads for scheduling and numa_alloc/free.
//
// Lanes: worker PEs are trace lanes [0, num_pes); IO agents are lanes
// [num_pes, num_pes + num_agents).  Worker-inline transfers (SyncNoIo,
// or evict_by_worker) block and are traced on the worker's own lane —
// that *is* the synchronous overhead of the paper's Fig 6a.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "adapt/block_profiler.hpp"
#include "adapt/placement_advisor.hpp"
#include "adapt/strategy_governor.hpp"
#include "hw/machine_model.hpp"
#include "ooc/policy_engine.hpp"
#include "serve/tenant_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/transfer_channel.hpp"
#include "sim/workload.hpp"
#include "telemetry/attrib.hpp"
#include "telemetry/decision_log.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/history.hpp"
#include "telemetry/metrics.hpp"
#include "trace/tracer.hpp"
#include "util/stats.hpp"

namespace hmr::sim {

struct SimConfig {
  hw::MachineModel model;
  ooc::Strategy strategy = ooc::Strategy::MultiIo;

  // PolicyEngine knobs (see ooc::PolicyEngine::Config).
  bool eager_evict = true;
  bool evict_by_worker = false;
  bool writeonly_nocopy = false;

  /// Fast-tier budget override in bytes; 0 = the model's fast tier
  /// capacity (16 GB on KNL).  Applies to the top hierarchy level.
  std::uint64_t fast_capacity = 0;

  /// Placement hierarchy override, fastest level first (contract of
  /// ooc::PolicyEngine::Config::tiers).  Empty = derive from `model`:
  /// its tiers in bandwidth order, bottom unbounded — so a two-tier
  /// model behaves exactly like the classic fast/slow simulator and a
  /// three-tier model gets a genuine three-level hierarchy.
  std::vector<ooc::TierDesc> tiers;
  /// Demotion cascade on >2-level hierarchies (see
  /// ooc::PolicyEngine::Config::demote_cascade).
  bool demote_cascade = true;

  /// Physical IO threads.  0 = strategy default (SingleIo: 1,
  /// MultiIo: one per PE).  For MultiIo, k < num_pes assigns each a
  /// subgroup of wait queues (engine agent a -> thread a % k) — the
  /// paper's §IV-B future-work knob, measured by bench/abl_iothreads.
  int io_threads = 0;

  /// Record a full interval trace (needed for figs 5/6 and timelines).
  bool trace = false;
  /// Tracer knobs (ring capacity, deprecated serial fallback).
  trace::Tracer::Options trace_opts;

  /// Caller-owned metrics registry (optional).  When set, the executor
  /// maintains latency/wait/queue-depth histograms in *virtual*
  /// nanoseconds and mirrors engine stats, tier occupancy and trace
  /// drops into it at the end of run().
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Block flight recorder depth (0 = off; the DES can run millions of
  /// virtual migrations, so this is opt-in unlike the rt executor).
  /// The HMR_FLIGHT_DEPTH environment variable overrides a non-zero
  /// value at construction (clamped to [0, 1024]).
  std::size_t flight_depth = 0;
  /// Metrics history ring: with `metrics` set, sample the registry at
  /// every iteration boundary (virtual timestamps) into a bounded ring
  /// readable through history() (0 disables).
  std::size_t history_depth = 240;
  /// Decision provenance ring (adaptive runs): keep the last N
  /// advisor/governor decisions with their triggering inputs,
  /// timestamped in virtual seconds (0 disables).
  std::size_t decision_log_depth = 1024;

  /// Per-task stall attribution (telemetry::AttributionTable): every
  /// retired task's wall time decomposed into compute / fetch-wait /
  /// queue-wait / remote-serialization / eviction-stall buckets with
  /// per-phase, per-tenant, per-tier-pair and per-block rollups.  On
  /// automatically whenever `metrics` is set (rollups are O(1) per
  /// task); set this to force it on without a registry.
  bool attrib = false;
  /// Retain each task's full TaskAttribution record (bytes-by-tier
  /// included) so the what-if estimator can re-cost individual tasks.
  bool attrib_keep_tasks = false;

  /// Engine invariant audit at the end of run(): -1 = auto (on in
  /// debug / sanitizer builds, HMR_AUDIT env overrides), 0 = off,
  /// 1 = on.  A violation aborts (telemetry::check_audit).
  int audit = -1;

  /// Model KNL *cache mode* instead of flat mode (paper §III-B; the
  /// comparison the paper defers to future work).  All blocks live in
  /// DDR4 and the hardware transparently caches them in MCDRAM; task
  /// time follows hw::MachineModel::cache_mode_compute_time with the
  /// node-wide working set.  Requires a non-moving strategy (forced to
  /// DdrOnly placement internally).
  bool cache_mode = false;

  /// Node-level run queue (paper §IV-B future work: "we plan to use a
  /// node-level run queue").  Ready tasks go to one shared queue and
  /// any idle PE picks them up, smoothing the load imbalance the
  /// per-PE run queues leave when chare counts do not divide evenly.
  bool node_run_queue = false;

  /// KNL *hybrid mode* (paper §III-B): this fraction of MCDRAM is flat
  /// (the runtime's prefetch budget); the rest serves as a hardware
  /// cache in front of DDR4, so slow-resident accesses run at the
  /// cache-mode effective bandwidth instead of raw DDR4.  0 disables
  /// (pure flat mode); combine with any strategy.
  double hybrid_cache_fraction = 0.0;

  /// Multi-tenant serving (src/serve/): when tenants are registered,
  /// the engine is wrapped in a serve::TenantEngine keyed on
  /// TaskDesc::tenant — QoS-aware admission (token buckets, queue
  /// backpressure, quota gate, starvation aging), per-tenant placement
  /// quotas with quota-aware demotion advice, and priority dispatch
  /// (an SLO tenant's fetch displaces a best-effort tenant's queued
  /// prefetch on the IO agent lanes).  Token buckets and latency
  /// percentiles run on virtual time.  Incompatible with `adaptive`
  /// (both want the engine's advisor slot).
  serve::ServeConfig serve;

  /// Online adaptive guidance (src/adapt/): profile block accesses,
  /// install a PlacementAdvisor on the engine, and let a
  /// StrategyGovernor retune strategy / eviction / fair admission at
  /// every iteration boundary.  `strategy` and `eager_evict` above are
  /// the *starting* configuration.  Requires a movement strategy.
  bool adaptive = false;
  adapt::ProfilerConfig profiler_cfg;
  adapt::GovernorConfig governor_cfg; // initial_*/machine fields are
                                      // overwritten from this config
};

struct SimResult {
  double total_time = 0;
  std::vector<double> iteration_times;
  std::uint64_t tasks_completed = 0;
  ooc::PolicyEngine::Stats policy;

  /// Per-task latency from message arrival to kernel start (queueing +
  /// fetch wait; the paper's pre-step delay in Fig 6).
  RunningStats task_wait;
  /// Per-task kernel execution time.
  RunningStats task_exec;
  /// Seconds each worker lane spent blocked on synchronous fetch/evict
  /// (zero under fully asynchronous strategies).
  double worker_transfer_seconds = 0;
  /// Total compute lane-seconds (for utilization figures).
  double compute_lane_seconds = 0;
  /// Network messages the remote-tier migrations decomposed into
  /// (zero on all-local hierarchies; deterministic, so CI gates on it).
  std::uint64_t remote_messages = 0;

  // Adaptive runs only (SimConfig::adaptive):
  /// Strategy / evict-policy changes the governor made.
  std::uint64_t governor_switches = 0;
  /// Configuration the run ended on.
  ooc::Strategy final_strategy = ooc::Strategy::MultiIo;
  bool final_eager_evict = true;

  /// Fraction of worker lane-time that is not compute over the run
  /// span (the "red" of the paper's projections figures).
  double worker_overhead_fraction(int num_pes) const {
    const double span_total = total_time * num_pes;
    if (span_total <= 0) return 0;
    return 1.0 - compute_lane_seconds / span_total;
  }
};

class SimExecutor {
public:
  explicit SimExecutor(SimConfig cfg);

  /// Run the workload to quiescence; returns timing and stats.
  /// May be called once per executor instance.
  SimResult run(const Workload& w);

  /// Valid after run() when cfg.trace was set.
  const trace::Tracer& tracer() const { return tracer_; }
  trace::Tracer& tracer() { return tracer_; }

  int num_agents() const { return num_agents_; }

  /// Adaptive runs: the guidance components (nullptr otherwise).
  const adapt::BlockProfiler* profiler() const { return profiler_.get(); }
  const adapt::StrategyGovernor* governor() const { return governor_.get(); }

  /// Block flight recorder (nullptr when SimConfig::flight_depth == 0).
  const telemetry::BlockFlightRecorder* flight_recorder() const {
    return flight_.get();
  }

  /// Metrics history ring sampled at iteration boundaries (nullptr
  /// unless SimConfig::metrics and history_depth > 0).
  const telemetry::HistoryBuffer* history() const { return history_.get(); }

  /// Decision provenance log (nullptr unless SimConfig::adaptive and
  /// decision_log_depth > 0).
  const telemetry::DecisionLog* decision_log() const {
    return decisions_.get();
  }

  /// Per-task stall attribution (nullptr unless SimConfig::attrib or
  /// SimConfig::metrics).
  const telemetry::AttributionTable* attribution() const {
    return attrib_.get();
  }

  /// Multi-tenant serving decorator (nullptr unless SimConfig::serve
  /// registered tenants).
  const serve::TenantEngine* tenancy() const { return tenancy_.get(); }

  /// The engine's ledgers after run() — cluster BlockStores reconcile
  /// per-level residency against the PlacementCoordinator with this.
  const ooc::PolicyEngine& engine() const { return engine_; }

private:
  struct Job {
    bool is_task = false;
    ooc::TaskId task = ooc::kInvalidTask;
    ooc::Command cmd; // transfer jobs
  };

  struct Lane {
    bool busy = false;
    std::deque<Job> q;
  };

  struct FlowCtx {
    ooc::Command cmd;
    std::int32_t trace_lane = 0;
    bool on_worker = false;
    std::size_t lane_index = 0; // index into pes_ or agents_
    double t0 = 0;
  };

  void process(std::vector<ooc::Command> cmds);
  /// Route one arrival: straight to the engine, or through tenancy
  /// admission (Reject drops the task; Defer parks it for release on
  /// a later engine event).
  void dispatch_arrival(const ooc::TaskDesc& desc);
  /// Queue an IO command on its agent lane — QoS-priority insertion
  /// when tenancy's priority dispatch is on, FIFO otherwise.
  void enqueue_agent(const ooc::Command& c);
  bool engine_quiescent() const {
    return tenancy_ ? tenancy_->quiescent() : engine_.quiescent();
  }
  void final_audit();
  void pump_pe(std::size_t pe);
  void pump_node_queue();
  void pump_agent(std::size_t a);
  void start_transfer(const ooc::Command& cmd, std::size_t lane_index,
                      bool on_worker);
  void finish_transfer(std::uint64_t flow_id);
  void finish_task(ooc::TaskId id, std::size_t pe, double t_start,
                   double duration);
  void inject_task(const ooc::TaskDesc& desc);
  void profile_arrival(const ooc::TaskDesc& desc);
  void governor_phase_end(double t_iter);
  double exec_duration(const ooc::TaskDesc& desc) const;
  /// Fluid channel for migrations src -> dst (created on first use
  /// from the model's copy_rate / channel_capacity for that pair, or
  /// from the remote tier's network path when either end is Remote).
  TransferChannel& channel_for(ooc::TierId src, ooc::TierId dst);
  /// Network parameters when either endpoint is a Remote-backed tier
  /// (nullptr for local-to-local migrations).
  const ooc::RemoteTierParams* remote_path(ooc::TierId src,
                                           ooc::TierId dst) const;
  void schedule_tick(std::uint64_t pair_key);
  void drain_channel(std::uint64_t pair_key);

  static std::uint64_t pair_key(ooc::TierId src, ooc::TierId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  SimConfig cfg_;
  ooc::PolicyEngine engine_;
  /// Tenancy decorator over engine_ (null = single-tenant: events go
  /// straight to engine_, byte-identical to the pre-tenancy executor).
  std::unique_ptr<serve::TenantEngine> tenancy_;
  EventQueue eq_;
  double now_ = 0;
  int num_agents_ = 0;

  std::vector<Lane> pes_;
  std::vector<Lane> agents_;
  std::deque<ooc::TaskId> node_q_; // shared run queue (optional)

  /// Migration channels keyed by pair_key(src, dst); lazily created.
  std::unordered_map<std::uint64_t, std::unique_ptr<TransferChannel>>
      channels_;
  /// Network path per Remote-backed tier id (from the engine's
  /// TierDesc::remote params at construction).
  std::unordered_map<ooc::TierId, ooc::RemoteTierParams> remote_params_;
  std::uint64_t next_flow_ = 1;
  std::unordered_map<std::uint64_t, FlowCtx> flows_;

  const Workload* wl_ = nullptr;
  std::uint64_t wss_ = 0;        // node-wide working set
  // Dependency-DAG delivery (tasks with TaskDesc::predecessors).
  std::unordered_map<ooc::TaskId, std::vector<ooc::TaskId>> dependents_;
  std::unordered_map<ooc::TaskId, std::size_t> pending_preds_;
  std::uint64_t dag_injected_ = 0;
  std::uint64_t hybrid_cache_ = 0; // bytes of MCDRAM serving as cache
  double hybrid_slow_bw_ = 0;      // effective bw of cached slow access
  std::unordered_map<ooc::TaskId, ooc::TaskDesc> descs_;
  std::unordered_map<ooc::TaskId, double> arrive_;

  // Adaptive guidance (owned; engine holds a raw advisor pointer).
  std::unique_ptr<adapt::BlockProfiler> profiler_;
  std::unique_ptr<adapt::PlacementAdvisor> advisor_;
  std::unique_ptr<adapt::StrategyGovernor> governor_;
  ooc::PolicyEngine::Stats phase_base_;  // stats at last phase start
  double phase_compute_base_ = 0;        // compute lane-seconds ditto
  std::size_t peak_inflight_ = 0;
  bool phase_contended_ = false;

  // Telemetry: cached instrument handles into the caller's registry
  // (null when SimConfig::metrics is null) and the flight recorder.
  struct MetricHandles {
    telemetry::Histogram* fetch_ns = nullptr;
    telemetry::Histogram* evict_ns = nullptr;
    telemetry::Histogram* task_wait_ns = nullptr;
    telemetry::Histogram* run_q_depth = nullptr;
  } mh_;
  std::unique_ptr<telemetry::BlockFlightRecorder> flight_;
  std::unique_ptr<telemetry::HistoryBuffer> history_;
  std::unique_ptr<telemetry::DecisionLog> decisions_;
  // Stall attribution: migrations a task caused, keyed by that task,
  // consumed (decomposed into buckets) when the task retires.
  std::unique_ptr<telemetry::AttributionTable> attrib_;
  std::unordered_map<ooc::TaskId, std::vector<telemetry::WaitSegment>>
      waits_;
  std::int64_t attrib_phase_ = 0;
  void note_wait(ooc::TaskId cause, double t0, const ooc::Command& cmd);
  void export_metrics();

  trace::Tracer tracer_;
  SimResult result_;
  bool ran_ = false;
};

} // namespace hmr::sim
