#include "sim/stencil_workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hmr::sim {

std::uint64_t Workload::reduced_bytes(int num_pes) const {
  // Upper bound: the byte footprint of the `num_pes` largest tasks of
  // iteration 0 (one concurrent task per PE).  For the regular
  // workloads here every task has the same footprint, so this is just
  // num_pes * footprint.
  auto tasks = iteration_tasks(0);
  std::vector<std::uint64_t> footprints;
  footprints.reserve(tasks.size());
  const auto& blks = blocks();
  for (const auto& t : tasks) {
    std::uint64_t f = 0;
    for (const auto& d : t.deps) f += blks[d.block].bytes;
    footprints.push_back(f);
  }
  std::sort(footprints.rbegin(), footprints.rend());
  std::uint64_t sum = 0;
  for (std::size_t i = 0;
       i < footprints.size() && i < static_cast<std::size_t>(num_pes); ++i) {
    sum += footprints[i];
  }
  return sum;
}

StencilWorkload::Params StencilWorkload::params_for_reduced(
    std::uint64_t total_bytes, std::uint64_t reduced_bytes, int num_pes,
    int iterations) {
  Params p;
  p.total_bytes = total_bytes;
  p.num_pes = num_pes;
  p.iterations = iterations;
  // One concurrent task per PE; footprint ~= interior block (ghost
  // faces are second-order).  interior = reduced / num_pes, so
  // num_chares = total / interior, rounded to keep >= num_pes chares.
  const double interior =
      static_cast<double>(reduced_bytes) / static_cast<double>(num_pes);
  HMR_CHECK(interior > 0);
  int chares = static_cast<int>(
      std::llround(static_cast<double>(total_bytes) / interior));
  chares = std::max(chares, num_pes);
  // Round to a multiple of num_pes for an even block mapping.
  chares = (chares + num_pes - 1) / num_pes * num_pes;
  p.num_chares = chares;
  return p;
}

StencilWorkload::StencilWorkload(Params p) : p_(p) {
  HMR_CHECK(p_.total_bytes > 0);
  HMR_CHECK(p_.num_chares >= p_.num_pes && p_.num_pes > 0);
  HMR_CHECK(p_.iterations > 0);

  interior_bytes_ =
      p_.total_bytes / static_cast<std::uint64_t>(p_.num_chares);
  HMR_CHECK_MSG(interior_bytes_ > 0, "more chares than grid bytes");

  // A chare's sub-grid is a cube of E = (interior/8)^(1/3) doubles per
  // edge; one ghost face carries E^2 doubles.
  const double elems = static_cast<double>(interior_bytes_) / 8.0;
  const double edge = std::cbrt(elems);
  ghost_bytes_ = static_cast<std::uint64_t>(
      std::llround(std::max(edge * edge * 8.0, 8.0)));

  // Blocks: per chare, 1 interior + 6 ghost receive buffers.
  blocks_.reserve(static_cast<std::size_t>(p_.num_chares) * 7);
  ooc::BlockId next = 0;
  for (int c = 0; c < p_.num_chares; ++c) {
    blocks_.push_back({next++, interior_bytes_});
    for (int f = 0; f < 6; ++f) blocks_.push_back({next++, ghost_bytes_});
  }
}

std::vector<ooc::TaskDesc> StencilWorkload::iteration_tasks(int iter) const {
  HMR_CHECK(iter >= 0 && iter < p_.iterations);
  std::vector<ooc::TaskDesc> tasks;
  tasks.reserve(static_cast<std::size_t>(p_.num_chares));
  for (int c = 0; c < p_.num_chares; ++c) {
    ooc::TaskDesc t;
    t.id = static_cast<ooc::TaskId>(iter) *
               static_cast<ooc::TaskId>(p_.num_chares) +
           static_cast<ooc::TaskId>(c);
    // Round-robin mapping: interleaves chares (and therefore message
    // arrival order and the Naive strategy's HBM-resident blocks)
    // evenly across PEs, as Charm++'s default map does.  Block mapping
    // would hand the whole HBM budget to the low-numbered PEs and turn
    // every iteration into a straggler wave.
    t.pe = c % p_.num_pes;
    t.work_factor = p_.work_factor;
    const ooc::BlockId base = static_cast<ooc::BlockId>(c) * 7;
    t.deps.push_back({base, ooc::AccessMode::ReadWrite});
    for (int f = 1; f <= 6; ++f) {
      t.deps.push_back({base + static_cast<ooc::BlockId>(f),
                        ooc::AccessMode::ReadOnly});
    }
    tasks.push_back(std::move(t));
  }
  return tasks;
}

} // namespace hmr::sim
