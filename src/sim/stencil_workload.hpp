#pragma once
// Stencil3D: the paper's first benchmark (§V-A).
//
// A 3D grid of doubles is over-decomposed into a cx*cy*cz grid of
// chares.  Per iteration every chare runs one [prefetch] entry method
// that updates its sub-grid from the halo data received from its six
// face neighbours (Algorithm 2 in the paper).  Dependences per task:
//   * the chare's interior block   — readwrite,
//   * six received ghost-face blocks — readonly.
// Ghost blocks are owned by the receiving chare (they are message
// landing buffers), so stencil tasks share no blocks — exactly the
// property the paper blames for SingleIO's slowdown ("each chare reads
// and writes to independent data blocks in each iteration").
//
// Chares are block-mapped to PEs (chare c -> PE c / chares_per_pe),
// mirroring Charm++ default block mapping.

#include "sim/workload.hpp"

namespace hmr::sim {

class StencilWorkload final : public Workload {
public:
  struct Params {
    /// Total grid working set in bytes (paper: 32 GB).
    std::uint64_t total_bytes = 0;
    /// Number of chares (must allow >= 1 per PE; paper varies this to
    /// set the reduced working set).
    int num_chares = 0;
    int num_pes = 64;
    int iterations = 20;
    /// Kernel passes over the dependence bytes.  The paper performs 20
    /// iterations "to mimic tiling patterns that increase computation"
    /// (§V-A): once a block is resident, the kernel sweeps it many
    /// times, which is what makes prefetching pay for its traffic.
    double work_factor = 20.0;
  };

  /// Convenience: pick num_chares so that `num_pes` concurrent tasks
  /// occupy about `reduced_bytes` of HBM (the paper's 2-8 GB knob).
  static Params params_for_reduced(std::uint64_t total_bytes,
                                   std::uint64_t reduced_bytes, int num_pes,
                                   int iterations = 20);

  explicit StencilWorkload(Params p);

  std::string name() const override { return "Stencil3D"; }
  int iterations() const override { return p_.iterations; }
  const std::vector<BlockSpec>& blocks() const override { return blocks_; }
  std::vector<ooc::TaskDesc> iteration_tasks(int iter) const override;

  const Params& params() const { return p_; }
  std::uint64_t interior_bytes() const { return interior_bytes_; }
  std::uint64_t ghost_bytes() const { return ghost_bytes_; }

private:
  Params p_;
  std::uint64_t interior_bytes_ = 0;
  std::uint64_t ghost_bytes_ = 0; // per face
  std::vector<BlockSpec> blocks_;
};

} // namespace hmr::sim
