#include "sim/synthetic_workload.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmr::sim {

SyntheticWorkload::SyntheticWorkload(Params p) : p_(p) {
  HMR_CHECK(p_.num_blocks > 0 && p_.block_bytes > 0);
  HMR_CHECK(p_.tasks_per_iteration > 0 && p_.deps_per_task > 0);
  HMR_CHECK(p_.deps_per_task <= p_.num_blocks);
  HMR_CHECK(p_.reuse >= 0.0 && p_.reuse <= 1.0);
  HMR_CHECK(p_.num_pes > 0 && p_.num_iterations > 0);
  HMR_CHECK(p_.wf_min > 0 && p_.wf_max >= p_.wf_min);
  HMR_CHECK(p_.flip_iteration < 0 ||
            (p_.reuse_after >= 0.0 && p_.reuse_after <= 1.0));

  blocks_.reserve(static_cast<std::size_t>(p_.num_blocks));
  for (int b = 0; b < p_.num_blocks; ++b) {
    blocks_.push_back({static_cast<ooc::BlockId>(b), p_.block_bytes});
  }

  Xoshiro256 rng(p_.seed);
  std::vector<ooc::BlockId> window;
  ooc::TaskId next_id = 0;
  per_iter_.resize(static_cast<std::size_t>(p_.num_iterations));
  for (int iter = 0; iter < p_.num_iterations; ++iter) {
    auto& tasks = per_iter_[static_cast<std::size_t>(iter)];
    const bool flipped =
        p_.flip_iteration >= 0 && iter >= p_.flip_iteration;
    const double reuse = flipped ? p_.reuse_after : p_.reuse;
    const int win = flipped && p_.window_after > 0 ? p_.window_after
                                                   : p_.window;
    if (p_.flip_iteration >= 0 && iter == p_.flip_iteration) {
      window.clear(); // the new phase has no affinity to the old one
    }
    tasks.reserve(static_cast<std::size_t>(p_.tasks_per_iteration));
    for (int i = 0; i < p_.tasks_per_iteration; ++i) {
      ooc::TaskDesc t;
      t.id = next_id++;
      t.pe = static_cast<std::int32_t>(rng.below(
          static_cast<std::uint64_t>(p_.num_pes)));
      t.work_factor = rng.uniform(p_.wf_min, p_.wf_max);
      for (int d = 0; d < p_.deps_per_task; ++d) {
        ooc::BlockId b = 0;
        // Draw until the block is distinct within this task.
        for (;;) {
          if (!window.empty() && rng.uniform() < reuse) {
            b = window[rng.below(window.size())];
          } else {
            b = static_cast<ooc::BlockId>(
                rng.below(static_cast<std::uint64_t>(p_.num_blocks)));
          }
          const bool dup =
              std::any_of(t.deps.begin(), t.deps.end(),
                          [&](const ooc::Dep& dd) { return dd.block == b; });
          if (!dup) break;
        }
        const auto mode = rng.uniform() < p_.readonly_frac
                              ? ooc::AccessMode::ReadOnly
                              : ooc::AccessMode::ReadWrite;
        t.deps.push_back({b, mode});
        window.push_back(b);
        if (window.size() > static_cast<std::size_t>(win)) {
          window.erase(window.begin());
        }
      }
      tasks.push_back(std::move(t));
    }
  }
}

std::vector<ooc::TaskDesc> SyntheticWorkload::iteration_tasks(
    int iter) const {
  HMR_CHECK(iter >= 0 && iter < p_.num_iterations);
  return per_iter_[static_cast<std::size_t>(iter)];
}

} // namespace hmr::sim
