#pragma once
// SyntheticReuseWorkload: a parameterized random task stream used by
// property tests and the ablation benches.
//
// The two paper benchmarks sit at the extremes of one axis — data
// sharing between tasks (stencil: none; matmul: heavy read-only
// reuse).  This workload exposes that axis directly: each task draws
// `deps_per_task` blocks, picking with probability `reuse` from a
// sliding window of recently used blocks and otherwise a fresh random
// block.  Deterministic for a fixed seed.

#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace hmr::sim {

class SyntheticWorkload final : public Workload {
public:
  struct Params {
    int num_blocks = 256;
    std::uint64_t block_bytes = 1 << 20;
    int tasks_per_iteration = 128;
    int deps_per_task = 3;
    /// Probability a dependence re-reads a recently used block.
    double reuse = 0.0;
    /// Sliding window of recent blocks reuse draws from.
    int window = 64;
    int num_pes = 8;
    int num_iterations = 1;
    std::uint64_t seed = 42;
    /// Fraction of deps marked ReadOnly (rest ReadWrite).
    double readonly_frac = 0.5;
    /// Per-task work factor drawn uniformly from [wf_min, wf_max]:
    /// task-time variance for load-balance experiments.
    double wf_min = 1.0;
    double wf_max = 1.0;
    /// Phase change: from this iteration on, draw with `reuse_after` /
    /// `window_after` instead (the reuse window is cleared at the
    /// flip).  -1 = stationary.  Exercises the adaptive governor's
    /// mid-run strategy switching.
    int flip_iteration = -1;
    double reuse_after = 0.0;
    int window_after = -1; // -1 = keep `window`
  };

  explicit SyntheticWorkload(Params p);

  std::string name() const override { return "Synthetic"; }
  int iterations() const override { return p_.num_iterations; }
  const std::vector<BlockSpec>& blocks() const override { return blocks_; }
  std::vector<ooc::TaskDesc> iteration_tasks(int iter) const override;

  const Params& params() const { return p_; }

private:
  Params p_;
  std::vector<BlockSpec> blocks_;
  // Task streams are pregenerated in the constructor so repeated
  // iteration_tasks() calls are cheap and consistent.
  std::vector<std::vector<ooc::TaskDesc>> per_iter_;
};

} // namespace hmr::sim
