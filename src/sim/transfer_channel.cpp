#include "sim/transfer_channel.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmr::sim {

namespace {
// A flow is complete when less than one byte remains (absorbs the
// floating-point residue of advancing exactly to a completion time).
constexpr double kEpsilonBytes = 0.5;
} // namespace

TransferChannel::TransferChannel(double per_flow_rate, double aggregate_rate)
    : per_flow_rate_(per_flow_rate), aggregate_rate_(aggregate_rate) {
  HMR_CHECK(per_flow_rate_ > 0 && aggregate_rate_ > 0);
}

double TransferChannel::current_rate() const {
  if (flows_.empty()) return 0;
  return std::min(per_flow_rate_,
                  aggregate_rate_ / static_cast<double>(flows_.size()));
}

std::vector<std::uint64_t> TransferChannel::advance(double now) {
  HMR_CHECK_MSG(now >= last_, "channel advanced backwards");
  std::vector<std::uint64_t> done;
  if (!flows_.empty() && now > last_) {
    const double progressed = current_rate() * (now - last_);
    for (auto& [id, remaining] : flows_) {
      remaining -= progressed;
      if (remaining <= kEpsilonBytes) done.push_back(id);
    }
    for (const auto id : done) flows_.erase(id);
    if (!done.empty()) {
      std::sort(done.begin(), done.end());
      ++generation_;
    }
  }
  last_ = now;
  return done;
}

void TransferChannel::add_flow(std::uint64_t id, double bytes, double now) {
  HMR_CHECK_MSG(now == last_, "add_flow without advancing first");
  HMR_CHECK(bytes > 0);
  const bool inserted = flows_.emplace(id, bytes).second;
  HMR_CHECK_MSG(inserted, "duplicate flow id");
  ++generation_;
}

double TransferChannel::next_completion(double now) const {
  HMR_CHECK_MSG(now == last_, "querying a stale channel");
  if (flows_.empty()) return std::numeric_limits<double>::infinity();
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, remaining] : flows_) {
    min_remaining = std::min(min_remaining, remaining);
  }
  return now + std::max(min_remaining, 0.0) / current_rate();
}

} // namespace hmr::sim
