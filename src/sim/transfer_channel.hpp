#pragma once
// TransferChannel: fluid-flow model of one migration direction
// (e.g. DDR4 -> MCDRAM).
//
// Every in-flight migration is a *flow* with a remaining byte count.
// All flows progress simultaneously at
//     rate = min(per_flow_rate, aggregate_rate / n_flows)
// which captures the two regimes the strategies live in:
//   * few flows  (SingleIO: exactly one) — each limited by what one
//     thread's memcpy can move (per_flow_rate);
//   * many flows (MultiIO: up to one per PE) — collectively limited by
//     the channel (aggregate_rate), as in Fig 7's 64-thread stress.
//
// The executor advances the channel lazily: after any mutation it asks
// for the next completion time and schedules a tick there.  Generation
// counters invalidate stale ticks.

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace hmr::sim {

class TransferChannel {
public:
  TransferChannel(double per_flow_rate, double aggregate_rate);

  /// Advance all flows to time `now`; returns the ids of flows that
  /// completed (in deterministic ascending-id order).
  std::vector<std::uint64_t> advance(double now);

  /// Add a flow of `bytes`.  Caller must advance(now) first.
  void add_flow(std::uint64_t id, double bytes, double now);

  /// Earliest completion time given current membership; +inf if idle.
  /// Caller must have advanced to `now`.
  double next_completion(double now) const;

  bool has_flows() const { return !flows_.empty(); }
  std::size_t flow_count() const { return flows_.size(); }

  /// Bumped on every membership change; used to drop stale tick events.
  std::uint64_t generation() const { return generation_; }

  double current_rate() const;

private:
  double per_flow_rate_;
  double aggregate_rate_;
  std::unordered_map<std::uint64_t, double> flows_; // id -> remaining bytes
  double last_ = 0;
  std::uint64_t generation_ = 0;
};

} // namespace hmr::sim
