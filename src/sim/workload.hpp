#pragma once
// Workload: a task-graph generator consumed by the simulator (and by
// tests).  A workload declares its data blocks once and then yields the
// tasks of each iteration of an iterative application, matching the
// structure of the paper's benchmarks (Stencil3D, MatMul).
//
// Blocks carry byte sizes only — in the DES no real payload exists; in
// the threaded runtime the same descriptions drive real allocations.

#include <cstdint>
#include <string>
#include <vector>

#include "ooc/types.hpp"

namespace hmr::sim {

struct BlockSpec {
  ooc::BlockId id = 0;
  std::uint64_t bytes = 0;
  /// Initial hierarchy level under a movement strategy (-1 = strategy
  /// default, the bottom).  A placement coordinator homes objects on
  /// a node's local pool by setting a middle level here (see
  /// ooc::PolicyEngine::add_block's home_level overload).
  std::int32_t home_level = -1;
};

class Workload {
public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Number of application iterations.
  virtual int iterations() const = 0;

  /// All data blocks, declared up front (ids must be dense from 0).
  virtual const std::vector<BlockSpec>& blocks() const = 0;

  /// Tasks of iteration `iter` (0-based).  Task ids must be globally
  /// unique across iterations; `pe` assignments must be stable for a
  /// chare across iterations (chares do not migrate).
  virtual std::vector<ooc::TaskDesc> iteration_tasks(int iter) const = 0;

  /// Total bytes across all blocks (the paper's "total working set").
  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& b : blocks()) sum += b.bytes;
    return sum;
  }

  /// Peak bytes needed simultaneously when one task per PE executes
  /// (the paper's "reduced working set" from over-decomposition).
  std::uint64_t reduced_bytes(int num_pes) const;
};

} // namespace hmr::sim
