#include "telemetry/attrib.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.hpp"
#include "util/check.hpp"

namespace hmr::telemetry {

const char* bucket_name(Bucket b) {
  switch (b) {
    case Bucket::Compute: return "compute";
    case Bucket::FetchWait: return "fetch_wait";
    case Bucket::QueueWait: return "queue_wait";
    case Bucket::RemoteSerial: return "remote_serial";
    case Bucket::EvictStall: return "evict_stall";
  }
  return "?";
}

namespace {

/// Minimal uncontended lock: each shard is written by one thread, read
/// rarely (rollup / export), so a spinlock stays cheaper than a mutex
/// on the record path.
class SpinLock {
 public:
  void lock() {
    while (f_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { f_.clear(std::memory_order_release); }

 private:
  std::atomic_flag f_ = ATOMIC_FLAG_INIT;
};

struct BucketAcc {
  std::uint64_t tasks = 0;
  double wall = 0;
  double seconds[kBucketCount] = {0, 0, 0, 0, 0};

  void add(const TaskAttribution& a) {
    ++tasks;
    wall += a.wall();
    for (int i = 0; i < kBucketCount; ++i) seconds[i] += a.seconds[i];
  }
};

void merge_pair(std::vector<TaskAttribution::PairSeconds>& dst,
                std::uint32_t src, std::uint32_t d, double s) {
  for (auto& p : dst) {
    if (p.src == src && p.dst == d) {
      p.seconds += s;
      return;
    }
  }
  dst.push_back({src, d, s});
}

} // namespace

struct alignas(64) AttributionTable::Shard {
  SpinLock mu;
  BucketAcc total;
  std::vector<BucketAcc> phases;   // indexed by phase (>= 0)
  std::vector<BucketAcc> tenants;  // indexed by tenant id
  std::vector<TaskAttribution::PairSeconds> pairs;
  std::vector<double> block_seconds; // indexed by dense block id
  std::vector<TaskAttribution> kept;
  std::uint64_t sum_violations = 0;
  double worst_rel_err = 0;
};

AttributionTable::AttributionTable(Options opt) : opt_(opt) {
  HMR_CHECK(opt_.shards > 0);
  shards_.reserve(opt_.shards);
  for (std::size_t i = 0; i < opt_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AttributionTable::~AttributionTable() = default;

void AttributionTable::record(std::size_t shard, const TaskAttribution& a) {
  Shard& s = *shards_[shard % shards_.size()];
  std::lock_guard lk(s.mu);
  s.total.add(a);
  if (a.phase >= 0) {
    const auto idx = static_cast<std::size_t>(a.phase);
    if (idx >= s.phases.size()) s.phases.resize(idx + 1);
    s.phases[idx].add(a);
  }
  {
    const std::size_t t = a.tenant;
    if (t >= s.tenants.size()) s.tenants.resize(t + 1);
    s.tenants[t].add(a);
  }
  for (const auto& p : a.pairs) merge_pair(s.pairs, p.src, p.dst, p.seconds);
  for (const auto& b : a.blocks) {
    const auto idx = static_cast<std::size_t>(b.block);
    if (idx >= s.block_seconds.size()) s.block_seconds.resize(idx + 1, 0.0);
    s.block_seconds[idx] += b.seconds;
  }
  const double wall = a.wall();
  if (wall > 0) {
    const double err = std::abs(wall - a.bucket_sum()) / wall;
    if (err > s.worst_rel_err) s.worst_rel_err = err;
    if (err > kSumTolerance) ++s.sum_violations;
  }
  if (opt_.keep_tasks && s.kept.size() < opt_.max_kept / shards_.size() + 1) {
    s.kept.push_back(a);
  }
}

AttributionTable::Rollup AttributionTable::rollup() const {
  Rollup r;
  std::vector<BucketAcc> phases;
  std::vector<BucketAcc> tenants;
  std::vector<double> blocks;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard lk(s.mu);
    r.tasks += s.total.tasks;
    r.wall += s.total.wall;
    for (int i = 0; i < kBucketCount; ++i) {
      r.seconds[i] += s.total.seconds[i];
    }
    if (s.phases.size() > phases.size()) phases.resize(s.phases.size());
    for (std::size_t i = 0; i < s.phases.size(); ++i) {
      const BucketAcc& a = s.phases[i];
      phases[i].tasks += a.tasks;
      phases[i].wall += a.wall;
      for (int b = 0; b < kBucketCount; ++b) {
        phases[i].seconds[b] += a.seconds[b];
      }
    }
    if (s.tenants.size() > tenants.size()) tenants.resize(s.tenants.size());
    for (std::size_t i = 0; i < s.tenants.size(); ++i) {
      const BucketAcc& a = s.tenants[i];
      tenants[i].tasks += a.tasks;
      tenants[i].wall += a.wall;
      for (int b = 0; b < kBucketCount; ++b) {
        tenants[i].seconds[b] += a.seconds[b];
      }
    }
    for (const auto& p : s.pairs) {
      merge_pair(r.pairs, p.src, p.dst, p.seconds);
    }
    if (s.block_seconds.size() > blocks.size()) {
      blocks.resize(s.block_seconds.size(), 0.0);
    }
    for (std::size_t i = 0; i < s.block_seconds.size(); ++i) {
      blocks[i] += s.block_seconds[i];
    }
    r.sum_violations += s.sum_violations;
    r.worst_rel_err = std::max(r.worst_rel_err, s.worst_rel_err);
  }
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (phases[i].tasks == 0) continue;
    Rollup::PhaseRow row;
    row.phase = static_cast<std::int64_t>(i);
    row.tasks = phases[i].tasks;
    row.wall = phases[i].wall;
    for (int b = 0; b < kBucketCount; ++b) row.seconds[b] = phases[i].seconds[b];
    r.phases.push_back(row);
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].tasks == 0) continue;
    Rollup::TenantRow row;
    row.tenant = static_cast<std::uint32_t>(i);
    row.tasks = tenants[i].tasks;
    row.wall = tenants[i].wall;
    for (int b = 0; b < kBucketCount; ++b) {
      row.seconds[b] = tenants[i].seconds[b];
    }
    r.tenants.push_back(row);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i] > 0) r.blocks.push_back({i, blocks[i]});
  }
  std::sort(r.blocks.begin(), r.blocks.end(),
            [](const Rollup::BlockRow& a, const Rollup::BlockRow& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.block < b.block;
            });
  std::sort(r.pairs.begin(), r.pairs.end(),
            [](const TaskAttribution::PairSeconds& a,
               const TaskAttribution::PairSeconds& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  return r;
}

std::vector<TaskAttribution> AttributionTable::tasks() const {
  std::vector<TaskAttribution> out;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard lk(s.mu);
    out.insert(out.end(), s.kept.begin(), s.kept.end());
  }
  return out;
}

namespace {

std::uint64_t to_ns(double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<std::uint64_t>(seconds * 1e9);
}

} // namespace

void AttributionTable::export_metrics(MetricsRegistry& reg) const {
  const Rollup r = rollup();
  reg.counter("hmr_attrib_tasks_total", "",
              "tasks with a stall-accounting record")
      .set(r.tasks);
  for (int b = 0; b < kBucketCount; ++b) {
    reg.counter("hmr_attrib_ns_total",
                prom_label("bucket", bucket_name(static_cast<Bucket>(b))),
                "per-bucket task wall time, virtual ns")
        .set(to_ns(r.seconds[b]));
  }
  for (const auto& p : r.pairs) {
    const std::string pair =
        std::to_string(p.src) + "->" + std::to_string(p.dst);
    reg.counter("hmr_attrib_wait_ns_total", prom_label("pair", pair),
                "covered wait time per tier pair, virtual ns")
        .set(to_ns(p.seconds));
  }
}

namespace {

void write_buckets(std::ostream& os, const double seconds[kBucketCount]) {
  os << "{";
  for (int b = 0; b < kBucketCount; ++b) {
    if (b > 0) os << ",";
    os << "\"" << bucket_name(static_cast<Bucket>(b)) << "\":" << seconds[b];
  }
  os << "}";
}

} // namespace

void AttributionTable::write_rollup_json(std::ostream& os, const Rollup& r,
                                         std::size_t top_blocks) {
  os << "{\"tasks\":" << r.tasks << ",\"wall_s\":" << r.wall
     << ",\"buckets\":";
  write_buckets(os, r.seconds);
  os << ",\"phases\":[";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    if (i > 0) os << ",";
    const auto& p = r.phases[i];
    os << "{\"phase\":" << p.phase << ",\"tasks\":" << p.tasks
       << ",\"wall_s\":" << p.wall << ",\"buckets\":";
    write_buckets(os, p.seconds);
    os << "}";
  }
  os << "],\"tenants\":[";
  for (std::size_t i = 0; i < r.tenants.size(); ++i) {
    if (i > 0) os << ",";
    const auto& t = r.tenants[i];
    os << "{\"tenant\":" << t.tenant << ",\"tasks\":" << t.tasks
       << ",\"wall_s\":" << t.wall << ",\"buckets\":";
    write_buckets(os, t.seconds);
    os << "}";
  }
  os << "],\"tier_pairs\":[";
  for (std::size_t i = 0; i < r.pairs.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"src_tier\":" << r.pairs[i].src
       << ",\"dst_tier\":" << r.pairs[i].dst
       << ",\"seconds\":" << r.pairs[i].seconds << "}";
  }
  os << "],\"top_blocks\":[";
  const std::size_t n = std::min(top_blocks, r.blocks.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) os << ",";
    os << "{\"block\":" << r.blocks[i].block
       << ",\"seconds\":" << r.blocks[i].seconds << "}";
  }
  os << "],\"audit\":{\"sum_violations\":" << r.sum_violations
     << ",\"worst_rel_err\":" << r.worst_rel_err << "}}";
}

void AttributionTable::write_json(std::ostream& os,
                                  std::size_t top_blocks) const {
  write_rollup_json(os, rollup(), top_blocks);
  os << "\n";
}

namespace {

using Seg = std::pair<double, double>;

/// Merge overlapping/touching segments in place; returns covered length.
double merge_segments(std::vector<Seg>& v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::vector<Seg> out;
  out.push_back(v.front());
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].first <= out.back().second) {
      out.back().second = std::max(out.back().second, v[i].second);
    } else {
      out.push_back(v[i]);
    }
  }
  v = std::move(out);
  double len = 0;
  for (const Seg& s : v) len += s.second - s.first;
  return len;
}

} // namespace

void decompose_wait(TaskAttribution& a, std::vector<WaitSegment> segs) {
  const double w0 = a.arrive;
  const double w1 = a.start;
  a.seconds[static_cast<int>(Bucket::Compute)] = a.end - a.start;

  std::vector<Seg> remote;
  std::vector<Seg> fetch; // remote + local: fetch coverage as a whole
  std::vector<Seg> all;   // + evictions
  std::vector<std::pair<std::uint64_t, std::vector<Seg>>> by_pair;
  std::vector<std::pair<std::uint64_t, std::vector<Seg>>> by_block;
  for (WaitSegment& s : segs) {
    const double t0 = std::max(s.t0, w0);
    const double t1 = std::min(s.t1, w1);
    if (t1 <= t0) continue;
    const Seg seg{t0, t1};
    if (!s.evict) {
      if (s.remote) remote.push_back(seg);
      fetch.push_back(seg);
    }
    all.push_back(seg);
    const std::uint64_t pk =
        (static_cast<std::uint64_t>(s.src) << 32) | s.dst;
    auto pit = std::find_if(by_pair.begin(), by_pair.end(),
                            [&](const auto& p) { return p.first == pk; });
    if (pit == by_pair.end()) {
      by_pair.push_back({pk, {seg}});
    } else {
      pit->second.push_back(seg);
    }
    auto bit = std::find_if(by_block.begin(), by_block.end(),
                            [&](const auto& p) { return p.first == s.block; });
    if (bit == by_block.end()) {
      by_block.push_back({s.block, {seg}});
    } else {
      bit->second.push_back(seg);
    }
  }

  const double remote_len = merge_segments(remote);
  // Fetch coverage includes the remote segments, so local-only fetch
  // wait is the difference — the two buckets cannot double-count.
  const double fetch_len = merge_segments(fetch);
  const double all_len = merge_segments(all);
  const double window = std::max(0.0, w1 - w0);
  a.seconds[static_cast<int>(Bucket::RemoteSerial)] = remote_len;
  a.seconds[static_cast<int>(Bucket::FetchWait)] =
      std::max(0.0, fetch_len - remote_len);
  a.seconds[static_cast<int>(Bucket::EvictStall)] =
      std::max(0.0, all_len - fetch_len);
  a.seconds[static_cast<int>(Bucket::QueueWait)] =
      std::max(0.0, window - all_len);

  for (auto& [pk, v] : by_pair) {
    const double len = merge_segments(v);
    if (len <= 0) continue;
    a.pairs.push_back({static_cast<std::uint32_t>(pk >> 32),
                       static_cast<std::uint32_t>(pk & 0xffffffffu), len});
  }
  for (auto& [block, v] : by_block) {
    const double len = merge_segments(v);
    if (len > 0) a.blocks.push_back({block, len});
  }
}

} // namespace hmr::telemetry
