#pragma once
// AttributionTable: per-task wall-time stall accounting.
//
// Every retired task's wall time (arrive -> finish) is decomposed into
// five disjoint buckets:
//
//   compute       - the task body itself (start -> end)
//   fetch_wait    - pre-start time covered by local fetches of the
//                   task's dependency blocks
//   remote_serial - pre-start time covered by fetches over a Remote
//                   (disaggregated) tier path: network serialization
//   evict_stall   - pre-start time covered by evictions this task's
//                   admission forced (and nothing was fetching)
//   queue_wait    - the remainder: the task was runnable-or-blocked
//                   with no migration of its own in flight (queue
//                   depth, PE contention, scheduler latency)
//
// Buckets are disjoint by construction (coverage priority: remote >
// fetch > evict; queue is the remainder clamped at zero), so per task
//   sum(buckets) == wall within floating-point error — that identity
// is the audit invariant checked at quiescence under HMR_AUDIT=1.
//
// Rollups: totals, per-phase (iteration), per-tenant, per-tier-pair
// (which channel the covered wait was spent on) and per-block (which
// block's fetch the task sat behind).  The table is sharded so each
// PE records into its own cache line; record() is a handful of
// indexed adds behind an uncontended spinlock (see BM_AttribRecord,
// target <= 30 ns/task on top of the 22 ns trace record).
//
// "Heterogeneous Memory Pool Tuning" (arXiv 2505.14294) motivates the
// layer: lightweight measurement-driven attribution is enough to tune
// heterogeneous pools — this is that measurement surface, and the
// critical-path analyzer (critpath.hpp) consumes the same records for
// its what-if re-costing.

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace hmr::telemetry {

class MetricsRegistry;

enum class Bucket : int {
  Compute = 0,
  FetchWait,
  QueueWait,
  RemoteSerial,
  EvictStall,
};
inline constexpr int kBucketCount = 5;

/// Stable snake_case bucket name ("compute", "fetch_wait", ...) used
/// in JSON, metric labels and docs.
const char* bucket_name(Bucket b);

/// One retired task's decomposition.  `seconds` are the five buckets
/// (indexed by Bucket); executors fill them so they sum to
/// end - arrive exactly (QueueWait is the remainder).
struct TaskAttribution {
  std::uint64_t task = 0;
  std::int32_t pe = -1;
  std::uint32_t tenant = 0;
  std::int64_t phase = -1; // iteration index; -1 = outside any phase
  double arrive = 0;
  double start = 0;
  double end = 0;
  double seconds[kBucketCount] = {0, 0, 0, 0, 0};

  /// Wait seconds attributed to one ordered tier pair (the channel a
  /// covering fetch ran on).  Informative: pair coverage may overlap
  /// across pairs, so pair seconds are not required to sum to a bucket.
  struct PairSeconds {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    double seconds = 0;
  };
  std::vector<PairSeconds> pairs;

  /// Wait seconds attributed to individual dependency blocks.
  struct BlockSeconds {
    std::uint64_t block = 0;
    double seconds = 0;
  };
  std::vector<BlockSeconds> blocks;

  /// Bytes the task streamed per tier during compute (executor's
  /// placement at launch).  Feeds the what-if compute re-costing; may
  /// be empty when the executor does not track placement.
  std::vector<std::uint64_t> bytes_by_tier;

  double wall() const { return end - arrive; }
  double bucket_sum() const {
    double s = 0;
    for (double v : seconds) s += v;
    return s;
  }
};

class AttributionTable {
 public:
  struct Options {
    /// Number of independent accumulators; writers pass their shard
    /// index to record().  One per PE removes cross-thread contention.
    std::size_t shards = 1;
    /// Retain every TaskAttribution record (bounded by max_kept) so
    /// the what-if estimator can re-cost individual tasks.  Off by
    /// default: rollups alone are O(1) per task.
    bool keep_tasks = false;
    std::size_t max_kept = 1u << 20;
  };

  AttributionTable() : AttributionTable(Options{}) {}
  explicit AttributionTable(Options opt);
  ~AttributionTable();

  AttributionTable(const AttributionTable&) = delete;
  AttributionTable& operator=(const AttributionTable&) = delete;

  std::size_t shards() const { return shards_.size(); }
  bool keep_tasks() const { return opt_.keep_tasks; }

  /// Record one retired task.  Thread-safe per shard (each shard has
  /// its own spinlock; concurrent writers should use distinct shards).
  void record(std::size_t shard, const TaskAttribution& a);

  /// Merged view of every shard.
  struct Rollup {
    std::uint64_t tasks = 0;
    double wall = 0;
    double seconds[kBucketCount] = {0, 0, 0, 0, 0};

    struct PhaseRow {
      std::int64_t phase = -1;
      std::uint64_t tasks = 0;
      double wall = 0;
      double seconds[kBucketCount] = {0, 0, 0, 0, 0};
    };
    std::vector<PhaseRow> phases; // sorted by phase

    struct TenantRow {
      std::uint32_t tenant = 0;
      std::uint64_t tasks = 0;
      double wall = 0;
      double seconds[kBucketCount] = {0, 0, 0, 0, 0};
    };
    std::vector<TenantRow> tenants; // sorted by tenant; only nonzero

    std::vector<TaskAttribution::PairSeconds> pairs; // sorted (src,dst)

    struct BlockRow {
      std::uint64_t block = 0;
      double seconds = 0;
    };
    /// Blocks by descending wait seconds, zero rows omitted.
    std::vector<BlockRow> blocks;

    /// Audit: tasks whose buckets failed to sum to wall within
    /// tolerance (1%), and the worst relative error observed.
    std::uint64_t sum_violations = 0;
    double worst_rel_err = 0;
  };
  Rollup rollup() const;

  /// Kept task records (empty unless Options::keep_tasks).
  std::vector<TaskAttribution> tasks() const;

  /// Relative |wall - sum(buckets)| / wall a record may carry before
  /// it counts as a sum violation (the 1% acceptance bound).
  static constexpr double kSumTolerance = 0.01;

  /// Mirror the rollup into cumulative registry counters:
  ///   hmr_attrib_tasks_total
  ///   hmr_attrib_ns_total{bucket="..."}
  ///   hmr_attrib_wait_ns_total{pair="s->d"}
  /// Times are virtual nanoseconds (counters are integers).
  void export_metrics(MetricsRegistry& reg) const;

  /// The /attrib route body: rollup as one JSON object.
  void write_json(std::ostream& os, std::size_t top_blocks = 10) const;
  static void write_rollup_json(std::ostream& os, const Rollup& r,
                                std::size_t top_blocks = 10);

 private:
  struct Shard;

  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// One migration the executor observed while a task waited: a fetch of
/// a dependency block (evict == false) or an eviction the task's
/// admission forced (evict == true).
struct WaitSegment {
  double t0 = 0;
  double t1 = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  bool remote = false;
  bool evict = false;
  std::uint64_t block = 0;
};

/// Fill `a.seconds`, `a.pairs` and `a.blocks` from the observed
/// segments.  `a.arrive/start/end` must already be set.  Segments are
/// clipped to the wait window [arrive, start] and their unions taken
/// with priority remote > fetch > evict; the uncovered remainder is
/// QueueWait and Compute is end - start, so the five buckets sum to
/// wall exactly.  Per-pair and per-block attributions are each that
/// key's own merged coverage (they may overlap across keys).
void decompose_wait(TaskAttribution& a, std::vector<WaitSegment> segs);

} // namespace hmr::telemetry
