#include "telemetry/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "telemetry/metrics.hpp" // json_escape

namespace hmr::telemetry {

bool audit_enabled(int config) {
  if (const char* env = std::getenv("HMR_AUDIT");
      env != nullptr && env[0] != '\0') {
    return std::strcmp(env, "0") != 0;
  }
  if (config >= 0) return config != 0;
#if !defined(NDEBUG) || defined(HMR_AUDIT_DEFAULT)
  return true;
#else
  return false;
#endif
}

std::string format_audit(const AuditReport& r) {
  char head[96];
  std::snprintf(head, sizeof head, "audit at t=%.3f s%s: ", r.time,
                r.at_quiescence ? " (quiescent)" : "");
  std::string out(head);
  if (r.ok()) {
    out += "clean\n";
    return out;
  }
  out += std::to_string(r.violations.size()) + " violation(s)\n";
  for (std::size_t i = 0; i < r.violations.size(); ++i) {
    out += "  [" + std::to_string(i + 1) + "] " + r.violations[i] + "\n";
  }
  return out;
}

void write_audit_json(std::ostream& os, const AuditReport& r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", r.time);
  os << "{\"time\":" << buf
     << ",\"at_quiescence\":" << (r.at_quiescence ? "true" : "false")
     << ",\"ok\":" << (r.ok() ? "true" : "false") << ",\"violations\":[";
  for (std::size_t i = 0; i < r.violations.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"";
    json_escape(os, r.violations[i]);
    os << "\"";
  }
  os << "]}";
}

void check_audit(const AuditReport& r) {
  if (r.ok()) return;
  std::fputs(format_audit(r).c_str(), stderr);
  std::fprintf(stderr,
               "hmr: invariant audit failed -- engine bookkeeping has "
               "diverged from ground truth, aborting\n");
  std::abort();
}

} // namespace hmr::telemetry
