#pragma once
// Invariant-audit plumbing: the engines recompute their own ground
// truth (PolicyEngine::audit_invariants, ShardedEngine::
// audit_invariants — each returns one line per violation); this
// module owns what happens with the result: when audits run by
// default, how reports are formatted for stderr, crash bundles and
// the /status endpoint, and the fail-stop on violation.
//
// Gating: audits are O(blocks + tasks) under the engine lock, so they
// default on exactly where they are wanted — debug builds and
// sanitizer CI (-DHMR_SANITIZE defines HMR_AUDIT_DEFAULT) — and off
// in release, with three overrides: Config::audit (rt), SimConfig::
// audit (sim), and the HMR_AUDIT=0/1 environment kill switch, which
// beats both.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hmr::telemetry {

struct AuditReport {
  double time = 0; // seconds (registry/runtime clock) when audited
  bool at_quiescence = false;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Resolve the audit on/off decision: `config` is the executor knob
/// (-1 = auto, 0 = off, 1 = on); auto consults HMR_AUDIT in the
/// environment, then the build default (!NDEBUG || HMR_AUDIT_DEFAULT).
/// HMR_AUDIT always wins when set, even over an explicit knob, so CI
/// can force audits through binaries it does not configure.
bool audit_enabled(int config);

/// Human-readable report ("audit clean" / numbered violations).
std::string format_audit(const AuditReport& r);

/// JSON object {"time":..,"at_quiescence":..,"ok":..,
/// "violations":[..]} for /status.
void write_audit_json(std::ostream& os, const AuditReport& r);

/// Print the report to stderr and abort when it has violations; the
/// executors call this so a corrupt ledger fails the run loudly
/// instead of skewing results.
void check_audit(const AuditReport& r);

} // namespace hmr::telemetry
