#include "telemetry/bridge.hpp"

#include "mem/copy_kernel.hpp"

namespace hmr::telemetry {

void export_policy_stats(MetricsRegistry& reg,
                         const ooc::PolicyEngine::Stats& st,
                         const std::string& labels) {
  const struct {
    const char* name;
    const char* help;
    std::uint64_t value;
  } fields[] = {
      {"hmr_policy_tasks_run_total", "OOC tasks executed", st.tasks_run},
      {"hmr_policy_fetches_total", "Block fetches issued", st.fetches},
      {"hmr_policy_fetch_bytes_total", "Bytes fetched upward",
       st.fetch_bytes},
      {"hmr_policy_evicts_total", "Block evictions issued", st.evicts},
      {"hmr_policy_evict_bytes_total", "Bytes evicted downward",
       st.evict_bytes},
      {"hmr_policy_fetch_dedup_hits_total",
       "Fetches saved by in-flight dedup", st.fetch_dedup_hits},
      {"hmr_policy_lru_reclaims_total", "Lazy LRU reclaim evictions",
       st.lru_reclaims},
      {"hmr_policy_advised_pins_total", "Advisor pin decisions honored",
       st.advised_pins},
      {"hmr_policy_advised_bypasses_total",
       "Advisor streaming-bypass decisions", st.advised_bypasses},
      {"hmr_policy_advised_demotions_total",
       "Advisor demote-first victims", st.advised_demotions},
      {"hmr_policy_cascade_demotions_total",
       "Demotions that landed on a middle level", st.cascade_demotions},
      {"hmr_policy_tier_trims_total",
       "Evictions out of a middle level (watermark trims)",
       st.tier_trims},
      {"hmr_remote_fetches_total",
       "Promotions pulled from a Remote-backed tier", st.remote_fetches},
      {"hmr_remote_fetch_bytes_total",
       "Bytes promoted over the network", st.remote_fetch_bytes},
      {"hmr_remote_evicts_total",
       "Demotions spilled to a Remote-backed tier", st.remote_evicts},
      {"hmr_remote_evict_bytes_total",
       "Bytes spilled over the network", st.remote_evict_bytes},
  };
  for (const auto& f : fields) {
    reg.counter(f.name, labels, f.help).set(f.value);
  }
}

void export_contention(MetricsRegistry& reg,
                       const trace::ContentionStats& cs) {
  for (std::size_t s = 0; s < cs.shards(); ++s) {
    const auto t = cs.shard_totals(s);
    const std::string labels = prom_label("shard", std::to_string(s));
    reg.counter("hmr_lock_acquisitions_total", labels,
                "Scheduler lock acquisitions")
        .set(t.acquisitions);
    reg.counter("hmr_lock_contended_total", labels,
                "Scheduler lock acquisitions that had to wait")
        .set(t.contended);
    reg.gauge("hmr_lock_wait_seconds", labels,
              "Total time blocked on the scheduler lock")
        .set(t.wait_s);
  }
}

void export_chunk_ring(MetricsRegistry& reg, const mem::ChunkRing& ring) {
  reg.counter("hmr_chunk_jobs_total", "",
              "Large copies streamed through the chunk ring")
      .set(ring.jobs());
  reg.counter("hmr_chunk_chunks_copied_total", "",
              "Chunks copied (all threads)")
      .set(ring.chunks_copied());
  reg.counter("hmr_chunk_chunks_assisted_total", "",
              "Chunks copied by assisting threads")
      .set(ring.chunks_assisted());
  reg.counter("hmr_copy_ring_fallbacks_total", "",
              "Large copies that found all ring slots busy and degraded "
              "to a single un-assisted copy")
      .set(ring.ring_fallbacks());
}

void export_data_movement(MetricsRegistry& reg,
                          const mem::MemoryManager& mm) {
  reg.counter("hmr_copy_nt_copies_total", "",
              "Copies routed through the non-temporal-store kernel")
      .set(mem::copy_nt_copies());
  reg.counter("hmr_copy_nt_bytes_total", "",
              "Bytes moved with non-temporal stores")
      .set(mem::copy_nt_bytes());
  reg.counter("hmr_zero_copy_admissions_total", "",
              "Migrations admitted by shadow swap (no copy)")
      .set(mm.zero_copy_admissions());
  reg.counter("hmr_zero_copy_bytes_total", "",
              "Bytes whose migration copy was skipped")
      .set(mm.zero_copy_bytes());
  reg.counter("hmr_shadow_invalidations_total", "",
              "Shadows dropped by writes or capacity reclaim")
      .set(mm.shadow_invalidations());
}

} // namespace hmr::telemetry
