#pragma once
// Bridges from the runtime's existing cumulative counters into a
// MetricsRegistry.
//
// The engines keep their own Stats structs (cheap, updated under their
// own locks); rather than thread a registry pointer through every
// increment site, the executors call these exporters at sample points
// (quiescence, phase ends, SnapshotSampler pre-sample) to mirror the
// current totals into named counters.  Counter::set keeps the mirror
// monotone as long as the source is.
//
// Metric names produced here are part of the catalog in
// docs/OBSERVABILITY.md.

#include <string>

#include "mem/chunked_copy.hpp"
#include "mem/memory_manager.hpp"
#include "ooc/policy_engine.hpp"
#include "telemetry/metrics.hpp"
#include "trace/contention.hpp"

namespace hmr::telemetry {

/// hmr_policy_*_total counters (one per PolicyEngine::Stats field).
/// `labels` distinguishes sources, e.g. `shard="3"` for per-shard
/// exports of the sharded engine; empty = the node-wide totals.
void export_policy_stats(MetricsRegistry& reg,
                         const ooc::PolicyEngine::Stats& st,
                         const std::string& labels = "");

/// hmr_lock_acquisitions_total / hmr_lock_contended_total /
/// hmr_lock_wait_seconds, per shard (label shard="i").
void export_contention(MetricsRegistry& reg,
                       const trace::ContentionStats& cs);

/// hmr_chunk_jobs_total / hmr_chunk_chunks_copied_total /
/// hmr_chunk_chunks_assisted_total / hmr_copy_ring_fallbacks_total.
void export_chunk_ring(MetricsRegistry& reg, const mem::ChunkRing& ring);

/// Copy-kernel and zero-copy admission counters:
/// hmr_copy_nt_copies_total / hmr_copy_nt_bytes_total (process-wide
/// non-temporal-store path) and hmr_zero_copy_admissions_total /
/// hmr_zero_copy_bytes_total / hmr_shadow_invalidations_total from the
/// MemoryManager's shadow machinery.
void export_data_movement(MetricsRegistry& reg,
                          const mem::MemoryManager& mm);

} // namespace hmr::telemetry
