#include "telemetry/crash.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace hmr::telemetry {

namespace {

// Previous dispositions, restored on uninstall and before re-raise.
struct sigaction g_prev[3];
const int g_sigs[3] = {SIGSEGV, SIGBUS, SIGABRT};

// write() the whole buffer, tolerating short writes and EINTR.  Only
// async-signal-safe calls.
void raw_write(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return; // nothing more we can do in a handler
    }
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
}

void raw_puts(int fd, const char* s) { raw_write(fd, s, std::strlen(s)); }

const char* sig_name(int sig) {
  switch (sig) {
  case SIGSEGV: return "SIGSEGV";
  case SIGBUS: return "SIGBUS";
  case SIGABRT: return "SIGABRT";
  default: return "signal";
  }
}

} // namespace

CrashDumper& CrashDumper::instance() {
  static CrashDumper d;
  return d;
}

void CrashDumper::install(const std::string& path) {
  int fd = 2;
  if (!path.empty()) {
    const int f = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (f >= 0) fd = f;
  }
  const int old_fd = fd_.exchange(fd, std::memory_order_acq_rel);
  if (old_fd > 2) ::close(old_fd);

  if (!installed_.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = &CrashDumper::handler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESETHAND: we restore the old disposition ourselves so the
    // re-raise reaches whoever was there before (sanitizers, default).
    sa.sa_flags = 0;
    for (int i = 0; i < 3; ++i) sigaction(g_sigs[i], &sa, &g_prev[i]);
  }
}

void CrashDumper::uninstall() {
  if (!installed_.exchange(false, std::memory_order_acq_rel)) return;
  for (int i = 0; i < 3; ++i) sigaction(g_sigs[i], &g_prev[i], nullptr);
  const int old_fd = fd_.exchange(2, std::memory_order_acq_rel);
  if (old_fd > 2) ::close(old_fd);
}

void CrashDumper::publish(std::string_view bundle) {
  const int cur = current_.load(std::memory_order_acquire);
  const int next = cur == 0 ? 1 : 0;
  Buf& b = bufs_[next];
  b.len = bundle.size() < kBufBytes ? bundle.size() : kBufBytes;
  std::memcpy(b.data, bundle.data(), b.len);
  current_.store(next, std::memory_order_release);
}

void CrashDumper::handler(int sig) { instance().on_signal(sig); }

void CrashDumper::on_signal(int sig) {
  const int fd = fd_.load(std::memory_order_acquire);
  raw_puts(fd, "\n==== hmr crash dump: caught ");
  raw_puts(fd, sig_name(sig));
  raw_puts(fd, " ====\n");

  const int cur = current_.load(std::memory_order_acquire);
  if (cur < 0) {
    raw_puts(fd, "(no diagnostic bundle was published before the crash)\n");
  } else {
    raw_puts(fd,
             "bundle below is from the last safe point before the crash "
             "(wait_idle or watchdog tick), not the instant of death:\n");
    raw_write(fd, bufs_[cur].data, bufs_[cur].len);
  }
  raw_puts(fd, "==== end hmr crash dump ====\n");

  // Restore the previous disposition and re-raise so cores, sanitizer
  // reports and the exit status are exactly what they would have been.
  for (int i = 0; i < 3; ++i) {
    if (g_sigs[i] == sig) {
      sigaction(sig, &g_prev[i], nullptr);
      break;
    }
  }
  ::raise(sig);
}

} // namespace hmr::telemetry
