#pragma once
// CrashDumper: leave a usable diagnostic bundle when the process dies.
//
// A SIGSEGV inside a memcpy or a CHECK-abort deep in the policy
// leaves nothing but a core file — the flight recorder, metrics and
// status that would explain the death evaporate with the process.
// Almost nothing is legal in a signal handler, so the design inverts
// the usual dump-on-crash flow:
//
//   * the owner (the Runtime) *pre-renders* the bundle at safe points
//     (every wait_idle and watchdog tick) into one of two buffers and
//     publishes it with an atomic index — plain memory, no locks held
//     by the handler's victim;
//   * the handler itself only write()s: a banner with the signal
//     number, then the most recently published buffer, to stderr or
//     an fd opened at install time.  write(), the two atomic loads
//     and raise() are all async-signal-safe;
//   * then it restores the previous disposition and re-raises, so
//     cores, sanitizer reports and exit codes are unchanged.
//
// The bundle is therefore as stale as the last safe point — honest
// best-effort, stated in the banner.  Opt-in via Config::crash_dump.
// Process-global (signal dispositions are): one instance, last
// install wins.

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

namespace hmr::telemetry {

class CrashDumper {
public:
  /// The process-wide instance (signal handlers need a global).
  static CrashDumper& instance();

  /// Install handlers for SIGSEGV / SIGBUS / SIGABRT.  `path` empty =
  /// dump to stderr, else append to the file (opened now, so the
  /// handler never calls open()).  Idempotent; re-install switches
  /// the destination.
  void install(const std::string& path = "");

  /// Restore the previous signal dispositions.  The published bundle
  /// survives (harmless: nothing reads it).
  void uninstall();

  bool installed() const {
    return installed_.load(std::memory_order_acquire);
  }

  /// Publish a fresh bundle snapshot (called from normal context at
  /// safe points; any thread, but callers serialize — the Runtime
  /// publishes under its idle mutex).  Truncates to the fixed buffer.
  void publish(std::string_view bundle);

  static constexpr std::size_t kBufBytes = 128 * 1024;

private:
  CrashDumper() = default;

  static void handler(int sig);
  void on_signal(int sig);

  // Double buffer + atomic index: publish() fills the inactive half
  // and flips; the handler reads whichever index is current.  A
  // publish racing the handler can at worst hand it the previous
  // complete bundle.
  struct Buf {
    char data[kBufBytes];
    std::size_t len = 0;
  };
  Buf bufs_[2];
  std::atomic<int> current_{-1}; // -1 = nothing published yet
  std::atomic<int> fd_{2};       // destination; 2 = stderr
  std::atomic<bool> installed_{false};
};

} // namespace hmr::telemetry
