#include "telemetry/critpath.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hmr::telemetry {

namespace {

using trace::Category;
using trace::Interval;

constexpr double kEps = 1e-12;
constexpr std::uint64_t kSmallTransfer = 64ull << 10;

bool task_bound(const Interval& iv) {
  return iv.task != 0 && iv.task != ~0ull;
}

bool is_migration(const Interval& iv) {
  return iv.bytes > 0 && iv.src_tier != iv.dst_tier;
}

/// Latest-ending unused interval in `v` (indices sorted by end
/// ascending) with end <= t + eps; -1 when none.
int latest_before(const std::vector<int>& v,
                  const std::vector<Interval>& ivs,
                  const std::vector<char>& used, double t) {
  auto it = std::upper_bound(
      v.begin(), v.end(), t + kEps,
      [&](double val, int i) { return val < ivs[static_cast<std::size_t>(i)].end; });
  while (it != v.begin()) {
    --it;
    if (!used[static_cast<std::size_t>(*it)]) return *it;
  }
  return -1;
}

} // namespace

CritPath critical_path(const std::vector<Interval>& all) {
  CritPath cp;
  // Idle intervals are explicit gap filler (fill_idle); drop them so
  // the chain walks over work, not its absence.
  std::vector<Interval> ivs;
  ivs.reserve(all.size());
  for (const Interval& iv : all) {
    if (iv.cat == Category::Idle) continue;
    if (iv.end < iv.start) continue;
    ivs.push_back(iv);
  }
  if (ivs.empty()) return cp;

  cp.t0 = ivs.front().start;
  cp.t1 = ivs.front().end;
  for (const Interval& iv : ivs) {
    cp.t0 = std::min(cp.t0, iv.start);
    cp.t1 = std::max(cp.t1, iv.end);
  }

  const std::size_t n = ivs.size();
  std::vector<int> by_end(n);
  for (std::size_t i = 0; i < n; ++i) by_end[i] = static_cast<int>(i);
  std::sort(by_end.begin(), by_end.end(), [&](int a, int b) {
    const auto& ia = ivs[static_cast<std::size_t>(a)];
    const auto& ib = ivs[static_cast<std::size_t>(b)];
    if (ia.end != ib.end) return ia.end < ib.end;
    return ia.start < ib.start;
  });

  std::unordered_map<std::uint64_t, std::vector<int>> by_task;
  std::unordered_map<std::int32_t, std::vector<int>> by_lane;
  for (int i : by_end) {
    const Interval& iv = ivs[static_cast<std::size_t>(i)];
    if (task_bound(iv)) by_task[iv.task].push_back(i);
    by_lane[iv.lane].push_back(i);
  }

  std::vector<char> used(n, 0);
  std::vector<CritStep> rev;
  int cur = by_end.back();
  while (cur >= 0 && rev.size() <= n) {
    used[static_cast<std::size_t>(cur)] = 1;
    CritStep step;
    step.iv = ivs[static_cast<std::size_t>(cur)];
    const double t = step.iv.start;

    int pred = -1;
    CritStep::Link link = CritStep::Link::Root;
    if (task_bound(step.iv)) {
      pred = latest_before(by_task[step.iv.task], ivs, used, t);
      if (pred >= 0) link = CritStep::Link::SameTask;
    }
    const int lane_pred = latest_before(by_lane[step.iv.lane], ivs, used, t);
    if (lane_pred >= 0 &&
        (pred < 0 || ivs[static_cast<std::size_t>(lane_pred)].end >
                         ivs[static_cast<std::size_t>(pred)].end)) {
      pred = lane_pred;
      link = CritStep::Link::SameLane;
    }
    if (pred < 0) {
      pred = latest_before(by_end, ivs, used, t);
      if (pred >= 0) link = CritStep::Link::Jump;
    }

    if (pred >= 0) {
      step.link = link;
      step.gap_before =
          std::max(0.0, t - ivs[static_cast<std::size_t>(pred)].end);
    } else {
      step.link = CritStep::Link::Root;
      step.gap_before = 0;
    }
    rev.push_back(step);
    cur = pred;
  }
  std::reverse(rev.begin(), rev.end());
  cp.steps = std::move(rev);

  for (const CritStep& s : cp.steps) {
    const double dur = s.iv.end - s.iv.start;
    cp.step_seconds += dur;
    cp.gap_seconds += s.gap_before;
    cp.cat_seconds[static_cast<int>(s.iv.cat)] += dur;
    if (is_migration(s.iv)) {
      auto it = std::find_if(cp.pairs.begin(), cp.pairs.end(),
                             [&](const CritPath::PairSeconds& p) {
                               return p.src == s.iv.src_tier &&
                                      p.dst == s.iv.dst_tier;
                             });
      if (it == cp.pairs.end()) {
        cp.pairs.push_back({s.iv.src_tier, s.iv.dst_tier, 0, 0, 0});
        it = cp.pairs.end() - 1;
      }
      it->seconds += dur;
      it->bytes += s.iv.bytes;
      ++it->count;
    }
  }
  std::sort(cp.pairs.begin(), cp.pairs.end(),
            [](const CritPath::PairSeconds& a, const CritPath::PairSeconds& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  if (!cp.steps.empty()) {
    cp.lead_seconds = std::max(0.0, cp.steps.front().iv.start - cp.t0);
  }
  return cp;
}

// ---------------------------------------------------------------- verdict

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::ComputeBound: return "compute-bound";
    case Verdict::BandwidthBound: return "bandwidth-bound";
    case Verdict::LatencyBound: return "latency-bound";
    case Verdict::MessageRateBound: return "message-rate-bound";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

namespace {

std::string pair_label(std::uint32_t src, std::uint32_t dst,
                       const hw::MachineModel* model) {
  auto name = [&](std::uint32_t t) {
    if (model != nullptr && t < model->tiers.size() &&
        !model->tiers[t].name.empty()) {
      return model->tiers[t].name;
    }
    return "tier" + std::to_string(t);
  };
  return name(src) + "->" + name(dst);
}

} // namespace

VerdictReport classify(
    const CritPath& cp, const hw::MachineModel* model,
    const std::unordered_map<std::uint32_t, ooc::RemoteTierParams>* remote) {
  VerdictReport r;
  const double m = cp.makespan();
  if (m <= 0 || cp.steps.empty()) {
    r.reason = "empty trace";
    return r;
  }
  const double compute = cp.cat_seconds[static_cast<int>(Category::Compute)];
  const double migrate = cp.cat_seconds[static_cast<int>(Category::Prefetch)] +
                         cp.cat_seconds[static_cast<int>(Category::Evict)];
  r.compute_frac = compute / m;
  r.migrate_frac = migrate / m;
  r.gap_frac = (cp.gap_seconds + cp.lead_seconds) / m;

  for (const CritStep& s : cp.steps) {
    if (!is_migration(s.iv)) continue;
    const double dur = s.iv.end - s.iv.start;
    if (model != nullptr && s.iv.src_tier < model->tiers.size() &&
        s.iv.dst_tier < model->tiers.size()) {
      const hw::MemoryTier& st = model->tiers[s.iv.src_tier];
      const hw::MemoryTier& dt = model->tiers[s.iv.dst_tier];
      const bool is_remote = st.remote || dt.remote;
      const std::uint32_t remote_id =
          st.remote ? s.iv.src_tier : s.iv.dst_tier;
      const ooc::RemoteTierParams* rp = nullptr;
      if (is_remote && remote != nullptr) {
        auto it = remote->find(remote_id);
        if (it != remote->end()) rp = &it->second;
      }
      double overhead = model->alloc_overhead;
      if (is_remote) {
        overhead +=
            rp != nullptr ? rp->latency : model->tiers[remote_id].latency;
      }
      const double serial = std::max(0.0, dur - overhead);
      r.latency_seconds += std::min(dur, overhead);
      if (rp != nullptr) {
        const double t_bw = static_cast<double>(s.iv.bytes) / rp->bandwidth;
        const double t_msg =
            static_cast<double>(rp->messages(s.iv.bytes)) / rp->msg_rate;
        if (t_msg > t_bw) {
          r.msgrate_seconds += serial;
        } else {
          r.bandwidth_seconds += serial;
        }
      } else if (is_remote && s.iv.bytes < kSmallTransfer) {
        r.msgrate_seconds += serial;
      } else {
        r.bandwidth_seconds += serial;
      }
    } else if (s.iv.bytes < kSmallTransfer) {
      r.latency_seconds += dur;
    } else {
      r.bandwidth_seconds += dur;
    }
  }

  const CritPath::PairSeconds* top = nullptr;
  for (const auto& p : cp.pairs) {
    if (top == nullptr || p.seconds > top->seconds) top = &p;
  }

  if (compute >= 0.5 * m) {
    r.verdict = Verdict::ComputeBound;
    r.reason = "compute covers " +
               std::to_string(static_cast<int>(r.compute_frac * 100)) +
               "% of the critical path";
    return r;
  }
  if (r.bandwidth_seconds >= r.latency_seconds &&
      r.bandwidth_seconds >= r.msgrate_seconds && r.bandwidth_seconds > 0) {
    r.verdict = Verdict::BandwidthBound;
  } else if (r.msgrate_seconds >= r.latency_seconds &&
             r.msgrate_seconds > 0) {
    r.verdict = Verdict::MessageRateBound;
  } else if (r.latency_seconds > 0) {
    r.verdict = Verdict::LatencyBound;
  } else if (compute > 0) {
    // No migrations on the path at all: whatever compute there is
    // carries the run.
    r.verdict = Verdict::ComputeBound;
    r.reason = "no data movement on the critical path";
    return r;
  } else {
    r.verdict = Verdict::Unknown;
    r.reason = "no compute or migration steps on the critical path";
    return r;
  }
  r.reason = std::string(verdict_name(r.verdict)) + ": migrations cover " +
             std::to_string(static_cast<int>(r.migrate_frac * 100)) +
             "% of the critical path";
  if (top != nullptr) {
    r.reason += ", dominated by " + pair_label(top->src, top->dst, model);
  }
  return r;
}

// ---------------------------------------------------------------- what-if

hw::MachineModel apply_delta(hw::MachineModel m, const HwDelta& d) {
  HMR_CHECK(d.fast_bw_scale > 0 && d.compute_scale > 0 &&
            d.remote_bw_scale > 0 && d.remote_latency_scale > 0);
  if (m.fast < m.tiers.size()) {
    m.tiers[m.fast].read_bw *= d.fast_bw_scale;
    m.tiers[m.fast].write_bw *= d.fast_bw_scale;
  }
  for (const auto& [tier, scale] : d.tier_bw_scale) {
    HMR_CHECK(scale > 0);
    if (tier < m.tiers.size()) {
      m.tiers[tier].read_bw *= scale;
      m.tiers[tier].write_bw *= scale;
    }
  }
  m.compute_bw_per_pe *= d.compute_scale;
  for (auto& t : m.tiers) {
    if (!t.remote) continue;
    t.read_bw *= d.remote_bw_scale;
    t.write_bw *= d.remote_bw_scale;
    t.latency *= d.remote_latency_scale;
  }
  return m;
}

WhatIfResult whatif(
    const CritPath& cp, const hw::MachineModel& base, const HwDelta& delta,
    const std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>*
        task_bytes) {
  WhatIfResult r;
  r.base_seconds = cp.makespan();
  if (r.base_seconds <= 0) return r;
  const hw::MachineModel mod = apply_delta(base, delta);

  double pred = cp.lead_seconds;
  for (const CritStep& s : cp.steps) {
    pred += s.gap_before;
    const double dur = s.iv.end - s.iv.start;
    double ndur = dur;
    if (is_migration(s.iv) && s.iv.src_tier < base.tiers.size() &&
        s.iv.dst_tier < base.tiers.size()) {
      const bool is_remote = base.tiers[s.iv.src_tier].remote ||
                             base.tiers[s.iv.dst_tier].remote;
      const std::uint32_t remote_id = base.tiers[s.iv.src_tier].remote
                                          ? s.iv.src_tier
                                          : s.iv.dst_tier;
      const double over_old =
          base.alloc_overhead +
          (is_remote ? base.tiers[remote_id].latency : 0.0);
      const double over_new =
          mod.alloc_overhead + (is_remote ? mod.tiers[remote_id].latency : 0.0);
      const double rate_old = base.channel_capacity(s.iv.src_tier, s.iv.dst_tier);
      const double rate_new = mod.channel_capacity(s.iv.src_tier, s.iv.dst_tier);
      const double serial = std::max(0.0, dur - over_old);
      if (rate_old > 0 && rate_new > 0) {
        ndur = over_new + serial * (rate_old / rate_new);
      }
    } else if (s.iv.cat == Category::Compute) {
      const std::vector<std::uint64_t>* by = nullptr;
      if (task_bytes != nullptr && task_bound(s.iv)) {
        auto it = task_bytes->find(s.iv.task);
        if (it != task_bytes->end() && !it->second.empty()) by = &it->second;
      }
      if (by != nullptr) {
        const double t_old = base.compute_time(*by, base.num_pes);
        const double t_new = mod.compute_time(*by, mod.num_pes);
        if (t_old > 0) ndur = dur * (t_new / t_old);
      } else if (delta.compute_scale != 1.0) {
        ndur = dur / delta.compute_scale;
      }
    }
    pred += ndur;
  }
  r.predicted_seconds = pred;
  r.speedup = pred > 0 ? r.base_seconds / pred : 0;
  return r;
}

} // namespace hmr::telemetry
