#pragma once
// Critical-path analysis over trace intervals, phase verdicts, and the
// what-if hardware estimator.
//
// The tracer already records the causal fetch -> execute -> evict
// chains (the Perfetto flow arrows of docs/OBSERVABILITY.md §5); this
// module walks the same intervals backwards from the last-finishing
// one to extract the longest dependency chain of a run:
//
//   * a step's predecessor is the latest-ending interval that ends at
//     or before the step starts, preferring (1) an interval of the
//     same task (the fetch that fed this compute, the compute that
//     produced this evict), then (2) the previous occupant of the same
//     lane (resource dependence), then (3) any interval (a "jump" —
//     the machine was busy elsewhere; kept so the path still spans the
//     makespan);
//   * time not inside any step is recorded as gap (scheduler idle on
//     the chain).
//
// The per-category and per-tier-pair composition of the path feeds a
// phase verdict — bandwidth-bound / latency-bound / message-rate-bound
// / compute-bound, the classification arXiv 1704.08273 shows is the
// prerequisite for placement decisions — and the what-if estimator
// re-costs each step under a hypothetical hardware delta (2x HBM
// bandwidth, halved remote latency, ...) to predict speedup.  The
// estimator is validated in ctest by actually re-running the sim with
// the modified MachineModel (bench/abl_tier_cascade.cpp --check).

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/machine_model.hpp"
#include "ooc/types.hpp"
#include "trace/tracer.hpp"

namespace hmr::telemetry {

struct CritStep {
  trace::Interval iv;
  /// Idle time between the predecessor's end and this interval's
  /// start (0 for the root step).
  double gap_before = 0;
  enum class Link : std::uint8_t { Root, SameTask, SameLane, Jump };
  Link link = Link::Root;
};

struct CritPath {
  /// Trace extent: earliest start / latest end over *all* intervals.
  double t0 = 0;
  double t1 = 0;
  double makespan() const { return t1 - t0; }

  std::vector<CritStep> steps; // chronological order
  double step_seconds = 0;     // sum of step durations
  double gap_seconds = 0;      // sum of gaps inside the path
  /// Lead time between t0 and the first step's start (work before the
  /// chain's root; usually ~0).
  double lead_seconds = 0;

  /// Step durations summed per trace category (indexed by
  /// trace::Category).
  double cat_seconds[6] = {0, 0, 0, 0, 0, 0};

  struct PairSeconds {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    double seconds = 0;
    std::uint64_t bytes = 0;
    std::uint64_t count = 0;
  };
  /// Migration steps on the path grouped by ordered tier pair.
  std::vector<PairSeconds> pairs; // sorted by (src, dst)

  /// Fraction of the makespan the chain accounts for (steps + gaps +
  /// lead cover it exactly by construction).
  double step_coverage() const {
    const double m = makespan();
    return m > 0 ? step_seconds / m : 0;
  }
};

/// Extract the critical path.  Idle intervals are ignored (they are
/// explicit gap filler); an empty interval set yields an empty path.
CritPath critical_path(const std::vector<trace::Interval>& ivs);

// ---------------------------------------------------------------- verdict

enum class Verdict : int {
  ComputeBound = 0,
  BandwidthBound,
  LatencyBound,
  MessageRateBound,
  Unknown,
};
const char* verdict_name(Verdict v);

struct VerdictReport {
  Verdict verdict = Verdict::Unknown;
  /// Path composition as fractions of the makespan.
  double compute_frac = 0;
  double migrate_frac = 0;
  double gap_frac = 0;
  /// Decomposition of migration step time into its limiting terms.
  double bandwidth_seconds = 0;
  double latency_seconds = 0;
  double msgrate_seconds = 0;
  std::string reason; // one human-readable sentence
};

/// Classify the path.  With a model, migration steps are split into
/// per-transfer overhead (alloc + remote latency), message-rate and
/// bandwidth terms analytically (`remote` maps a remote tier id to its
/// network cost parameters for the message-rate term); without one, a
/// byte-count heuristic is used (transfers under 64 KiB count as
/// latency-dominated).  Compute wins when it covers >= half the
/// makespan.
VerdictReport classify(
    const CritPath& cp, const hw::MachineModel* model = nullptr,
    const std::unordered_map<std::uint32_t, ooc::RemoteTierParams>* remote =
        nullptr);

// ---------------------------------------------------------------- what-if

/// A hypothetical hardware change, applied multiplicatively to a
/// MachineModel copy.  1.0 everywhere = no change.
struct HwDelta {
  std::string name;          // label for reports ("2x fast bw", ...)
  double fast_bw_scale = 1;  // model.fast tier read+write bandwidth
  std::vector<std::pair<std::uint32_t, double>> tier_bw_scale;
  double compute_scale = 1;        // compute_bw_per_pe
  double remote_bw_scale = 1;      // every tier flagged remote
  double remote_latency_scale = 1; // remote tier latency
};

hw::MachineModel apply_delta(hw::MachineModel m, const HwDelta& d);

struct WhatIfResult {
  double base_seconds = 0;      // observed makespan
  double predicted_seconds = 0; // re-costed makespan under the delta
  double speedup = 0;           // base / predicted
};

/// Re-cost the critical path under `delta`:
///   * migration steps scale their serialization portion (duration
///     minus alloc overhead and channel latency) by the ratio of old
///     to new channel capacity for that tier pair;
///   * compute steps scale by the model compute-time ratio when the
///     task's bytes_by_tier placement is available in `task_bytes`
///     (see AttributionTable::Options::keep_tasks), else only by a
///     uniform compute_scale;
///   * gaps and lead time are assumed unchanged.
WhatIfResult whatif(
    const CritPath& cp, const hw::MachineModel& base, const HwDelta& delta,
    const std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>*
        task_bytes = nullptr);

} // namespace hmr::telemetry
