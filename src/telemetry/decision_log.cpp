#include "telemetry/decision_log.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "telemetry/metrics.hpp" // json_escape
#include "util/check.hpp"

namespace hmr::telemetry {

namespace {
/// JSON/CSV have no infinity: an unreachable break-even (fast
/// placement never pays off) serializes as -1.
double fin(double v) { return std::isfinite(v) ? v : -1.0; }
} // namespace

static_assert(std::is_trivially_copyable_v<DecisionLog::Record>,
              "records are seqlock-copied word-wise");

DecisionLog::DecisionLog(std::size_t capacity) : cap_(capacity) {
  HMR_CHECK(cap_ > 0);
  slots_ = std::make_unique<Slot[]>(cap_);
}

void DecisionLog::record(const adapt::DecisionEvent& e) {
  Record r;
  r.seq = widx_.fetch_add(1, std::memory_order_relaxed);
  r.time = clock_ ? clock_() : 0.0;
  r.ev = e;

  std::uint64_t words[kWords] = {};
  std::memcpy(words, &r, sizeof(Record));

  Slot& s = slots_[r.seq % cap_];
  // Seqlock write: odd marks in-progress, the release store of the
  // even value publishes the payload.
  s.seq.store(2 * r.seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t w = 0; w < kWords; ++w) {
    std::atomic_ref<std::uint64_t>(s.words[w])
        .store(words[w], std::memory_order_relaxed);
  }
  s.seq.store(2 * r.seq + 2, std::memory_order_release);
}

std::vector<DecisionLog::Record> DecisionLog::snapshot() const {
  std::vector<Record> out;
  out.reserve(cap_);
  for (std::size_t i = 0; i < cap_; ++i) {
    const Slot& s = slots_[i];
    // A couple of retries ride out a concurrent overwrite; a slot that
    // stays unstable is simply the one being written right now.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) {
        if ((s1 & 1) != 0) continue; // mid-write: retry
        break;                       // never written
      }
      std::uint64_t words[kWords];
      for (std::size_t w = 0; w < kWords; ++w) {
        // atomic_ref<const T> lands only in C++26; cast away const for
        // the relaxed load (the object itself is non-const).
        words[w] =
            std::atomic_ref<std::uint64_t>(
                const_cast<std::uint64_t&>(s.words[w]))
                .load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != s1) continue;
      Record r;
      std::memcpy(&r, words, sizeof(Record));
      out.push_back(r);
      break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });
  return out;
}

std::vector<DecisionLog::Record> DecisionLog::snapshot_block(
    ooc::BlockId b) const {
  std::vector<Record> all = snapshot();
  std::vector<Record> out;
  for (const Record& r : all) {
    if (r.ev.kind == adapt::DecisionKind::GovernorPhase || r.ev.block == b) {
      out.push_back(r);
    }
  }
  return out;
}

void DecisionLog::write_json(std::ostream& os,
                             const std::vector<Record>& recs,
                             std::uint64_t total,
                             std::uint64_t overwritten) {
  os << "{\"total\":" << total << ",\"overwritten\":" << overwritten
     << ",\"decisions\":[";
  bool first = true;
  for (const Record& r : recs) {
    if (!first) os << ",";
    first = false;
    const adapt::DecisionEvent& e = r.ev;
    os << "{\"seq\":" << r.seq << ",\"time_s\":" << r.time << ",\"kind\":\"";
    json_escape(os, adapt::decision_kind_name(e.kind));
    os << "\"";
    if (e.kind == adapt::DecisionKind::GovernorPhase) {
      os << ",\"phase\":" << e.phase
         << ",\"phase_seconds\":" << e.phase_seconds
         << ",\"wait_fraction\":" << e.wait_fraction
         << ",\"refetch_ratio\":" << e.refetch_ratio
         << ",\"channel_util\":" << e.channel_util
         << ",\"peak_inflight\":" << e.peak_inflight
         << ",\"lru_reclaims\":" << e.lru_reclaims
         << ",\"in_cooldown\":" << (e.in_cooldown ? "true" : "false")
         << ",\"strategy\":\"" << ooc::strategy_name(e.strategy) << "\""
         << ",\"eager_evict\":" << (e.eager_evict ? "true" : "false")
         << ",\"fair_admission\":" << (e.fair_admission ? "true" : "false")
         << ",\"lru_watermark\":" << e.lru_watermark
         << ",\"bypass_streaming\":" << (e.bypass_streaming ? "true" : "false")
         << ",\"changed\":" << (e.changed ? "true" : "false");
    } else {
      os << ",\"block\":" << e.block << ",\"bytes\":" << e.bytes
         << ",\"hotness\":" << e.hotness
         << ",\"readonly_frac\":" << e.readonly_frac
         << ",\"reuse_distance\":" << e.reuse_distance
         << ",\"break_even\":" << fin(e.break_even)
         << ",\"pin\":" << (e.pin ? "true" : "false")
         << ",\"demote_first\":" << (e.demote_first ? "true" : "false")
         << ",\"bypass_fetch\":" << (e.bypass_fetch ? "true" : "false")
         << ",\"demote_level\":" << e.demote_level;
    }
    os << "}";
  }
  os << "]}\n";
}

void DecisionLog::write_csv(std::ostream& os,
                            const std::vector<Record>& recs) {
  os << "seq,time,kind,block,bytes,hotness,readonly_frac,reuse_distance,"
        "break_even,pin,demote_first,bypass_fetch,demote_level,phase,"
        "phase_seconds,wait_fraction,refetch_ratio,channel_util,"
        "peak_inflight,lru_reclaims,in_cooldown,strategy,eager_evict,"
        "fair_admission,lru_watermark,bypass_streaming,changed\n";
  for (const Record& r : recs) {
    const adapt::DecisionEvent& e = r.ev;
    os << r.seq << ',' << r.time << ','
       << adapt::decision_kind_name(e.kind) << ',' << e.block << ','
       << e.bytes << ',' << e.hotness << ',' << e.readonly_frac << ','
       << e.reuse_distance << ',' << fin(e.break_even) << ',' << int(e.pin)
       << ',' << int(e.demote_first) << ',' << int(e.bypass_fetch) << ','
       << e.demote_level << ',' << e.phase << ',' << e.phase_seconds << ','
       << e.wait_fraction << ',' << e.refetch_ratio << ',' << e.channel_util
       << ',' << e.peak_inflight << ',' << e.lru_reclaims << ','
       << int(e.in_cooldown) << ',' << ooc::strategy_name(e.strategy) << ','
       << int(e.eager_evict) << ',' << int(e.fair_admission) << ','
       << e.lru_watermark << ',' << int(e.bypass_streaming) << ','
       << int(e.changed) << '\n';
  }
}

} // namespace hmr::telemetry
