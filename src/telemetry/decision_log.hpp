#pragma once
// DecisionLog: a lock-free bounded ring of adaptive-guidance decisions
// (adapt::DecisionSink implementation), the provenance half of the
// historical observability plane (docs/OBSERVABILITY.md §9).
//
// The trace rings answer "what moved when"; this log answers "what did
// the advisor/governor decide, and on which inputs".  Requirements
// differ from EventRing in one crucial way: EventRing::drain is
// destructive (one consumer owns the events), while /decisions, the
// hmr_trace --decisions view and the abl_adaptive provenance gate all
// want *repeatable* reads of the same recent window.  So the log is an
// overwrite ring with per-slot sequence locks:
//
//   * record(): one relaxed fetch_add to claim a monotonic write
//     index, then seq -> odd, payload, seq -> even.  Lock-free, no
//     allocation — cheap enough for the engine-lock hot path
//     (bench/micro_bench BM_DecisionLogRecord);
//   * snapshot(): non-destructive; copies each slot's payload word-wise
//     through std::atomic_ref between two sequence reads and keeps it
//     only if the sequence was stable and even — torn reads are
//     impossible, and readers never block writers;
//   * bounded: capacity slots, oldest overwritten first;
//     total_recorded()/overwritten() make the loss visible.
//
// Writers may run concurrently as long as fewer than `capacity` writes
// are ever in flight at once (both executors serialize recording under
// the engine lock anyway); readers are unrestricted.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "adapt/decision_sink.hpp"

namespace hmr::telemetry {

class DecisionLog final : public adapt::DecisionSink {
public:
  struct Record {
    /// Monotonic write index (0-based): snapshot order, survives wrap.
    std::uint64_t seq = 0;
    /// Clock at record time (executor clock: wall or virtual seconds).
    double time = 0;
    adapt::DecisionEvent ev;
  };

  explicit DecisionLog(std::size_t capacity = 1024);
  ~DecisionLog() override = default;

  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  std::size_t capacity() const { return cap_; }

  /// Timestamp source (seconds).  Unset, records carry time 0 — the
  /// executors inject their own clock (rt: wall since start, sim:
  /// virtual time) before any recording starts.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// adapt::DecisionSink: lock-free, wait-free but for the slot claim.
  void record(const adapt::DecisionEvent& e) override;

  /// Total decisions recorded / overwritten (lost to wrap) so far.
  std::uint64_t total_recorded() const {
    return widx_.load(std::memory_order_acquire);
  }
  std::uint64_t overwritten() const {
    const std::uint64_t n = total_recorded();
    return n > cap_ ? n - cap_ : 0;
  }

  /// Every retained decision, oldest first.  Non-destructive and safe
  /// concurrently with writers (slots mid-overwrite are skipped).
  std::vector<Record> snapshot() const;
  /// Only this block's advisor decisions plus every governor decision
  /// (governor events carry block 0 and phase-global context).
  std::vector<Record> snapshot_block(ooc::BlockId b) const;

  /// JSON for /decisions: {"total":..,"overwritten":..,
  /// "decisions":[{..}, ..]} — one flat object per record.
  static void write_json(std::ostream& os, const std::vector<Record>& recs,
                         std::uint64_t total, std::uint64_t overwritten);
  /// CSV with a header row; the hmr_trace --decisions input format.
  static void write_csv(std::ostream& os, const std::vector<Record>& recs);

private:
  // Payload stored as a word array so readers can copy it through
  // std::atomic_ref (no C++ data race, TSan-clean).
  static constexpr std::size_t kWords =
      (sizeof(Record) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0}; // 0 empty; odd writing; even done
    alignas(8) std::uint64_t words[kWords] = {};
  };

  std::size_t cap_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> widx_{0};
  std::function<double()> clock_;
};

} // namespace hmr::telemetry
