#include "telemetry/federate.hpp"

#include <algorithm>
#include <unordered_map>

namespace hmr::telemetry {

void Federation::add(std::string name, MetricsSnapshot snap,
                     std::uint64_t weight) {
  nodes_.push_back({std::move(name), weight == 0 ? 1 : weight,
                    std::move(snap)});
}

std::uint64_t Federation::total_nodes() const {
  std::uint64_t n = 0;
  for (const Node& node : nodes_) n += node.weight;
  return n;
}

MetricsSnapshot Federation::aggregate() const {
  MetricsSnapshot out;
  std::unordered_map<std::string, std::size_t> cidx;
  std::unordered_map<std::string, std::size_t> gidx;
  std::unordered_map<std::string, std::size_t> hidx;
  const auto key = [](const MetricDesc& d) {
    return d.name + '\1' + d.labels;
  };
  for (const Node& node : nodes_) {
    const double w = static_cast<double>(node.weight);
    out.time = std::max(out.time, node.snap.time);
    for (const auto& c : node.snap.counters) {
      auto [it, fresh] = cidx.try_emplace(key(c.desc), out.counters.size());
      if (fresh) out.counters.push_back({c.desc, 0});
      out.counters[it->second].value += c.value * node.weight;
    }
    for (const auto& g : node.snap.gauges) {
      auto [it, fresh] = gidx.try_emplace(key(g.desc), out.gauges.size());
      if (fresh) out.gauges.push_back({g.desc, 0});
      out.gauges[it->second].value += g.value * w;
    }
    for (const auto& h : node.snap.histograms) {
      auto [it, fresh] = hidx.try_emplace(key(h.desc), out.histograms.size());
      if (fresh) {
        MetricsSnapshot::HistogramVal hv;
        hv.desc = h.desc;
        out.histograms.push_back(hv);
      }
      auto& acc = out.histograms[it->second];
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        acc.buckets[b] += h.buckets[b] * node.weight;
      }
      acc.count += h.count * node.weight;
      acc.sum += h.sum * node.weight;
    }
  }
  return out;
}

void Federation::write_json(std::ostream& os) const {
  os << "{\"total_nodes\":" << total_nodes() << ",\"nodes\":[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) os << ",";
    const Node& n = nodes_[i];
    os << "{\"node\":\"";
    json_escape(os, n.name);
    os << "\",\"weight\":" << n.weight << ",\"metrics\":";
    MetricsRegistry::write_json(os, n.snap);
    os << "}";
  }
  os << "],\"aggregate\":";
  MetricsRegistry::write_json(os, aggregate());
  os << "}\n";
}

} // namespace hmr::telemetry
