#pragma once
// Federation: aggregate per-node MetricsRegistry snapshots into one
// cluster view.
//
// PR 8's ClusterSim gave every node a ground-truth DES but the
// telemetry surface stayed single-node: /metrics, /history and
// hmr_top all read one registry.  A Federation holds one snapshot per
// node (share-grouped nodes carry a weight — ClusterSim runs one DES
// per byte-share group and the group's metrics stand for every node
// in it) and folds them into an aggregate snapshot: counters,
// histogram buckets and gauges sum (weighted), snapshot time is the
// max.  Serves /cluster/metrics and the hmr_top --cluster pane.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace hmr::telemetry {

class Federation {
 public:
  struct Node {
    std::string name;
    std::uint64_t weight = 1; // nodes this snapshot stands for
    MetricsSnapshot snap;
  };

  void add(std::string name, MetricsSnapshot snap, std::uint64_t weight = 1);

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Total node count (sum of weights).
  std::uint64_t total_nodes() const;

  /// Weighted element-wise sum of every node snapshot.  Instruments
  /// are matched by (name, labels); gauges sum (they are bytes/depths
  /// here — a mean would hide imbalance), counters and histograms sum,
  /// time is the max.  Instrument order follows first appearance.
  MetricsSnapshot aggregate() const;

  /// {"nodes":[{"node":..,"weight":..,"metrics":{..}}],
  ///  "aggregate":{..},"total_nodes":N}
  void write_json(std::ostream& os) const;

 private:
  std::vector<Node> nodes_;
};

} // namespace hmr::telemetry
