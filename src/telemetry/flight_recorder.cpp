#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace hmr::telemetry {

std::size_t flight_depth_from_env(std::size_t fallback) {
  const char* env = std::getenv("HMR_FLIGHT_DEPTH");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback; // not a number
  return static_cast<std::size_t>(std::min(v, 1024ull));
}

BlockFlightRecorder::BlockFlightRecorder(std::size_t depth)
    : depth_(depth) {
  HMR_CHECK(depth_ > 0);
}

void BlockFlightRecorder::record(ooc::BlockId b, const Transition& t) {
  Stripe& st = stripe(b);
  std::lock_guard lk(st.mu);
  Ring& r = st.blocks[b];
  if (r.slots.size() < depth_) {
    r.slots.push_back(t);
  } else {
    r.slots[r.n % depth_] = t;
  }
  ++r.n;
}

std::vector<BlockFlightRecorder::Transition> BlockFlightRecorder::history(
    ooc::BlockId b) const {
  const Stripe& st = stripe(b);
  std::lock_guard lk(st.mu);
  const auto it = st.blocks.find(b);
  if (it == st.blocks.end()) return {};
  const Ring& r = it->second;
  std::vector<Transition> out;
  out.reserve(r.slots.size());
  if (r.n <= r.slots.size()) {
    out = r.slots;
  } else {
    // The ring wrapped: oldest entry sits at the next write position.
    const std::size_t head = r.n % depth_;
    for (std::size_t i = 0; i < r.slots.size(); ++i) {
      out.push_back(r.slots[(head + i) % depth_]);
    }
  }
  return out;
}

std::uint64_t BlockFlightRecorder::total_recorded(ooc::BlockId b) const {
  const Stripe& st = stripe(b);
  std::lock_guard lk(st.mu);
  const auto it = st.blocks.find(b);
  return it == st.blocks.end() ? 0 : it->second.n;
}

void BlockFlightRecorder::dump_block(std::ostream& os,
                                     ooc::BlockId b) const {
  const auto hist = history(b);
  os << "block " << b << " (" << total_recorded(b)
     << " transitions, last " << hist.size() << "):\n";
  for (const auto& t : hist) {
    os << "  t=" << t.time << " " << (t.fetch ? "fetch" : "evict") << " "
       << t.src_tier << "->" << t.dst_tier << " bytes=" << t.bytes;
    if (t.task != 0) os << " task=" << t.task;
    os << "\n";
  }
}

void BlockFlightRecorder::dump(std::ostream& os) const {
  std::vector<ooc::BlockId> ids;
  for (const Stripe& st : stripes_) {
    std::lock_guard lk(st.mu);
    for (const auto& [b, r] : st.blocks) ids.push_back(b);
  }
  std::sort(ids.begin(), ids.end());
  for (const ooc::BlockId b : ids) dump_block(os, b);
}

} // namespace hmr::telemetry
