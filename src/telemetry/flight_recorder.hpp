#pragma once
// BlockFlightRecorder: last-N residency transitions per block.
//
// When a cascade demotion or an eviction decision looks wrong, the
// question is always "how did this block get here?" — and by the time
// anyone asks, the full trace (if one was even recorded) is millions
// of intervals.  The flight recorder keeps a tiny bounded ring of the
// most recent transitions *per block*, always on, so post-mortem
// debugging can replay exactly the path one block took through the
// hierarchy.
//
// Writers are the executors' migration completion paths (rare relative
// to task execution); a small striped-mutex map keeps them from
// contending without the complexity of a lock-free multimap.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "ooc/types.hpp"

namespace hmr::telemetry {

/// Flight-recorder depth from the environment: HMR_FLIGHT_DEPTH
/// overrides `fallback` (the executor's Config value), clamped to
/// [0, 1024] — 0 disables the recorder entirely.  Unset or unparsable,
/// `fallback` stands.  Lets operators deepen (or silence) the ring on
/// a deployed binary without a rebuild.
std::size_t flight_depth_from_env(std::size_t fallback);

class BlockFlightRecorder {
public:
  struct Transition {
    double time = 0; // executor clock (virtual or wall seconds)
    ooc::TaskId task = 0; // causing task; 0 = none recorded
    std::uint32_t src_tier = 0;
    std::uint32_t dst_tier = 0;
    std::uint64_t bytes = 0;
    bool fetch = false; // promotion (fetch) vs demotion (evict)
  };

  /// Keep the last `depth` transitions per block.
  explicit BlockFlightRecorder(std::size_t depth = 8);

  std::size_t depth() const { return depth_; }

  void record(ooc::BlockId b, const Transition& t);

  /// The block's retained transitions, oldest first; and how many were
  /// recorded in total (>= history().size() once the ring wrapped).
  std::vector<Transition> history(ooc::BlockId b) const;
  std::uint64_t total_recorded(ooc::BlockId b) const;

  /// Text dump of one block / of every block seen (for post-mortems).
  void dump_block(std::ostream& os, ooc::BlockId b) const;
  void dump(std::ostream& os) const;

private:
  struct Ring {
    std::vector<Transition> slots;
    std::uint64_t n = 0; // total recorded; slots[n % depth] is next
  };
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<ooc::BlockId, Ring> blocks;
  };
  static constexpr std::size_t kStripes = 16;

  Stripe& stripe(ooc::BlockId b) { return stripes_[b % kStripes]; }
  const Stripe& stripe(ooc::BlockId b) const {
    return stripes_[b % kStripes];
  }

  std::size_t depth_;
  Stripe stripes_[kStripes];
};

} // namespace hmr::telemetry
