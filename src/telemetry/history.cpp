#include "telemetry/history.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmr::telemetry {

HistoryBuffer::HistoryBuffer(MetricsRegistry& reg, std::size_t capacity)
    : reg_(reg), cap_(capacity) {
  HMR_CHECK(cap_ > 0);
}

void HistoryBuffer::set_clock(std::function<double()> clock) {
  std::lock_guard lk(mu_);
  clock_ = std::move(clock);
}

void HistoryBuffer::sample() {
  Sample s;
  s.snap = reg_.snapshot();
  {
    std::lock_guard lk(mu_);
    s.time = clock_ ? clock_() : s.snap.time;
    samples_.push_back(std::move(s));
    if (samples_.size() > cap_) samples_.pop_front();
    ++total_;
  }
}

std::size_t HistoryBuffer::size() const {
  std::lock_guard lk(mu_);
  return samples_.size();
}

std::uint64_t HistoryBuffer::total_samples() const {
  std::lock_guard lk(mu_);
  return total_;
}

double HistoryBuffer::rate_between(double t_prev, std::uint64_t v_prev,
                                   double t_cur, std::uint64_t v_cur) {
  const double dt = t_cur - t_prev;
  if (dt <= 0) return 0; // zero-elapsed window: no meaningful rate
  // Counter reset: the new value *is* the delta since the restart.
  const double delta = v_cur >= v_prev
                           ? static_cast<double>(v_cur - v_prev)
                           : static_cast<double>(v_cur);
  return delta / dt;
}

std::vector<HistoryBuffer::Series> HistoryBuffer::series(
    const std::string& metric, double window) const {
  std::lock_guard lk(mu_);
  std::vector<Series> out;
  if (samples_.empty()) return out;

  const double cutoff =
      window > 0 ? samples_.back().time - window : samples_.front().time - 1;

  // Series identities come from the *newest* sample; older samples
  // missing an instrument (registered later) simply contribute no
  // point.
  const MetricsSnapshot& newest = samples_.back().snap;
  struct Key {
    const MetricDesc* desc;
    const char* type;
  };
  std::vector<Key> keys;
  for (const auto& c : newest.counters) {
    if (c.desc.name == metric) keys.push_back({&c.desc, "counter"});
  }
  for (const auto& g : newest.gauges) {
    if (g.desc.name == metric) keys.push_back({&g.desc, "gauge"});
  }
  for (const auto& h : newest.histograms) {
    if (h.desc.name == metric) keys.push_back({&h.desc, "counter"});
  }

  for (const Key& k : keys) {
    Series se;
    se.name = k.desc->name;
    se.labels = k.desc->labels;
    se.type = k.type;
    bool have_prev = false;
    double t_prev = 0;
    std::uint64_t c_prev = 0;
    for (const Sample& s : samples_) {
      Point p;
      p.time = s.time;
      bool found = false;
      std::uint64_t cval = 0;
      if (k.type[0] == 'g') {
        if (const auto* g = s.snap.gauge(se.name, se.labels)) {
          p.value = g->value;
          found = true;
        }
      } else if (const auto* c = s.snap.counter(se.name, se.labels)) {
        cval = c->value;
        p.value = static_cast<double>(cval);
        found = true;
      } else if (const auto* h = s.snap.histogram(se.name, se.labels)) {
        cval = h->count;
        p.value = static_cast<double>(cval);
        found = true;
      }
      if (!found) continue;
      if (k.type[0] != 'g') {
        if (have_prev) p.rate = rate_between(t_prev, c_prev, s.time, cval);
        t_prev = s.time;
        c_prev = cval;
        have_prev = true;
      }
      if (s.time >= cutoff) se.points.push_back(p);
    }
    out.push_back(std::move(se));
  }
  return out;
}

std::vector<std::string> HistoryBuffer::metric_names() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> names;
  if (samples_.empty()) return names;
  const MetricsSnapshot& newest = samples_.back().snap;
  // First-seen order, deduplicated: instruments repeat per label set
  // (and per engine shard), which are not adjacent in the snapshot.
  auto add = [&](const std::string& n) {
    if (std::find(names.begin(), names.end(), n) == names.end()) {
      names.push_back(n);
    }
  };
  for (const auto& c : newest.counters) add(c.desc.name);
  for (const auto& g : newest.gauges) add(g.desc.name);
  for (const auto& h : newest.histograms) add(h.desc.name);
  return names;
}

void HistoryBuffer::write_json(std::ostream& os, const std::string& metric,
                               double window) const {
  if (metric.empty()) {
    const auto names = metric_names();
    std::lock_guard lk(mu_);
    os << "{\"samples\":" << samples_.size()
       << ",\"total_samples\":" << total_ << ",\"capacity\":" << cap_;
    if (!samples_.empty()) {
      os << ",\"oldest_s\":" << samples_.front().time
         << ",\"newest_s\":" << samples_.back().time;
    }
    os << ",\"metrics\":[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"";
      json_escape(os, names[i]);
      os << "\"";
    }
    os << "]}\n";
    return;
  }

  const auto ss = series(metric, window);
  os << "{\"metric\":\"";
  json_escape(os, metric);
  os << "\",\"window_s\":" << window << ",\"series\":[";
  for (std::size_t i = 0; i < ss.size(); ++i) {
    if (i > 0) os << ",";
    const Series& se = ss[i];
    os << "{\"labels\":\"";
    json_escape(os, se.labels);
    os << "\",\"type\":\"" << se.type << "\",\"points\":[";
    for (std::size_t j = 0; j < se.points.size(); ++j) {
      if (j > 0) os << ",";
      const Point& p = se.points[j];
      os << "{\"time\":" << p.time << ",\"value\":" << p.value
         << ",\"rate\":" << p.rate << "}";
    }
    os << "]}";
  }
  os << "]}\n";
}

} // namespace hmr::telemetry
