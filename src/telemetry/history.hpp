#pragma once
// HistoryBuffer: a bounded ring of timestamped MetricsRegistry
// snapshots with derived per-counter rates — the time-series half of
// the historical observability plane (docs/OBSERVABILITY.md §9).
//
// /metrics and /status are point-in-time: they show *that* the runtime
// is in a bad state, not how it got there.  The paper reads every
// claim off a timeline; arXiv:2110.02150 and arXiv:2505.14294 both
// tune placement from exactly this kind of windowed history.  The
// buffer keeps the last `capacity` snapshots, sampled by the executors
// at their natural phase points (rt: every wait_idle() quiescence
// tick, sim: every iteration boundary), and serves them through the
// /history route and tools/hmr_top.
//
// Rate derivation, for counter series over consecutive samples:
//   * rate_i = (v_i - v_{i-1}) / (t_i - t_{i-1});
//   * a zero-elapsed window (t_i <= t_{i-1}: two quiescence ticks in
//     the same clock quantum, or a virtual clock that did not move)
//     yields rate 0 rather than a division blow-up;
//   * a counter reset (v_i < v_{i-1}: a bridged source re-created or
//     wrapped) treats v_i itself as the delta, the Prometheus reset
//     convention, so one restart does not print a huge negative rate.
//
// Sampling takes the registry's snapshot mutex and copies every
// instrument; it belongs at quiescence points, not on the task hot
// path (bench/micro_bench BM_HistoryBufferSample measures the cost).

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace hmr::telemetry {

class HistoryBuffer {
public:
  /// Keep the last `capacity` samples of `reg`.
  explicit HistoryBuffer(MetricsRegistry& reg, std::size_t capacity = 240);

  std::size_t capacity() const { return cap_; }

  /// Timestamp source (seconds).  Unset, samples carry the registry's
  /// own uptime; executors inject their clock (rt: seconds since
  /// start, sim: virtual time) so history lines up with /status.
  void set_clock(std::function<double()> clock);

  /// Snapshot the registry now and append (oldest sample dropped once
  /// the ring is full).  Thread-safe; call at quiescence points.
  void sample();

  /// Retained / lifetime sample counts.
  std::size_t size() const;
  std::uint64_t total_samples() const;

  struct Point {
    double time = 0;
    double value = 0;
    /// Counters: per-second rate vs the previous sample (0 at the
    /// first point).  Gauges/histogram counts: 0.
    double rate = 0;
  };
  struct Series {
    std::string name;
    std::string labels;
    const char* type = "counter"; // "counter" | "gauge"
    std::vector<Point> points;
  };

  /// Every series whose metric name equals `metric` (one per label
  /// set), windowed to the last `window` seconds of samples (<= 0 =
  /// everything retained).  Histograms surface as their _count.
  std::vector<Series> series(const std::string& metric,
                             double window = 0) const;

  /// Instrument names present in the newest sample (no labels).
  std::vector<std::string> metric_names() const;

  /// The /history document.  Without `metric`: sample counts + the
  /// instrument-name catalog.  With `metric`: the windowed series with
  /// per-point time/value/rate.
  void write_json(std::ostream& os, const std::string& metric = "",
                  double window = 0) const;

  /// Rate between two samples under the zero-elapsed / counter-reset
  /// rules above (exposed for tests).
  static double rate_between(double t_prev, std::uint64_t v_prev,
                             double t_cur, std::uint64_t v_cur);

private:
  struct Sample {
    double time = 0;
    MetricsSnapshot snap;
  };

  MetricsRegistry& reg_;
  std::size_t cap_;
  std::function<double()> clock_;
  mutable std::mutex mu_;
  std::deque<Sample> samples_;
  std::uint64_t total_ = 0;
};

} // namespace hmr::telemetry
