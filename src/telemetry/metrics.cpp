#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/check.hpp"

namespace hmr::telemetry {

namespace {

std::string key_of(const std::string& name, const std::string& labels) {
  std::string k = name;
  k.push_back('\x01');
  k += labels;
  return k;
}

/// `name{labels}` or bare `name`.
std::string full_name(const MetricDesc& d) {
  if (d.labels.empty()) return d.name;
  return d.name + "{" + d.labels + "}";
}

/// HELP text escaping per the exposition format: only `\` and
/// newline are special (label *values* additionally escape `"`, done
/// in prom_label at construction time since labels are stored as
/// already-rendered `key="value"` text).
void prom_escape_help(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

/// HELP/TYPE preamble, once per metric name (labeled series share it).
void prometheus_preamble(std::ostream& os, const MetricDesc& d,
                         const char* type, std::string& last_name) {
  if (d.name == last_name) return;
  last_name = d.name;
  if (!d.help.empty()) {
    os << "# HELP " << d.name << " ";
    prom_escape_help(os, d.help);
    os << "\n";
  }
  os << "# TYPE " << d.name << " " << type << "\n";
}

/// A raw newline inside a stored label string would break the
/// line-oriented exposition format no matter how values were escaped.
void validate_desc(const std::string& name, const std::string& labels) {
  HMR_CHECK_MSG(valid_metric_name(name),
                "invalid metric name (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
  HMR_CHECK_MSG(labels.find('\n') == std::string::npos,
                "raw newline in label string (use prom_label)");
}

} // namespace

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

std::string prom_label(std::string_view key, std::string_view value) {
  HMR_CHECK_MSG(valid_metric_name(key) &&
                    key.find(':') == std::string_view::npos,
                "invalid label key");
  std::string out(key);
  out += "=\"";
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

const MetricsSnapshot::CounterVal* MetricsSnapshot::counter(
    const std::string& name, const std::string& labels) const {
  for (const auto& c : counters) {
    if (c.desc.name == name && c.desc.labels == labels) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeVal* MetricsSnapshot::gauge(
    const std::string& name, const std::string& labels) const {
  for (const auto& g : gauges) {
    if (g.desc.name == name && g.desc.labels == labels) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramVal* MetricsSnapshot::histogram(
    const std::string& name, const std::string& labels) const {
  for (const auto& h : histograms) {
    if (h.desc.name == name && h.desc.labels == labels) return &h;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry()
    : t0_(std::chrono::steady_clock::now()) {}

double MetricsRegistry::uptime() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0_)
      .count();
}

const MetricsRegistry::Registered* MetricsRegistry::find_locked(
    const std::string& key) const {
  for (const auto& [k, r] : index_) {
    if (k == key) return &r;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels,
                                  const std::string& help) {
  validate_desc(name, labels);
  std::lock_guard lk(mu_);
  const std::string key = key_of(name, labels);
  if (const Registered* r = find_locked(key)) {
    HMR_CHECK_MSG(r->type == Type::Counter,
                  "metric registered under two instrument types");
    return counters_[r->index].second;
  }
  counters_.emplace_back(); // instruments hold atomics: construct in
  counters_.back().first = MetricDesc{name, labels, help}; // place
  index_.emplace_back(key, Registered{Type::Counter, counters_.size() - 1});
  return counters_.back().second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels,
                              const std::string& help) {
  validate_desc(name, labels);
  std::lock_guard lk(mu_);
  const std::string key = key_of(name, labels);
  if (const Registered* r = find_locked(key)) {
    HMR_CHECK_MSG(r->type == Type::Gauge,
                  "metric registered under two instrument types");
    return gauges_[r->index].second;
  }
  gauges_.emplace_back();
  gauges_.back().first = MetricDesc{name, labels, help};
  index_.emplace_back(key, Registered{Type::Gauge, gauges_.size() - 1});
  return gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& labels,
                                      const std::string& help) {
  validate_desc(name, labels);
  std::lock_guard lk(mu_);
  const std::string key = key_of(name, labels);
  if (const Registered* r = find_locked(key)) {
    HMR_CHECK_MSG(r->type == Type::Histogram,
                  "metric registered under two instrument types");
    return histograms_[r->index].second;
  }
  histograms_.emplace_back();
  histograms_.back().first = MetricDesc{name, labels, help};
  index_.emplace_back(key,
                      Registered{Type::Histogram, histograms_.size() - 1});
  return histograms_.back().second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.time = uptime();
  std::lock_guard lk(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [d, c] : counters_) {
    s.counters.push_back({d, c.value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [d, g] : gauges_) {
    s.gauges.push_back({d, g.value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [d, h] : histograms_) {
    MetricsSnapshot::HistogramVal hv;
    hv.desc = d;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      hv.buckets[static_cast<std::size_t>(i)] = h.bucket_count(i);
    }
    hv.count = h.count();
    hv.sum = h.sum();
    s.histograms.push_back(std::move(hv));
  }
  return s;
}

void MetricsRegistry::write_prometheus(std::ostream& os,
                                       const MetricsSnapshot& s) {
  std::string last;
  for (const auto& c : s.counters) {
    prometheus_preamble(os, c.desc, "counter", last);
    os << full_name(c.desc) << " " << c.value << "\n";
  }
  for (const auto& g : s.gauges) {
    prometheus_preamble(os, g.desc, "gauge", last);
    os << full_name(g.desc) << " " << g.value << "\n";
  }
  for (const auto& h : s.histograms) {
    prometheus_preamble(os, h.desc, "histogram", last);
    const std::string sep = h.desc.labels.empty() ? "" : ",";
    // Cumulative buckets; trailing empty buckets are elided (the +Inf
    // line always carries the full count).
    int top = Histogram::kBuckets - 1;
    while (top > 0 && h.buckets[static_cast<std::size_t>(top)] == 0) {
      --top;
    }
    std::uint64_t cum = 0;
    for (int i = 0; i <= top; ++i) {
      cum += h.buckets[static_cast<std::size_t>(i)];
      os << h.desc.name << "_bucket{" << h.desc.labels << sep << "le=\""
         << Histogram::bucket_upper(i) << "\"} " << cum << "\n";
    }
    os << h.desc.name << "_bucket{" << h.desc.labels << sep
       << "le=\"+Inf\"} " << h.count << "\n";
    os << h.desc.name << "_sum";
    if (!h.desc.labels.empty()) os << "{" << h.desc.labels << "}";
    os << " " << h.sum << "\n";
    os << h.desc.name << "_count";
    if (!h.desc.labels.empty()) os << "{" << h.desc.labels << "}";
    os << " " << h.count << "\n";
  }
}

void MetricsRegistry::write_json(std::ostream& os,
                                 const MetricsSnapshot& s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", s.time);
  os << "{\"time\":" << buf << ",\"counters\":[";
  bool first = true;
  for (const auto& c : s.counters) {
    os << (first ? "" : ",") << "\n{\"name\":\"";
    json_escape(os, c.desc.name);
    os << "\",\"labels\":\"";
    json_escape(os, c.desc.labels);
    os << "\",\"value\":" << c.value << "}";
    first = false;
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& g : s.gauges) {
    std::snprintf(buf, sizeof buf, "%.17g", g.value);
    os << (first ? "" : ",") << "\n{\"name\":\"";
    json_escape(os, g.desc.name);
    os << "\",\"labels\":\"";
    json_escape(os, g.desc.labels);
    os << "\",\"value\":" << buf << "}";
    first = false;
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& h : s.histograms) {
    os << (first ? "" : ",") << "\n{\"name\":\"";
    json_escape(os, h.desc.name);
    os << "\",\"labels\":\"";
    json_escape(os, h.desc.labels);
    os << "\",\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"buckets\":[";
    int top = Histogram::kBuckets - 1;
    while (top > 0 && h.buckets[static_cast<std::size_t>(top)] == 0) {
      --top;
    }
    for (int i = 0; i <= top; ++i) {
      if (i > 0) os << ",";
      os << "{\"le\":" << Histogram::bucket_upper(i)
         << ",\"count\":" << h.buckets[static_cast<std::size_t>(i)] << "}";
    }
    os << "]}";
    first = false;
  }
  os << "]}\n";
}

SnapshotSampler::SnapshotSampler(MetricsRegistry& reg,
                                 std::chrono::milliseconds interval,
                                 PreSample pre_sample, std::size_t keep)
    : reg_(reg),
      interval_(interval),
      pre_(std::move(pre_sample)),
      keep_(std::max<std::size_t>(1, keep)) {}

SnapshotSampler::~SnapshotSampler() { stop(); }

void SnapshotSampler::start() {
  std::lock_guard lk(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { loop(); });
}

void SnapshotSampler::stop() {
  {
    std::lock_guard lk(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard lk(mu_);
  running_ = false;
}

void SnapshotSampler::loop() {
  for (;;) {
    {
      std::unique_lock lk(mu_);
      if (cv_.wait_for(lk, interval_, [&] { return stop_; })) return;
    }
    if (pre_) pre_();
    append(reg_.snapshot());
  }
}

MetricsSnapshot SnapshotSampler::sample_now() {
  if (pre_) pre_();
  MetricsSnapshot s = reg_.snapshot();
  append(s);
  return s;
}

void SnapshotSampler::append(MetricsSnapshot s) {
  std::lock_guard lk(mu_);
  hist_.push_back(std::move(s));
  while (hist_.size() > keep_) hist_.pop_front();
}

std::vector<MetricsSnapshot> SnapshotSampler::history() const {
  std::lock_guard lk(mu_);
  return {hist_.begin(), hist_.end()};
}

} // namespace hmr::telemetry
