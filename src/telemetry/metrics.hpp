#pragma once
// MetricsRegistry: named counters, gauges and log2-bucketed histograms
// with point-in-time snapshots and Prometheus-text / JSON writers.
//
// The engine's Stats counters (dedup hits, cascade demotions, tier
// trims, ...) had no time-resolved or exportable surface; related work
// (arXiv:2110.02150, arXiv:2505.14294) drives placement and pool
// tuning from exactly this kind of always-on runtime telemetry.  The
// registry is the standard-format end of that pipe:
//
//   * instruments are registered once (name + optional Prometheus-style
//     label string) and return stable pointers; updates after that are
//     single relaxed atomics, safe from any thread;
//   * histograms bucket by log2: bucket i counts values v with
//     bit_width(v) == i, i.e. bucket 0 is v == 0 and bucket i >= 1 is
//     [2^(i-1), 2^i) — fixed 65 buckets, no configuration, covering
//     the full uint64 range (latencies are recorded in nanoseconds);
//   * snapshot() captures every instrument at once; SnapshotSampler
//     optionally does so periodically from a background thread and
//     keeps the last N snapshots for post-mortem inspection;
//   * write_prometheus() emits text exposition format (histograms as
//     cumulative _bucket{le=...} series), write_json() one JSON object
//     per snapshot.
//
// Naming convention (the full catalog lives in docs/OBSERVABILITY.md):
// hmr_<subsystem>_<what>[_total] — e.g. hmr_policy_fetches_total,
// hmr_fetch_latency_ns, hmr_tier_used_bytes{level="0"}.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace hmr::telemetry {

/// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*.  The
/// registry rejects (HMR_CHECK) anything else at registration — a bad
/// name would silently corrupt the whole exposition page.
bool valid_metric_name(std::string_view name);

/// Build one `key="value"` label pair with the value escaped per the
/// exposition format (`\` -> `\\`, `"` -> `\"`, newline -> `\n`).
/// Join pairs with "," to form MetricDesc::labels.  Dies on an invalid
/// key (same charset as metric names, minus ':').
std::string prom_label(std::string_view key, std::string_view value);

/// JSON string-body escaping (no surrounding quotes); shared by the
/// metrics JSON writer and the status server.
void json_escape(std::ostream& os, std::string_view s);

class Counter {
public:
  void add(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Mirror an external cumulative source (e.g. PolicyEngine::Stats):
  /// overwrite with its current value.  The source must be monotone.
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

private:
  std::atomic<double> v_{0};
};

class Histogram {
public:
  /// bit_width of a uint64 is 0..64, one bucket each.
  static constexpr int kBuckets = 65;

  /// Upper inclusive bound of bucket i (the Prometheus `le`):
  /// 0 for bucket 0, 2^i - 1 for i >= 1.
  static std::uint64_t bucket_upper(int i) {
    if (i <= 0) return 0;
    if (i >= 64) return ~0ull;
    return (1ull << i) - 1;
  }
  /// Bucket index for a value: bit_width(v).
  static int bucket_of(std::uint64_t v) { return std::bit_width(v); }

  void observe(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Identity of one instrument: metric name plus an optional label
/// string in Prometheus form *without* braces, e.g. `level="0"` or
/// `shard="3"` (empty = no labels).
struct MetricDesc {
  std::string name;
  std::string labels;
  std::string help;
};

struct MetricsSnapshot {
  double time = 0; // seconds since registry creation

  struct CounterVal {
    MetricDesc desc;
    std::uint64_t value = 0;
  };
  struct GaugeVal {
    MetricDesc desc;
    double value = 0;
  };
  struct HistogramVal {
    MetricDesc desc;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };

  std::vector<CounterVal> counters;
  std::vector<GaugeVal> gauges;
  std::vector<HistogramVal> histograms;

  /// Lookup helpers (nullptr when absent); labels must match exactly.
  const CounterVal* counter(const std::string& name,
                            const std::string& labels = "") const;
  const GaugeVal* gauge(const std::string& name,
                        const std::string& labels = "") const;
  const HistogramVal* histogram(const std::string& name,
                                const std::string& labels = "") const;
};

class MetricsRegistry {
public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by (name, labels).  The returned reference stays
  /// valid for the registry's lifetime; registering the same identity
  /// again returns the same instrument.  Registering one name as two
  /// different instrument types dies.
  Counter& counter(const std::string& name, const std::string& labels = "",
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "",
               const std::string& help = "");
  Histogram& histogram(const std::string& name,
                       const std::string& labels = "",
                       const std::string& help = "");

  /// Seconds since the registry was created.
  double uptime() const;

  /// Point-in-time copy of every instrument, in registration order.
  MetricsSnapshot snapshot() const;

  /// Prometheus text exposition format.
  static void write_prometheus(std::ostream& os, const MetricsSnapshot& s);
  /// One JSON object: {"time":..,"counters":[..],"gauges":[..],
  /// "histograms":[..]}.
  static void write_json(std::ostream& os, const MetricsSnapshot& s);

private:
  enum class Type { Counter, Gauge, Histogram };
  struct Registered {
    Type type;
    std::size_t index; // into the per-type deque
  };

  mutable std::mutex mu_; // registration and snapshot only
  // Deques keep instrument addresses stable across registration.
  std::deque<std::pair<MetricDesc, Counter>> counters_;
  std::deque<std::pair<MetricDesc, Gauge>> gauges_;
  std::deque<std::pair<MetricDesc, Histogram>> histograms_;
  std::vector<std::pair<std::string, Registered>> index_; // key = name\1labels
  std::chrono::steady_clock::time_point t0_;

  const Registered* find_locked(const std::string& key) const;
};

/// Periodic snapshotter: every `interval` it runs the optional
/// `pre_sample` callback (so callers can refresh bridged counters —
/// see bridge.hpp), takes a snapshot, and appends it to a bounded
/// history.  sample_now() does one synchronous round from the caller.
class SnapshotSampler {
public:
  using PreSample = std::function<void()>;

  SnapshotSampler(MetricsRegistry& reg, std::chrono::milliseconds interval,
                  PreSample pre_sample = {}, std::size_t keep = 120);
  ~SnapshotSampler();

  SnapshotSampler(const SnapshotSampler&) = delete;
  SnapshotSampler& operator=(const SnapshotSampler&) = delete;

  void start(); // idempotent
  void stop();  // idempotent; joins the thread

  MetricsSnapshot sample_now();
  std::vector<MetricsSnapshot> history() const;

private:
  void loop();
  void append(MetricsSnapshot s);

  MetricsRegistry& reg_;
  std::chrono::milliseconds interval_;
  PreSample pre_;
  std::size_t keep_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<MetricsSnapshot> hist_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
};

} // namespace hmr::telemetry
