#include "telemetry/perfetto.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace hmr::telemetry {

namespace {

/// 0 (and the engines' ~0 "invalid task" sentinel, if a caller leaks
/// one through) mark intervals that belong to no task.
bool task_bound(const trace::Interval& iv) {
  return iv.task != 0 && iv.task != ~0ull;
}

void emit_event(std::ostream& os, bool& first, const char* body) {
  os << (first ? "" : ",") << "\n" << body;
  first = false;
}

} // namespace

void write_perfetto(std::ostream& os,
                    const std::vector<trace::Interval>& intervals,
                    const PerfettoOptions& opt) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[512];

  // Thread (lane) metadata: names and a stable sort order.
  std::set<std::int32_t> lanes;
  for (const auto& iv : intervals) lanes.insert(iv.lane);
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":0,\"args\":{\"name\":\"hmr\"}}");
  emit_event(os, first, buf);
  for (const std::int32_t lane : lanes) {
    char lane_name[32];
    if (opt.worker_lanes < 0) {
      std::snprintf(lane_name, sizeof lane_name, "lane %d", lane);
    } else if (lane < opt.worker_lanes) {
      std::snprintf(lane_name, sizeof lane_name, "PE %d", lane);
    } else {
      std::snprintf(lane_name, sizeof lane_name, "IO %d",
                    lane - opt.worker_lanes);
    }
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  lane, lane_name);
    emit_event(os, first, buf);
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"sort_index\":%d}}",
                  lane, lane);
    emit_event(os, first, buf);
  }

  // Duration events, one per interval.
  for (const auto& iv : intervals) {
    if (!opt.idle && iv.cat == trace::Category::Idle) continue;
    const double ts = iv.start * 1e6;
    const double dur = (iv.end - iv.start) * 1e6;
    char args[160];
    if (iv.bytes > 0) {
      std::snprintf(args, sizeof args,
                    "{\"task\":%llu,\"src_tier\":%u,\"dst_tier\":%u,"
                    "\"bytes\":%llu}",
                    static_cast<unsigned long long>(iv.task), iv.src_tier,
                    iv.dst_tier,
                    static_cast<unsigned long long>(iv.bytes));
    } else {
      std::snprintf(args, sizeof args, "{\"task\":%llu}",
                    static_cast<unsigned long long>(iv.task));
    }
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                  "\"args\":%s}",
                  trace::category_name(iv.cat),
                  trace::category_name(iv.cat), iv.lane, ts, dur, args);
    emit_event(os, first, buf);
  }

  if (!opt.flows) {
    os << "\n]}\n";
    return;
  }

  // Flow events: per task, its intervals in time order form one chain
  // (fetches -> execute -> evictions), each step bound to its
  // enclosing slice ("bp":"e"); the timestamp sits mid-slice so the
  // binding is unambiguous.  Chains of one interval draw no arrow.
  std::map<std::uint64_t, std::vector<const trace::Interval*>> chains;
  for (const auto& iv : intervals) {
    if (iv.cat == trace::Category::Idle || !task_bound(iv)) continue;
    chains[iv.task].push_back(&iv);
  }
  for (auto& [task, chain] : chains) {
    if (chain.size() < 2) continue;
    std::sort(chain.begin(), chain.end(),
              [](const trace::Interval* a, const trace::Interval* b) {
                if (a->start != b->start) return a->start < b->start;
                return a->lane < b->lane;
              });
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const trace::Interval& iv = *chain[i];
      const char ph = i == 0 ? 's' : (i + 1 == chain.size() ? 'f' : 't');
      const double ts = (iv.start + iv.end) * 0.5 * 1e6;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"task %llu\",\"cat\":\"task_flow\","
                    "\"ph\":\"%c\",\"bp\":\"e\",\"id\":%llu,\"pid\":0,"
                    "\"tid\":%d,\"ts\":%.3f}",
                    static_cast<unsigned long long>(task), ph,
                    static_cast<unsigned long long>(task), iv.lane, ts);
      emit_event(os, first, buf);
    }
  }
  os << "\n]}\n";
}

} // namespace hmr::telemetry
