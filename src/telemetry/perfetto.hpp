#pragma once
// Chrome trace-event / Perfetto JSON export of a Tracer interval log.
//
// Writes the legacy trace-event JSON object ({"traceEvents":[...]})
// that ui.perfetto.dev and chrome://tracing both load:
//   * one complete ("X") duration event per interval, lane = tid,
//     with task id, tier pair and bytes as args;
//   * thread_name metadata naming worker lanes "PE n" and IO lanes
//     "IO n" (given the worker-lane count);
//   * flow events ("s"/"t"/"f") stitching each task's causal chain —
//     fetch(es) -> execute -> eviction/demotion cascade — so the UI
//     draws arrows across lanes.  Flow id = task id.
//
// Timestamps are microseconds, straight from the tracer's second
// clock (virtual seconds in hmr::sim, wall seconds in hmr::rt).

#include <cstdint>
#include <ostream>
#include <vector>

#include "trace/tracer.hpp"

namespace hmr::telemetry {

struct PerfettoOptions {
  /// Lanes < worker_lanes are named "PE n", lanes >= worker_lanes
  /// "IO n" (n relative to the cutoff); < 0 names every lane "lane n".
  std::int32_t worker_lanes = -1;
  /// Emit flow events linking each task's intervals across lanes.
  bool flows = true;
  /// Include Idle intervals (they dominate event count and carry no
  /// information the gaps don't).
  bool idle = false;
};

void write_perfetto(std::ostream& os,
                    const std::vector<trace::Interval>& intervals,
                    const PerfettoOptions& opt = {});

} // namespace hmr::telemetry
