#pragma once
// EventRing / LaneRings: the lock-free recording substrate under
// trace::Tracer.
//
// The paper's evaluation is read off per-PE timelines, which means the
// tracer sits directly on the scheduling hot path PR 2 de-serialized —
// a mutex-guarded vector there reintroduces exactly the serialization
// the sharded engine removed.  Instead each lane (worker PE or IO
// pseudo-PE) records into its own fixed-capacity ring:
//
//   * power-of-two capacity, one cache line per counter, so the fast
//     path is claim-slot / write / publish with no lock and no
//     allocation;
//   * bounded: when a ring is full between drains the event is counted
//     in a monotonic per-ring drop counter and discarded — recording
//     is wait-free in that case (one acquire load + one relaxed
//     fetch_add), never blocking the PE;
//   * drained by a single consumer (the Tracer, under its mutex) into
//     the classic Interval log, so every existing summary / render /
//     CSV view is unchanged.
//
// Although each lane is *almost* single-producer, the runtime does
// push to a worker's lane from two threads in places (e.g. the
// governor performs inline transfers on lane 0 from the user thread
// while PE 0's own thread is tracing compute), so the slot protocol is
// the bounded MPMC design of Vyukov's queue — per-slot sequence
// numbers, CAS to claim — rather than strict SPSC.  Uncontended it
// costs the same two atomics as SPSC.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace hmr::telemetry {

/// Bounded lock-free ring of trivially copyable events.
template <class T>
class EventRing {
public:
  explicit EventRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Events discarded because the ring was full.  Monotonic.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Publish one event.  Lock-free; wait-free when the ring is full
  /// (the event is dropped and counted).  Returns false on drop.
  bool try_push(const T& v) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.value = v;
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with the fresher slot.
      } else if (dif < 0) {
        // The slot one lap back has not been drained: ring full.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Move every published event into `out` (append).  Single consumer:
  /// callers must serialize drains externally.  Returns events moved.
  std::size_t drain(std::vector<T>& out) {
    std::size_t n = 0;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (static_cast<std::int64_t>(seq) -
              static_cast<std::int64_t>(pos + 1) <
          0) {
        break; // slot not yet published
      }
      out.push_back(s.value);
      // Free the slot for the producer one lap ahead.
      s.seq.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
      ++n;
    }
    tail_.store(pos, std::memory_order_relaxed);
    return n;
  }

private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

/// Lazily-created per-lane rings.  Lane creation is a one-time CAS on
/// the lane's pointer slot; lanes beyond kMaxLanes get nullptr and the
/// caller falls back to its serial path.
template <class T>
class LaneRings {
public:
  static constexpr std::int32_t kMaxLanes = 1024;

  explicit LaneRings(std::size_t ring_capacity) : cap_(ring_capacity) {
    for (auto& s : rings_) s.store(nullptr, std::memory_order_relaxed);
  }

  ~LaneRings() {
    for (auto& s : rings_) delete s.load(std::memory_order_relaxed);
  }

  LaneRings(const LaneRings&) = delete;
  LaneRings& operator=(const LaneRings&) = delete;

  /// The lane's ring, created on first use; nullptr when out of range.
  EventRing<T>* lane(std::int32_t lane) {
    if (lane < 0 || lane >= kMaxLanes) return nullptr;
    auto& slot = rings_[static_cast<std::size_t>(lane)];
    EventRing<T>* r = slot.load(std::memory_order_acquire);
    if (r != nullptr) return r;
    auto* fresh = new EventRing<T>(cap_);
    EventRing<T>* expected = nullptr;
    if (slot.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel)) {
      return fresh;
    }
    delete fresh; // another producer won the install race
    return expected;
  }

  /// The lane's ring if it exists (no creation); safe concurrently.
  EventRing<T>* peek(std::int32_t lane) const {
    if (lane < 0 || lane >= kMaxLanes) return nullptr;
    return rings_[static_cast<std::size_t>(lane)].load(
        std::memory_order_acquire);
  }

  /// Drain every lane into `out`.  Single consumer, like
  /// EventRing::drain.
  std::size_t drain_all(std::vector<T>& out) {
    std::size_t n = 0;
    for (std::int32_t l = 0; l < kMaxLanes; ++l) {
      if (EventRing<T>* r = peek(l)) n += r->drain(out);
    }
    return n;
  }

  /// Total events dropped across all lanes.  Monotonic.
  std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (std::int32_t l = 0; l < kMaxLanes; ++l) {
      if (const EventRing<T>* r = peek(l)) n += r->dropped();
    }
    return n;
  }

private:
  std::size_t cap_;
  std::array<std::atomic<EventRing<T>*>, kMaxLanes> rings_;
};

} // namespace hmr::telemetry
