#include "telemetry/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"

namespace hmr::telemetry {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// Write all of `s`, tolerating short writes; false on error.
bool write_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t n = ::write(fd, s.data() + off, s.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string pct_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_val(s[i + 1]), lo = hex_val(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

} // namespace

std::map<std::string, std::string> StatusServer::parse_query(
    const std::string& raw) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t amp = raw.find('&', pos);
    if (amp == std::string::npos) amp = raw.size();
    const std::string pair = raw.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) out[pct_decode(pair)] = "";
    } else {
      out[pct_decode(pair.substr(0, eq))] = pct_decode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return out;
}

StatusServer::~StatusServer() { stop(); }

void StatusServer::route(std::string path, Handler h) {
  HMR_CHECK_MSG(!running(), "route() after start()");
  routes_.emplace_back(std::move(path), std::move(h));
}

bool StatusServer::start(std::uint16_t port, std::string* err) {
  if (running()) return true;
  const auto fail = [&](const char* what) {
    if (err != nullptr) {
      *err = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void StatusServer::stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void StatusServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue; // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_client(fd);
    ::close(fd);
  }
}

void StatusServer::serve_client(int fd) {
  // Read until the end of the request head; diagnostics GETs have no
  // body.  Cap the head and bound the wait so a stuck client cannot
  // pin the accept thread.
  std::string head;
  char buf[2048];
  while (head.size() < 16 * 1024 &&
         head.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/2000) <= 0) return;
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP target SP version.
  const std::size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return;
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  Response resp;
  Request req;
  // HEAD runs the handler like GET but sends headers only (with the
  // body's Content-Length, per RFC 9110) — curl -I / load balancers.
  bool head_only = false;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = {400, "text/plain; charset=utf-8", "malformed request line\n"};
  } else if (line.substr(0, sp1) != "GET" &&
             line.substr(0, sp1) != "HEAD") {
    resp = {400, "text/plain; charset=utf-8",
            "only GET and HEAD are supported\n"};
  } else {
    head_only = line.substr(0, sp1) == "HEAD";
    const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t qm = target.find('?');
    req.path = qm == std::string::npos ? target : target.substr(0, qm);
    if (qm != std::string::npos) {
      req.query = parse_query(target.substr(qm + 1));
    }
    const Handler* handler = nullptr;
    for (const auto& [path, h] : routes_) {
      if (path == req.path) {
        handler = &h;
        break;
      }
    }
    if (handler != nullptr) {
      resp = (*handler)(req);
    } else {
      resp.status = 404;
      resp.body = "unknown path " + req.path + "; routes:\n";
      for (const auto& [path, h] : routes_) resp.body += "  " + path + "\n";
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    status_text(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += resp.body;
  write_all(fd, out);
}

} // namespace hmr::telemetry
