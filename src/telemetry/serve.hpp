#pragma once
// StatusServer: a tiny dependency-free HTTP/1.1 endpoint for live
// introspection of a running runtime.
//
// The telemetry stack so far is strictly post-mortem: rings are
// drained into CSV/Perfetto dumps and the metrics registry is read
// after the fact.  Related work argues for *live* feedback on
// heterogeneous-memory placement (arXiv:2110.02150 drives placement
// from online profiles; arXiv:2505.14294 tunes pool ratios while the
// application runs); the operational half of that is being able to
// curl a running job.  This server is deliberately minimal:
//
//   * plain POSIX sockets, one accept thread, loopback by default —
//     no TLS, no auth, no framework.  It serves diagnostics, not
//     traffic; binding beyond 127.0.0.1 is the caller's decision;
//   * GET only; handlers are registered per exact path and receive
//     the parsed query string (`/blocks?id=7`);
//   * requests are served sequentially on the accept thread.  A
//     handler runs runtime introspection (mutex + snapshot work, no
//     blocking I/O), so one slow client cannot wedge anything but its
//     own curl.
//
// The Runtime wires /metrics, /status, /blocks and /healthz
// (docs/OBSERVABILITY.md §7); the server itself is generic and
// testable with a plain client socket.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace hmr::telemetry {

class StatusServer {
public:
  struct Request {
    std::string path;
    std::map<std::string, std::string> query;
  };
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response(const Request&)>;

  StatusServer() = default;
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Register a handler for an exact path (no patterns).  Must be
  /// called before start().
  void route(std::string path, Handler h);

  /// Bind 127.0.0.1:port (0 = ephemeral, read back via port()) and
  /// start the accept thread.  Returns false with *err filled on any
  /// socket failure.  Idempotent once started.
  bool start(std::uint16_t port, std::string* err = nullptr);

  /// Stop the accept thread and close the socket.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after start(); the actual one when port 0 was
  /// requested).
  std::uint16_t port() const { return port_; }

  /// Percent-decode + split a raw query string ("a=1&b=x%2Fy").
  /// Exposed for tests.
  static std::map<std::string, std::string> parse_query(
      const std::string& raw);

private:
  void accept_loop();
  void serve_client(int fd);

  std::vector<std::pair<std::string, Handler>> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

} // namespace hmr::telemetry
