#include "telemetry/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace hmr::telemetry {

Watchdog::Watchdog(Config cfg, Hooks hooks)
    : cfg_(std::move(cfg)), hooks_(std::move(hooks)) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  std::lock_guard lk(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
  {
    std::lock_guard lk(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard lk(mu_);
  running_ = false;
}

std::string Watchdog::last_reason() const {
  std::lock_guard lk(mu_);
  return reason_;
}

void Watchdog::loop() {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    {
      std::unique_lock lk(mu_);
      if (cv_.wait_for(lk, cfg_.interval, [&] { return stop_; })) return;
    }
    if (hooks_.tick) hooks_.tick();
    evaluate(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count());
  }
}

void Watchdog::evaluate(double now_seconds) {
  const std::uint64_t progress = hooks_.progress ? hooks_.progress() : 0;
  const bool loaded = hooks_.under_load && hooks_.under_load();

  if (progress != last_progress_ || !loaded) {
    // Forward motion (or nothing outstanding): reset the window and
    // re-arm the trip for the next episode.
    last_progress_ = progress;
    stall_since_ = -1;
    fired_ = false;
    stalled_.store(false, std::memory_order_relaxed);
  } else {
    if (stall_since_ < 0) stall_since_ = now_seconds;
    if (!fired_ && now_seconds - stall_since_ >= cfg_.stall_seconds) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "no progress under load for %.2f s (progress counter "
                    "frozen at %llu with work outstanding)",
                    now_seconds - stall_since_,
                    static_cast<unsigned long long>(progress));
      trip(now_seconds, buf);
    }
  }

  // Rate anomalies: counter deltas per tick against the storm
  // thresholds.  The first tick only records baselines (no elapsed
  // window yet); a sustained storm reports once per episode, re-armed
  // when the rate falls back under the threshold.
  const double dt = last_eval_s_ >= 0 ? now_seconds - last_eval_s_ : 0;
  if (hooks_.trace_drops && cfg_.trace_drop_storm_per_s > 0) {
    const std::uint64_t drops = hooks_.trace_drops();
    if (storm_seen_baseline_ && dt > 0) {
      const double rate =
          static_cast<double>(drops - last_trace_drops_) / dt;
      if (rate > cfg_.trace_drop_storm_per_s) {
        if (!trace_storm_fired_) {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "trace-drop storm: %.0f events/s discarded "
                        "(threshold %.0f/s) — ring evidence is being lost",
                        rate, cfg_.trace_drop_storm_per_s);
          trace_storm_fired_ = true;
          alert(now_seconds, buf);
        }
      } else {
        trace_storm_fired_ = false;
      }
    }
    last_trace_drops_ = drops;
  }
  if (hooks_.remote_fetches && cfg_.remote_fetch_storm_per_s > 0) {
    const std::uint64_t rf = hooks_.remote_fetches();
    if (storm_seen_baseline_ && dt > 0) {
      const double rate =
          static_cast<double>(rf - last_remote_fetches_) / dt;
      if (rate > cfg_.remote_fetch_storm_per_s) {
        if (!remote_storm_fired_) {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "remote-fetch storm: %.0f promotions/s over the "
                        "network (threshold %.0f/s) — placement thrashing",
                        rate, cfg_.remote_fetch_storm_per_s);
          remote_storm_fired_ = true;
          alert(now_seconds, buf);
        }
      } else {
        remote_storm_fired_ = false;
      }
    }
    last_remote_fetches_ = rf;
  }
  storm_seen_baseline_ = true;
  last_eval_s_ = now_seconds;

  // Independent check: a single stuck fetch stalls its waiters long
  // before the global counters freeze.
  const double age = hooks_.fetch_age ? hooks_.fetch_age() : -1;
  if (!fired_ && age >= 0) {
    const double p99 = hooks_.fetch_p99 ? hooks_.fetch_p99() : 0;
    const double limit =
        std::max(cfg_.stall_seconds,
                 p99 > 0 ? cfg_.fetch_factor * p99 : cfg_.stall_seconds);
    if (age > limit) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "fetch in flight for %.2f s (limit %.2f s = max(stall "
                    "window, %.0fx observed p99))",
                    age, limit, cfg_.fetch_factor);
      trip(now_seconds, buf);
    }
  }
}

void Watchdog::trip(double now_seconds, const std::string& reason) {
  fired_ = true;
  stalled_.store(true, std::memory_order_relaxed);
  alert(now_seconds, reason);
}

// Report + escalate without latching the stall state: storm trips are
// anomalies (the runtime is making progress, too fast in the wrong
// direction), so /healthz must not turn 503 on them.
void Watchdog::alert(double now_seconds, const std::string& reason) {
  trips_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lk(mu_);
    reason_ = reason;
  }
  std::fprintf(stderr, "hmr: WATCHDOG at t=%.2f s: %s\n", now_seconds,
               reason.c_str());
  if (cfg_.escalation == Escalation::Warn) return;

  if (hooks_.dump) {
    if (cfg_.dump_path.empty()) {
      std::ostringstream os;
      hooks_.dump(os);
      std::fputs(os.str().c_str(), stderr);
    } else {
      std::ofstream f(cfg_.dump_path, std::ios::app);
      if (f) {
        f << "==== watchdog trip at t=" << now_seconds << " s: " << reason
          << " ====\n";
        hooks_.dump(f);
      } else {
        std::fprintf(stderr, "hmr: watchdog cannot open dump file %s\n",
                     cfg_.dump_path.c_str());
      }
    }
  }
  if (cfg_.escalation == Escalation::Abort) {
    std::fprintf(stderr, "hmr: watchdog escalation=abort\n");
    std::abort();
  }
}

} // namespace hmr::telemetry
