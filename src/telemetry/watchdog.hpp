#pragma once
// Watchdog: stall detection for the threaded runtime.
//
// The quiescence protocol makes a wedge silent: if a fetch is lost or
// the policy deadlocks, wait_idle() blocks forever with every thread
// parked on a condition variable — no CPU burn, no output, nothing to
// attach a profiler to.  The watchdog turns that into a diagnosis:
//
//   * the runtime's PE and IO loops stamp per-thread Heartbeats
//     (padded relaxed atomics: an iteration count and a timestamp) on
//     every wakeup, and retirement counters tick on every message /
//     migration completion;
//   * a monitor thread samples a caller-supplied progress counter.
//     Outstanding work with frozen progress for longer than
//     `stall_seconds` is a trip ("no progress under load"), as is an
//     in-flight fetch older than `fetch_factor` x the observed fetch
//     p99 ("fetch stuck");
//   * on trip it escalates per policy: Warn logs one line to stderr,
//     Dump also writes the owner's diagnostic bundle (flight recorder
//     + metrics snapshot + trace tail) to stderr or `dump_path`,
//     Abort dumps and calls abort() so CI gets a core.
//
// A trip re-arms only after progress resumes, so a persistent stall
// produces one report, not one per tick.  The watchdog never touches
// runtime internals directly — everything arrives through Hooks — so
// it is unit-testable with synthetic callbacks (tests/test_introspect).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace hmr::telemetry {

/// One thread's liveness stamp.  beat() is two relaxed stores on a
/// thread-private cache line — cheap enough for every loop iteration.
struct alignas(64) Heartbeat {
  std::atomic<std::uint64_t> beats{0};
  std::atomic<std::uint64_t> last_ns{0}; // steady-clock ns at last beat

  void beat(std::uint64_t now_ns) {
    beats.store(beats.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    last_ns.store(now_ns, std::memory_order_relaxed);
  }
};

class Watchdog {
public:
  enum class Escalation { Warn, Dump, Abort };

  struct Config {
    std::chrono::milliseconds interval{250};
    /// Outstanding work with no progress for this long trips.
    double stall_seconds = 2.0;
    /// An in-flight fetch older than this many times the observed
    /// fetch p99 trips (with a floor of stall_seconds, so a cold p99
    /// cannot make the check hair-triggered).
    double fetch_factor = 8.0;
    Escalation escalation = Escalation::Dump;
    /// Dump destination; empty = stderr.  Appended, not truncated.
    std::string dump_path;
    /// Rate-anomaly (storm) thresholds in events/second, measured as
    /// counter deltas between monitor ticks; 0 disables each check.
    /// A trace-drop storm means the trace rings are overrunning (the
    /// evidence for any later diagnosis is being discarded); a
    /// remote-fetch storm means the placement is thrashing blocks
    /// across the network (hmr_remote_* counters climbing faster than
    /// any sane working-set migration).
    double trace_drop_storm_per_s = 0;
    double remote_fetch_storm_per_s = 0;
  };

  /// Everything the monitor reads, supplied by the owner.  All
  /// callbacks must be thread-safe; they run on the monitor thread.
  struct Hooks {
    /// Is there outstanding work (messages or migrations)?
    std::function<bool()> under_load;
    /// Monotonic progress counter: retirements + engine events.
    std::function<std::uint64_t()> progress;
    /// Seconds since fetch-channel activity while fetches are in
    /// flight; < 0 = nothing in flight.
    std::function<double()> fetch_age;
    /// Observed fetch-latency p99 in seconds; <= 0 = unknown.
    std::function<double()> fetch_p99;
    /// Cumulative trace-ring drop count (storm check; may be empty).
    std::function<std::uint64_t()> trace_drops;
    /// Cumulative remote-tier fetch count (storm check; may be empty).
    std::function<std::uint64_t()> remote_fetches;
    /// Writes the diagnostic bundle (may be empty).
    std::function<void(std::ostream&)> dump;
    /// Called once per monitor interval regardless of state — the
    /// runtime refreshes the crash-dump bundle here.  Not invoked by
    /// evaluate(), so deterministic tests stay pure.
    std::function<void()> tick;
  };

  Watchdog(Config cfg, Hooks hooks);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start(); // idempotent
  void stop();  // idempotent; joins the monitor thread

  /// Total trips since construction.
  std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }
  /// True while the current stall episode persists (set on trip,
  /// cleared when progress resumes) — /healthz turns 503 on this.
  bool stalled() const { return stalled_.load(std::memory_order_relaxed); }
  /// One-line description of the last trip ("" = never tripped).
  std::string last_reason() const;

  /// One monitor evaluation against explicit inputs — the tick logic
  /// without the thread, for deterministic tests.
  void evaluate(double now_seconds);

private:
  void loop();
  void trip(double now_seconds, const std::string& reason);
  /// Report + escalate without latching stalled() (storm trips).
  void alert(double now_seconds, const std::string& reason);

  Config cfg_;
  Hooks hooks_;

  std::atomic<std::uint64_t> trips_{0};
  std::atomic<bool> stalled_{false};

  // Monitor-thread state (evaluate() is called from one thread).
  std::uint64_t last_progress_ = 0;
  double stall_since_ = -1; // first tick of the current frozen window
  bool fired_ = false;      // this episode already reported
  // Storm-check state: previous tick's counter values and timestamp
  // (rates are per-tick deltas), plus per-check episode latches so a
  // sustained storm reports once, not once per tick.
  double last_eval_s_ = -1;
  std::uint64_t last_trace_drops_ = 0;
  std::uint64_t last_remote_fetches_ = 0;
  bool storm_seen_baseline_ = false;
  bool trace_storm_fired_ = false;
  bool remote_storm_fired_ = false;

  mutable std::mutex mu_; // guards reason_ and the cv below
  std::string reason_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
};

} // namespace hmr::telemetry
