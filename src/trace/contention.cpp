#include "trace/contention.hpp"

namespace hmr::trace {

ContentionStats::ContentionStats(std::size_t shards)
    : slots_(shards == 0 ? 1 : shards) {}

ContentionStats::Totals ContentionStats::shard_totals(
    std::size_t shard) const {
  const Slot& s = slots_[shard];
  Totals t;
  t.acquisitions = s.acquisitions.load(std::memory_order_relaxed);
  t.contended = s.contended.load(std::memory_order_relaxed);
  t.wait_s = static_cast<double>(s.wait_ns.load(std::memory_order_relaxed)) *
             1e-9;
  return t;
}

ContentionStats::Totals ContentionStats::totals() const {
  Totals t;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Totals s = shard_totals(i);
    t.acquisitions += s.acquisitions;
    t.contended += s.contended;
    t.wait_s += s.wait_s;
  }
  return t;
}

void ContentionStats::reset() {
  for (auto& s : slots_) {
    s.acquisitions.store(0, std::memory_order_relaxed);
    s.contended.store(0, std::memory_order_relaxed);
    s.wait_ns.store(0, std::memory_order_relaxed);
  }
}

} // namespace hmr::trace
