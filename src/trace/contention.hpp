#pragma once
// ContentionStats: per-shard lock acquisition / lock-wait counters.
//
// The threaded runtime wants to report how much of its wall time is
// spent waiting on scheduler locks (the global engine mutex, or each
// shard of the sharded engine).  Each shard gets its own cache line of
// atomic counters so the instrumentation itself never contends; the
// fast path (uncontended try_lock) costs one relaxed fetch_add.
//
// bench/rt_contention reads these to print the lock-wait fraction of
// the global-lock vs sharded configurations.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmr::trace {

class ContentionStats {
public:
  struct Totals {
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0; // acquisitions that had to wait
    double wait_s = 0;           // total time spent blocked
  };

  explicit ContentionStats(std::size_t shards = 1);

  std::size_t shards() const { return slots_.size(); }

  void count_uncontended(std::size_t shard) {
    auto& s = slots_[shard];
    s.acquisitions.fetch_add(1, std::memory_order_relaxed);
  }

  void count_wait(std::size_t shard, std::uint64_t wait_ns) {
    auto& s = slots_[shard];
    s.acquisitions.fetch_add(1, std::memory_order_relaxed);
    s.contended.fetch_add(1, std::memory_order_relaxed);
    s.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  }

  Totals shard_totals(std::size_t shard) const;
  Totals totals() const; // summed over all shards

  void reset();

private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> acquisitions{0};
    std::atomic<std::uint64_t> contended{0};
    std::atomic<std::uint64_t> wait_ns{0};
  };

  std::vector<Slot> slots_;
};

/// Lock `mu`, charging any wait to `cs` shard `shard` (cs may be null).
template <class Mutex>
inline void lock_counted(Mutex& mu, ContentionStats* cs, std::size_t shard) {
  if (cs == nullptr) {
    mu.lock();
    return;
  }
  if (mu.try_lock()) {
    cs->count_uncontended(shard);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  mu.lock();
  const auto dt = std::chrono::steady_clock::now() - t0;
  cs->count_wait(
      shard, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                     .count()));
}

} // namespace hmr::trace
