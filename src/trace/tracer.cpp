#include "trace/tracer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace hmr::trace {

namespace {

bool env_forces_serial() {
  const char* v = std::getenv("HMR_TRACE_SERIAL");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

} // namespace

Tracer::Tracer(bool enabled, const Options& opt)
    : enabled_(enabled),
      serial_(opt.serial || env_forces_serial()),
      rings_(opt.ring_capacity) {}

const char* category_name(Category c) {
  switch (c) {
    case Category::Compute: return "compute";
    case Category::Prefetch: return "prefetch";
    case Category::Evict: return "evict";
    case Category::Wait: return "wait";
    case Category::Overhead: return "overhead";
    case Category::Idle: return "idle";
  }
  return "?";
}

char category_glyph(Category c) {
  switch (c) {
    case Category::Compute: return 'C';
    case Category::Prefetch: return 'P';
    case Category::Evict: return 'E';
    case Category::Wait: return 'w';
    case Category::Overhead: return 'o';
    case Category::Idle: return '.';
  }
  return '?';
}

TraceSummary::TierPairTraffic TraceSummary::migration_between(
    std::uint32_t src, std::uint32_t dst) const {
  for (const auto& m : migrations) {
    if (m.src_tier == src && m.dst_tier == dst) return m;
  }
  TierPairTraffic zero;
  zero.src_tier = src;
  zero.dst_tier = dst;
  return zero;
}

double TraceSummary::overhead_fraction() const {
  double all = 0;
  for (double t : total) all += t;
  if (all <= 0) return 0;
  return (all - total_of(Category::Compute)) / all;
}

void Tracer::push(const Interval& iv) {
  if (!serial_) {
    if (telemetry::EventRing<Interval>* ring = rings_.lane(iv.lane)) {
      ring->try_push(iv); // full ring: drop, counted in the ring
      return;
    }
    // Lane id beyond the ring table: fall through to the serial path.
  }
  std::lock_guard lock(mu_);
  log_.push_back(iv);
}

void Tracer::drain_locked() const {
  rings_.drain_all(log_);
}

void Tracer::record(std::int32_t lane, Category cat, double start,
                    double end, std::uint64_t task) {
  if (!enabled_) return;
  HMR_CHECK_MSG(end >= start, "interval ends before it starts");
  if (end == start) return; // zero-width intervals carry no information
  push({lane, cat, start, end, task, 0, 0, 0});
}

void Tracer::record_migration(std::int32_t lane, Category cat, double start,
                              double end, std::uint64_t task,
                              std::uint32_t src_tier, std::uint32_t dst_tier,
                              std::uint64_t bytes) {
  if (!enabled_) return;
  HMR_CHECK_MSG(end >= start, "interval ends before it starts");
  if (end == start) return; // zero-width intervals carry no information
  push({lane, cat, start, end, task, src_tier, dst_tier, bytes});
}

namespace {

using PairKey = std::pair<std::uint32_t, std::uint32_t>;
using PairMap = std::map<PairKey, TraceSummary::TierPairTraffic>;

void add_pair_traffic(PairMap& acc, const Interval& iv, double seconds,
                      double byte_fraction) {
  auto& t = acc[{iv.src_tier, iv.dst_tier}];
  t.src_tier = iv.src_tier;
  t.dst_tier = iv.dst_tier;
  t.bytes += static_cast<std::uint64_t>(
      static_cast<double>(iv.bytes) * byte_fraction + 0.5);
  t.count += 1;
  t.seconds += seconds;
}

std::vector<TraceSummary::TierPairTraffic> pair_vector(const PairMap& acc) {
  std::vector<TraceSummary::TierPairTraffic> out;
  out.reserve(acc.size());
  for (const auto& [key, t] : acc) out.push_back(t);
  return out;
}

} // namespace

std::vector<Interval> Tracer::intervals() const {
  std::vector<Interval> out;
  {
    std::lock_guard lock(mu_);
    drain_locked();
    out = log_;
  }
  std::sort(out.begin(), out.end(), [](const Interval& a, const Interval& b) {
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.start < b.start;
  });
  return out;
}

TraceSummary Tracer::summarize(std::int32_t worker_lanes) const {
  TraceSummary s;
  std::lock_guard lock(mu_);
  drain_locked();
  PairMap pairs;
  double lo = 0, hi = 0;
  bool first = true;
  for (const auto& iv : log_) {
    if (worker_lanes >= 0 && iv.lane >= worker_lanes) continue;
    if (first) {
      lo = iv.start;
      hi = iv.end;
      first = false;
    } else {
      lo = std::min(lo, iv.start);
      hi = std::max(hi, iv.end);
    }
    s.lanes = std::max(s.lanes, iv.lane + 1);
    s.total[static_cast<int>(iv.cat)] += iv.end - iv.start;
    s.count[static_cast<int>(iv.cat)] += 1;
    if (iv.bytes > 0) add_pair_traffic(pairs, iv, iv.end - iv.start, 1.0);
  }
  s.span = first ? 0 : hi - lo;
  s.migrations = pair_vector(pairs);
  s.dropped = rings_.dropped();
  s.ring_fallbacks = copy_fallbacks();
  return s;
}

TraceSummary Tracer::summarize(std::int32_t worker_lanes, double t0,
                               double t1) const {
  HMR_CHECK(t1 >= t0);
  TraceSummary s;
  std::lock_guard lock(mu_);
  drain_locked();
  PairMap pairs;
  double lo = 0, hi = 0;
  bool first = true;
  for (const auto& iv : log_) {
    if (worker_lanes >= 0 && iv.lane >= worker_lanes) continue;
    const double start = std::max(iv.start, t0);
    const double end = std::min(iv.end, t1);
    if (end <= start) continue;
    if (first) {
      lo = start;
      hi = end;
      first = false;
    } else {
      lo = std::min(lo, start);
      hi = std::max(hi, end);
    }
    s.lanes = std::max(s.lanes, iv.lane + 1);
    s.total[static_cast<int>(iv.cat)] += end - start;
    s.count[static_cast<int>(iv.cat)] += 1;
    if (iv.bytes > 0) {
      add_pair_traffic(pairs, iv, end - start,
                       (end - start) / (iv.end - iv.start));
    }
  }
  s.span = first ? 0 : hi - lo;
  s.migrations = pair_vector(pairs);
  s.dropped = rings_.dropped();
  s.ring_fallbacks = copy_fallbacks();
  return s;
}

void Tracer::fill_idle(double t0, double t1) {
  if (!enabled_) return;
  HMR_CHECK(t1 >= t0);
  std::lock_guard lock(mu_);
  drain_locked();
  // Collect per-lane sorted busy intervals, then append gap fillers.
  std::map<std::int32_t, std::vector<std::pair<double, double>>> busy;
  for (const auto& iv : log_) {
    if (iv.cat == Category::Idle) continue;
    busy[iv.lane].emplace_back(iv.start, iv.end);
  }
  std::vector<Interval> fillers;
  for (auto& [lane, spans] : busy) {
    std::sort(spans.begin(), spans.end());
    double cursor = t0;
    for (const auto& [s, e] : spans) {
      if (s > cursor) {
        fillers.push_back({lane, Category::Idle, cursor, s, 0, 0, 0, 0});
      }
      cursor = std::max(cursor, e);
    }
    if (cursor < t1) {
      fillers.push_back({lane, Category::Idle, cursor, t1, 0, 0, 0, 0});
    }
  }
  for (auto& f : fillers) {
    if (f.end > f.start) log_.push_back(f);
  }
}

void Tracer::write_csv(std::ostream& os) const {
  hmr::CsvWriter csv(os);
  csv.header({"lane", "category", "start", "end", "task", "src_tier",
              "dst_tier", "bytes"});
  for (const auto& iv : intervals()) {
    csv.field(static_cast<std::int64_t>(iv.lane))
        .field(std::string_view(category_name(iv.cat)))
        .field(iv.start)
        .field(iv.end)
        .field(static_cast<std::uint64_t>(iv.task))
        .field(static_cast<std::uint64_t>(iv.src_tier))
        .field(static_cast<std::uint64_t>(iv.dst_tier))
        .field(iv.bytes);
    csv.end_row();
  }
  // Trailer comment so offline consumers (tools/hmr_trace) can see
  // drops the rows themselves cannot show.
  os << "# dropped=" << dropped() << "\n";
  os << "# ring_fallbacks=" << copy_fallbacks() << "\n";
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const auto& iv : intervals()) {
    if (!first) os << ",";
    first = false;
    char buf[256];
    // Times in microseconds, as the trace-event format expects.
    std::snprintf(buf, sizeof buf,
                  "\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"task\":%llu}}",
                  category_name(iv.cat), iv.lane, iv.start * 1e6,
                  (iv.end - iv.start) * 1e6,
                  static_cast<unsigned long long>(iv.task));
    os << buf;
  }
  os << "\n]\n";
}

void Tracer::ascii_timeline(std::ostream& os, int width, double t0,
                            double t1) const {
  HMR_CHECK(width > 0 && t1 > t0);
  const auto ivs = intervals();
  std::int32_t max_lane = -1;
  for (const auto& iv : ivs) max_lane = std::max(max_lane, iv.lane);
  if (max_lane < 0) return;
  const double bucket = (t1 - t0) / width;

  for (std::int32_t lane = 0; lane <= max_lane; ++lane) {
    // share[bucket][category] = seconds of that category in the bucket
    std::vector<std::array<double, 6>> share(
        static_cast<std::size_t>(width), std::array<double, 6>{});
    bool lane_has_data = false;
    for (const auto& iv : ivs) {
      if (iv.lane != lane) continue;
      lane_has_data = true;
      const double s = std::max(iv.start, t0);
      const double e = std::min(iv.end, t1);
      if (e <= s) continue;
      int b0 = static_cast<int>((s - t0) / bucket);
      int b1 = static_cast<int>((e - t0) / bucket);
      b0 = std::clamp(b0, 0, width - 1);
      b1 = std::clamp(b1, 0, width - 1);
      for (int b = b0; b <= b1; ++b) {
        const double bs = t0 + b * bucket;
        const double be = bs + bucket;
        const double overlap = std::min(e, be) - std::max(s, bs);
        if (overlap > 0) {
          share[static_cast<std::size_t>(b)][static_cast<int>(iv.cat)] +=
              overlap;
        }
      }
    }
    if (!lane_has_data) continue;
    os << "lane " << lane << (lane < 10 ? "  |" : " |");
    for (int b = 0; b < width; ++b) {
      int best = static_cast<int>(Category::Idle);
      double best_v = 0;
      for (int c = 0; c < 6; ++c) {
        if (share[static_cast<std::size_t>(b)][c] > best_v) {
          best_v = share[static_cast<std::size_t>(b)][c];
          best = c;
        }
      }
      os << category_glyph(static_cast<Category>(best));
    }
    os << "|\n";
  }
  os << "legend: C=compute P=prefetch E=evict w=wait o=overhead .=idle\n";
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  drain_locked(); // frees the ring slots; dropped() stays monotonic
  log_.clear();
}

} // namespace hmr::trace
