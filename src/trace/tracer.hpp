#pragma once
// Tracer: a Projections-like per-PE interval log.
//
// The paper reads its scheduling overheads off Projections timelines
// (Figs 5-6): red = wait caused by scheduling, prefetch, eviction and
// lock delays; colored bars = entry-method execution.  We record the
// same information as typed intervals per PE and reproduce the figures
// as (a) aggregate category summaries (wait fraction, fetch/evict time)
// and (b) an ASCII timeline render.
//
// PE ids: worker PEs are 0..num_pes-1; IO agents may be traced as
// pseudo-PEs at num_pes..2*num_pes-1 by the executors.
//
// Recording goes through lock-free per-lane rings
// (telemetry::EventRing) so the hot path never takes a mutex; every
// reader (intervals, summaries, renders) drains the rings into the
// interval log first, under the tracer's single consumer mutex.  The
// old mutex + push_back path survives only as the Options::serial /
// HMR_TRACE_SERIAL=1 fallback.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/ring.hpp"
#include "util/stats.hpp"

namespace hmr::trace {

enum class Category : std::uint8_t {
  Compute,   // entry-method execution (the useful work)
  Prefetch,  // data fetch slow->fast charged to this lane
  Evict,     // data writeback fast->slow charged to this lane
  Wait,      // task had arrived but its lane sat without useful work
  Overhead,  // scheduling / queue and lock manipulation
  Idle,      // no work available
};

const char* category_name(Category c);
char category_glyph(Category c);

struct Interval {
  std::int32_t lane = 0; // PE or pseudo-PE
  Category cat = Category::Idle;
  double start = 0;
  double end = 0;
  std::uint64_t task = 0; // 0 when not task-bound
  // Migration intervals (record_migration) also carry the tier pair
  // the bytes moved between; bytes == 0 marks a non-migration interval.
  std::uint32_t src_tier = 0;
  std::uint32_t dst_tier = 0;
  std::uint64_t bytes = 0;
};

/// Aggregated view of a trace.
struct TraceSummary {
  double span = 0; // max end - min start over all intervals
  int lanes = 0;
  // Per-category totals in lane-seconds.
  double total[6] = {0, 0, 0, 0, 0, 0};
  std::uint64_t count[6] = {0, 0, 0, 0, 0, 0};
  /// Ring-full drops at the time the summary was cut.  Nonzero means
  /// the totals above undercount: that many events never made it into
  /// the log at all (lane attribution of the loss is unknown).
  std::uint64_t dropped = 0;
  /// ChunkRing full-ring fallbacks noted on the tracer (see
  /// Tracer::note_copy_fallbacks).  Nonzero means some large copies ran
  /// un-assisted — single-thread bandwidth where cooperation was
  /// expected.
  std::uint64_t ring_fallbacks = 0;

  /// Migration traffic between one ordered tier pair (src -> dst),
  /// summed over every migration interval that carried bytes.
  struct TierPairTraffic {
    std::uint32_t src_tier = 0;
    std::uint32_t dst_tier = 0;
    std::uint64_t bytes = 0;
    std::uint64_t count = 0;
    double seconds = 0; // lane-seconds spent on this pair's copies
  };
  /// Per-tier-pair migration traffic, sorted by (src, dst).  Windowed
  /// summaries prorate bytes by the clipped fraction of each interval
  /// (the fluid-flow approximation the simulator uses anyway).
  std::vector<TierPairTraffic> migrations;

  double total_of(Category c) const {
    return total[static_cast<int>(c)];
  }
  std::uint64_t count_of(Category c) const {
    return count[static_cast<int>(c)];
  }
  /// Traffic for one pair; zeros when the pair never moved bytes.
  TierPairTraffic migration_between(std::uint32_t src,
                                    std::uint32_t dst) const;
  /// Fraction of total lane-time that is not Compute (the "red" of
  /// Figs 5-6), over worker lanes only if workers > 0 was passed.
  double overhead_fraction() const;
};

class Tracer {
public:
  struct Options {
    /// Per-lane ring capacity in events, rounded up to a power of two.
    /// A full ring drops events (counted in dropped()) until the next
    /// drain; any reader drains, so size for the longest stretch of
    /// recording between reads.
    std::size_t ring_capacity = 1 << 14;
    /// Deprecated serial path: record under the global mutex into the
    /// log directly, exactly the pre-ring behaviour.  Also forced by
    /// setting HMR_TRACE_SERIAL=1 in the environment (kill switch if
    /// the lock-free path ever misbehaves on an exotic platform).
    bool serial = false;
  };

  explicit Tracer(bool enabled = true) : Tracer(enabled, Options{}) {}
  Tracer(bool enabled, const Options& opt);

  bool enabled() const { return enabled_; }

  /// Events discarded because a lane ring was full between drains.
  /// Monotonic across clear().
  std::uint64_t dropped() const { return rings_.dropped(); }

  /// Executors note the ChunkRing's cumulative full-ring fallback count
  /// here (at quiescence), so summaries and CSV dumps carry the "some
  /// copies degraded to un-assisted" warning alongside the data.
  void note_copy_fallbacks(std::uint64_t n) {
    copy_fallbacks_.store(n, std::memory_order_relaxed);
  }
  std::uint64_t copy_fallbacks() const {
    return copy_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Record one interval.  Thread-safe.  end >= start required.
  void record(std::int32_t lane, Category cat, double start, double end,
              std::uint64_t task = 0);

  /// Record one migration interval (Prefetch/Evict) with the tier pair
  /// the bytes moved between.  Thread-safe.
  void record_migration(std::int32_t lane, Category cat, double start,
                        double end, std::uint64_t task,
                        std::uint32_t src_tier, std::uint32_t dst_tier,
                        std::uint64_t bytes);

  /// All intervals, ordered by (lane, start).  Takes a snapshot.
  std::vector<Interval> intervals() const;

  /// Aggregate totals.  `worker_lanes` restricts the summary to lanes
  /// < worker_lanes (< 0 means all lanes).
  TraceSummary summarize(std::int32_t worker_lanes = -1) const;

  /// Windowed summary over [t0, t1): intervals are clipped to the
  /// window, so per-phase summaries can be cut from one running trace
  /// (the adaptive governor's per-phase wait fraction comes from this).
  TraceSummary summarize(std::int32_t worker_lanes, double t0,
                         double t1) const;

  /// Idle time is usually implicit (gaps between intervals).  This
  /// fills each lane's gaps within [t0, t1] with explicit Idle
  /// intervals, which makes summaries account for the full span.
  void fill_idle(double t0, double t1);

  /// CSV dump: lane,category,start,end,task,src_tier,dst_tier,bytes
  /// (tier columns are meaningful on rows with bytes > 0).
  void write_csv(std::ostream& os) const;

  /// Chrome trace-event JSON (open in chrome://tracing or Perfetto):
  /// one complete ("X") event per interval, lanes as tids.
  void write_chrome_trace(std::ostream& os) const;

  /// ASCII timeline: one row per lane, `width` character buckets over
  /// [t0, t1]; each bucket shows the glyph of the category occupying
  /// the largest share of the bucket.
  void ascii_timeline(std::ostream& os, int width, double t0,
                      double t1) const;

  void clear();

private:
  void push(const Interval& iv);
  /// Move ring contents into log_; requires mu_ (single consumer).
  void drain_locked() const;

  bool enabled_;
  bool serial_;
  std::atomic<std::uint64_t> copy_fallbacks_{0};
  mutable telemetry::LaneRings<Interval> rings_;
  mutable std::mutex mu_;
  mutable std::vector<Interval> log_;
};

} // namespace hmr::trace
