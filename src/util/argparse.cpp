#include "util/argparse.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace hmr {

void ArgParser::add_flag(std::string name, std::string help, bool* value) {
  HMR_CHECK(value != nullptr && find(name) == nullptr);
  flags_.push_back({std::move(name), std::move(help), Kind::Bool, value});
}

void ArgParser::add_flag(std::string name, std::string help,
                         std::int64_t* value) {
  HMR_CHECK(value != nullptr && find(name) == nullptr);
  flags_.push_back({std::move(name), std::move(help), Kind::Int, value});
}

void ArgParser::add_flag(std::string name, std::string help,
                         std::uint64_t* value) {
  HMR_CHECK(value != nullptr && find(name) == nullptr);
  flags_.push_back({std::move(name), std::move(help), Kind::Uint, value});
}

void ArgParser::add_flag(std::string name, std::string help, double* value) {
  HMR_CHECK(value != nullptr && find(name) == nullptr);
  flags_.push_back({std::move(name), std::move(help), Kind::Double, value});
}

void ArgParser::add_flag(std::string name, std::string help,
                         std::string* value) {
  HMR_CHECK(value != nullptr && find(name) == nullptr);
  flags_.push_back({std::move(name), std::move(help), Kind::String, value});
}

const ArgParser::Flag* ArgParser::find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool ArgParser::assign(const Flag& f, const std::string& value) const {
  errno = 0;
  char* end = nullptr;
  switch (f.kind) {
    case Kind::Bool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(f.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(f.target) = false;
      } else {
        return false;
      }
      return true;
    }
    case Kind::Int: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (errno || end == value.c_str() || *end) return false;
      *static_cast<std::int64_t*>(f.target) = v;
      return true;
    }
    case Kind::Uint: {
      if (!value.empty() && value[0] == '-') return false;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (errno || end == value.c_str() || *end) return false;
      *static_cast<std::uint64_t*>(f.target) = v;
      return true;
    }
    case Kind::Double: {
      const double v = std::strtod(value.c_str(), &end);
      if (errno || end == value.c_str() || *end) return false;
      *static_cast<double*>(f.target) = v;
      return true;
    }
    case Kind::String:
      *static_cast<std::string*>(f.target) = value;
      return true;
  }
  return false;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), arg.c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    const Flag* f = find(name);
    if (!f) {
      std::fprintf(stderr, "%s: unknown flag '--%s'\n", program_.c_str(),
                   name.c_str());
      return false;
    }
    if (!have_value) {
      if (f->kind == Kind::Bool) {
        value = "true"; // bare boolean flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s: flag '--%s' needs a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
    }
    if (!assign(*f, value)) {
      std::fprintf(stderr, "%s: bad value '%s' for flag '--%s'\n",
                   program_.c_str(), value.c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name;
    switch (f.kind) {
      case Kind::Bool: break;
      case Kind::Int: os << " <int>"; break;
      case Kind::Uint: os << " <uint>"; break;
      case Kind::Double: os << " <float>"; break;
      case Kind::String: os << " <string>"; break;
    }
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

} // namespace hmr
