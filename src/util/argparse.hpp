#pragma once
// Tiny command-line flag parser for the examples and figure benches.
//
// Supports `--name value`, `--name=value` and boolean `--name`.
// Unknown flags are an error so typos surface immediately; `--help`
// prints registered flags and exits(0).

#include <cstdint>
#include <string>
#include <vector>

namespace hmr {

class ArgParser {
public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register flags.  The pointee holds the default and receives the
  /// parsed value; it must outlive parse().
  void add_flag(std::string name, std::string help, bool* value);
  void add_flag(std::string name, std::string help, std::int64_t* value);
  void add_flag(std::string name, std::string help, std::uint64_t* value);
  void add_flag(std::string name, std::string help, double* value);
  void add_flag(std::string name, std::string help, std::string* value);

  /// Parse argv.  On `--help` prints usage and calls std::exit(0).
  /// Returns false (after printing the problem) on malformed input.
  bool parse(int argc, const char* const* argv);

  std::string usage() const;

private:
  enum class Kind { Bool, Int, Uint, Double, String };
  struct Flag {
    std::string name;
    std::string help;
    Kind kind;
    void* target;
  };

  const Flag* find(const std::string& name) const;
  bool assign(const Flag& f, const std::string& value) const;

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
};

} // namespace hmr
