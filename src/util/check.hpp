#pragma once
// Lightweight runtime checking macros.
//
// HMR_CHECK is always on (used for API-contract violations: wrong tier
// id, double free, refcount underflow...).  HMR_DCHECK compiles away in
// release builds and guards internal invariants on hot paths.

#include <cstdio>
#include <cstdlib>

namespace hmr::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "hmr: CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? ": " : "", msg);
  std::abort();
}

} // namespace hmr::detail

#define HMR_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::hmr::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define HMR_CHECK_MSG(expr, msg)                                             \
  do {                                                                       \
    if (!(expr)) ::hmr::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define HMR_DCHECK(expr) ((void)0)
#else
#define HMR_DCHECK(expr) HMR_CHECK(expr)
#endif
