#include "util/csv.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace hmr {

std::string csv_escape(std::string_view v) {
  const bool needs_quote =
      v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(v);
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (char c : v) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  HMR_CHECK_MSG(n_columns_ == 0, "CSV header written twice");
  HMR_CHECK(!columns.empty());
  n_columns_ = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(columns[i]);
  }
  *out_ << '\n';
}

void CsvWriter::sep() {
  if (fields_in_row_) *out_ << ',';
  ++fields_in_row_;
}

CsvWriter& CsvWriter::field(std::string_view v) {
  sep();
  *out_ << csv_escape(v);
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  sep();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  *out_ << buf;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  sep();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  sep();
  *out_ << v;
  return *this;
}

void CsvWriter::end_row() {
  if (n_columns_ != 0) {
    HMR_CHECK_MSG(fields_in_row_ == n_columns_,
                  "CSV row width differs from header");
  }
  *out_ << '\n';
  fields_in_row_ = 0;
}

} // namespace hmr
