#pragma once
// Minimal CSV emitter used by the figure benches so results can be
// re-plotted.  Values are escaped per RFC 4180 when needed.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hmr {

class CsvWriter {
public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Emit the header row.  Must be called before any data row.
  void header(const std::vector<std::string>& columns);

  CsvWriter& field(std::string_view v);
  CsvWriter& field(double v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }

  /// Terminate the current row.  Checks the field count matches the
  /// header (if one was written).
  void end_row();

private:
  void sep();

  std::ostream* out_;
  std::size_t n_columns_ = 0;
  std::size_t fields_in_row_ = 0;
};

/// Escape a single CSV value (quotes values containing , " or newline).
std::string csv_escape(std::string_view v);

} // namespace hmr
