#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace hmr::json {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
public:
  Parser(const std::string& text, std::string* err)
      : s_(text), err_(err) {}

  bool run(Value& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing content");
    return true;
  }

private:
  bool fail(const char* what) {
    if (err_) {
      *err_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (s_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return fail("dangling escape");
        const char e = s_[++pos_];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return fail("short \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_ + 1 + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (no surrogate pairing —
            // the emitters here never produce astral characters).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        ++pos_;
      } else {
        out.push_back(c);
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    out.number = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = Value::Kind::Number;
    return true;
  }

  bool value(Value& out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': {
        ++pos_;
        out.kind = Value::Kind::Object;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!string(key)) return false;
          skip_ws();
          if (pos_ >= s_.size() || s_[pos_] != ':') {
            return fail("expected ':'");
          }
          ++pos_;
          skip_ws();
          Value v;
          if (!value(v)) return false;
          out.obj.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (pos_ >= s_.size()) return fail("unterminated object");
          if (s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (s_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        out.kind = Value::Kind::Array;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          Value v;
          if (!value(v)) return false;
          out.arr.push_back(std::move(v));
          skip_ws();
          if (pos_ >= s_.size()) return fail("unterminated array");
          if (s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (s_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.kind = Value::Kind::String;
        return string(out.str);
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.kind = Value::Kind::Null;
        return literal("null", 4);
      default:
        return number(out);
    }
  }

  const std::string& s_;
  std::string* err_;
  std::size_t pos_ = 0;
};

} // namespace

bool parse(const std::string& text, Value& out, std::string* err) {
  return Parser(text, err).run(out);
}

} // namespace hmr::json
