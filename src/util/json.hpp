#pragma once
// Minimal JSON reader for the offline tools (hmr_top, hmr_trace).
//
// The runtime's HTTP routes emit machine-oriented JSON; this parses it
// back into a small DOM so the CLI tools need no external dependency.
// Scope is deliberately narrow: UTF-8 passthrough (no \uXXXX surrogate
// pairing beyond Basic Latin), numbers as double, objects keep
// insertion order.  Not a streaming parser — bodies here are a few
// hundred KB at most.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace hmr::json {

class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Typed accessors with fallbacks (wrong kind -> fallback).
  double num_or(double fallback) const {
    return kind == Kind::Number ? number : fallback;
  }
  bool bool_or(bool fallback) const {
    return kind == Kind::Bool ? boolean : fallback;
  }
  const std::string& str_or(const std::string& fallback) const {
    return kind == Kind::String ? str : fallback;
  }

  /// Chained member access: `v.get("governor", "strategy")` walks the
  /// path, nullptr as soon as a hop is missing.
  template <typename... Keys>
  const Value* get(const std::string& key, const Keys&... rest) const {
    const Value* v = find(key);
    if constexpr (sizeof...(rest) == 0) {
      return v;
    } else {
      return v ? v->get(rest...) : nullptr;
    }
  }
};

/// Parse `text` into `out`.  On failure returns false and, when `err`
/// is non-null, describes the first problem with its byte offset.
bool parse(const std::string& text, Value& out, std::string* err = nullptr);

} // namespace hmr::json
