#pragma once
// Deterministic pseudo-random number generation for workloads and tests.
//
// hmr never uses std::random_device or global RNG state: every workload
// takes an explicit seed so that simulations and property tests are
// exactly reproducible.  The generator is xoshiro256**, which is fast,
// has a 256-bit state, and passes BigCrush.

#include <cstdint>

namespace hmr {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      si = x ^ (x >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation (biased by at most
    // 2^-64 * n, negligible for workload generation).
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

} // namespace hmr
