#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hmr {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel variance combination.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  HMR_CHECK_MSG(!samples.empty(), "percentile of empty sample set");
  HMR_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

} // namespace hmr
