#pragma once
// Streaming and batch statistics used by the tracer and the benches.

#include <cstddef>
#include <vector>

namespace hmr {

/// Welford one-pass accumulator: mean / variance / min / max without
/// storing samples.  Numerically stable; merging two accumulators is
/// supported so per-PE stats can be combined node-wide.
class RunningStats {
public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const; // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch percentile over a copy of the samples (nearest-rank method).
/// q in [0, 1]; q = 0.5 is the median.
double percentile(std::vector<double> samples, double q);

} // namespace hmr
