#include "util/table.hpp"

#include <cstdarg>
#include <cstdio>

#include "util/check.hpp"

namespace hmr {

std::string strfmt(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  HMR_CHECK(n >= 0);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

void TextTable::add_row(std::vector<std::string> cells) {
  HMR_CHECK_MSG(cells.size() == columns_.size(),
                "table row width differs from header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

} // namespace hmr
