#pragma once
// Fixed-width text table printer for bench output: every figure bench
// prints the paper's rows/series through this so output is uniform.

#include <ostream>
#include <string>
#include <vector>

namespace hmr {

class TextTable {
public:
  explicit TextTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Append a row; must have exactly as many cells as columns.
  void add_row(std::vector<std::string> cells);

  /// Render with padded columns, a header rule, and 2-space gutters.
  void print(std::ostream& os) const;

private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string (used for table cells).
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace hmr
