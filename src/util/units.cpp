#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace hmr {

std::string fmt_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> suffix = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < suffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[48];
  if (i == 0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", v, suffix[i]);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, suffix[i]);
  }
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[48];
  const double as = std::fabs(s);
  if (as >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  } else if (as >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", s * 1e3);
  } else if (as >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", s * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", s * 1e9);
  }
  return buf;
}

std::string fmt_bandwidth(double bytes_per_s) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f GB/s", bytes_per_s / GB);
  return buf;
}

} // namespace hmr
