#pragma once
// Byte-size and time unit helpers shared across hmr.
//
// All sizes in hmr are plain std::uint64_t byte counts; all simulated
// durations are double seconds.  These helpers keep call sites readable
// (e.g. `16 * GiB`, `fmt_bytes(sz)`).

#include <cstdint>
#include <string>

namespace hmr {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

// Decimal units used for bandwidths (GB/s means 1e9 bytes per second,
// matching how STREAM and the paper report bandwidth).
inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

/// Render a byte count with a binary-unit suffix, e.g. "16.0 GiB".
std::string fmt_bytes(std::uint64_t bytes);

/// Render a duration in seconds with an adaptive unit, e.g. "12.3 ms".
std::string fmt_seconds(double s);

/// Render a bandwidth in bytes/second as "N.N GB/s".
std::string fmt_bandwidth(double bytes_per_s);

} // namespace hmr
