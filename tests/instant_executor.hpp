#pragma once
// InstantExecutor: a minimal synchronous executor for PolicyEngine
// tests.  Transfers complete instantly; Run commands execute in FIFO
// order per PE (optionally deferred so tests can interleave events by
// hand).  This exercises the full protocol without any timing model.

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "ooc/policy_engine.hpp"

namespace hmr::testing {

class InstantExecutor {
public:
  explicit InstantExecutor(ooc::PolicyEngine& eng, bool auto_run = true)
      : eng_(&eng), auto_run_(auto_run) {}

  /// Feed a task arrival and chase all resulting commands.
  void arrive(const ooc::TaskDesc& t) { drive(eng_->on_task_arrived(t)); }

  /// Process a command list to exhaustion.
  void drive(std::vector<ooc::Command> cmds) {
    for (auto& c : cmds) pending_.push_back(c);
    while (!pending_.empty()) {
      const ooc::Command c = pending_.front();
      pending_.pop_front();
      switch (c.kind) {
        case ooc::Command::Kind::Fetch:
          fetches.push_back(c);
          append(eng_->on_fetch_complete(c.block));
          break;
        case ooc::Command::Kind::Evict:
          evicts.push_back(c);
          append(eng_->on_evict_complete(c.block));
          break;
        case ooc::Command::Kind::Run:
          run_order.push_back(c.task);
          if (auto_run_) {
            append(eng_->on_task_complete(c.task));
          } else {
            runnable.push_back(c);
          }
          break;
      }
    }
  }

  /// Manually complete a deferred runnable task (auto_run = false).
  void complete(ooc::TaskId t) {
    for (auto it = runnable.begin(); it != runnable.end(); ++it) {
      if (it->task == t) {
        runnable.erase(it);
        drive(eng_->on_task_complete(t));
        return;
      }
    }
    FAIL() << "task " << t << " is not runnable";
  }

  std::vector<ooc::TaskId> run_order;
  std::vector<ooc::Command> fetches;
  std::vector<ooc::Command> evicts;
  std::vector<ooc::Command> runnable; // deferred Run commands

private:
  void append(std::vector<ooc::Command> cmds) {
    for (auto& c : cmds) pending_.push_back(c);
  }

  ooc::PolicyEngine* eng_;
  bool auto_run_;
  std::deque<ooc::Command> pending_;
};

} // namespace hmr::testing
