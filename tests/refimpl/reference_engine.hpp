#pragma once
// The seed two-tier PolicyEngine, verbatim from the last pre-N-tier
// commit, compiled under `refimpl::` so the tier-equivalence property
// tests (test_tier_equivalence.cpp) can replay it side by side with
// the N-tier engine and compare command streams event by event.
//
// The .inc files are `git show <seed>:src/ooc/...` with the #include /
// #pragma once lines stripped (they are hoisted here, outside the
// wrapping namespace); nothing else is edited, so this really is the
// engine the two-tier equivalence contract (docs/TIERS.md) promises to
// match.  Header-only and definition-heavy: include from exactly one
// translation unit.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/memory_manager.hpp"
#include "util/check.hpp"

// The snapshot predates the current warning set; silence flag drift
// here in the wrapper instead of editing the verbatim sources.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace refimpl {
namespace hmr {
namespace mem = ::hmr::mem; // the seed sources say `mem::BlockId`
} // namespace hmr

#include "types_seed_hpp.inc"
#include "policy_engine_seed_hpp.inc"
#include "policy_engine_seed_cpp.inc"

} // namespace refimpl

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

namespace refimpl {
/// Shorthand the tests use: refimpl::Engine is the seed engine.
using Engine = hmr::ooc::PolicyEngine;
} // namespace refimpl
