// Unit tests for the adaptive guidance subsystem (src/adapt/), linked
// against hmr_adapt alone: the profiler, advisor and governor are pure
// state machines with zero dependencies on the sim or rt executors,
// and this binary existing is the proof.

#include <gtest/gtest.h>

#include <cmath>

#include "adapt/block_profiler.hpp"
#include "adapt/placement_advisor.hpp"
#include "adapt/strategy_governor.hpp"
#include "util/units.hpp"

namespace hmr::adapt {
namespace {

// ---- BlockProfiler ----------------------------------------------------

TEST(BlockProfiler, TrackedNeverExceedsTopK) {
  // The bounded-memory guarantee: top_k is the knob, tracked() the
  // invariant, regardless of how many distinct blocks stream past.
  for (const std::size_t k : {1u, 7u, 64u}) {
    BlockProfiler p({.top_k = k});
    for (ooc::BlockId b = 0; b < 10'000; ++b) {
      p.on_access(b, 1 * KiB, ooc::AccessMode::ReadOnly);
      ASSERT_LE(p.tracked(), k);
    }
    EXPECT_EQ(p.tracked(), k);
  }
}

TEST(BlockProfiler, ZeroTopKDies) {
  EXPECT_DEATH({ BlockProfiler p({.top_k = 0}); }, "nonzero sketch size");
}

TEST(BlockProfiler, HeavyHittersSurviveOneShotStream) {
  // Space-saving property: blocks with genuinely large counts cannot
  // be displaced by a parade of blocks seen once each.
  BlockProfiler p({.top_k = 8});
  for (int round = 0; round < 50; ++round) {
    for (ooc::BlockId hot = 0; hot < 4; ++hot) {
      p.on_access(hot, 1 * MiB, ooc::AccessMode::ReadOnly);
    }
  }
  for (ooc::BlockId cold = 1000; cold < 1200; ++cold) {
    p.on_access(cold, 1 * MiB, ooc::AccessMode::ReadOnly);
  }
  for (ooc::BlockId hot = 0; hot < 4; ++hot) {
    const BlockProfile* bp = p.find(hot);
    ASSERT_NE(bp, nullptr) << "heavy hitter " << hot << " displaced";
    EXPECT_GE(bp->accesses, 50u);
  }
}

TEST(BlockProfiler, TakeoverInheritsCountAsError) {
  BlockProfiler p({.top_k = 2, .evict_sample = 2});
  for (int i = 0; i < 5; ++i) {
    p.on_access(0, 1 * KiB, ooc::AccessMode::ReadOnly);
  }
  p.on_access(1, 1 * KiB, ooc::AccessMode::ReadOnly);
  p.on_access(2, 1 * KiB, ooc::AccessMode::ReadOnly); // displaces 1
  const BlockProfile* bp = p.find(2);
  ASSERT_NE(bp, nullptr);
  // Inherited the victim's count (1) as the error bound, plus its own.
  EXPECT_EQ(bp->count_error, 1u);
  EXPECT_EQ(bp->accesses, 2u);
  EXPECT_EQ(p.find(1), nullptr);
}

TEST(BlockProfiler, ReuseDistanceNegativeUntilRepeat) {
  BlockProfiler p({.top_k = 8});
  p.on_access(0, 1 * KiB, ooc::AccessMode::ReadOnly);
  ASSERT_NE(p.find(0), nullptr);
  EXPECT_LT(p.find(0)->reuse_distance, 0); // never reused yet
  // Two other accesses in between -> first measured gap is 3 ticks.
  p.on_access(1, 1 * KiB, ooc::AccessMode::ReadOnly);
  p.on_access(2, 1 * KiB, ooc::AccessMode::ReadOnly);
  p.on_access(0, 1 * KiB, ooc::AccessMode::ReadOnly);
  EXPECT_DOUBLE_EQ(p.find(0)->reuse_distance, 3.0);
  // An immediate repeat pulls the EWMA toward 1.
  p.on_access(0, 1 * KiB, ooc::AccessMode::ReadOnly);
  EXPECT_LT(p.find(0)->reuse_distance, 3.0);
  EXPECT_GE(p.find(0)->reuse_distance, 1.0);
}

TEST(BlockProfiler, HotnessFoldsAtPhaseEnd) {
  BlockProfiler p({.top_k = 8, .hotness_alpha = 0.5});
  for (int i = 0; i < 4; ++i) {
    p.on_access(0, 1 * KiB, ooc::AccessMode::ReadWrite);
  }
  // Mid-phase, before any fold, the estimate is the current count.
  EXPECT_DOUBLE_EQ(p.find(0)->expected_accesses_per_phase(), 4.0);
  p.end_phase();
  EXPECT_DOUBLE_EQ(p.find(0)->hotness, 2.0); // 0.5 * 4
  p.end_phase();                             // untouched phase decays
  EXPECT_DOUBLE_EQ(p.find(0)->hotness, 1.0);
}

TEST(BlockProfiler, PhaseSummaryCountsUniqueBytesOnce) {
  BlockProfiler p({.top_k = 8});
  p.on_access(0, 4 * KiB, ooc::AccessMode::ReadOnly);
  p.on_access(0, 4 * KiB, ooc::AccessMode::ReadOnly);
  p.on_access(1, 2 * KiB, ooc::AccessMode::ReadWrite);
  p.on_fetch(0, 4 * KiB);
  const PhaseSummary s = p.end_phase();
  EXPECT_EQ(s.accesses, 3u);
  EXPECT_EQ(s.unique_blocks, 2u);
  EXPECT_EQ(s.unique_bytes, 6 * KiB);
  EXPECT_EQ(s.fetched_bytes, 4 * KiB);
  // The summary resets: a fresh phase starts from zero.
  const PhaseSummary s2 = p.end_phase();
  EXPECT_EQ(s2.accesses, 0u);
  EXPECT_EQ(s2.unique_bytes, 0u);
}

TEST(BlockProfiler, ReadonlyFractionTracksModes) {
  BlockProfiler p({.top_k = 4});
  p.on_access(0, 1 * KiB, ooc::AccessMode::ReadOnly);
  p.on_access(0, 1 * KiB, ooc::AccessMode::ReadOnly);
  p.on_access(0, 1 * KiB, ooc::AccessMode::ReadWrite);
  p.on_access(0, 1 * KiB, ooc::AccessMode::WriteOnly);
  EXPECT_DOUBLE_EQ(p.find(0)->readonly_fraction(), 0.5);
}

// ---- PlacementAdvisor -------------------------------------------------

AdvisorConfig synthetic_costs() {
  // Hand-built break-even inputs so the thresholds are exact: for a
  // 1 MiB block, cost ~ bytes * 8e-9 and saving ~ bytes * 1e-9 per
  // access, so break-even sits near 8 accesses/phase.
  AdvisorConfig c;
  c.saved_seconds_per_byte_access = 1e-9;
  c.fetch_seconds_per_byte_loaded = 4e-9;
  c.evict_seconds_per_byte_loaded = 4e-9;
  c.migration_fixed_seconds = 8e-6;
  return c;
}

TEST(PlacementAdvisor, PinsHotReadMostlyReusedBlocks) {
  BlockProfiler p({.top_k = 8});
  PlacementAdvisor adv(p, synthetic_costs());
  for (int i = 0; i < 6; ++i) {
    p.on_access(7, 1 * MiB, ooc::AccessMode::ReadOnly);
  }
  const auto a = adv.advise(7, 1 * MiB);
  EXPECT_TRUE(a.pin);
  EXPECT_FALSE(a.demote_first);
  EXPECT_FALSE(a.bypass_fetch);
}

TEST(PlacementAdvisor, HeavilyWrittenBlockIsNotPinned) {
  BlockProfiler p({.top_k = 8});
  PlacementAdvisor adv(p, synthetic_costs());
  for (int i = 0; i < 6; ++i) {
    p.on_access(7, 1 * MiB, ooc::AccessMode::ReadWrite);
  }
  EXPECT_FALSE(adv.advise(7, 1 * MiB).pin);
}

TEST(PlacementAdvisor, ColdAndUntrackedBlocksDemoteFirst) {
  BlockProfiler p({.top_k = 8});
  PlacementAdvisor adv(p, synthetic_costs());
  p.on_access(3, 1 * MiB, ooc::AccessMode::ReadOnly); // seen once: cold
  EXPECT_TRUE(adv.advise(3, 1 * MiB).demote_first);
  // Never seen at all: not a heavy hitter by construction.
  const auto a = adv.advise(99, 1 * MiB);
  EXPECT_TRUE(a.demote_first);
  EXPECT_FALSE(a.bypass_fetch) << "never bypass on no data";
}

TEST(PlacementAdvisor, BypassRequiresArmedChannelAndNoReuse) {
  BlockProfiler p({.top_k = 8});
  PlacementAdvisor adv(p, synthetic_costs());
  p.on_access(5, 1 * MiB, ooc::AccessMode::ReadOnly); // stream-once
  // Channel has headroom: prefetching is free, never bypass.
  EXPECT_FALSE(adv.advise(5, 1 * MiB).bypass_fetch);
  adv.set_streaming_bypass(true);
  EXPECT_TRUE(adv.advise(5, 1 * MiB).bypass_fetch);
  // A reused block keeps its migration even under a loaded channel.
  p.on_access(6, 1 * MiB, ooc::AccessMode::ReadOnly);
  p.on_access(6, 1 * MiB, ooc::AccessMode::ReadOnly);
  EXPECT_FALSE(adv.advise(6, 1 * MiB).bypass_fetch);
}

TEST(PlacementAdvisor, BreakEvenAboveHotnessKeepsMigration) {
  BlockProfiler p({.top_k = 8});
  PlacementAdvisor adv(p, synthetic_costs());
  adv.set_streaming_bypass(true);
  // ~8 accesses/phase break-even for 1 MiB with the synthetic costs.
  const double be = adv.break_even_accesses(1 * MiB);
  EXPECT_GT(be, 7.0);
  EXPECT_LT(be, 9.1);
  // 20 expected accesses this phase, but never a *repeat* touch is
  // impossible — so emulate a block hammered within one phase: it has
  // repeats, hence reuse_distance >= 0, hence no bypass.
  for (int i = 0; i < 20; ++i) {
    p.on_access(4, 1 * MiB, ooc::AccessMode::ReadOnly);
  }
  EXPECT_FALSE(adv.advise(4, 1 * MiB).bypass_fetch);
}

TEST(PlacementAdvisor, FromModelYieldsFiniteBreakEven) {
  BlockProfiler p({.top_k = 8});
  PlacementAdvisor adv(p, AdvisorConfig::from_model(hw::knl_flat_all_to_all()));
  const double be_small = adv.break_even_accesses(1 * MiB);
  const double be_big = adv.break_even_accesses(1 * GiB);
  EXPECT_GT(be_small, 0.0);
  EXPECT_TRUE(std::isfinite(be_small));
  // The fixed alloc overhead weighs more on small blocks.
  EXPECT_GE(be_small, be_big);
}

// ---- StrategyGovernor -------------------------------------------------

GovernorConfig gov_cfg(ooc::Strategy s, bool eager = true) {
  GovernorConfig c;
  c.initial_strategy = s;
  c.initial_eager_evict = eager;
  c.channel_bytes_per_second = 1.0 * GB;
  c.num_pes = 4;
  return c;
}

PhaseObservation quiet_phase() {
  PhaseObservation o;
  o.phase_seconds = 1.0;
  o.tasks = 100;
  o.fetch_bytes = 100 * MiB;
  o.unique_bytes = 100 * MiB; // refetch ratio 1.0
  return o;
}

TEST(StrategyGovernor, RejectsNonMovementStrategy) {
  EXPECT_DEATH({ StrategyGovernor g(gov_cfg(ooc::Strategy::HbmOnly)); },
               "movement strategies");
}

TEST(StrategyGovernor, EscapesSyncNoIoOnHighWaitFraction) {
  StrategyGovernor g(gov_cfg(ooc::Strategy::SyncNoIo));
  PhaseObservation o = quiet_phase();
  o.wait_fraction = 0.5;
  const Decision d = g.on_phase_end(o);
  EXPECT_EQ(d.strategy, ooc::Strategy::MultiIo);
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(g.switches(), 1u);
}

TEST(StrategyGovernor, EscapesSingleIoOnDeepBacklog) {
  StrategyGovernor g(gov_cfg(ooc::Strategy::SingleIo));
  PhaseObservation o = quiet_phase();
  o.peak_inflight_fetches = 16;
  EXPECT_EQ(g.on_phase_end(o).strategy, ooc::Strategy::MultiIo);
}

TEST(StrategyGovernor, StaysPutOnHealthyPhases) {
  StrategyGovernor g(gov_cfg(ooc::Strategy::MultiIo));
  for (int i = 0; i < 5; ++i) {
    const Decision d = g.on_phase_end(quiet_phase());
    EXPECT_EQ(d.strategy, ooc::Strategy::MultiIo);
    EXPECT_TRUE(d.eager_evict);
  }
  EXPECT_EQ(g.switches(), 0u);
}

TEST(StrategyGovernor, RefetchRatioFlipsEvictionPolicyBothWays) {
  StrategyGovernor g(gov_cfg(ooc::Strategy::MultiIo));
  // Phase refetches the same bytes 3x: go lazy.
  PhaseObservation o = quiet_phase();
  o.fetch_bytes = 3 * o.unique_bytes;
  EXPECT_FALSE(g.on_phase_end(o).eager_evict);
  EXPECT_EQ(g.switches(), 1u);
  // One cooldown phase holds still even on contradictory numbers.
  EXPECT_FALSE(g.on_phase_end(quiet_phase()).eager_evict);
  // Then a no-reuse phase (ratio 1, nothing reclaimed warm): eager.
  EXPECT_TRUE(g.on_phase_end(quiet_phase()).eager_evict);
  EXPECT_EQ(g.switches(), 2u);
}

TEST(StrategyGovernor, WarmHitsKeepLazyMode) {
  StrategyGovernor g(gov_cfg(ooc::Strategy::MultiIo, /*eager=*/false));
  PhaseObservation o = quiet_phase();
  o.lru_reclaims = 40; // parked blocks are being reused
  const Decision d = g.on_phase_end(o);
  EXPECT_FALSE(d.eager_evict);
  EXPECT_DOUBLE_EQ(d.lru_watermark, g.config().reuse_lru_watermark);
}

TEST(StrategyGovernor, DedupSharedWarmBlocksKeepLazyMode) {
  // Reuse served by live refcounts (concurrent sharers) shows up only
  // as fetch-dedup hits: ratio 1.0 and zero reclaims must not fool the
  // governor back into eager mode while fetches are being amortized.
  StrategyGovernor g(gov_cfg(ooc::Strategy::MultiIo, /*eager=*/false));
  PhaseObservation o = quiet_phase();
  o.fetches = 16;
  o.fetch_dedup_hits = 60; // ~4 sharers per fetch
  EXPECT_FALSE(g.on_phase_end(o).eager_evict);
  EXPECT_EQ(g.switches(), 0u);
  // The same phase with negligible dedup traffic reads as streaming.
  PhaseObservation s = quiet_phase();
  s.fetches = 16;
  s.fetch_dedup_hits = 2;
  EXPECT_TRUE(g.on_phase_end(s).eager_evict);
}

TEST(StrategyGovernor, WarmWorkingSetBelowRatioFloorStaysLazy) {
  // A refetch ratio far below 1 means most touched bytes were already
  // resident — lazy mode winning, not a reason to leave it.
  StrategyGovernor g(gov_cfg(ooc::Strategy::MultiIo, /*eager=*/false));
  PhaseObservation o = quiet_phase();
  o.fetch_bytes = 20 * MiB; // ratio 0.2 against 100 MiB unique
  EXPECT_FALSE(g.on_phase_end(o).eager_evict);
  EXPECT_EQ(g.switches(), 0u);
}

TEST(StrategyGovernor, StreamingPhaseCapsLruWatermark) {
  StrategyGovernor g(gov_cfg(ooc::Strategy::MultiIo, /*eager=*/false));
  // Still refetching (ratio 1.2 > return threshold) but no warm hit:
  // the parked bytes are dead weight, cap them.
  PhaseObservation o = quiet_phase();
  o.fetch_bytes = 120 * MiB;
  const Decision d = g.on_phase_end(o);
  EXPECT_FALSE(d.eager_evict);
  EXPECT_DOUBLE_EQ(d.lru_watermark, g.config().streaming_lru_watermark);
}

TEST(StrategyGovernor, CooldownSuppressesStrategyFlipFlop) {
  auto cfg = gov_cfg(ooc::Strategy::SyncNoIo);
  cfg.cooldown_phases = 2;
  StrategyGovernor g(cfg);
  PhaseObservation o = quiet_phase();
  o.wait_fraction = 0.5;
  EXPECT_EQ(g.on_phase_end(o).strategy, ooc::Strategy::MultiIo);
  // Two phases of cooldown: nothing changes however bad the numbers.
  PhaseObservation bad = quiet_phase();
  bad.fetch_bytes = 10 * bad.unique_bytes;
  EXPECT_TRUE(g.on_phase_end(bad).eager_evict);
  EXPECT_TRUE(g.on_phase_end(bad).eager_evict);
  EXPECT_EQ(g.switches(), 1u);
  // Cooldown over: the refetch signal lands.
  EXPECT_FALSE(g.on_phase_end(bad).eager_evict);
  EXPECT_EQ(g.switches(), 2u);
}

TEST(StrategyGovernor, BypassArmsOnSaturationEvenDuringCooldown) {
  StrategyGovernor g(gov_cfg(ooc::Strategy::SyncNoIo));
  PhaseObservation o = quiet_phase();
  o.wait_fraction = 0.5; // triggers a switch -> cooldown starts
  EXPECT_FALSE(g.on_phase_end(o).bypass_streaming);
  // Saturated fetch channel during cooldown: bypass still arms (it is
  // advice gating, not a policy flip).
  PhaseObservation sat = quiet_phase();
  sat.fetch_bytes = static_cast<std::uint64_t>(0.9 * GB);
  const Decision d = g.on_phase_end(sat);
  EXPECT_TRUE(d.bypass_streaming);
  // And disarms as soon as the channel has headroom again.
  EXPECT_FALSE(g.on_phase_end(quiet_phase()).bypass_streaming);
}

TEST(StrategyGovernor, FairAdmissionFollowsContention) {
  StrategyGovernor g(gov_cfg(ooc::Strategy::MultiIo));
  // Uncontended, no wait: the gate relaxes.
  EXPECT_FALSE(g.on_phase_end(quiet_phase()).fair_admission);
  // Contended with real wait time: it re-engages.
  PhaseObservation o = quiet_phase();
  o.admission_contended = true;
  o.wait_fraction = 0.2;
  EXPECT_TRUE(g.on_phase_end(o).fair_admission);
}

TEST(StrategyGovernor, RefetchRatioHandlesZeroUniqueBytes) {
  PhaseObservation o;
  o.fetch_bytes = 123;
  o.unique_bytes = 0;
  EXPECT_DOUBLE_EQ(StrategyGovernor::refetch_ratio(o), 0.0);
}

} // namespace
} // namespace hmr::adapt
